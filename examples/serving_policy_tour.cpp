// Tour of the serving-engine policy API: composes each SchedulerPolicy /
// PrefillPlanner / BatchPolicy on a small chip and shows what changes.
// Fast (~seconds): uses a synthetic tiny MLLM, not the Table I zoo.
#include <cstdio>
#include <memory>

#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "model/workload.hpp"
#include "serve/kv_tracker.hpp"
#include "serve/serving_engine.hpp"
#include "serve/trace.hpp"

using namespace edgemm;

namespace {

core::ChipConfig small_chip() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

std::vector<serve::Request> demo_trace() {
  serve::TraceConfig cfg;
  cfg.requests = 10;
  cfg.arrival_rate_per_s = 3000.0;  // tiny chip: heavy contention
  cfg.burst = 5;
  cfg.input_tokens = 96;
  cfg.min_output_tokens = 4;
  cfg.max_output_tokens = 24;
  cfg.slo_base_ms = 0.6;
  cfg.slo_per_token_ms = 0.08;
  return serve::poisson_trace(cfg);
}

void report(const char* label, const serve::ServingResult& r) {
  std::printf("  %-34s served %2zu  rejected %2zu  p99 %7.3f ms  "
              "SLO %5.1f %%  maxCCwait %6.3f ms\n",
              label, r.completed, r.rejected, r.p99_latency_ms,
              100.0 * r.slo_attainment, r.max_cc_queue_delay_ms);
}

}  // namespace

int main() {
  std::printf("serving policy tour — 10-request bursty trace with SLOs on a "
              "1-group chip\n\n");
  const serve::AdmissionLimits limits{4, 8};

  // Default composition: concurrency admission, monolithic prefill,
  // FIFO decode joins (the PR-1 behavior).
  report("concurrency + monolithic + FIFO",
         serve::replay_trace(small_chip(), {tiny_model()},
                             serve::EngineConfig()
                                 .scheduler(std::make_shared<serve::ConcurrencyPolicy>(limits))
                                 .manage_bandwidth(false),
                             demo_trace())
             .result);

  // SLO-aware admission sheds requests that cannot meet their deadline.
  report("SLO-aware admission",
         serve::replay_trace(small_chip(), {tiny_model()},
                             serve::EngineConfig()
                                 .scheduler(std::make_shared<serve::SloAwarePolicy>(limits))
                                 .manage_bandwidth(false),
                             demo_trace())
             .result);

  // Chunked prefill bounds CC-lane head-of-line blocking.
  report("chunked prefill (32 tokens)",
         serve::replay_trace(small_chip(), {tiny_model()},
                             serve::EngineConfig()
                                 .scheduler(std::make_shared<serve::ConcurrencyPolicy>(limits))
                                 .prefill_planner(std::make_shared<serve::ChunkedPrefill>(32))
                                 .manage_bandwidth(false),
                             demo_trace())
             .result);

  // Shortest-remaining-first decode joins + a KV budget of 3 requests.
  serve::Request worst_case;
  worst_case.input_tokens = 96;
  worst_case.output_tokens = 24;
  const Bytes kv_budget = 3 * serve::kv_footprint_bytes(worst_case, tiny_model());
  const auto srf_kv =
      serve::replay_trace(small_chip(), {tiny_model()},
                          serve::EngineConfig()
                              .scheduler(std::make_shared<serve::ConcurrencyPolicy>(limits))
                              .batch_policy(std::make_shared<serve::ShortestRemainingFirst>())
                              .kv_capacity_bytes(kv_budget)
                              .manage_bandwidth(false),
                          demo_trace());
  report("SRF joins + 3-request KV budget", srf_kv.result);
  std::printf("    (KV budget %zu KiB -> %zu deferred joins)\n",
              static_cast<std::size_t>(kv_budget / 1024),
              srf_kv.result.kv_deferrals);

  // Task-proxy pruning derives the decode keep fraction per model. The
  // Alg. 1 controller needs depth to act (k shrinks layer by layer), so
  // this row serves a deeper variant of the tiny model.
  serve::TaskProxyPruningOptions proxy;
  proxy.proxy.tokens = 4;
  proxy.max_proxy_channels = 256;
  proxy.max_proxy_layers = 8;
  model::MllmConfig deep = tiny_model();
  deep.name = "tiny-mllm-deep";
  deep.llm.layers = 8;
  const auto pruned =
      serve::replay_trace(small_chip(), {deep},
                          serve::EngineConfig()
                              .scheduler(std::make_shared<serve::ConcurrencyPolicy>(limits))
                              .task_proxy_pruning(proxy)
                              .manage_bandwidth(false),
                          demo_trace());
  report("task-proxy pruned decode", pruned.result);
  std::printf("    (derived keep fraction %.2f from the Sec. IV-A proxy)\n",
              pruned.records.front().prune_keep_fraction);
  return 0;
}
