// Latency explorer: pick any Table-I model and sweep output lengths
// through the streaming pipeline, with and without the paper's
// bandwidth optimizations.
//
// Usage: mllm_latency_explorer [model-name] [crops]
//   model-name: one of the Table I entries (default "SPHINX-Tiny")
//   crops:      encoder passes per request (default 5, SPHINX-style)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "model/mllm_config.hpp"
#include "model/workload.hpp"

int main(int argc, char** argv) {
  using namespace edgemm;
  const std::string name = argc > 1 ? argv[1] : "SPHINX-Tiny";
  const std::size_t crops = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  model::MllmConfig mllm;
  try {
    mllm = model::model_by_name(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nKnown models:\n", e.what());
    for (const auto& m : model::model_zoo()) std::fprintf(stderr, "  %s\n", m.name.c_str());
    return 1;
  }

  std::printf("%s: LLM %s (%.2f B params), %zu encoder tower(s), %zu crops/request\n\n",
              mllm.name.c_str(), mllm.llm.name.c_str(),
              static_cast<double>(mllm.llm.total_params()) / 1e9,
              mllm.encoders.size(), crops);

  core::ChipConfig cfg = core::default_chip_config();
  cfg.timing_block_scale = 8.0;

  // Platform-calibrated policy (the paper's l_e/l_b analogues).
  const auto probe = model::aggregate_workload(model::build_phase_workload(
      mllm, model::default_params_for_output(300, 36, crops)));
  const auto policy = core::derive_policy(cfg, probe);
  std::printf("derived policy: l_e = %zu, l_b = %zu (paper testbed: 36 / 131)\n\n",
              policy.balance_length, policy.batch_length);

  Table t(mllm.name + " on EdgeMM — streaming pipeline vs output length");
  t.set_header({"l", "mode", "Bc:Bm", "batch", "latency", "tokens/s", "DRAM util"});
  for (const std::size_t l : {16u, 64u, 128u, 512u}) {
    const auto params = model::default_params_for_output(300, l, crops);
    const auto workload =
        model::aggregate_workload(model::build_phase_workload(mllm, params));
    core::MllmPipeline pipeline(cfg);

    core::PipelineOptions opts;
    opts.output_tokens = l;
    opts.batches = 3;
    opts.policy = policy;

    opts.manage_bandwidth = false;
    opts.enable_batching = false;
    const auto plain = pipeline.run(workload, opts);
    t.add_row({std::to_string(l), "equal sharing", "1:1", "1",
               fmt_double(plain.request_latency_ms, 1) + " ms",
               fmt_double(plain.tokens_per_second, 1),
               fmt_percent(plain.dram_utilization, 0)});

    opts.manage_bandwidth = true;
    opts.enable_batching = true;
    const auto managed = pipeline.run(workload, opts);
    t.add_row({std::to_string(l), "managed+batch", "1:" + std::to_string(managed.mc_ratio),
               std::to_string(managed.batch),
               fmt_double(managed.request_latency_ms, 1) + " ms",
               fmt_double(managed.tokens_per_second, 1),
               fmt_percent(managed.dram_utilization, 0)});
  }
  t.print();
  return 0;
}
