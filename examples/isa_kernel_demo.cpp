// ISA kernel demo: assemble the extension instructions of Fig. 7, show
// their encodings, and execute a sharded GEMV kernel on two simulated
// MC-cores using the programming model of §III-C (identity CSRs ->
// tensor shards; hardware pruner -> CIM GEMV).
#include <cstdio>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "core/config.hpp"
#include "core/host_core.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"

int main() {
  using namespace edgemm;

  // --- 1. Assemble and dump the extension encodings -----------------------
  const char* source = R"(
    # CC-core matrix kernel (M-M format)
    mm.ld   m1, a0          # activations tile via the coprocessor LSU
    mm.ld   m2, a1          # stationary weights
    mm.zero m0
    mm.mul  m0, m1, m2      # weight-stationary tile pass (Eq. 2)
    mm.st   m0, a2

    # MC-core pruned GEMV kernel (M-V format, Fig. 8)
    cfg.csrr corepos, x1    # who am I -> which shard
    cfg.csrw prunek, x2     # top-k budget from Alg. 1
    mv.prune v1, v0         # hardware act-aware pruner
    mv.ldw  (x3)            # weight rows -> CIM macro
    mv.mul  v2, v0, (x3)    # bit-serial GEMV (Eq. 3)

    # vector subset + barrier
    vv.act  v3, v2, silu
    vv.mul  v4, v3, v2
    cfg.sync
  )";
  const auto words = isa::assemble(source);
  std::printf("assembled %zu extension instructions:\n", words.size());
  for (const std::uint32_t w : words) {
    std::printf("  0x%08x  %s\n", w, isa::disassemble_word(w).c_str());
  }

  // --- 2. Execute a 2-core sharded GEMV through the ISA -------------------
  core::ChipConfig cfg = core::tiny_chip_config();
  cfg.cim = {16, 4, 16, 8, 8};

  const std::size_t k = 32;
  const std::size_t n = 16;
  Rng rng(11);
  Tensor weights(k, n);
  for (float& v : weights.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.3));
  std::vector<float> act(k);
  for (float& v : act) v = static_cast<float>(rng.gaussian());

  std::vector<float> combined(n, 0.0F);
  Cycle total_cycles = 0;
  for (std::uint32_t pos = 0; pos < 2; ++pos) {
    core::HostCore mc(cfg, CoreKind::kMemoryCentric, pos, 0, 0, pos);
    // §III-C: the kernel reads its position CSR and picks its shard.
    total_cycles += mc.execute(isa::assemble_line("cfg.csrr corepos, x1"));
    const std::size_t my_pos = mc.xreg(1);
    const std::size_t shard = k / 2;
    const Tensor w_shard = weights.block(my_pos * shard, 0, shard, n);
    const std::vector<float> a_shard(act.begin() + static_cast<std::ptrdiff_t>(my_pos * shard),
                                     act.begin() + static_cast<std::ptrdiff_t>((my_pos + 1) * shard));
    mc.bind_matrix(0x8000, &w_shard);
    mc.set_xreg(3, 0x8000);
    mc.set_vreg(0, a_shard);
    total_cycles += mc.execute(isa::assemble_line("mv.ldw (x3)"));
    total_cycles += mc.execute(isa::assemble_line("mv.mul v2, v0, (x3)"));
    for (std::size_t i = 0; i < n; ++i) combined[i] += mc.vreg(2)[i];
  }

  const auto reference = gemv_reference(act, weights);
  std::printf("\nsharded CIM GEMV across 2 MC-cores: %llu total coprocessor cycles\n",
              static_cast<unsigned long long>(total_cycles));
  std::printf("cosine vs FP32 reference: %.6f (INT8 quantized datapath)\n",
              cosine_similarity(combined, reference));
  return 0;
}
