// Pruning playground: walk Algorithm 1 layer by layer over a synthetic
// token generation and watch k, n, the pruning ratio, and the accuracy
// evolve — then compare against fixed-ratio pruning.
//
// Usage: pruning_playground [threshold-t] [channels]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "model/activation_gen.hpp"
#include "model/ffn.hpp"
#include "pruning/dynamic_topk.hpp"
#include "pruning/metrics.hpp"

int main(int argc, char** argv) {
  using namespace edgemm;
  const double t_param = argc > 1 ? std::strtod(argv[1], nullptr) : 16.0;
  const std::size_t channels = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 512;

  model::ActivationProfile profile;
  profile.channels = channels;
  profile.layers = 22;
  model::ActivationGenerator gen(profile, 7);

  std::printf("Algorithm 1 walk: d = %zu, t = %.0f, one token generation\n\n",
              channels, t_param);

  pruning::DynamicTopKConfig dyn_cfg;
  dyn_cfg.threshold_t = t_param;
  pruning::DynamicTopK controller(dyn_cfg, channels);
  controller.begin_token();

  Rng rng(99);
  Table t("layer-by-layer state of the dynamic Top-k controller");
  t.set_header({"layer", "k used", "n observed", "ratio", "kurtosis", "cos vs dense"});
  for (std::size_t layer = 0; layer < profile.layers; ++layer) {
    const auto v = gen.activations(layer, /*token=*/0);
    const std::size_t k_used = controller.k_for_layer(layer);
    const std::size_t n = count_above_max_over_t(v, t_param);
    controller.step(layer, v);

    // Accuracy of this layer's pruned FFN (scaled width for speed).
    Rng layer_rng = rng.split();
    const auto weights = model::random_gated_mlp(channels, channels * 2, layer_rng);
    auto kept = top_k_indices_by_magnitude(v, k_used);
    std::sort(kept.begin(), kept.end());
    const auto dense = model::ffn_reference(weights, v);
    const auto pruned = model::ffn_pruned(weights, v, kept);

    t.add_row({std::to_string(layer), std::to_string(k_used), std::to_string(n),
               fmt_percent(1.0 - static_cast<double>(k_used) /
                                     static_cast<double>(channels), 1),
               fmt_double(kurtosis(v), 1),
               fmt_double(cosine_similarity(dense, pruned), 4)});
  }
  t.print();

  std::printf("\nCompare: fixed ratios keep %zu (0.1) / %zu (0.7) channels at every layer;\n"
              "the dynamic controller adapts per layer and never touches layer 0.\n",
              pruning::fixed_ratio_k(channels, 0.1), pruning::fixed_ratio_k(channels, 0.7));
  return 0;
}
