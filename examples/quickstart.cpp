// Quickstart: build the EdgeMM chip, run a GEMM on a systolic-array
// core and a GEMV on a CIM core, then time a small phase on the full
// chip — the three layers of the public API in ~80 lines.
#include <cstdio>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/chip.hpp"
#include "core/config.hpp"
#include "core/kernels.hpp"
#include "model/workload.hpp"

int main() {
  using namespace edgemm;

  // 1. The architecture: Fig. 10 defaults, scalable via plain fields.
  const core::ChipConfig cfg = core::default_chip_config();
  std::printf("EdgeMM: %zu groups, %zu CC-cores + %zu MC-cores, %.1f TFLOP/s peak\n",
              cfg.groups, cfg.total_cc_cores(), cfg.total_mc_cores(),
              cfg.peak_flops() / 1e12);

  // 2. Functional plane: real arithmetic on the coprocessor models.
  Rng rng(42);
  Tensor acts(32, 128);
  Tensor weights(128, 64);
  for (float& v : acts.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : weights.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.1));

  const auto gemm = core::sa_gemm(cfg, acts, weights);
  std::printf("SA GEMM 32x128x64: %zu tile passes, %llu cycles, out[0][0] = %.4f\n",
              gemm.tile_passes, static_cast<unsigned long long>(gemm.cycles),
              gemm.out.at(0, 0));

  std::vector<float> vec(128);
  for (float& v : vec) v = static_cast<float>(rng.gaussian());
  const auto gemv = core::cim_gemv(cfg, vec, weights);
  std::printf("CIM GEMV 128x64: %zu column groups, %llu cycles (bit-serial)\n",
              gemv.column_groups, static_cast<unsigned long long>(gemv.cycles));

  // With the hardware activation-aware pruner in front (Fig. 8).
  const auto pruned = core::cim_gemv_pruned(cfg, vec, weights, /*k=*/32,
                                            /*t=*/16.0, /*cores=*/2);
  std::printf("...pruned to %zu/%zu channels: %llu cycles, %.0f %% DRAM saved\n",
              pruned.channels_kept, vec.size(),
              static_cast<unsigned long long>(pruned.cycles),
              100.0 * pruned.pruning_ratio);

  // 3. Timing plane: the whole chip executing one MLLM prefill.
  const auto mllm = model::sphinx_tiny();
  const auto workload =
      model::build_phase_workload(mllm, model::default_params_for_output(300, 32));
  core::ChipTimingModel chip(cfg, core::ChipComposition::kHeterogeneous);
  const Cycle prefill = chip.run_phase(workload.prefill);
  std::printf("SPHINX-Tiny prefill (300 tokens) on the chip: %.2f ms, DRAM util %.0f %%\n",
              cycles_to_ms(prefill, cfg.clock_hz), 100.0 * chip.dram().utilization());
  return 0;
}
