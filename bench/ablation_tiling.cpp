// Ablation — systolic array geometry and CIM macro shape.
//
// DESIGN.md picks 16x16 SA and 64x16 CIM to land the published aggregate
// numbers; this ablation sweeps the shapes at iso-PE-count and shows the
// GEMM/GEMV cycle impact predicted by Eq. 2 / Eq. 3.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "coproc/cim_macro.hpp"
#include "coproc/systolic_array.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Ablation (coprocessor geometry)",
      "Eq. 2: L_SA = 2R + C + M - 3; Eq. 3: L_CIM = M*W + 1 — shape choices "
      "trade GEMM streaming efficiency against GEMV latency");

  {
    Table t("Systolic array shapes at 256 PEs (Eq. 2, per weight-tile pass)");
    t.set_header({"R x C", "GEMV (M=1)", "GEMM (M=300)", "MACs/cycle @ M=300",
                  "tiles for 2048x2048"});
    for (const auto [r, c] : {std::pair<std::size_t, std::size_t>{4, 64},
                              {8, 32},
                              {16, 16},
                              {32, 8},
                              {64, 4}}) {
      const coproc::SystolicConfig cfg{r, c};
      const Cycle gemv = coproc::systolic_tile_cycles(cfg, 1);
      const Cycle gemm = coproc::systolic_tile_cycles(cfg, 300);
      const double macs_rate = 300.0 * static_cast<double>(r) * static_cast<double>(c) /
                               static_cast<double>(gemm);
      const std::size_t tiles = (2048 / r) * (2048 / c);
      t.add_row({std::to_string(r) + " x " + std::to_string(c), std::to_string(gemv),
                 std::to_string(gemm), fmt_double(macs_rate, 1), std::to_string(tiles)});
    }
    t.print();
  }

  {
    Table t("CIM macro shapes at 1024 cells/entry-row (Eq. 3 + write cost)");
    t.set_header({"C cols x R subarrays", "GEMV cycles (K=2048)",
                  "entry writes (K=2048)", "column groups for N=2048"});
    for (const auto [cols, rows] : {std::pair<std::size_t, std::size_t>{128, 8},
                                    {64, 16},
                                    {32, 32},
                                    {16, 64}}) {
      coproc::CimConfig cfg;
      cfg.columns = cols;
      cfg.tree_inputs = rows;
      const std::size_t entries = 2048 / rows;
      const Cycle compute = coproc::cim_gemm_cycles(cfg, entries);
      const Cycle writes = entries * coproc::cim_entry_write_cycles(cfg);
      t.add_row({std::to_string(cols) + " x " + std::to_string(rows),
                 std::to_string(compute), std::to_string(writes),
                 std::to_string(2048 / cols)});
    }
    t.print();
  }

  edgemm::bench::print_paper_vs_measured("chosen SA / CIM shapes", "16x16 / 64x16",
                                         "balanced rows above");
  return 0;
}
