// Ablation — the mapping explorer (§V-A "dedicated mapping explorer").
//
// Shows where the scheduler's default output-split stops being optimal:
// per-op best mappings across the SPHINX-Tiny operator mix, and the
// n-split vs k-split crossover for narrow outputs.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/mapping_explorer.hpp"
#include "model/mllm_config.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Ablation (mapping explorer)",
      "tensor partitioning choices: output-splits avoid reduction exchange; "
      "reduction-splits are the only way to scale narrow outputs");

  const auto cfg = core::default_chip_config();
  const core::MappingExplorer explorer(cfg);
  const auto llm = model::sphinx_tiny().llm;

  struct Case {
    const char* name;
    core::GemmWork work;
    core::ClusterKind kind;
  };
  const Case cases[] = {
      {"prefill QKV (m=300)",
       {300, llm.d_model, llm.d_model + 2 * llm.kv_dim(), Phase::kPrefill, false, 0, false},
       core::ClusterKind::kComputeCentric},
      {"prefill FFN up (m=300)",
       {300, llm.d_model, llm.d_ffn, Phase::kPrefill, false, 0, false},
       core::ClusterKind::kComputeCentric},
      {"decode FFN up (GEMV)",
       {1, llm.d_model, llm.d_ffn, Phase::kDecode, false, 0, false},
       core::ClusterKind::kMemoryCentric},
      {"decode FFN down (GEMV)",
       {1, llm.d_ffn, llm.d_model, Phase::kDecode, false, 0, false},
       core::ClusterKind::kMemoryCentric},
      {"decode LM head (GEMV)",
       {1, llm.d_model, llm.vocab, Phase::kDecode, false, 0, false},
       core::ClusterKind::kMemoryCentric},
      {"narrow head probe (n=8)",
       {1, 8192, 8, Phase::kDecode, false, 0, false},
       core::ClusterKind::kMemoryCentric},
  };

  Table t("Best mapping per operation (up to 8 clusters)");
  t.set_header({"operation", "cluster", "best split", "ways", "predicted cycles",
                "vs 1-cluster"});
  for (const Case& c : cases) {
    const auto best = explorer.best(c.work, c.kind, 8);
    const auto single =
        explorer.evaluate(c.work, c.kind, core::Mapping::Split::kOutput, 1);
    t.add_row({c.name, to_string(c.kind), to_string(best.split),
               std::to_string(best.ways), std::to_string(best.predicted_cycles),
               fmt_speedup(static_cast<double>(single.predicted_cycles) /
                           static_cast<double>(best.predicted_cycles))});
  }
  t.print();

  // The crossover series: sweep n for a fixed large k.
  Table x("n-split vs k-split crossover (GEMV, k = 8192, 8 MC clusters)");
  x.set_header({"n", "n-split cycles", "k-split cycles", "winner"});
  for (const std::size_t n : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const core::GemmWork work{1, 8192, n, Phase::kDecode, false, 0, false};
    const auto n_split = explorer.evaluate(work, core::ClusterKind::kMemoryCentric,
                                           core::Mapping::Split::kOutput, 8);
    const auto k_split = explorer.evaluate(work, core::ClusterKind::kMemoryCentric,
                                           core::Mapping::Split::kReduction, 8);
    x.add_row({std::to_string(n), std::to_string(n_split.predicted_cycles),
               std::to_string(k_split.predicted_cycles),
               n_split.predicted_cycles <= k_split.predicted_cycles ? "n-split"
                                                                    : "k-split"});
  }
  x.print();
  edgemm::bench::print_paper_vs_measured("explorer exists", "\"dedicated mapping explorer\"",
                                         "implemented; default n-split justified");
  return 0;
}
