// Table II — Comparison of EdgeMM and the RTX 3060 laptop GPU.
//
// Paper anchors: EdgeMM 2.15x GPU; +activation-aware pruning: 2.84x,
// reaching 138 tokens/s; energy efficiency quoted as 0.217 token/J
// (abstract) / 0.28 token/J (§V-C) — see EXPERIMENTS.md for the
// inconsistency discussion; we report our derivation.
#include <cstdio>
#include <vector>

#include "baselines/energy_model.hpp"
#include "baselines/gpu_backend.hpp"
#include "baselines/gpu_model.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"
#include "pruning/metrics.hpp"

namespace {

using namespace edgemm;

core::PipelineResult run_edgemm(const core::ChipConfig& cfg,
                                const core::PhaseWorkload& workload, std::size_t l,
                                double keep_fraction) {
  core::MllmPipeline pipeline(cfg);
  core::PipelineOptions opts;
  opts.output_tokens = l;
  opts.batches = 3;
  opts.manage_bandwidth = true;
  opts.enable_batching = true;
  opts.prune_keep_fraction = keep_fraction;
  opts.policy = core::derive_policy(cfg, workload);
  // Interactive streaming cap: deeper batches would multiply the
  // per-request queueing latency beyond what AR/VR tolerates (§IV-B
  // accepts a 42 % latency increment; batch 4 stays within it here).
  opts.policy.max_batch = 4;
  return pipeline.run(workload, opts);
}

}  // namespace

int main() {
  edgemm::bench::print_header(
      "Table II (EdgeMM vs RTX 3060 laptop)",
      "EdgeMM 2.15x GPU; with weight pruning 2.84x and 138 tokens/s");

  const auto mllm = model::sphinx_tiny();
  const std::size_t l = 256;  // streaming operating point with batching active
  const auto params = model::default_params_for_output(300, l, /*crops=*/5);
  const auto workload =
      model::aggregate_workload(model::build_phase_workload(mllm, params));

  // GPU baseline: serial per-request inference, priced through the
  // schedulable GpuBackend (the heterogeneous-offload target). Its
  // job_seconds sums the same roofline-plus-overheads op costs as
  // evaluate_gpu, so the Table II numbers are bit-identical to the
  // pre-backend derivation — gated below, plus a FIFO dispatch check
  // that one stream really serializes the three phases.
  const baselines::GpuSpec gpu_spec;
  sim::Simulator gpu_sim;
  baselines::GpuBackend gpu_backend(gpu_sim, gpu_spec, kChipClockHz);
  baselines::GpuMllmTiming gpu;
  gpu.encoder_seconds = gpu_backend.job_seconds(workload.encoder);
  gpu.prefill_seconds = gpu_backend.job_seconds(workload.prefill);
  gpu.decode_token_seconds = gpu_backend.job_seconds(workload.decode_token);
  const double gpu_tps = gpu.tokens_per_second(l);

  const auto reference = baselines::evaluate_gpu(gpu_spec, workload);
  const bool backend_identical =
      gpu.encoder_seconds == reference.encoder_seconds &&
      gpu.prefill_seconds == reference.prefill_seconds &&
      gpu.decode_token_seconds == reference.decode_token_seconds;

  // FIFO check: the three phases submitted back-to-back on one stream
  // retire serially at the sum of their per-job cycle costs.
  const Cycle expected_retire = gpu_backend.job_cycles(workload.encoder) +
                                gpu_backend.job_cycles(workload.prefill) +
                                gpu_backend.job_cycles(workload.decode_token);
  Cycle last_retire = 0;
  auto record_retire = [&last_retire, &gpu_sim] { last_retire = gpu_sim.now(); };
  gpu_backend.submit(core::Lane::kCcStage,
                     {workload.encoder.begin(), workload.encoder.end()},
                     record_retire);
  gpu_backend.submit(core::Lane::kCcStage,
                     {workload.prefill.begin(), workload.prefill.end()},
                     record_retire);
  gpu_backend.submit(core::Lane::kCcStage,
                     {workload.decode_token.begin(), workload.decode_token.end()},
                     record_retire);
  gpu_sim.run();
  const bool fifo_serializes = last_retire == expected_retire;

  // Measured dynamic pruning depth (same harness as Fig. 12).
  model::ActivationProfile profile;
  profile.channels = 512;
  profile.layers = mllm.llm.layers;
  model::ActivationGenerator gen(profile, 2025);
  pruning::PruningEvalConfig eval_cfg;
  eval_cfg.d_ffn = 1408;
  eval_cfg.tokens = 3;
  const auto eval = pruning::evaluate_pruning(gen, eval_cfg);
  const double keep = 1.0 - eval.mean_pruning_ratio;

  core::ChipConfig cfg = core::default_chip_config();
  cfg.timing_block_scale = 8.0;
  const auto dense = run_edgemm(cfg, workload, l, 1.0);
  const auto pruned = run_edgemm(cfg, workload, l, keep);

  Table t("Table II — EdgeMM vs RTX 3060 laptop (SPHINX-Tiny, streaming, l = " +
          std::to_string(l) + ")");
  t.set_header({"design", "compute", "bandwidth", "tokens/s", "MLLM perf."});
  t.add_row({gpu_spec.name, "13 TFLOP/s (FP32)", "GDDR6 336 GB/s",
             fmt_double(gpu_tps, 1), "1.00x"});
  t.add_row({"EdgeMM", fmt_si(cfg.peak_flops(), 0) + "FLOP/s (BF16)",
             fmt_double(bytes_per_cycle_to_gbps(cfg.dram.bytes_per_cycle), 1) + " GB/s",
             fmt_double(dense.tokens_per_second, 1),
             fmt_speedup(dense.tokens_per_second / gpu_tps)});
  t.add_row({"EdgeMM + weight pruning", fmt_si(cfg.peak_flops(), 0) + "FLOP/s (BF16)",
             fmt_double(bytes_per_cycle_to_gbps(cfg.dram.bytes_per_cycle), 1) + " GB/s",
             fmt_double(pruned.tokens_per_second, 1),
             fmt_speedup(pruned.tokens_per_second / gpu_tps)});
  t.print();

  edgemm::bench::print_paper_vs_measured(
      "EdgeMM vs GPU", "2.15x", fmt_speedup(dense.tokens_per_second / gpu_tps));
  edgemm::bench::print_paper_vs_measured(
      "EdgeMM + pruning vs GPU", "2.84x",
      fmt_speedup(pruned.tokens_per_second / gpu_tps));
  edgemm::bench::print_paper_vs_measured("EdgeMM + pruning throughput", "138 tokens/s",
                                         fmt_double(pruned.tokens_per_second, 1));

  // Energy derivation (published constants; see EXPERIMENTS.md).
  const double seconds_per_token = 1.0 / pruned.tokens_per_second;
  const auto decode_bytes =
      static_cast<Bytes>(static_cast<double>(mllm.llm.total_params()) * keep /
                         static_cast<double>(pruned.batch));
  const auto energy = baselines::edgemm_energy(cfg, seconds_per_token, decode_bytes);
  std::printf(
      "\nEnergy: %.3f mJ/token chip + %.3f mJ/token DRAM -> %.2f tokens/J\n"
      "(paper quotes 0.217 token/J in the abstract and 0.28 token/J in §V-C;\n"
      " both are inconsistent with 138 tokens/s at 112 mW — see EXPERIMENTS.md)\n",
      energy.chip_joules * 1e3, energy.dram_joules * 1e3,
      baselines::tokens_per_joule(1.0, energy));

  // Where the joules go at the decode operating point (per token).
  const double cim_macs_per_token =
      static_cast<double>(mllm.llm.total_params()) * keep;  // one MAC per weight
  const auto breakdown = baselines::energy_breakdown(
      cfg, /*sa_macs=*/0.0, cim_macs_per_token, decode_bytes, seconds_per_token);
  Table e("Energy breakdown per decoded token (batch " + std::to_string(pruned.batch) +
          ")");
  e.set_header({"component", "mJ/token", "share"});
  const double total = breakdown.total_joules();
  e.add_row({"CIM MACs (INT8 in-SRAM)", fmt_double(breakdown.cim_joules * 1e3, 3),
             fmt_percent(breakdown.cim_joules / total, 1)});
  e.add_row({"DRAM traffic", fmt_double(breakdown.dram_joules * 1e3, 3),
             fmt_percent(breakdown.dram_joules / total, 1)});
  e.add_row({"static + clocks", fmt_double(breakdown.static_joules * 1e3, 3),
             fmt_percent(breakdown.static_joules / total, 1)});
  e.print();

  std::printf("\nGpuBackend phase costs bit-identical to evaluate_gpu: %s\n",
              backend_identical ? "yes" : "NO");
  std::printf("GpuBackend FIFO stream serializes the three phases "
              "(retire at %llu cycles): %s\n",
              static_cast<unsigned long long>(expected_retire),
              fifo_serializes ? "yes" : "NO");
  return backend_identical && fifo_serializes ? 0 : 1;
}
