// Fig. 3 — Gated-MLP and the activation-vector sparsity in FFN:
// profiled |Vx| magnitudes across decoder layers and channels during a
// token generation in SPHINX-Tiny. Reproduced on the synthetic
// activation source calibrated to the paper's observations.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "model/activation_gen.hpp"
#include "model/ffn.hpp"
#include "model/mllm_config.hpp"

namespace {

using namespace edgemm;

}  // namespace

int main() {
  edgemm::bench::print_header(
      "Fig. 3 (activation sparsity in FFN)",
      "Vx shows notable sparsity across channels with few outliers that can be "
      "masked out; outliers grow more prominent with layer depth; Vd (hidden) "
      "is sparse too");

  const auto llm = model::sphinx_tiny().llm;
  model::ActivationProfile profile;
  profile.channels = llm.d_model;  // 2048
  profile.layers = llm.layers;     // 22
  model::ActivationGenerator gen(profile, 2025);

  Table t("Fig. 3(b) — |Vx| channel statistics per decoder layer (SPHINX-Tiny shape)");
  t.set_header({"layer", "max|v|", "median|v|", "max/median", "n(>max/16)",
                "n share", "kurtosis"});
  for (std::size_t layer = 0; layer < profile.layers; layer += 3) {
    const auto v = gen.activations(layer, 0);
    std::vector<float> mags(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) mags[i] = std::fabs(v[i]);
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(mags.size() / 2),
                     mags.end());
    const double median = mags[mags.size() / 2];
    const double max_abs = *std::max_element(mags.begin(), mags.end());
    const std::size_t n = count_above_max_over_t(v, 16.0);
    t.add_row({std::to_string(layer), fmt_double(max_abs, 2), fmt_double(median, 3),
               fmt_double(max_abs / median, 1), std::to_string(n),
               fmt_percent(static_cast<double>(n) / static_cast<double>(v.size()), 1),
               fmt_double(kurtosis(v), 1)});
  }
  t.print();

  // Hidden vector Vd sparsity (the gating product silences channels).
  Rng rng(7);
  const auto weights = model::random_gated_mlp(512, 1408, rng);
  model::ActivationProfile small = profile;
  small.channels = 512;
  model::ActivationGenerator small_gen(small, 2025);
  const auto vx = small_gen.activations(10, 0);
  const auto vd = model::ffn_hidden(weights, vx);

  double vd_max = 0.0;
  for (const float x : vd) vd_max = std::max(vd_max, static_cast<double>(std::fabs(x)));
  const std::size_t vd_n = count_above_max_over_t(vd, 16.0);
  std::printf("\nHidden vector Vd (layer 10, 1408 channels): n(>max/16) = %zu (%.1f %%)\n",
              vd_n, 100.0 * static_cast<double>(vd_n) / static_cast<double>(vd.size()));

  edgemm::bench::print_paper_vs_measured(
      "outlier prominence trend with depth", "growing",
      "kurtosis " + fmt_double(kurtosis(gen.activations(1, 0)), 1) + " (layer 1) -> " +
          fmt_double(kurtosis(gen.activations(21, 0)), 1) + " (layer 21)");
  return 0;
}
