// Ablation — the negligibility threshold t of Alg. 1.
//
// The paper fixes t = 16 "in our design" without a sweep; this ablation
// shows the accuracy/pruning-depth trade-off that motivates the choice.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/activation_gen.hpp"
#include "pruning/metrics.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Ablation (threshold t of Alg. 1)",
      "t = 16 balances pruning depth against cosine accuracy");

  model::ActivationProfile profile;
  profile.channels = 512;
  profile.layers = 22;

  Table t("Pruning depth and accuracy vs threshold t (SPHINX-Tiny shape, scaled)");
  t.set_header({"t", "mean pruning ratio", "mean cos(dynamic)", "cos floor (layer)",
                "vs fixed-0.1 cos"});
  for (const double threshold : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    model::ActivationGenerator gen(profile, 2025);
    pruning::PruningEvalConfig cfg;
    cfg.d_ffn = 1408;
    cfg.tokens = 3;
    cfg.dynamic.threshold_t = threshold;
    cfg.fixed_ratios = {0.1};
    const auto result = pruning::evaluate_pruning(gen, cfg);

    double floor = 1.0;
    std::size_t floor_layer = 0;
    for (const auto& layer : result.layers) {
      if (layer.cosine_dynamic < floor) {
        floor = layer.cosine_dynamic;
        floor_layer = layer.layer;
      }
    }
    t.add_row({fmt_double(threshold, 0), fmt_percent(result.mean_pruning_ratio, 1),
               fmt_double(result.mean_cosine_dynamic, 4),
               fmt_double(floor, 4) + " (L" + std::to_string(floor_layer) + ")",
               fmt_double(result.mean_cosine_fixed[0], 4)});
  }
  t.print();
  edgemm::bench::print_paper_vs_measured("paper's choice", "t = 16 (fixed)",
                                         "see trade-off row t = 16");
  return 0;
}
