// Ablation — the throttle interval T of the bandwidth manager (§IV-B).
//
// T trades enforcement granularity (small T tracks budgets tightly)
// against burst tolerance (large T lets a cluster front-load its
// interval budget). The paper does not publish T; this sweep justifies
// the default.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Ablation (throttle interval T)",
      "PMCs reset every T cycles; the budget mechanism must be fine enough to "
      "shape traffic within one decode round");

  const auto mllm = model::sphinx_tiny();
  const std::size_t l = 128;
  const auto params = model::default_params_for_output(300, l, /*crops=*/5);
  const auto workload =
      model::aggregate_workload(model::build_phase_workload(mllm, params));

  Table t("Managed-pipeline behaviour vs throttle interval T (l = 128)");
  t.set_header({"T (cycles)", "tokens/s", "request latency", "CC stall share",
                "DRAM util"});
  for (const Cycle interval : {10000ULL, 50000ULL, 100000ULL, 500000ULL, 2000000ULL}) {
    core::ChipConfig cfg = core::default_chip_config();
    cfg.dma.throttle_interval = interval;
    cfg.timing_block_scale = 8.0;
    core::MllmPipeline pipeline(cfg);
    core::PipelineOptions opts;
    opts.output_tokens = l;
    opts.batches = 3;
    opts.manage_bandwidth = true;
    opts.enable_batching = false;
    const auto result = pipeline.run(workload, opts);
    const double stall_share =
        static_cast<double>(result.cc_stage_cycles) > 0
            ? 1.0 - static_cast<double>(result.mc_stage_cycles) /
                        static_cast<double>(result.cc_stage_cycles + result.mc_stage_cycles)
            : 0.0;
    t.add_row({std::to_string(interval), fmt_double(result.tokens_per_second, 1),
               fmt_double(result.request_latency_ms, 1) + " ms",
               fmt_percent(stall_share, 1), fmt_percent(result.dram_utilization, 1)});
  }
  t.print();
  edgemm::bench::print_paper_vs_measured("default T", "(not published)",
                                         "100000 cycles (0.1 ms)");
  return 0;
}
