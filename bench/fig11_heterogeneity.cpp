// Fig. 11 — Performance of homogeneous and heterogeneous designs over
// the Snitch SIMD baseline, per phase and for the entire MLLM.
//
// Paper anchors: CC-cluster 4.3x MC-cluster on GEMM; MC-cluster 2.42x
// CC-cluster on GEMV; heterogeneous EdgeMM 1.79x homo-CC and 2.65x
// homo-MC on the entire MLLM (SPHINX-Tiny, averaged token lengths).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/chip.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"

namespace {

using namespace edgemm;
using core::ChipComposition;
using core::ChipTimingModel;
using core::GemmWork;

Cycle run_on_fresh_chip(const core::ChipConfig& cfg, ChipComposition comp,
                        const std::vector<GemmWork>& ops) {
  ChipTimingModel chip(cfg, comp);
  return chip.run_phase(ops);
}

/// Single-cluster kernel comparison (the 4.3x / 2.42x text anchors).
Cycle run_single_cluster(const core::ChipConfig& cfg, core::ClusterKind kind,
                         const GemmWork& op) {
  sim::Simulator sim;
  mem::DramController dram(sim, cfg.dram);
  core::ClusterTimingModel cluster(sim, dram, cfg, kind, "probe");
  Cycle done = 0;
  cluster.run_ops({op}, [&] { done = sim.now(); });
  sim.run();
  return done;
}

}  // namespace

int main() {
  edgemm::bench::print_header(
      "Fig. 11 (homogeneous vs heterogeneous designs)",
      "CC 4.3x MC on GEMM; MC 2.42x CC on GEMV; EdgeMM 1.79x homo-CC and "
      "2.65x homo-MC on the entire MLLM");

  const auto cfg = core::default_chip_config();
  const auto llm = model::sphinx_tiny();

  // --- Single-cluster kernel anchors --------------------------------------
  const GemmWork gemm{300, 2048, 2048, Phase::kPrefill, false, 0, false};
  const GemmWork gemv{1, 2048, 2048, Phase::kDecode, false, 0, false};
  const Cycle cc_gemm = run_single_cluster(cfg, core::ClusterKind::kComputeCentric, gemm);
  const Cycle mc_gemm = run_single_cluster(cfg, core::ClusterKind::kMemoryCentric, gemm);
  const Cycle cc_gemv = run_single_cluster(cfg, core::ClusterKind::kComputeCentric, gemv);
  const Cycle mc_gemv = run_single_cluster(cfg, core::ClusterKind::kMemoryCentric, gemv);

  edgemm::bench::print_paper_vs_measured(
      "CC-cluster vs MC-cluster, GEMM (300x2048x2048)", "4.3x",
      fmt_speedup(static_cast<double>(mc_gemm) / static_cast<double>(cc_gemm)));
  edgemm::bench::print_paper_vs_measured(
      "MC-cluster vs CC-cluster, GEMV (2048x2048)", "2.42x",
      fmt_speedup(static_cast<double>(cc_gemv) / static_cast<double>(mc_gemv)));

  // --- Whole-chip comparison across phases ---------------------------------
  // Averaged token lengths (§V-B): multi-crop visual input (SPHINX uses
  // five sub-images) and short VQA-style answers.
  const std::size_t out_tokens = 8;
  const auto params = model::default_params_for_output(300, out_tokens, /*crops=*/5);
  const auto workload =
      model::aggregate_workload(model::build_phase_workload(llm, params));

  std::vector<GemmWork> decode_all;
  for (std::size_t t = 0; t < out_tokens; ++t) {
    decode_all.insert(decode_all.end(), workload.decode_token.begin(),
                      workload.decode_token.end());
  }
  std::vector<GemmWork> entire;
  entire.insert(entire.end(), workload.encoder.begin(), workload.encoder.end());
  entire.insert(entire.end(), workload.prefill.begin(), workload.prefill.end());
  entire.insert(entire.end(), decode_all.begin(), decode_all.end());

  struct Row {
    const char* name;
    const std::vector<GemmWork>& ops;
  };
  const Row rows[] = {{"vision encoder (GEMM)", workload.encoder},
                      {"LLM prefill (GEMM)", workload.prefill},
                      {"LLM decode x8 (GEMV)", decode_all}};

  Table t("Fig. 11 — speedup over Snitch SIMD baseline (SPHINX-Tiny, 5 crops, out 8)");
  t.set_header({"phase", "baseline", "homo-CC", "homo-MC", "EdgeMM hetero"});
  for (const Row& row : rows) {
    const Cycle base = run_on_fresh_chip(cfg, ChipComposition::kBaselineSnitch, row.ops);
    const Cycle cc = run_on_fresh_chip(cfg, ChipComposition::kHomoCc, row.ops);
    const Cycle mc = run_on_fresh_chip(cfg, ChipComposition::kHomoMc, row.ops);
    const Cycle het = run_on_fresh_chip(cfg, ChipComposition::kHeterogeneous, row.ops);
    auto speedup = [base](Cycle c) {
      return fmt_speedup(static_cast<double>(base) / static_cast<double>(c));
    };
    t.add_row({row.name, "1.00x", speedup(cc), speedup(mc), speedup(het)});
  }

  // Entire MLLM: homogeneous designs execute the phases back-to-back on
  // all clusters; the heterogeneous chip additionally streams — the CC
  // side encodes/prefills the next request while the MC side decodes the
  // current one (§IV-B). Per-request steady-state period is the metric.
  const Cycle entire_base =
      run_on_fresh_chip(cfg, ChipComposition::kBaselineSnitch, entire);
  const Cycle entire_cc = run_on_fresh_chip(cfg, ChipComposition::kHomoCc, entire);
  const Cycle entire_mc = run_on_fresh_chip(cfg, ChipComposition::kHomoMc, entire);
  core::MllmPipeline pipeline(cfg);
  core::PipelineOptions opts;
  opts.output_tokens = out_tokens;
  opts.batches = 4;
  opts.manage_bandwidth = true;
  opts.enable_batching = false;
  opts.policy = core::derive_policy(cfg, workload);
  const auto het_pipe = pipeline.run(workload, opts);
  const auto entire_het = static_cast<Cycle>(
      static_cast<double>(out_tokens) / het_pipe.tokens_per_second * cfg.clock_hz);
  auto entire_speedup = [entire_base](Cycle c) {
    return fmt_speedup(static_cast<double>(entire_base) / static_cast<double>(c));
  };
  t.add_row({"entire MLLM (streaming)", "1.00x", entire_speedup(entire_cc),
             entire_speedup(entire_mc), entire_speedup(entire_het)});
  t.print();

  edgemm::bench::print_paper_vs_measured(
      "EdgeMM vs homo-CC (entire MLLM)", "1.79x",
      fmt_speedup(static_cast<double>(entire_cc) / static_cast<double>(entire_het)));
  edgemm::bench::print_paper_vs_measured(
      "EdgeMM vs homo-MC (entire MLLM)", "2.65x",
      fmt_speedup(static_cast<double>(entire_mc) / static_cast<double>(entire_het)));
  return 0;
}
