// Table I — Representative MLLMs and efficient edge MLLMs.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/mllm_config.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Table I (representative MLLMs)",
      "large-scale MLLMs use 7B+ LLMs; edge MLLMs adopt compressed LLMs below "
      "3B parameters");

  Table t("Table I — model zoo (as implemented)");
  t.set_header({"MLLM", "visual encoder(s)", "projector", "language model",
                "LLM params", "encoder params", "edge-class"});
  for (const auto& m : model::model_zoo()) {
    std::string towers;
    for (const auto& tower : m.encoders) {
      if (!towers.empty()) towers += " + ";
      towers += tower.name;
    }
    const bool edge = m.llm.total_params() < 3'000'000'000ULL;
    t.add_row({m.name, towers, m.projector, m.llm.name,
               fmt_si(static_cast<double>(m.llm.total_params()), 2),
               fmt_si(static_cast<double>(m.encoder_params()), 2),
               edge ? "yes" : "no"});
  }
  t.print();

  edgemm::bench::print_paper_vs_measured("edge MLLM LLM size bound", "< 3B params",
                                         "5 of 7 zoo entries");
  return 0;
}
