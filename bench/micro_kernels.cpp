// google-benchmark micro timings of the simulator's hot paths: the
// functional coprocessor models, the pruner, the event kernel, and the
// memory system. These measure *simulator* performance (host wall
// clock), not modelled chip cycles.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "coproc/cim_macro.hpp"
#include "coproc/pruner.hpp"
#include "coproc/systolic_array.hpp"
#include "core/kernels.hpp"
#include "mem/dma.hpp"
#include "model/ffn.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace edgemm;

void BM_SystolicTilePass(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  coproc::SystolicArray sa(coproc::SystolicConfig{16, 16});
  Rng rng(1);
  Tensor w(16, 16);
  Tensor acts(m, 16);
  for (float& v : w.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : acts.flat()) v = static_cast<float>(rng.gaussian());
  sa.load_weights(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.multiply(acts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m) * 16 * 16);
}
BENCHMARK(BM_SystolicTilePass)->Arg(1)->Arg(16)->Arg(300);

void BM_CimBitSerialGemv(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  coproc::CimConfig cfg;
  cfg.entries = std::max<std::size_t>(entries, 1);
  coproc::CimMacro macro(cfg);
  Rng rng(2);
  std::vector<std::int32_t> tile(cfg.tree_inputs * cfg.columns);
  for (auto& v : tile) v = static_cast<std::int32_t>(rng.uniform_int(-127, 127));
  for (std::size_t e = 0; e < entries; ++e) macro.write_entry(e, tile);
  std::vector<std::int32_t> act(entries * cfg.tree_inputs);
  for (auto& v : act) v = static_cast<std::int32_t>(rng.uniform_int(-127, 127));
  for (auto _ : state) {
    benchmark::DoNotOptimize(macro.gemv_long(0, entries, act));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries * cfg.tree_inputs *
                                                    cfg.columns));
}
BENCHMARK(BM_CimBitSerialGemv)->Arg(1)->Arg(8)->Arg(64);

void BM_HardwarePruner(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> v(channels);
  for (float& x : v) x = static_cast<float>(rng.gaussian());
  coproc::ActAwarePruner pruner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruner.prune(v, channels / 8, 16.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(channels));
}
BENCHMARK(BM_HardwarePruner)->Arg(256)->Arg(2048)->Arg(8192);

void BM_EventKernel(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule(i % 97, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventKernel)->Arg(1000)->Arg(100000);

void BM_DmaContention(benchmark::State& state) {
  const auto clusters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    mem::DramController dram(sim, mem::DramConfig{51.2, 100});
    std::vector<std::unique_ptr<mem::DmaEngine>> dmas;
    for (std::size_t c = 0; c < clusters; ++c) {
      const int port = dram.add_port("c" + std::to_string(c));
      dmas.push_back(std::make_unique<mem::DmaEngine>(
          sim, dram, port, mem::DmaConfig{}, "dma" + std::to_string(c)));
      dmas.back()->transfer(4 * 1024 * 1024, nullptr);
    }
    sim.run();
    benchmark::DoNotOptimize(dram.bytes_served());
  }
}
BENCHMARK(BM_DmaContention)->Arg(2)->Arg(16);

void BM_FfnReference(benchmark::State& state) {
  Rng rng(4);
  const auto weights = model::random_gated_mlp(512, 1408, rng);
  std::vector<float> vx(512);
  for (float& v : vx) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ffn_reference(weights, vx));
  }
}
BENCHMARK(BM_FfnReference);

void BM_SaGemmKernel(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto cfg = core::default_chip_config();
  Rng rng(5);
  Tensor a(dim, dim);
  Tensor w(dim, dim);
  for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : w.flat()) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sa_gemm(cfg, a, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(dim * dim * dim));
}
BENCHMARK(BM_SaGemmKernel)->Arg(64)->Arg(128);

}  // namespace
