// Fig. 6(b) — Effective DMA bandwidth vs transferred matrix size.
//
// "The effective bandwidth drops notably for small matrices, but nears
// the ideal bandwidth as matrix size increases. This indicates the ample
// on-chip memory in MC-cluster can alleviate the bandwidth pressure."
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/config.hpp"
#include "mem/analysis.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Fig. 6(b) (effective bandwidth vs matrix size)",
      "effective bandwidth drops notably for small transfers and nears the "
      "ideal bandwidth for large ones");

  const auto cfg = core::default_chip_config();
  std::vector<Bytes> sizes;
  for (Bytes s = kKiB; s <= 8 * kMiB; s *= 2) sizes.push_back(s);
  const auto samples = mem::measure_effective_bandwidth(cfg.dram, sizes,
                                                        cfg.dma.burst_bytes);

  Table t("Effective bandwidth vs transfer size (DRAM peak " +
          fmt_double(bytes_per_cycle_to_gbps(cfg.dram.bytes_per_cycle), 1) + " GB/s)");
  t.set_header({"transfer", "measured GB/s", "analytic GB/s", "fraction of peak"});
  for (const auto& s : samples) {
    t.add_row({fmt_si(static_cast<double>(s.transfer_bytes), 0) + "B",
               fmt_double(bytes_per_cycle_to_gbps(s.effective_bytes_per_cycle), 2),
               fmt_double(bytes_per_cycle_to_gbps(s.analytic_bytes_per_cycle), 2),
               fmt_percent(s.fraction_of_peak, 1)});
  }
  t.print();

  // The architectural consequence: CC vs MC double-buffer block sizes.
  const Bytes cc_block = cfg.cc_cluster_tcdm_bytes / 2;
  const Bytes mc_block = (cfg.mc_cluster_cim_bytes() + cfg.mc_shared_buffer_bytes) / 2;
  const double cc_eff = mem::effective_bandwidth(cfg.dram, cc_block);
  const double mc_eff = mem::effective_bandwidth(cfg.dram, mc_block);
  std::printf("\nCC-cluster block (%s B): %.1f %% of peak;  MC-cluster block (%s B): %.1f %% of peak\n",
              fmt_si(static_cast<double>(cc_block), 0).c_str(),
              100.0 * cc_eff / cfg.dram.bytes_per_cycle,
              fmt_si(static_cast<double>(mc_block), 0).c_str(),
              100.0 * mc_eff / cfg.dram.bytes_per_cycle);
  edgemm::bench::print_paper_vs_measured("small-vs-large transfer efficiency gap",
                                         "notable drop", "see table above");
  return 0;
}
