// Fig. 13 — Latency and throughput gains from token-length-driven
// bandwidth management and stream-based batch decoding.
//
// Paper anchors: stages balance at l_e = 36 under equal sharing; the
// Bc:Bm ratio ramps to 1:7; at l = 128 management cuts latency 40.3 %
// and lifts throughput 2.14x; at l_b = 131 batching takes over; at
// l = 1024 batching adds 42 % latency for 13.98x throughput.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"

namespace {

using namespace edgemm;

core::PipelineResult run_point(const core::ChipConfig& cfg,
                               const core::PhaseWorkload& workload, std::size_t l,
                               bool manage, bool batching,
                               const core::BandwidthPolicy& policy) {
  core::MllmPipeline pipeline(cfg);
  core::PipelineOptions opts;
  opts.output_tokens = l;
  opts.batches = 3;
  opts.manage_bandwidth = manage;
  opts.enable_batching = batching;
  opts.policy = policy;
  return pipeline.run(workload, opts);
}

}  // namespace

int main() {
  edgemm::bench::print_header(
      "Fig. 13 (bandwidth & workload management)",
      "latency flat below l_e; management cuts latency ~40 % / lifts throughput "
      "~2.1x near l = 128; batching beyond l_b trades ~42 % latency for ~14x "
      "throughput at l = 1024");

  // Real-time streaming scenario of §IV-B (multi-crop visual input keeps
  // the CC stage busy, as in SPHINX's five sub-images per frame).
  const auto mllm = model::sphinx_tiny();
  core::ChipConfig cfg = core::default_chip_config();
  cfg.timing_block_scale = 8.0;  // coarse event granularity for long sweeps

  // Platform-calibrated policy: the paper's l_e = 36 / l_b = 131 hold on
  // their testbed; ours is derived from the same balance definition.
  const auto probe_workload = model::aggregate_workload(model::build_phase_workload(
      mllm, model::default_params_for_output(300, 36, /*crops=*/5)));
  const auto policy = core::derive_policy(cfg, probe_workload);
  edgemm::bench::print_paper_vs_measured("balance length l_e", "36",
                                         std::to_string(policy.balance_length));
  edgemm::bench::print_paper_vs_measured("batch threshold l_b", "131",
                                         std::to_string(policy.batch_length));

  Table t("Fig. 13 — latency & throughput vs output length l (SPHINX-Tiny, 5 crops)");
  t.set_header({"l", "Bc:Bm", "batch", "latency eq-share", "latency managed",
                "latency change", "tokens/s eq-share", "tokens/s managed+batch",
                "throughput gain"});

  for (const std::size_t l : {8u, 16u, 36u, 64u, 128u, 256u, 512u, 1024u}) {
    const auto params = model::default_params_for_output(300, l, /*crops=*/5);
    const auto workload =
        model::aggregate_workload(model::build_phase_workload(mllm, params));

    const auto baseline = run_point(cfg, workload, l, /*manage=*/false,
                                    /*batching=*/false, policy);
    const auto managed = run_point(cfg, workload, l, /*manage=*/true,
                                   /*batching=*/true, policy);

    const double lat_change = managed.request_latency_ms / baseline.request_latency_ms - 1.0;
    const double gain = managed.tokens_per_second / baseline.tokens_per_second;
    t.add_row({std::to_string(l), "1:" + std::to_string(managed.mc_ratio),
               std::to_string(managed.batch),
               fmt_double(baseline.request_latency_ms, 1) + " ms",
               fmt_double(managed.request_latency_ms, 1) + " ms",
               fmt_percent(lat_change, 1), fmt_double(baseline.tokens_per_second, 1),
               fmt_double(managed.tokens_per_second, 1), fmt_speedup(gain)});
  }
  t.print();

  // Anchor points.
  {
    const std::size_t l = 128;
    const auto params = model::default_params_for_output(300, l, 5);
    const auto workload =
        model::aggregate_workload(model::build_phase_workload(mllm, params));
    const auto baseline = run_point(cfg, workload, l, false, false, policy);
    const auto managed = run_point(cfg, workload, l, true, false, policy);  // mgmt only
    edgemm::bench::print_paper_vs_measured(
        "latency reduction @ l=128 (mgmt only)", "40.3 %",
        fmt_percent(1.0 - managed.request_latency_ms / baseline.request_latency_ms, 1));
    edgemm::bench::print_paper_vs_measured(
        "throughput gain @ l=128 (mgmt only)", "2.14x",
        fmt_speedup(managed.tokens_per_second / baseline.tokens_per_second));
  }
  {
    const std::size_t l = 1024;
    const auto params = model::default_params_for_output(300, l, 5);
    const auto workload =
        model::aggregate_workload(model::build_phase_workload(mllm, params));
    const auto managed_unbatched = run_point(cfg, workload, l, true, false, policy);
    const auto managed_batched = run_point(cfg, workload, l, true, true, policy);
    edgemm::bench::print_paper_vs_measured(
        "batching latency cost @ l=1024", "+42 %",
        fmt_percent(managed_batched.request_latency_ms /
                            managed_unbatched.request_latency_ms -
                        1.0,
                    1));
    edgemm::bench::print_paper_vs_measured(
        "batching throughput gain @ l=1024", "13.98x",
        fmt_speedup(managed_batched.tokens_per_second /
                    managed_unbatched.tokens_per_second));
  }
  std::printf("\nNote: l_e and l_b are policy constants from the paper (36 / 131); the\n"
              "crossover emerging from this simulator is reported in EXPERIMENTS.md.\n");
  return 0;
}
