// Fig. 12 — Evaluation of activation-aware dynamic Top-k weight pruning:
//  (a) kurtosis and per-core pruning ratio vs decoder layer,
//  (b) cosine similarity of pruned vs unpruned FFN outputs (dynamic vs
//      fixed ratios 0.1 / 0.7),
// plus the §V-C anchor: decode latency reduced 42 % on average.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "model/activation_gen.hpp"
#include "model/workload.hpp"
#include "pruning/metrics.hpp"
#include "pruning/task_proxy.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Fig. 12 (dynamic Top-k pruning)",
      "pruning ratio grows with layer depth (kurtosis-driven); dynamic pruning "
      "matches fixed-0.1 accuracy while fixed-0.7 collapses in shallow layers; "
      "decode latency cut by 42 % on average");

  // --- (a)+(b): layer-wise evaluation on the synthetic SPHINX activations --
  // Scaled-width FFN (512 x 1408, same 2048:5632 aspect as TinyLlama)
  // keeps the functional evaluation fast; accuracy depends on channel
  // statistics, not absolute width (DESIGN.md §1).
  model::ActivationProfile profile;
  profile.channels = 512;
  profile.layers = 22;
  model::ActivationGenerator gen(profile, 2025);

  pruning::PruningEvalConfig cfg;
  cfg.d_ffn = 1408;
  cfg.tokens = 4;
  cfg.fixed_ratios = {0.1, 0.7};
  const auto result = pruning::evaluate_pruning(gen, cfg);

  Table t("Fig. 12(a)+(b) — per-layer pruning behaviour (SPHINX-Tiny shape, scaled)");
  t.set_header({"layer", "kurtosis", "dyn. pruning ratio", "cos(dynamic)",
                "cos(fixed 0.1)", "cos(fixed 0.7)"});
  for (const auto& layer : result.layers) {
    if (layer.layer % 2 != 0 && layer.layer != 1 && layer.layer != 21) continue;
    t.add_row({std::to_string(layer.layer), fmt_double(layer.kurtosis, 1),
               fmt_percent(layer.pruning_ratio, 1), fmt_double(layer.cosine_dynamic, 4),
               fmt_double(layer.cosine_fixed[0], 4), fmt_double(layer.cosine_fixed[1], 4)});
  }
  t.print();

  edgemm::bench::print_paper_vs_measured(
      "dynamic vs fixed-0.1 accuracy", "comparable",
      fmt_double(result.mean_cosine_dynamic, 4) + " vs " +
          fmt_double(result.mean_cosine_fixed[0], 4));
  edgemm::bench::print_paper_vs_measured(
      "fixed-0.7 shallow-layer damage", "irreversible loss",
      "cos = " + fmt_double(result.layers[1].cosine_fixed[1], 4) + " at layer 1");
  edgemm::bench::print_paper_vs_measured("mean dynamic pruning ratio", "(drives 42 %)",
                                         fmt_percent(result.mean_pruning_ratio, 1));

  // Task-level proxy for the "minimal score reduction in VQA" claim: the
  // fraction of downstream argmax answers unchanged by pruning.
  pruning::TaskProxyConfig proxy_cfg;
  proxy_cfg.d_ffn = 512;
  proxy_cfg.tokens = 4;
  model::ActivationProfile proxy_profile = profile;
  proxy_profile.channels = 256;
  model::ActivationGenerator proxy_gen(proxy_profile, 2025);
  const auto proxy = pruning::evaluate_task_proxy(proxy_gen, proxy_cfg);
  edgemm::bench::print_paper_vs_measured(
      "task-score retention (VQA proxy)", "minimal reduction",
      fmt_percent(proxy.agreement_dynamic, 1) + " answers unchanged (fixed-0.7: " +
          fmt_percent(proxy.agreement_fixed[1], 1) + ")");

  // --- §V-C anchor: decode-latency reduction through the pipeline ---------
  const auto mllm = model::sphinx_tiny();
  auto workload = model::aggregate_workload(
      model::build_phase_workload(mllm, model::default_params_for_output(300, 64)));

  core::ChipConfig chip_cfg = core::default_chip_config();
  chip_cfg.timing_block_scale = 4.0;  // coarser events for the 64-token runs
  core::MllmPipeline pipeline(chip_cfg);
  core::PipelineOptions opts;
  opts.output_tokens = 64;
  opts.batches = 3;
  opts.manage_bandwidth = false;
  opts.enable_batching = false;

  const auto dense = pipeline.run(workload, opts);
  opts.prune_keep_fraction = 1.0 - result.mean_pruning_ratio;
  const auto pruned = pipeline.run(workload, opts);
  const double cut = 1.0 - static_cast<double>(pruned.mc_stage_cycles) /
                               static_cast<double>(dense.mc_stage_cycles);
  edgemm::bench::print_paper_vs_measured("LLM-decode latency reduction", "42 %",
                                         fmt_percent(cut, 1));
  return 0;
}
