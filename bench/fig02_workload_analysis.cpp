// Fig. 2 — Workload analysis of two MLLMs (SPHINX-Tiny, KarmaVLM):
//  (a) GPU latency breakdown across phases vs output token length,
//  (b) per-phase model statistics (FLOPs, params, arithmetic intensity),
//  (c) decode-phase memory-access composition.
#include <cstdio>
#include <vector>

#include "baselines/gpu_model.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/mllm_config.hpp"
#include "model/transformer.hpp"
#include "model/workload.hpp"

namespace {

using namespace edgemm;

void latency_breakdown(const model::MllmConfig& mllm) {
  const auto params = model::default_params_for_output(300, 128);
  const auto workload = model::build_phase_workload(mllm, params);
  const auto gpu = baselines::evaluate_gpu(baselines::GpuSpec{}, workload);

  Table t("Fig. 2(a) — " + mllm.name + ": RTX 3060 latency breakdown vs output tokens");
  t.set_header({"output tokens", "encoder", "prefill", "decode", "decode share"});
  for (const std::size_t l : {8u, 32u, 128u, 512u}) {
    const double enc = gpu.encoder_seconds * 1e3;
    const double pre = gpu.prefill_seconds * 1e3;
    const double dec = gpu.decode_token_seconds * static_cast<double>(l) * 1e3;
    const double share = dec / (enc + pre + dec);
    t.add_row({std::to_string(l), fmt_double(enc, 1) + " ms", fmt_double(pre, 1) + " ms",
               fmt_double(dec, 1) + " ms", fmt_percent(share, 1)});
  }
  t.print();
}

void model_statistics(const model::MllmConfig& mllm) {
  const std::size_t tokens = 300;
  const auto enc = model::encoder_profile(mllm, tokens, 2);
  const auto pre = model::prefill_profile(mllm.llm, tokens, 2);
  const auto dec = model::decode_profile(mllm.llm, tokens, 2);

  Table t("Fig. 2(b) — " + mllm.name + ": per-phase statistics (input 300 tokens)");
  t.set_header({"phase", "FLOPs", "params", "bytes", "FLOP/byte"});
  auto row = [&](const char* name, const model::PhaseProfile& p) {
    t.add_row({name, fmt_si(static_cast<double>(p.flops), 2),
               fmt_si(static_cast<double>(p.params), 2),
               fmt_si(static_cast<double>(p.total_bytes()), 2) + "B",
               fmt_double(p.arithmetic_intensity(), 1)});
  };
  row("vision encoder", enc);
  row("LLM prefill", pre);
  row("LLM decode (1 token)", dec);
  t.print();

  const double flop_ratio =
      static_cast<double>(pre.flops) / static_cast<double>(dec.flops);
  edgemm::bench::print_paper_vs_measured(
      "prefill/decode FLOP ratio (same params)", "~100x (\"two orders\")",
      fmt_double(flop_ratio, 0) + "x");
}

void memory_breakdown(const model::MllmConfig& mllm) {
  const auto b = model::decode_memory_breakdown(mllm.llm, 300, 1);
  const double total = static_cast<double>(b.total());

  Table t("Fig. 2(c) — " + mllm.name + ": decode memory-access composition");
  t.set_header({"component", "bytes/token", "share"});
  auto row = [&](const char* name, Bytes bytes) {
    t.add_row({name, fmt_si(static_cast<double>(bytes), 2) + "B",
               fmt_percent(static_cast<double>(bytes) / total, 1)});
  };
  row("FFN weights", b.ffn_weights);
  row("attention weights", b.attn_weights);
  row("LM head", b.lm_head);
  row("KV cache", b.kv_cache);
  row("activations", b.activations);
  t.print();
}

}  // namespace

int main() {
  edgemm::bench::print_header(
      "Fig. 2 (workload analysis)",
      "encoder/prefill are compute-intensive GEMM; decode is memory-bound GEMV; "
      "FFN weights dominate DRAM access, KV cache is minor at edge lengths");

  for (const auto& mllm : {model::sphinx_tiny(), model::karmavlm()}) {
    latency_breakdown(mllm);
    model_statistics(mllm);
    memory_breakdown(mllm);
    std::printf("\n");
  }
  return 0;
}
