// Fig. 10 — Design configurations and implementation constants of the
// 22 nm EdgeMM chip.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/config.hpp"

int main() {
  using namespace edgemm;
  edgemm::bench::print_header(
      "Fig. 10 (design configuration)",
      "4 groups x (2 CC + 2 MC clusters); 4 CC-cores / 2 MC-cores per cluster; "
      "22 nm @ 1 GHz; 112 mW; SA = 62 % of CC-core area, CIM = 81 % of MC-core");

  const auto cfg = core::default_chip_config();

  Table t("EdgeMM configuration (as implemented)");
  t.set_header({"parameter", "value"});
  t.add_row({"groups", std::to_string(cfg.groups)});
  t.add_row({"CC-clusters / MC-clusters", std::to_string(cfg.total_cc_clusters()) +
                                              " / " + std::to_string(cfg.total_mc_clusters())});
  t.add_row({"CC-cores / MC-cores", std::to_string(cfg.total_cc_cores()) + " / " +
                                        std::to_string(cfg.total_mc_cores())});
  t.add_row({"systolic array (R x C)", std::to_string(cfg.systolic.rows) + " x " +
                                           std::to_string(cfg.systolic.cols)});
  t.add_row({"CIM macro (C cols x R subarrays x M entries)",
             std::to_string(cfg.cim.columns) + " x " + std::to_string(cfg.cim.tree_inputs) +
                 " x " + std::to_string(cfg.cim.entries)});
  t.add_row({"CIM precision (weight N / activation W)",
             std::to_string(cfg.cim.weight_bits) + "b / " +
                 std::to_string(cfg.cim.act_bits) + "b"});
  t.add_row({"CIM capacity per macro",
             fmt_si(static_cast<double>(coproc::cim_capacity_bytes(cfg.cim)), 0) + "B"});
  t.add_row({"CC-cluster TCDM",
             fmt_si(static_cast<double>(cfg.cc_cluster_tcdm_bytes), 0) + "B"});
  t.add_row({"MC-cluster CIM storage + shared buffer",
             fmt_si(static_cast<double>(cfg.mc_cluster_cim_bytes()), 0) + "B + " +
                 fmt_si(static_cast<double>(cfg.mc_shared_buffer_bytes), 0) + "B"});
  t.add_row({"DRAM bandwidth",
             fmt_double(bytes_per_cycle_to_gbps(cfg.dram.bytes_per_cycle), 1) + " GB/s"});
  t.add_row({"DRAM latency", std::to_string(cfg.dram.latency) + " cycles"});
  t.add_row({"clock", fmt_si(cfg.clock_hz, 0) + "Hz"});
  t.add_row({"peak throughput", fmt_si(cfg.peak_flops(), 1) + "FLOP/s (BF16/INT8)"});
  t.add_row({"chip power (post-P&R, published)",
             fmt_double(cfg.chip_power_w * 1e3, 0) + " mW"});
  t.add_row({"SA share of CC-core area (published)", fmt_percent(cfg.sa_area_share, 0)});
  t.add_row({"CIM share of MC-core area (published)", fmt_percent(cfg.cim_area_share, 0)});
  t.print();

  edgemm::bench::print_paper_vs_measured("peak compute", "18 TFLOP/s (BF16)",
                                         fmt_si(cfg.peak_flops(), 1) + "FLOP/s");
  edgemm::bench::print_paper_vs_measured("chip power", "112 mW",
                                         fmt_double(cfg.chip_power_w * 1e3, 0) + " mW");
  return 0;
}
