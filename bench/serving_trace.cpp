// Serving-trace bench: replays deterministic request traces on the
// heterogeneous chip through the policy-driven ServingEngine.
//
// Every section's replay grid runs through serve::run_sweep — the
// thread-parallel sweep harness — which returns outcomes in case order,
// byte-identical to a sequential run regardless of worker count (§7
// gates exactly that), so the printed numbers do not depend on the host.
//
// Sections:
//   1. headline — the PR-1 reproduction (sequential vs continuous
//      batching vs + bandwidth management) via default-policy
//      EngineConfigs; self-checked against sequential replay.
//   2. policy comparison — FIFO vs shortest-remaining-first vs
//      SLO-aware admission on a bursty deadline trace (tail latency +
//      SLO attainment), plus KV-capacity accounting on the same trace.
//   3. prefill planners on a long-prefill trace: monolithic vs chunked
//      vs weight-resident chunk chaining (CC weight traffic, makespan,
//      worst-case CC-lane queueing delay, pin/fallback accounting).
//      Pinned to the PR 3 per-request pin mode so its headline stays the
//      baseline §4 is measured against.
//   4. shared vs per-request weight pins on the same multi-request
//      same-model trace: one refcounted pin per model charges the budget
//      once, riders skip weight DMA on every chunk (fallbacks, CC weight
//      fetch, peak pinned bytes).
//   5. fidelity sweep — makespan drift across burst/block coarsening
//      factors (8x/4x/2x/1x).
//   6. multi-model zoo — residency-aware placement policies
//      (keep-current vs demand-weighted vs evict-idle-on-pressure) over
//      one shared budget, with the rider fill barrier on so the savings
//      are fill-timing-honest (and a barrier-off row pricing the PR 4
//      optimism).
//   7. fast/detailed execution tiers — every §1–§6 case re-replayed on
//      the fast tier (ReplayMode::kFast): per-case makespan drift gated
//      under 1%, completion counts equal, single-replay and policy-sweep
//      speedups gated, and worker-count byte-identity of the parallel
//      sweep. Emits BENCH_serving_trace.json.
//   8. cluster — the §6 zoo scenario sharded across {1,2,4,8} chips via
//      run_cluster: a 1-chip replica cluster gated bit-identical to the
//      single-engine §6 replay, near-linear replica tokens/s scaling at
//      fixed traffic, and a disaggregated prefill/decode split whose KV
//      migration bytes are exactly conserved on the chip-to-chip link.
//   9. paged KV — whole-footprint reservation vs page-granular KV with
//      CoW prefix sharing and DRAM swap at one equal byte budget:
//      paged + prefix gated to sustain strictly more concurrent decodes
//      (or equal throughput on fewer peak KV bytes), page ledgers gated
//      exactly conserved, and a tight-budget row that completes the
//      trace by paying DRAM re-fetches. §1–§8 replay with paged_kv off,
//      so their numbers are untouched.
//  10. heterogeneous offload — the §6 long-prefill zoo trace on one
//      EdgeMM + fat-GPU chip pair (fast tier), sweeping OffloadPolicy
//      backend mixes: NoOffload with the GPU configured gated
//      bit-identical to no GPU at all, PrefillToFat gated to improve
//      makespan or tokens/s at no decode-p99 regression (KV shipped
//      back over an exactly-conserved return link), and a queue-depth
//      threshold policy splitting at chunk granularity.
//  11. load-adaptive quality — the §6 zoo trace pushed into overload
//      (48 requests in bursts of 4, per-request deadlines) behind
//      SLO-aware admission, sweeping the QualityPolicy seam:
//      SloPressureQuality gated to strictly improve SLO attainment AND
//      strictly cut rejections vs StaticQuality at a bounded
//      accuracy-proxy cost, degradations gated live on both pressure
//      policies, and the §10 edgemm-only case replayed with the default
//      quality config spelled out explicitly gated bit-identical (the
//      seam is free when static).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/gpu_model.hpp"
#include "bench/bench_common.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "model/workload.hpp"
#include "serve/cluster/cluster_engine.hpp"
#include "serve/kv_tracker.hpp"
#include "serve/residency_tracker.hpp"
#include "serve/serving_engine.hpp"
#include "serve/sweep.hpp"
#include "serve/trace.hpp"

namespace {

using namespace edgemm;

/// Coarsened event granularity for multi-second traces: larger
/// double-buffer blocks and DMA bursts (with the throttle interval
/// scaled to keep per-interval budgets well above one burst). Total
/// traffic and compute are unchanged. factor 8 is the PR-1 operating
/// point; factor 1 is architectural fidelity.
core::ChipConfig coarsened_chip(double factor) {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.timing_block_scale = factor;
  const auto dma_scale = static_cast<std::size_t>(factor > 2.0 ? factor / 2.0 : 1.0);
  cfg.dma.burst_bytes *= dma_scale;
  cfg.dma.throttle_interval *= dma_scale;
  return cfg;
}

serve::EngineConfig continuous_config(bool manage_bandwidth) {
  return serve::EngineConfig()
      .scheduler(std::make_shared<serve::ConcurrencyPolicy>(
          serve::AdmissionLimits{8, 16}))
      .manage_bandwidth(manage_bandwidth);
}

std::size_t default_workers(std::size_t cases) {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min(cases, std::max<std::size_t>(hw, 1));
}

/// One section's grid priced by the sweep harness. Outcomes arrive in
/// case order whatever the worker count, so the section prints exactly
/// the sequential numbers.
struct SectionRun {
  std::vector<serve::SweepOutcome> outcomes;
  double wall_ms = 0.0;
  std::size_t workers = 1;
};

SectionRun run_section(const std::vector<serve::SweepCase>& cases) {
  using clock = std::chrono::steady_clock;
  serve::SweepOptions opts;
  opts.workers = default_workers(cases.size());
  const auto t0 = clock::now();
  SectionRun run;
  run.outcomes = serve::run_sweep(cases, opts);
  run.wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  run.workers = opts.workers;
  return run;
}

/// One §1–§6 case queued for the §7 fast-tier re-replay: the same
/// SweepCase with the engine flipped to ReplayMode::kFast, next to the
/// detailed result it must reproduce.
struct FidelityCase {
  serve::SweepCase fast_case;
  serve::ServingResult detailed;
  double detailed_wall_ms = 0.0;
};

void print_result(const char* label, const serve::ServingResult& r) {
  std::printf("  %-28s %4zu req  p50 %8.1f ms  p95 %8.1f ms  p99 %8.1f ms\n",
              label, r.completed, r.p50_latency_ms, r.p95_latency_ms,
              r.p99_latency_ms);
  std::printf("  %-28s makespan %8.1f ms  %8.1f tok/s  DRAM util %4.1f %%  "
              "mean batch %.2f\n",
              "", r.makespan_ms, r.tokens_per_second,
              100.0 * r.dram_utilization, r.mean_decode_batch);
}

void print_slo_result(const char* label, const serve::ServingResult& r) {
  std::printf("  %-28s %4zu served %3zu rejected  p99 %8.1f ms  "
              "SLO attainment %5.1f %%\n",
              label, r.completed, r.rejected, r.p99_latency_ms,
              100.0 * r.slo_attainment);
}

void print_section_wall(const SectionRun& run) {
  std::printf("  [section wall %.1f ms, %zu cases, %zu worker%s]\n",
              run.wall_ms, run.outcomes.size(), run.workers,
              run.workers == 1 ? "" : "s");
}

}  // namespace

int main(int argc, char** argv) {
  // --fast: skip the expensive 1x/2x fidelity points (CI smoke mode).
  // --json=PATH: where to write the BENCH artifact (default: cwd).
  bool fast = false;
  std::string json_path = "BENCH_serving_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::print_header(
      "serving trace (policy-driven engine)",
      "continuous batching amortizes weight traffic and overlaps prefill "
      "with decode; scheduling policies trade tail latency, SLO "
      "attainment and lane blocking on top");

  std::vector<FidelityCase> fidelity;
  // Tags cases for §7 and the JSON: copies each case with the engine
  // flipped to the fast tier, keyed to its just-computed detailed result.
  auto track = [&fidelity](const std::vector<serve::SweepCase>& cases,
                           const SectionRun& run) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      FidelityCase f;
      f.fast_case = cases[i];
      f.fast_case.engine.replay_mode(core::ReplayMode::kFast);
      f.detailed = run.outcomes[i].result;
      f.detailed_wall_ms = run.outcomes[i].wall_ms;
      fidelity.push_back(std::move(f));
    }
  };

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "serving_trace");
  json.field("mode", fast ? "fast" : "full");
  json.field("hardware_threads",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.begin_array("sections");
  auto json_section = [&json](const char* name,
                              const std::vector<serve::SweepCase>& cases,
                              const SectionRun& run) {
    json.begin_object();
    json.field("name", name);
    json.field("wall_ms", run.wall_ms);
    json.field("workers", run.workers);
    json.begin_array("cases");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      json.begin_object();
      json.field("label", cases[i].label);
      json.field("makespan_ms", run.outcomes[i].result.makespan_ms);
      json.field("wall_ms", run.outcomes[i].wall_ms);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  };

  // --- 1. Headline: the PR-1 reproduction --------------------------------
  serve::TraceConfig trace_cfg;
  trace_cfg.requests = 32;
  trace_cfg.arrival_rate_per_s = 12.0;
  trace_cfg.input_tokens = 300;
  trace_cfg.min_output_tokens = 32;
  trace_cfg.max_output_tokens = 256;
  trace_cfg.seed = 42;

  std::printf("model: SPHINX-Tiny   trace: %zu requests, Poisson %.1f req/s, "
              "l ~ U[%zu, %zu], seed %llu\n\n",
              trace_cfg.requests, trace_cfg.arrival_rate_per_s,
              trace_cfg.min_output_tokens, trace_cfg.max_output_tokens,
              static_cast<unsigned long long>(trace_cfg.seed));

  const core::ChipConfig chip8 = coarsened_chip(8.0);
  const std::vector<model::MllmConfig> sphinx_models = {model::sphinx_tiny()};
  const auto headline_trace = serve::poisson_trace(trace_cfg);

  const std::vector<serve::SweepCase> s1_cases = {
      {"s1 sequential", chip8, sphinx_models,
       serve::EngineConfig()
           .scheduler(std::make_shared<serve::ConcurrencyPolicy>(
               serve::AdmissionLimits{1, 1}))
           .manage_bandwidth(false),
       headline_trace},
      {"s1 continuous equal-bw", chip8, sphinx_models, continuous_config(false),
       headline_trace},
      {"s1 continuous bw-mgmt", chip8, sphinx_models, continuous_config(true),
       headline_trace},
  };
  const SectionRun s1 = run_section(s1_cases);
  track(s1_cases, s1);
  json_section("headline", s1_cases, s1);
  const auto& sequential = s1.outcomes[0].result;
  const auto& unmanaged = s1.outcomes[1].result;
  const auto& continuous = s1.outcomes[2].result;
  print_result("sequential (batch=1)", sequential);
  std::printf("\n");
  print_result("continuous, equal BW", unmanaged);
  std::printf("\n");
  print_result("continuous + BW mgmt", continuous);

  std::printf("\nmakespan speedup over sequential: %.2fx (continuous), "
              "%.2fx (+BW mgmt)\n",
              sequential.makespan_ms / unmanaged.makespan_ms,
              sequential.makespan_ms / continuous.makespan_ms);
  const bool beats = continuous.makespan < sequential.makespan;
  std::printf("continuous batching beats sequential on makespan: %s\n",
              beats ? "yes" : "NO");
  print_section_wall(s1);

  // --- 2. Policy comparison on a bursty SLO trace ------------------------
  std::printf("\n--- policy comparison (bursty trace, SLO deadlines) ---\n");
  serve::TraceConfig bursty = trace_cfg;
  bursty.requests = 24;
  bursty.arrival_rate_per_s = 24.0;
  bursty.burst = 8;  // 8-request bursts: deep backlog spikes
  bursty.min_output_tokens = 16;
  bursty.max_output_tokens = 128;
  bursty.slo_base_ms = 2500.0;
  bursty.slo_per_token_ms = 40.0;
  std::printf("trace: %zu requests in bursts of %zu, %.1f req/s, "
              "SLO = %.0f ms + %.0f ms/token\n\n",
              bursty.requests, bursty.burst, bursty.arrival_rate_per_s,
              bursty.slo_base_ms, bursty.slo_per_token_ms);

  auto policy_config = [](std::shared_ptr<const serve::SchedulerPolicy> sched,
                          std::shared_ptr<const serve::BatchPolicy> batch) {
    return serve::EngineConfig()
        .scheduler(std::move(sched))
        .batch_policy(std::move(batch))
        .manage_bandwidth(true);
  };
  const serve::AdmissionLimits limits{8, 16};
  // KV-capacity row rides the same grid: a tight budget (~4 full KV
  // caches) forces deferred joins and shrinks the batch.
  serve::Request worst_case;
  worst_case.input_tokens = bursty.input_tokens;
  worst_case.output_tokens = bursty.max_output_tokens;
  const Bytes kv_budget =
      4 * serve::kv_footprint_bytes(worst_case, model::sphinx_tiny());
  const auto bursty_trace = serve::poisson_trace(bursty);
  const std::vector<serve::SweepCase> s2_cases = {
      {"s2 fifo", chip8, sphinx_models,
       policy_config(std::make_shared<serve::ConcurrencyPolicy>(limits),
                     std::make_shared<serve::FifoBatch>()),
       bursty_trace},
      {"s2 srf", chip8, sphinx_models,
       policy_config(std::make_shared<serve::ConcurrencyPolicy>(limits),
                     std::make_shared<serve::ShortestRemainingFirst>()),
       bursty_trace},
      {"s2 slo-aware", chip8, sphinx_models,
       policy_config(std::make_shared<serve::SloAwarePolicy>(limits),
                     std::make_shared<serve::FifoBatch>()),
       bursty_trace},
      {"s2 kv-bounded", chip8, sphinx_models,
       policy_config(std::make_shared<serve::ConcurrencyPolicy>(limits),
                     std::make_shared<serve::FifoBatch>())
           .kv_capacity_bytes(kv_budget),
       bursty_trace},
  };
  const SectionRun s2 = run_section(s2_cases);
  track(s2_cases, s2);
  json_section("policy", s2_cases, s2);
  const auto& fifo = s2.outcomes[0].result;
  const auto& srf = s2.outcomes[1].result;
  const auto& slo = s2.outcomes[2].result;
  const auto& kv_bounded = s2.outcomes[3].result;
  print_slo_result("FIFO", fifo);
  print_slo_result("shortest-remaining-first", srf);
  print_slo_result("SLO-aware admission", slo);

  // Note p99 covers served requests only, and SLO-aware admission sheds
  // exactly the tail — so a p99 win alone would be near-tautological.
  // The gate demands load-shedding pay for itself: better served tail
  // WITHOUT giving up any SLO attainment.
  const bool slo_wins = slo.slo_attainment >= fifo.slo_attainment &&
                        slo.p99_latency_ms < fifo.p99_latency_ms;
  std::printf("\nSLO-aware improves served p99 without losing attainment: %s\n",
              slo_wins ? "yes" : "NO");

  const double oversub = static_cast<double>(kv_budget) /
                         static_cast<double>(serve::chip_kv_capacity(chip8));
  std::printf("\nKV budget %.1f MiB (%.0fx the on-chip CIM capacity): "
              "%zu deferred joins, mean batch %.2f (vs %.2f unbounded)\n",
              static_cast<double>(kv_budget) / (1024.0 * 1024.0), oversub,
              kv_bounded.kv_deferrals, kv_bounded.mean_decode_batch,
              fifo.mean_decode_batch);
  print_section_wall(s2);

  // --- 3. Prefill planners: monolithic vs chunked vs weight-resident -----
  std::printf("\n--- prefill planners: resident vs re-fetch vs monolithic "
              "(long-prefill trace) ---\n");
  serve::TraceConfig long_prefill = trace_cfg;
  long_prefill.requests = 12;
  long_prefill.arrival_rate_per_s = 16.0;
  long_prefill.input_tokens = 900;  // long multimodal prompt
  long_prefill.crops = 3;
  long_prefill.min_output_tokens = 8;
  long_prefill.max_output_tokens = 48;
  std::printf("trace: %zu requests, %zu prompt tokens, %zu crops each\n",
              long_prefill.requests, long_prefill.input_tokens,
              long_prefill.crops);

  // Residency budget: two requests' full LLM layer-group sets can stay
  // pinned at once (the rest fall back to per-chunk re-fetch). Like the
  // KV budget, this oversubscribes the physical TCDM — it models the
  // near-memory / enlarged-scratchpad design point, and the printed
  // multiple keeps that honest.
  const model::MllmConfig sphinx = model::sphinx_tiny();
  const Bytes layer_group = serve::llm_layer_group_bytes(sphinx, chip8);
  const Bytes full_set = layer_group * sphinx.llm.layers;
  const Bytes resid_budget = 2 * full_set;
  const double resid_oversub =
      static_cast<double>(resid_budget) /
      static_cast<double>(serve::chip_weight_residency_capacity(chip8));
  std::printf("residency budget: %.2f GiB = 2 full layer-group sets "
              "(%zu layers x %.1f MiB; %.0fx the physical CC TCDM)\n\n",
              static_cast<double>(resid_budget) / (1024.0 * 1024.0 * 1024.0),
              sphinx.llm.layers,
              static_cast<double>(layer_group) / (1024.0 * 1024.0),
              resid_oversub);

  // This section keeps the PR 3 PER-REQUEST pins (share_weight_pins
  // off): every request charges its own layer-group bytes, so at most
  // two of the 12 hold pins at once and the rest fall back. §4 below
  // replays the same trace with the shared-pin fix.
  const auto prefill_trace = serve::poisson_trace(long_prefill);
  const std::vector<serve::SweepCase> s3_cases = {
      {"s3 mono", chip8, sphinx_models, continuous_config(true), prefill_trace},
      {"s3 chunked", chip8, sphinx_models,
       continuous_config(true).prefill_planner(
           std::make_shared<serve::ChunkedPrefill>(128)),
       prefill_trace},
      {"s3 resident", chip8, sphinx_models,
       continuous_config(true)
           .prefill_planner(std::make_shared<serve::ResidentChunkedPrefill>(128))
           .weight_residency_bytes(resid_budget)
           .share_weight_pins(false),
       prefill_trace},
      {"s3 chained", chip8, sphinx_models,
       continuous_config(true)
           .prefill_planner(std::make_shared<serve::ResidentChunkedPrefill>(
               128, /*chain_lane_affinity=*/true))
           .weight_residency_bytes(resid_budget)
           .share_weight_pins(false),
       prefill_trace},
  };
  const SectionRun s3 = run_section(s3_cases);
  track(s3_cases, s3);
  json_section("planners", s3_cases, s3);
  const auto& mono = s3.outcomes[0].result;
  const auto& chunked = s3.outcomes[1].result;
  const auto& resident = s3.outcomes[2].result;
  const auto& chained = s3.outcomes[3].result;

  auto print_planner = [](const char* label, const serve::ServingResult& r) {
    std::printf("  %-28s CC weight fetch %7.1f GiB  makespan %8.1f ms  "
                "max CC queue delay %7.1f ms  (%zu CC jobs)\n",
                label,
                static_cast<double>(r.cc_weight_fetch_bytes) /
                    (1024.0 * 1024.0 * 1024.0),
                r.makespan_ms, r.max_cc_queue_delay_ms, r.prefill_jobs);
  };
  print_planner("monolithic prefill", mono);
  print_planner("chunked prefill (128 tok)", chunked);
  print_planner("resident-chunked (128 tok)", resident);
  print_planner("resident + lane chaining", chained);
  std::printf("\n  residency: %zu pins, %zu fallbacks, peak pinned %.2f GiB, "
              "%.1f GiB weight DMA avoided\n",
              resident.weight_pins, resident.weight_pin_fallbacks,
              static_cast<double>(resident.peak_pinned_bytes) /
                  (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(resident.cc_weight_bytes_saved) /
                  (1024.0 * 1024.0 * 1024.0));
  std::printf("  + chaining: %zu pins, %zu fallbacks, %.1f GiB avoided\n",
              chained.weight_pins, chained.weight_pin_fallbacks,
              static_cast<double>(chained.cc_weight_bytes_saved) /
                  (1024.0 * 1024.0 * 1024.0));

  const bool chunk_wins =
      chunked.max_cc_queue_delay_ms < mono.max_cc_queue_delay_ms;
  std::printf("\nchunked prefill reduces worst-case CC-lane queueing: %s\n",
              chunk_wins ? "yes" : "NO");
  const bool resident_wins =
      resident.cc_weight_fetch_bytes < chunked.cc_weight_fetch_bytes &&
      resident.makespan <= chunked.makespan;
  std::printf("resident chaining cuts CC weight traffic at equal chunk size "
              "without makespan cost: %s\n",
              resident_wins ? "yes" : "NO");
  // Lane chaining exists to shorten pin hold times: it must convert
  // that into strictly more pinned traffic than plain residency.
  const bool chaining_wins =
      chained.cc_weight_fetch_bytes < resident.cc_weight_fetch_bytes &&
      chained.weight_pins > resident.weight_pins;
  std::printf("lane chaining pins more requests and fetches less than plain "
              "residency: %s\n",
              chaining_wins ? "yes" : "NO");
  std::printf("remaining makespan gap to monolithic: %+.1f %% (chunked was "
              "%+.1f %%)\n",
              100.0 * (resident.makespan_ms - mono.makespan_ms) /
                  mono.makespan_ms,
              100.0 * (chunked.makespan_ms - mono.makespan_ms) /
                  mono.makespan_ms);
  print_section_wall(s3);

  // --- 4. Shared vs per-request weight pins -------------------------------
  // The same 12-request same-model trace: all in-flight requests serve
  // SPHINX-Tiny, so per-request pins duplicate the identical layer-group
  // bytes and halve the effective residency capacity. One refcounted pin
  // per model charges the budget once; every later request rides it for
  // free and skips the pinned layers' weight DMA on ALL its chunks.
  std::printf("\n--- shared vs per-request weight pins (same trace, "
              "multi-request same-model) ---\n\n");
  // Pinned to the PR 4 composition — fill barrier OFF (the fill-timing-
  // optimistic accounting this section's headline was measured with);
  // §6 replays shared pins with the barrier on and prices the optimism.
  const std::vector<serve::SweepCase> s4_cases = {
      {"s4 shared", chip8, sphinx_models,
       continuous_config(true)
           .prefill_planner(std::make_shared<serve::ResidentChunkedPrefill>(128))
           .weight_residency_bytes(resid_budget)  // sharing defaults on
           .rider_fill_barrier(false),
       prefill_trace},
      {"s4 shared-chained", chip8, sphinx_models,
       continuous_config(true)
           .prefill_planner(std::make_shared<serve::ResidentChunkedPrefill>(
               128, /*chain_lane_affinity=*/true))
           .weight_residency_bytes(resid_budget)
           .rider_fill_barrier(false),
       prefill_trace},
  };
  const SectionRun s4 = run_section(s4_cases);
  track(s4_cases, s4);
  json_section("shared_pins", s4_cases, s4);
  const auto& shared = s4.outcomes[0].result;
  const auto& shared_chained = s4.outcomes[1].result;

  auto print_pins = [](const char* label, const serve::ServingResult& r) {
    std::printf("  %-28s CC weight fetch %7.1f GiB  makespan %8.1f ms  "
                "%3zu pins %3zu rides %3zu fallbacks  peak %.2f GiB\n",
                label,
                static_cast<double>(r.cc_weight_fetch_bytes) /
                    (1024.0 * 1024.0 * 1024.0),
                r.makespan_ms, r.weight_pins, r.weight_shared_attaches,
                r.weight_pin_fallbacks,
                static_cast<double>(r.peak_pinned_bytes) /
                    (1024.0 * 1024.0 * 1024.0));
  };
  print_pins("per-request pins", resident);
  print_pins("shared (refcounted) pins", shared);
  print_pins("per-request + chaining", chained);
  print_pins("shared + chaining", shared_chained);

  // The bugfix gates: sharing must strictly cut both the fallbacks (no
  // same-model request is ever turned away by its own model's bytes) and
  // the CC weight traffic, while charging the budget at most one
  // layer-group set at a time (the trace serves a single model).
  const bool sharing_wins =
      shared.cc_weight_fetch_bytes < resident.cc_weight_fetch_bytes &&
      shared.weight_pin_fallbacks < resident.weight_pin_fallbacks;
  std::printf("\nshared pins fetch strictly less and fall back strictly less "
              "than per-request: %s\n",
              sharing_wins ? "yes" : "NO");
  const bool charged_once = shared.peak_pinned_bytes <= full_set &&
                            shared.weight_shared_attaches > 0;
  std::printf("budget charged once per model (peak <= one layer-group set, "
              "riders attach free): %s\n",
              charged_once ? "yes" : "NO");
  std::printf("weight DMA avoided: %.1f GiB shared vs %.1f GiB per-request "
              "(%.1f / %.1f GiB with chaining)\n",
              static_cast<double>(shared.cc_weight_bytes_saved) /
                  (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(resident.cc_weight_bytes_saved) /
                  (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(shared_chained.cc_weight_bytes_saved) /
                  (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(chained.cc_weight_bytes_saved) /
                  (1024.0 * 1024.0 * 1024.0));
  print_section_wall(s4);

  // --- 5. Fidelity sweep --------------------------------------------------
  std::printf("\n--- fidelity sweep (burst/block coarsening) ---\n");
  serve::TraceConfig sweep_cfg = trace_cfg;
  sweep_cfg.requests = 6;
  sweep_cfg.arrival_rate_per_s = 16.0;
  sweep_cfg.min_output_tokens = 8;
  sweep_cfg.max_output_tokens = 48;
  std::printf("trace: %zu requests (reduced so 1x stays affordable)%s\n\n",
              sweep_cfg.requests,
              fast ? "; --fast skips the 2x/1x points" : "");
  const double factors[] = {8.0, 4.0, 2.0, 1.0};
  const char* factor_labels[] = {"s5 8x", "s5 4x", "s5 2x", "s5 1x"};
  const int points = fast ? 2 : 4;
  const auto coarsen_trace = serve::poisson_trace(sweep_cfg);
  std::vector<serve::SweepCase> s5_cases;
  for (int i = 0; i < points; ++i) {
    s5_cases.push_back({factor_labels[i], coarsened_chip(factors[i]),
                        sphinx_models, continuous_config(true), coarsen_trace});
  }
  const SectionRun s5 = run_section(s5_cases);
  track(s5_cases, s5);
  json_section("coarsening", s5_cases, s5);
  const double reference_ms = s5.outcomes.back().result.makespan_ms;
  for (int i = 0; i < points; ++i) {
    const double ms = s5.outcomes[i].result.makespan_ms;
    std::printf("  %.0fx coarsening: makespan %8.1f ms  drift vs %s %+.2f %%\n",
                factors[i], ms, fast ? "4x" : "1x",
                100.0 * (ms - reference_ms) / reference_ms);
  }
  print_section_wall(s5);

  // --- 6. Multi-model zoo: residency-aware placement + fill barrier -------
  // Three zoo models share one residency budget that cannot hold all of
  // them. Placement decides whose layer groups live near compute:
  // keep-current (the PR 4 baseline: first-come pins, eviction the
  // moment a model's last in-flight request retires) refetches every
  // model's fill again and again, while demand-weighted keeps the
  // hottest models' pins warm across their request gaps and
  // evict-idle-on-pressure keeps everything warm until someone needs
  // the room. The fill barrier is ON for every placement row — riders
  // dispatched before a pin's fill lands re-fetch (rider_refetch_bytes)
  // — so the savings are fill-timing-honest; the barrier-off row prices
  // exactly the optimism PR 4's numbers carried.
  std::printf("\n--- multi-model zoo: placement policies x fill barrier ---\n");
  // The Table I zoo scenario lives in bench_common.hpp so §8 shards the
  // exact same models/trace/budget across the cluster.
  const bench::ZooScenario zoo_scenario =
      bench::make_zoo_scenario(trace_cfg, chip8);
  const serve::TraceConfig& zoo_cfg = zoo_scenario.trace;
  const std::vector<model::MllmConfig>& zoo = zoo_scenario.models;
  const std::vector<Bytes>& zoo_sets = zoo_scenario.set_bytes;
  const Bytes zoo_budget = zoo_scenario.residency_budget;
  std::printf("zoo: %s / %s / %s, traffic mix 4:1:1\n",
              zoo[0].name.c_str(), zoo[1].name.c_str(), zoo[2].name.c_str());
  std::printf("trace: %zu requests in bursts of %zu, Poisson %.1f req/s, "
              "%zu prompt tokens, %zu crops\n",
              zoo_cfg.requests, zoo_cfg.burst, zoo_cfg.arrival_rate_per_s,
              zoo_cfg.input_tokens, zoo_cfg.crops);
  std::printf("residency budget %.2f GiB = full sets %.2f + %.2f GiB "
              "(third set %.2f GiB does NOT also fit)\n\n",
              static_cast<double>(zoo_budget) / (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(zoo_sets[0]) / (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(zoo_sets[1]) / (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(zoo_sets[2]) / (1024.0 * 1024.0 * 1024.0));

  auto zoo_config = [&](std::shared_ptr<const serve::PlacementPolicy> placement,
                        bool barrier) {
    return continuous_config(true)
        .prefill_planner(std::make_shared<serve::ResidentChunkedPrefill>(128))
        .weight_residency_bytes(zoo_budget)
        .placement_policy(std::move(placement))
        .rider_fill_barrier(barrier);
  };
  const auto zoo_trace = serve::poisson_trace(zoo_cfg);
  const std::vector<serve::SweepCase> s6_cases = {
      {"s6 keep-current barrier-off", chip8, zoo,
       zoo_config(std::make_shared<serve::KeepCurrentPlacement>(), false),
       zoo_trace},
      {"s6 keep-current", chip8, zoo,
       zoo_config(std::make_shared<serve::KeepCurrentPlacement>(), true),
       zoo_trace},
      {"s6 demand-weighted", chip8, zoo,
       zoo_config(std::make_shared<serve::DemandWeightedPlacement>(), true),
       zoo_trace},
      {"s6 evict-idle", chip8, zoo,
       zoo_config(std::make_shared<serve::EvictIdleOnPressure>(), true),
       zoo_trace},
  };
  const SectionRun s6 = run_section(s6_cases);
  track(s6_cases, s6);
  json_section("zoo", s6_cases, s6);
  const auto& zoo_optimistic = s6.outcomes[0].result;
  const auto& zoo_keep = s6.outcomes[1].result;
  const auto& zoo_demand = s6.outcomes[2].result;
  const auto& zoo_evict = s6.outcomes[3].result;

  auto print_zoo = [](const char* label, const serve::ServingResult& r) {
    std::printf("  %-28s CC weight fetch %7.1f GiB  makespan %8.1f ms\n",
                label,
                static_cast<double>(r.cc_weight_fetch_bytes) /
                    (1024.0 * 1024.0 * 1024.0),
                r.makespan_ms);
    std::printf("  %-28s %zu pins %zu rides %zu warm %zu fallbacks "
                "%zu denials %zu evictions  rider refetch %.1f GiB\n",
                "", r.weight_pins, r.weight_shared_attaches,
                r.weight_warm_attaches, r.weight_pin_fallbacks,
                r.placement_denials, r.placement_evictions,
                static_cast<double>(r.rider_refetch_bytes) /
                    (1024.0 * 1024.0 * 1024.0));
  };
  print_zoo("keep-current, barrier OFF", zoo_optimistic);
  print_zoo("keep-current, barrier on", zoo_keep);
  print_zoo("demand-weighted, barrier on", zoo_demand);
  print_zoo("evict-idle, barrier on", zoo_evict);

  // The placement gates: demand-weighted must strictly cut the honest
  // (barrier-on) CC weight traffic vs the keep-current baseline by
  // turning refetched fills into warm rides, and evict-idle must have
  // actually exercised pressure eviction (idle pins reclaimed, not
  // drained). The barrier gate demands the optimism is priced: riders
  // really did dispatch before fills landed on this trace.
  const bool placement_wins =
      zoo_demand.cc_weight_fetch_bytes < zoo_keep.cc_weight_fetch_bytes &&
      zoo_demand.weight_warm_attaches > 0;
  std::printf("\ndemand-weighted placement fetches strictly less than "
              "keep-current (barrier on): %s\n",
              placement_wins ? "yes" : "NO");
  const bool barrier_honest = zoo_keep.rider_refetch_bytes > 0 &&
                              zoo_keep.cc_weight_fetch_bytes >
                                  zoo_optimistic.cc_weight_fetch_bytes;
  std::printf("fill barrier prices the optimism (rider re-fetches > 0, "
              "honest fetch above optimistic): %s\n",
              barrier_honest ? "yes" : "NO");
  const bool eviction_exercised = zoo_evict.placement_evictions > 0 &&
                                  zoo_evict.weight_warm_attaches > 0;
  std::printf("evict-idle keeps pins warm and reclaims them under "
              "pressure: %s\n",
              eviction_exercised ? "yes" : "NO");
  print_section_wall(s6);

  // --- 7. Fast/detailed execution tiers -----------------------------------
  // Every §1–§6 case re-replayed on the fast tier: same chip, same trace,
  // same policies — only the memory-time integrator differs
  // (ReplayMode::kFast prices each op batch analytically instead of
  // walking its DMA bursts event-by-event). The gates demand the fast
  // tier earn its keep: per-case makespan drift under 1% with identical
  // completion counts, order-of-magnitude single-replay speedup, and a
  // parallel sweep that is byte-identical whatever the worker count.
  std::printf("\n--- fast/detailed execution tiers (ReplayMode::kFast) ---\n\n");
  std::vector<serve::SweepCase> fast_cases;
  fast_cases.reserve(fidelity.size());
  for (const FidelityCase& f : fidelity) fast_cases.push_back(f.fast_case);

  using clock = std::chrono::steady_clock;
  const auto fast_t0 = clock::now();
  const auto fast_seq = serve::run_sweep(fast_cases, {/*workers=*/1});
  const double fast_seq_wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - fast_t0).count();

  bool fidelity_ok = true;
  double worst_drift = 0.0;
  double det_total_wall = 0.0;
  double fast_total_wall = 0.0;
  double s2_det_wall = 0.0;
  double s2_fast_wall = 0.0;
  double zoo_speedup = 0.0;
  json.end_array();  // sections
  json.begin_array("fidelity");
  for (std::size_t i = 0; i < fidelity.size(); ++i) {
    const FidelityCase& f = fidelity[i];
    const serve::ServingResult& d = f.detailed;
    const serve::ServingResult& r = fast_seq[i].result;
    const double drift =
        100.0 * (r.makespan_ms - d.makespan_ms) / d.makespan_ms;
    const bool counts_equal =
        r.completed == d.completed && r.rejected == d.rejected;
    const double speedup =
        f.detailed_wall_ms / std::max(fast_seq[i].wall_ms, 1e-9);
    const bool case_ok = std::fabs(drift) < 1.0 && counts_equal;
    fidelity_ok = fidelity_ok && case_ok;
    if (std::fabs(drift) > std::fabs(worst_drift)) worst_drift = drift;
    det_total_wall += f.detailed_wall_ms;
    fast_total_wall += fast_seq[i].wall_ms;
    if (f.fast_case.label.rfind("s2 ", 0) == 0) {
      s2_det_wall += f.detailed_wall_ms;
      s2_fast_wall += fast_seq[i].wall_ms;
    }
    if (f.fast_case.label == "s6 demand-weighted") zoo_speedup = speedup;
    std::printf("  %-28s det %9.1f ms  fast %9.1f ms  drift %+5.2f %%  "
                "speedup %6.1fx%s\n",
                f.fast_case.label.c_str(), d.makespan_ms, r.makespan_ms, drift,
                speedup, case_ok ? "" : "  <-- FAIL");
    json.begin_object();
    json.field("label", f.fast_case.label);
    json.field("detailed_makespan_ms", d.makespan_ms);
    json.field("fast_makespan_ms", r.makespan_ms);
    json.field("drift_pct", drift);
    json.field("detailed_wall_ms", f.detailed_wall_ms);
    json.field("fast_wall_ms", fast_seq[i].wall_ms);
    json.field("speedup", speedup);
    json.field("counts_equal", counts_equal);
    json.end_object();
  }
  json.end_array();

  std::printf("\nfast tier drifts under 1%% on every section "
              "(worst %+.2f %%, counts equal): %s\n",
              worst_drift, fidelity_ok ? "yes" : "NO");
  const bool zoo_speedup_ok = zoo_speedup >= 10.0;
  std::printf("single-replay speedup on the §6 zoo trace >= 10x: %.1fx  %s\n",
              zoo_speedup, zoo_speedup_ok ? "yes" : "NO");
  const double s2_sweep_speedup = s2_det_wall / std::max(s2_fast_wall, 1e-9);
  const bool s2_speedup_ok = s2_sweep_speedup >= 5.0;
  std::printf("fast-tier speedup on the §2 policy sweep >= 5x: %.1fx  %s\n",
              s2_sweep_speedup, s2_speedup_ok ? "yes" : "NO");
  std::printf("aggregate: detailed %.1f ms -> fast %.1f ms over %zu cases "
              "(%.0fx)\n",
              det_total_wall, fast_total_wall, fidelity.size(),
              det_total_wall / std::max(fast_total_wall, 1e-9));

  // Worker-count byte-identity: the whole fast grid under 2 and 8 workers
  // must deposit outcomes identical to the sequential run — result order
  // and every field, floats included. Unconditional (threads oversubscribe
  // harmlessly on small hosts); only the THROUGHPUT gate needs real cores.
  const auto par2_t0 = clock::now();
  const auto fast_par2 = serve::run_sweep(fast_cases, {/*workers=*/2});
  const double fast_par2_wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - par2_t0).count();
  const auto par8_t0 = clock::now();
  const auto fast_par8 = serve::run_sweep(fast_cases, {/*workers=*/8});
  const double fast_par8_wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - par8_t0).count();
  bool identity_ok = fast_par2.size() == fast_seq.size() &&
                     fast_par8.size() == fast_seq.size();
  for (std::size_t i = 0; identity_ok && i < fast_seq.size(); ++i) {
    identity_ok = serve::outcomes_identical(fast_seq[i], fast_par2[i]) &&
                  serve::outcomes_identical(fast_seq[i], fast_par8[i]);
  }
  std::printf("parallel sweep byte-identical to sequential (1/2/8 workers, "
              "%zu cases): %s\n",
              fast_cases.size(), identity_ok ? "yes" : "NO");

  const std::size_t hw = std::thread::hardware_concurrency();
  const double sweep_throughput =
      fast_seq_wall_ms / std::max(fast_par8_wall_ms, 1e-9);
  bool throughput_ok = true;
  if (hw >= 8) {
    throughput_ok = sweep_throughput >= 4.0;
    std::printf("sweep throughput at 8 workers >= 4x sequential: %.1fx  %s\n",
                sweep_throughput, throughput_ok ? "yes" : "NO");
  } else {
    std::printf("sweep throughput at 8 workers: %.1fx (gate skipped: %zu "
                "hardware thread%s)\n",
                sweep_throughput, hw, hw == 1 ? "" : "s");
  }

  json.begin_object("fast_sweep");
  json.field("cases", fast_cases.size());
  json.field("sequential_wall_ms", fast_seq_wall_ms);
  json.field("workers2_wall_ms", fast_par2_wall_ms);
  json.field("workers8_wall_ms", fast_par8_wall_ms);
  json.field("throughput_8_workers", sweep_throughput);
  json.field("throughput_gated", hw >= 8);
  json.field("identity_1_2_8", identity_ok);
  json.field("zoo_single_replay_speedup", zoo_speedup);
  json.field("policy_sweep_speedup", s2_sweep_speedup);
  json.field("worst_drift_pct", worst_drift);
  json.end_object();

  // --- 8. Cluster: replica scaling + disaggregated prefill/decode ---------
  // The §6 zoo scenario sharded across a multi-chip cluster. Three gates:
  // (a) a 1-chip replica cluster IS the single engine — the §6
  // demand-weighted replay reproduced bit-for-bit through run_cluster;
  // (b) replica tokens/s scales near-linearly at fixed zoo traffic
  // (>= 3x from 1 -> 4 chips); (c) the disaggregated split ships real KV
  // over the chip-to-chip link with the byte ledger exactly conserved.
  std::printf("\n--- cluster: replica scaling + disaggregated "
              "prefill/decode (zoo traffic) ---\n\n");

  const serve::SweepCase& s6_demand_case = s6_cases[2];  // "s6 demand-weighted"
  const serve::ClusterOutcome one_chip = serve::run_cluster(
      chip8, zoo, s6_demand_case.engine, serve::ClusterConfig{}, zoo_trace);
  const auto& s6_demand = s6.outcomes[2];
  bool cluster_identity_ok =
      one_chip.result.per_chip.size() == 1 &&
      serve::results_identical(one_chip.result.per_chip[0], s6_demand.result) &&
      one_chip.result.completed == s6_demand.result.completed &&
      one_chip.result.makespan == s6_demand.result.makespan &&
      one_chip.result.p99_latency_ms == s6_demand.result.p99_latency_ms &&
      one_chip.result.tokens_per_second == s6_demand.result.tokens_per_second &&
      one_chip.records.size() == s6_demand.records.size();
  for (std::size_t i = 0; cluster_identity_ok && i < one_chip.records.size();
       ++i) {
    cluster_identity_ok =
        serve::record_identical(one_chip.records[i], s6_demand.records[i]);
  }
  std::printf("  1-chip cluster bit-identical to the single-engine §6 "
              "replay (result + all records): %s\n",
              cluster_identity_ok ? "yes" : "NO");

  // Denser zoo traffic for the scaling rows (fast tier): one chip is
  // saturated, so added chips convert to throughput until the fixed
  // arrival window caps the win. Routing is model-affinity — the router
  // reads the same per-model demand the placement policy does, so each
  // model's weight pins stay warm on its home chips.
  serve::TraceConfig dense_cfg = zoo_scenario.trace;
  dense_cfg.requests = 96;
  dense_cfg.arrival_rate_per_s = 24.0;
  const auto dense_trace = serve::poisson_trace(dense_cfg);
  serve::EngineConfig cluster_engine_cfg = s6_demand_case.engine;
  cluster_engine_cfg.replay_mode(core::ReplayMode::kFast);
  std::printf("\n  scaling trace: %zu requests in bursts of %zu, Poisson "
              "%.1f req/s, mix 4:1:1 (fast tier, model-affinity routing)\n",
              dense_cfg.requests, dense_cfg.burst,
              dense_cfg.arrival_rate_per_s);

  const std::size_t chip_counts[] = {1, 2, 4, 8};
  std::vector<serve::ClusterOutcome> scaling;
  for (const std::size_t chips : chip_counts) {
    serve::ClusterConfig replica_cfg;
    replica_cfg.chips(chips)
        .router(std::make_shared<serve::ModelAffinityRouter>())
        .workers(default_workers(chips));
    scaling.push_back(serve::run_cluster(chip8, zoo, cluster_engine_cfg,
                                         replica_cfg, dense_trace));
  }
  const double tps_1chip = scaling[0].result.tokens_per_second;
  bool replica_scaling_ok = true;
  for (std::size_t k = 0; k < scaling.size(); ++k) {
    const serve::ClusterResult& r = scaling[k].result;
    replica_scaling_ok = replica_scaling_ok && r.completed == dense_cfg.requests;
    std::printf("  %zu chip%s  %3zu done  makespan %9.1f ms  p99 %9.1f ms  "
                "%8.1f tok/s  (%.2fx)\n",
                r.chips, r.chips == 1 ? " " : "s", r.completed, r.makespan_ms,
                r.p99_latency_ms, r.tokens_per_second,
                r.tokens_per_second / tps_1chip);
  }
  const double scaling_1_to_4 =
      scaling[2].result.tokens_per_second / tps_1chip;
  replica_scaling_ok = replica_scaling_ok && scaling_1_to_4 >= 3.0;
  std::printf("\nreplica tokens/s scales >= 3x from 1 to 4 chips "
              "(all requests served): %.2fx  %s\n",
              scaling_1_to_4, replica_scaling_ok ? "yes" : "NO");

  // Round-robin at 4 chips for comparison: model-blind sharding spreads
  // every model over every chip, so each chip's residency budget thrashes
  // across the zoo (reported, not gated — the win is traffic).
  serve::ClusterConfig rr_cfg;
  rr_cfg.chips(4).workers(default_workers(4));
  const serve::ClusterOutcome round_robin = serve::run_cluster(
      chip8, zoo, cluster_engine_cfg, rr_cfg, dense_trace);
  std::printf("model-affinity @ 4 chips: CC weight fetch %.1f GiB, %zu pins "
              "(round-robin: %.1f GiB, %zu pins, %.1f tok/s)\n",
              static_cast<double>(scaling[2].result.cc_weight_fetch_bytes) /
                  (1024.0 * 1024.0 * 1024.0),
              scaling[2].result.weight_pins,
              static_cast<double>(round_robin.result.cc_weight_fetch_bytes) /
                  (1024.0 * 1024.0 * 1024.0),
              round_robin.result.weight_pins,
              round_robin.result.tokens_per_second);

  // Disaggregated split: 2 prefill chips stream KV to 2 decode chips.
  serve::ClusterConfig disagg_cfg;
  disagg_cfg.chips(4)
      .mode(serve::ClusterMode::kDisaggregated)
      .prefill_chips(2)
      .router(std::make_shared<serve::LeastLoadedRouter>())
      .workers(default_workers(4));
  const serve::ClusterOutcome disagg = serve::run_cluster(
      chip8, zoo, cluster_engine_cfg, disagg_cfg, dense_trace);
  const serve::ClusterResult& dis = disagg.result;
  std::printf("\ndisaggregated 2 prefill + 2 decode: %zu done  "
              "p99 %9.1f ms  %8.1f tok/s\n",
              dis.completed, dis.p99_latency_ms, dis.tokens_per_second);
  std::printf("  KV migration: %zu transfers, %.1f MiB sent, %.1f MiB "
              "landed, %zu B in flight at drain\n",
              dis.kv_transfers,
              static_cast<double>(dis.kv_bytes_sent) / (1024.0 * 1024.0),
              static_cast<double>(dis.kv_migration_bytes) / (1024.0 * 1024.0),
              static_cast<std::size_t>(dis.kv_bytes_in_flight));
  std::printf("  link: occupancy %4.1f %%, worst KV queue wait %.2f ms\n",
              100.0 * dis.link_occupancy, dis.max_link_queue_ms);
  const bool kv_conservation_ok =
      dis.kv_transfers > 0 && dis.kv_migration_bytes > 0 &&
      dis.kv_bytes_in_flight == 0 &&
      dis.kv_bytes_sent == dis.kv_migration_bytes + dis.kv_bytes_in_flight;
  std::printf("KV ledger exactly conserved (sent == landed + in-flight, "
              "drained to 0): %s\n",
              kv_conservation_ok ? "yes" : "NO");

  json.begin_object("cluster");
  json.field("identity_1chip", cluster_identity_ok);
  json.begin_array("replica_scaling");
  for (const serve::ClusterOutcome& o : scaling) {
    const serve::ClusterResult& r = o.result;
    json.begin_object();
    json.field("chips", r.chips);
    json.field("completed", r.completed);
    json.field("makespan_ms", r.makespan_ms);
    json.field("p99_latency_ms", r.p99_latency_ms);
    json.field("tokens_per_second", r.tokens_per_second);
    json.field("speedup_vs_1chip", r.tokens_per_second / tps_1chip);
    json.end_object();
  }
  json.end_array();
  json.field("scaling_1_to_4", scaling_1_to_4);
  json.begin_object("routing_4chips");
  json.field("affinity_cc_weight_fetch_bytes",
             static_cast<std::size_t>(scaling[2].result.cc_weight_fetch_bytes));
  json.field("round_robin_cc_weight_fetch_bytes",
             static_cast<std::size_t>(round_robin.result.cc_weight_fetch_bytes));
  json.field("round_robin_tokens_per_second",
             round_robin.result.tokens_per_second);
  json.end_object();
  json.begin_object("disaggregated");
  json.field("chips", dis.chips);
  json.field("prefill_chips", static_cast<std::size_t>(2));
  json.field("completed", dis.completed);
  json.field("p99_latency_ms", dis.p99_latency_ms);
  json.field("tokens_per_second", dis.tokens_per_second);
  json.field("kv_transfers", dis.kv_transfers);
  json.field("kv_bytes_sent", static_cast<std::size_t>(dis.kv_bytes_sent));
  json.field("kv_migration_bytes",
             static_cast<std::size_t>(dis.kv_migration_bytes));
  json.field("kv_bytes_in_flight",
             static_cast<std::size_t>(dis.kv_bytes_in_flight));
  json.field("link_occupancy", dis.link_occupancy);
  json.field("max_link_queue_ms", dis.max_link_queue_ms);
  json.end_object();
  json.end_object();

  // --- 9. Paged KV: prefix sharing + DRAM swap at equal budget ------------
  // Four rows over ONE shared-prefix trace and ONE KV byte budget (fast
  // tier). Whole-footprint reserves every request's final footprint up
  // front; paged mode charges pages as tokens are generated, shares full
  // prefix pages copy-on-write across a conversation group, and preempts
  // cold requests to DRAM instead of deferring joins. The tight row
  // halves the budget to price the swap churn. §1–§8 never see any of
  // this: paged_kv defaults off, so their replays stay byte-identical.
  std::printf("\n--- paged KV: CoW prefix sharing + DRAM swap "
              "(equal byte budget) ---\n\n");
  serve::TraceConfig paged_cfg;
  paged_cfg.requests = 48;
  paged_cfg.arrival_rate_per_s = 24.0;
  paged_cfg.input_tokens = 300;
  paged_cfg.min_output_tokens = 32;
  paged_cfg.max_output_tokens = 128;
  paged_cfg.prefix_groups = 4;
  paged_cfg.prefix_tokens = 256;
  paged_cfg.seed = 42;
  const auto paged_trace = serve::poisson_trace(paged_cfg);
  const Bytes kv_page =
      16 * model::kv_bytes_per_token(sphinx_models[0]);
  Bytes worst_footprint = 0;
  for (const serve::Request& r : paged_trace) {
    worst_footprint = std::max(
        worst_footprint, serve::kv_footprint_bytes(r, sphinx_models[0]));
  }
  const Bytes equal_budget = 3 * worst_footprint;
  const Bytes tight_budget = worst_footprint + worst_footprint / 2;
  std::printf("  trace: %zu requests, %zu prefix groups x %zu shared "
              "tokens; page %zu KiB, budget %.1f MiB (tight %.1f MiB)\n\n",
              paged_cfg.requests, paged_cfg.prefix_groups,
              paged_cfg.prefix_tokens, kv_page >> 10,
              static_cast<double>(equal_budget) / (1024.0 * 1024.0),
              static_cast<double>(tight_budget) / (1024.0 * 1024.0));
  auto paged_base = [&] {
    return continuous_config(false).replay_mode(core::ReplayMode::kFast);
  };
  const std::vector<serve::SweepCase> s9_cases = {
      {"s9 whole-footprint", chip8, sphinx_models,
       paged_base().kv_capacity_bytes(equal_budget), paged_trace},
      {"s9 paged no-share", chip8, sphinx_models,
       paged_base()
           .kv_capacity_bytes(equal_budget)
           .paged_kv(true)
           .kv_page_bytes(kv_page)
           .kv_prefix_sharing(false),
       paged_trace},
      {"s9 paged+prefix", chip8, sphinx_models,
       paged_base()
           .kv_capacity_bytes(equal_budget)
           .paged_kv(true)
           .kv_page_bytes(kv_page),
       paged_trace},
      {"s9 paged+prefix tight", chip8, sphinx_models,
       paged_base()
           .kv_capacity_bytes(tight_budget)
           .paged_kv(true)
           .kv_page_bytes(kv_page),
       paged_trace},
  };
  const SectionRun s9 = run_section(s9_cases);
  const auto& whole_kv = s9.outcomes[0].result;
  const auto& paged_noshare = s9.outcomes[1].result;
  const auto& paged_prefix = s9.outcomes[2].result;
  const auto& paged_tight = s9.outcomes[3].result;
  for (std::size_t i = 0; i < s9_cases.size(); ++i) {
    const serve::ServingResult& r = s9.outcomes[i].result;
    std::printf("  %-24s %3zu done  makespan %8.1f ms  %7.1f tok/s  "
                "peak batch %zu  peak KV %5.1f MiB\n",
                s9_cases[i].label.c_str(), r.completed, r.makespan_ms,
                r.tokens_per_second, r.peak_decode_batch,
                static_cast<double>(r.peak_kv_reserved_bytes) /
                    (1024.0 * 1024.0));
    if (r.kv_pages_allocated > 0) {
      std::printf("  %-24s pages %zu alloc / %zu freed  shared attach %zu "
                  "(saved %zu)  swap out %zu  refetch %.1f MiB\n",
                  "", r.kv_pages_allocated, r.kv_pages_freed,
                  r.kv_shared_attaches, r.kv_shared_pages_saved,
                  r.kv_pages_swapped_out,
                  static_cast<double>(r.kv_swap_refetch_bytes) /
                      (1024.0 * 1024.0));
    }
  }

  // Gate (a): at the SAME byte budget, paged + prefix sharing sustains
  // strictly more concurrent decodes — or matches throughput on strictly
  // fewer peak KV bytes.
  const bool paged_concurrency_ok =
      paged_prefix.peak_decode_batch > whole_kv.peak_decode_batch ||
      (paged_prefix.tokens_per_second >= whole_kv.tokens_per_second &&
       paged_prefix.peak_kv_reserved_bytes < whole_kv.peak_kv_reserved_bytes);
  // Gate (b): every paged row drains its ledger exactly and serves the
  // whole trace.
  bool paged_conservation_ok = true;
  for (std::size_t i = 1; i < s9.outcomes.size(); ++i) {
    const serve::ServingResult& r = s9.outcomes[i].result;
    paged_conservation_ok = paged_conservation_ok &&
                            r.completed == paged_cfg.requests &&
                            r.kv_pages_allocated > 0 &&
                            r.kv_pages_allocated == r.kv_pages_freed;
  }
  // Gate (c): the sharing row actually shared (riders attached and pages
  // were saved), and switching sharing off removes every attach.
  const bool prefix_sharing_ok = paged_prefix.kv_shared_attaches > 0 &&
                                 paged_prefix.kv_shared_pages_saved > 0 &&
                                 paged_noshare.kv_shared_attaches == 0;
  // Gate (d): the tight row survives on a fraction of the budget by
  // actually paying DRAM re-fetches (swap exercised, nothing rejected).
  const bool paged_swap_ok = paged_tight.kv_swap_refetch_bytes > 0 &&
                             paged_tight.completed == paged_cfg.requests &&
                             paged_tight.peak_kv_reserved_bytes <
                                 whole_kv.peak_kv_reserved_bytes;
  std::printf("\npaged+prefix sustains more concurrency at the same "
              "budget (peak batch %zu vs %zu): %s\n",
              paged_prefix.peak_decode_batch, whole_kv.peak_decode_batch,
              paged_concurrency_ok ? "yes" : "NO");
  std::printf("page ledger exactly conserved on every paged row "
              "(alloc == freed > 0, all served): %s\n",
              paged_conservation_ok ? "yes" : "NO");
  std::printf("prefix sharing engaged (%zu attaches, %zu pages saved; 0 "
              "with sharing off): %s\n",
              paged_prefix.kv_shared_attaches,
              paged_prefix.kv_shared_pages_saved,
              prefix_sharing_ok ? "yes" : "NO");
  std::printf("tight budget completes via DRAM swap (%.1f MiB re-fetched, "
              "peak KV %.1f vs %.1f MiB): %s\n",
              static_cast<double>(paged_tight.kv_swap_refetch_bytes) /
                  (1024.0 * 1024.0),
              static_cast<double>(paged_tight.peak_kv_reserved_bytes) /
                  (1024.0 * 1024.0),
              static_cast<double>(whole_kv.peak_kv_reserved_bytes) /
                  (1024.0 * 1024.0),
              paged_swap_ok ? "yes" : "NO");
  print_section_wall(s9);

  json.begin_object("paged_kv");
  json.field("page_bytes", static_cast<std::size_t>(kv_page));
  json.field("equal_budget_bytes", static_cast<std::size_t>(equal_budget));
  json.field("tight_budget_bytes", static_cast<std::size_t>(tight_budget));
  json.begin_array("cases");
  for (std::size_t i = 0; i < s9_cases.size(); ++i) {
    const serve::ServingResult& r = s9.outcomes[i].result;
    json.begin_object();
    json.field("label", s9_cases[i].label);
    json.field("completed", r.completed);
    json.field("makespan_ms", r.makespan_ms);
    json.field("tokens_per_second", r.tokens_per_second);
    json.field("peak_decode_batch", r.peak_decode_batch);
    json.field("peak_kv_reserved_bytes",
               static_cast<std::size_t>(r.peak_kv_reserved_bytes));
    json.field("kv_deferrals", r.kv_deferrals);
    json.field("kv_pages_allocated", r.kv_pages_allocated);
    json.field("kv_pages_freed", r.kv_pages_freed);
    json.field("kv_shared_attaches", r.kv_shared_attaches);
    json.field("kv_shared_pages_saved", r.kv_shared_pages_saved);
    json.field("kv_pages_swapped_out", r.kv_pages_swapped_out);
    json.field("kv_swap_refetch_bytes",
               static_cast<std::size_t>(r.kv_swap_refetch_bytes));
    json.end_object();
  }
  json.end_array();
  json.field("concurrency_ok", paged_concurrency_ok);
  json.field("conservation_ok", paged_conservation_ok);
  json.field("prefix_sharing_ok", prefix_sharing_ok);
  json.field("swap_ok", paged_swap_ok);
  json.end_object();

  // --- 10. Heterogeneous offload: EdgeMM + fat-GPU backend mixes ----------
  // The §6 long-prefill zoo trace (900-token prompts, 2 crops) replayed
  // on one chip that is now an EdgeMM + RTX-3060-class pair (fast tier,
  // chunked prefill so the threshold policy can split mid-request). The
  // OffloadPolicy decides WHERE each prefill chunk executes: NoOffload
  // keeps everything local and must be bit-identical to a config with no
  // fat backend at all; PrefillToFat ships every long prompt's prefill
  // (encoder included) to the GPU and the finished KV back over a
  // ledgered ChipLink-style return link while decode stays on EdgeMM;
  // the threshold policy offloads chunks only under CC queue pressure.
  std::printf("\n--- heterogeneous offload: EdgeMM + fat backend mixes "
              "(zoo trace) ---\n\n");
  const baselines::GpuSpec fat_spec;  // the Table II RTX 3060 laptop model
  std::printf("fat backend: %s (%.0f TFLOP/s, %.0f GB/s, launch %.0f us); "
              "KV returns over the chip link\n",
              fat_spec.name.c_str(), fat_spec.peak_flops / 1e12,
              fat_spec.memory_bandwidth / 1e9,
              fat_spec.kernel_launch_seconds * 1e6);
  auto hetero_base = [&] {
    return continuous_config(true)
        .prefill_planner(std::make_shared<serve::ChunkedPrefill>(256))
        .replay_mode(core::ReplayMode::kFast);
  };
  const std::vector<serve::SweepCase> s10_cases = {
      {"s10 edgemm-only", chip8, zoo, hetero_base(), zoo_trace},
      {"s10 no-offload+gpu", chip8, zoo, hetero_base().fat_backend(fat_spec),
       zoo_trace},
      {"s10 prefill-to-fat", chip8, zoo,
       hetero_base().fat_backend(fat_spec).offload_policy(
           std::make_shared<serve::PrefillToFat>(512)),
       zoo_trace},
      {"s10 threshold", chip8, zoo,
       hetero_base().fat_backend(fat_spec).offload_policy(
           std::make_shared<serve::ThresholdOffload>(2)),
       zoo_trace},
  };
  const SectionRun s10 = run_section(s10_cases);
  const auto& het_local = s10.outcomes[0].result;
  const auto& het_noop = s10.outcomes[1].result;
  const auto& het_ptf = s10.outcomes[2].result;

  // Decode-phase p99 (last-token retire minus prefill end, which for an
  // offloaded request includes the KV return shipment): the guardrail
  // that the prefill win was not bought with decode tail latency.
  auto decode_p99_ms = [&](const std::vector<serve::RequestRecord>& records) {
    std::vector<double> decode_ms;
    for (const serve::RequestRecord& rec : records) {
      if (!rec.done) continue;
      decode_ms.push_back(
          cycles_to_ms(rec.finish - rec.prefill_end, chip8.clock_hz));
    }
    return percentile(decode_ms, 99.0);
  };
  std::vector<double> s10_decode_p99;
  for (const serve::SweepOutcome& o : s10.outcomes) {
    s10_decode_p99.push_back(decode_p99_ms(o.records));
  }
  for (std::size_t i = 0; i < s10_cases.size(); ++i) {
    const serve::ServingResult& r = s10.outcomes[i].result;
    std::printf("  %-20s %3zu done  makespan %8.1f ms  %6.1f tok/s  "
                "decode p99 %7.1f ms\n",
                s10_cases[i].label.c_str(), r.completed, r.makespan_ms,
                r.tokens_per_second, s10_decode_p99[i]);
    if (r.offloaded_chunks > 0) {
      std::printf("  %-20s offloaded %zu req / %zu chunks  GPU busy %4.1f %%  "
                  "moved %.2f GiB  KV back %.1f MiB (%zu B in flight)\n",
                  "", r.offloaded_requests, r.offloaded_chunks,
                  100.0 * r.fat_busy_fraction,
                  static_cast<double>(r.fat_bytes_moved) /
                      (1024.0 * 1024.0 * 1024.0),
                  static_cast<double>(r.kv_return_bytes_landed) /
                      (1024.0 * 1024.0),
                  static_cast<std::size_t>(r.kv_return_bytes_in_flight));
    }
  }

  // Gate (a): an idle fat backend is free — NoOffload with the GPU
  // configured replays byte-identically (result AND every record) to
  // the EdgeMM-only config.
  bool s10_identity_ok =
      serve::results_identical(het_local, het_noop) &&
      s10.outcomes[0].records.size() == s10.outcomes[1].records.size();
  if (s10_identity_ok) {
    for (std::size_t i = 0; i < s10.outcomes[0].records.size(); ++i) {
      s10_identity_ok = s10_identity_ok &&
                        serve::record_identical(s10.outcomes[0].records[i],
                                                s10.outcomes[1].records[i]);
    }
  }
  // Gate (b): shipping the long prefills to the fat backend wins on
  // makespan or sustained tokens/s — and it actually offloaded.
  const bool s10_offload_win =
      het_ptf.offloaded_requests > 0 &&
      (het_ptf.makespan < het_local.makespan ||
       het_ptf.tokens_per_second > het_local.tokens_per_second);
  // Gate (c): the win is not bought with decode tail latency (equal
  // decode p99, up to 5% measurement slack on the zoo trace).
  const bool s10_decode_p99_ok =
      s10_decode_p99[2] <= s10_decode_p99[0] * 1.05;
  // Gate (d): the KV return ledger is exactly conserved on every
  // offloading row — sent == landed + in-flight, drained to 0 in flight
  // — and the PrefillToFat row really shipped KV back.
  bool s10_link_ok = het_ptf.kv_return_transfers > 0;
  for (const serve::SweepOutcome& o : s10.outcomes) {
    const serve::ServingResult& r = o.result;
    s10_link_ok = s10_link_ok && r.kv_return_bytes_in_flight == 0 &&
                  r.kv_return_bytes_sent ==
                      r.kv_return_bytes_landed + r.kv_return_bytes_in_flight;
  }
  std::printf("\nidle fat backend is free (NoOffload+gpu bit-identical to "
              "edgemm-only): %s\n",
              s10_identity_ok ? "yes" : "NO");
  std::printf("prefill-to-fat wins makespan or tokens/s (%.1f -> %.1f ms, "
              "%.1f -> %.1f tok/s): %s\n",
              het_local.makespan_ms, het_ptf.makespan_ms,
              het_local.tokens_per_second, het_ptf.tokens_per_second,
              s10_offload_win ? "yes" : "NO");
  std::printf("decode p99 holds at the offloaded operating point "
              "(%.1f vs %.1f ms): %s\n",
              s10_decode_p99[2], s10_decode_p99[0],
              s10_decode_p99_ok ? "yes" : "NO");
  std::printf("KV return ledger exactly conserved (sent == landed + "
              "in-flight == landed): %s\n",
              s10_link_ok ? "yes" : "NO");
  print_section_wall(s10);

  json.begin_object("backend_mix");
  json.field("fat_backend", fat_spec.name);
  json.begin_array("cases");
  for (std::size_t i = 0; i < s10_cases.size(); ++i) {
    const serve::ServingResult& r = s10.outcomes[i].result;
    json.begin_object();
    json.field("label", s10_cases[i].label);
    json.field("completed", r.completed);
    json.field("makespan_ms", r.makespan_ms);
    json.field("tokens_per_second", r.tokens_per_second);
    json.field("decode_p99_ms", s10_decode_p99[i]);
    json.field("offloaded_requests", r.offloaded_requests);
    json.field("offloaded_chunks", r.offloaded_chunks);
    json.field("fat_bytes_moved", static_cast<std::size_t>(r.fat_bytes_moved));
    json.field("fat_kernel_launches", r.fat_kernel_launches);
    json.field("fat_busy_fraction", r.fat_busy_fraction);
    json.field("kv_return_transfers", r.kv_return_transfers);
    json.field("kv_return_bytes_sent",
               static_cast<std::size_t>(r.kv_return_bytes_sent));
    json.field("kv_return_bytes_landed",
               static_cast<std::size_t>(r.kv_return_bytes_landed));
    json.field("kv_return_bytes_in_flight",
               static_cast<std::size_t>(r.kv_return_bytes_in_flight));
    json.end_object();
  }
  json.end_array();
  json.field("identity_ok", s10_identity_ok);
  json.field("offload_win", s10_offload_win);
  json.field("decode_p99_ok", s10_decode_p99_ok);
  json.field("link_ok", s10_link_ok);
  json.end_object();

  // --- 11. Load-adaptive quality: QualityPolicy under SLO pressure --------
  // The §6 zoo trace pushed into overload (48 requests in bursts of 4 at
  // 6 req/s, per-request deadlines) behind SLO-aware admission. The
  // QualityPolicy seam decides each request's FFN keep fraction at
  // admission and re-judges it at every chunk boundary: StaticQuality
  // serves everything at full keep and can only shed load by rejecting;
  // SloPressureQuality prunes when a request's estimated finish misses
  // its deadline (relaxing only past a hysteresis margin, so constant
  // load cannot make it oscillate); QueueDepthQuality prunes in
  // proportion to queue depth. The bet the gates check: trading FFN
  // columns for schedule slack keeps requests admitted AND inside their
  // deadlines at a bounded task-proxy accuracy cost.
  std::printf("\n--- load-adaptive quality: dynamic pruning under SLO "
              "pressure (overloaded zoo trace) ---\n\n");
  serve::TraceConfig q_cfg = zoo_cfg;
  q_cfg.requests = 48;
  q_cfg.arrival_rate_per_s = 4.0;
  q_cfg.burst = 4;
  q_cfg.slo_base_ms = 4000.0;
  q_cfg.slo_per_token_ms = 100.0;
  q_cfg.seed = 77;
  const auto q_trace = serve::poisson_trace(q_cfg);
  std::printf("trace: %zu requests in bursts of %zu, Poisson %.1f req/s, "
              "SLO %.0f ms + %.0f ms/token, SLO-aware admission\n\n",
              q_cfg.requests, q_cfg.burst, q_cfg.arrival_rate_per_s,
              q_cfg.slo_base_ms, q_cfg.slo_per_token_ms);
  auto quality_base = [&] {
    return serve::EngineConfig()
        .scheduler(std::make_shared<serve::SloAwarePolicy>(
            serve::AdmissionLimits{8, 16}))
        .manage_bandwidth(true)
        .prefill_planner(std::make_shared<serve::ChunkedPrefill>(256))
        .replay_mode(core::ReplayMode::kFast);
  };
  const std::vector<serve::SweepCase> s11_cases = {
      {"s11 static-quality", chip8, zoo, quality_base(), q_trace},
      {"s11 slo-pressure", chip8, zoo,
       quality_base()
           .quality_policy(std::make_shared<serve::SloPressureQuality>())
           .quality_band(0.5, 1.0),
       q_trace},
      {"s11 queue-depth", chip8, zoo,
       quality_base()
           .quality_policy(std::make_shared<serve::QueueDepthQuality>(1, 6))
           .quality_band(0.5, 1.0),
       q_trace},
  };
  const SectionRun s11 = run_section(s11_cases);
  const auto& q_static = s11.outcomes[0].result;
  const auto& q_slo = s11.outcomes[1].result;
  const auto& q_depth = s11.outcomes[2].result;
  for (std::size_t i = 0; i < s11_cases.size(); ++i) {
    const serve::ServingResult& r = s11.outcomes[i].result;
    std::printf("  %-20s %3zu done %3zu rejected  SLO attainment %5.1f %%  "
                "p99 %8.1f ms\n",
                s11_cases[i].label.c_str(), r.completed, r.rejected,
                100.0 * r.slo_attainment, r.p99_latency_ms);
    std::printf("  %-20s %zu downgrades %zu restores  %zu degraded tokens  "
                "accuracy proxy mean %.4f / min %.4f\n",
                "", r.quality_downgrades, r.quality_restores,
                r.tokens_at_degraded_quality, r.accuracy_proxy_mean,
                r.accuracy_proxy_min);
  }

  // Gate (a): the pressure policies actually degraded on this trace and
  // StaticQuality never did — the ledger is live, not vacuous.
  const bool s11_degrade_ok = q_static.quality_downgrades == 0 &&
                              q_slo.quality_downgrades > 0 &&
                              q_depth.quality_downgrades > 0;
  // Gate (b): trading quality for schedule slack wins the SLO — the
  // slo-pressure row strictly improves attainment over static full
  // quality on the same trace.
  const bool s11_slo_ok = q_slo.slo_attainment > q_static.slo_attainment;
  // Gate (c): degradation substitutes for shedding — strictly fewer
  // rejections than the static row.
  const bool s11_reject_ok = q_slo.rejected < q_static.rejected;
  // Gate (d): the quality cost is bounded — the static row is exactly
  // 1.0 (nothing was ever pruned below its base), every degrading row's
  // worst-served request stays at or above the accuracy the band floor
  // prices (the engine really clamped every judgment into [0.5, 1]),
  // and the mean task-proxy accuracy holds 0.75.
  double s11_proxy_floor = 1.0;
  for (const model::MllmConfig& m : zoo) {
    s11_proxy_floor =
        std::min(s11_proxy_floor, serve::quality_accuracy_proxy(m, 0.5));
  }
  const bool s11_accuracy_ok = q_static.accuracy_proxy_mean == 1.0 &&
                               q_slo.accuracy_proxy_min >= s11_proxy_floor &&
                               q_depth.accuracy_proxy_min >= s11_proxy_floor &&
                               q_slo.accuracy_proxy_mean >= 0.75 &&
                               q_depth.accuracy_proxy_mean >= 0.75;
  // Gate (e): the seam is free when static — the §10 edgemm-only case
  // replayed with the default quality config spelled out explicitly
  // (StaticQuality + the [0.25, 1] band) is bit-identical, result and
  // every record.
  const std::vector<serve::SweepCase> s11_identity_cases = {
      {s10_cases[0].label, chip8, zoo,
       hetero_base()
           .quality_policy(std::make_shared<serve::StaticQuality>())
           .quality_band(0.25, 1.0),
       zoo_trace},
  };
  const SectionRun s11_id = run_section(s11_identity_cases);
  const bool s11_identity_ok =
      serve::outcomes_identical(s11_id.outcomes[0], s10.outcomes[0]);

  std::printf("\npressure policies degrade, static never does: %s\n",
              s11_degrade_ok ? "yes" : "NO");
  std::printf("slo-pressure strictly improves SLO attainment "
              "(%.1f %% -> %.1f %%): %s\n",
              100.0 * q_static.slo_attainment, 100.0 * q_slo.slo_attainment,
              s11_slo_ok ? "yes" : "NO");
  std::printf("degradation substitutes for shedding (%zu -> %zu rejected): "
              "%s\n",
              q_static.rejected, q_slo.rejected, s11_reject_ok ? "yes" : "NO");
  std::printf("accuracy cost bounded (mean proxy %.4f / %.4f >= 0.75, "
              "min >= band floor %.4f): %s\n",
              q_slo.accuracy_proxy_mean, q_depth.accuracy_proxy_mean,
              s11_proxy_floor, s11_accuracy_ok ? "yes" : "NO");
  std::printf("explicit StaticQuality + default band is bit-identical to "
              "the default config: %s\n",
              s11_identity_ok ? "yes" : "NO");
  print_section_wall(s11);

  json.begin_object("quality");
  json.begin_array("cases");
  for (std::size_t i = 0; i < s11_cases.size(); ++i) {
    const serve::ServingResult& r = s11.outcomes[i].result;
    json.begin_object();
    json.field("label", s11_cases[i].label);
    json.field("completed", r.completed);
    json.field("rejected", r.rejected);
    json.field("makespan_ms", r.makespan_ms);
    json.field("slo_attainment", r.slo_attainment);
    json.field("p99_latency_ms", r.p99_latency_ms);
    json.field("quality_downgrades", r.quality_downgrades);
    json.field("quality_restores", r.quality_restores);
    json.field("tokens_at_degraded_quality", r.tokens_at_degraded_quality);
    json.field("accuracy_proxy_mean", r.accuracy_proxy_mean);
    json.field("accuracy_proxy_min", r.accuracy_proxy_min);
    json.end_object();
  }
  json.end_array();
  json.field("degrade_ok", s11_degrade_ok);
  json.field("slo_ok", s11_slo_ok);
  json.field("reject_ok", s11_reject_ok);
  json.field("accuracy_ok", s11_accuracy_ok);
  json.field("identity_ok", s11_identity_ok);
  json.end_object();

  const bool ok = beats && slo_wins && chunk_wins && resident_wins &&
                  chaining_wins && sharing_wins && charged_once &&
                  placement_wins && barrier_honest && eviction_exercised &&
                  fidelity_ok && zoo_speedup_ok && s2_speedup_ok &&
                  identity_ok && throughput_ok && cluster_identity_ok &&
                  replica_scaling_ok && kv_conservation_ok &&
                  paged_concurrency_ok && paged_conservation_ok &&
                  prefix_sharing_ok && paged_swap_ok && s10_identity_ok &&
                  s10_offload_win && s10_decode_p99_ok && s10_link_ok &&
                  s11_degrade_ok && s11_slo_ok && s11_reject_ok &&
                  s11_accuracy_ok && s11_identity_ok;

  json.begin_object("self_checks");
  json.field("continuous_beats_sequential", beats);
  json.field("slo_wins", slo_wins);
  json.field("chunk_wins", chunk_wins);
  json.field("resident_wins", resident_wins);
  json.field("chaining_wins", chaining_wins);
  json.field("sharing_wins", sharing_wins);
  json.field("charged_once", charged_once);
  json.field("placement_wins", placement_wins);
  json.field("barrier_honest", barrier_honest);
  json.field("eviction_exercised", eviction_exercised);
  json.field("fidelity_ok", fidelity_ok);
  json.field("zoo_speedup_ok", zoo_speedup_ok);
  json.field("policy_sweep_speedup_ok", s2_speedup_ok);
  json.field("sweep_identity_ok", identity_ok);
  json.field("cluster_identity_ok", cluster_identity_ok);
  json.field("replica_scaling_ok", replica_scaling_ok);
  json.field("kv_conservation_ok", kv_conservation_ok);
  json.field("paged_concurrency_ok", paged_concurrency_ok);
  json.field("paged_conservation_ok", paged_conservation_ok);
  json.field("prefix_sharing_ok", prefix_sharing_ok);
  json.field("paged_swap_ok", paged_swap_ok);
  json.field("offload_identity_ok", s10_identity_ok);
  json.field("offload_win_ok", s10_offload_win);
  json.field("offload_decode_p99_ok", s10_decode_p99_ok);
  json.field("offload_link_ok", s10_link_ok);
  json.field("quality_degrade_ok", s11_degrade_ok);
  json.field("quality_slo_ok", s11_slo_ok);
  json.field("quality_reject_ok", s11_reject_ok);
  json.field("quality_accuracy_ok", s11_accuracy_ok);
  json.field("quality_identity_ok", s11_identity_ok);
  json.field("all_passed", ok);
  json.end_object();
  json.end_object();
  if (json.write(json_path)) {
    std::printf("\nBENCH artifact written: %s\n", json_path.c_str());
  } else {
    std::printf("\nBENCH artifact NOT written (cannot open %s)\n",
                json_path.c_str());
  }

  std::printf("\nall self-checks passed: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
