// Serving-trace bench: replays a deterministic Poisson request trace on
// the heterogeneous chip through the request-level ServingEngine and
// reports tail latency + throughput; the sequential single-request
// replay (admission limited to one in-flight request, no continuous
// batching) is the baseline the engine must beat on makespan.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "serve/serving_engine.hpp"
#include "serve/trace.hpp"

namespace {

using namespace edgemm;

serve::ServingResult replay(const serve::TraceConfig& trace_cfg,
                            const serve::AdmissionLimits& limits,
                            bool manage_bandwidth) {
  serve::ServingOptions options;
  options.admission = limits;
  options.manage_bandwidth = manage_bandwidth;
  core::ChipConfig cfg = core::default_chip_config();
  // Coarse event granularity for multi-second traces: larger
  // double-buffer blocks and DMA bursts (with the throttle interval
  // scaled to keep per-interval budgets well above one burst). Total
  // traffic and compute are unchanged.
  cfg.timing_block_scale = 8.0;
  cfg.dma.burst_bytes *= 4;
  cfg.dma.throttle_interval *= 4;
  serve::ServingEngine engine(cfg, {model::sphinx_tiny()}, options);
  return engine.run(serve::poisson_trace(trace_cfg));
}

void print_result(const char* label, const serve::ServingResult& r) {
  std::printf("  %-28s %4zu req  p50 %8.1f ms  p95 %8.1f ms  p99 %8.1f ms\n",
              label, r.completed, r.p50_latency_ms, r.p95_latency_ms,
              r.p99_latency_ms);
  std::printf("  %-28s makespan %8.1f ms  %8.1f tok/s  DRAM util %4.1f %%  "
              "mean batch %.2f\n",
              "", r.makespan_ms, r.tokens_per_second,
              100.0 * r.dram_utilization, r.mean_decode_batch);
}

}  // namespace

int main() {
  bench::print_header(
      "serving trace (request-level engine)",
      "continuous batching amortizes weight traffic and overlaps prefill "
      "with decode, beating sequential replay on makespan");

  serve::TraceConfig trace_cfg;
  trace_cfg.requests = 32;
  trace_cfg.arrival_rate_per_s = 12.0;
  trace_cfg.input_tokens = 300;
  trace_cfg.min_output_tokens = 32;
  trace_cfg.max_output_tokens = 256;
  trace_cfg.seed = 42;

  std::printf("model: SPHINX-Tiny   trace: %zu requests, Poisson %.1f req/s, "
              "l ~ U[%zu, %zu], seed %llu\n\n",
              trace_cfg.requests, trace_cfg.arrival_rate_per_s,
              trace_cfg.min_output_tokens, trace_cfg.max_output_tokens,
              static_cast<unsigned long long>(trace_cfg.seed));

  const auto sequential =
      replay(trace_cfg, serve::AdmissionLimits{1, 1}, /*manage_bandwidth=*/false);
  print_result("sequential (batch=1)", sequential);
  std::printf("\n");

  const auto unmanaged =
      replay(trace_cfg, serve::AdmissionLimits{8, 16}, /*manage_bandwidth=*/false);
  print_result("continuous, equal BW", unmanaged);
  std::printf("\n");

  const auto continuous =
      replay(trace_cfg, serve::AdmissionLimits{8, 16}, /*manage_bandwidth=*/true);
  print_result("continuous + BW mgmt", continuous);

  std::printf("\nmakespan speedup over sequential: %.2fx (continuous), "
              "%.2fx (+BW mgmt)\n",
              sequential.makespan_ms / unmanaged.makespan_ms,
              sequential.makespan_ms / continuous.makespan_ms);
  const bool beats = continuous.makespan < sequential.makespan;
  std::printf("continuous batching beats sequential on makespan: %s\n",
              beats ? "yes" : "NO");
  return beats ? 0 : 1;
}
