#!/usr/bin/env python3
"""Markdown link checker for README.md + docs/ (stdlib only).

Verifies that every relative link target in the given markdown files (or
every .md file under given directories) exists on disk, and that
intra-document anchors (#heading) resolve to a heading in the target
file. External links (http/https/mailto) are not fetched — CI must stay
offline-deterministic.

Usage: tools/check_markdown_links.py README.md docs [more files/dirs...]
Exit status: 0 when every link resolves, 1 otherwise (failures listed).
"""

import os
import re
import sys

# [text](target) — target captured up to the closing paren; images and
# reference-style definitions share the same inline form we care about.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def strip_code(text: str) -> str:
    """Blank out fenced blocks and inline code: `ops[i](ctx)` in an
    example is not a link, and headings inside fences are not anchors."""
    return INLINE_CODE_RE.sub("", FENCE_RE.sub("", text))


def heading_anchor(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces->dashes."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def collect_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        else:
            files.append(arg)
    return sorted(set(files))


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as fh:
        text = strip_code(fh.read())
    anchors = set()
    counts = {}
    for heading in HEADING_RE.findall(text):
        base = heading_anchor(heading)
        # GitHub dedupes repeated headings with -1, -2, ... suffixes.
        n = counts.get(base, 0)
        counts[base] = n + 1
        anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


def check(files):
    failures = []
    for path in files:
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as fh:
            text = strip_code(fh.read())
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, anchor = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, target)) if target else path
            if not os.path.exists(resolved):
                failures.append(f"{path}: broken link -> {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if heading_anchor(anchor) not in anchors_of(resolved):
                    failures.append(f"{path}: missing anchor -> {target}#{anchor}")
    return failures


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        return 2
    files = collect_files(args)
    missing = [f for f in files if not os.path.exists(f)]
    if missing:
        for f in missing:
            print(f"no such file: {f}")
        return 1
    failures = check(files)
    for failure in failures:
        print(failure)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
