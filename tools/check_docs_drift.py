#!/usr/bin/env python3
"""Docs-drift guard: EngineConfig knobs named in docs must exist (stdlib only).

The serving docs reference engine knobs as `EngineConfig::<knob>` (and
`ServingResult.<counter>` / `ServingResult::<counter>`). When a knob is
renamed or removed, prose silently rots — this guard fails CI instead.
Every knob referenced anywhere in the given markdown files/dirs must
appear as an identifier in the corresponding header:

  EngineConfig::<name>  -> src/serve/engine_config.hpp
  ServingResult::<name> -> src/serve/serving_engine.hpp
  ReplayMode::<name>    -> src/core/fast_replay.hpp
  SweepCase / SweepOptions / SweepOutcome::<name> -> src/serve/sweep.hpp
  ClusterConfig::<name> -> src/serve/cluster/cluster_config.hpp
  ClusterResult / ClusterOutcome::<name> -> src/serve/cluster/cluster_engine.hpp
  RouterPolicy::<name>  -> src/serve/cluster/router.hpp
  ChipLink::<name>      -> src/mem/memory_path.hpp
  KvPageAllocator / SwapPolicy::<name> -> src/serve/kv_pages.hpp
  ExecutionBackend::<name>  -> src/core/execution_backend.hpp
  GpuBackend / GpuSpec::<name> -> src/baselines/gpu_backend.hpp + gpu_model.hpp
  OffloadPolicy / OffloadContext::<name> -> src/serve/policy.hpp
  QualityPolicy / QualityContext::<name> -> src/serve/policy.hpp
  RequestRecord::<name> -> src/serve/request.hpp

Offline and dependency-free by design, like check_markdown_links.py.

Usage: tools/check_docs_drift.py README.md docs [more files/dirs...]
Exit status: 0 when every referenced knob exists, 1 otherwise.
"""

import os
import re
import sys

# `EngineConfig::knob` or `ServingResult::counter` (also matched with a
# dot, as prose sometimes writes `ServingResult.rider_refetch_bytes`).
REF_RE = re.compile(
    r"\b(EngineConfig|ServingResult|ReplayMode|SweepCase|SweepOptions"
    r"|SweepOutcome|ClusterConfig|ClusterResult|ClusterOutcome"
    r"|RouterPolicy|ChipLink|KvPageAllocator|SwapPolicy|ExecutionBackend"
    r"|GpuBackend|GpuSpec|OffloadPolicy|OffloadContext"
    r"|QualityPolicy|QualityContext|RequestRecord)(?:::|\.)(\w+)")

HEADERS = {
    "EngineConfig": "src/serve/engine_config.hpp",
    "ServingResult": "src/serve/serving_engine.hpp",
    "ReplayMode": "src/core/fast_replay.hpp",
    "SweepCase": "src/serve/sweep.hpp",
    "SweepOptions": "src/serve/sweep.hpp",
    "SweepOutcome": "src/serve/sweep.hpp",
    "ClusterConfig": "src/serve/cluster/cluster_config.hpp",
    "ClusterResult": "src/serve/cluster/cluster_engine.hpp",
    "ClusterOutcome": "src/serve/cluster/cluster_engine.hpp",
    "RouterPolicy": "src/serve/cluster/router.hpp",
    "ChipLink": "src/mem/memory_path.hpp",
    "KvPageAllocator": "src/serve/kv_pages.hpp",
    "SwapPolicy": "src/serve/kv_pages.hpp",
    "ExecutionBackend": "src/core/execution_backend.hpp",
    "GpuBackend": "src/baselines/gpu_backend.hpp",
    "GpuSpec": "src/baselines/gpu_model.hpp",
    "OffloadPolicy": "src/serve/policy.hpp",
    "OffloadContext": "src/serve/policy.hpp",
    "QualityPolicy": "src/serve/policy.hpp",
    "QualityContext": "src/serve/policy.hpp",
    "RequestRecord": "src/serve/request.hpp",
}


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def collect_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        else:
            files.append(arg)
    return sorted(set(files))


def header_identifiers(path: str) -> set:
    """Identifiers declared in the header, with // comments stripped
    first — a knob renamed in code but still mentioned in a comment must
    not keep the old doc reference alive."""
    with open(path, encoding="utf-8") as fh:
        code = re.sub(r"//[^\n]*", "", fh.read())
    return set(re.findall(r"\b\w+\b", code))


def check(files):
    identifiers = {
        owner: header_identifiers(os.path.join(repo_root(), header))
        for owner, header in HEADERS.items()
    }
    failures = []
    for path in files:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for owner, name in REF_RE.findall(text):
            if name not in identifiers[owner]:
                failures.append(
                    f"{path}: {owner}::{name} is not declared in "
                    f"{HEADERS[owner]} (renamed or removed knob?)")
    return failures


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        return 2
    files = collect_files(args)
    missing = [f for f in files if not os.path.exists(f)]
    if missing:
        for f in missing:
            print(f"no such file: {f}")
        return 1
    failures = check(files)
    for failure in failures:
        print(failure)
    print(f"checked {len(files)} markdown files against "
          f"{', '.join(sorted(HEADERS.values()))}: "
          f"{'OK' if not failures else f'{len(failures)} drifted reference(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
