#include "sim/event_queue.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace edgemm::sim {
namespace {

TEST(EventQueue, OrdersByTimestamp) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(17, [] {});
  EXPECT_EQ(q.next_time(), 17u);
  EXPECT_EQ(q.pop_and_run(), 17u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ActionsMayPushNewEvents) {
  EventQueue q;
  int fired = 0;
  q.push(1, [&] {
    ++fired;
    q.push(2, [&] { ++fired; });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace edgemm::sim
