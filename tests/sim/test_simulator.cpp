#include "sim/simulator.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace edgemm::sim {
namespace {

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<Cycle> stamps;
  sim.schedule(10, [&] { stamps.push_back(sim.now()); });
  sim.schedule(5, [&] { stamps.push_back(sim.now()); });
  sim.schedule(20, [&] { stamps.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(stamps, (std::vector<Cycle>{5, 10, 20}));
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, RelativeSchedulingChains) {
  Simulator sim;
  Cycle second_fire = 0;
  sim.schedule(3, [&] {
    sim.schedule(4, [&] { second_fire = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second_fire, 7u);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(5, [&] { ++fired; });
  sim.schedule(15, [&] { ++fired; });
  sim.run_until(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.run_until(10);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, EventCounterAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(static_cast<Cycle>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, IdleReflectsQueue) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  Cycle when = 1234;
  sim.schedule(0, [&] { when = sim.now(); });
  sim.run();
  EXPECT_EQ(when, 0u);
}

}  // namespace
}  // namespace edgemm::sim
