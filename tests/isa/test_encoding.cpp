#include "isa/encoding.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "isa/instructions.hpp"

namespace edgemm::isa {
namespace {

TEST(Encoding, MatrixMatrixRoundTrip) {
  Fields f;
  f.format = Format::kMatrixMatrix;
  f.size = 2;
  f.func3 = 1;
  f.md = 3;
  f.ms1 = 1;
  f.ms2 = 2;
  f.uop = 1;
  f.func = 0x11;
  Fields back;
  ASSERT_TRUE(decode(encode(f), back));
  EXPECT_EQ(back.format, Format::kMatrixMatrix);
  EXPECT_EQ(back.size, f.size);
  EXPECT_EQ(back.func3, f.func3);
  EXPECT_EQ(back.md, f.md);
  EXPECT_EQ(back.ms1, f.ms1);
  EXPECT_EQ(back.ms2, f.ms2);
  EXPECT_EQ(back.uop, f.uop);
  EXPECT_EQ(back.func, f.func);
}

TEST(Encoding, MatrixVectorRoundTrip) {
  Fields f;
  f.format = Format::kMatrixVector;
  f.vd = 31;
  f.func3 = 7;
  f.rs1 = 13;
  f.vs1 = 21;
  f.uop = 3;
  f.func = 0x1F;
  Fields back;
  ASSERT_TRUE(decode(encode(f), back));
  EXPECT_EQ(back.format, Format::kMatrixVector);
  EXPECT_EQ(back.vd, 31);
  EXPECT_EQ(back.rs1, 13);
  EXPECT_EQ(back.vs1, 21);
  EXPECT_EQ(back.uop, 3);
  EXPECT_EQ(back.func, 0x1F);
}

TEST(Encoding, VectorVectorRoundTrip) {
  Fields f;
  f.format = Format::kVectorVector;
  f.vd = 1;
  f.func3 = 2;
  f.vs1 = 3;
  f.vs2 = 4;
  f.func = 0x02;
  Fields back;
  ASSERT_TRUE(decode(encode(f), back));
  EXPECT_EQ(back.vs1, 3);
  EXPECT_EQ(back.vs2, 4);
}

TEST(Encoding, ConfigRoundTrip) {
  Fields f;
  f.format = Format::kConfig;
  f.size = 1;
  f.func3 = 0;
  f.csr = 0x10;
  f.rs1 = 5;
  f.func = 0x01;
  Fields back;
  ASSERT_TRUE(decode(encode(f), back));
  EXPECT_EQ(back.csr, 0x10);
  EXPECT_EQ(back.rs1, 5);
}

TEST(Encoding, FieldRangeViolationsThrow) {
  Fields f;
  f.format = Format::kMatrixMatrix;
  f.md = 8;  // 3-bit field
  EXPECT_THROW(encode(f), std::invalid_argument);
  f.md = 0;
  f.func = 32;  // 5-bit field
  EXPECT_THROW(encode(f), std::invalid_argument);
}

TEST(Encoding, NonExtensionOpcodeRejected) {
  Fields out;
  EXPECT_FALSE(decode(0x00000013u, out));  // RV32I addi
  EXPECT_FALSE(is_extension_word(0x00000013u));
  EXPECT_TRUE(is_extension_word(kOpcodeMatrixMatrix));
  EXPECT_TRUE(is_extension_word(kOpcodeConfig));
}

TEST(Encoding, OpcodesAreDistinctCustomSpace) {
  EXPECT_NE(kOpcodeMatrixMatrix, kOpcodeMatrixVector);
  EXPECT_NE(kOpcodeMatrixVector, kOpcodeVectorVector);
  EXPECT_NE(kOpcodeVectorVector, kOpcodeConfig);
  // All are 32-bit-form opcodes (lowest two bits 11).
  for (const std::uint32_t op : {kOpcodeMatrixMatrix, kOpcodeMatrixVector,
                                 kOpcodeVectorVector, kOpcodeConfig}) {
    EXPECT_EQ(op & 0x3u, 0x3u);
  }
}

TEST(Encoding, EveryTableEntryRoundTripsThroughFields) {
  // Property: for every implemented instruction, encoding the canonical
  // fields and re-resolving the mnemonic is the identity.
  for (const InstrInfo& info_entry : instruction_table()) {
    Fields f;
    f.format = info_entry.format;
    f.func = info_entry.func;
    f.func3 = info_entry.func3;
    Fields back;
    ASSERT_TRUE(decode(encode(f), back)) << info_entry.name;
    const auto m = mnemonic_from_fields(back);
    ASSERT_TRUE(m.has_value()) << info_entry.name;
    EXPECT_EQ(*m, info_entry.mnemonic) << info_entry.name;
  }
}

TEST(Instructions, NameLookupIsTotalAndInverse) {
  for (const InstrInfo& info_entry : instruction_table()) {
    const auto m = mnemonic_from_name(info_entry.name);
    ASSERT_TRUE(m.has_value()) << info_entry.name;
    EXPECT_EQ(*m, info_entry.mnemonic);
    EXPECT_EQ(info(*m).name, info_entry.name);
  }
  EXPECT_FALSE(mnemonic_from_name("mm.bogus").has_value());
}

}  // namespace
}  // namespace edgemm::isa
