#include "isa/csr.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::isa {
namespace {

CsrFile make_file() {
  return CsrFile(/*core_id=*/17, CoreKind::kMemoryCentric, /*cluster_id=*/3,
                 /*group_id=*/1, /*core_pos=*/2);
}

TEST(Csr, IdentityRegistersWiredAtConstruction) {
  const CsrFile csrs = make_file();
  EXPECT_EQ(csrs.read(Csr::kCoreId), 17u);
  EXPECT_EQ(csrs.read(Csr::kCoreType), 1u);  // MC
  EXPECT_EQ(csrs.read(Csr::kClusterId), 3u);
  EXPECT_EQ(csrs.read(Csr::kGroupId), 1u);
  EXPECT_EQ(csrs.read(Csr::kCorePos), 2u);
}

TEST(Csr, CcCoreTypeIsZero) {
  const CsrFile csrs(0, CoreKind::kComputeCentric, 0, 0, 0);
  EXPECT_EQ(csrs.read(Csr::kCoreType), 0u);
}

TEST(Csr, DefaultPruneThresholdIsSixteen) {
  // The paper fixes t = 16 in the design (§IV-A).
  const CsrFile csrs = make_file();
  EXPECT_EQ(csrs.read(Csr::kPruneThresh), 16u);
}

TEST(Csr, WritableRegistersHoldValues) {
  CsrFile csrs = make_file();
  csrs.write(Csr::kShapeM, 300);
  csrs.write(Csr::kShapeK, 2048);
  csrs.write(Csr::kPruneK, 128);
  EXPECT_EQ(csrs.read(Csr::kShapeM), 300u);
  EXPECT_EQ(csrs.read(Csr::kShapeK), 2048u);
  EXPECT_EQ(csrs.read(Csr::kPruneK), 128u);
}

TEST(Csr, ReadOnlyRegistersRejectWrites) {
  CsrFile csrs = make_file();
  EXPECT_THROW(csrs.write(Csr::kCoreId, 0), std::invalid_argument);
  EXPECT_THROW(csrs.write(Csr::kCoreType, 0), std::invalid_argument);
  EXPECT_THROW(csrs.write(Csr::kPruneCount, 1), std::invalid_argument);
  EXPECT_THROW(csrs.write(Csr::kSyncEpoch, 1), std::invalid_argument);
}

TEST(Csr, HardwareSideChannelsBypassReadOnly) {
  CsrFile csrs = make_file();
  csrs.set_prune_count(42);
  EXPECT_EQ(csrs.read(Csr::kPruneCount), 42u);
  csrs.bump_sync_epoch();
  csrs.bump_sync_epoch();
  EXPECT_EQ(csrs.read(Csr::kSyncEpoch), 2u);
}

TEST(Csr, ReadOnlyPredicateMatchesMap) {
  EXPECT_TRUE(CsrFile::is_read_only(Csr::kCoreId));
  EXPECT_TRUE(CsrFile::is_read_only(Csr::kSyncEpoch));
  EXPECT_FALSE(CsrFile::is_read_only(Csr::kShapeN));
  EXPECT_FALSE(CsrFile::is_read_only(Csr::kPruneThresh));
}

}  // namespace
}  // namespace edgemm::isa
