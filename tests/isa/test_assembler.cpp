#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"

namespace edgemm::isa {
namespace {

TEST(Assembler, AssemblesMatrixMul) {
  const std::uint32_t w = assemble_line("mm.mul m0, m1, m2");
  Fields f;
  ASSERT_TRUE(decode(w, f));
  EXPECT_EQ(f.format, Format::kMatrixMatrix);
  EXPECT_EQ(f.md, 0);
  EXPECT_EQ(f.ms1, 1);
  EXPECT_EQ(f.ms2, 2);
}

TEST(Assembler, AssemblesMemoryOperand) {
  const std::uint32_t w = assemble_line("mv.mul v1, v2, (x9)");
  Fields f;
  ASSERT_TRUE(decode(w, f));
  EXPECT_EQ(f.format, Format::kMatrixVector);
  EXPECT_EQ(f.vd, 1);
  EXPECT_EQ(f.vs1, 2);
  EXPECT_EQ(f.rs1, 9);
}

TEST(Assembler, AssemblesCsrByName) {
  const std::uint32_t w = assemble_line("cfg.csrw shapek, x5");
  Fields f;
  ASSERT_TRUE(decode(w, f));
  EXPECT_EQ(static_cast<Csr>(f.csr), Csr::kShapeK);
  EXPECT_EQ(f.rs1, 5);
}

TEST(Assembler, AssemblesActivationSelector) {
  const std::uint32_t w = assemble_line("vv.act v3, v4, silu");
  Fields f;
  ASSERT_TRUE(decode(w, f));
  EXPECT_EQ(f.uop, static_cast<std::uint8_t>(ActUop::kSilu));
}

TEST(Assembler, CommentsAndBlanksSkipped) {
  const auto words = assemble(R"(
    # set up the shard
    cfg.csrr coreid, x1   // who am i
    mm.zero m0

    mm.ld m1, a0
  )");
  EXPECT_EQ(words.size(), 3u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("mm.zero m0\nmm.bogus m1\n");
    FAIL() << "expected AssemblerError";
  } catch (const AssemblerError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, RejectsBadOperands) {
  EXPECT_THROW(assemble_line("mm.mul m0, m1"), AssemblerError);       // arity
  EXPECT_THROW(assemble_line("mm.mul m0, m1, m9"), AssemblerError);   // range
  EXPECT_THROW(assemble_line("mm.mul m0, m1, x2"), AssemblerError);   // class
  EXPECT_THROW(assemble_line("mv.mul v1, v2, x9"), AssemblerError);   // not (xN)
  EXPECT_THROW(assemble_line("vv.act v1, v2, tanh"), AssemblerError); // selector
  EXPECT_THROW(assemble_line("cfg.csrw nosuchcsr, x1"), AssemblerError);
  EXPECT_THROW(assemble_line("cfg.sync x1"), AssemblerError);         // arity
  EXPECT_THROW(assemble_line("v32 nonsense"), AssemblerError);
}

TEST(Assembler, CsrNameTableBijective) {
  for (const Csr csr : {Csr::kCoreId, Csr::kCoreType, Csr::kClusterId, Csr::kGroupId,
                        Csr::kCorePos, Csr::kShapeM, Csr::kShapeN, Csr::kShapeK,
                        Csr::kPruneThresh, Csr::kPruneK, Csr::kPruneCount,
                        Csr::kSyncEpoch}) {
    const auto name = csr_name(csr);
    const auto back = csr_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, csr);
  }
}

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, AssembleDisassembleAssembleIsIdentity) {
  const std::uint32_t w1 = assemble_line(GetParam());
  const std::string text = disassemble_word(w1);
  const std::uint32_t w2 = assemble_line(text);
  EXPECT_EQ(w1, w2) << GetParam() << " -> " << text;
}

INSTANTIATE_TEST_SUITE_P(
    AllInstructions, RoundTrip,
    ::testing::Values("mm.mul m0, m1, m2", "mm.add m3, m2, m1", "mm.ld m1, a0",
                      "mm.st m2, a7", "mm.zero m3", "mv.mul v1, v2, (x9)",
                      "mv.ldw (x4)", "mv.prune v5, v6", "vv.add v1, v2, v3",
                      "vv.mul v4, v5, v6", "vv.max v7, v8, v9",
                      "vv.act v1, v2, relu", "vv.act v1, v2, silu",
                      "vv.act v1, v2, gelu", "vv.cvt v1, v2, bf16",
                      "vv.cvt v1, v2, int8", "cfg.csrw prunet, x3",
                      "cfg.csrr coreid, x1", "cfg.sync"));

TEST(Disassembler, UnknownWordsRenderAsRaw) {
  EXPECT_EQ(disassemble_word(0x00000013u), ".word 0x00000013");
}

TEST(Disassembler, ProgramRendersOnePerLine) {
  const auto words = assemble("mm.zero m0\ncfg.sync\n");
  const std::string text = disassemble(words);
  EXPECT_NE(text.find("mm.zero m0\n"), std::string::npos);
  EXPECT_NE(text.find("cfg.sync\n"), std::string::npos);
}

}  // namespace
}  // namespace edgemm::isa
