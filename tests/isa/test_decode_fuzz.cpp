// Decoder robustness: random words must never crash the decode path,
// and every word the decoder accepts must survive a field-level
// re-encode round trip.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "isa/instructions.hpp"

namespace edgemm::isa {
namespace {

TEST(DecodeFuzz, RandomWordsNeverCrash) {
  Rng rng(0xF0221);
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng());
    Fields fields;
    const bool ok = decode(word, fields);
    EXPECT_EQ(ok, is_extension_word(word));
    // Disassembly is total: unknown words render as .word.
    const std::string text = disassemble_word(word);
    EXPECT_FALSE(text.empty());
  }
}

TEST(DecodeFuzz, AcceptedWordsReencodeToThemselves) {
  // Property: decode → encode is the identity on the extension's
  // architecturally-defined bits for every implemented instruction.
  Rng rng(0xF0222);
  int verified = 0;
  for (int i = 0; i < 200000; ++i) {
    auto word = static_cast<std::uint32_t>(rng());
    // Force a valid major opcode so more samples land in-space.
    static constexpr std::uint32_t kOps[] = {kOpcodeMatrixMatrix, kOpcodeMatrixVector,
                                             kOpcodeVectorVector, kOpcodeConfig};
    word = (word & ~0x7Fu) | kOps[i % 4];
    Fields fields;
    ASSERT_TRUE(decode(word, fields));
    if (!mnemonic_from_fields(fields).has_value()) continue;  // unallocated func
    const std::uint32_t re = encode(fields);
    Fields fields2;
    ASSERT_TRUE(decode(re, fields2));
    EXPECT_EQ(fields2.format, fields.format);
    EXPECT_EQ(fields2.func, fields.func);
    EXPECT_EQ(fields2.func3, fields.func3);
    EXPECT_EQ(fields2.uop, fields.uop);
    EXPECT_EQ(fields2.md, fields.md);
    EXPECT_EQ(fields2.ms1, fields.ms1);
    EXPECT_EQ(fields2.ms2, fields.ms2);
    EXPECT_EQ(fields2.vd, fields.vd);
    EXPECT_EQ(fields2.vs1, fields.vs1);
    EXPECT_EQ(fields2.vs2, fields.vs2);
    EXPECT_EQ(fields2.rs1, fields.rs1);
    EXPECT_EQ(fields2.csr, fields.csr);
    ++verified;
  }
  EXPECT_GT(verified, 1000);
}

TEST(DecodeFuzz, DisassembleOfValidInstructionsIsReassemblable) {
  // Every implemented mnemonic with random in-range operands must
  // survive disassemble -> (text) round trips via the raw word.
  Rng rng(0xF0223);
  for (int i = 0; i < 5000; ++i) {
    const auto& table = instruction_table();
    const InstrInfo& info_entry = table[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(table.size()) - 1))];
    Fields f;
    f.format = info_entry.format;
    f.func = info_entry.func;
    f.func3 = info_entry.func3;
    f.md = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
    f.ms1 = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
    f.ms2 = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
    f.vd = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    f.vs1 = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    f.vs2 = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    f.rs1 = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    f.csr = static_cast<std::uint8_t>(rng.uniform_int(0, 3));  // named CSRs
    if (info_entry.uop_is_operand) {
      f.uop = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    }
    const std::uint32_t word = encode(f);
    const std::string text = disassemble_word(word);
    EXPECT_EQ(text.find(".word"), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace edgemm::isa
