#include "mem/memory_path.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "mem/dma.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {
namespace {

TEST(MemoryPath, EmptyPathThrows) {
  MemoryPath path;
  EXPECT_THROW(path.request(64, nullptr), std::logic_error);
}

TEST(MemoryPath, SingleHopBehavesLikeDirectRequest) {
  sim::Simulator sim;
  ResourceServer dram(sim, "dram", 16.0, 10);
  MemoryPath path;
  path.add_hop(dram, dram.add_port("p"));
  Cycle done_at = 0;
  path.request(160, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 20u);  // 10 occupancy + 10 latency
  EXPECT_EQ(path.total_latency(), 10u);
}

TEST(MemoryPath, HopsTraverseInOrderWithSummedLatency) {
  sim::Simulator sim;
  ResourceServer xbar(sim, "xbar", 64.0, 4);
  ResourceServer dram(sim, "dram", 16.0, 10);
  MemoryPath path;
  path.add_hop(xbar, xbar.add_port("c0"));
  path.add_hop(dram, dram.add_port("c0"));
  Cycle done_at = 0;
  path.request(160, [&] { done_at = sim.now(); });
  sim.run();
  // xbar: ceil(160/64)=3 occupancy + 4 latency = arrives at DRAM at 7;
  // dram: 10 occupancy + 10 latency => 27.
  EXPECT_EQ(done_at, 27u);
  EXPECT_EQ(path.total_latency(), 14u);
  EXPECT_EQ(xbar.bytes_served(), 160u);
  EXPECT_EQ(dram.bytes_served(), 160u);
}

TEST(MemoryPath, BottleneckIsTightestHop) {
  sim::Simulator sim;
  ResourceServer fast(sim, "fast", 128.0, 1);
  ResourceServer slow(sim, "slow", 8.0, 1);
  MemoryPath path;
  path.add_hop(fast, fast.add_port("p"));
  path.add_hop(slow, slow.add_port("p"));
  EXPECT_DOUBLE_EQ(path.bottleneck_bytes_per_cycle(), 8.0);
}

TEST(MemoryPath, GroupCrossbarContentionSerializesSiblings) {
  // Two clusters in one group share the group link; a third cluster in
  // another group bypasses that contention.
  sim::Simulator sim;
  ResourceServer group0(sim, "g0", 16.0, 2);   // tight group link
  ResourceServer group1(sim, "g1", 16.0, 2);
  ResourceServer dram(sim, "dram", 64.0, 5);   // ample channel

  auto make_path = [&](ResourceServer& group, const char* name) {
    MemoryPath p;
    p.add_hop(group, group.add_port(name));
    p.add_hop(dram, dram.add_port(name));
    return p;
  };
  MemoryPath a = make_path(group0, "a");
  MemoryPath b = make_path(group0, "b");
  MemoryPath c = make_path(group1, "c");

  std::vector<Cycle> done(3, 0);
  a.request(1600, [&] { done[0] = sim.now(); });
  b.request(1600, [&] { done[1] = sim.now(); });
  c.request(1600, [&] { done[2] = sim.now(); });
  sim.run();
  // c contends with nobody on its group link; a and b serialize on g0.
  EXPECT_LT(done[2], done[1]);
  EXPECT_GT(std::max(done[0], done[1]),
            done[2] + 50);  // sibling contention is material
}

TEST(MemoryPath, DmaOverHierarchicalPathCompletes) {
  sim::Simulator sim;
  ResourceServer xbar(sim, "xbar", 128.0, 4);
  DramController dram(sim, DramConfig{32.0, 20});
  MemoryPath path;
  path.add_hop(xbar, xbar.add_port("c"));
  path.add_hop(dram.channel(), dram.add_port("c"));
  DmaEngine dma(sim, std::move(path), DmaConfig{1024, 10000}, "hier-dma");
  bool finished = false;
  dma.transfer(64 * 1024, [&] { finished = true; });
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(dram.bytes_served(), 64u * 1024u);
  EXPECT_EQ(xbar.bytes_served(), 64u * 1024u);
}

TEST(MemoryPath, ThrottleStillGovernsHierarchicalDma) {
  sim::Simulator sim;
  ResourceServer xbar(sim, "xbar", 128.0, 4);
  DramController dram(sim, DramConfig{32.0, 20});
  MemoryPath path;
  path.add_hop(xbar, xbar.add_port("c"));
  path.add_hop(dram.channel(), dram.add_port("c"));
  DmaEngine dma(sim, std::move(path), DmaConfig{1024, 1000}, "hier-dma");
  dma.set_budget(1024);
  Cycle done_at = 0;
  dma.transfer(8 * 1024, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_GT(done_at, 2500u);  // interval-gated, not bandwidth-gated
  EXPECT_GT(dma.throttle_stall_cycles(), 0u);
}

}  // namespace
}  // namespace edgemm::mem
