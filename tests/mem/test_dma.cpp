#include "mem/dma.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {
namespace {

struct DmaFixture : ::testing::Test {
  sim::Simulator sim;
  DramConfig dram_cfg{16.0, 10};
  DramController dram{sim, dram_cfg};
  int port = dram.add_port("c0");
  DmaConfig dma_cfg{/*burst_bytes=*/1024, /*throttle_interval=*/1000};
  DmaEngine dma{sim, dram, port, dma_cfg, "dma0"};
};

TEST_F(DmaFixture, RejectsBadConfig) {
  EXPECT_THROW(DmaEngine(sim, dram, port, DmaConfig{0, 100}, "bad"),
               std::invalid_argument);
  EXPECT_THROW(DmaEngine(sim, dram, port, DmaConfig{64, 0}, "bad"),
               std::invalid_argument);
}

TEST_F(DmaFixture, ZeroByteTransferCompletes) {
  bool done = false;
  dma.transfer(0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dma.total_bytes(), 0u);
}

TEST_F(DmaFixture, SplitsIntoBursts) {
  bool done = false;
  dma.transfer(4096, [&] { done = true; });  // 4 bursts of 1024
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dma.total_bytes(), 4096u);
  // 4096/16 = 256 busy cycles total.
  EXPECT_EQ(dram.channel().busy_cycles(), 256u);
}

TEST_F(DmaFixture, CompletionWaitsForLastBurst) {
  Cycle done_at = 0;
  dma.transfer(4096, [&] { done_at = sim.now(); });
  sim.run();
  // 4 bursts serialize on the channel: 256 cycles of occupancy, last
  // burst completes at 256 + 10 latency.
  EXPECT_EQ(done_at, 266u);
}

TEST_F(DmaFixture, UnlimitedBudgetNeverStalls) {
  dma.transfer(64 * 1024, nullptr);
  sim.run();
  EXPECT_EQ(dma.throttle_stall_cycles(), 0u);
}

TEST_F(DmaFixture, BudgetBlocksUntilIntervalBoundary) {
  // Budget 2 KiB per 1000-cycle interval; a 8 KiB transfer needs bursts
  // beyond the budget, which must wait for interval resets.
  dma.set_budget(2048);
  Cycle done_at = 0;
  dma.transfer(8192, [&] { done_at = sim.now(); });
  sim.run();
  // Bursts 1-3 charge 3072 > 2048 -> from burst 4 on, deferred to t=1000,
  // then 3 more bursts per interval.
  EXPECT_GE(done_at, 2000u);
  EXPECT_GT(dma.throttle_stall_cycles(), 0u);
}

TEST_F(DmaFixture, ThrottleEnforcesLongRunRate) {
  // Budget B = 1 KiB per 1000-cycle interval. The blocking rule is
  // "block once d > B" (§IV-B), so each interval admits bursts until the
  // PMC *exceeds* B — two 1 KiB bursts here — for a long-run rate of
  // ~2B/T, far below the 16 B/cycle channel peak.
  dma.set_budget(1024);
  const Bytes total = 16 * 1024;
  Cycle done_at = 0;
  dma.transfer(total, [&] { done_at = sim.now(); });
  sim.run();
  const double rate = static_cast<double>(total) / static_cast<double>(done_at);
  EXPECT_LT(rate, 2.6);
  EXPECT_GT(done_at, 6000u);
}

TEST_F(DmaFixture, PmcResetsEachInterval) {
  dma.set_budget(4096);
  dma.transfer(2048, nullptr);
  sim.run();
  EXPECT_EQ(dma.interval_usage(), 2048u);
  // Next transfer in a later interval must observe a fresh PMC.
  sim.schedule(2000, [&] { dma.transfer(1024, nullptr); });
  sim.run();
  EXPECT_EQ(dma.interval_usage(), 1024u);
}

TEST_F(DmaFixture, InflightTracksOutstandingTransfers) {
  dma.transfer(1024, nullptr);
  dma.transfer(1024, nullptr);
  EXPECT_EQ(dma.inflight(), 2u);
  sim.run();
  EXPECT_EQ(dma.inflight(), 0u);
}

TEST_F(DmaFixture, ThrottledClusterFreesBandwidthForPeer) {
  // Two DMAs share the channel; throttling one must speed up the other.
  const int port2 = dram.add_port("c1");
  DmaEngine dma2(sim, dram, port2, dma_cfg, "dma1");

  // Unthrottled contention baseline.
  Cycle done_free = 0;
  dma.transfer(32 * 1024, nullptr);
  dma2.transfer(32 * 1024, [&] { done_free = sim.now(); });
  sim.run();

  // Fresh system with dma throttled hard.
  sim::Simulator sim_b;
  DramController dram_b(sim_b, dram_cfg);
  const int pa = dram_b.add_port("a");
  const int pb = dram_b.add_port("b");
  DmaEngine dma_a(sim_b, dram_b, pa, dma_cfg, "a");
  DmaEngine dma_b(sim_b, dram_b, pb, dma_cfg, "b");
  dma_a.set_budget(1024);
  Cycle done_throttled = 0;
  dma_a.transfer(32 * 1024, nullptr);
  dma_b.transfer(32 * 1024, [&] { done_throttled = sim_b.now(); });
  sim_b.run();

  EXPECT_LT(done_throttled, done_free);
}

}  // namespace
}  // namespace edgemm::mem
