#include "mem/dram.hpp"

#include <gtest/gtest.h>

#include "mem/analysis.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {
namespace {

TEST(Dram, EffectiveBandwidthClosedForm) {
  DramConfig cfg{25.6, 100};
  // 25600 bytes: 1000 transfer cycles + 100 latency => 25600/1100.
  EXPECT_NEAR(effective_bandwidth(cfg, 25600), 25600.0 / 1100.0, 1e-9);
  EXPECT_EQ(effective_bandwidth(cfg, 0), 0.0);
}

TEST(Dram, EffectiveBandwidthApproachesPeakForLargeTransfers) {
  DramConfig cfg{25.6, 100};
  const double small = effective_bandwidth(cfg, 1024);
  const double large = effective_bandwidth(cfg, 16 * 1024 * 1024);
  EXPECT_LT(small, 0.4 * cfg.bytes_per_cycle);
  EXPECT_GT(large, 0.99 * cfg.bytes_per_cycle);
}

TEST(Dram, MeasuredMatchesAnalytic) {
  // Fig. 6(b) methodology: event-driven measurement must track the
  // closed form for isolated transfers (single burst => identical).
  DramConfig cfg{32.0, 80};
  const std::vector<Bytes> sizes{1024, 4096, 65536, 1048576};
  const auto samples = measure_effective_bandwidth(cfg, sizes, /*burst=*/1048576);
  for (const auto& s : samples) {
    EXPECT_NEAR(s.effective_bytes_per_cycle, s.analytic_bytes_per_cycle,
                0.05 * s.analytic_bytes_per_cycle)
        << s.transfer_bytes;
  }
}

TEST(Dram, EffectiveBandwidthMonotoneInSize) {
  DramConfig cfg{25.6, 100};
  const std::vector<Bytes> sizes{512,   1024,   4096,    16384,
                                 65536, 262144, 1048576, 4194304};
  const auto samples = measure_effective_bandwidth(cfg, sizes);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].effective_bytes_per_cycle,
              samples[i - 1].effective_bytes_per_cycle)
        << "size " << samples[i].transfer_bytes;
  }
  // Fraction of peak is a proper fraction.
  for (const auto& s : samples) {
    EXPECT_GT(s.fraction_of_peak, 0.0);
    EXPECT_LE(s.fraction_of_peak, 1.0);
  }
}

TEST(Dram, PortAccountingSeparatesClients) {
  sim::Simulator sim;
  DramController dram(sim, DramConfig{16.0, 10});
  const int a = dram.add_port("a");
  const int b = dram.add_port("b");
  dram.request(a, 1000, nullptr);
  dram.request(b, 3000, nullptr);
  sim.run();
  EXPECT_EQ(dram.bytes_served(a), 1000u);
  EXPECT_EQ(dram.bytes_served(b), 3000u);
  EXPECT_EQ(dram.bytes_served(), 4000u);
}

}  // namespace
}  // namespace edgemm::mem
