#include "mem/scratchpad.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::mem {
namespace {

TEST(Scratchpad, RejectsZeroCapacity) {
  EXPECT_THROW(Scratchpad("x", 0), std::invalid_argument);
}

TEST(Scratchpad, AllocateWithinCapacity) {
  Scratchpad pad("tcdm", 1024);
  EXPECT_TRUE(pad.allocate(512));
  EXPECT_TRUE(pad.allocate(512));
  EXPECT_EQ(pad.used(), 1024u);
  EXPECT_EQ(pad.free_bytes(), 0u);
}

TEST(Scratchpad, OverflowRefusedWithoutSideEffects) {
  Scratchpad pad("tcdm", 1024);
  EXPECT_TRUE(pad.allocate(1000));
  EXPECT_FALSE(pad.allocate(100));
  EXPECT_EQ(pad.used(), 1000u);
}

TEST(Scratchpad, ReleaseReturnsSpace) {
  Scratchpad pad("tcdm", 1024);
  ASSERT_TRUE(pad.allocate(800));
  pad.release(300);
  EXPECT_EQ(pad.used(), 500u);
  EXPECT_TRUE(pad.allocate(500));
}

TEST(Scratchpad, HighWaterMarkPersists) {
  Scratchpad pad("tcdm", 1024);
  ASSERT_TRUE(pad.allocate(900));
  pad.release(900);
  ASSERT_TRUE(pad.allocate(100));
  EXPECT_EQ(pad.high_water_mark(), 900u);
}

TEST(Scratchpad, ResetClearsUsage) {
  Scratchpad pad("tcdm", 1024);
  ASSERT_TRUE(pad.allocate(1024));
  pad.reset();
  EXPECT_EQ(pad.used(), 0u);
  EXPECT_TRUE(pad.allocate(1024));
}

}  // namespace
}  // namespace edgemm::mem
