#include "mem/resource_server.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace edgemm::mem {
namespace {

TEST(ResourceServer, RejectsNonPositiveBandwidth) {
  sim::Simulator sim;
  EXPECT_THROW(ResourceServer(sim, "x", 0.0, 10), std::invalid_argument);
  EXPECT_THROW(ResourceServer(sim, "x", -1.0, 10), std::invalid_argument);
}

TEST(ResourceServer, SingleTransferLatencyIsOccupancyPlusLatency) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 16.0, 100);
  const int port = server.add_port("p0");
  Cycle done_at = 0;
  server.request(port, 1600, [&] { done_at = sim.now(); });
  sim.run();
  // 1600 / 16 = 100 occupancy + 100 latency.
  EXPECT_EQ(done_at, 200u);
}

TEST(ResourceServer, UnknownPortThrows) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 1.0, 0);
  EXPECT_THROW(server.request(0, 1, nullptr), std::out_of_range);
  server.add_port("p0");
  EXPECT_THROW(server.request(1, 1, nullptr), std::out_of_range);
  EXPECT_THROW(server.bytes_served(3), std::out_of_range);
}

TEST(ResourceServer, BackToBackTransfersSerialize) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 10.0, 5);
  const int port = server.add_port("p0");
  std::vector<Cycle> done;
  server.request(port, 100, [&] { done.push_back(sim.now()); });  // 10 cycles
  server.request(port, 100, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 15u);  // 10 occupancy + 5 latency
  EXPECT_EQ(done[1], 25u);  // starts at 10, ends 20, +5 latency
}

TEST(ResourceServer, RoundRobinAlternatesPorts) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 1.0, 0);
  const int p0 = server.add_port("p0");
  const int p1 = server.add_port("p1");
  std::vector<int> order;
  // Queue 2 requests on each port before anything runs; RR must
  // interleave p0, p1, p0, p1.
  for (int i = 0; i < 2; ++i) {
    server.request(p0, 10, [&] { order.push_back(0); });
    server.request(p1, 10, [&] { order.push_back(1); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST(ResourceServer, FairBandwidthSplitUnderContention) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 8.0, 10);
  const int p0 = server.add_port("a");
  const int p1 = server.add_port("b");
  // Equal demand from both ports in equal chunks.
  for (int i = 0; i < 50; ++i) {
    server.request(p0, 1024, nullptr);
    server.request(p1, 1024, nullptr);
  }
  sim.run();
  EXPECT_EQ(server.bytes_served(p0), server.bytes_served(p1));
  EXPECT_EQ(server.bytes_served(), 100u * 1024u);
}

TEST(ResourceServer, BusyCyclesMatchTraffic) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 4.0, 7);
  const int port = server.add_port("p");
  server.request(port, 400, nullptr);  // 100 busy cycles
  server.request(port, 40, nullptr);   // 10 busy cycles
  sim.run();
  EXPECT_EQ(server.busy_cycles(), 110u);
}

TEST(ResourceServer, UtilizationBounded) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 2.0, 50);
  const int port = server.add_port("p");
  server.request(port, 100, nullptr);
  sim.run();
  EXPECT_GT(server.utilization(), 0.0);
  EXPECT_LE(server.utilization(), 1.0);
}

TEST(ResourceServer, ZeroByteRequestStillCompletes) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 8.0, 3);
  const int port = server.add_port("p");
  bool done = false;
  server.request(port, 0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(ResourceServer, QueuedRequestsReported) {
  sim::Simulator sim;
  ResourceServer server(sim, "chan", 1.0, 0);
  const int port = server.add_port("p");
  server.request(port, 100, nullptr);  // dispatches immediately
  server.request(port, 100, nullptr);  // queued
  server.request(port, 100, nullptr);  // queued
  EXPECT_EQ(server.queued_requests(), 2u);
  sim.run();
  EXPECT_EQ(server.queued_requests(), 0u);
}

}  // namespace
}  // namespace edgemm::mem
