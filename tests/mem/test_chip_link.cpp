#include "mem/memory_path.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/config.hpp"

namespace edgemm::mem {
namespace {

TEST(ChipLink, SingleTransferPaysLatencyPlusSerialization) {
  ChipLink link(/*bytes_per_cycle=*/10.0, /*latency=*/100);
  // 250 bytes at 10 B/cyc = 25 cycles on the wire, behind 100 latency.
  EXPECT_EQ(link.transfer(250, /*ready=*/1000), 1000u + 100u + 25u);
  EXPECT_EQ(link.busy_cycles(), 25u);
  EXPECT_EQ(link.max_queue_wait(), 0u);
}

TEST(ChipLink, PartialCyclesRoundUp) {
  ChipLink link(10.0, 0);
  EXPECT_EQ(link.transfer(1, 0), 1u);    // ceil(1/10) = 1 cycle
  EXPECT_EQ(link.transfer(11, 100), 102u);  // ceil(11/10) = 2 cycles
}

TEST(ChipLink, WireSerializesButLatencyPipelines) {
  ChipLink link(10.0, 100);
  // Both ready at 0: the second waits for the wire (10 cycles of
  // payload), but its head latency overlaps the first's flight.
  EXPECT_EQ(link.transfer(100, 0), 110u);
  EXPECT_EQ(link.transfer(100, 0), 120u);
  EXPECT_EQ(link.max_queue_wait(), 10u);
  EXPECT_EQ(link.busy_cycles(), 20u);
}

TEST(ChipLink, IdleGapsDoNotAccrueOccupancy) {
  ChipLink link(10.0, 50);
  link.transfer(100, 0);      // wire busy [0, 10)
  link.transfer(100, 1000);   // wire busy [1000, 1010)
  EXPECT_EQ(link.busy_cycles(), 20u);
  EXPECT_EQ(link.last_arrival(), 1060u);
}

TEST(ChipLink, ByteLedgerConservesAtEveryProbe) {
  ChipLink link(10.0, 100);
  link.transfer(200, 0);    // start 0, arrival 120
  link.transfer(300, 10);   // start 20 (wire frees), arrival 150
  link.transfer(100, 500);  // start 500, arrival 610
  for (const Cycle probe : {0u, 19u, 20u, 119u, 120u, 149u, 150u, 499u, 609u,
                            610u, 10000u}) {
    EXPECT_EQ(link.bytes_sent_by(probe),
              link.bytes_landed_by(probe) + link.bytes_in_flight_at(probe))
        << "probe " << probe;
  }
  // Fully drained: everything sent has landed.
  EXPECT_EQ(link.bytes_sent(), 600u);
  EXPECT_EQ(link.bytes_landed_by(link.last_arrival()), 600u);
  EXPECT_EQ(link.bytes_in_flight_at(link.last_arrival()), 0u);
  // Mid-flight: the second transfer is on the wire at cycle 130.
  EXPECT_EQ(link.bytes_in_flight_at(130), 300u);
}

TEST(ChipLink, RejectsZeroBytesAndBadBandwidth) {
  ChipLink link(10.0, 0);
  EXPECT_THROW(link.transfer(0, 0), std::invalid_argument);
  EXPECT_THROW(ChipLink(0.0, 0), std::invalid_argument);
  EXPECT_THROW(ChipLink(-1.0, 0), std::invalid_argument);
}

TEST(ChipLink, DefaultChipConfigCarriesLinkParameters) {
  const core::ChipConfig cfg = core::default_chip_config();
  EXPECT_GT(cfg.chip_link_bytes_per_cycle, 0.0);
  ChipLink link(cfg.chip_link_bytes_per_cycle, cfg.chip_link_latency);
  EXPECT_EQ(link.latency(), cfg.chip_link_latency);
}

}  // namespace
}  // namespace edgemm::mem
