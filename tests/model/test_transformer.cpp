#include "model/transformer.hpp"

#include <gtest/gtest.h>

namespace edgemm::model {
namespace {

TEST(Profiles, DecodeIsMemoryBoundPrefillIsNot) {
  // Fig. 2(b): decode uses the same parameters as prefill but two orders
  // of magnitude fewer FLOPs -> far lower arithmetic intensity.
  const auto llm = sphinx_tiny().llm;
  const auto prefill = prefill_profile(llm, 300, 2);
  const auto decode = decode_profile(llm, 300, 2);
  EXPECT_EQ(prefill.params, decode.params);
  EXPECT_GT(prefill.flops, 100 * decode.flops);
  EXPECT_GT(prefill.arithmetic_intensity(), 50.0);
  EXPECT_LT(decode.arithmetic_intensity(), 2.0);
}

TEST(Profiles, EncoderIsComputeIntensive) {
  const auto model = sphinx_tiny();
  const auto enc = encoder_profile(model, 300, 2);
  EXPECT_GT(enc.arithmetic_intensity(), 50.0);
  EXPECT_GT(enc.flops, 0u);
}

TEST(Profiles, PrefillFlopsScaleWithTokens) {
  const auto llm = sphinx_tiny().llm;
  const auto p300 = prefill_profile(llm, 300, 2);
  const auto p600 = prefill_profile(llm, 600, 2);
  // Slightly superlinear because attention is quadratic in tokens.
  EXPECT_GT(p600.flops, 2 * p300.flops - p300.flops / 10);
  EXPECT_EQ(p600.weight_bytes, p300.weight_bytes);  // same parameters
}

TEST(Profiles, WeightBytesScaleWithElementSize) {
  const auto llm = sphinx_tiny().llm;
  EXPECT_EQ(decode_profile(llm, 300, 2).weight_bytes,
            2 * decode_profile(llm, 300, 1).weight_bytes);
}

TEST(Breakdown, FfnDominatesDecodeTraffic) {
  // Fig. 2(c): weights dominate; FFN is the largest portion; KV cache is
  // small at edge context lengths.
  const auto llm = sphinx_tiny().llm;
  const auto b = decode_memory_breakdown(llm, 300, 1);
  EXPECT_GT(b.ffn_weights, b.attn_weights);
  EXPECT_GT(b.ffn_weights, b.kv_cache * 10);
  EXPECT_GT(b.ffn_weights + b.attn_weights + b.lm_head, b.total() * 9 / 10);
  const double ffn_share =
      static_cast<double>(b.ffn_weights) / static_cast<double>(b.total());
  EXPECT_GT(ffn_share, 0.5);
}

TEST(Breakdown, KvCacheGrowsWithContext) {
  const auto llm = sphinx_tiny().llm;
  const auto short_ctx = decode_memory_breakdown(llm, 100, 1);
  const auto long_ctx = decode_memory_breakdown(llm, 1000, 1);
  EXPECT_GT(long_ctx.kv_cache, 5 * short_ctx.kv_cache);
  EXPECT_EQ(long_ctx.ffn_weights, short_ctx.ffn_weights);
}

TEST(Breakdown, TotalsAreConsistent) {
  const auto llm = karmavlm().llm;
  const auto b = decode_memory_breakdown(llm, 300, 1);
  const auto p = decode_profile(llm, 300, 1);
  // Breakdown weights + lm_head == profile weight bytes.
  EXPECT_EQ(b.ffn_weights + b.attn_weights + b.lm_head, p.weight_bytes);
}

}  // namespace
}  // namespace edgemm::model
