#include "model/workload.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "model/transformer.hpp"

namespace edgemm::model {
namespace {

TEST(Workload, Validation) {
  EXPECT_THROW(build_phase_workload(sphinx_tiny(), WorkloadParams{0, 1, 300}),
               std::invalid_argument);
  EXPECT_THROW(build_phase_workload(sphinx_tiny(), WorkloadParams{300, 0, 300}),
               std::invalid_argument);
}

TEST(Workload, PhaseTagsConsistent) {
  const auto w = build_phase_workload(sphinx_tiny(), WorkloadParams{});
  for (const auto& op : w.encoder) EXPECT_EQ(op.phase, Phase::kVisionEncoder);
  for (const auto& op : w.prefill) EXPECT_EQ(op.phase, Phase::kPrefill);
  for (const auto& op : w.decode_token) EXPECT_EQ(op.phase, Phase::kDecode);
}

TEST(Workload, DecodeOpsAreGemv) {
  const auto w = build_phase_workload(sphinx_tiny(), WorkloadParams{});
  for (const auto& op : w.decode_token) EXPECT_EQ(op.m, 1u);
}

TEST(Workload, PrefillUsesInputTokens) {
  WorkloadParams params;
  params.input_tokens = 300;
  const auto w = build_phase_workload(sphinx_tiny(), params);
  for (const auto& op : w.prefill) EXPECT_EQ(op.m, 300u);
}

TEST(Workload, OnlyDecodeFfnOpsArePrunable) {
  // §IV-A prunes FFN weight rows during GEMV (decode); nothing else.
  const auto w = build_phase_workload(sphinx_tiny(), WorkloadParams{});
  for (const auto& op : w.encoder) EXPECT_FALSE(op.prunable);
  for (const auto& op : w.prefill) EXPECT_FALSE(op.prunable);
  std::size_t prunable = 0;
  for (const auto& op : w.decode_token) prunable += op.prunable ? 1 : 0;
  // 3 gated-MLP projections per layer × 22 layers.
  EXPECT_EQ(prunable, 3u * sphinx_tiny().llm.layers);
}

TEST(Workload, KvOpsCarryBf16Override) {
  const auto w = build_phase_workload(sphinx_tiny(), WorkloadParams{});
  std::size_t kv_ops = 0;
  for (const auto& op : w.decode_token) {
    if (op.weight_elem_bytes_override == 2) ++kv_ops;
  }
  // Two attention contractions per layer.
  EXPECT_EQ(kv_ops, 2u * sphinx_tiny().llm.layers);
}

TEST(Workload, LmHeadPresentForLlm) {
  const auto model = karmavlm();  // large vocab
  const auto w = build_phase_workload(model, WorkloadParams{});
  const auto& last = w.decode_token.back();
  EXPECT_EQ(last.n, model.llm.vocab);
  EXPECT_EQ(last.k, model.llm.d_model);
}

TEST(Workload, DecodeWeightBytesMatchAnalyticProfile) {
  // Cross-plane consistency: summing op weight traffic (INT8, KV BF16)
  // must land near the analytic decode profile.
  const auto model = sphinx_tiny();
  WorkloadParams params = default_params_for_output(300, 128);
  const auto w = build_phase_workload(model, params);

  Bytes op_bytes = 0;
  for (const auto& op : w.decode_token) {
    const std::size_t elem =
        op.weight_elem_bytes_override > 0 ? op.weight_elem_bytes_override : 1;
    op_bytes += static_cast<Bytes>(op.k) * op.n * elem;
  }
  const auto profile = decode_profile(model.llm, params.decode_context, 1);
  const auto analytic = profile.weight_bytes + profile.kv_bytes;
  const double rel = static_cast<double>(op_bytes) / static_cast<double>(analytic);
  EXPECT_GT(rel, 0.9);
  EXPECT_LT(rel, 1.1);
}

TEST(Workload, CropsScaleEncoderWork) {
  WorkloadParams one = {300, 1, 300};
  WorkloadParams five = {300, 5, 300};
  const auto w1 = build_phase_workload(sphinx_tiny(), one);
  const auto w5 = build_phase_workload(sphinx_tiny(), five);
  ASSERT_EQ(w1.encoder.size(), w5.encoder.size());
  Flops f1 = 0;
  Flops f5 = 0;
  for (const auto& op : w1.encoder) f1 += op.flops();
  for (const auto& op : w5.encoder) f5 += op.flops();
  EXPECT_GT(f5, 4 * f1);
}

TEST(Workload, DefaultParamsDeriveContext) {
  const auto p = default_params_for_output(300, 128, 2);
  EXPECT_EQ(p.input_tokens, 300u);
  EXPECT_EQ(p.crops, 2u);
  EXPECT_EQ(p.decode_context, 300u + 64u);
}

TEST(Workload, RequestWorkloadMatchesPhaseWorkload) {
  const RequestShape shape{300, 128, 2};
  const auto per_request = build_request_workload(sphinx_tiny(), shape);
  const auto reference = build_phase_workload(
      sphinx_tiny(), default_params_for_output(300, 128, 2));
  ASSERT_EQ(per_request.encoder.size(), reference.encoder.size());
  ASSERT_EQ(per_request.prefill.size(), reference.prefill.size());
  ASSERT_EQ(per_request.decode_token.size(), reference.decode_token.size());
  for (std::size_t i = 0; i < reference.decode_token.size(); ++i) {
    EXPECT_EQ(per_request.decode_token[i].k, reference.decode_token[i].k);
    EXPECT_EQ(per_request.decode_token[i].n, reference.decode_token[i].n);
  }
  EXPECT_THROW(build_request_workload(sphinx_tiny(), RequestShape{300, 0, 1}),
               std::invalid_argument);
}

TEST(Workload, SingleRequestDecodeStepMatchesLegacyDecodeToken) {
  const auto params = default_params_for_output(300, 128);
  const auto reference =
      build_phase_workload(sphinx_tiny(), params).decode_token;
  const std::size_t contexts[] = {params.decode_context};
  const auto step = build_decode_step(sphinx_tiny(), contexts);
  ASSERT_EQ(step.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(step[i].m, reference[i].m);
    EXPECT_EQ(step[i].k, reference[i].k);
    EXPECT_EQ(step[i].n, reference[i].n);
    EXPECT_EQ(step[i].prunable, reference[i].prunable);
    EXPECT_EQ(step[i].weight_elem_bytes_override,
              reference[i].weight_elem_bytes_override);
  }
}

TEST(Workload, PrefillChunkZeroIsTheMonolithicPrefill) {
  const auto reference =
      build_phase_workload(sphinx_tiny(), WorkloadParams{300, 1, 364}).prefill;
  const auto chunk = build_prefill_chunk(sphinx_tiny(), 0, 300, 300);
  ASSERT_EQ(chunk.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(chunk[i].m, reference[i].m);
    EXPECT_EQ(chunk[i].k, reference[i].k);
    EXPECT_EQ(chunk[i].n, reference[i].n);
    EXPECT_EQ(chunk[i].phase, reference[i].phase);
    EXPECT_EQ(chunk[i].prunable, reference[i].prunable);
    EXPECT_EQ(chunk[i].weight_elem_bytes_override,
              reference[i].weight_elem_bytes_override);
  }
}

TEST(Workload, PrefillChunksCoverExactlyTheMonolithicWork) {
  // Token rows processed by every op kind must sum across chunks to the
  // monolithic count: all ops carry m = chunk tokens, and attention is
  // charged at the same rectangle convention as the monolithic prefill
  // (context = full prompt), so planners differ only in job slicing.
  const auto& llm = sphinx_tiny().llm;
  const std::size_t chunk_sizes[] = {128, 128, 44};
  std::size_t start = 0;
  std::size_t qkv_rows = 0;
  for (const std::size_t tokens : chunk_sizes) {
    const auto ops = build_prefill_chunk(sphinx_tiny(), start, tokens, 300);
    for (const auto& op : ops) {
      EXPECT_EQ(op.m, tokens);
      if (op.weight_elem_bytes_override != 0) {
        // KV stream ops: context spans the whole prompt.
        EXPECT_TRUE(op.k == 300u || op.n == 300u);
      }
    }
    // One QKV op per layer; count its token rows via the first op.
    qkv_rows += ops.front().m * llm.layers;
    start += tokens;
  }
  EXPECT_EQ(start, 300u);
  const auto mono = build_prefill_chunk(sphinx_tiny(), 0, 300, 300);
  EXPECT_EQ(qkv_rows, mono.front().m * llm.layers);

  EXPECT_THROW(build_prefill_chunk(sphinx_tiny(), 0, 0, 300),
               std::invalid_argument);
  // A chunk may not run past its prompt.
  EXPECT_THROW(build_prefill_chunk(sphinx_tiny(), 256, 64, 300),
               std::invalid_argument);
}

TEST(Workload, ResidentLayersZeroTheWeightStreamOfPinnedLayersOnly) {
  const auto& llm = sphinx_tiny().llm;
  const std::size_t resident = 5;
  const auto ops = build_prefill_chunk(sphinx_tiny(), 128, 64, 300, resident);
  // 7 weight ops per gated layer plus 2 KV-stream ops.
  const std::size_t ops_per_layer = ops.size() / llm.layers;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::size_t layer = i / ops_per_layer;
    if (ops[i].weight_elem_bytes_override != 0) {
      // KV streams are per-request context, never resident.
      EXPECT_FALSE(ops[i].weights_resident);
    } else {
      EXPECT_EQ(ops[i].weights_resident, layer < resident);
    }
  }
  // The default is byte-identical to the PR 2 behavior.
  const auto refetch = build_prefill_chunk(sphinx_tiny(), 128, 64, 300);
  for (const auto& op : refetch) EXPECT_FALSE(op.weights_resident);
  EXPECT_THROW(
      build_prefill_chunk(sphinx_tiny(), 0, 64, 300, llm.layers + 1),
      std::invalid_argument);
}

TEST(Workload, LlmLayerWeightElemsMatchTheChunkWeightRectangles) {
  // The layer-group granularity weight residency pins at must equal the
  // summed k x n rectangles of the override-0 ops one layer emits.
  const auto m = sphinx_tiny();
  const auto ops = build_prefill_chunk(m, 0, 1, 1);
  std::size_t weight_elems = 0;
  for (const auto& op : ops) {
    if (op.weight_elem_bytes_override == 0) weight_elems += op.k * op.n;
  }
  EXPECT_EQ(llm_layer_weight_elems(m) * m.llm.layers, weight_elems);
}

TEST(Workload, EncoderOpsMatchPhaseWorkloadEncoder) {
  for (const std::size_t crops : {1u, 3u}) {
    const auto reference =
        build_phase_workload(sphinx_tiny(), WorkloadParams{300, crops, 364})
            .encoder;
    const auto encoder = build_encoder_ops(sphinx_tiny(), crops);
    ASSERT_EQ(encoder.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(encoder[i].m, reference[i].m);
      EXPECT_EQ(encoder[i].k, reference[i].k);
      EXPECT_EQ(encoder[i].n, reference[i].n);
    }
  }
  EXPECT_THROW(build_encoder_ops(sphinx_tiny(), 0), std::invalid_argument);
}

TEST(Workload, KvBytesPerTokenFollowsModelShape) {
  const auto m = sphinx_tiny();
  // K + V rows of kv_dim across all LLM layers, BF16.
  EXPECT_EQ(kv_bytes_per_token(m), m.llm.layers * 2 * m.llm.kv_dim() * 2);
  auto wide = m;
  wide.llm.kv_heads = wide.llm.heads;  // no GQA: bigger KV rows
  EXPECT_GT(kv_bytes_per_token(wide), kv_bytes_per_token(m));
}

TEST(Workload, BatchedDecodeStepSharesWeightsNotKvCaches) {
  const std::size_t contexts[] = {310, 350, 420};
  const auto step = build_decode_step(sphinx_tiny(), contexts);
  std::size_t kv_ops = 0;
  for (const auto& op : step) {
    if (op.weight_elem_bytes_override != 0) {
      // KV-cache streams stay per-request: m = 1, each request's context.
      EXPECT_EQ(op.m, 1u);
      ++kv_ops;
    } else {
      // Weight-bearing ops amortize one fetch across the batch.
      EXPECT_EQ(op.m, 3u);
    }
  }
  const std::size_t layers = sphinx_tiny().llm.layers;
  EXPECT_EQ(kv_ops, layers * 2 * 3);

  EXPECT_THROW(build_decode_step(sphinx_tiny(), {}), std::invalid_argument);
  const std::size_t bad[] = {300, 0};
  EXPECT_THROW(build_decode_step(sphinx_tiny(), bad), std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::model
