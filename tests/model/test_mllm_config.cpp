#include "model/mllm_config.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::model {
namespace {

TEST(ModelZoo, ContainsAllTableOneRows) {
  const auto zoo = model_zoo();
  EXPECT_EQ(zoo.size(), 7u);
  for (const char* name : {"Emu2-Chat", "LLaVA", "MobileVLM", "TinyGPT-V",
                           "SPHINX-Tiny", "DeepSeek-VL", "KarmaVLM"}) {
    EXPECT_NO_THROW(model_by_name(name)) << name;
  }
  EXPECT_THROW(model_by_name("GPT-5"), std::invalid_argument);
}

TEST(ModelZoo, ParameterCountsMatchNamedSizes) {
  // Published sizes, ±15 % (we count projection matrices only — no
  // embeddings/norms).
  auto near = [](std::size_t actual, double expected_billion) {
    const double actual_b = static_cast<double>(actual) / 1e9;
    return actual_b > expected_billion * 0.8 && actual_b < expected_billion * 1.25;
  };
  EXPECT_TRUE(near(sphinx_tiny().llm.total_params(), 1.1))
      << sphinx_tiny().llm.total_params();
  EXPECT_TRUE(near(karmavlm().llm.total_params(), 0.55))
      << karmavlm().llm.total_params();
  EXPECT_TRUE(near(mobilevlm().llm.total_params(), 2.7))
      << mobilevlm().llm.total_params();
  EXPECT_TRUE(near(tinygpt_v().llm.total_params(), 2.7))
      << tinygpt_v().llm.total_params();
  EXPECT_TRUE(near(deepseek_vl().llm.total_params(), 1.3))
      << deepseek_vl().llm.total_params();
  EXPECT_TRUE(near(llava_7b().llm.total_params(), 6.6))
      << llava_7b().llm.total_params();
}

TEST(ModelZoo, EncoderParamsNearPublished) {
  // SPHINX-Tiny: mixed towers ≈ 0.4 B (Table I); KarmaVLM 0.4 + 0.3 B.
  const auto sphinx = sphinx_tiny();
  EXPECT_GT(sphinx.encoder_params(), 500'000'000u);
  EXPECT_LT(sphinx.encoder_params(), 800'000'000u);
  const auto karma = karmavlm();
  EXPECT_GT(karma.encoder_params(), 550'000'000u);
  EXPECT_LT(karma.encoder_params(), 900'000'000u);
}

TEST(ModelZoo, EdgeModelsAreUnderThreeBillion) {
  // §II-A: edge MLLMs adopt compressed LLMs below 3B parameters.
  for (const char* name : {"MobileVLM", "TinyGPT-V", "SPHINX-Tiny", "DeepSeek-VL",
                           "KarmaVLM"}) {
    EXPECT_LT(model_by_name(name).llm.total_params(), 3'000'000'000u) << name;
  }
  // The contrast rows are not edge-class.
  EXPECT_GT(emu2_chat().llm.total_params(), 20'000'000'000u);
}

TEST(Shapes, GroupedQueryAttentionShrinksKv) {
  const auto tiny_llama = sphinx_tiny().llm;
  EXPECT_EQ(tiny_llama.kv_heads, 4u);
  EXPECT_EQ(tiny_llama.head_dim(), 64u);
  EXPECT_EQ(tiny_llama.kv_dim(), 256u);
  EXPECT_LT(tiny_llama.kv_dim(), tiny_llama.d_model);
}

TEST(Shapes, GatedMlpHasThreeProjections) {
  const auto s = sphinx_tiny().llm;
  EXPECT_TRUE(s.gated_mlp);
  EXPECT_EQ(s.ffn_params_per_layer(), 3u * s.d_model * s.d_ffn);
  const auto phi = tinygpt_v().llm;
  EXPECT_FALSE(phi.gated_mlp);
  EXPECT_EQ(phi.ffn_params_per_layer(), 2u * phi.d_model * phi.d_ffn);
}

TEST(Shapes, FfnDominatesAttentionParams) {
  // §II-B: FFN consumes the largest weight portion because the channel
  // dimension is several times the model dimension.
  for (const auto& m : model_zoo()) {
    EXPECT_GT(m.llm.ffn_params_per_layer(), m.llm.attn_params_per_layer()) << m.name;
  }
}

}  // namespace
}  // namespace edgemm::model
