#include "model/ffn.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/statistics.hpp"

namespace edgemm::model {
namespace {

TEST(Ffn, ShapesAndValidation) {
  Rng rng(1);
  const auto w = random_gated_mlp(16, 48, rng);
  EXPECT_EQ(w.d_model(), 16u);
  EXPECT_EQ(w.d_ffn(), 48u);
  EXPECT_THROW(ffn_reference(w, std::vector<float>(15, 0.0F)), std::invalid_argument);
  EXPECT_THROW(ffn_hidden(w, std::vector<float>(17, 0.0F)), std::invalid_argument);
}

TEST(Ffn, ZeroInputGivesZeroOutput) {
  Rng rng(2);
  const auto w = random_gated_mlp(8, 24, rng);
  const auto out = ffn_reference(w, std::vector<float>(8, 0.0F));
  for (const float v : out) EXPECT_EQ(v, 0.0F);
}

TEST(Ffn, ReferenceMatchesManualEquationOne) {
  // FFN(Vx) = ((Vx·W_up) ∘ silu(Vx·W_gate)) · W_down, checked by hand on
  // a 2×3 block.
  GatedMlpWeights w{Tensor(2, 3), Tensor(2, 3), Tensor(3, 2)};
  // W_up = [[1,0,2],[0,1,1]], W_gate = [[0,1,0],[1,0,1]], W_down = I-ish.
  w.up.at(0, 0) = 1.0F;  w.up.at(0, 2) = 2.0F;  w.up.at(1, 1) = 1.0F;
  w.up.at(1, 2) = 1.0F;
  w.gate.at(0, 1) = 1.0F;  w.gate.at(1, 0) = 1.0F;  w.gate.at(1, 2) = 1.0F;
  w.down.at(0, 0) = 1.0F;  w.down.at(1, 1) = 1.0F;  w.down.at(2, 0) = 1.0F;

  const std::vector<float> vx{1.0F, 2.0F};
  // up = [1, 2, 4]; gate = [2, 1, 2]; silu(gate) = [1.7616, 0.7311, 1.7616]
  // hidden = [1.7616, 1.4622, 7.0464]; out = [hidden0+hidden2, hidden1].
  const auto out = ffn_reference(w, vx);
  ASSERT_EQ(out.size(), 2u);
  auto silu = [](float x) { return x / (1.0F + std::exp(-x)); };
  const float h0 = 1.0F * silu(2.0F);
  const float h1 = 2.0F * silu(1.0F);
  const float h2 = 4.0F * silu(2.0F);
  EXPECT_NEAR(out[0], h0 + h2, 1e-5F);
  EXPECT_NEAR(out[1], h1, 1e-5F);
}

TEST(Ffn, PrunedWithAllChannelsEqualsDense) {
  Rng rng(3);
  const auto w = random_gated_mlp(32, 96, rng);
  std::vector<float> vx(32);
  for (float& v : vx) v = static_cast<float>(rng.gaussian());
  std::vector<std::size_t> all(32);
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto dense = ffn_reference(w, vx);
  const auto pruned = ffn_pruned(w, vx, all);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR(pruned[i], dense[i], 1e-4F);
  }
}

TEST(Ffn, PrunedRejectsBadChannels) {
  Rng rng(4);
  const auto w = random_gated_mlp(8, 16, rng);
  const std::vector<float> vx(8, 1.0F);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW(ffn_pruned(w, vx, bad), std::out_of_range);
}

TEST(Ffn, PruningOutlierVectorKeepsHighCosine) {
  Rng rng(5);
  const auto w = random_gated_mlp(128, 384, rng);
  // Outlier-dominated input: body sigma 0.02, 6 outliers at ~2.
  std::vector<float> vx(128);
  for (float& v : vx) v = static_cast<float>(rng.gaussian(0.0, 0.02));
  for (std::size_t i = 0; i < 6; ++i) vx[i * 20] = 2.0F * (i % 2 == 0 ? 1.0F : -1.0F);

  auto kept = top_k_indices_by_magnitude(vx, 12);
  std::sort(kept.begin(), kept.end());
  const auto dense = ffn_reference(w, vx);
  const auto pruned = ffn_pruned(w, vx, kept);
  EXPECT_GT(cosine_similarity(dense, pruned), 0.95);
}

TEST(Ffn, PruningUniformVectorHurtsMore) {
  // Without outliers, dropping 90 % of channels discards real signal.
  Rng rng(6);
  const auto w = random_gated_mlp(128, 384, rng);
  std::vector<float> vx(128);
  for (float& v : vx) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  auto kept = top_k_indices_by_magnitude(vx, 12);
  std::sort(kept.begin(), kept.end());
  const auto dense = ffn_reference(w, vx);
  const auto pruned = ffn_pruned(w, vx, kept);
  EXPECT_LT(cosine_similarity(dense, pruned), 0.95);
}

TEST(Ffn, HiddenFeedsReference) {
  Rng rng(7);
  const auto w = random_gated_mlp(16, 32, rng);
  std::vector<float> vx(16);
  for (float& v : vx) v = static_cast<float>(rng.gaussian());
  const auto hidden = ffn_hidden(w, vx);
  const auto out = ffn_reference(w, vx);
  const auto manual = gemv_reference(hidden, w.down);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], manual[i]);
}

}  // namespace
}  // namespace edgemm::model
