#include "model/activation_gen.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/statistics.hpp"

namespace edgemm::model {
namespace {

ActivationProfile small_profile() {
  ActivationProfile p;
  p.channels = 512;
  p.layers = 8;
  return p;
}

TEST(ActivationGen, Validation) {
  ActivationProfile p = small_profile();
  p.channels = 0;
  EXPECT_THROW(ActivationGenerator(p, 1), std::invalid_argument);
  p = small_profile();
  p.outlier_fraction = 1.5;
  EXPECT_THROW(ActivationGenerator(p, 1), std::invalid_argument);
  ActivationGenerator ok(small_profile(), 1);
  EXPECT_THROW(ok.activations(8, 0), std::out_of_range);
}

TEST(ActivationGen, DeterministicPerSeed) {
  ActivationGenerator a(small_profile(), 99);
  ActivationGenerator b(small_profile(), 99);
  EXPECT_EQ(a.activations(3, 5), b.activations(3, 5));
  ActivationGenerator c(small_profile(), 100);
  EXPECT_NE(a.activations(3, 5), c.activations(3, 5));
}

TEST(ActivationGen, OutlierGainRampsWithDepth) {
  // "As the layer index increases, these outliers become more prominent."
  ActivationGenerator gen(small_profile(), 7);
  EXPECT_LT(gen.outlier_gain(1), gen.outlier_gain(4));
  EXPECT_LT(gen.outlier_gain(4), gen.outlier_gain(7));
  EXPECT_DOUBLE_EQ(gen.outlier_gain(1), small_profile().outlier_gain_first);
  EXPECT_DOUBLE_EQ(gen.outlier_gain(7), small_profile().outlier_gain_last);
  // Layer 0 is the special high-kurtosis-but-unstable layer (§V-C).
  EXPECT_DOUBLE_EQ(gen.outlier_gain(0), small_profile().first_layer_gain);
  EXPECT_GT(gen.outlier_gain(0), gen.outlier_gain(1));
}

TEST(ActivationGen, KurtosisGrowsWithDepth) {
  // Fig. 12(a): kurtosis increases with layer depth.
  ActivationGenerator gen(small_profile(), 11);
  auto avg_kurtosis = [&](std::size_t layer) {
    double sum = 0.0;
    for (std::size_t tok = 0; tok < 8; ++tok) {
      sum += kurtosis(gen.activations(layer, tok));
    }
    return sum / 8.0;
  };
  EXPECT_GT(avg_kurtosis(7), 2.0 * avg_kurtosis(1));
}

TEST(ActivationGen, StableLayersKeepOutlierSet) {
  ActivationGenerator gen(small_profile(), 13);
  const auto set_a = gen.outlier_channels(3);
  const auto set_b = gen.outlier_channels(3);
  EXPECT_EQ(set_a, set_b);
  EXPECT_FALSE(set_a.empty());
  // Different layers draw different sets (overwhelmingly likely).
  EXPECT_NE(gen.outlier_channels(3), gen.outlier_channels(4));
}

TEST(ActivationGen, DeepLayerTopChannelsMatchOutlierSet) {
  // In deep layers, the top-|outliers| magnitudes are dominated by the
  // planted outlier channels (the heavy-tailed body may occasionally
  // out-magnitude the weakest outlier, so require a large overlap).
  ActivationProfile p = small_profile();
  ActivationGenerator gen(p, 17);
  const auto planted = gen.outlier_channels(7);
  const auto v = gen.activations(7, 0);
  auto top = top_k_indices_by_magnitude(v, planted.size());
  std::sort(top.begin(), top.end());
  std::vector<std::size_t> overlap;
  std::set_intersection(top.begin(), top.end(), planted.begin(), planted.end(),
                        std::back_inserter(overlap));
  EXPECT_GE(overlap.size() * 10, planted.size() * 8)
      << "only " << overlap.size() << " of " << planted.size() << " planted outliers";
}

TEST(ActivationGen, FirstLayerOutlierSetUnstableAcrossTokens) {
  // §V-C: layer-1 statistics are unstable; the generator reshuffles its
  // outlier positions per token.
  ActivationGenerator gen(small_profile(), 19);
  const std::size_t count = gen.outlier_channels(1).size();
  auto top_set = [&](std::size_t token) {
    const auto v = gen.activations(0, token);
    auto idx = top_k_indices_by_magnitude(v, count);
    std::sort(idx.begin(), idx.end());
    return idx;
  };
  // Some pair of tokens must disagree.
  const auto t0 = top_set(0);
  bool differs = false;
  for (std::size_t tok = 1; tok < 6 && !differs; ++tok) {
    differs = top_set(tok) != t0;
  }
  EXPECT_TRUE(differs);
}

TEST(ActivationGen, BodyIsMostlySmall) {
  // Fig. 3(b): notable sparsity — most channels are far below the max
  // in the deepest layer, where outliers are most prominent.
  ActivationGenerator gen(small_profile(), 23);
  const auto v = gen.activations(7, 0);
  const std::size_t n = count_above_max_over_t(v, 16.0);
  EXPECT_LT(static_cast<double>(n) / static_cast<double>(v.size()), 0.3);
}

}  // namespace
}  // namespace edgemm::model
