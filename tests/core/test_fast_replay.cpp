#include "core/fast_replay.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include <memory>

#include "core/chip.hpp"
#include "core/phase_scheduler.hpp"
#include "model/workload.hpp"
#include "serve/serving_engine.hpp"
#include "serve/trace.hpp"

namespace edgemm::core {
namespace {

ChipConfig small_cfg() {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;
  return cfg;
}

/// Runs `jobs` back-to-back on the CC lane of a fresh chip in `mode` and
/// returns the retirement cycle of the last job.
Cycle run_cc_jobs(ReplayMode mode, const std::vector<std::vector<GemmWork>>& jobs) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous, mode);
  PhaseScheduler sched(chip);
  Cycle last = 0;
  for (const auto& ops : jobs) {
    sched.submit(Lane::kCcStage, ops, [&] { last = sched.sim().now(); });
  }
  chip.simulator().run();
  return last;
}

double drift(Cycle detailed, Cycle fast) {
  return std::abs(static_cast<double>(fast) - static_cast<double>(detailed)) /
         static_cast<double>(detailed);
}

TEST(ReplayMode, ToStringCoversBothTiers) {
  EXPECT_STREQ(to_string(ReplayMode::kDetailed), "detailed");
  EXPECT_STREQ(to_string(ReplayMode::kFast), "fast");
}

TEST(FastReplay, DetailedChipCarriesNoFastModel) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  EXPECT_EQ(chip.replay_mode(), ReplayMode::kDetailed);
  EXPECT_EQ(chip.fast_model(), nullptr);
}

TEST(FastReplay, FastChipExposesItsIntegrator) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous,
                       ReplayMode::kFast);
  EXPECT_EQ(chip.replay_mode(), ReplayMode::kFast);
  ASSERT_NE(chip.fast_model(), nullptr);
  EXPECT_EQ(chip.fast_model()->streams_completed(), 0u);
}

TEST(FastReplay, MemoryBoundJobWithinOnePercentOfDetailed) {
  const std::vector<std::vector<GemmWork>> jobs = {
      {{64, 1024, 1024, Phase::kPrefill, false, 0, false}}};
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, jobs);
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, jobs);
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, ComputeBoundJobWithinOnePercentOfDetailed) {
  // Tall-m GEMM: datapath cycles dominate the weight fetch.
  const std::vector<std::vector<GemmWork>> jobs = {
      {{2048, 256, 256, Phase::kPrefill, false, 0, false}}};
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, jobs);
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, jobs);
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, MixedRegimeBatchWithinOnePercentOfDetailed) {
  // Alternating compute-bound and memory-bound ops in ONE batch: the
  // serial-chain pricing must capture the per-op DMA/compute
  // serialization a lumped max(dma, compute) bound misses.
  std::vector<GemmWork> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({2048, 128, 128, Phase::kPrefill, false, 0, false});
    batch.push_back({8, 1024, 1024, Phase::kPrefill, false, 0, false});
  }
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, {batch});
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, {batch});
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, ResidentWeightBatchesWithinOnePercentOfDetailed) {
  // Weight-resident ops DMA only activations; mixed with streaming ops
  // they exercise the zero-heavy end of the chain pricing.
  std::vector<GemmWork> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back({128, 512, 512, Phase::kPrefill, true, 0, false});
    batch.push_back({128, 512, 512, Phase::kPrefill, false, 0, false});
  }
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, {batch});
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, {batch});
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, BackToBackJobsWithinOnePercentOfDetailed) {
  // FIFO job sequencing on one lane: each batch's DMA starts when the
  // previous batch's last block lands, so makespan accumulates the
  // per-batch tails correctly.
  std::vector<std::vector<GemmWork>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back({{128, 512, 512, Phase::kPrefill, false, 0, false}});
  }
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, jobs);
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, jobs);
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, FastTierIsDeterministicAcrossRuns) {
  std::vector<std::vector<GemmWork>> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({{256 + 64 * i, 512, 512, Phase::kPrefill, false, 0, false}});
  }
  const Cycle first = run_cc_jobs(ReplayMode::kFast, jobs);
  const Cycle second = run_cc_jobs(ReplayMode::kFast, jobs);
  EXPECT_EQ(first, second);
}

TEST(FastReplay, StatsLedgersMatchDetailedExactly) {
  // The fast tier injects the SAME integer totals run_ops accumulates:
  // bytes, effective compute, flops and op counts agree bit-for-bit.
  const std::vector<GemmWork> ops = {
      {64, 1024, 1024, Phase::kPrefill, false, 0, false},
      {128, 512, 512, Phase::kPrefill, true, 0, false}};

  ChipTimingModel det(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler det_sched(det);
  det_sched.submit(Lane::kCcStage, ops, [] {});
  det.simulator().run();

  ChipTimingModel fst(small_cfg(), ChipComposition::kHeterogeneous,
                      ReplayMode::kFast);
  PhaseScheduler fst_sched(fst);
  fst_sched.submit(Lane::kCcStage, ops, [] {});
  fst.simulator().run();

  const auto det_cc = det.clusters(ClusterKind::kComputeCentric);
  const auto fst_cc = fst.clusters(ClusterKind::kComputeCentric);
  ASSERT_EQ(det_cc.size(), fst_cc.size());
  for (std::size_t i = 0; i < det_cc.size(); ++i) {
    EXPECT_EQ(det_cc[i]->stats().dma_bytes, fst_cc[i]->stats().dma_bytes);
    EXPECT_EQ(det_cc[i]->stats().compute_cycles,
              fst_cc[i]->stats().compute_cycles);
    EXPECT_EQ(det_cc[i]->stats().flops, fst_cc[i]->stats().flops);
    EXPECT_EQ(det_cc[i]->stats().ops_executed, fst_cc[i]->stats().ops_executed);
  }
  EXPECT_GT(fst.fast_model()->streams_completed(), 0u);
}

TEST(FastReplay, PagedKvSwapTraceWithinOnePercentOfDetailed) {
  // The paged-KV subsystem (prefix sharing + DRAM swap) changes WHICH
  // requests decode each step, not how a step is priced — so the fast
  // tier must track the detailed tier through preempt-and-refill churn
  // just as tightly as on plain traces. The workload mirrors the bench's
  // fidelity sections: a coarsened chip and sphinx_tiny, where decode
  // steps are large enough that the integrator's per-step rounding stays
  // well inside the 1% gate.
  namespace sv = edgemm::serve;
  ChipConfig cfg = default_chip_config();
  cfg.timing_block_scale = 8.0;
  cfg.dma.burst_bytes *= 4;
  cfg.dma.throttle_interval *= 4;

  const edgemm::model::MllmConfig m = edgemm::model::sphinx_tiny();
  const Bytes page = 16 * edgemm::model::kv_bytes_per_token(m);

  sv::TraceConfig trace_cfg;
  trace_cfg.requests = 8;
  trace_cfg.arrival_rate_per_s = 24.0;
  trace_cfg.input_tokens = 300;
  trace_cfg.min_output_tokens = 16;
  trace_cfg.max_output_tokens = 48;
  trace_cfg.prefix_groups = 2;
  trace_cfg.prefix_tokens = 256;
  const auto trace = sv::poisson_trace(trace_cfg);

  auto engine = [&](ReplayMode mode) {
    // The worst single request needs 22 pages; 30 leaves too little slack
    // for the concurrent tail, so growers preempt each other to DRAM and
    // refill — the churn the gate is meant to cover.
    return sv::EngineConfig()
        .scheduler(std::make_shared<sv::ConcurrencyPolicy>(
            sv::AdmissionLimits{8, 16}))
        .manage_bandwidth(false)
        .replay_mode(mode)
        .kv_capacity_bytes(30 * page)
        .paged_kv(true)
        .kv_page_bytes(page);
  };
  const auto detailed =
      sv::replay_trace(cfg, {m}, engine(ReplayMode::kDetailed), trace);
  const auto fast =
      sv::replay_trace(cfg, {m}, engine(ReplayMode::kFast), trace);
  ASSERT_GT(detailed.result.makespan, 0u);
  ASSERT_GT(detailed.result.kv_pages_swapped_out, 0u);  // swap exercised
  // Scheduling decisions are tier-independent: the fast tier swaps the
  // SAME pages the detailed tier does, so any drift is pure step pricing.
  EXPECT_EQ(detailed.result.kv_pages_swapped_out,
            fast.result.kv_pages_swapped_out);
  EXPECT_LT(drift(detailed.result.makespan, fast.result.makespan), 0.01);
  // Both tiers conserve the page ledger exactly, whatever they priced.
  EXPECT_EQ(detailed.result.kv_pages_allocated,
            detailed.result.kv_pages_freed);
  EXPECT_EQ(fast.result.kv_pages_allocated, fast.result.kv_pages_freed);
}

TEST(FastReplay, IdleTracksOutstandingStreams) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous,
                       ReplayMode::kFast);
  auto cc = chip.clusters(ClusterKind::kComputeCentric);
  ASSERT_FALSE(cc.empty());
  EXPECT_TRUE(cc[0]->idle());
  bool done = false;
  chip.run_on(cc, {{64, 512, 512, Phase::kPrefill, false, 0, false}},
              [&] { done = true; });
  EXPECT_FALSE(cc[0]->idle());
  chip.simulator().run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(cc[0]->idle());
}

}  // namespace
}  // namespace edgemm::core
