#include "core/fast_replay.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/chip.hpp"
#include "core/phase_scheduler.hpp"

namespace edgemm::core {
namespace {

ChipConfig small_cfg() {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;
  return cfg;
}

/// Runs `jobs` back-to-back on the CC lane of a fresh chip in `mode` and
/// returns the retirement cycle of the last job.
Cycle run_cc_jobs(ReplayMode mode, const std::vector<std::vector<GemmWork>>& jobs) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous, mode);
  PhaseScheduler sched(chip);
  Cycle last = 0;
  for (const auto& ops : jobs) {
    sched.submit(Lane::kCcStage, ops, [&] { last = sched.sim().now(); });
  }
  chip.simulator().run();
  return last;
}

double drift(Cycle detailed, Cycle fast) {
  return std::abs(static_cast<double>(fast) - static_cast<double>(detailed)) /
         static_cast<double>(detailed);
}

TEST(ReplayMode, ToStringCoversBothTiers) {
  EXPECT_STREQ(to_string(ReplayMode::kDetailed), "detailed");
  EXPECT_STREQ(to_string(ReplayMode::kFast), "fast");
}

TEST(FastReplay, DetailedChipCarriesNoFastModel) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  EXPECT_EQ(chip.replay_mode(), ReplayMode::kDetailed);
  EXPECT_EQ(chip.fast_model(), nullptr);
}

TEST(FastReplay, FastChipExposesItsIntegrator) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous,
                       ReplayMode::kFast);
  EXPECT_EQ(chip.replay_mode(), ReplayMode::kFast);
  ASSERT_NE(chip.fast_model(), nullptr);
  EXPECT_EQ(chip.fast_model()->streams_completed(), 0u);
}

TEST(FastReplay, MemoryBoundJobWithinOnePercentOfDetailed) {
  const std::vector<std::vector<GemmWork>> jobs = {
      {{64, 1024, 1024, Phase::kPrefill, false, 0, false}}};
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, jobs);
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, jobs);
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, ComputeBoundJobWithinOnePercentOfDetailed) {
  // Tall-m GEMM: datapath cycles dominate the weight fetch.
  const std::vector<std::vector<GemmWork>> jobs = {
      {{2048, 256, 256, Phase::kPrefill, false, 0, false}}};
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, jobs);
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, jobs);
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, MixedRegimeBatchWithinOnePercentOfDetailed) {
  // Alternating compute-bound and memory-bound ops in ONE batch: the
  // serial-chain pricing must capture the per-op DMA/compute
  // serialization a lumped max(dma, compute) bound misses.
  std::vector<GemmWork> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({2048, 128, 128, Phase::kPrefill, false, 0, false});
    batch.push_back({8, 1024, 1024, Phase::kPrefill, false, 0, false});
  }
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, {batch});
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, {batch});
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, ResidentWeightBatchesWithinOnePercentOfDetailed) {
  // Weight-resident ops DMA only activations; mixed with streaming ops
  // they exercise the zero-heavy end of the chain pricing.
  std::vector<GemmWork> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back({128, 512, 512, Phase::kPrefill, true, 0, false});
    batch.push_back({128, 512, 512, Phase::kPrefill, false, 0, false});
  }
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, {batch});
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, {batch});
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, BackToBackJobsWithinOnePercentOfDetailed) {
  // FIFO job sequencing on one lane: each batch's DMA starts when the
  // previous batch's last block lands, so makespan accumulates the
  // per-batch tails correctly.
  std::vector<std::vector<GemmWork>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back({{128, 512, 512, Phase::kPrefill, false, 0, false}});
  }
  const Cycle detailed = run_cc_jobs(ReplayMode::kDetailed, jobs);
  const Cycle fast = run_cc_jobs(ReplayMode::kFast, jobs);
  ASSERT_GT(detailed, 0u);
  EXPECT_LT(drift(detailed, fast), 0.01);
}

TEST(FastReplay, FastTierIsDeterministicAcrossRuns) {
  std::vector<std::vector<GemmWork>> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({{256 + 64 * i, 512, 512, Phase::kPrefill, false, 0, false}});
  }
  const Cycle first = run_cc_jobs(ReplayMode::kFast, jobs);
  const Cycle second = run_cc_jobs(ReplayMode::kFast, jobs);
  EXPECT_EQ(first, second);
}

TEST(FastReplay, StatsLedgersMatchDetailedExactly) {
  // The fast tier injects the SAME integer totals run_ops accumulates:
  // bytes, effective compute, flops and op counts agree bit-for-bit.
  const std::vector<GemmWork> ops = {
      {64, 1024, 1024, Phase::kPrefill, false, 0, false},
      {128, 512, 512, Phase::kPrefill, true, 0, false}};

  ChipTimingModel det(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler det_sched(det);
  det_sched.submit(Lane::kCcStage, ops, [] {});
  det.simulator().run();

  ChipTimingModel fst(small_cfg(), ChipComposition::kHeterogeneous,
                      ReplayMode::kFast);
  PhaseScheduler fst_sched(fst);
  fst_sched.submit(Lane::kCcStage, ops, [] {});
  fst.simulator().run();

  const auto det_cc = det.clusters(ClusterKind::kComputeCentric);
  const auto fst_cc = fst.clusters(ClusterKind::kComputeCentric);
  ASSERT_EQ(det_cc.size(), fst_cc.size());
  for (std::size_t i = 0; i < det_cc.size(); ++i) {
    EXPECT_EQ(det_cc[i]->stats().dma_bytes, fst_cc[i]->stats().dma_bytes);
    EXPECT_EQ(det_cc[i]->stats().compute_cycles,
              fst_cc[i]->stats().compute_cycles);
    EXPECT_EQ(det_cc[i]->stats().flops, fst_cc[i]->stats().flops);
    EXPECT_EQ(det_cc[i]->stats().ops_executed, fst_cc[i]->stats().ops_executed);
  }
  EXPECT_GT(fst.fast_model()->streams_completed(), 0u);
}

TEST(FastReplay, IdleTracksOutstandingStreams) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous,
                       ReplayMode::kFast);
  auto cc = chip.clusters(ClusterKind::kComputeCentric);
  ASSERT_FALSE(cc.empty());
  EXPECT_TRUE(cc[0]->idle());
  bool done = false;
  chip.run_on(cc, {{64, 512, 512, Phase::kPrefill, false, 0, false}},
              [&] { done = true; });
  EXPECT_FALSE(cc[0]->idle());
  chip.simulator().run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(cc[0]->idle());
}

}  // namespace
}  // namespace edgemm::core
