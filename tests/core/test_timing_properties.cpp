// Property tests on the timing plane: conservation and monotonicity
// invariants that must hold for any workload.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/chip.hpp"
#include "core/timing.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {
namespace {

std::vector<GemmWork> random_ops(Rng& rng, std::size_t count) {
  std::vector<GemmWork> ops;
  for (std::size_t i = 0; i < count; ++i) {
    GemmWork op;
    op.m = static_cast<std::size_t>(rng.uniform_int(1, 64));
    op.k = static_cast<std::size_t>(rng.uniform_int(32, 1024));
    op.n = static_cast<std::size_t>(rng.uniform_int(32, 1024));
    op.phase = rng.bernoulli(0.5) ? Phase::kPrefill : Phase::kDecode;
    op.prunable = rng.bernoulli(0.3);
    ops.push_back(op);
  }
  return ops;
}

class TimingPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimingPropertySweep, FlopAndByteConservation) {
  // Whatever the op mix, the cluster must account exactly the FLOPs of
  // the ops it ran and DMA exactly weight+activation bytes.
  Rng rng(GetParam());
  const ChipConfig cfg = default_chip_config();
  sim::Simulator sim;
  mem::DramController dram(sim, cfg.dram);
  ClusterTimingModel cluster(sim, dram, cfg, ClusterKind::kComputeCentric, "p");

  const auto ops = random_ops(rng, 6);
  Flops expected_flops = 0;
  Bytes expected_bytes = 0;
  for (const auto& op : ops) {
    expected_flops += op.flops();
    expected_bytes += cluster.weight_bytes(op) + cluster.activation_bytes(op);
  }
  bool done = false;
  cluster.run_ops(ops, [&] { done = true; });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.stats().flops, expected_flops);
  EXPECT_EQ(cluster.dma().total_bytes(), expected_bytes);
  EXPECT_EQ(dram.bytes_served(), expected_bytes);
  EXPECT_EQ(cluster.stats().ops_executed, ops.size());
}

TEST_P(TimingPropertySweep, LatencyBoundedByComputeAndMemoryFloors) {
  // End-to-end latency can never beat either resource floor, and with
  // double buffering it should not exceed their sum by much.
  Rng rng(GetParam() ^ 0xABCD);
  const ChipConfig cfg = default_chip_config();
  sim::Simulator sim;
  mem::DramController dram(sim, cfg.dram);
  ClusterTimingModel cluster(sim, dram, cfg, ClusterKind::kMemoryCentric, "p");

  const auto ops = random_ops(rng, 4);
  Cycle compute_floor = 0;
  double bytes = 0.0;
  for (const auto& op : ops) {
    compute_floor += cluster.compute_cycles(op);
    bytes += static_cast<double>(cluster.weight_bytes(op) +
                                 cluster.activation_bytes(op));
  }
  const auto memory_floor = static_cast<Cycle>(bytes / cfg.dram.bytes_per_cycle);

  Cycle done_at = 0;
  cluster.run_ops(ops, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_GE(done_at, compute_floor);
  EXPECT_GE(done_at, memory_floor);
  const Cycle slack = cfg.dram.latency * (2 + ops.size());
  EXPECT_LE(done_at, compute_floor + memory_floor + slack);
}

TEST_P(TimingPropertySweep, PartitionPreservesTotals) {
  Rng rng(GetParam() ^ 0x1234);
  const auto ops = random_ops(rng, 8);
  for (const auto& op : ops) {
    for (const std::size_t ways : {2u, 3u, 8u, 16u}) {
      const auto shards = ChipTimingModel::partition(op, ways);
      std::size_t n_total = 0;
      Flops flops_total = 0;
      for (const auto& s : shards) {
        n_total += s.n;
        flops_total += s.flops();
        EXPECT_EQ(s.m, op.m);
        EXPECT_EQ(s.k, op.k);
        EXPECT_EQ(s.prunable, op.prunable);
      }
      EXPECT_EQ(n_total, op.n);
      EXPECT_EQ(flops_total, op.flops());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingPropertySweep,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull));

}  // namespace
}  // namespace edgemm::core
