#include "core/execution_backend.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/gpu_backend.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {
namespace {

ChipConfig small_cfg() {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;
  return cfg;
}

std::vector<GemmWork> cc_job() {
  return {{64, 256, 256, Phase::kPrefill, false, 0, false}};
}

std::vector<GemmWork> mc_job() {
  return {{1, 256, 512, Phase::kDecode, false, 0, false}};
}

// --- EdgeMmBackend: the seam must not change the chip -------------------

TEST(EdgeMmBackend, MatchesDirectPhaseSchedulerRetireTimes) {
  // The same job sequence through the seam and through a hand-built
  // ChipTimingModel + PhaseScheduler pair retires at identical cycles:
  // the backend wraps the pre-seam construction order unchanged.
  EdgeMmBackend backend(small_cfg(), ChipComposition::kHeterogeneous,
                        ReplayMode::kDetailed, BandwidthPolicy{});
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous,
                       ReplayMode::kDetailed);
  PhaseScheduler sched(chip);

  std::vector<Cycle> seam_retire, direct_retire;
  for (int i = 0; i < 3; ++i) {
    backend.submit(Lane::kCcStage, cc_job(),
                   [&] { seam_retire.push_back(backend.simulator().now()); });
    sched.submit(Lane::kCcStage, cc_job(),
                 [&] { direct_retire.push_back(sched.sim().now()); });
  }
  backend.submit(Lane::kMcDecode, mc_job(),
                 [&] { seam_retire.push_back(backend.simulator().now()); });
  sched.submit(Lane::kMcDecode, mc_job(),
               [&] { direct_retire.push_back(sched.sim().now()); });
  backend.simulator().run();
  chip.simulator().run();

  ASSERT_EQ(seam_retire.size(), 4u);
  EXPECT_EQ(seam_retire, direct_retire);
  EXPECT_EQ(backend.dispatched(Lane::kCcStage), 3u);
  EXPECT_TRUE(backend.idle(Lane::kCcStage));
  EXPECT_TRUE(backend.idle(Lane::kMcDecode));
}

TEST(EdgeMmBackend, ForwardsOccupancyAndPricing) {
  EdgeMmBackend backend(small_cfg(), ChipComposition::kHeterogeneous,
                        ReplayMode::kDetailed, BandwidthPolicy{});
  backend.submit(Lane::kCcStage, cc_job(), [] {});
  backend.submit(Lane::kCcStage, cc_job(), [] {});
  EXPECT_EQ(backend.queued(Lane::kCcStage), 1u);  // one behind the runner
  EXPECT_FALSE(backend.idle(Lane::kCcStage));

  // Pricing forwards to the CC lane's cluster traffic estimator.
  const auto ops = cc_job();
  EXPECT_EQ(backend.estimated_job_bytes(Lane::kCcStage, ops),
            estimated_traffic_bytes(
                *backend.scheduler().lane_clusters(Lane::kCcStage).front(),
                ops));

  backend.simulator().run();
  EXPECT_TRUE(backend.idle(Lane::kCcStage));

  // The bandwidth hooks are live on EdgeMM (no-throw repartition).
  backend.apply_bandwidth_ratio(3);
  backend.apply_equal_sharing();
  EXPECT_GE(backend.memory_utilization(), 0.0);
  EXPECT_LE(backend.memory_utilization(), 1.0);
}

// --- GpuBackend: deterministic FIFO streams over the shared clock -------

TEST(GpuBackend, FifoSerializesALaneAndOverlapsLanes) {
  sim::Simulator sim;
  baselines::GpuBackend gpu(sim, baselines::GpuSpec{}, kChipClockHz);

  Cycle first_end = 0, second_start = 0, second_end = 0, mc_end = 0;
  gpu.submit(core::Lane::kCcStage, cc_job(), [&] { first_end = sim.now(); });
  gpu.submit(
      core::Lane::kCcStage, cc_job(), [&] { second_end = sim.now(); },
      [&] { second_start = sim.now(); });
  gpu.submit(core::Lane::kMcDecode, mc_job(), [&] { mc_end = sim.now(); });
  EXPECT_EQ(gpu.queued(core::Lane::kCcStage), 1u);
  sim.run();

  const Cycle cc_cycles = gpu.job_cycles(cc_job());
  EXPECT_EQ(first_end, cc_cycles);
  EXPECT_EQ(second_start, first_end);  // FIFO dispatch, no idle gap
  EXPECT_EQ(second_end, 2 * cc_cycles);
  // The MC-lane stream ran concurrently, not behind the CC jobs.
  EXPECT_EQ(mc_end, gpu.job_cycles(mc_job()));
  EXPECT_EQ(gpu.dispatched(core::Lane::kCcStage), 2u);
  EXPECT_TRUE(gpu.idle(core::Lane::kCcStage));
  EXPECT_TRUE(gpu.idle(core::Lane::kMcDecode));
}

TEST(GpuBackend, IdenticalSubmissionsRetireIdentically) {
  std::vector<Cycle> retire_a, retire_b;
  for (auto* retire : {&retire_a, &retire_b}) {
    sim::Simulator sim;
    baselines::GpuBackend gpu(sim, baselines::GpuSpec{}, kChipClockHz);
    for (int i = 0; i < 4; ++i) {
      gpu.submit(core::Lane::kCcStage, cc_job(),
                 [retire, &sim] { retire->push_back(sim.now()); });
    }
    sim.run();
  }
  EXPECT_EQ(retire_a, retire_b);
}

TEST(GpuBackend, PricesJobsFromTheRooflineModel) {
  sim::Simulator sim;
  const baselines::GpuSpec spec;
  baselines::GpuBackend gpu(sim, spec, kChipClockHz);

  const auto ops = cc_job();
  EXPECT_DOUBLE_EQ(gpu.job_seconds(ops),
                   baselines::gpu_op_seconds(spec, ops.front()));
  EXPECT_EQ(gpu.job_cycles(ops),
            static_cast<Cycle>(
                std::ceil(gpu.job_seconds(ops) * kChipClockHz)));
  EXPECT_EQ(gpu.estimated_job_bytes(core::Lane::kCcStage, ops),
            baselines::gpu_op_bytes(spec, ops.front()));

  // The ledger prices dispatched work: bytes via gpu_op_bytes, one
  // kernel launch per op, busy cycles = the job's duration.
  gpu.submit(core::Lane::kCcStage, cc_job(), [] {});
  sim.run();
  EXPECT_EQ(gpu.bytes_moved(), baselines::gpu_op_bytes(spec, ops.front()));
  EXPECT_EQ(gpu.kernel_launches(), 1u);
  EXPECT_EQ(gpu.busy_cycles(core::Lane::kCcStage), gpu.job_cycles(ops));
}

TEST(GpuBackend, RejectsEmptyJobsAndBadConstruction) {
  sim::Simulator sim;
  baselines::GpuBackend gpu(sim, baselines::GpuSpec{}, kChipClockHz);
  EXPECT_THROW(gpu.submit(core::Lane::kCcStage, {}, [] {}),
               std::invalid_argument);
  EXPECT_THROW(baselines::GpuBackend(sim, baselines::GpuSpec{}, 0.0),
               std::invalid_argument);
  baselines::GpuSpec bad;
  bad.peak_flops = -1.0;
  EXPECT_THROW(baselines::GpuBackend(sim, bad, kChipClockHz),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::core
