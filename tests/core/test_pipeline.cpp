#include "core/pipeline.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::core {
namespace {

/// Small synthetic MLLM: enough work per stage to be measurable, small
/// enough for fast tests.
PhaseWorkload synthetic_workload() {
  PhaseWorkload w;
  for (int i = 0; i < 4; ++i) {
    w.encoder.push_back({256, 1024, 1024, Phase::kVisionEncoder, false, 0, false});
    w.prefill.push_back({256, 1024, 2048, Phase::kPrefill, false, 0, false});
    w.decode_token.push_back({1, 1024, 2048, Phase::kDecode, false, 0, true});
    w.decode_token.push_back({1, 2048, 1024, Phase::kDecode, false, 0, true});
  }
  return w;
}

ChipConfig small_cfg() {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;  // 2 CC + 2 MC clusters: fast simulation
  return cfg;
}

TEST(PipelineHelpers, BatchedDecodeScalesM) {
  const auto ops = synthetic_workload().decode_token;
  const auto batched = batched_decode_ops(ops, 4);
  ASSERT_EQ(batched.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(batched[i].m, ops[i].m * 4);
    EXPECT_EQ(batched[i].k, ops[i].k);
  }
  EXPECT_EQ(batched_decode_ops(ops, 1)[0].m, ops[0].m);
}

TEST(PipelineHelpers, PrunedOpsScalesOnlyPrunableK) {
  std::vector<GemmWork> ops{
      {1, 1000, 64, Phase::kDecode, false, 0, true},
      {1, 1000, 64, Phase::kDecode, false, 0, false},
  };
  const auto pruned = pruned_ops(ops, 0.6);
  EXPECT_EQ(pruned[0].k, 600u);
  EXPECT_EQ(pruned[1].k, 1000u);
  EXPECT_THROW(pruned_ops(ops, 1.5), std::invalid_argument);
  EXPECT_THROW(pruned_ops(ops, -0.1), std::invalid_argument);
  // keep_fraction 0 must clamp to at least one channel.
  EXPECT_EQ(pruned_ops(ops, 0.0)[0].k, 1u);
}

TEST(Pipeline, ValidatesOptions) {
  MllmPipeline pipeline(small_cfg());
  const auto w = synthetic_workload();
  PipelineOptions opts;
  opts.output_tokens = 0;
  EXPECT_THROW(pipeline.run(w, opts), std::invalid_argument);

  PhaseWorkload empty_cc;
  empty_cc.decode_token = w.decode_token;
  opts.output_tokens = 4;
  EXPECT_THROW(pipeline.run(empty_cc, opts), std::invalid_argument);

  PhaseWorkload empty_decode;
  empty_decode.encoder = w.encoder;
  EXPECT_THROW(pipeline.run(empty_decode, opts), std::invalid_argument);
}

TEST(Pipeline, RunsToCompletionWithSaneMetrics) {
  MllmPipeline pipeline(small_cfg());
  PipelineOptions opts;
  opts.output_tokens = 8;
  opts.batches = 3;
  opts.manage_bandwidth = false;
  opts.enable_batching = false;
  const auto result = pipeline.run(synthetic_workload(), opts);
  EXPECT_GT(result.makespan, 0u);
  EXPECT_GT(result.cc_stage_cycles, 0u);
  EXPECT_GT(result.mc_stage_cycles, 0u);
  EXPECT_GT(result.tokens_per_second, 0.0);
  EXPECT_GT(result.request_latency_ms, 0.0);
  EXPECT_EQ(result.batch, 1u);
  EXPECT_EQ(result.total_tokens, 3u * 8u);
  EXPECT_GT(result.dram_utilization, 0.0);
  EXPECT_LE(result.dram_utilization, 1.0);
}

TEST(Pipeline, DecodeStageGrowsWithOutputLength) {
  MllmPipeline pipeline(small_cfg());
  PipelineOptions opts;
  opts.manage_bandwidth = false;
  opts.enable_batching = false;
  opts.output_tokens = 4;
  const auto short_run = pipeline.run(synthetic_workload(), opts);
  opts.output_tokens = 16;
  const auto long_run = pipeline.run(synthetic_workload(), opts);
  EXPECT_GT(long_run.mc_stage_cycles, 3 * short_run.mc_stage_cycles);
}

TEST(Pipeline, BandwidthManagementHelpsDecodeBoundRuns) {
  // At long output lengths the MC stage dominates; throttling CC must
  // shorten the steady-state round (higher throughput).
  MllmPipeline pipeline(small_cfg());
  PipelineOptions opts;
  opts.output_tokens = 64;
  opts.batches = 3;
  opts.enable_batching = false;
  // Policy tuned so l=64 sits beyond the ramp start.
  opts.policy.balance_length = 8;
  opts.policy.batch_length = 65;

  opts.manage_bandwidth = false;
  const auto unmanaged = pipeline.run(synthetic_workload(), opts);
  opts.manage_bandwidth = true;
  const auto managed = pipeline.run(synthetic_workload(), opts);

  EXPECT_GT(managed.mc_ratio, 1u);
  EXPECT_GT(managed.tokens_per_second, unmanaged.tokens_per_second);
  EXPECT_LT(managed.mc_stage_cycles, unmanaged.mc_stage_cycles);
}

TEST(Pipeline, BatchingBoostsThroughputAtLatencyCost) {
  // Fig. 9(c)/Fig. 13: batching multiplies throughput, adds latency.
  MllmPipeline pipeline(small_cfg());
  PipelineOptions opts;
  opts.output_tokens = 32;
  opts.batches = 3;
  opts.manage_bandwidth = false;

  opts.enable_batching = false;
  const auto single = pipeline.run(synthetic_workload(), opts);
  opts.forced_batch = 8;
  const auto batched = pipeline.run(synthetic_workload(), opts);

  EXPECT_EQ(batched.batch, 8u);
  EXPECT_GT(batched.tokens_per_second, 2.0 * single.tokens_per_second);
  EXPECT_GT(batched.request_latency_ms, single.request_latency_ms);
}

TEST(Pipeline, PruningShortensDecode) {
  MllmPipeline pipeline(small_cfg());
  PipelineOptions opts;
  opts.output_tokens = 16;
  opts.manage_bandwidth = false;
  opts.enable_batching = false;

  const auto dense = pipeline.run(synthetic_workload(), opts);
  opts.prune_keep_fraction = 0.5;
  const auto pruned = pipeline.run(synthetic_workload(), opts);

  EXPECT_LT(pruned.mc_stage_cycles, dense.mc_stage_cycles);
  EXPECT_GT(pruned.tokens_per_second, dense.tokens_per_second);
}

}  // namespace
}  // namespace edgemm::core
