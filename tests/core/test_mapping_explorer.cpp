#include "core/mapping_explorer.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::core {
namespace {

MappingExplorer make_explorer() { return MappingExplorer(default_chip_config()); }

TEST(MappingExplorer, RejectsZeroWays) {
  const auto explorer = make_explorer();
  const GemmWork work{1, 512, 512, Phase::kDecode, false, 0, false};
  EXPECT_THROW(
      explorer.evaluate(work, ClusterKind::kMemoryCentric, Mapping::Split::kOutput, 0),
      std::invalid_argument);
}

TEST(MappingExplorer, WaysClampToDimension) {
  const auto explorer = make_explorer();
  const GemmWork narrow{1, 512, 3, Phase::kDecode, false, 0, false};
  const auto m = explorer.evaluate(narrow, ClusterKind::kMemoryCentric,
                                   Mapping::Split::kOutput, 8);
  EXPECT_EQ(m.ways, 3u);
}

TEST(MappingExplorer, ParallelismHelpsThenInputDuplicationBites) {
  // The tradeoff the explorer exists to quantify: on compute-bound GEMM,
  // per-cluster compute shrinks with ways, but every extra cluster
  // re-reads the full activation input, so latency has an interior
  // optimum rather than improving monotonically.
  const auto explorer = make_explorer();
  const GemmWork gemm{300, 2048, 2048, Phase::kPrefill, false, 0, false};
  const auto one_way = explorer.evaluate(gemm, ClusterKind::kComputeCentric,
                                         Mapping::Split::kOutput, 1);
  const auto best = explorer.best(gemm, ClusterKind::kComputeCentric, 8);
  EXPECT_GT(best.ways, 1u);
  EXPECT_LT(best.predicted_cycles, one_way.predicted_cycles);
  // Compute per cluster always shrinks with ways...
  const auto w2 = explorer.evaluate(gemm, ClusterKind::kComputeCentric,
                                    Mapping::Split::kOutput, 2);
  const auto w8 = explorer.evaluate(gemm, ClusterKind::kComputeCentric,
                                    Mapping::Split::kOutput, 8);
  EXPECT_LT(w8.compute_cycles, w2.compute_cycles);
  // ...while total traffic grows.
  EXPECT_GT(w8.total_bytes, w2.total_bytes);
}

TEST(MappingExplorer, ReductionSplitPaysExchangeForWideOutputs) {
  // With n >> k and a tall m, the partial-sum exchange (2 transfers of
  // m×n accumulators per extra cluster) dominates the k-split's traffic.
  const auto explorer = make_explorer();
  const GemmWork gemm{64, 1024, 4096, Phase::kPrefill, false, 0, false};
  const auto n_split = explorer.evaluate(gemm, ClusterKind::kComputeCentric,
                                         Mapping::Split::kOutput, 4);
  const auto k_split = explorer.evaluate(gemm, ClusterKind::kComputeCentric,
                                         Mapping::Split::kReduction, 4);
  EXPECT_GT(k_split.total_bytes, n_split.total_bytes);
}

TEST(MappingExplorer, KSplitWinsForNarrowOutputs) {
  // A GEMV with tiny n but huge k cannot scale by output splitting;
  // the reduction split is the only way to use multiple clusters.
  const auto explorer = make_explorer();
  const GemmWork narrow{1, 8192, 4, Phase::kDecode, false, 0, false};
  const auto best = explorer.best(narrow, ClusterKind::kComputeCentric, 8);
  EXPECT_EQ(best.split, Mapping::Split::kReduction);
  EXPECT_GT(best.ways, 1u);
}

TEST(MappingExplorer, NSplitWinsForWideMemoryBoundGemv) {
  // The scheduler's default: wide GEMV shards by output; the reduction
  // split only adds exchange traffic on an already memory-bound op.
  const auto explorer = make_explorer();
  const GemmWork wide{1, 2048, 5632, Phase::kDecode, false, 0, false};
  const auto best = explorer.best(wide, ClusterKind::kMemoryCentric, 8);
  EXPECT_EQ(best.split, Mapping::Split::kOutput);
}

TEST(MappingExplorer, ExploreIsSortedAndComplete) {
  const auto explorer = make_explorer();
  const GemmWork work{16, 1024, 1024, Phase::kPrefill, false, 0, false};
  const auto all = explorer.explore(work, ClusterKind::kComputeCentric, 4);
  // ways 1 (n only) + ways 2..4 (both splits) = 1 + 3*2 = 7 candidates.
  EXPECT_EQ(all.size(), 7u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].predicted_cycles, all[i].predicted_cycles);
  }
}

TEST(MappingExplorer, BestAgreesWithExploreFront) {
  const auto explorer = make_explorer();
  const GemmWork work{1, 2048, 2048, Phase::kDecode, false, 0, false};
  const auto best = explorer.best(work, ClusterKind::kMemoryCentric, 8);
  const auto all = explorer.explore(work, ClusterKind::kMemoryCentric, 8);
  EXPECT_EQ(best.predicted_cycles, all.front().predicted_cycles);
}

}  // namespace
}  // namespace edgemm::core
