#include "core/config.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::core {
namespace {

TEST(Config, DefaultMatchesPaperHierarchy) {
  const ChipConfig cfg = default_chip_config();
  // §III-A: 4 groups × (2 CC + 2 MC clusters); 4 CC-cores / 2 MC-cores.
  EXPECT_EQ(cfg.groups, 4u);
  EXPECT_EQ(cfg.total_cc_clusters(), 8u);
  EXPECT_EQ(cfg.total_mc_clusters(), 8u);
  EXPECT_EQ(cfg.total_cc_cores(), 32u);
  EXPECT_EQ(cfg.total_mc_cores(), 16u);
}

TEST(Config, PeakThroughputNearPublished) {
  // Table II: ~18 TFLOP/s (BF16) at 1 GHz.
  const ChipConfig cfg = default_chip_config();
  EXPECT_NEAR(cfg.peak_flops(), 18.0e12, 3.0e12);
}

TEST(Config, McClusterMemoryExceedsCcTcdm) {
  // §III-B: "MC-clusters have significantly larger data memory than
  // CC-clusters."
  const ChipConfig cfg = default_chip_config();
  EXPECT_GT(cfg.mc_cluster_cim_bytes(), cfg.cc_cluster_tcdm_bytes);
}

TEST(Config, PublishedImplementationConstants) {
  const ChipConfig cfg = default_chip_config();
  EXPECT_DOUBLE_EQ(cfg.chip_power_w, 0.112);   // 112 mW post-P&R
  EXPECT_DOUBLE_EQ(cfg.sa_area_share, 0.62);   // SA = 62 % of CC-core
  EXPECT_DOUBLE_EQ(cfg.cim_area_share, 0.81);  // CIM = 81 % of MC-core
  EXPECT_DOUBLE_EQ(cfg.clock_hz, 1.0e9);
}

TEST(Config, ValidateCatchesBrokenConfigs) {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = default_chip_config();
  cfg.systolic.rows = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = default_chip_config();
  cfg.dram.bytes_per_cycle = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = default_chip_config();
  cfg.cc_elem_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, TinyConfigIsValidAndSmall) {
  const ChipConfig tiny = tiny_chip_config();
  EXPECT_NO_THROW(tiny.validate());
  EXPECT_LT(tiny.total_cc_cores() + tiny.total_mc_cores(), 8u);
}

TEST(Config, ScalingChangesDerivedCounts) {
  // §III-A: "the hardware architecture can also be scaled by changing
  // architecture parameters."
  ChipConfig cfg = default_chip_config();
  cfg.groups = 8;
  cfg.validate();
  EXPECT_EQ(cfg.total_cc_clusters(), 16u);
  EXPECT_NEAR(cfg.peak_flops(), 2.0 * default_chip_config().peak_flops(), 1e9);
}

}  // namespace
}  // namespace edgemm::core
