#include "core/cluster_context.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "isa/assembler.hpp"
#include "isa/csr.hpp"

namespace edgemm::core {
namespace {

ChipConfig cfg() {
  ChipConfig c = tiny_chip_config();
  c.cim = {8, 4, 8, 8, 8};
  return c;
}

TEST(ClusterContext, RejectsEmptyCluster) {
  EXPECT_THROW(ClusterContext(cfg(), CoreKind::kMemoryCentric, 0),
               std::invalid_argument);
}

TEST(ClusterContext, CoresCarryDistinctIdentities) {
  ClusterContext cluster(cfg(), CoreKind::kMemoryCentric, 2, /*cluster_id=*/3,
                         /*group_id=*/1);
  EXPECT_EQ(cluster.core(0).csrs().read(isa::Csr::kCorePos), 0u);
  EXPECT_EQ(cluster.core(1).csrs().read(isa::Csr::kCorePos), 1u);
  EXPECT_EQ(cluster.core(0).csrs().read(isa::Csr::kClusterId), 3u);
  EXPECT_EQ(cluster.core(1).csrs().read(isa::Csr::kGroupId), 1u);
  EXPECT_NE(cluster.core(0).csrs().read(isa::Csr::kCoreId),
            cluster.core(1).csrs().read(isa::Csr::kCoreId));
  EXPECT_THROW(cluster.core(2), std::out_of_range);
}

TEST(ClusterContext, SharedBufferSizedByKind) {
  const ChipConfig c = cfg();
  ClusterContext cc(c, CoreKind::kComputeCentric, 2);
  ClusterContext mc(c, CoreKind::kMemoryCentric, 2);
  EXPECT_EQ(cc.shared_buffer().capacity(), c.cc_cluster_tcdm_bytes);
  EXPECT_EQ(mc.shared_buffer().capacity(), c.mc_shared_buffer_bytes);
}

TEST(ClusterContext, BarrierReleasesOnLastArrival) {
  ClusterContext cluster(cfg(), CoreKind::kMemoryCentric, 3);
  EXPECT_FALSE(cluster.barrier_arrive(0));
  EXPECT_FALSE(cluster.barrier_arrive(2));
  EXPECT_EQ(cluster.barrier_epochs(), 0u);
  EXPECT_TRUE(cluster.barrier_arrive(1));
  EXPECT_EQ(cluster.barrier_epochs(), 1u);
  // Epoch visible through every core's CSR.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.core(i).csrs().read(isa::Csr::kSyncEpoch), 1u);
  }
}

TEST(ClusterContext, DoubleArrivalIsAProgramBug) {
  ClusterContext cluster(cfg(), CoreKind::kMemoryCentric, 2);
  EXPECT_FALSE(cluster.barrier_arrive(0));
  EXPECT_THROW(cluster.barrier_arrive(0), std::logic_error);
}

TEST(ClusterContext, BarrierResetsForNextEpoch) {
  ClusterContext cluster(cfg(), CoreKind::kMemoryCentric, 2);
  cluster.barrier_arrive(0);
  cluster.barrier_arrive(1);
  cluster.barrier_arrive(1);
  EXPECT_TRUE(cluster.barrier_arrive(0));
  EXPECT_EQ(cluster.barrier_epochs(), 2u);
}

TEST(ClusterContext, SpmdShardedGemvMatchesReference) {
  // The §III-C flow at cluster scope: every core prunes-and-multiplies
  // its channel shard; partial outputs reduce into the final vector.
  const ChipConfig c = cfg();
  ClusterContext cluster(c, CoreKind::kMemoryCentric, 2);

  const std::size_t k = 16;
  const std::size_t n = 8;
  Rng rng(7);
  Tensor weights(k, n);
  for (float& v : weights.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.4));
  std::vector<float> act(k);
  for (float& v : act) v = static_cast<float>(rng.gaussian());

  std::vector<Tensor> shards;
  shards.push_back(weights.block(0, 0, k / 2, n));
  shards.push_back(weights.block(k / 2, 0, k / 2, n));

  std::vector<float> combined(n, 0.0F);
  const auto cycles = cluster.run_spmd([&](HostCore& core, std::size_t index) {
    core.bind_matrix(0x2000, &shards[index]);
    core.set_xreg(2, 0x2000);
    core.set_vreg(0, std::vector<float>(act.begin() + index * (k / 2),
                                        act.begin() + (index + 1) * (k / 2)));
    Cycle used = core.execute(isa::assemble_line("mv.ldw (x2)"));
    used += core.execute(isa::assemble_line("mv.mul v1, v0, (x2)"));
    for (std::size_t i = 0; i < n; ++i) combined[i] += core.vreg(1)[i];
    return used;
  });

  EXPECT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cluster.barrier_epochs(), 1u);
  const auto ref = gemv_reference(act, weights);
  EXPECT_GT(cosine_similarity(combined, ref), 0.99);
}

}  // namespace
}  // namespace edgemm::core
