#include "core/chip.hpp"

#include <gtest/gtest.h>

namespace edgemm::core {
namespace {

TEST(Chip, HeterogeneousCompositionMatchesConfig) {
  ChipTimingModel chip(default_chip_config(), ChipComposition::kHeterogeneous);
  EXPECT_EQ(chip.clusters(ClusterKind::kComputeCentric).size(), 8u);
  EXPECT_EQ(chip.clusters(ClusterKind::kMemoryCentric).size(), 8u);
  EXPECT_EQ(chip.all_clusters().size(), 16u);
}

TEST(Chip, HomogeneousCompositionsFillAllSlots) {
  ChipTimingModel homo_cc(default_chip_config(), ChipComposition::kHomoCc);
  EXPECT_EQ(homo_cc.clusters(ClusterKind::kComputeCentric).size(), 16u);
  EXPECT_TRUE(homo_cc.clusters(ClusterKind::kMemoryCentric).empty());

  ChipTimingModel baseline(default_chip_config(), ChipComposition::kBaselineSnitch);
  EXPECT_EQ(baseline.clusters(ClusterKind::kBaselineSimd).size(), 16u);
}

TEST(Chip, PreferredClustersFollowPhaseMapping) {
  // §IV-B: encoder/prefill on CC; decode on MC.
  ChipTimingModel chip(default_chip_config(), ChipComposition::kHeterogeneous);
  for (const Phase phase : {Phase::kVisionEncoder, Phase::kProjector, Phase::kPrefill}) {
    for (auto* cluster : chip.preferred_clusters(phase)) {
      EXPECT_EQ(cluster->kind(), ClusterKind::kComputeCentric);
    }
  }
  for (auto* cluster : chip.preferred_clusters(Phase::kDecode)) {
    EXPECT_EQ(cluster->kind(), ClusterKind::kMemoryCentric);
  }
}

TEST(Chip, HomogeneousChipsUseEverythingForEveryPhase) {
  ChipTimingModel chip(default_chip_config(), ChipComposition::kHomoMc);
  EXPECT_EQ(chip.preferred_clusters(Phase::kPrefill).size(), 16u);
  EXPECT_EQ(chip.preferred_clusters(Phase::kDecode).size(), 16u);
}

TEST(Chip, PartitionCoversOutputExactly) {
  const GemmWork work{4, 512, 1000, Phase::kPrefill, false, 0, false};
  const auto shards = ChipTimingModel::partition(work, 8);
  ASSERT_EQ(shards.size(), 8u);
  std::size_t total_n = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.m, work.m);
    EXPECT_EQ(s.k, work.k);
    total_n += s.n;
  }
  EXPECT_EQ(total_n, 1000u);
  // Remainder spread: shard sizes differ by at most one.
  EXPECT_EQ(shards.front().n, 125u);
}

TEST(Chip, PartitionMoreWaysThanColumns) {
  const GemmWork work{1, 8, 3, Phase::kDecode, false, 0, false};
  const auto shards = ChipTimingModel::partition(work, 8);
  EXPECT_EQ(shards.size(), 3u);  // surplus ways get nothing
}

TEST(Chip, RunPhaseExecutesToCompletion) {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;  // keep the test fast
  ChipTimingModel chip(cfg, ChipComposition::kHeterogeneous);
  const std::vector<GemmWork> ops{
      {64, 1024, 1024, Phase::kPrefill, false, 0, false},
      {64, 1024, 2048, Phase::kPrefill, false, 0, false},
  };
  const Cycle elapsed = chip.run_phase(ops);
  EXPECT_GT(elapsed, 0u);
  for (auto* cluster : chip.clusters(ClusterKind::kComputeCentric)) {
    EXPECT_TRUE(cluster->idle());
  }
}

TEST(Chip, ShardingAcrossClustersBeatsSingleCluster) {
  // The same op on 1 vs 4 CC clusters: tensor partitioning must help.
  ChipConfig small = default_chip_config();
  small.groups = 1;
  small.mc_clusters_per_group = 0;
  small.cc_clusters_per_group = 1;

  ChipConfig wide = small;
  wide.cc_clusters_per_group = 4;

  const std::vector<GemmWork> ops{{128, 2048, 2048, Phase::kPrefill, false, 0, false}};

  ChipTimingModel chip1(small, ChipComposition::kHeterogeneous);
  const Cycle t1 = chip1.run_phase(ops);
  ChipTimingModel chip4(wide, ChipComposition::kHeterogeneous);
  const Cycle t4 = chip4.run_phase(ops);
  EXPECT_LT(t4, t1);
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t4), 2.0);
}

TEST(Chip, MixedPhaseSpanRunsGroupwise) {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;
  ChipTimingModel chip(cfg, ChipComposition::kHeterogeneous);
  const std::vector<GemmWork> ops{
      {32, 512, 512, Phase::kPrefill, false, 0, false},
      {1, 512, 512, Phase::kDecode, false, 0, false},
  };
  const Cycle elapsed = chip.run_phase(ops);
  EXPECT_GT(elapsed, 0u);
  // Both cluster kinds must have seen work.
  Bytes cc_bytes = 0;
  Bytes mc_bytes = 0;
  for (auto* c : chip.clusters(ClusterKind::kComputeCentric)) {
    cc_bytes += c->dma().total_bytes();
  }
  for (auto* c : chip.clusters(ClusterKind::kMemoryCentric)) {
    mc_bytes += c->dma().total_bytes();
  }
  EXPECT_GT(cc_bytes, 0u);
  EXPECT_GT(mc_bytes, 0u);
}

TEST(Chip, ClearBandwidthBudgetsLiftsThrottles) {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;
  ChipTimingModel chip(cfg, ChipComposition::kHeterogeneous);
  for (auto* c : chip.all_clusters()) c->dma().set_budget(1);
  chip.clear_bandwidth_budgets();
  for (auto* c : chip.all_clusters()) {
    EXPECT_EQ(c->dma().budget(), mem::DmaEngine::kUnlimited);
  }
}

}  // namespace
}  // namespace edgemm::core
