#include "core/phase_scheduler.hpp"

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace edgemm::core {
namespace {

ChipConfig small_cfg() {
  ChipConfig cfg = default_chip_config();
  cfg.groups = 1;
  return cfg;
}

std::vector<GemmWork> cc_job() {
  return {{64, 256, 256, Phase::kPrefill, false, 0, false}};
}

std::vector<GemmWork> mc_job() {
  return {{1, 256, 512, Phase::kDecode, false, 0, false}};
}

TEST(PhaseScheduler, MapsLanesToHeterogeneousClusterSets) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  for (const auto* cluster : sched.lane_clusters(Lane::kCcStage)) {
    EXPECT_EQ(cluster->kind(), ClusterKind::kComputeCentric);
  }
  for (const auto* cluster : sched.lane_clusters(Lane::kMcDecode)) {
    EXPECT_EQ(cluster->kind(), ClusterKind::kMemoryCentric);
  }
  EXPECT_TRUE(sched.idle(Lane::kCcStage));
  EXPECT_TRUE(sched.idle(Lane::kMcDecode));
}

TEST(PhaseScheduler, RunsLaneJobsFifoBackToBack) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  std::vector<int> order;
  Cycle first_end = 0, second_start = 0;

  sched.submit(Lane::kCcStage, cc_job(), [&] {
    order.push_back(1);
    first_end = sched.sim().now();
  });
  sched.submit(
      Lane::kCcStage, cc_job(), [&] { order.push_back(2); },
      [&] { second_start = sched.sim().now(); });
  EXPECT_EQ(sched.queued(Lane::kCcStage), 1u);  // second waits behind first

  chip.simulator().run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(second_start, first_end);  // FIFO dispatch, no idle gap
  EXPECT_TRUE(sched.idle(Lane::kCcStage));
  EXPECT_EQ(sched.dispatched(Lane::kCcStage), 2u);
}

TEST(PhaseScheduler, LanesOverlapAcrossClusterSets) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  Cycle cc_end = 0, mc_end = 0;
  sched.submit(Lane::kCcStage, cc_job(), [&] { cc_end = sched.sim().now(); });
  sched.submit(Lane::kMcDecode, mc_job(), [&] { mc_end = sched.sim().now(); });
  chip.simulator().run();
  EXPECT_GT(cc_end, 0u);
  EXPECT_GT(mc_end, 0u);
  // The small decode job retires long before the prefill GEMM: the MC
  // lane did not wait for the CC lane.
  EXPECT_LT(mc_end, cc_end);
}

TEST(PhaseScheduler, CallbackMaySubmitFollowUpWork) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  int tokens = 0;
  std::function<void()> decode_next = [&] {
    if (++tokens < 4) {
      sched.submit(Lane::kMcDecode, mc_job(), decode_next);
    }
  };
  sched.submit(Lane::kMcDecode, mc_job(), decode_next);
  chip.simulator().run();
  EXPECT_EQ(tokens, 4);
  EXPECT_EQ(sched.dispatched(Lane::kMcDecode), 4u);
}

TEST(PhaseScheduler, TracksPerLaneQueueWaitStats) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  Cycle first_end = 0;
  sched.submit(Lane::kCcStage, cc_job(),
               [&] { first_end = sched.sim().now(); });
  sched.submit(Lane::kCcStage, cc_job(), [] {});
  sched.submit(Lane::kCcStage, cc_job(), [] {});
  chip.simulator().run();

  const auto& stats = sched.lane_stats(Lane::kCcStage);
  EXPECT_EQ(stats.dispatched, 3u);
  // Job 2 waited one job, job 3 waited two: max wait = two job durations,
  // total = three, mean = one.
  EXPECT_EQ(stats.max_queue_wait, 2 * first_end);
  EXPECT_EQ(stats.total_queue_wait, 3 * first_end);
  EXPECT_DOUBLE_EQ(stats.mean_queue_wait(), static_cast<double>(first_end));
  // The other lane is untouched.
  EXPECT_EQ(sched.lane_stats(Lane::kMcDecode).dispatched, 0u);
  EXPECT_EQ(sched.lane_stats(Lane::kMcDecode).max_queue_wait, 0u);
}

TEST(PhaseScheduler, ChainedMultiJobPrefillInterleavesWithOtherSubmitters) {
  // Request A splits its prefill into three chained chunks (each chunk's
  // done callback submits the next); request B submits one job while A's
  // first chunk runs. FIFO order gives B the lane after A1 — the
  // head-of-line-blocking bound chunked prefill relies on.
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  std::vector<std::string> order;
  std::function<void(int)> submit_chunk = [&](int chunk) {
    sched.submit(Lane::kCcStage, cc_job(), [&, chunk] {
      order.push_back("A" + std::to_string(chunk));
      if (chunk < 3) submit_chunk(chunk + 1);
    });
  };
  submit_chunk(1);
  sched.submit(Lane::kCcStage, cc_job(), [&] { order.push_back("B"); });
  chip.simulator().run();
  EXPECT_EQ(order, (std::vector<std::string>{"A1", "B", "A2", "A3"}));
  EXPECT_EQ(sched.dispatched(Lane::kCcStage), 4u);
}

TEST(PhaseScheduler, AffinityChainingPrefersTheSameAffinityJob) {
  // A's chunks carry affinity 1 and are re-submitted as each retires;
  // B's single job (affinity 2) is queued first. With chaining enabled
  // the lane keeps picking A's next chunk over the earlier-queued B —
  // the pinned-weights fast path — and B runs when A's chain is done.
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  sched.set_affinity_chaining(Lane::kCcStage, true);
  EXPECT_TRUE(sched.affinity_chaining(Lane::kCcStage));
  std::vector<std::string> order;
  std::function<void(int)> submit_chunk = [&](int chunk) {
    sched.submit(
        Lane::kCcStage, cc_job(),
        [&, chunk] {
          order.push_back("A" + std::to_string(chunk));
          if (chunk < 3) submit_chunk(chunk + 1);
        },
        {}, /*affinity=*/1);
  };
  submit_chunk(1);
  sched.submit(
      Lane::kCcStage, cc_job(), [&] { order.push_back("B"); }, {},
      /*affinity=*/2);
  chip.simulator().run();
  EXPECT_EQ(order, (std::vector<std::string>{"A1", "A2", "A3", "B"}));
  // A2 and A3 each jumped the queued B.
  EXPECT_EQ(sched.lane_stats(Lane::kCcStage).affinity_chained, 2u);
}

TEST(PhaseScheduler, AffinityIsInertWithoutChaining) {
  // Same submission pattern, chaining off (the default): strict FIFO —
  // B slips between A's chunks exactly as in the chunked-prefill test.
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  std::vector<std::string> order;
  std::function<void(int)> submit_chunk = [&](int chunk) {
    sched.submit(
        Lane::kCcStage, cc_job(),
        [&, chunk] {
          order.push_back("A" + std::to_string(chunk));
          if (chunk < 3) submit_chunk(chunk + 1);
        },
        {}, /*affinity=*/1);
  };
  submit_chunk(1);
  sched.submit(
      Lane::kCcStage, cc_job(), [&] { order.push_back("B"); }, {},
      /*affinity=*/2);
  chip.simulator().run();
  EXPECT_EQ(order, (std::vector<std::string>{"A1", "B", "A2", "A3"}));
  EXPECT_EQ(sched.lane_stats(Lane::kCcStage).affinity_chained, 0u);
}

TEST(PhaseScheduler, BoundedChainYieldsToFifoHeadAtTheLimit) {
  // A's chunks (affinity 1) chain, but with max_chain = 2 the lane takes
  // the FIFO head (B) after two consecutive affinity-1 dispatches, then
  // resumes A's chain: A1 A2 B A3 A4.
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  sched.set_affinity_chaining(Lane::kCcStage, true, 2);
  EXPECT_EQ(sched.max_affinity_chain(Lane::kCcStage), 2u);
  std::vector<std::string> order;
  std::function<void(int)> submit_chunk = [&](int chunk) {
    sched.submit(
        Lane::kCcStage, cc_job(),
        [&, chunk] {
          order.push_back("A" + std::to_string(chunk));
          if (chunk < 4) submit_chunk(chunk + 1);
        },
        {}, /*affinity=*/1);
  };
  submit_chunk(1);
  sched.submit(
      Lane::kCcStage, cc_job(), [&] { order.push_back("B"); }, {},
      /*affinity=*/2);
  chip.simulator().run();
  EXPECT_EQ(order, (std::vector<std::string>{"A1", "A2", "B", "A3", "A4"}));
}

TEST(PhaseScheduler, ZeroChainLimitReproducesUnboundedChaining) {
  // k = 0 must dispatch bit-for-bit like the original two-argument
  // enable — the PR 3 behavior the default engine keeps.
  auto run = [](bool pass_limit) {
    ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
    PhaseScheduler sched(chip);
    if (pass_limit) {
      sched.set_affinity_chaining(Lane::kCcStage, true, 0);
    } else {
      sched.set_affinity_chaining(Lane::kCcStage, true);
    }
    std::vector<std::string> order;
    std::function<void(int)> submit_chunk = [&](int chunk) {
      sched.submit(
          Lane::kCcStage, cc_job(),
          [&, chunk] {
            order.push_back("A" + std::to_string(chunk));
            if (chunk < 4) submit_chunk(chunk + 1);
          },
          {}, /*affinity=*/1);
    };
    submit_chunk(1);
    sched.submit(
        Lane::kCcStage, cc_job(), [&] { order.push_back("B"); }, {},
        /*affinity=*/2);
    chip.simulator().run();
    return order;
  };
  const auto with_limit = run(true);
  const auto without = run(false);
  EXPECT_EQ(with_limit, without);
  EXPECT_EQ(with_limit,
            (std::vector<std::string>{"A1", "A2", "A3", "A4", "B"}));
}

TEST(PhaseScheduler, ChainLengthCountsNaturalFifoRunsToo) {
  // Two affinity-1 jobs queued FIFO followed by an affinity-2 job, limit
  // 2: even though no job ever jumps the queue, the third affinity-1
  // submission (arriving mid-run) must not extend the run past the cap.
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  sched.set_affinity_chaining(Lane::kCcStage, true, 2);
  std::vector<std::string> order;
  sched.submit(
      Lane::kCcStage, cc_job(), [&] { order.push_back("A1"); }, {}, 1);
  sched.submit(
      Lane::kCcStage, cc_job(),
      [&] {
        order.push_back("A2");
        // A third same-affinity job shows up while B waits.
        sched.submit(
            Lane::kCcStage, cc_job(), [&] { order.push_back("A3"); }, {}, 1);
      },
      {}, 1);
  sched.submit(
      Lane::kCcStage, cc_job(), [&] { order.push_back("B"); }, {}, 2);
  chip.simulator().run();
  // A1 A2 count as a length-2 run (natural FIFO), so the cap forces B
  // before A3.
  EXPECT_EQ(order, (std::vector<std::string>{"A1", "A2", "B", "A3"}));
}

TEST(PhaseScheduler, RejectsEmptyJobs) {
  ChipTimingModel chip(small_cfg(), ChipComposition::kHeterogeneous);
  PhaseScheduler sched(chip);
  EXPECT_THROW(sched.submit(Lane::kCcStage, std::vector<GemmWork>{}, [] {}),
               std::invalid_argument);
  EXPECT_THROW(sched.submit(Lane::kMcDecode, PhaseScheduler::OpsRef{}, [] {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::core
