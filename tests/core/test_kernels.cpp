#include "core/kernels.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace edgemm::core {
namespace {

ChipConfig kernel_cfg() {
  ChipConfig cfg = tiny_chip_config();
  cfg.systolic = {4, 4};
  cfg.cim = {8, 4, 8, 8, 8};
  return cfg;
}

Tensor random_tensor(std::size_t r, std::size_t c, Rng& rng, double sigma = 0.5) {
  Tensor t(r, c);
  for (float& v : t.flat()) v = static_cast<float>(rng.gaussian(0.0, sigma));
  return t;
}

TEST(SaGemmKernel, MatchesReferenceOnOddShapes) {
  // 7×10 × 10×9 exercises padding on every tile edge.
  const ChipConfig cfg = kernel_cfg();
  Rng rng(3);
  const Tensor a = random_tensor(7, 10, rng);
  const Tensor w = random_tensor(10, 9, rng);
  const auto result = sa_gemm(cfg, a, w);
  const Tensor ref = matmul_reference(a, w);
  ASSERT_EQ(result.out.rows(), 7u);
  ASSERT_EQ(result.out.cols(), 9u);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_NEAR(result.out.at(r, c), ref.at(r, c), 0.08F) << r << "," << c;
    }
  }
}

TEST(SaGemmKernel, TilePassCountAndCycles) {
  const ChipConfig cfg = kernel_cfg();  // 4×4 array
  Rng rng(4);
  const Tensor a = random_tensor(5, 8, rng);
  const Tensor w = random_tensor(8, 12, rng);
  const auto result = sa_gemm(cfg, a, w);
  // ceil(8/4) × ceil(12/4) = 2 × 3 tiles.
  EXPECT_EQ(result.tile_passes, 6u);
  // Each pass: load (R) + stream (Eq. 2 remainder) at m = 5.
  EXPECT_EQ(result.cycles,
            6u * coproc::systolic_tile_cycles(cfg.systolic, 5));
}

TEST(SaGemmKernel, InnerMismatchThrows) {
  const ChipConfig cfg = kernel_cfg();
  EXPECT_THROW(sa_gemm(cfg, Tensor(2, 3), Tensor(4, 2)), std::invalid_argument);
}

TEST(CimGemvKernel, MatchesReferenceWithinQuantError) {
  const ChipConfig cfg = kernel_cfg();
  Rng rng(5);
  const Tensor w = random_tensor(16, 20, rng);  // K=16 > R·entries? 16/4=4 entries
  std::vector<float> act(16);
  for (float& v : act) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  const auto result = cim_gemv(cfg, act, w);
  const auto ref = gemv_reference(act, w);
  ASSERT_EQ(result.out.size(), 20u);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(result.out[i], ref[i], 0.25F) << i;
  }
  // ceil(20/8) = 3 column groups, ceil(16/4) = 4 entries.
  EXPECT_EQ(result.column_groups, 3u);
  EXPECT_EQ(result.entries_used, 4u);
}

TEST(CimGemvKernel, StreamsWhenKExceedsMacroCapacity) {
  // K = 64 rows = 16 entries > 8 macro entries: two resident windows.
  const ChipConfig cfg = kernel_cfg();
  Rng rng(6);
  const Tensor w = random_tensor(64, 8, rng);
  std::vector<float> act(64);
  for (float& v : act) v = static_cast<float>(rng.gaussian(0.0, 0.3));
  const auto result = cim_gemv(cfg, act, w);
  const auto ref = gemv_reference(act, w);
  const double cos = cosine_similarity(result.out, ref);
  EXPECT_GT(cos, 0.995);
}

TEST(CimGemvKernel, LengthMismatchThrows) {
  const ChipConfig cfg = kernel_cfg();
  EXPECT_THROW(cim_gemv(cfg, std::vector<float>(3, 1.0F), Tensor(4, 4)),
               std::invalid_argument);
}

TEST(PrunedGemv, ValidatesArguments) {
  const ChipConfig cfg = kernel_cfg();
  const Tensor w(8, 4);
  const std::vector<float> act(8, 1.0F);
  EXPECT_THROW(cim_gemv_pruned(cfg, std::vector<float>(5, 1.0F), w, 4, 16.0, 2),
               std::invalid_argument);
  EXPECT_THROW(cim_gemv_pruned(cfg, act, w, 4, 0.0, 2), std::invalid_argument);
  EXPECT_THROW(cim_gemv_pruned(cfg, act, w, 4, 16.0, 0), std::invalid_argument);
}

TEST(PrunedGemv, FullBudgetReducesToDenseGemv) {
  const ChipConfig cfg = kernel_cfg();
  Rng rng(7);
  const Tensor w = random_tensor(16, 8, rng);
  std::vector<float> act(16);
  for (float& v : act) v = static_cast<float>(rng.gaussian());
  const auto pruned = cim_gemv_pruned(cfg, act, w, 16, 16.0, 2);
  EXPECT_EQ(pruned.channels_kept, 16u);
  EXPECT_EQ(pruned.pruning_ratio, 0.0);
  EXPECT_EQ(pruned.weight_bytes_fetched, pruned.weight_bytes_unpruned);
  const auto dense = cim_gemv(cfg, act, w);
  for (std::size_t i = 0; i < dense.out.size(); ++i) {
    EXPECT_NEAR(pruned.out[i], dense.out[i], 0.15F);
  }
}

TEST(PrunedGemv, OutlierDominatedVectorSurvivesHeavyPruning) {
  const ChipConfig cfg = kernel_cfg();
  Rng rng(8);
  const Tensor w = random_tensor(32, 8, rng);
  // Body ~0.02, four outliers at ±3: top-4 pruning keeps the signal.
  std::vector<float> act(32);
  for (float& v : act) v = static_cast<float>(rng.gaussian(0.0, 0.02));
  act[3] = 3.0F;
  act[11] = -2.5F;
  act[19] = 2.8F;
  act[27] = -3.2F;

  const auto pruned = cim_gemv_pruned(cfg, act, w, 4, 16.0, 2);
  EXPECT_EQ(pruned.channels_kept, 4u);
  EXPECT_NEAR(pruned.pruning_ratio, 1.0 - 4.0 / 32.0, 1e-9);
  EXPECT_LT(pruned.weight_bytes_fetched, pruned.weight_bytes_unpruned / 4);

  const auto ref = gemv_reference(act, w);
  EXPECT_GT(cosine_similarity(pruned.out, ref), 0.97);
}

TEST(PrunedGemv, BudgetSplitsAcrossCores) {
  // With num_cores = 4 and k = 8 over 32 channels, each core keeps
  // ceil(8·8/32) = 2 of its 8 local channels.
  const ChipConfig cfg = kernel_cfg();
  Rng rng(9);
  const Tensor w = random_tensor(32, 8, rng);
  std::vector<float> act(32);
  for (float& v : act) v = static_cast<float>(rng.gaussian());
  const auto pruned = cim_gemv_pruned(cfg, act, w, 8, 16.0, 4);
  EXPECT_EQ(pruned.channels_kept, 8u);
}

TEST(PrunedGemv, ZeroBudgetYieldsZeroOutput) {
  const ChipConfig cfg = kernel_cfg();
  const Tensor w(8, 4);
  const std::vector<float> act(8, 1.0F);
  const auto pruned = cim_gemv_pruned(cfg, act, w, 0, 16.0, 2);
  EXPECT_EQ(pruned.channels_kept, 0u);
  for (const float v : pruned.out) EXPECT_EQ(v, 0.0F);
}

}  // namespace
}  // namespace edgemm::core
