#include "core/bandwidth_manager.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::core {
namespace {

BandwidthManager make_manager() {
  return BandwidthManager(default_chip_config(), BandwidthPolicy{});
}

TEST(BandwidthManager, PolicyValidation) {
  const ChipConfig cfg = default_chip_config();
  BandwidthPolicy bad;
  bad.balance_length = 0;
  EXPECT_THROW(BandwidthManager(cfg, bad), std::invalid_argument);
  bad = BandwidthPolicy{};
  bad.batch_length = bad.balance_length;  // must be strictly larger
  EXPECT_THROW(BandwidthManager(cfg, bad), std::invalid_argument);
  bad = BandwidthPolicy{};
  bad.max_mc_ratio = 0;
  EXPECT_THROW(BandwidthManager(cfg, bad), std::invalid_argument);
}

TEST(BandwidthManager, RatioOneUpToBalanceLength) {
  const auto mgr = make_manager();
  // Paper: l_e = 36 — equal sharing below it.
  EXPECT_EQ(mgr.mc_ratio_for_length(1), 1u);
  EXPECT_EQ(mgr.mc_ratio_for_length(36), 1u);
}

TEST(BandwidthManager, RatioRampsToSevenAtBatchLength) {
  const auto mgr = make_manager();
  // Paper: "The Bc:Bm ratio ranges to 1:3 or even 1:7" as l -> l_b = 131.
  EXPECT_GE(mgr.mc_ratio_for_length(80), 3u);
  EXPECT_EQ(mgr.mc_ratio_for_length(131), 7u);
  EXPECT_EQ(mgr.mc_ratio_for_length(1024), 7u);  // saturates
}

TEST(BandwidthManager, RatioMonotoneInLength) {
  const auto mgr = make_manager();
  std::size_t prev = 0;
  for (std::size_t l = 1; l <= 256; l += 5) {
    const std::size_t r = mgr.mc_ratio_for_length(l);
    EXPECT_GE(r, prev) << l;
    prev = r;
  }
}

TEST(BandwidthManager, BudgetsSplitByRatio) {
  const ChipConfig cfg = default_chip_config();
  const auto mgr = make_manager();
  const auto budgets = mgr.budgets_for_length(131, 8, 8);
  EXPECT_EQ(budgets.mc_ratio, 7u);
  // CC side gets 1/8 of the interval bytes across 8 clusters; MC side
  // gets the remaining 7/8.
  const double interval_bytes =
      cfg.dram.bytes_per_cycle * static_cast<double>(cfg.dma.throttle_interval);
  EXPECT_NEAR(static_cast<double>(budgets.cc_budget_per_cluster),
              interval_bytes / 8.0 / 8.0, 2.0);
  EXPECT_NEAR(static_cast<double>(budgets.mc_budget_per_cluster),
              interval_bytes * 7.0 / 8.0 / 8.0, 2.0);
  EXPECT_GT(budgets.mc_budget_per_cluster, 6 * budgets.cc_budget_per_cluster);
}

TEST(BandwidthManager, ShortOutputsKeepEqualSharing) {
  // Below l_e the manager leaves the default equal hard partition in
  // place (§IV-B: throttles are always armed with budget B).
  const auto mgr = make_manager();
  const auto budgets = mgr.budgets_for_length(8, 8, 8);
  EXPECT_EQ(budgets.mc_ratio, 1u);
  EXPECT_EQ(budgets.cc_budget_per_cluster, budgets.mc_budget_per_cluster);
  EXPECT_EQ(budgets.cc_budget_per_cluster,
            mgr.equal_sharing(8, 8).cc_budget_per_cluster);
}

TEST(BandwidthManager, EqualSharingSlicesEvenly) {
  const ChipConfig cfg = default_chip_config();
  const auto mgr = make_manager();
  const auto budgets = mgr.equal_sharing(8, 8);
  const double interval_bytes =
      cfg.dram.bytes_per_cycle * static_cast<double>(cfg.dma.throttle_interval);
  EXPECT_NEAR(static_cast<double>(budgets.cc_budget_per_cluster),
              interval_bytes / 16.0, 2.0);
  EXPECT_EQ(budgets.cc_budget_per_cluster, budgets.mc_budget_per_cluster);
}

TEST(BandwidthManager, BatchKicksInAtBatchLength) {
  const auto mgr = make_manager();
  // Paper: l_b = 131 — single-stream below, batched at and beyond.
  EXPECT_EQ(mgr.batch_for_length(36), 1u);
  EXPECT_EQ(mgr.batch_for_length(130), 1u);
  EXPECT_GE(mgr.batch_for_length(131), 2u);
  EXPECT_EQ(mgr.batch_for_length(1024), 16u);  // paper's 13.98x point
}

TEST(BandwidthManager, BatchMonotoneAndCapped) {
  const auto mgr = make_manager();
  std::size_t prev = 0;
  for (std::size_t l = 1; l <= 8192; l *= 2) {
    const std::size_t b = mgr.batch_for_length(l);
    EXPECT_GE(b, prev);
    EXPECT_LE(b, BandwidthPolicy{}.max_batch);
    prev = b;
  }
}

TEST(BandwidthManager, ApplySetsClusterBudgets) {
  const ChipConfig cfg = default_chip_config();
  const auto mgr = make_manager();
  ChipTimingModel chip(cfg, ChipComposition::kHeterogeneous);
  mgr.apply(chip, 131);
  const Bytes cc_at_131 =
      chip.clusters(ClusterKind::kComputeCentric).front()->dma().budget();
  for (auto* c : chip.clusters(ClusterKind::kComputeCentric)) {
    EXPECT_EQ(c->dma().budget(), cc_at_131);
  }
  for (auto* c : chip.clusters(ClusterKind::kMemoryCentric)) {
    EXPECT_GT(c->dma().budget(), 6 * cc_at_131);
  }
  mgr.apply(chip, 8);  // short output: back to the equal partition
  const Bytes equal_slice = mgr.equal_sharing(8, 8).cc_budget_per_cluster;
  for (auto* c : chip.all_clusters()) {
    EXPECT_EQ(c->dma().budget(), equal_slice);
  }
  EXPECT_GT(equal_slice, cc_at_131);
}

}  // namespace
}  // namespace edgemm::core
