#include "core/host_core.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "isa/assembler.hpp"

namespace edgemm::core {
namespace {

ChipConfig square_cfg() {
  ChipConfig cfg = tiny_chip_config();
  cfg.systolic = {4, 4};
  cfg.cim = {8, 4, 8, 8, 8};
  return cfg;
}

Tensor random_tile(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (float& v : t.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  return t;
}

TEST(HostCore, WrongCoreKindRaisesIllegalInstruction) {
  const ChipConfig cfg = square_cfg();
  HostCore mc(cfg, CoreKind::kMemoryCentric, 0, 0, 0, 0);
  EXPECT_THROW(mc.execute(isa::assemble_line("mm.zero m0")), IllegalInstruction);
  HostCore cc(cfg, CoreKind::kComputeCentric, 1, 0, 0, 1);
  EXPECT_THROW(cc.execute(isa::assemble_line("mv.prune v0, v1")), IllegalInstruction);
}

TEST(HostCore, NonExtensionWordRejected) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0);
  EXPECT_THROW(core.execute(0x00000013u), IllegalInstruction);
}

TEST(HostCore, X0IsHardwiredZero) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0);
  core.set_xreg(0, 1234);
  EXPECT_EQ(core.xreg(0), 0u);
}

TEST(HostCore, CsrInstructionsMoveData) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 7, 3, 1, 2);
  // cfg.csrr coreid, x1 : x1 <- 7.
  core.execute(isa::assemble_line("cfg.csrr coreid, x1"));
  EXPECT_EQ(core.xreg(1), 7u);
  // cfg.csrw shapek, x2 with x2 = 2048.
  core.set_xreg(2, 2048);
  core.execute(isa::assemble_line("cfg.csrw shapek, x2"));
  EXPECT_EQ(core.csrs().read(isa::Csr::kShapeK), 2048u);
}

TEST(HostCore, SyncBumpsEpoch) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0);
  core.execute(isa::assemble_line("cfg.sync"));
  core.execute(isa::assemble_line("cfg.sync"));
  EXPECT_EQ(core.csrs().read(isa::Csr::kSyncEpoch), 2u);
}

TEST(HostCore, MatrixLoadComputeStoreProgram) {
  // Full CC kernel through the ISA: load tiles, multiply-accumulate,
  // store, and check against the reference product.
  const ChipConfig cfg = square_cfg();
  HostCore core(cfg, CoreKind::kComputeCentric, 0, 0, 0, 0);
  Rng rng(5);
  Tensor acts = random_tile(4, 4, rng);
  Tensor weights = random_tile(4, 4, rng);
  Tensor out(4, 4);
  core.bind_lsu_slot(0, &acts);
  core.bind_lsu_slot(1, &weights);
  core.bind_lsu_slot(2, &out);

  const auto program = isa::assemble(R"(
    mm.ld m1, a0     # activations
    mm.ld m2, a1     # weights
    mm.zero m0
    mm.mul m0, m1, m2
    mm.st m0, a2
  )");
  const Cycle cycles = core.run(program);
  EXPECT_GT(cycles, 0u);

  const Tensor ref = matmul_reference(acts, weights);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(out.at(r, c), ref.at(r, c), 0.05F) << r << "," << c;
    }
  }
}

TEST(HostCore, UnboundLsuSlotThrows) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0);
  EXPECT_THROW(core.execute(isa::assemble_line("mm.ld m0, a5")),
               std::invalid_argument);
}

TEST(HostCore, CimGemvProgramMatchesReference) {
  const ChipConfig cfg = square_cfg();
  HostCore core(cfg, CoreKind::kMemoryCentric, 0, 0, 0, 0);
  Rng rng(9);
  const Tensor weights = random_tile(8, 8, rng);  // K=8 rows, N=8 cols
  core.bind_matrix(0x4000, &weights);
  core.set_xreg(3, 0x4000);

  std::vector<float> act(8);
  for (float& v : act) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  core.set_vreg(2, act);

  core.execute(isa::assemble_line("mv.ldw (x3)"));
  core.execute(isa::assemble_line("mv.mul v1, v2, (x3)"));

  const auto ref = gemv_reference(act, weights);
  const auto& got = core.vreg(1);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // int8 × int8 quantization error bound.
    EXPECT_NEAR(got[i], ref[i], 0.15F) << i;
  }
}

TEST(HostCore, MvMulBeforeLdwThrows) {
  const ChipConfig cfg = square_cfg();
  HostCore core(cfg, CoreKind::kMemoryCentric, 0, 0, 0, 0);
  Tensor w(4, 4);
  core.bind_matrix(0x100, &w);
  core.set_xreg(1, 0x100);
  core.set_vreg(2, std::vector<float>(4, 1.0F));
  EXPECT_THROW(core.execute(isa::assemble_line("mv.mul v1, v2, (x1)")),
               std::invalid_argument);
}

TEST(HostCore, PruneInstructionCompactsAndReportsN) {
  const ChipConfig cfg = square_cfg();
  HostCore core(cfg, CoreKind::kMemoryCentric, 0, 0, 0, 0);
  // k = 2 via CSR; t stays at the default 16.
  core.set_xreg(1, 2);
  core.execute(isa::assemble_line("cfg.csrw prunek, x1"));

  core.set_vreg(4, {0.01F, 8.0F, 0.02F, -6.0F, 0.005F});
  core.execute(isa::assemble_line("mv.prune v5, v4"));

  EXPECT_EQ(core.vreg(5), (std::vector<float>{8.0F, -6.0F}));
  ASSERT_TRUE(core.last_prune().has_value());
  EXPECT_EQ(core.last_prune()->kept, (std::vector<std::size_t>{1, 3}));
  // n recorded in the read-only CSR.
  EXPECT_EQ(core.csrs().read(isa::Csr::kPruneCount),
            count_above_max_over_t(core.vreg(4), 16.0));
}

TEST(HostCore, VectorInstructionsCompute) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0);
  core.set_vreg(1, {1.0F, -2.0F});
  core.set_vreg(2, {3.0F, 5.0F});
  core.execute(isa::assemble_line("vv.add v3, v1, v2"));
  EXPECT_EQ(core.vreg(3), (std::vector<float>{4.0F, 3.0F}));
  core.execute(isa::assemble_line("vv.mul v4, v1, v2"));
  EXPECT_EQ(core.vreg(4), (std::vector<float>{3.0F, -10.0F}));
  core.execute(isa::assemble_line("vv.act v5, v1, relu"));
  EXPECT_EQ(core.vreg(5), (std::vector<float>{1.0F, 0.0F}));
}

TEST(HostCore, VectorLengthCapEnforced) {
  HostCore core(square_cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0);
  EXPECT_THROW(core.set_vreg(0, std::vector<float>(HostCore::kMaxVlen + 1, 0.0F)),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::core
