#include "core/timing.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {
namespace {

struct TimingFixture : ::testing::Test {
  ChipConfig cfg = default_chip_config();
  sim::Simulator sim;
  mem::DramController dram{sim, cfg.dram};
};

TEST_F(TimingFixture, CcComputeFollowsEq2Tiling) {
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc0");
  const GemmWork work{300, 2048, 2048, Phase::kPrefill, false, 0, false};
  // tiles = (2048/16)·(2048/16) = 16384; per-tile Eq. 2 at m=300 = 345;
  // 4 cores share the tiles.
  const Cycle expected = (16384 / 4) * (2 * 16 + 16 + 300 - 3);
  EXPECT_EQ(cc.compute_cycles(work), expected);
}

TEST_F(TimingFixture, McComputeFollowsEq3PlusWrites) {
  ClusterTimingModel mc(sim, dram, cfg, ClusterKind::kMemoryCentric, "mc0");
  const GemmWork work{1, 2048, 2048, Phase::kDecode, false, 0, false};
  // col groups = 2048/64 = 32 over 2 cores = 16 sequential groups;
  // per group: 128 entries × 16 write cycles + (1·128·8 + 1) compute.
  const Cycle per_group = 128 * 16 + (128 * 8 + 1);
  EXPECT_EQ(mc.compute_cycles(work), 16 * per_group);
}

TEST_F(TimingFixture, ResidentWeightsSkipCimWrites) {
  ClusterTimingModel mc(sim, dram, cfg, ClusterKind::kMemoryCentric, "mc0");
  GemmWork work{1, 2048, 2048, Phase::kDecode, false, 0, false};
  const Cycle with_writes = mc.compute_cycles(work);
  work.weights_resident = true;
  const Cycle without_writes = mc.compute_cycles(work);
  EXPECT_LT(without_writes, with_writes);
}

TEST_F(TimingFixture, WeightBytesFollowElementSizes) {
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc0");
  ClusterTimingModel mc(sim, dram, cfg, ClusterKind::kMemoryCentric, "mc0");
  const GemmWork work{1, 1024, 1024, Phase::kDecode, false, 0, false};
  EXPECT_EQ(cc.weight_bytes(work), 1024u * 1024u * 2u);  // BF16 weights
  EXPECT_EQ(mc.weight_bytes(work), 1024u * 1024u * 1u);  // INT8 weights

  GemmWork kv = work;
  kv.weight_elem_bytes_override = 2;  // KV cache streams BF16 everywhere
  EXPECT_EQ(mc.weight_bytes(kv), 1024u * 1024u * 2u);

  GemmWork resident = work;
  resident.weights_resident = true;
  EXPECT_EQ(mc.weight_bytes(resident), 0u);
}

TEST_F(TimingFixture, McBlocksLargerThanCc) {
  // Fig. 6(b) insight: the ample MC memory permits larger DMA blocks.
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc0");
  ClusterTimingModel mc(sim, dram, cfg, ClusterKind::kMemoryCentric, "mc0");
  EXPECT_GT(mc.block_bytes(), cc.block_bytes());
}

TEST_F(TimingFixture, GemvFasterOnMcThanCc) {
  // §V-B: "an MC-cluster is 2.42× faster in GEMV".  Our model should land
  // near 2× (precision + efficiency); assert the direction and ballpark.
  const GemmWork gemv{1, 2048, 2048, Phase::kDecode, false, 0, false};

  auto run_isolated = [&](ClusterKind kind) {
    sim::Simulator local_sim;
    mem::DramController local_dram(local_sim, cfg.dram);
    ClusterTimingModel cluster(local_sim, local_dram, cfg, kind, "x");
    Cycle done = 0;
    cluster.run_ops({gemv}, [&] { done = local_sim.now(); });
    local_sim.run();
    return done;
  };

  const Cycle cc_time = run_isolated(ClusterKind::kComputeCentric);
  const Cycle mc_time = run_isolated(ClusterKind::kMemoryCentric);
  const double ratio = static_cast<double>(cc_time) / static_cast<double>(mc_time);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

TEST_F(TimingFixture, GemmFasterOnCcThanMc) {
  // §V-B: "a CC-cluster shows 4.3× better GEMM performance than an
  // MC-cluster".
  const GemmWork gemm{300, 2048, 2048, Phase::kPrefill, false, 0, false};

  auto run_isolated = [&](ClusterKind kind) {
    sim::Simulator local_sim;
    mem::DramController local_dram(local_sim, cfg.dram);
    ClusterTimingModel cluster(local_sim, local_dram, cfg, kind, "x");
    Cycle done = 0;
    cluster.run_ops({gemm}, [&] { done = local_sim.now(); });
    local_sim.run();
    return done;
  };

  const Cycle cc_time = run_isolated(ClusterKind::kComputeCentric);
  const Cycle mc_time = run_isolated(ClusterKind::kMemoryCentric);
  const double ratio = static_cast<double>(mc_time) / static_cast<double>(cc_time);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 7.0);
}

TEST_F(TimingFixture, BaselineSlowerThanBothExtensions) {
  const GemmWork gemm{300, 2048, 2048, Phase::kPrefill, false, 0, false};
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc");
  ClusterTimingModel simd(sim, dram, cfg, ClusterKind::kBaselineSimd, "simd");
  EXPECT_GT(simd.compute_cycles(gemm), 10 * cc.compute_cycles(gemm));
}

TEST_F(TimingFixture, RunOpsCompletesAndAccountsStats) {
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc0");
  bool done = false;
  const GemmWork work{16, 256, 256, Phase::kPrefill, false, 0, false};
  cc.run_ops({work, work}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(cc.idle());
  EXPECT_EQ(cc.stats().ops_executed, 2u);
  EXPECT_EQ(cc.stats().flops, 2 * work.flops());
  EXPECT_GT(cc.stats().compute_cycles, 0u);
  EXPECT_EQ(cc.dma().total_bytes(),
            2 * (cc.weight_bytes(work) + cc.activation_bytes(work)));
}

TEST_F(TimingFixture, EmptyOpListStillCompletes) {
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc0");
  bool done = false;
  cc.run_ops({}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(TimingFixture, DoubleBufferingOverlapsDmaAndCompute) {
  // End-to-end latency of n blocks must be well below the serial sum
  // (DMA then compute per block) when both sides are comparable.
  ClusterTimingModel cc(sim, dram, cfg, ClusterKind::kComputeCentric, "cc0");
  const GemmWork work{64, 2048, 2048, Phase::kPrefill, false, 0, false};
  Cycle done_at = 0;
  cc.run_ops({work}, [&] { done_at = sim.now(); });
  sim.run();

  const Bytes bytes = cc.weight_bytes(work) + cc.activation_bytes(work);
  const auto dma_cycles =
      static_cast<Cycle>(static_cast<double>(bytes) / cfg.dram.bytes_per_cycle);
  const Cycle compute = cc.compute_cycles(work);
  const Cycle serial = dma_cycles + compute;
  const Cycle overlapped = std::max<Cycle>(dma_cycles, compute);
  EXPECT_LT(done_at, serial);
  // Within 25 % of the ideal overlap bound (pipeline fill + latency).
  EXPECT_LT(done_at, overlapped + overlapped / 4 + cfg.dram.latency * 4);
}

}  // namespace
}  // namespace edgemm::core
