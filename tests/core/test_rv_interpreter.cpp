#include "core/rv_interpreter.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"

namespace edgemm::core {
namespace {

using namespace rv;

ChipConfig cfg() {
  ChipConfig c = tiny_chip_config();
  c.cim = {8, 4, 8, 8, 8};
  return c;
}

HostCore make_cc() { return HostCore(cfg(), CoreKind::kComputeCentric, 0, 0, 0, 0); }
HostCore make_mc(std::uint32_t pos = 0) {
  return HostCore(cfg(), CoreKind::kMemoryCentric, pos, 0, 0, pos);
}

TEST(RvInterpreter, ArithmeticAndImmediates) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      addi(1, 0, 40),    // x1 = 40
      addi(2, 1, 2),     // x2 = 42
      add(3, 1, 2),      // x3 = 82
      sub(4, 2, 1),      // x4 = 2
      slli(5, 4, 4),     // x5 = 32
      srli(6, 5, 3),     // x6 = 4
      xor_(7, 1, 2),     // x7 = 40 ^ 42
      ecall(),
  };
  const auto result = cpu.run(program);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(core.xreg(3), 82u);
  EXPECT_EQ(core.xreg(4), 2u);
  EXPECT_EQ(core.xreg(5), 32u);
  EXPECT_EQ(core.xreg(6), 4u);
  EXPECT_EQ(core.xreg(7), 40u ^ 42u);
}

TEST(RvInterpreter, NegativeImmediatesSignExtend) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      addi(1, 0, -5),
      addi(2, 1, 3),
      ecall(),
  };
  cpu.run(program);
  EXPECT_EQ(static_cast<std::int32_t>(core.xreg(2)), -2);
}

TEST(RvInterpreter, LuiBuildsUpperImmediate) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      lui(1, 0x8),        // x1 = 0x8000
      addi(1, 1, 0x100),  // x1 = 0x8100
      ecall(),
  };
  cpu.run(program);
  EXPECT_EQ(core.xreg(1), 0x8100u);
}

TEST(RvInterpreter, LoadStoreRoundTrip) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  cpu.store_word(64, 1234);
  const std::vector<std::uint32_t> program{
      addi(1, 0, 64),
      lw(2, 1, 0),      // x2 = mem[64]
      addi(2, 2, 1),
      sw(2, 1, 4),      // mem[68] = 1235
      ecall(),
  };
  cpu.run(program);
  EXPECT_EQ(cpu.load_word(68), 1235u);
}

TEST(RvInterpreter, MisalignedAccessThrows) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  EXPECT_THROW(cpu.load_word(2), std::invalid_argument);
  EXPECT_THROW(cpu.store_word(6, 1), std::invalid_argument);
  EXPECT_THROW(cpu.load_word(1u << 20), std::out_of_range);
}

TEST(RvInterpreter, LoopSumsOneToTen) {
  // x1 = counter, x2 = sum, x3 = limit.
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      addi(1, 0, 1),     // 0x00: i = 1
      addi(2, 0, 0),     // 0x04: sum = 0
      addi(3, 0, 10),    // 0x08: limit = 10
      add(2, 2, 1),      // 0x0C: sum += i
      addi(1, 1, 1),     // 0x10: ++i
      bge(3, 1, -8),     // 0x14: while (limit >= i) goto 0x0C
      ecall(),           // 0x18
  };
  const auto result = cpu.run(program);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(core.xreg(2), 55u);
  EXPECT_GT(result.instructions, 30u);
}

TEST(RvInterpreter, JalAndJalrLinkAndJump) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      jal(1, 12),        // 0x00: jump to 0x0C, x1 = 4
      addi(2, 0, 111),   // 0x04: skipped on first pass
      ecall(),           // 0x08
      addi(3, 0, 7),     // 0x0C: landed here
      jalr(4, 1, 0),     // 0x10: jump back to 0x04
  };
  const auto result = cpu.run(program);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(core.xreg(1), 4u);
  EXPECT_EQ(core.xreg(3), 7u);
  EXPECT_EQ(core.xreg(2), 111u);
  EXPECT_EQ(core.xreg(4), 20u);
}

TEST(RvInterpreter, FuelLimitStopsRunaways) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      jal(0, 0),  // infinite loop onto itself
  };
  const auto result = cpu.run(program, /*fuel=*/1000);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.instructions, 1000u);
}

TEST(RvInterpreter, PcOutsideProgramThrows) {
  HostCore core = make_cc();
  RvInterpreter cpu(core);
  const std::vector<std::uint32_t> program{
      addi(1, 0, 1),  // falls off the end: no ecall
  };
  EXPECT_THROW(cpu.run(program), std::out_of_range);
}

TEST(RvInterpreter, ExtensionWordsDispatchToCoprocessor) {
  // Base ISA + extension interleaved: the RV loop sets the pruning
  // budget via a scalar register, then cfg.csrw + mv.prune execute on
  // the coprocessor, exactly the Fig. 5/6 dispatch structure.
  HostCore core = make_mc();
  RvInterpreter cpu(core);
  core.set_vreg(4, {0.01F, 8.0F, 0.02F, -6.0F, 0.005F});

  std::vector<std::uint32_t> program{
      addi(1, 0, 2),  // x1 = k budget
      isa::assemble_line("cfg.csrw prunek, x1"),
      isa::assemble_line("mv.prune v5, v4"),
      ecall(),
  };
  const auto result = cpu.run(program);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(core.vreg(5), (std::vector<float>{8.0F, -6.0F}));
  // Coprocessor cycles dominate the two base instructions.
  EXPECT_GT(result.cycles, 4u);
}

TEST(RvInterpreter, RvDrivenShardedGemv) {
  // Full §III-C flow in machine code: each core computes its shard base
  // address from the corepos CSR with base-ISA arithmetic, then runs the
  // CIM kernel on its half of the matrix.
  const std::size_t k = 16;
  const std::size_t n = 8;
  Rng rng(5);
  Tensor weights(k, n);
  for (float& v : weights.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.4));
  std::vector<float> act(k);
  for (float& v : act) v = static_cast<float>(rng.gaussian());

  std::vector<float> combined(n, 0.0F);
  for (std::uint32_t pos = 0; pos < 2; ++pos) {
    HostCore core = make_mc(pos);
    RvInterpreter cpu(core);
    const Tensor shard = weights.block(pos * (k / 2), 0, k / 2, n);
    const std::vector<float> act_shard(act.begin() + pos * (k / 2),
                                       act.begin() + (pos + 1) * (k / 2));
    // Shard addresses 0x1000 and 0x1400, computed by the program.
    core.bind_matrix(0x1000 + pos * 0x400, &shard);
    core.set_vreg(0, act_shard);

    const std::vector<std::uint32_t> program{
        isa::assemble_line("cfg.csrr corepos, x1"),  // x1 = my position
        slli(2, 1, 10),                              // x2 = pos * 0x400
        lui(3, 0x1),                                 // x3 = 0x1000
        add(3, 3, 2),                                // x3 = shard base
        isa::assemble_line("mv.ldw (x3)"),
        isa::assemble_line("mv.mul v2, v0, (x3)"),
        ecall(),
    };
    const auto result = cpu.run(program);
    ASSERT_TRUE(result.halted);
    for (std::size_t i = 0; i < n; ++i) combined[i] += core.vreg(2)[i];
  }
  const auto ref = gemv_reference(act, weights);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(combined[i], ref[i], 0.25F) << i;
  }
}

}  // namespace
}  // namespace edgemm::core
