#include "serve/kv_tracker.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/config.hpp"

namespace edgemm::serve {
namespace {

TEST(KvCapacityTracker, ValidatesCapacity) {
  EXPECT_THROW(KvCapacityTracker(0), std::invalid_argument);
}

TEST(KvCapacityTracker, ReservesExactlyToCapacity) {
  KvCapacityTracker tracker(1000);
  EXPECT_TRUE(tracker.try_reserve(1, 600));
  EXPECT_EQ(tracker.reserved(), 600u);
  EXPECT_EQ(tracker.available(), 400u);
  // Filling the budget to exactly capacity succeeds.
  EXPECT_TRUE(tracker.try_reserve(2, 400));
  EXPECT_EQ(tracker.reserved(), 1000u);
  EXPECT_EQ(tracker.available(), 0u);
  EXPECT_EQ(tracker.holders(), 2u);
  EXPECT_EQ(tracker.deferrals(), 0u);
}

TEST(KvCapacityTracker, OneByteOverDefers) {
  KvCapacityTracker tracker(1000);
  EXPECT_TRUE(tracker.try_reserve(1, 1000));
  EXPECT_FALSE(tracker.try_reserve(2, 1));  // one byte over
  EXPECT_EQ(tracker.deferrals(), 1u);
  EXPECT_EQ(tracker.holders(), 1u);
  EXPECT_EQ(tracker.reserved(), 1000u);

  KvCapacityTracker fresh(1000);
  EXPECT_FALSE(fresh.try_reserve(1, 1001));  // single oversized request
  EXPECT_EQ(fresh.deferrals(), 1u);
  // Zero-byte reservations are fine even at a full budget.
  EXPECT_TRUE(fresh.try_reserve(2, 1000));
  EXPECT_TRUE(fresh.try_reserve(3, 0));
}

TEST(KvCapacityTracker, ReleaseMakesRoomAgain) {
  KvCapacityTracker tracker(1000);
  EXPECT_TRUE(tracker.try_reserve(1, 700));
  EXPECT_FALSE(tracker.try_reserve(2, 500));
  tracker.release(1);
  EXPECT_EQ(tracker.reserved(), 0u);
  EXPECT_TRUE(tracker.try_reserve(2, 500));
  EXPECT_EQ(tracker.holders(), 1u);
}

TEST(KvCapacityTracker, RejectsDuplicateAndUnknownIds) {
  KvCapacityTracker tracker(1000);
  EXPECT_TRUE(tracker.try_reserve(1, 100));
  EXPECT_THROW(tracker.try_reserve(1, 100), std::logic_error);
  EXPECT_THROW(tracker.release(2), std::logic_error);
  tracker.release(1);
  EXPECT_THROW(tracker.release(1), std::logic_error);
}

TEST(KvCapacityTracker, HoldsIsKeyedByIdNotByBytes) {
  // The hand-off reservation on a decode tier is looked up by id at
  // join time: holds() must answer for exactly the ids that reserved,
  // independent of how many bytes each one charged.
  KvCapacityTracker tracker(1000);
  EXPECT_FALSE(tracker.holds(1));
  EXPECT_TRUE(tracker.try_reserve(1, 600));
  EXPECT_TRUE(tracker.try_reserve(2, 0));  // zero-byte reservation still held
  EXPECT_TRUE(tracker.holds(1));
  EXPECT_FALSE(tracker.holds(2));  // held_by(2) == 0 bytes reads as absent
  EXPECT_FALSE(tracker.holds(3));
  tracker.release(1);
  EXPECT_FALSE(tracker.holds(1));
}

TEST(KvCapacityTracker, PeakReservedIsAHighWaterMark) {
  KvCapacityTracker tracker(1000);
  EXPECT_EQ(tracker.peak_reserved(), 0u);
  EXPECT_TRUE(tracker.try_reserve(1, 300));
  EXPECT_TRUE(tracker.try_reserve(2, 400));
  EXPECT_EQ(tracker.peak_reserved(), 700u);
  tracker.release(1);
  EXPECT_EQ(tracker.reserved(), 400u);
  EXPECT_EQ(tracker.peak_reserved(), 700u);  // the mark never recedes
  // A failed reservation moves nothing, so the peak stays put ...
  EXPECT_FALSE(tracker.try_reserve(3, 700));
  EXPECT_EQ(tracker.peak_reserved(), 700u);
  // ... and a smaller success past the old mark advances it.
  EXPECT_TRUE(tracker.try_reserve(4, 350));
  EXPECT_EQ(tracker.peak_reserved(), 750u);
}

TEST(ChipKvCapacity, ScalesWithMcClustersAndOversubscription) {
  const core::ChipConfig cfg = core::default_chip_config();
  const Bytes base = chip_kv_capacity(cfg);
  EXPECT_EQ(base, cfg.total_mc_clusters() * cfg.mc_cluster_cim_bytes());
  EXPECT_EQ(chip_kv_capacity(cfg, 2.0), 2 * base);
  EXPECT_THROW(chip_kv_capacity(cfg, 0.0), std::invalid_argument);
  EXPECT_THROW(chip_kv_capacity(cfg, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::serve
