#include "serve/sweep.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "serve/admission.hpp"
#include "serve/policy.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

std::vector<Request> small_trace() {
  TraceConfig cfg;
  cfg.requests = 8;
  cfg.arrival_rate_per_s = 2000.0;
  cfg.input_tokens = 32;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 8;
  return poisson_trace(cfg);
}

EngineConfig base_engine(core::ReplayMode mode) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .manage_bandwidth(false)
      .replay_mode(mode);
}

/// A policy grid on the fast tier: the shape the bench sweeps, shrunk.
std::vector<SweepCase> policy_grid() {
  std::vector<SweepCase> cases;
  const auto trace = small_trace();
  {
    SweepCase c{"fifo", small_cfg(), {tiny_model()},
                base_engine(core::ReplayMode::kFast), trace};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{"srf", small_cfg(), {tiny_model()},
                base_engine(core::ReplayMode::kFast)
                    .batch_policy(std::make_shared<ShortestRemainingFirst>()),
                trace};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{"chunked", small_cfg(), {tiny_model()},
                base_engine(core::ReplayMode::kFast)
                    .prefill_planner(std::make_shared<ChunkedPrefill>(16)),
                trace};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{"srf-chunked", small_cfg(), {tiny_model()},
                base_engine(core::ReplayMode::kFast)
                    .batch_policy(std::make_shared<ShortestRemainingFirst>())
                    .prefill_planner(std::make_shared<ChunkedPrefill>(16)),
                trace};
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(Sweep, OutcomesArriveInCaseOrder) {
  const auto outcomes = run_sweep(policy_grid(), {.workers = 1});
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].label, "fifo");
  EXPECT_EQ(outcomes[1].label, "srf");
  EXPECT_EQ(outcomes[2].label, "chunked");
  EXPECT_EQ(outcomes[3].label, "srf-chunked");
  for (const SweepOutcome& o : outcomes) {
    EXPECT_EQ(o.result.completed, 8u);
    EXPECT_EQ(o.records.size(), 8u);
    EXPECT_GE(o.wall_ms, 0.0);
  }
}

TEST(Sweep, ParallelSweepIsByteIdenticalToSequential) {
  const auto cases = policy_grid();
  const auto sequential = run_sweep(cases, {.workers = 1});
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = run_sweep(cases, {.workers = workers});
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_TRUE(outcomes_identical(sequential[i], parallel[i]))
          << "case " << sequential[i].label << " diverged at " << workers
          << " workers";
    }
  }
}

TEST(Sweep, RepeatedSweepsAreIdentical) {
  const auto cases = policy_grid();
  const auto first = run_sweep(cases, {.workers = 2});
  const auto second = run_sweep(cases, {.workers = 2});
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(outcomes_identical(first[i], second[i]));
  }
}

TEST(Sweep, EmptyCaseListThrows) {
  EXPECT_THROW(run_sweep({}, {.workers = 2}), std::invalid_argument);
}

TEST(Sweep, CaseErrorsRethrowOnTheCallingThread) {
  auto cases = policy_grid();
  cases[1].requests.clear();  // replay_trace rejects an empty trace
  EXPECT_THROW(run_sweep(cases, {.workers = 4}), std::invalid_argument);
}

TEST(Sweep, ResultsIdenticalIsFieldExact) {
  const auto outcomes = run_sweep(policy_grid(), {.workers = 1});
  ServingResult a = outcomes[0].result;
  ServingResult b = a;
  EXPECT_TRUE(results_identical(a, b));
  b.makespan += 1;
  EXPECT_FALSE(results_identical(a, b));
  b = a;
  b.p99_latency_ms += 1e-9;
  EXPECT_FALSE(results_identical(a, b));
}

TEST(Sweep, FastTierMakespanWithinOnePercentOfDetailed) {
  // Scaled-down version of the bench's fidelity gate: detailed vs fast
  // on the same trace, per planner, <1% makespan drift and identical
  // completion counts.
  const auto trace = small_trace();
  struct Variant {
    const char* name;
    std::shared_ptr<const PrefillPlanner> planner;
  };
  const std::vector<Variant> variants = {
      {"mono", std::make_shared<MonolithicPrefill>()},
      {"chunked", std::make_shared<ChunkedPrefill>(16)},
  };
  for (const Variant& v : variants) {
    const auto detailed =
        replay_trace(small_cfg(), {tiny_model()},
                     base_engine(core::ReplayMode::kDetailed).prefill_planner(v.planner),
                     trace);
    const auto fast =
        replay_trace(small_cfg(), {tiny_model()},
                     base_engine(core::ReplayMode::kFast).prefill_planner(v.planner),
                     trace);
    EXPECT_EQ(detailed.result.completed, fast.result.completed) << v.name;
    EXPECT_EQ(detailed.result.rejected, fast.result.rejected) << v.name;
    const double drift =
        std::abs(static_cast<double>(fast.result.makespan) -
                 static_cast<double>(detailed.result.makespan)) /
        static_cast<double>(detailed.result.makespan);
    EXPECT_LT(drift, 0.01) << v.name;
  }
}

}  // namespace
}  // namespace edgemm::serve
