// Residency-aware model placement + the shared-pin fill barrier (PR 5).
//
// Tracker level: fill state (mark_filled / filled), keep-warm detach,
// warm revival, idle eviction. Policy level: the three shipped
// PlacementPolicy implementations judged against hand-built
// PlacementContexts. Engine level: the fill-barrier edges (rider
// attaching before / across / after the owner's fill chunk retires,
// owner exemption, per-request-mode exemption, fallback-not-stall
// composition), keep-current byte-identity with the placement-oblivious
// default, keep-warm reuse across request gaps, and pressure eviction.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "serve/residency_tracker.hpp"
#include "serve/serving_engine.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;  // 2 CC + 2 MC clusters: fast simulation
  return cfg;
}

model::MllmConfig tiny_model(const char* name = "tiny-mllm") {
  model::MllmConfig m;
  m.name = name;
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

Request req(RequestId id, Cycle arrival, std::size_t output_tokens,
            std::size_t input_tokens = 128, std::size_t model = 0) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.model = model;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  return r;
}

EngineConfig fast_config(std::shared_ptr<const PrefillPlanner> planner) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .prefill_planner(std::move(planner))
      .manage_bandwidth(false);
}

Bytes full_weight_set(const model::MllmConfig& m, const core::ChipConfig& cfg) {
  return llm_layer_group_bytes(m, cfg) * m.llm.layers;
}

ModelDemand demand(std::size_t queued, std::size_t inflight,
                   std::size_t resident_layers, std::size_t refcount,
                   Bytes layer_group_bytes, std::size_t total_layers) {
  ModelDemand d;
  d.queued = queued;
  d.inflight = inflight;
  d.pin_refcount = refcount;
  d.resident_layers = resident_layers;
  d.idle_resident = resident_layers > 0 && refcount == 0;
  d.pinned_bytes = static_cast<Bytes>(resident_layers) * layer_group_bytes;
  d.layer_group_bytes = layer_group_bytes;
  d.total_layers = total_layers;
  return d;
}

// --- Tracker: fill state and keep-warm lifecycle ----------------------------

TEST(FillBarrierTracker, FreshPinIsUnfilledUntilMarked) {
  WeightResidencyTracker tracker(1000);
  EXPECT_FALSE(tracker.filled(7));  // no pin at all: nothing to ride
  ASSERT_EQ(tracker.attach_layers(7, 250, 4).layers, 4u);
  EXPECT_FALSE(tracker.filled(7));
  tracker.mark_filled(7);
  EXPECT_TRUE(tracker.filled(7));
  // Fill state dies with the pin: a later fresh pin fills anew.
  tracker.detach(7);
  EXPECT_FALSE(tracker.filled(7));
  ASSERT_EQ(tracker.attach_layers(7, 250, 4).layers, 4u);
  EXPECT_FALSE(tracker.filled(7));
  tracker.detach(7);
  EXPECT_THROW(tracker.mark_filled(7), std::logic_error);
}

TEST(FillBarrierTracker, KeepResidentDetachRetainsBytesAndFillState) {
  WeightResidencyTracker tracker(1000);
  ASSERT_EQ(tracker.attach_layers(3, 250, 4).layers, 4u);
  tracker.mark_filled(3);
  tracker.detach(3, /*keep_resident=*/true);
  // Idle pin: zero refcount, bytes still charged, fill preserved.
  EXPECT_EQ(tracker.refcount(3), 0u);
  EXPECT_EQ(tracker.resident_layers(3), 4u);
  EXPECT_EQ(tracker.pinned(), 1000u);
  EXPECT_EQ(tracker.idle_pins(), 1u);
  EXPECT_EQ(tracker.idle_pinned_bytes(), 1000u);
  EXPECT_TRUE(tracker.filled(3));
  // Detaching an idle pin is a logic error (revive it via attach).
  EXPECT_THROW(tracker.detach(3), std::logic_error);

  // Warm revival: refcount 0 -> 1, no budget charge, no new pin, and
  // the warm/shared counters split (a warm attach is not a live ride).
  const auto warm = tracker.attach_layers(3, 250, 4);
  EXPECT_TRUE(warm.shared);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.layers, 4u);
  EXPECT_EQ(tracker.warm_attaches(), 1u);
  EXPECT_EQ(tracker.shared_attaches(), 0u);
  EXPECT_EQ(tracker.pins(), 1u);
  EXPECT_EQ(tracker.idle_pins(), 0u);
  EXPECT_TRUE(tracker.filled(3));
  // A second attach on the revived pin is an ordinary live ride.
  EXPECT_FALSE(tracker.attach_layers(3, 250, 4).warm);
  EXPECT_EQ(tracker.shared_attaches(), 1u);
  tracker.detach(3);
  tracker.detach(3);  // refcount 0, not kept: evicted for real
  EXPECT_EQ(tracker.pinned(), 0u);
}

TEST(FillBarrierTracker, EvictIdleReclaimsOnlyIdlePins) {
  WeightResidencyTracker tracker(1000);
  ASSERT_EQ(tracker.attach_layers(1, 300, 2).layers, 2u);
  EXPECT_THROW(tracker.evict_idle(1), std::logic_error);  // live holders
  EXPECT_THROW(tracker.evict_idle(9), std::logic_error);  // no such pin
  tracker.detach(1, /*keep_resident=*/true);
  EXPECT_EQ(tracker.idle_pinned_bytes(), 600u);
  tracker.evict_idle(1);
  EXPECT_EQ(tracker.idle_evictions(), 1u);
  EXPECT_EQ(tracker.pinned(), 0u);
  EXPECT_EQ(tracker.resident_layers(1), 0u);

  // evict_all_idle is the end-of-replay flush: it reclaims every idle
  // pin but is NOT a placement eviction.
  ASSERT_EQ(tracker.attach_layers(2, 300, 1).layers, 1u);
  ASSERT_EQ(tracker.attach_layers(3, 300, 1).layers, 1u);
  tracker.detach(2, true);
  tracker.detach(3, true);
  EXPECT_EQ(tracker.evict_all_idle(), 2u);
  EXPECT_EQ(tracker.idle_evictions(), 1u);  // unchanged
  EXPECT_EQ(tracker.pinned(), 0u);
  EXPECT_EQ(tracker.holders(), 0u);
}

// --- Placement policies against hand-built contexts -------------------------

TEST(PlacementPolicies, KeepCurrentIsTheObliviousBaseline) {
  KeepCurrentPlacement policy;
  PlacementContext ctx;
  ctx.capacity = 1000;
  ctx.models = {demand(0, 0, 4, 0, 100, 4), demand(3, 2, 0, 0, 100, 4)};
  ctx.models[0].idle_resident = true;
  EXPECT_TRUE(policy.may_acquire(1, ctx));
  EXPECT_FALSE(policy.retain_idle(0, ctx));
  EXPECT_TRUE(policy.evict_victims(1, 1000, ctx).empty());
}

TEST(PlacementPolicies, DemandWeightedGrantsFullSetsHottestFirst) {
  DemandWeightedPlacement policy;
  PlacementContext ctx;
  ctx.capacity = 1000;
  // Model 0: demand 1, set 600. Model 1: demand 3, set 500. Model 2:
  // demand 2, set 400. Greedy by demand: 1 (500) + 2 (400) fit, 0 does
  // not (600 > 100 remaining).
  ctx.models = {demand(1, 0, 0, 0, 150, 4), demand(2, 1, 0, 0, 125, 4),
                demand(1, 1, 0, 0, 100, 4)};
  EXPECT_EQ(policy.target_set(ctx), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(policy.may_acquire(1, ctx));
  EXPECT_TRUE(policy.may_acquire(2, ctx));
  EXPECT_FALSE(policy.may_acquire(0, ctx));
  EXPECT_TRUE(policy.retain_idle(2, ctx));
  EXPECT_FALSE(policy.retain_idle(0, ctx));

  // A zero-demand model stays ranked only while resident: warm bytes
  // are free to keep until a demanded model wants them.
  PlacementContext quiet;
  quiet.capacity = 1000;
  quiet.models = {demand(0, 0, 4, 0, 150, 4), demand(0, 0, 0, 0, 125, 4),
                  demand(1, 0, 0, 0, 100, 4)};
  // Model 2 (demanded) first, then resident model 0; model 1 (cold,
  // not resident) is not ranked at all.
  EXPECT_EQ(policy.target_set(quiet), (std::vector<std::size_t>{2, 0}));

  // Victims: only idle pins OUTSIDE the target set, and an asker
  // outside the set gets none (it may not acquire anyway).
  PlacementContext pressure;
  pressure.capacity = 1000;
  pressure.models = {demand(2, 0, 4, 0, 150, 4),   // hot, idle-resident
                     demand(0, 0, 4, 0, 100, 4),   // cold, idle-resident
                     demand(1, 0, 0, 0, 100, 4)};  // asking
  EXPECT_EQ(policy.target_set(pressure), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(policy.evict_victims(2, 100, pressure),
            (std::vector<std::size_t>{1}));
  EXPECT_TRUE(policy.evict_victims(1, 100, pressure).empty());
}

TEST(PlacementPolicies, EvictIdleOrdersVictimsColdestAndLargestFirst) {
  EvictIdleOnPressure policy;
  PlacementContext ctx;
  ctx.capacity = 10000;
  ctx.models = {demand(0, 0, 4, 0, 100, 4),   // idle, 400 B, demand 0
                demand(0, 0, 4, 0, 200, 4),   // idle, 800 B, demand 0
                demand(1, 1, 4, 0, 100, 4),   // idle but demanded
                demand(0, 1, 0, 0, 100, 4)};  // the asker
  EXPECT_TRUE(policy.may_acquire(3, ctx));
  EXPECT_TRUE(policy.retain_idle(0, ctx));
  // Coldest first; within equal demand the larger pin goes first (one
  // eviction covers the need, the rest stay resident). The cutoff stops
  // as soon as the freed bytes cover the request.
  EXPECT_EQ(policy.evict_victims(3, 700, ctx),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(policy.evict_victims(3, 900, ctx),
            (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(policy.evict_victims(3, 2000, ctx),
            (std::vector<std::size_t>{1, 0, 2}));
  // The asker's own idle pin is never pulled out from under it.
  ctx.models[3] = demand(0, 1, 4, 0, 100, 4);
  const auto victims = policy.evict_victims(3, 2000, ctx);
  EXPECT_TRUE(std::find(victims.begin(), victims.end(), 3u) == victims.end());
}

TEST(PlacementPolicies, FractionalSetsGrantThePartialFitWholeSetsDeny) {
  // Model 0: demand 3, set 600 (150 x 4). Model 1: demand 1, set 400
  // (100 x 4). Capacity 800: whole-set grants only model 0; fractional
  // mode hands model 1 the 2 layer groups that still fit.
  PlacementContext ctx;
  ctx.capacity = 800;
  ctx.models = {demand(2, 1, 0, 0, 150, 4), demand(1, 0, 0, 0, 100, 4)};

  const DemandWeightedPlacement whole;
  EXPECT_TRUE(whole.may_acquire(0, ctx));
  EXPECT_FALSE(whole.may_acquire(1, ctx));
  EXPECT_EQ(whole.acquire_target_layers(0, ctx), 4u);
  EXPECT_EQ(whole.acquire_target_layers(1, ctx), 0u);

  const DemandWeightedPlacement fractional(
      DemandWeightedOptions{.fractional_sets = true});
  const auto grants = fractional.target_grants(ctx);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].model, 0u);
  EXPECT_EQ(grants[0].layers, 4u);
  EXPECT_EQ(grants[1].model, 1u);
  EXPECT_EQ(grants[1].layers, 2u);  // 200 remaining / 100 per group
  EXPECT_TRUE(fractional.may_acquire(1, ctx));
  EXPECT_EQ(fractional.acquire_target_layers(1, ctx), 2u);

  // Not even one group fits: the fractional grant degenerates to a
  // denial, never a zero-layer pin.
  ctx.capacity = 650;
  EXPECT_FALSE(fractional.may_acquire(1, ctx));
  EXPECT_EQ(fractional.acquire_target_layers(1, ctx), 0u);
}

TEST(PlacementPolicies, DecayedDemandKeepsABurstyModelRanked) {
  // Model 0's queue just drained but its decayed signal is still hot;
  // model 1 has one live request. Live-only ranking drops model 0 to
  // unranked (not resident); the decayed option keeps it first.
  PlacementContext ctx;
  ctx.capacity = 1000;
  ctx.models = {demand(0, 0, 0, 0, 100, 4), demand(0, 1, 0, 0, 100, 4)};
  ctx.models[0].demand_decayed = 2.5;
  ctx.models[1].demand_decayed = 1.0;

  const DemandWeightedPlacement live_only;
  EXPECT_EQ(live_only.target_set(ctx), (std::vector<std::size_t>{1}));

  const DemandWeightedPlacement decayed(
      DemandWeightedOptions{.decayed_demand = true});
  EXPECT_EQ(decayed.target_set(ctx), (std::vector<std::size_t>{0, 1}));

  // Below the floor the residue counts as zero — a long-idle model
  // cannot squat on the budget via an infinitesimal tail.
  ctx.models[0].demand_decayed = kDecayedDemandFloor / 2.0;
  EXPECT_EQ(decayed.target_set(ctx), (std::vector<std::size_t>{1}));
}

TEST(FillBarrierTracker, PerGroupLandingIsMonotoneClampedAndCompletesFill) {
  WeightResidencyTracker tracker(1000);
  ASSERT_EQ(tracker.attach_layers(5, 250, 4).layers, 4u);
  EXPECT_EQ(tracker.landed_layers(5), 0u);
  tracker.mark_landed(5, 2);
  EXPECT_EQ(tracker.landed_layers(5), 2u);
  EXPECT_FALSE(tracker.filled(5));
  tracker.mark_landed(5, 1);  // monotone: landings never roll back
  EXPECT_EQ(tracker.landed_layers(5), 2u);
  tracker.mark_landed(5, 99);  // clamped to the pin's layer count
  EXPECT_EQ(tracker.landed_layers(5), 4u);
  EXPECT_TRUE(tracker.filled(5));  // every group landed == filled

  // mark_filled is the pin-granular shortcut: all groups land at once.
  ASSERT_EQ(tracker.attach_layers(6, 250, 4).layers, 0u);  // budget full
  tracker.detach(5);
  ASSERT_EQ(tracker.attach_layers(6, 250, 4).layers, 4u);
  tracker.mark_filled(6);
  EXPECT_EQ(tracker.landed_layers(6), 4u);

  EXPECT_EQ(tracker.landed_layers(99), 0u);  // no pin: nothing landed
  EXPECT_THROW(tracker.mark_landed(99, 1), std::logic_error);
}

// --- Engine: fill-barrier edges ---------------------------------------------

TEST(FillBarrierEngine, RiderBeforeFillRefetchesExactlyTheUnlandedBytes) {
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = 2 * full_weight_set(m, cfg);
  // Both requests admitted at cycle 0: the rider attaches before the
  // owner's fill chunk (chunk 0) has retired, so under the barrier its
  // early chunks stream the weights the optimistic model skipped.
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 0, 4, 192)};
  auto config = [&](bool barrier) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(budget)
        .rider_fill_barrier(barrier);
  };
  const auto off = replay_trace(cfg, {m}, config(false), trace);
  const auto on = replay_trace(cfg, {m}, config(true), trace);

  EXPECT_EQ(off.result.rider_refetch_bytes, 0u);
  EXPECT_GT(on.result.rider_refetch_bytes, 0u);
  // Conservation: the barrier only MOVES bytes from "saved" to
  // "fetched" — every re-fetched byte is accounted, none invented.
  EXPECT_EQ(on.result.cc_weight_fetch_bytes,
            off.result.cc_weight_fetch_bytes + on.result.rider_refetch_bytes);
  EXPECT_EQ(off.result.cc_weight_bytes_saved,
            on.result.cc_weight_bytes_saved + on.result.rider_refetch_bytes);
  // The pin topology itself is unchanged: one owner, one rider.
  EXPECT_EQ(on.result.weight_pins, 1u);
  EXPECT_EQ(on.result.weight_shared_attaches, 1u);
}

TEST(FillBarrierEngine, RiderSweepAcrossTheFillBoundaryConservesBytes) {
  // Sweep the rider's arrival across the owner's whole prefill window:
  // wherever the fill-chunk retirement falls, the barrier may only move
  // bytes from saved to fetched (before/at/after the boundary alike),
  // and the replay always drains.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = 2 * full_weight_set(m, cfg);
  const auto probe = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget),
      {req(0, 0, 4, 192)});
  const Cycle prefill_span =
      probe.records[0].prefill_end - probe.records[0].prefill_start;
  for (int i = 0; i <= 4; ++i) {
    const Cycle arrival = prefill_span * static_cast<Cycle>(i) / 4;
    const std::vector<Request> trace = {req(0, 0, 4, 192),
                                        req(1, arrival, 4, 192)};
    auto config = [&](bool barrier) {
      return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .rider_fill_barrier(barrier);
    };
    const auto off = replay_trace(cfg, {m}, config(false), trace);
    const auto on = replay_trace(cfg, {m}, config(true), trace);
    EXPECT_EQ(on.result.completed, 2u);
    EXPECT_EQ(on.result.cc_weight_fetch_bytes,
              off.result.cc_weight_fetch_bytes + on.result.rider_refetch_bytes)
        << "arrival offset " << i << "/4 through the owner's prefill";
    EXPECT_EQ(off.result.cc_weight_bytes_saved,
              on.result.cc_weight_bytes_saved + on.result.rider_refetch_bytes);
  }
}

TEST(FillBarrierEngine, RiderAfterFillLandedRidesBarrierFree) {
  // The rider arrives 2 cycles before the owner's LAST chunk retires:
  // the fill (chunk 0) landed long ago, so barrier-on replays the
  // barrier-off records bit-for-bit and no re-fetch is ledgered.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = 2 * full_weight_set(m, cfg);
  const auto probe = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget),
      {req(0, 0, 4, 192)});
  const Cycle late = probe.records[0].prefill_end - 2;
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, late, 4, 192)};
  auto config = [&](bool barrier) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(budget)
        .rider_fill_barrier(barrier);
  };
  const auto off = replay_trace(cfg, {m}, config(false), trace);
  const auto on = replay_trace(cfg, {m}, config(true), trace);

  EXPECT_EQ(on.result.weight_shared_attaches, 1u);  // it really did ride
  EXPECT_EQ(on.result.rider_refetch_bytes, 0u);
  ASSERT_EQ(on.records.size(), off.records.size());
  for (std::size_t i = 0; i < on.records.size(); ++i) {
    EXPECT_EQ(on.records[i].finish, off.records[i].finish);
    EXPECT_EQ(on.records[i].prefill_end, off.records[i].prefill_end);
  }
  EXPECT_EQ(on.result.cc_weight_fetch_bytes, off.result.cc_weight_fetch_bytes);
}

TEST(FillBarrierEngine, OwnersAndPerRequestPinsAreExempt) {
  // A pin owner's chunks are ordered behind its own fill chunk, and
  // per-request keys never have riders: in both compositions barrier on
  // and off must replay bit-for-bit.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = 2 * full_weight_set(m, cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 0, 4, 144)};
  // Per-request pins: keys are unique, every attach is an owner.
  auto per_request = [&](bool barrier) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(budget)
        .share_weight_pins(false)
        .rider_fill_barrier(barrier);
  };
  const auto pr_off = replay_trace(cfg, {m}, per_request(false), trace);
  const auto pr_on = replay_trace(cfg, {m}, per_request(true), trace);
  EXPECT_EQ(pr_on.result.rider_refetch_bytes, 0u);
  EXPECT_EQ(pr_on.result.cc_weight_fetch_bytes,
            pr_off.result.cc_weight_fetch_bytes);
  for (std::size_t i = 0; i < pr_on.records.size(); ++i) {
    EXPECT_EQ(pr_on.records[i].finish, pr_off.records[i].finish);
  }
  // Single-request shared mode: the owner is the only attach.
  const auto off = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .rider_fill_barrier(false),
      {req(0, 0, 4, 192)});
  const auto on = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .rider_fill_barrier(true),
      {req(0, 0, 4, 192)});
  EXPECT_EQ(on.result.rider_refetch_bytes, 0u);
  EXPECT_EQ(on.records[0].finish, off.records[0].finish);
}

TEST(FillBarrierEngine, FallbackNotStallSurvivesTheBarrier) {
  // Budget for ONE set, two different models at once: model B falls
  // back (never stalls) exactly as without the barrier, and the barrier
  // adds no phantom re-fetch for a request that holds no pin.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig a = tiny_model();
  const model::MllmConfig b = tiny_model("tiny-mllm-b");
  const Bytes budget = full_weight_set(a, cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192, 0),
                                      req(1, 0, 4, 192, 1)};
  const auto outcome = replay_trace(
      cfg, {a, b},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .rider_fill_barrier(true),
      trace);
  EXPECT_EQ(outcome.result.completed, 2u);
  EXPECT_GE(outcome.result.weight_pin_fallbacks, 1u);
  EXPECT_EQ(outcome.result.rider_refetch_bytes, 0u);  // no riders at all
  EXPECT_EQ(outcome.result.peak_pinned_bytes, budget);
}

// --- Engine: placement policies ---------------------------------------------

TEST(PlacementEngine, KeepCurrentIsByteIdenticalToTheDefaultComposition) {
  // Explicit KeepCurrentPlacement + barrier off IS the PR 4 engine: the
  // same multi-rider shared-pin trace replays bit-for-bit against the
  // default-placement config, with every placement counter at zero.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = full_weight_set(m, cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 0, 4, 192),
                                      req(2, 50, 4, 144)};
  const auto expl = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .placement_policy(std::make_shared<KeepCurrentPlacement>())
          .rider_fill_barrier(false),
      trace);
  const auto dflt = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .rider_fill_barrier(false),
      trace);
  ASSERT_EQ(expl.records.size(), dflt.records.size());
  for (std::size_t i = 0; i < expl.records.size(); ++i) {
    EXPECT_EQ(expl.records[i].finish, dflt.records[i].finish);
    EXPECT_EQ(expl.records[i].prefill_end, dflt.records[i].prefill_end);
    EXPECT_EQ(expl.records[i].weight_pinned_layers,
              dflt.records[i].weight_pinned_layers);
  }
  EXPECT_EQ(expl.result.cc_weight_fetch_bytes,
            dflt.result.cc_weight_fetch_bytes);
  EXPECT_EQ(expl.result.weight_warm_attaches, 0u);
  EXPECT_EQ(expl.result.placement_denials, 0u);
  EXPECT_EQ(expl.result.placement_evictions, 0u);
}

TEST(PlacementEngine, KeepWarmConvertsTheSecondFillIntoAFreeRide) {
  // Two same-model requests with a gap between them (the second arrives
  // after the first fully retires). Keep-current pays a second fill;
  // demand-weighted keeps the idle pin warm and the second request
  // rides EVERY chunk — exactly one extra chunk's layer-group set saved.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes set = full_weight_set(m, cfg);
  const auto probe = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(2 * set),
      {req(0, 0, 4, 192)});
  const Cycle after = probe.records[0].finish + 1000;
  const std::vector<Request> trace = {req(0, 0, 4, 192),
                                      req(1, after, 4, 192)};
  auto config = [&](std::shared_ptr<const PlacementPolicy> placement) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(2 * set)
        .placement_policy(std::move(placement));
  };
  const auto keep = replay_trace(
      cfg, {m}, config(std::make_shared<KeepCurrentPlacement>()), trace);
  const auto warm = replay_trace(
      cfg, {m}, config(std::make_shared<DemandWeightedPlacement>()), trace);

  EXPECT_EQ(keep.result.weight_pins, 2u);
  EXPECT_EQ(keep.result.weight_warm_attaches, 0u);
  EXPECT_EQ(warm.result.weight_pins, 1u);
  EXPECT_EQ(warm.result.weight_warm_attaches, 1u);
  // Warm ride: request 1 skips the fill chunk's weight DMA too (4 chunks
  // ride instead of 3) — one extra full layer-group set saved, and the
  // warm pin is filled so the barrier (on by default) never re-fetches.
  EXPECT_EQ(warm.result.cc_weight_bytes_saved,
            keep.result.cc_weight_bytes_saved + set);
  EXPECT_EQ(warm.result.rider_refetch_bytes, 0u);
  EXPECT_EQ(warm.records[1].weight_pinned_layers, m.llm.layers);
}

TEST(PlacementEngine, DemandWeightedDeniesTheColdOverBudgetModel) {
  // Budget = one set; the hot model has standing demand when the cold
  // model asks, so demand-weighted denies the cold acquisition (it
  // would evict nothing — the hot pin is live) and the cold request
  // honestly re-fetches every chunk.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig hot = tiny_model("tiny-hot");
  const model::MllmConfig cold = tiny_model("tiny-cold");
  const Bytes budget = full_weight_set(hot, cfg);
  const std::vector<Request> trace = {req(0, 0, 8, 192, 0),
                                      req(1, 10, 8, 192, 1),
                                      req(2, 20, 8, 192, 0)};
  const auto outcome = replay_trace(
      cfg, {hot, cold},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .placement_policy(std::make_shared<DemandWeightedPlacement>()),
      trace);
  EXPECT_EQ(outcome.result.completed, 3u);
  EXPECT_GT(outcome.result.placement_denials, 0u);
  EXPECT_EQ(outcome.records[1].weight_pinned_layers, 0u);
  EXPECT_EQ(outcome.records[0].weight_pinned_layers, hot.llm.layers);
}

TEST(PlacementEngine, EvictIdleReclaimsAWarmPinUnderPressure) {
  // Model A's pin is kept warm past its retirement; model B's later
  // acquisition needs the room, evicts it (a placement eviction, not a
  // refcount release) and pins. Keep-current on the same trace evicts
  // A at retirement and records no placement activity.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig a = tiny_model();
  const model::MllmConfig b = tiny_model("tiny-mllm-b");
  const Bytes budget = full_weight_set(a, cfg);
  const auto probe = replay_trace(
      cfg, {a, b},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget),
      {req(0, 0, 4, 192, 0)});
  const Cycle after = probe.records[0].finish + 1000;
  const std::vector<Request> trace = {req(0, 0, 4, 192, 0),
                                      req(1, after, 4, 192, 1)};
  const auto evict = replay_trace(
      cfg, {a, b},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .placement_policy(std::make_shared<EvictIdleOnPressure>()),
      trace);
  const auto keep = replay_trace(
      cfg, {a, b},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget),
      trace);

  EXPECT_EQ(evict.result.placement_evictions, 1u);
  EXPECT_EQ(evict.records[1].weight_pinned_layers, b.llm.layers);
  EXPECT_EQ(keep.result.placement_evictions, 0u);
  EXPECT_EQ(keep.records[1].weight_pinned_layers, b.llm.layers);
  // Either way the replay drains: no idle pin survives the flush.
  EXPECT_EQ(evict.result.completed, 2u);
}

TEST(FillBarrierEngine, PerGroupLandingIsBoundedByPinGranularAndConserves) {
  // Per-group landing caps a rider's re-fetch at the groups whose fill
  // has not landed yet, so it can never re-fetch MORE than pin-granular
  // all-or-nothing. On the serial-FIFO CC lane the two coincide: the
  // owner's fill is enqueued when the pin is created — before any rider
  // can attach — so it retires (marking the pin filled) before any
  // rider re-fetch can retire and land groups early. Per-group landing
  // is therefore a tightening that only bites under schedulers that can
  // retire a rider's re-fetch inside the fill window; here we pin down
  // the bound, the conservation ledger, and outcome invariance across
  // same-arrival and staggered shapes.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = 2 * full_weight_set(m, cfg);
  auto config = [&](bool barrier, bool per_group) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(budget)
        .rider_fill_barrier(barrier)
        .per_group_fill_landing(per_group);
  };
  for (const Cycle stagger : {Cycle{0}, Cycle{20000}, Cycle{200000}}) {
    const std::vector<Request> trace = {req(0, 0, 4, 192),
                                        req(1, stagger, 4, 192),
                                        req(2, 2 * stagger, 4, 192)};
    const auto off = replay_trace(cfg, {m}, config(false, false), trace);
    const auto pin_granular =
        replay_trace(cfg, {m}, config(true, false), trace);
    const auto per_group = replay_trace(cfg, {m}, config(true, true), trace);

    EXPECT_LE(per_group.result.rider_refetch_bytes,
              pin_granular.result.rider_refetch_bytes)
        << "stagger " << stagger;
    // Conservation holds in both accounting modes: the barrier only
    // moves bytes from "saved" to "fetched" against the barrier-off
    // optimum.
    for (const auto* r : {&pin_granular.result, &per_group.result}) {
      EXPECT_EQ(r->cc_weight_fetch_bytes,
                off.result.cc_weight_fetch_bytes + r->rider_refetch_bytes)
          << "stagger " << stagger;
      EXPECT_EQ(off.result.cc_weight_bytes_saved,
                r->cc_weight_bytes_saved + r->rider_refetch_bytes)
          << "stagger " << stagger;
    }
    // Landing granularity changes WHEN bytes may move, never the pin
    // topology or the outcome.
    EXPECT_EQ(per_group.result.weight_pins, pin_granular.result.weight_pins);
    EXPECT_EQ(per_group.result.completed, pin_granular.result.completed);
    if (stagger == 0) {
      // Same-arrival riders genuinely hit the barrier.
      EXPECT_GT(per_group.result.rider_refetch_bytes, 0u);
    }
  }
}

TEST(PlacementEngine, FractionalPlacementPinsThePartialSetInsteadOfDenying) {
  // Budget = ONE layer group of a 2-layer model: the whole-set policy
  // denies the pin outright; fractional placement pins the one group
  // that fits and still saves its re-fetches.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes one_group = llm_layer_group_bytes(m, cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192)};
  auto config = [&](DemandWeightedOptions options) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(one_group)
        .placement_policy(
            std::make_shared<DemandWeightedPlacement>(options));
  };
  const auto whole = replay_trace(cfg, {m}, config({}), trace);
  EXPECT_EQ(whole.result.weight_pins, 0u);
  EXPECT_GE(whole.result.placement_denials, 1u);
  EXPECT_EQ(whole.result.cc_weight_bytes_saved, 0u);

  const auto fractional = replay_trace(
      cfg, {m}, config({.fractional_sets = true}), trace);
  EXPECT_EQ(fractional.result.weight_pins, 1u);
  EXPECT_EQ(fractional.result.placement_denials, 0u);
  EXPECT_GT(fractional.result.cc_weight_bytes_saved, 0u);
  ASSERT_EQ(fractional.records.size(), 1u);
  EXPECT_EQ(fractional.records[0].weight_pinned_layers, 1u);
  EXPECT_EQ(fractional.result.completed, 1u);
}

TEST(PlacementEngine, DecayedDemandOptionsReplayTheTraceToCompletion) {
  // Smoke the full decayed-demand composition end to end: EWMA refresh
  // at every seam, fractional grants, barrier on.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig a = tiny_model("model-a");
  const model::MllmConfig b = tiny_model("model-b");
  EngineConfig config =
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(full_weight_set(a, cfg) +
                                  llm_layer_group_bytes(b, cfg))
          .placement_policy(std::make_shared<DemandWeightedPlacement>(
              DemandWeightedOptions{.fractional_sets = true,
                                    .decayed_demand = true}))
          .rider_fill_barrier(true)
          .demand_decay_tau_s(0.5);
  const auto out = replay_trace(
      cfg, {a, b}, config,
      {req(0, 0, 4, 192, 0), req(1, 0, 4, 192, 1), req(2, 400000, 4, 192, 0),
       req(3, 800000, 4, 144, 1)});
  EXPECT_EQ(out.result.completed, 4u);
  EXPECT_GT(out.result.weight_pins, 0u);
}

TEST(PlacementEngine, RetainedPinsAreFlushedBeforeTheDrainAssert) {
  // An evict-idle replay ends with pins retained warm; run() flushes
  // them after the trace drains, so the tracker reports no holders and
  // no bytes, and the flush is NOT counted as a placement eviction.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  EngineConfig config =
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(2 * full_weight_set(m, cfg))
          .placement_policy(std::make_shared<EvictIdleOnPressure>());
  ServingEngine engine(cfg, {m}, std::move(config));
  const auto result = engine.run({req(0, 0, 4, 192), req(1, 0, 4, 144)});
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.placement_evictions, 0u);
  ASSERT_NE(engine.residency_tracker(), nullptr);
  EXPECT_EQ(engine.residency_tracker()->holders(), 0u);
  EXPECT_EQ(engine.residency_tracker()->pinned(), 0u);
  EXPECT_EQ(engine.residency_tracker()->idle_pins(), 0u);
}

}  // namespace
}  // namespace edgemm::serve
