#include "serve/policy.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

Request req(std::size_t input_tokens) {
  Request r;
  r.input_tokens = input_tokens;
  return r;
}

RequestRecord rec(std::size_t output_tokens, std::size_t generated = 0) {
  Request r;
  r.output_tokens = output_tokens;
  RequestRecord record{r};
  record.tokens_generated = generated;
  return record;
}

TEST(MonolithicPrefill, OneChunkCoveringTheWholePrompt) {
  const MonolithicPrefill planner;
  EXPECT_EQ(planner.plan(req(300)), std::vector<std::size_t>{300});
  EXPECT_EQ(planner.plan(req(1)), std::vector<std::size_t>{1});
}

TEST(ChunkedPrefill, ValidatesChunkSize) {
  EXPECT_THROW(ChunkedPrefill(0), std::invalid_argument);
}

TEST(ChunkedPrefill, EqualChunksWithRemainderLast) {
  const ChunkedPrefill planner(128);
  EXPECT_EQ(planner.plan(req(300)),
            (std::vector<std::size_t>{128, 128, 44}));
  EXPECT_EQ(planner.plan(req(256)), (std::vector<std::size_t>{128, 128}));
  EXPECT_EQ(planner.plan(req(100)), std::vector<std::size_t>{100});
}

TEST(ChunkedPrefill, ChunkTokensAlwaysSumToPrompt) {
  for (const std::size_t chunk : {1u, 7u, 64u, 1000u}) {
    const ChunkedPrefill planner(chunk);
    for (const std::size_t input : {1u, 13u, 128u, 301u}) {
      const auto plan = planner.plan(req(input));
      std::size_t sum = 0;
      for (const std::size_t tokens : plan) {
        EXPECT_GT(tokens, 0u);
        EXPECT_LE(tokens, chunk);
        sum += tokens;
      }
      EXPECT_EQ(sum, input);
    }
  }
}

TEST(FifoBatch, PreservesPrefillCompletionOrder) {
  const std::vector<RequestRecord> records = {rec(8), rec(2), rec(5)};
  std::vector<std::size_t> ready = {0, 1, 2};
  FifoBatch().order_joiners(ready, records);
  EXPECT_EQ(ready, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ShortestRemainingFirst, OrdersByRemainingTokens) {
  const std::vector<RequestRecord> records = {rec(8), rec(2), rec(5)};
  std::vector<std::size_t> ready = {0, 1, 2};
  ShortestRemainingFirst().order_joiners(ready, records);
  EXPECT_EQ(ready, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ShortestRemainingFirst, CountsGeneratedTokensAndKeepsTiesFifo) {
  // Record 0 has 8 to go but 6 already generated (2 remaining) — ties
  // with record 1 and stays ahead of it (stable order).
  const std::vector<RequestRecord> records = {rec(8, 6), rec(2), rec(5, 4)};
  std::vector<std::size_t> ready = {0, 1, 2};
  ShortestRemainingFirst().order_joiners(ready, records);
  EXPECT_EQ(ready, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(AdmissionVerdictNames, AreStable) {
  EXPECT_STREQ(to_string(AdmissionVerdict::kAdmit), "admit");
  EXPECT_STREQ(to_string(AdmissionVerdict::kDefer), "defer");
  EXPECT_STREQ(to_string(AdmissionVerdict::kReject), "reject");
}

}  // namespace
}  // namespace edgemm::serve
