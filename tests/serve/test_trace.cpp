#include "serve/trace.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

TEST(PoissonTrace, IsDeterministicForASeed) {
  TraceConfig cfg;
  cfg.requests = 64;
  cfg.seed = 7;
  const auto a = poisson_trace(cfg);
  const auto b = poisson_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
  cfg.seed = 8;
  const auto c = poisson_trace(cfg);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different |= a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(any_different);
}

TEST(PoissonTrace, ArrivalsAreMonotonicWithSequentialIds) {
  TraceConfig cfg;
  cfg.requests = 128;
  const auto trace = poisson_trace(cfg);
  ASSERT_EQ(trace.size(), cfg.requests);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) {
      EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    }
    EXPECT_GE(trace[i].output_tokens, cfg.min_output_tokens);
    EXPECT_LE(trace[i].output_tokens, cfg.max_output_tokens);
    EXPECT_EQ(trace[i].input_tokens, cfg.input_tokens);
  }
}

TEST(PoissonTrace, MeanInterArrivalTracksTheRate) {
  TraceConfig cfg;
  cfg.requests = 4000;
  cfg.arrival_rate_per_s = 100.0;
  const auto trace = poisson_trace(cfg);
  const double span_s = static_cast<double>(trace.back().arrival) / cfg.clock_hz;
  const double mean_gap_s = span_s / static_cast<double>(cfg.requests);
  // Loose 3-sigma-ish bounds around 1/lambda = 10 ms.
  EXPECT_GT(mean_gap_s, 0.009);
  EXPECT_LT(mean_gap_s, 0.011);
}

TEST(PoissonTrace, ValidatesConfig) {
  TraceConfig cfg;
  cfg.requests = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.arrival_rate_per_s = 0.0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.min_output_tokens = 64;
  cfg.max_output_tokens = 32;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.min_output_tokens = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.input_tokens = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.crops = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::serve
