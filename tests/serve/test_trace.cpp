#include "serve/trace.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

TEST(PoissonTrace, IsDeterministicForASeed) {
  TraceConfig cfg;
  cfg.requests = 64;
  cfg.seed = 7;
  const auto a = poisson_trace(cfg);
  const auto b = poisson_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
  cfg.seed = 8;
  const auto c = poisson_trace(cfg);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different |= a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(any_different);
}

TEST(PoissonTrace, ArrivalsAreMonotonicWithSequentialIds) {
  TraceConfig cfg;
  cfg.requests = 128;
  const auto trace = poisson_trace(cfg);
  ASSERT_EQ(trace.size(), cfg.requests);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) {
      EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    }
    EXPECT_GE(trace[i].output_tokens, cfg.min_output_tokens);
    EXPECT_LE(trace[i].output_tokens, cfg.max_output_tokens);
    EXPECT_EQ(trace[i].input_tokens, cfg.input_tokens);
  }
}

TEST(PoissonTrace, MeanInterArrivalTracksTheRate) {
  TraceConfig cfg;
  cfg.requests = 4000;
  cfg.arrival_rate_per_s = 100.0;
  const auto trace = poisson_trace(cfg);
  const double span_s = static_cast<double>(trace.back().arrival) / cfg.clock_hz;
  const double mean_gap_s = span_s / static_cast<double>(cfg.requests);
  // Loose 3-sigma-ish bounds around 1/lambda = 10 ms.
  EXPECT_GT(mean_gap_s, 0.009);
  EXPECT_LT(mean_gap_s, 0.011);
}

TEST(PoissonTrace, ValidatesConfig) {
  TraceConfig cfg;
  cfg.requests = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.arrival_rate_per_s = 0.0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.min_output_tokens = 64;
  cfg.max_output_tokens = 32;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.min_output_tokens = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.input_tokens = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.crops = 0;
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.model_weights = {1.0, -0.5};
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.model_weights = {0.0, 0.0};
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
}

TEST(PoissonTrace, EmptyModelWeightsReplayPreZooTracesByteIdentically) {
  // The zoo draw sits between the arrival and output draws, so an empty
  // weight vector consumes no randomness: traces generated before the
  // knob existed reproduce exactly.
  TraceConfig cfg;
  cfg.requests = 64;
  cfg.model = 2;
  const auto plain = poisson_trace(cfg);
  TraceConfig with_field = cfg;
  with_field.model_weights = {};
  const auto again = poisson_trace(with_field);
  ASSERT_EQ(plain.size(), again.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].arrival, again[i].arrival);
    EXPECT_EQ(plain[i].output_tokens, again[i].output_tokens);
    EXPECT_EQ(plain[i].model, 2u);
  }
}

TEST(PoissonTrace, ModelWeightsDrawTheZooMixDeterministically) {
  TraceConfig cfg;
  cfg.requests = 600;
  cfg.model_weights = {3.0, 0.0, 1.0};
  const auto a = poisson_trace(cfg);
  const auto b = poisson_trace(cfg);
  std::size_t counts[3] = {0, 0, 0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model);  // same seed, same zoo
    ASSERT_LT(a[i].model, 3u);
    ++counts[a[i].model];
  }
  // A zero weight never draws; the 3:1 mix lands loosely around 3:1.
  EXPECT_EQ(counts[1], 0u);
  EXPECT_GT(counts[0], 2 * counts[2]);
  EXPECT_GT(counts[2], 0u);
}

TEST(PoissonTrace, ValidatesPrefixGroupConfig) {
  TraceConfig cfg;
  cfg.prefix_groups = 2;
  cfg.prefix_tokens = 0;  // a group without a prefix length is malformed
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.input_tokens = 32;
  cfg.prefix_groups = 2;
  cfg.prefix_tokens = 33;  // prefix longer than the prompt
  EXPECT_THROW(poisson_trace(cfg), std::invalid_argument);
  cfg.prefix_tokens = 32;  // whole-prompt prefix is legal
  EXPECT_NO_THROW(poisson_trace(cfg));
}

TEST(PoissonTrace, ZeroPrefixGroupsConsumeNoRandomness) {
  // The prefix draw sits between the model and output draws; with the
  // knob off, arrivals AND outputs reproduce pre-prefix traces exactly.
  TraceConfig cfg;
  cfg.requests = 64;
  const auto plain = poisson_trace(cfg);
  TraceConfig with_field = cfg;
  with_field.prefix_groups = 0;
  with_field.prefix_tokens = 0;
  const auto again = poisson_trace(with_field);
  ASSERT_EQ(plain.size(), again.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].arrival, again[i].arrival);
    EXPECT_EQ(plain[i].output_tokens, again[i].output_tokens);
    EXPECT_EQ(plain[i].prefix_id, 0u);
    EXPECT_EQ(plain[i].prefix_tokens, 0u);
  }
}

TEST(PoissonTrace, PrefixDrawSitsBetweenModelAndOutputDraws) {
  // The draw order is arrival -> model -> prefix -> output over ONE RNG
  // stream: the first arrival (drawn before any prefix draw) must not
  // move when the knob turns on, and every drawn group is in range.
  TraceConfig cfg;
  cfg.requests = 64;
  const auto without = poisson_trace(cfg);
  TraceConfig with_prefix = cfg;
  with_prefix.prefix_groups = 4;
  with_prefix.prefix_tokens = 16;
  const auto with = poisson_trace(with_prefix);
  ASSERT_EQ(without.size(), with.size());
  EXPECT_EQ(without[0].arrival, with[0].arrival);
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_GE(with[i].prefix_id, 1u);
    EXPECT_LE(with[i].prefix_id, 4u);
    EXPECT_EQ(with[i].prefix_tokens, 16u);
  }
  // Deterministic per seed, and with 64 draws over 4 groups at least two
  // distinct groups appear (the draw is not a constant).
  const auto replay = poisson_trace(with_prefix);
  bool multiple_groups = false;
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].prefix_id, replay[i].prefix_id);
    if (with[i].prefix_id != with[0].prefix_id) multiple_groups = true;
  }
  EXPECT_TRUE(multiple_groups);
}

}  // namespace
}  // namespace edgemm::serve
