#include "serve/admission.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

TEST(AdmissionPolicy, ValidatesLimits) {
  EXPECT_THROW(AdmissionPolicy(AdmissionLimits{0, 4}), std::invalid_argument);
  EXPECT_THROW(AdmissionPolicy(AdmissionLimits{4, 0}), std::invalid_argument);
  // The batch could never fill if fewer requests may be in flight.
  EXPECT_THROW(AdmissionPolicy(AdmissionLimits{8, 4}), std::invalid_argument);
  EXPECT_NO_THROW(AdmissionPolicy(AdmissionLimits{4, 4}));
}

TEST(AdmissionPolicy, AdmitsUpToMaxInflight) {
  const AdmissionPolicy policy(AdmissionLimits{2, 3});
  EXPECT_TRUE(policy.admit(0));
  EXPECT_TRUE(policy.admit(2));
  EXPECT_FALSE(policy.admit(3));
  EXPECT_FALSE(policy.admit(4));
}

TEST(AdmissionPolicy, DecodeJoinFillsRemainingBatchSlots) {
  const AdmissionPolicy policy(AdmissionLimits{4, 8});
  EXPECT_EQ(policy.decode_join_count(0, 10), 4u);
  EXPECT_EQ(policy.decode_join_count(1, 2), 2u);
  EXPECT_EQ(policy.decode_join_count(3, 5), 1u);
  EXPECT_EQ(policy.decode_join_count(4, 5), 0u);  // batch already full
  EXPECT_EQ(policy.decode_join_count(2, 0), 0u);  // nothing ready
}

}  // namespace
}  // namespace edgemm::serve
