#include "serve/admission.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

AdmissionContext ctx_with(std::size_t inflight, Cycle now = 0,
                          Cycle queue_delay = 0, Cycle service = 0) {
  AdmissionContext ctx;
  ctx.now = now;
  ctx.inflight = inflight;
  ctx.estimated_queue_delay = queue_delay;
  ctx.estimated_service = service;
  return ctx;
}

Request request_with_deadline(Cycle deadline) {
  Request r;
  r.id = 1;
  r.deadline = deadline;
  return r;
}

TEST(ConcurrencyPolicy, ValidatesLimits) {
  EXPECT_THROW(ConcurrencyPolicy(AdmissionLimits{0, 4}), std::invalid_argument);
  EXPECT_THROW(ConcurrencyPolicy(AdmissionLimits{4, 0}), std::invalid_argument);
  // The batch could never fill if fewer requests may be in flight.
  EXPECT_THROW(ConcurrencyPolicy(AdmissionLimits{8, 4}), std::invalid_argument);
  EXPECT_NO_THROW(ConcurrencyPolicy(AdmissionLimits{4, 4}));
}

TEST(ConcurrencyPolicy, AdmitsUpToMaxInflightThenDefers) {
  const ConcurrencyPolicy policy(AdmissionLimits{2, 3});
  const Request r;
  EXPECT_EQ(policy.admit(r, ctx_with(0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(policy.admit(r, ctx_with(2)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(policy.admit(r, ctx_with(3)), AdmissionVerdict::kDefer);
  EXPECT_EQ(policy.admit(r, ctx_with(4)), AdmissionVerdict::kDefer);
}

TEST(ConcurrencyPolicy, DecodeJoinFillsRemainingBatchSlots) {
  const ConcurrencyPolicy policy(AdmissionLimits{4, 8});
  EXPECT_EQ(policy.decode_join_count(0, 10), 4u);
  EXPECT_EQ(policy.decode_join_count(1, 2), 2u);
  EXPECT_EQ(policy.decode_join_count(3, 5), 1u);
  EXPECT_EQ(policy.decode_join_count(4, 5), 0u);  // batch already full
  EXPECT_EQ(policy.decode_join_count(2, 0), 0u);  // nothing ready
}

TEST(SloAwarePolicy, ValidatesSlack) {
  EXPECT_THROW(SloAwarePolicy(AdmissionLimits{2, 4}, {.slack = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(SloAwarePolicy(AdmissionLimits{2, 4}, {.slack = -1.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(SloAwarePolicy(AdmissionLimits{2, 4}));
}

TEST(SloAwarePolicy, PassesThroughWithoutDeadline) {
  const SloAwarePolicy policy(AdmissionLimits{2, 3});
  const Request r;  // deadline == 0
  EXPECT_EQ(policy.admit(r, ctx_with(0, 0, 1'000'000, 1'000'000)),
            AdmissionVerdict::kAdmit);
  EXPECT_EQ(policy.admit(r, ctx_with(3)), AdmissionVerdict::kDefer);
}

TEST(SloAwarePolicy, RejectsInfeasibleDeadline) {
  const SloAwarePolicy policy(AdmissionLimits{2, 3});
  // now + queue_delay + service = 100 + 400 + 600 = 1100 > 1000.
  EXPECT_EQ(policy.admit(request_with_deadline(1000), ctx_with(0, 100, 400, 600)),
            AdmissionVerdict::kReject);
  // Exactly feasible (1100 <= 1100) admits.
  EXPECT_EQ(policy.admit(request_with_deadline(1100), ctx_with(0, 100, 400, 600)),
            AdmissionVerdict::kAdmit);
  // Feasible but at the inflight cap defers rather than rejects.
  EXPECT_EQ(policy.admit(request_with_deadline(5000), ctx_with(3, 100, 400, 600)),
            AdmissionVerdict::kDefer);
}

TEST(SloAwarePolicy, SlackScalesTheEstimate) {
  const SloAwarePolicy tight(AdmissionLimits{2, 3}, {.slack = 2.0});
  const SloAwarePolicy loose(AdmissionLimits{2, 3}, {.slack = 0.5});
  const Request r = request_with_deadline(1000);
  const AdmissionContext ctx = ctx_with(0, 0, 400, 400);
  // 2.0 * 800 = 1600 > 1000 rejects; 0.5 * 800 = 400 <= 1000 admits.
  EXPECT_EQ(tight.admit(r, ctx), AdmissionVerdict::kReject);
  EXPECT_EQ(loose.admit(r, ctx), AdmissionVerdict::kAdmit);
}

}  // namespace
}  // namespace edgemm::serve
