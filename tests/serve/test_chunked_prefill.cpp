// Chunked-prefill seam: equivalence with monolithic prefill and the
// head-of-line-blocking bound it buys on the CC lane.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serving_engine.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;  // 2 CC + 2 MC clusters: fast simulation
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

Request req(RequestId id, Cycle arrival, std::size_t output_tokens,
            std::size_t input_tokens = 128) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  return r;
}

EngineConfig fast_config(std::shared_ptr<const PrefillPlanner> planner) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .prefill_planner(std::move(planner))
      .manage_bandwidth(false);
}

TEST(ChunkedPrefillEngine, ChunkCountAndTokenSumMatchThePlan) {
  const auto outcome =
      replay_trace(small_cfg(), {tiny_model()},
                   fast_config(std::make_shared<ChunkedPrefill>(48)),
                   {req(0, 0, 4, 128), req(1, 0, 4, 100)});
  // 128 = 48 + 48 + 32 -> 3 chunks; 100 = 48 + 48 + 4 -> 3 chunks.
  EXPECT_EQ(outcome.records[0].prefill_chunks, 3u);
  EXPECT_EQ(outcome.records[1].prefill_chunks, 3u);
  EXPECT_EQ(outcome.result.prefill_jobs, 6u);
}

TEST(ChunkedPrefillEngine, EquivalentDecodeOutputToMonolithic) {
  const std::vector<Request> trace = {req(0, 0, 6, 128), req(1, 2000, 5, 96)};
  const auto mono = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<MonolithicPrefill>()), trace);
  const auto chunked = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<ChunkedPrefill>(32)), trace);

  // Chunking changes WHEN prefill work runs, never WHAT is decoded: the
  // same requests complete with bit-identical token counts and decode
  // step totals.
  ASSERT_EQ(mono.records.size(), chunked.records.size());
  for (std::size_t i = 0; i < mono.records.size(); ++i) {
    EXPECT_TRUE(chunked.records[i].done);
    EXPECT_EQ(chunked.records[i].tokens_generated,
              mono.records[i].tokens_generated);
  }
  EXPECT_EQ(chunked.result.completed, mono.result.completed);
  // The monolithic run is exactly one CC job per request.
  EXPECT_EQ(mono.result.prefill_jobs, trace.size());
  EXPECT_GT(chunked.result.prefill_jobs, trace.size());
}

TEST(ChunkedPrefillEngine, BoundsCcLaneHeadOfLineBlocking) {
  // A short request lands right after a long-prompt request was
  // admitted: monolithically it waits out the whole long prefill,
  // chunked it slips in after the current chunk.
  const std::vector<Request> trace = {req(0, 0, 4, 512), req(1, 100, 4, 16)};
  const auto mono = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<MonolithicPrefill>()), trace);
  const auto chunked = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<ChunkedPrefill>(64)), trace);

  EXPECT_LT(chunked.result.max_cc_queue_delay_ms,
            mono.result.max_cc_queue_delay_ms);
  // The short request's prefill dispatches strictly earlier when the
  // long prefill is chunked.
  EXPECT_LT(chunked.records[1].prefill_start, mono.records[1].prefill_start);
}

TEST(ChunkedPrefillEngine, InvalidPlannerPlanIsRejected) {
  // A planner that drops tokens violates the plan contract.
  class DropsTokens final : public PrefillPlanner {
   public:
    const char* name() const override { return "broken"; }
    std::vector<std::size_t> plan(const Request& r) const override {
      return {r.input_tokens / 2};
    }
  };
  ServingEngine engine(small_cfg(), {tiny_model()},
                       fast_config(std::make_shared<DropsTokens>()));
  EXPECT_THROW(engine.run({req(0, 0, 2, 64)}), std::logic_error);
}

}  // namespace
}  // namespace edgemm::serve
