// Shared refcounted model-level weight pins: one pin per model charged
// once against the residency budget, refcounted across that model's
// in-flight requests — the PR 4 fix for PR 3's per-request duplicate
// pinning. Covers the tracker's attach/detach ledger semantics, the
// engine-level sharing seam (budget charged once, riders skip weight
// DMA on every chunk, release on the LAST detach only), the
// different-model fallback edge, the capacity-0 and
// single-request-per-model determinism anchors, and the drained-engine
// pin-leak regression.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "serve/residency_tracker.hpp"
#include "serve/serving_engine.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;  // 2 CC + 2 MC clusters: fast simulation
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

Request req(RequestId id, Cycle arrival, std::size_t output_tokens,
            std::size_t input_tokens = 128, std::size_t model = 0) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.model = model;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  return r;
}

EngineConfig fast_config(std::shared_ptr<const PrefillPlanner> planner) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .prefill_planner(std::move(planner))
      .manage_bandwidth(false);
}

Bytes full_weight_set(const model::MllmConfig& m, const core::ChipConfig& cfg) {
  return llm_layer_group_bytes(m, cfg) * m.llm.layers;
}

// --- Tracker: refcounted attach/detach ledger -------------------------------

TEST(SharedPinTracker, AttachChargesOnceAndRefcounts) {
  WeightResidencyTracker tracker(1000);
  const auto first = tracker.attach_layers(7, 300, 3);
  EXPECT_EQ(first.layers, 3u);
  EXPECT_FALSE(first.shared);
  EXPECT_EQ(tracker.pinned(), 900u);
  EXPECT_EQ(tracker.pins(), 1u);
  EXPECT_EQ(tracker.refcount(7), 1u);
  EXPECT_EQ(tracker.resident_layers(7), 3u);

  // Second attach under the same key: free ride, no bytes charged.
  const auto second = tracker.attach_layers(7, 300, 3);
  EXPECT_EQ(second.layers, 3u);
  EXPECT_TRUE(second.shared);
  EXPECT_EQ(tracker.pinned(), 900u);  // unchanged
  EXPECT_EQ(tracker.pins(), 1u);      // still one budget charge
  EXPECT_EQ(tracker.shared_attaches(), 1u);
  EXPECT_EQ(tracker.refcount(7), 2u);

  // Bytes are held until the LAST detach.
  tracker.detach(7);
  EXPECT_EQ(tracker.pinned(), 900u);
  EXPECT_EQ(tracker.refcount(7), 1u);
  tracker.detach(7);
  EXPECT_EQ(tracker.pinned(), 0u);
  EXPECT_EQ(tracker.refcount(7), 0u);
  EXPECT_EQ(tracker.resident_layers(7), 0u);
  EXPECT_THROW(tracker.detach(7), std::logic_error);
}

TEST(SharedPinTracker, FailedAttachHoldsNothingAndCountsOneFallback) {
  WeightResidencyTracker tracker(1000);
  ASSERT_EQ(tracker.attach_layers(1, 1000, 1).layers, 1u);
  // A different key cannot fit a single group: fallback, no refcount
  // entry, detach on it is a logic error.
  const auto losing = tracker.attach_layers(2, 1000, 1);
  EXPECT_EQ(losing.layers, 0u);
  EXPECT_FALSE(losing.shared);
  EXPECT_EQ(tracker.fallbacks(), 1u);
  EXPECT_EQ(tracker.refcount(2), 0u);
  EXPECT_THROW(tracker.detach(2), std::logic_error);
  // The loser may still ride key 1's pin once it shares the key (a
  // same-model request would).
  EXPECT_TRUE(tracker.attach_layers(1, 1000, 1).shared);
  EXPECT_EQ(tracker.shared_attaches(), 1u);
}

TEST(SharedPinTracker, RiderInheritsPartialPinAndPeakTracksSharedBytes) {
  WeightResidencyTracker tracker(1000);
  // Only 3 of 8 requested groups fit; a rider inherits exactly those 3.
  EXPECT_EQ(tracker.attach_layers(5, 300, 8).layers, 3u);
  const auto rider = tracker.attach_layers(5, 300, 8);
  EXPECT_TRUE(rider.shared);
  EXPECT_EQ(rider.layers, 3u);
  // Shared attaches never move the high-water mark: bytes exist once.
  EXPECT_EQ(tracker.peak_pinned(), 900u);
  EXPECT_EQ(tracker.attach_layers(5, 300, 8).layers, 3u);  // third rider
  EXPECT_EQ(tracker.peak_pinned(), 900u);
  EXPECT_EQ(tracker.refcount(5), 3u);
  EXPECT_THROW(tracker.attach_layers(5, 0, 8), std::invalid_argument);
  EXPECT_THROW(tracker.attach_layers(5, 300, 0), std::invalid_argument);
}

// --- Engine: one pin per model across in-flight requests --------------------

TEST(SharedPinEngine, SameModelRequestsChargeBudgetOnce) {
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes set = full_weight_set(m, cfg);
  // Room for TWO full layer-group sets — but sharing must charge one.
  const Bytes budget = 2 * set;
  // 192 = 4 x 48: both requests chunk into 4; request 1 is admitted while
  // request 0 is mid-prefill, so it attaches to the existing pin.
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 100, 4, 192)};
  const auto chunked = replay_trace(
      cfg, {m}, fast_config(std::make_shared<ChunkedPrefill>(48)), trace);
  // Fill barrier off: this test locks the PR 4 fill-timing-OPTIMISTIC
  // accounting (the rider saves on every chunk from the instant it
  // attaches); test_placement.cpp covers the barrier-on honest variant.
  const auto shared = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)  // share_weight_pins defaults on
          .rider_fill_barrier(false),
      trace);

  EXPECT_EQ(shared.result.completed, 2u);
  EXPECT_EQ(shared.result.weight_pins, 1u);  // one budget charge...
  EXPECT_EQ(shared.result.weight_shared_attaches, 1u);  // ...one free ride
  EXPECT_EQ(shared.result.weight_pin_fallbacks, 0u);
  // Budget had room for two sets; the shared pin never charged twice.
  EXPECT_EQ(shared.result.peak_pinned_bytes, set);
  for (const RequestRecord& rec : shared.records) {
    EXPECT_EQ(rec.weight_pinned_layers, m.llm.layers);
    ASSERT_EQ(rec.prefill_chunks, 4u);
  }
  // Exact saved-bytes accounting: the owner fetches chunk 0 and rides
  // chunks 1..3 (3 sets); the rider attaches to weights already on chip
  // and rides ALL 4 chunks (4 sets) — including the chunks it runs after
  // the owner's prefill retired, which proves the refcount held the
  // bytes until the last detach.
  EXPECT_EQ(shared.result.cc_weight_bytes_saved, 7u * set);
  EXPECT_EQ(chunked.result.cc_weight_fetch_bytes -
                shared.result.cc_weight_fetch_bytes,
            shared.result.cc_weight_bytes_saved);
}

TEST(SharedPinEngine, SharingBeatsPerRequestPinsOnSameTrace) {
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  // Budget for ONE set, three overlapping same-model requests: per
  // request, two of them keep falling back; shared, they all ride.
  const Bytes budget = full_weight_set(m, cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 0, 4, 192),
                                      req(2, 50, 4, 144)};
  const auto per_request = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .share_weight_pins(false),
      trace);
  const auto shared = replay_trace(
      cfg, {m},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .share_weight_pins(true),
      trace);

  EXPECT_EQ(shared.result.completed, 3u);
  EXPECT_LT(shared.result.cc_weight_fetch_bytes,
            per_request.result.cc_weight_fetch_bytes);
  EXPECT_LT(shared.result.weight_pin_fallbacks,
            per_request.result.weight_pin_fallbacks);
  EXPECT_GT(shared.result.weight_shared_attaches, 0u);
  EXPECT_EQ(per_request.result.weight_shared_attaches, 0u);
}

TEST(SharedPinEngine, DifferentModelFallsBackWhenSharedBudgetIsFull) {
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig a = tiny_model();
  model::MllmConfig b = tiny_model();
  b.name = "tiny-mllm-b";
  // Budget fits exactly model A's layer groups; while A's shared pin is
  // held, a model-B request has nothing to attach to and no room to pin.
  const Bytes budget = full_weight_set(a, cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192, 0),
                                      req(1, 0, 4, 192, 0),
                                      req(2, 100, 4, 192, 1)};
  const auto outcome = replay_trace(
      cfg, {a, b},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget),
      trace);

  EXPECT_EQ(outcome.result.completed, 3u);
  // A charged once, A's second request rode, B fell back at least once
  // while the budget was genuinely full.
  EXPECT_GE(outcome.result.weight_pin_fallbacks, 1u);
  EXPECT_EQ(outcome.result.weight_shared_attaches, 1u);
  // Never more than one model's set resident at a time: B only ever pins
  // AFTER model A's last rider detached (sets are equal-sized here).
  EXPECT_EQ(outcome.result.peak_pinned_bytes, budget);
}

// --- Determinism anchors ----------------------------------------------------

TEST(SharedPinEngine, CapacityZeroStillDegradesToChunkedByteForByte) {
  // Sharing enabled but no budget: the planner must replay EXACTLY as
  // ChunkedPrefill (the PR 3 anchor, restated with the knob explicit).
  const std::vector<Request> trace = {req(0, 0, 6, 144), req(1, 500, 5, 96)};
  const auto chunked = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<ChunkedPrefill>(48)), trace);
  const auto shared = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .share_weight_pins(true),
      trace);
  ASSERT_EQ(shared.records.size(), chunked.records.size());
  for (std::size_t i = 0; i < chunked.records.size(); ++i) {
    EXPECT_EQ(shared.records[i].finish, chunked.records[i].finish);
    EXPECT_EQ(shared.records[i].prefill_end, chunked.records[i].prefill_end);
    EXPECT_EQ(shared.records[i].weight_pinned_layers, 0u);
  }
  EXPECT_EQ(shared.result.cc_weight_fetch_bytes,
            chunked.result.cc_weight_fetch_bytes);
  EXPECT_EQ(shared.result.weight_shared_attaches, 0u);
}

TEST(SharedPinEngine, SingleRequestPerModelReplaysIdenticalInBothModes) {
  // With at most one in-flight request per model there is never a pin to
  // share, so shared and per-request modes must replay bit-for-bit
  // identically (the PR 3 compatibility contract of the default config).
  const core::ChipConfig cfg = small_cfg();
  const Bytes budget = 2 * full_weight_set(tiny_model(), cfg);
  auto config = [&](bool share) {
    return fast_config(std::make_shared<ResidentChunkedPrefill>(48))
        .weight_residency_bytes(budget)
        .share_weight_pins(share);
  };
  // Probe replay: when does request 0 fully retire?
  const auto probe =
      replay_trace(cfg, {tiny_model()}, config(true), {req(0, 0, 4, 192)});
  const Cycle after = probe.records[0].finish + 1000;
  const std::vector<Request> trace = {req(0, 0, 4, 192),
                                      req(1, after, 4, 192)};
  const auto shared = replay_trace(cfg, {tiny_model()}, config(true), trace);
  const auto per_request =
      replay_trace(cfg, {tiny_model()}, config(false), trace);

  ASSERT_EQ(shared.records.size(), per_request.records.size());
  for (std::size_t i = 0; i < shared.records.size(); ++i) {
    const RequestRecord& s = shared.records[i];
    const RequestRecord& p = per_request.records[i];
    EXPECT_EQ(s.admitted, p.admitted);
    EXPECT_EQ(s.prefill_start, p.prefill_start);
    EXPECT_EQ(s.prefill_end, p.prefill_end);
    EXPECT_EQ(s.first_token, p.first_token);
    EXPECT_EQ(s.finish, p.finish);
    EXPECT_EQ(s.weight_pinned_layers, p.weight_pinned_layers);
  }
  EXPECT_EQ(shared.result.makespan, per_request.result.makespan);
  EXPECT_EQ(shared.result.cc_weight_fetch_bytes,
            per_request.result.cc_weight_fetch_bytes);
  EXPECT_EQ(shared.result.cc_weight_bytes_saved,
            per_request.result.cc_weight_bytes_saved);
  EXPECT_EQ(shared.result.weight_pins, per_request.result.weight_pins);
  EXPECT_EQ(shared.result.weight_shared_attaches, 0u);
}

// --- Pin lifetime on every exit path ----------------------------------------

TEST(SharedPinEngine, DrainedEngineHoldsNoPinsOnAnyExitPath) {
  // Exercise every way a request leaves the system in one replay —
  // prefill retirement (shared riders included), SLO rejection of a
  // judged-and-planned queue head, and KV-deferral churn on the decode
  // side — then assert the residency ledger is completely drained.
  const core::ChipConfig cfg = small_cfg();
  const model::MllmConfig m = tiny_model();
  const Bytes budget = full_weight_set(m, cfg);
  Request hopeless = req(5, 200, 8, 192);
  hopeless.deadline = hopeless.arrival + 1;  // always rejected
  const std::vector<Request> trace = {req(0, 0, 8, 192), req(1, 0, 8, 192),
                                      hopeless, req(3, 300, 8, 144)};
  EngineConfig config =
      EngineConfig()
          .scheduler(std::make_shared<SloAwarePolicy>(AdmissionLimits{4, 8}))
          .prefill_planner(std::make_shared<ResidentChunkedPrefill>(48))
          .manage_bandwidth(false)
          .weight_residency_bytes(budget)
          .kv_capacity_bytes(kv_footprint_bytes(req(0, 0, 8, 192), m));
  ServingEngine engine(cfg, {m}, std::move(config));
  const auto result = engine.run(trace);

  EXPECT_EQ(result.completed + result.rejected, trace.size());
  EXPECT_GE(result.rejected, 1u);
  EXPECT_GT(result.kv_deferrals, 0u);
  EXPECT_GT(result.weight_pins + result.weight_shared_attaches, 0u);
  ASSERT_NE(engine.residency_tracker(), nullptr);
  EXPECT_EQ(engine.residency_tracker()->pinned(), 0u);
  EXPECT_EQ(engine.residency_tracker()->holders(), 0u);
  ASSERT_NE(engine.kv_tracker(), nullptr);
  EXPECT_EQ(engine.kv_tracker()->reserved(), 0u);
}

}  // namespace
}  // namespace edgemm::serve
