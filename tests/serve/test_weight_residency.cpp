// Weight-resident chunk chaining: the WeightResidencyTracker ledger
// edge cases and the engine-level seam — a zero budget degrades
// byte-for-byte to ChunkedPrefill, a funded budget strictly cuts CC
// weight traffic, contention falls back to re-fetch instead of stalling.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "serve/residency_tracker.hpp"
#include "serve/serving_engine.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;  // 2 CC + 2 MC clusters: fast simulation
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

Request req(RequestId id, Cycle arrival, std::size_t output_tokens,
            std::size_t input_tokens = 128) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  return r;
}

EngineConfig fast_config(std::shared_ptr<const PrefillPlanner> planner) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .prefill_planner(std::move(planner))
      .manage_bandwidth(false);
}

Bytes full_weight_set(const model::MllmConfig& m, const core::ChipConfig& cfg) {
  return llm_layer_group_bytes(m, cfg) * m.llm.layers;
}

// --- Tracker ledger ---------------------------------------------------------

TEST(WeightResidencyTracker, ExactCapacityPinSucceeds) {
  WeightResidencyTracker tracker(1024);
  EXPECT_TRUE(tracker.try_pin(1, 1024));
  EXPECT_EQ(tracker.pinned(), 1024u);
  EXPECT_EQ(tracker.available(), 0u);
  EXPECT_EQ(tracker.pins(), 1u);
  EXPECT_EQ(tracker.fallbacks(), 0u);
  EXPECT_EQ(tracker.peak_pinned(), 1024u);
}

TEST(WeightResidencyTracker, OneByteOverFallsBackToRefetch) {
  WeightResidencyTracker tracker(1024);
  ASSERT_TRUE(tracker.try_pin(1, 1024));
  EXPECT_FALSE(tracker.try_pin(2, 1));
  EXPECT_EQ(tracker.fallbacks(), 1u);
  EXPECT_EQ(tracker.holders(), 1u);  // the loser holds nothing
}

TEST(WeightResidencyTracker, ReleaseOnCompletionFreesBytes) {
  WeightResidencyTracker tracker(1024);
  ASSERT_TRUE(tracker.try_pin(1, 1000));
  ASSERT_FALSE(tracker.try_pin(2, 512));
  tracker.release(1);  // eviction when the owning request retires
  EXPECT_EQ(tracker.pinned(), 0u);
  EXPECT_TRUE(tracker.try_pin(2, 512));
  EXPECT_EQ(tracker.peak_pinned(), 1000u);  // high-water mark survives
}

TEST(WeightResidencyTracker, DuplicateAndUnknownAreLogicErrors) {
  WeightResidencyTracker tracker(1024);
  ASSERT_TRUE(tracker.try_pin(1, 10));
  EXPECT_THROW(tracker.try_pin(1, 10), std::logic_error);
  EXPECT_THROW(tracker.release(7), std::logic_error);
  EXPECT_THROW(WeightResidencyTracker(0), std::invalid_argument);
}

TEST(WeightResidencyTracker, PinsWholeLayerGroupsPartially) {
  WeightResidencyTracker tracker(1000);
  // 3 groups of 300 fit a 1000-byte budget; the 4th would not.
  EXPECT_EQ(tracker.try_pin_layers(1, 300, 8), 3u);
  EXPECT_EQ(tracker.pinned(), 900u);
  // No whole group left: fallback, counted.
  EXPECT_EQ(tracker.try_pin_layers(2, 300, 8), 0u);
  EXPECT_EQ(tracker.fallbacks(), 1u);
  EXPECT_THROW(tracker.try_pin_layers(3, 0, 8), std::invalid_argument);
  EXPECT_THROW(tracker.try_pin_layers(3, 300, 0), std::invalid_argument);
}

TEST(WeightResidencyTracker, PartialPinPathUpdatesPeakAndPinCounters) {
  // peak_pinned_ must track the PARTIAL-pin path too, not just pins that
  // take whole budget-sized bites.
  WeightResidencyTracker tracker(1000);
  EXPECT_EQ(tracker.try_pin_layers(1, 300, 2), 2u);  // capped by max_layers
  EXPECT_EQ(tracker.pinned(), 600u);
  EXPECT_EQ(tracker.peak_pinned(), 600u);
  EXPECT_EQ(tracker.pins(), 1u);
  EXPECT_EQ(tracker.try_pin_layers(2, 300, 8), 1u);  // capped by the budget
  EXPECT_EQ(tracker.pinned(), 900u);
  EXPECT_EQ(tracker.peak_pinned(), 900u);
  EXPECT_EQ(tracker.pins(), 2u);
  tracker.release(1);
  EXPECT_EQ(tracker.pinned(), 300u);
  EXPECT_EQ(tracker.peak_pinned(), 900u);  // high-water mark survives
}

TEST(WeightResidencyTracker, ZeroLayerPartialResultCountsExactlyOneFallback) {
  // A budget that cannot fit one layer group is ONE fallback — not one
  // per candidate layer, and not a pin with zero layers.
  WeightResidencyTracker tracker(100);
  EXPECT_EQ(tracker.try_pin_layers(1, 300, 8), 0u);
  EXPECT_EQ(tracker.fallbacks(), 1u);
  EXPECT_EQ(tracker.pins(), 0u);
  EXPECT_EQ(tracker.holders(), 0u);
  EXPECT_EQ(tracker.peak_pinned(), 0u);
  EXPECT_EQ(tracker.try_pin_layers(2, 101, 1), 0u);
  EXPECT_EQ(tracker.fallbacks(), 2u);  // exactly one more
}

TEST(WeightResidencyCapacity, ScalesWithTcdmAndOversubscription) {
  const core::ChipConfig cfg = small_cfg();
  const Bytes base = chip_weight_residency_capacity(cfg);
  EXPECT_EQ(base, cfg.total_cc_clusters() * cfg.cc_cluster_tcdm_bytes);
  EXPECT_EQ(chip_weight_residency_capacity(cfg, 4.0), 4 * base);
  EXPECT_THROW(chip_weight_residency_capacity(cfg, 0.0),
               std::invalid_argument);
}

// --- Engine seam ------------------------------------------------------------

TEST(ResidentChunkedPrefillEngine, CapacityZeroReproducesChunkedByteForByte) {
  // The determinism anchor: ResidentChunkedPrefill with no residency
  // budget must replay EXACTLY as ChunkedPrefill — same chunks, same
  // timestamps, same traffic.
  const std::vector<Request> trace = {req(0, 0, 6, 128), req(1, 500, 5, 96),
                                      req(2, 900, 4, 200)};
  const auto chunked = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<ChunkedPrefill>(48)), trace);
  const auto resident = replay_trace(
      small_cfg(), {tiny_model()},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48)), trace);

  ASSERT_EQ(resident.records.size(), chunked.records.size());
  for (std::size_t i = 0; i < chunked.records.size(); ++i) {
    const RequestRecord& a = chunked.records[i];
    const RequestRecord& b = resident.records[i];
    EXPECT_EQ(b.admitted, a.admitted);
    EXPECT_EQ(b.prefill_start, a.prefill_start);
    EXPECT_EQ(b.prefill_end, a.prefill_end);
    EXPECT_EQ(b.first_token, a.first_token);
    EXPECT_EQ(b.finish, a.finish);
    EXPECT_EQ(b.tokens_generated, a.tokens_generated);
    EXPECT_EQ(b.prefill_chunks, a.prefill_chunks);
    EXPECT_EQ(b.weight_pinned_layers, 0u);
  }
  EXPECT_EQ(resident.result.makespan, chunked.result.makespan);
  EXPECT_EQ(resident.result.cc_weight_fetch_bytes,
            chunked.result.cc_weight_fetch_bytes);
  EXPECT_EQ(resident.result.cc_weight_bytes_saved, 0u);
  EXPECT_EQ(resident.result.weight_pins, 0u);
}

TEST(ResidentChunkedPrefillEngine, FundedBudgetStrictlyCutsWeightTraffic) {
  // Per-request pins (share_weight_pins(false)): the PR 3 baseline this
  // suite anchors — each request charges and rides its own pin. The
  // shared-pin accounting lives in test_shared_pins.cpp.
  const core::ChipConfig cfg = small_cfg();
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 100, 4, 192)};
  const Bytes budget = 2 * full_weight_set(tiny_model(), cfg);
  const auto chunked = replay_trace(
      cfg, {tiny_model()}, fast_config(std::make_shared<ChunkedPrefill>(48)),
      trace);
  const auto resident = replay_trace(
      cfg, {tiny_model()},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .share_weight_pins(false),
      trace);

  EXPECT_LT(resident.result.cc_weight_fetch_bytes,
            chunked.result.cc_weight_fetch_bytes);
  EXPECT_GT(resident.result.cc_weight_bytes_saved, 0u);
  EXPECT_LE(resident.result.makespan, chunked.result.makespan);
  // Both requests fit the budget: both pinned every layer group, and
  // the saved bytes are exactly the re-fetches chunking would have paid
  // (chunks beyond the first, all layers pinned).
  EXPECT_EQ(resident.result.weight_pins, 2u);
  for (const RequestRecord& rec : resident.records) {
    EXPECT_EQ(rec.weight_pinned_layers, tiny_model().llm.layers);
    ASSERT_EQ(rec.prefill_chunks, 4u);  // 192 = 4 x 48
  }
  EXPECT_EQ(resident.result.cc_weight_bytes_saved,
            2u * 3u * full_weight_set(tiny_model(), cfg));
  // What chunking re-fetched is exactly what residency saved.
  EXPECT_EQ(chunked.result.cc_weight_fetch_bytes -
                resident.result.cc_weight_fetch_bytes,
            resident.result.cc_weight_bytes_saved);
}

TEST(ResidentChunkedPrefillEngine, ContentionFallsBackAndNeverStalls) {
  const core::ChipConfig cfg = small_cfg();
  // Budget for ONE request's layer groups under PER-REQUEST pins; two
  // requests prefill concurrently — the loser re-fetches every chunk but
  // still completes. (With shared pins this exact contention vanishes:
  // the second request rides the first's pin; see test_shared_pins.cpp.)
  const Bytes budget = full_weight_set(tiny_model(), cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 0, 4, 192)};
  const auto outcome = replay_trace(
      cfg, {tiny_model()},
      fast_config(std::make_shared<ResidentChunkedPrefill>(48))
          .weight_residency_bytes(budget)
          .share_weight_pins(false),
      trace);

  EXPECT_EQ(outcome.result.completed, 2u);
  EXPECT_GE(outcome.result.weight_pin_fallbacks, 1u);
  EXPECT_GE(outcome.result.weight_pins, 1u);
  EXPECT_EQ(outcome.result.peak_pinned_bytes, budget);
  // Exactly one of the two overlapping requests held the budget first;
  // the other may still pin late (after the winner's prefill retires).
  EXPECT_EQ(outcome.records[0].weight_pinned_layers,
            tiny_model().llm.layers);
}

TEST(ResidentChunkedPrefillEngine, SingleChunkPlanNeverPins) {
  const core::ChipConfig cfg = small_cfg();
  const auto outcome = replay_trace(
      cfg, {tiny_model()},
      fast_config(std::make_shared<ResidentChunkedPrefill>(256))
          .weight_residency_bytes(4 * full_weight_set(tiny_model(), cfg)),
      {req(0, 0, 4, 128)});  // 128 <= 256: one chunk, nothing to chain
  EXPECT_EQ(outcome.result.weight_pins, 0u);
  EXPECT_EQ(outcome.result.cc_weight_bytes_saved, 0u);
  EXPECT_EQ(outcome.records[0].weight_pinned_layers, 0u);
}

TEST(ResidentChunkedPrefillEngine, LaneChainingVariantStillCompletes) {
  const core::ChipConfig cfg = small_cfg();
  const Bytes budget = full_weight_set(tiny_model(), cfg);
  const std::vector<Request> trace = {req(0, 0, 4, 192), req(1, 50, 4, 192),
                                      req(2, 80, 4, 96)};
  const auto outcome = replay_trace(
      cfg, {tiny_model()},
      fast_config(std::make_shared<ResidentChunkedPrefill>(
                      48, /*chain_lane_affinity=*/true))
          .weight_residency_bytes(budget),
      trace);
  EXPECT_EQ(outcome.result.completed, 3u);
  EXPECT_GE(outcome.result.weight_pins, 1u);
}

TEST(ResidentChunkedPrefillEngine, MiswiredCompositionIsRejected) {
  // A residency budget without a residency-capable planner is a config
  // bug, not a silent no-op.
  EXPECT_THROW(ServingEngine(small_cfg(), {tiny_model()},
                             fast_config(std::make_shared<ChunkedPrefill>(48))
                                 .weight_residency_bytes(1024)),
               std::invalid_argument);
  // A budget beyond the modeled oversubscription of the physical TCDM
  // is rejected against the ChipConfig at engine construction.
  const Bytes too_big =
      chip_weight_residency_capacity(small_cfg(),
                                     kMaxWeightResidencyOversubscription) +
      1;
  EXPECT_THROW(
      ServingEngine(small_cfg(), {tiny_model()},
                    fast_config(std::make_shared<ResidentChunkedPrefill>(48))
                        .weight_residency_bytes(too_big)),
      std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::serve
