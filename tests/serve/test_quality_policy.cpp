// Property suite for the QualityPolicy seam: band clamping, hysteresis,
// monotonicity, StaticQuality byte-identity, quality-ledger conservation,
// pinned-byte invariance under mid-request degradation, and determinism
// across replay tiers, sweep workers, and cluster chips.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/gpu_model.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"
#include "serve/cluster/cluster_engine.hpp"
#include "serve/residency_tracker.hpp"
#include "serve/serving_engine.hpp"
#include "serve/sweep.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

model::MllmConfig heavy_model() {
  model::MllmConfig m = tiny_model();
  m.name = "heavy-mllm";
  m.llm = {"llm", 4, 512, 1024, 8, 8, 1024, true};
  return m;
}

EngineConfig base_config() {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .prefill_planner(std::make_shared<ChunkedPrefill>(128))
      .manage_bandwidth(false);
}

/// Overloaded bursty trace: arrivals outrun the chip so the queue deepens
/// and deadline pressure builds — the regime dynamic quality exists for.
std::vector<Request> bursty_trace(std::size_t requests = 24,
                                  bool deadlines = false) {
  TraceConfig cfg;
  cfg.requests = requests;
  cfg.arrival_rate_per_s = 2000.0;
  cfg.burst = 4;
  cfg.input_tokens = 640;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 8;
  if (deadlines) {
    cfg.slo_base_ms = 30.0;
    cfg.slo_per_token_ms = 3.0;
  }
  cfg.seed = 77;
  return poisson_trace(cfg);
}

/// Test double: always returns the same raw fraction — what a degraded
/// steady state looks like, and a probe for the engine's band clamp.
class FixedQuality final : public QualityPolicy {
 public:
  explicit FixedQuality(double fraction) : fraction_(fraction) {}
  const char* name() const override { return "fixed-quality"; }
  double keep_fraction(const Request&, const QualityContext&) const override {
    return fraction_;
  }

 private:
  double fraction_;
};

/// Test double: degrades exactly one model's requests, co-tenants keep
/// their base — isolates per-request/per-model quality bookkeeping.
class DegradeModelQuality final : public QualityPolicy {
 public:
  DegradeModelQuality(std::size_t model, double fraction)
      : model_(model), fraction_(fraction) {}
  const char* name() const override { return "degrade-model"; }
  double keep_fraction(const Request& r,
                       const QualityContext& ctx) const override {
    return r.model == model_ ? fraction_ : ctx.base_keep;
  }

 private:
  std::size_t model_;
  double fraction_;
};

/// Test double: QueueDepthQuality at admission, but once a request is
/// degraded it HOLDS its fraction — every later judgment is a pure
/// function of arrival/admission ORDER, never of sub-percent timing
/// drift between replay tiers (what the cross-tier fidelity test needs).
class StickyQueueDepthQuality final : public QualityPolicy {
 public:
  StickyQueueDepthQuality(std::size_t low_depth, std::size_t high_depth)
      : inner_(low_depth, high_depth) {}
  const char* name() const override { return "sticky-queue-depth"; }
  double keep_fraction(const Request& r,
                       const QualityContext& ctx) const override {
    if (ctx.current_keep < ctx.base_keep) return ctx.current_keep;
    return inner_.keep_fraction(r, ctx);
  }

 private:
  QueueDepthQuality inner_;
};

/// Test double: degrades exactly one request id.
class DegradeRequestQuality final : public QualityPolicy {
 public:
  DegradeRequestQuality(RequestId id, double fraction)
      : id_(id), fraction_(fraction) {}
  const char* name() const override { return "degrade-request"; }
  double keep_fraction(const Request& r,
                       const QualityContext& ctx) const override {
    return r.id == id_ ? fraction_ : ctx.base_keep;
  }

 private:
  RequestId id_;
  double fraction_;
};

QualityContext pressured_ctx(Cycle deadline, Cycle estimated_finish,
                             double current = 1.0) {
  QualityContext ctx;
  ctx.now = 1000;
  ctx.deadline = deadline;
  ctx.estimated_finish = estimated_finish;
  ctx.base_keep = 1.0;
  ctx.current_keep = current;
  return ctx;
}

// --- Policy unit properties -------------------------------------------------

TEST(QualityPolicy, StaticReturnsBaseKeepUnderAnyPressure) {
  StaticQuality policy;
  Request r;
  QualityContext ctx = pressured_ctx(10, 1'000'000, 0.5);
  ctx.base_keep = 0.7;
  ctx.queue_depth = 99;
  EXPECT_EQ(policy.keep_fraction(r, ctx), 0.7);
  ctx.base_keep = 1.0;
  EXPECT_EQ(policy.keep_fraction(r, ctx), 1.0);
}

TEST(QualityPolicy, SloPressureTightensOnPredictedMiss) {
  SloPressureQuality policy(0.125, 0.25);
  Request r;
  r.arrival = 0;
  const double got =
      policy.keep_fraction(r, pressured_ctx(/*deadline=*/5000,
                                            /*estimated_finish=*/6000, 1.0));
  EXPECT_DOUBLE_EQ(got, 1.0 - 0.125);
}

TEST(QualityPolicy, SloPressureRelaxesOnlyPastTheMargin) {
  SloPressureQuality policy(0.125, 0.25);
  Request r;
  r.arrival = 0;
  // Window = 10000; relax needs slack >= 2500.
  EXPECT_DOUBLE_EQ(
      policy.keep_fraction(r, pressured_ctx(10000, 7000, 0.5)),  // slack 3000
      0.5 + 0.125);
  EXPECT_DOUBLE_EQ(
      policy.keep_fraction(r, pressured_ctx(10000, 8000, 0.5)),  // slack 2000
      0.5);  // dead band: meets the deadline but not the margin
}

TEST(QualityPolicy, SloPressureHoldsWithoutADeadline) {
  SloPressureQuality policy;
  Request r;
  EXPECT_DOUBLE_EQ(policy.keep_fraction(r, pressured_ctx(0, 1'000'000, 0.625)),
                   0.625);
}

TEST(QualityPolicy, SloPressureIsMonotoneInPressure) {
  // At a fixed current fraction, a later estimated finish never yields a
  // HIGHER fraction.
  SloPressureQuality policy(0.125, 0.25);
  Request r;
  r.arrival = 0;
  double prev = 2.0;
  for (Cycle finish = 1000; finish <= 20000; finish += 500) {
    const double got = policy.keep_fraction(r, pressured_ctx(10000, finish, 0.5));
    EXPECT_LE(got, prev) << "finish=" << finish;
    prev = got;
  }
}

TEST(QualityPolicy, SloPressureDeadBandCannotOscillate) {
  // Iterate the controller at CONSTANT pressure inside the dead band
  // (meets the deadline, misses the relax margin): the fraction must be
  // a fixed point, not a limit cycle.
  SloPressureQuality policy(0.125, 0.25);
  Request r;
  r.arrival = 0;
  double keep = 0.5;
  for (int i = 0; i < 32; ++i) {
    const double next =
        policy.keep_fraction(r, pressured_ctx(10000, 8000, keep));
    EXPECT_DOUBLE_EQ(next, keep) << "iteration " << i;
    keep = next;
  }
}

TEST(QualityPolicy, SloPressureValidatesParameters) {
  EXPECT_THROW(SloPressureQuality(0.0), std::invalid_argument);
  EXPECT_THROW(SloPressureQuality(1.5), std::invalid_argument);
  EXPECT_THROW(SloPressureQuality(0.125, -0.1), std::invalid_argument);
  EXPECT_NO_THROW(SloPressureQuality(1.0, 0.0));
}

TEST(QualityPolicy, QueueDepthServesTheBandEndpoints) {
  QueueDepthQuality policy(2, 8);
  Request r;
  QualityContext ctx;
  ctx.min_keep = 0.25;
  ctx.max_keep = 1.0;
  ctx.queue_depth = 0;
  EXPECT_DOUBLE_EQ(policy.keep_fraction(r, ctx), 1.0);
  ctx.queue_depth = 2;
  EXPECT_DOUBLE_EQ(policy.keep_fraction(r, ctx), 1.0);
  ctx.queue_depth = 8;
  EXPECT_DOUBLE_EQ(policy.keep_fraction(r, ctx), 0.25);
  ctx.queue_depth = 50;
  EXPECT_DOUBLE_EQ(policy.keep_fraction(r, ctx), 0.25);
}

TEST(QualityPolicy, QueueDepthInterpolatesMonotonically) {
  QueueDepthQuality policy(2, 8);
  Request r;
  QualityContext ctx;
  ctx.min_keep = 0.25;
  ctx.max_keep = 1.0;
  double prev = 2.0;
  for (std::size_t depth = 0; depth <= 12; ++depth) {
    ctx.queue_depth = depth;
    const double got = policy.keep_fraction(r, ctx);
    EXPECT_LE(got, prev) << "depth=" << depth;
    EXPECT_GE(got, ctx.min_keep);
    EXPECT_LE(got, ctx.max_keep);
    prev = got;
  }
}

TEST(QualityPolicy, QueueDepthValidatesThresholds) {
  EXPECT_THROW(QueueDepthQuality(8, 8), std::invalid_argument);
  EXPECT_THROW(QueueDepthQuality(9, 8), std::invalid_argument);
  EXPECT_NO_THROW(QueueDepthQuality(0, 1));
}

TEST(QualityPolicy, PolicyNamesAreStable) {
  EXPECT_STREQ(StaticQuality{}.name(), "static-quality");
  EXPECT_STREQ(SloPressureQuality{}.name(), "slo-pressure");
  EXPECT_STREQ(QueueDepthQuality{}.name(), "queue-depth-quality");
}

// --- Config + accuracy proxy ------------------------------------------------

TEST(QualityPolicy, ConfigValidationGuardsTheSeam) {
  EXPECT_THROW(base_config().quality_policy(nullptr), std::invalid_argument);
  EXPECT_THROW(base_config().quality_band(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(base_config().quality_band(0.5, 0.25), std::invalid_argument);
  EXPECT_THROW(base_config().quality_band(0.5, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(base_config().quality_band(0.25, 1.0).validate());
  EXPECT_NO_THROW(
      base_config()
          .quality_policy(std::make_shared<SloPressureQuality>())
          .validate());
}

TEST(QualityPolicy, AccuracyProxyIsExactAtFullKeepAndBoundedBelow) {
  const model::MllmConfig m = tiny_model();
  EXPECT_DOUBLE_EQ(quality_accuracy_proxy(m, 1.0), 1.0);
  const double half = quality_accuracy_proxy(m, 0.5);
  EXPECT_GE(half, 0.0);
  EXPECT_LE(half, 1.0);
  // Deterministic: same model + fraction prices identically.
  EXPECT_EQ(quality_accuracy_proxy(m, 0.5), half);
  EXPECT_THROW(quality_accuracy_proxy(m, 0.0), std::invalid_argument);
  EXPECT_THROW(quality_accuracy_proxy(m, -0.5), std::invalid_argument);
}

// --- Workload builder properties --------------------------------------------

TEST(QualityPolicy, PrefillChunkAtFullKeepIsBitIdentical) {
  const model::MllmConfig m = tiny_model();
  const auto plain = model::build_prefill_chunk(m, 0, 128, 640);
  const auto keep1 = model::build_prefill_chunk(m, 0, 128, 640, 0, 1.0, 0);
  ASSERT_EQ(plain.size(), keep1.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].m, keep1[i].m);
    EXPECT_EQ(plain[i].k, keep1[i].k);
    EXPECT_EQ(plain[i].n, keep1[i].n);
  }
}

TEST(QualityPolicy, PrefillFfnKeepShrinksOnlyStreamedFfnLayers) {
  const model::MllmConfig m = tiny_model();  // 2 LLM layers, gated MLP
  const auto full = model::build_prefill_chunk(m, 0, 128, 640);
  // Layer 0 protected (pinned-at-full), layer 1 pruned to 0.5.
  const auto pruned =
      model::build_prefill_chunk(m, 0, 128, 640, 0, 0.5, /*full_keep=*/1);
  ASSERT_EQ(full.size(), pruned.size());
  const std::size_t per_layer = full.size() / 2;
  std::size_t shrunk = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].m, pruned[i].m);
    EXPECT_EQ(full[i].n, pruned[i].n);
    if (i < per_layer) {
      EXPECT_EQ(full[i].k, pruned[i].k) << "protected layer op " << i;
    } else if (pruned[i].k != full[i].k) {
      // Only FFN k dims shrink, with pruned_ops' ceil-floor-1 rounding.
      const auto want = std::max<std::size_t>(
          static_cast<std::size_t>(
              std::ceil(static_cast<double>(full[i].k) * 0.5)),
          1);
      EXPECT_EQ(pruned[i].k, want);
      ++shrunk;
    }
  }
  EXPECT_EQ(shrunk, 3u);  // up + gate + down of the one unprotected layer
}

TEST(QualityPolicy, DecodeStepKeepOverloadMatchesPrunedOps) {
  const model::MllmConfig m = tiny_model();
  const std::vector<std::size_t> contexts{300, 512};
  const auto direct = model::build_decode_step(m, contexts, 0.5);
  const auto via_pruned =
      core::pruned_ops(model::build_decode_step(m, contexts), 0.5);
  ASSERT_EQ(direct.size(), via_pruned.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].m, via_pruned[i].m);
    EXPECT_EQ(direct[i].k, via_pruned[i].k);
    EXPECT_EQ(direct[i].n, via_pruned[i].n);
  }
}

TEST(QualityPolicy, PrefillChunkValidatesQualityArguments) {
  const model::MllmConfig m = tiny_model();
  EXPECT_THROW(model::build_prefill_chunk(m, 0, 128, 640, 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(model::build_prefill_chunk(m, 0, 128, 640, 0, 1.5),
               std::invalid_argument);
  EXPECT_THROW(model::build_prefill_chunk(m, 0, 128, 640, 0, 1.0,
                                          m.llm.layers + 1),
               std::invalid_argument);
}

// --- Engine integration: StaticQuality bit-identity -------------------------

TEST(QualityPolicy, DefaultEngineIsByteIdenticalToExplicitStatic) {
  const auto trace = bursty_trace();
  const auto implicit =
      replay_trace(small_cfg(), {tiny_model()}, base_config(), trace);
  const auto explicit_static = replay_trace(
      small_cfg(), {tiny_model()},
      base_config()
          .quality_policy(std::make_shared<StaticQuality>())
          .quality_band(0.25, 1.0),
      trace);
  EXPECT_TRUE(results_identical(implicit.result, explicit_static.result));
  ASSERT_EQ(implicit.records.size(), explicit_static.records.size());
  for (std::size_t i = 0; i < implicit.records.size(); ++i) {
    EXPECT_TRUE(
        record_identical(implicit.records[i], explicit_static.records[i]));
  }
  EXPECT_EQ(implicit.result.quality_downgrades, 0u);
  EXPECT_EQ(implicit.result.quality_restores, 0u);
  EXPECT_EQ(implicit.result.tokens_at_degraded_quality, 0u);
  EXPECT_DOUBLE_EQ(implicit.result.accuracy_proxy_mean, 1.0);
  EXPECT_DOUBLE_EQ(implicit.result.accuracy_proxy_min, 1.0);
}

TEST(QualityPolicy, StaticWithBasePruningIsNotADowngrade) {
  // A static per-model fraction below 1.0 is the configured operating
  // point, not a quality downgrade: the ledger stays clean, and the
  // accuracy proxy prices the configured fraction for every request.
  const auto trace = bursty_trace(12);
  const auto out = replay_trace(small_cfg(), {tiny_model()},
                                base_config().prune_keep_fraction(0.6), trace);
  EXPECT_EQ(out.result.quality_downgrades, 0u);
  EXPECT_EQ(out.result.tokens_at_degraded_quality, 0u);
  for (const RequestRecord& rec : out.records) {
    if (rec.rejected) continue;
    EXPECT_DOUBLE_EQ(rec.keep_fraction_served, 0.6);
    EXPECT_DOUBLE_EQ(rec.keep_fraction_served, rec.prune_keep_fraction);
  }
  const double priced = quality_accuracy_proxy(tiny_model(), 0.6);
  EXPECT_DOUBLE_EQ(out.result.accuracy_proxy_mean, priced);
  EXPECT_DOUBLE_EQ(out.result.accuracy_proxy_min, priced);
}

// --- Engine integration: dynamic quality -------------------------------------

TEST(QualityPolicy, EngineClampsJudgmentsIntoTheBand) {
  const auto trace = bursty_trace(8);
  // A policy demanding 0.01 is clamped to the band floor ...
  const auto floor_run = replay_trace(
      small_cfg(), {tiny_model()},
      base_config()
          .quality_policy(std::make_shared<FixedQuality>(0.01))
          .quality_band(0.25, 1.0),
      trace);
  for (const RequestRecord& rec : floor_run.records) {
    if (rec.rejected) continue;
    EXPECT_DOUBLE_EQ(rec.keep_fraction_served, 0.25);
  }
  // ... and one demanding 5.0 to the band ceiling (no "super quality").
  const auto ceil_run = replay_trace(
      small_cfg(), {tiny_model()},
      base_config()
          .quality_policy(std::make_shared<FixedQuality>(5.0))
          .quality_band(0.25, 1.0),
      trace);
  for (const RequestRecord& rec : ceil_run.records) {
    if (rec.rejected) continue;
    EXPECT_DOUBLE_EQ(rec.keep_fraction_served, 1.0);
  }
  EXPECT_EQ(ceil_run.result.quality_downgrades, 0u);
}

TEST(QualityPolicy, QueueDepthDegradesUnderBurstsAndLedgerConserves) {
  const auto trace = bursty_trace();
  const auto out = replay_trace(
      small_cfg(), {tiny_model()},
      base_config().quality_policy(std::make_shared<QueueDepthQuality>(1, 6)),
      trace);
  const ServingResult& r = out.result;
  EXPECT_GT(r.quality_downgrades, 0u);
  // Conservation: every downgrade either restored or drained degraded.
  std::size_t still_degraded = 0;
  for (const RequestRecord& rec : out.records) {
    if (rec.done && rec.keep_fraction_served < rec.prune_keep_fraction) {
      ++still_degraded;
    }
    if (rec.rejected) {
      EXPECT_DOUBLE_EQ(rec.keep_fraction_served, 1.0);  // never judged
    }
  }
  EXPECT_EQ(r.quality_downgrades, r.quality_restores + still_degraded);
}

TEST(QualityPolicy, DegradedTokensAreCountedPerGeneratedToken) {
  const auto trace = bursty_trace(12);
  const auto degraded = replay_trace(
      small_cfg(), {tiny_model()},
      base_config().quality_policy(std::make_shared<FixedQuality>(0.5)), trace);
  std::size_t generated = 0;
  for (const RequestRecord& rec : degraded.records) {
    generated += rec.tokens_generated;
  }
  // Every request is served at 0.5 < base 1.0 from admission on, so
  // EVERY generated token was degraded.
  EXPECT_EQ(degraded.result.tokens_at_degraded_quality, generated);
  EXPECT_GT(generated, 0u);
}

TEST(QualityPolicy, AccuracyLedgerPricesTheServedFraction) {
  const auto trace = bursty_trace(12);
  const auto out = replay_trace(
      small_cfg(), {tiny_model()},
      base_config().quality_policy(std::make_shared<FixedQuality>(0.5)), trace);
  const double priced = quality_accuracy_proxy(tiny_model(), 0.5);
  EXPECT_LT(priced, 1.0);
  EXPECT_DOUBLE_EQ(out.result.accuracy_proxy_mean, priced);
  EXPECT_DOUBLE_EQ(out.result.accuracy_proxy_min, priced);
}

TEST(QualityPolicy, DegradedPrefillShrinksStreamedWeightBytes) {
  const auto trace = bursty_trace(12);
  const auto full = replay_trace(small_cfg(), {tiny_model()}, base_config(),
                                 trace);
  const auto degraded = replay_trace(
      small_cfg(), {tiny_model()},
      base_config().quality_policy(std::make_shared<FixedQuality>(0.5)), trace);
  EXPECT_LT(degraded.result.cc_weight_fetch_bytes,
            full.result.cc_weight_fetch_bytes);
  EXPECT_EQ(degraded.result.completed + degraded.result.rejected, trace.size());
}

TEST(QualityPolicy, PinnedLayerBytesAreInvariantUnderDegradation) {
  // The pin holds FULL weights whatever the quality seam judges: peak
  // pinned bytes must not move when every request is degraded — only
  // the streamed (unpinned) bytes shrink.
  const auto trace = bursty_trace(12);
  // Budget for ONE of the model's two layer groups: the other layer
  // streams every chunk — and is what the quality seam prunes.
  const Bytes one_layer = llm_layer_group_bytes(tiny_model(), small_cfg());
  auto pin_config = [one_layer] {
    return base_config()
        .prefill_planner(std::make_shared<ResidentChunkedPrefill>(128))
        .weight_residency_bytes(one_layer);
  };
  const auto full =
      replay_trace(small_cfg(), {tiny_model()}, pin_config(), trace);
  const auto degraded = replay_trace(
      small_cfg(), {tiny_model()},
      pin_config().quality_policy(std::make_shared<FixedQuality>(0.5)), trace);
  ASSERT_GT(full.result.weight_pins, 0u);
  EXPECT_GT(degraded.result.weight_pins, 0u);
  EXPECT_EQ(degraded.result.peak_pinned_bytes, full.result.peak_pinned_bytes);
  EXPECT_LT(degraded.result.cc_weight_fetch_bytes,
            full.result.cc_weight_fetch_bytes);
}

TEST(QualityPolicy, MidPrefillRestoreHappensAtChunkBoundaries) {
  // QueueDepthQuality with a floor the burst clears: requests degraded
  // while the queue is deep are re-judged at each chunk submit and
  // restored once the queue drains — restores must actually fire.
  const auto trace = bursty_trace();
  const auto out = replay_trace(
      small_cfg(), {tiny_model()},
      base_config()
          .prefill_planner(std::make_shared<ChunkedPrefill>(64))
          .quality_policy(std::make_shared<QueueDepthQuality>(0, 2)),
      trace);
  EXPECT_GT(out.result.quality_downgrades, 0u);
  EXPECT_GT(out.result.quality_restores, 0u);
  std::size_t still_degraded = 0;
  for (const RequestRecord& rec : out.records) {
    if (rec.done && rec.keep_fraction_served < rec.prune_keep_fraction) {
      ++still_degraded;
    }
  }
  EXPECT_EQ(out.result.quality_downgrades,
            out.result.quality_restores + still_degraded);
}

// --- Seam interactions -------------------------------------------------------

TEST(QualityPolicy, OffloadedChunksRestreamAtTheCurrentFraction) {
  // A degraded request's offloaded chunks carry the PRUNED ops to the
  // fat backend, so its GDDR traffic shrinks with the keep fraction.
  const auto trace = bursty_trace(12);
  auto fat_config = [] {
    return base_config()
        .fat_backend(baselines::GpuSpec{})
        .offload_policy(std::make_shared<PrefillToFat>(512));
  };
  const auto full =
      replay_trace(small_cfg(), {tiny_model()}, fat_config(), trace);
  const auto degraded = replay_trace(
      small_cfg(), {tiny_model()},
      fat_config().quality_policy(std::make_shared<FixedQuality>(0.5)), trace);
  ASSERT_GT(full.result.offloaded_chunks, 0u);
  EXPECT_GT(degraded.result.offloaded_chunks, 0u);
  EXPECT_LT(degraded.result.fat_bytes_moved, full.result.fat_bytes_moved);
}

TEST(QualityPolicy, SharedPinRiderNeverInheritsTheOwnersFraction) {
  // Quality is per REQUEST: degrading the pin owner must not leak its
  // fraction onto riders sharing the same model pin (and must not move
  // the pinned bytes either).
  const auto trace = bursty_trace(12);
  auto shared_config = [] {
    return base_config()
        .prefill_planner(std::make_shared<ResidentChunkedPrefill>(128))
        .weight_residency_bytes(Bytes{1} << 30)
        .share_weight_pins(true);
  };
  const auto plain =
      replay_trace(small_cfg(), {tiny_model()}, shared_config(), trace);
  const auto out = replay_trace(
      small_cfg(), {tiny_model()},
      shared_config().quality_policy(
          std::make_shared<DegradeRequestQuality>(trace.front().id, 0.5)),
      trace);
  ASSERT_GT(out.result.weight_shared_attaches, 0u);
  for (const RequestRecord& rec : out.records) {
    if (rec.rejected) continue;
    if (rec.request.id == trace.front().id) {
      EXPECT_DOUBLE_EQ(rec.keep_fraction_served, 0.5);
    } else {
      EXPECT_DOUBLE_EQ(rec.keep_fraction_served, rec.prune_keep_fraction);
    }
  }
  EXPECT_EQ(out.result.quality_downgrades, 1u);
  EXPECT_EQ(out.result.peak_pinned_bytes, plain.result.peak_pinned_bytes);
}

TEST(QualityPolicy, StaleEstimatorRegressionDegradedCoTenant) {
  // Regression for the stale-EWMA edge: the CC throughput estimator is
  // normalized to full-precision-equivalent bytes, so a degraded heavy
  // co-tenant's (fewer bytes, fewer cycles) chunks cannot teach the
  // admission judgment that the lane got faster. The light model's
  // admission outcomes must not get WORSE when the heavy co-tenant is
  // degraded — same load, strictly less heavy traffic.
  TraceConfig cfg;
  cfg.requests = 24;
  cfg.arrival_rate_per_s = 1200.0;
  cfg.burst = 2;
  cfg.input_tokens = 512;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 8;
  cfg.model_weights = {1.0, 1.0};
  cfg.slo_base_ms = 40.0;
  cfg.slo_per_token_ms = 4.0;
  cfg.seed = 99;
  const auto trace = poisson_trace(cfg);
  auto slo_config = [] {
    return base_config().scheduler(
        std::make_shared<SloAwarePolicy>(AdmissionLimits{4, 8}));
  };
  const std::vector<model::MllmConfig> zoo{tiny_model(), heavy_model()};
  const auto baseline = replay_trace(small_cfg(), zoo, slo_config(), trace);
  const auto degraded_heavy = replay_trace(
      small_cfg(), zoo,
      slo_config().quality_policy(
          std::make_shared<DegradeModelQuality>(1, 0.5)),
      trace);
  auto light_rejections = [](const std::vector<RequestRecord>& records) {
    std::size_t n = 0;
    for (const RequestRecord& rec : records) {
      if (rec.request.model == 0 && rec.rejected) ++n;
    }
    return n;
  };
  EXPECT_LE(light_rejections(degraded_heavy.records),
            light_rejections(baseline.records));
  EXPECT_EQ(degraded_heavy.result.completed + degraded_heavy.result.rejected,
            trace.size());
}

// --- Determinism: tiers, workers, cluster ------------------------------------

TEST(QualityPolicy, FastTierMatchesDetailedQualityDecisions) {
  // Cross-tier fidelity on a degrading trace: the fast tier must make
  // IDENTICAL quality decisions (downgrades, restores, per-record served
  // fractions) and drift under 1% on the makespan. A front-loaded burst
  // plus a sticky policy pins every judgment to arrival/admission ORDER
  // — which both tiers share — not to the cost models' timing drift.
  TraceConfig tcfg;
  tcfg.requests = 24;
  tcfg.arrival_rate_per_s = 1e6;
  tcfg.burst = 4;
  tcfg.input_tokens = 256;
  tcfg.min_output_tokens = 2;
  tcfg.max_output_tokens = 8;
  tcfg.seed = 77;
  const auto trace = poisson_trace(tcfg);
  auto config = [] {
    return base_config().quality_policy(
        std::make_shared<StickyQueueDepthQuality>(1, 6));
  };
  const auto detailed =
      replay_trace(small_cfg(), {tiny_model()}, config(), trace);
  const auto fast = replay_trace(
      small_cfg(), {tiny_model()},
      config().replay_mode(core::ReplayMode::kFast), trace);
  ASSERT_GT(detailed.result.quality_downgrades, 0u);
  EXPECT_EQ(fast.result.quality_downgrades, detailed.result.quality_downgrades);
  EXPECT_EQ(fast.result.quality_restores, detailed.result.quality_restores);
  ASSERT_EQ(fast.records.size(), detailed.records.size());
  for (std::size_t i = 0; i < fast.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast.records[i].keep_fraction_served,
                     detailed.records[i].keep_fraction_served);
  }
  const double drift =
      std::abs(fast.result.makespan_ms - detailed.result.makespan_ms) /
      detailed.result.makespan_ms;
  EXPECT_LT(drift, 0.01);
}

TEST(QualityPolicy, SweepIsByteIdenticalAcrossWorkerCounts) {
  const auto trace = bursty_trace(16, /*deadlines=*/true);
  std::vector<SweepCase> cases;
  const std::vector<std::shared_ptr<const QualityPolicy>> policies{
      std::make_shared<StaticQuality>(),
      std::make_shared<SloPressureQuality>(),
      std::make_shared<QueueDepthQuality>(1, 6)};
  for (const auto& policy : policies) {
    SweepCase c;
    c.label = policy->name();
    c.chip = small_cfg();
    c.models = {tiny_model()};
    c.engine = base_config().quality_policy(policy);
    c.requests = trace;
    cases.push_back(std::move(c));
  }
  const auto seq = run_sweep(cases, SweepOptions{1});
  const auto par = run_sweep(cases, SweepOptions{4});
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(outcomes_identical(seq[i], par[i]));
  }
}

TEST(QualityPolicy, ClusterSumsPerChipQualityLedgers) {
  // Twice the single-chip burst: each of the two shards must still see a
  // deep enough queue to degrade.
  TraceConfig cfg;
  cfg.requests = 48;
  cfg.arrival_rate_per_s = 4000.0;
  cfg.burst = 8;
  cfg.input_tokens = 640;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 8;
  cfg.seed = 77;
  const auto trace = poisson_trace(cfg);
  ClusterConfig cluster;
  cluster.chips(2).workers(2);
  const ClusterOutcome out = run_cluster(
      small_cfg(), {tiny_model()},
      base_config().quality_policy(std::make_shared<QueueDepthQuality>(0, 4)),
      cluster, trace);
  std::size_t downgrades = 0, restores = 0, degraded_tokens = 0;
  std::size_t completed = 0;
  double weighted = 0.0, min_acc = 1.0;
  for (const ServingResult& r : out.result.per_chip) {
    downgrades += r.quality_downgrades;
    restores += r.quality_restores;
    degraded_tokens += r.tokens_at_degraded_quality;
    if (r.completed > 0) {
      completed += r.completed;
      weighted += r.accuracy_proxy_mean * static_cast<double>(r.completed);
      min_acc = std::min(min_acc, r.accuracy_proxy_min);
    }
  }
  ASSERT_GT(downgrades, 0u);
  EXPECT_EQ(out.result.quality_downgrades, downgrades);
  EXPECT_EQ(out.result.quality_restores, restores);
  EXPECT_EQ(out.result.tokens_at_degraded_quality, degraded_tokens);
  ASSERT_GT(completed, 0u);
  EXPECT_DOUBLE_EQ(out.result.accuracy_proxy_mean,
                   weighted / static_cast<double>(completed));
  EXPECT_DOUBLE_EQ(out.result.accuracy_proxy_min, min_acc);
}

TEST(QualityPolicy, DynamicReplayIsDeterministic) {
  const auto trace = bursty_trace(16, /*deadlines=*/true);
  auto config = [] {
    return base_config()
        .scheduler(std::make_shared<SloAwarePolicy>(AdmissionLimits{4, 8}))
        .quality_policy(std::make_shared<SloPressureQuality>());
  };
  const auto a = replay_trace(small_cfg(), {tiny_model()}, config(), trace);
  const auto b = replay_trace(small_cfg(), {tiny_model()}, config(), trace);
  EXPECT_TRUE(results_identical(a.result, b.result));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_TRUE(record_identical(a.records[i], b.records[i]));
  }
}

}  // namespace
}  // namespace edgemm::serve
