#include "serve/serving_engine.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;  // 2 CC + 2 MC clusters: fast simulation
  return cfg;
}

/// Small synthetic MLLM, cheap enough for many engine runs per test.
model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

Request req(RequestId id, Cycle arrival, std::size_t output_tokens,
            std::size_t input_tokens = 32, std::size_t model = 0) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.model = model;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  return r;
}

EngineConfig fast_config(std::size_t max_batch = 4,
                         std::size_t max_inflight = 8) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(
          AdmissionLimits{max_batch, max_inflight}))
      .manage_bandwidth(false);
}

TEST(ServingEngine, CompletesTraceWithOrderedLatencyPercentiles) {
  ServingEngine engine(small_cfg(), {tiny_model()}, fast_config());
  TraceConfig trace_cfg;
  trace_cfg.requests = 12;
  trace_cfg.arrival_rate_per_s = 2000.0;  // heavy contention on the tiny chip
  trace_cfg.input_tokens = 32;
  trace_cfg.min_output_tokens = 2;
  trace_cfg.max_output_tokens = 12;
  const auto result = engine.run(poisson_trace(trace_cfg));

  EXPECT_EQ(result.completed, 12u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_GT(result.makespan, 0u);
  EXPECT_GT(result.tokens_per_second, 0.0);
  EXPECT_GT(result.dram_utilization, 0.0);
  EXPECT_LE(result.dram_utilization, 1.0);
  EXPECT_GT(result.p50_latency_ms, 0.0);
  // Tail ordering invariant: p99 >= p95 >= p50.
  EXPECT_GE(result.p95_latency_ms, result.p50_latency_ms);
  EXPECT_GE(result.p99_latency_ms, result.p95_latency_ms);
  EXPECT_GT(result.mean_decode_batch, 1.0);  // contention actually batched
  EXPECT_DOUBLE_EQ(result.slo_attainment, 1.0);  // no deadlines in the trace
  EXPECT_EQ(result.prefill_jobs, 12u);  // monolithic: one CC job per request

  for (const RequestRecord& rec : engine.records()) {
    EXPECT_TRUE(rec.done);
    EXPECT_FALSE(rec.rejected);
    EXPECT_EQ(rec.tokens_generated, rec.request.output_tokens);
    EXPECT_EQ(rec.prefill_chunks, 1u);
    EXPECT_GE(rec.prefill_start, rec.request.arrival);
    EXPECT_GT(rec.prefill_end, rec.prefill_start);
    EXPECT_GE(rec.first_token, rec.prefill_end);
    EXPECT_GE(rec.finish, rec.first_token);
  }
}

TEST(ServingEngine, RequestArrivingMidDecodePrefillsBeforeBatchDrains) {
  // Probe run: when does a lone long request decode?
  ServingEngine probe(small_cfg(), {tiny_model()}, fast_config());
  probe.run({req(0, 0, 48)});
  const RequestRecord lone = probe.records()[0];
  ASSERT_GT(lone.finish, lone.prefill_end);

  // Real run: a short request lands squarely inside the decode window.
  const Cycle mid_decode = lone.first_token + (lone.finish - lone.first_token) / 2;
  ServingEngine engine(small_cfg(), {tiny_model()}, fast_config());
  engine.run({req(0, 0, 48), req(1, mid_decode, 4)});
  const RequestRecord& first = engine.records()[0];
  const RequestRecord& joiner = engine.records()[1];

  // Continuous batching: the joiner's prefill runs on the CC lane while
  // the first request's decode batch is still draining on the MC lane,
  // and its decode starts before that batch finishes.
  EXPECT_GE(joiner.prefill_start, joiner.request.arrival);
  EXPECT_LT(joiner.prefill_start, first.finish);
  EXPECT_LT(joiner.first_token, first.finish);
}

TEST(ServingEngine, AdmissionDefersWhenBatchAndInflightAreFull) {
  // max_inflight == max_decode_batch == 2: a third simultaneous request
  // may only be admitted once one of the first two retires.
  ServingEngine engine(small_cfg(), {tiny_model()}, fast_config(2, 2));
  engine.run({req(0, 0, 24), req(1, 0, 24), req(2, 0, 4)});
  const auto& records = engine.records();
  const Cycle earliest_finish =
      std::min(records[0].finish, records[1].finish);
  EXPECT_GE(records[2].admitted, earliest_finish);
  EXPECT_GE(records[2].prefill_start, earliest_finish);
}

TEST(ServingEngine, ContinuousBatchingBeatsSequentialOnMakespan) {
  std::vector<Request> trace;
  for (std::size_t i = 0; i < 8; ++i) {
    trace.push_back(req(i, i * 1000, 12));
  }
  ServingEngine batched(small_cfg(), {tiny_model()}, fast_config(4, 8));
  const auto continuous = batched.run(trace);
  ServingEngine serial(small_cfg(), {tiny_model()}, fast_config(1, 1));
  const auto sequential = serial.run(trace);

  EXPECT_LT(continuous.makespan, sequential.makespan);
  EXPECT_GT(continuous.tokens_per_second, sequential.tokens_per_second);
  EXPECT_DOUBLE_EQ(sequential.mean_decode_batch, 1.0);
}

TEST(ServingEngine, ReplayIsDeterministic) {
  TraceConfig trace_cfg;
  trace_cfg.requests = 6;
  trace_cfg.arrival_rate_per_s = 1000.0;
  trace_cfg.input_tokens = 32;
  trace_cfg.min_output_tokens = 2;
  trace_cfg.max_output_tokens = 8;

  ServingEngine a(small_cfg(), {tiny_model()}, fast_config());
  const auto ra = a.run(poisson_trace(trace_cfg));
  ServingEngine b(small_cfg(), {tiny_model()}, fast_config());
  const auto rb = b.run(poisson_trace(trace_cfg));

  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.decode_steps, rb.decode_steps);
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].finish, b.records()[i].finish);
  }
}

TEST(ServingEngine, BandwidthManagementRebalancesUnderLoad) {
  TraceConfig trace_cfg;
  trace_cfg.requests = 8;
  trace_cfg.arrival_rate_per_s = 2000.0;
  trace_cfg.input_tokens = 32;
  trace_cfg.min_output_tokens = 8;
  trace_cfg.max_output_tokens = 24;

  EngineConfig config = fast_config();
  config.manage_bandwidth(true).rebalance_interval(50'000);
  ServingEngine engine(small_cfg(), {tiny_model()}, std::move(config));
  const auto result = engine.run(poisson_trace(trace_cfg));
  EXPECT_EQ(result.completed, 8u);
  EXPECT_GT(result.rebalances, 0u);
}

TEST(ServingEngine, FiresCompletionCallbacksInFinishOrder) {
  ServingEngine engine(small_cfg(), {tiny_model()}, fast_config());
  std::vector<RequestId> completions;
  Cycle last_finish = 0;
  engine.set_completion_callback([&](const RequestRecord& rec) {
    completions.push_back(rec.request.id);
    EXPECT_GE(rec.finish, last_finish);
    last_finish = rec.finish;
  });
  engine.run({req(0, 0, 16), req(1, 100, 2), req(2, 200, 6)});
  EXPECT_EQ(completions.size(), 3u);
}

TEST(ServingEngine, ServesMultipleModelsInOneBatchCycle) {
  model::MllmConfig second = tiny_model();
  second.name = "tiny-mllm-2";
  second.llm.d_ffn = 768;
  ServingEngine engine(small_cfg(), {tiny_model(), second}, fast_config());
  engine.run({req(0, 0, 8, 32, 0), req(1, 0, 8, 32, 1), req(2, 0, 6, 32, 0)});
  for (const RequestRecord& rec : engine.records()) {
    EXPECT_TRUE(rec.done);
  }
}

TEST(ServingEngine, ValidatesRequestsAndLifecycle) {
  EXPECT_THROW(ServingEngine(small_cfg(), {}, fast_config()),
               std::invalid_argument);

  ServingEngine engine(small_cfg(), {tiny_model()}, fast_config());
  EXPECT_THROW(engine.run({}), std::invalid_argument);

  ServingEngine dup(small_cfg(), {tiny_model()}, fast_config());
  EXPECT_THROW(dup.run({req(3, 0, 4), req(3, 10, 4)}), std::invalid_argument);

  ServingEngine zero(small_cfg(), {tiny_model()}, fast_config());
  EXPECT_THROW(zero.run({req(0, 0, 0)}), std::invalid_argument);

  ServingEngine oob(small_cfg(), {tiny_model()}, fast_config());
  EXPECT_THROW(oob.run({req(0, 0, 4, 32, /*model=*/5)}), std::invalid_argument);

  ServingEngine once(small_cfg(), {tiny_model()}, fast_config());
  once.run({req(0, 0, 2)});
  EXPECT_THROW(once.run({req(1, 0, 2)}), std::logic_error);
}

TEST(ServingEngine, ReplayTraceFactoryReturnsResultAndRecords) {
  std::size_t callbacks = 0;
  const auto outcome = replay_trace(
      small_cfg(), {tiny_model()}, fast_config(),
      {req(0, 0, 4), req(1, 100, 2)},
      [&callbacks](const RequestRecord&) { ++callbacks; });
  EXPECT_EQ(outcome.result.completed, 2u);
  EXPECT_EQ(outcome.records.size(), 2u);
  EXPECT_TRUE(outcome.records[0].done);
  EXPECT_EQ(callbacks, 2u);

  // The factory replay matches a manual one-shot engine exactly.
  ServingEngine manual(small_cfg(), {tiny_model()}, fast_config());
  const auto reference = manual.run({req(0, 0, 4), req(1, 100, 2)});
  EXPECT_EQ(outcome.result.makespan, reference.makespan);
}

TEST(ServingEngine, SloPolicyRejectsHopelessRequestsUnderBacklog) {
  // Request 1's deadline is one cycle after arrival; with request 0's
  // long prefill + decode backlog ahead of it, no estimate can fit, so
  // the SLO-aware scheduler rejects instead of serving it late.
  EngineConfig config =
      EngineConfig()
          .scheduler(std::make_shared<SloAwarePolicy>(AdmissionLimits{2, 4}))
          .manage_bandwidth(false);
  Request hopeless = req(1, 1000, 8, 256);
  hopeless.deadline = hopeless.arrival + 1;
  ServingEngine engine(small_cfg(), {tiny_model()}, std::move(config));
  const auto result = engine.run({req(0, 0, 32, 256), hopeless});

  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_TRUE(engine.records()[1].rejected);
  EXPECT_FALSE(engine.records()[1].done);
  EXPECT_EQ(result.with_deadline, 1u);
  EXPECT_EQ(result.slo_attained, 0u);
  EXPECT_DOUBLE_EQ(result.slo_attainment, 0.0);
  EXPECT_TRUE(engine.records()[0].done);
}

TEST(ServingEngine, GenerousDeadlinesAreAttained) {
  EngineConfig config =
      EngineConfig()
          .scheduler(std::make_shared<SloAwarePolicy>(AdmissionLimits{2, 4}))
          .manage_bandwidth(false);
  Request relaxed = req(0, 0, 4);
  relaxed.deadline = 1'000'000'000;  // 1 s at 1 GHz: trivially feasible
  ServingEngine engine(small_cfg(), {tiny_model()}, std::move(config));
  const auto result = engine.run({relaxed});
  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.slo_attained, 1u);
  EXPECT_DOUBLE_EQ(result.slo_attainment, 1.0);
  EXPECT_TRUE(engine.records()[0].deadline_met());
}

TEST(ServingEngine, KvCapacityDefersJoinsUntilReleased) {
  // Capacity fits exactly one request's KV cache: the second prefilled
  // request must wait for the first to retire before joining the batch.
  const model::MllmConfig m = tiny_model();
  const Bytes per_request = kv_footprint_bytes(req(0, 0, 8), m);
  EngineConfig config = fast_config().kv_capacity_bytes(per_request);
  ServingEngine engine(small_cfg(), {m}, std::move(config));
  const auto result = engine.run({req(0, 0, 8), req(1, 0, 8)});

  EXPECT_EQ(result.completed, 2u);
  EXPECT_GT(result.kv_deferrals, 0u);
  ASSERT_NE(engine.kv_tracker(), nullptr);
  EXPECT_EQ(engine.kv_tracker()->reserved(), 0u);  // all released at the end
  // Serialized decode: the second request's first token comes after the
  // first request fully retired.
  EXPECT_GE(engine.records()[1].first_token, engine.records()[0].finish);
  EXPECT_DOUBLE_EQ(result.mean_decode_batch, 1.0);
}

TEST(ServingEngine, OversizedKvRequestIsRejectedUpFront) {
  const model::MllmConfig m = tiny_model();
  const Bytes too_small = kv_footprint_bytes(req(0, 0, 8), m) - 1;
  ServingEngine engine(small_cfg(), {m},
                       fast_config().kv_capacity_bytes(too_small));
  EXPECT_THROW(engine.run({req(0, 0, 8)}), std::invalid_argument);
}

TEST(ServingEngine, TaskProxyPruningDerivesPerModelKeepFractions) {
  TaskProxyPruningOptions proxy;
  proxy.proxy.tokens = 2;
  proxy.max_proxy_channels = 128;
  proxy.max_proxy_layers = 4;
  EngineConfig config = fast_config().task_proxy_pruning(proxy);
  ServingEngine engine(small_cfg(), {tiny_model()}, std::move(config));
  const double keep = engine.keep_fraction(0);
  EXPECT_GE(keep, proxy.min_keep_fraction);
  EXPECT_LE(keep, 1.0);
  EXPECT_DOUBLE_EQ(keep, derive_keep_fraction(tiny_model(), proxy));

  const auto result = engine.run({req(0, 0, 6), req(1, 100, 4)});
  EXPECT_EQ(result.completed, 2u);
  for (const RequestRecord& rec : engine.records()) {
    EXPECT_DOUBLE_EQ(rec.prune_keep_fraction, keep);
  }
}

/// Test-only scheduler that records the FIRST estimated_service each
/// request is judged with (then admits everything). Not a real policy —
/// the out-pointer makes it impure on purpose.
class ServiceEstimateProbe final : public SchedulerPolicy {
 public:
  explicit ServiceEstimateProbe(std::map<RequestId, Cycle>* out) : out_(out) {}
  const char* name() const override { return "service-estimate-probe"; }
  AdmissionVerdict admit(const Request& r,
                         const AdmissionContext& ctx) const override {
    out_->emplace(r.id, ctx.estimated_service);
    return AdmissionVerdict::kAdmit;
  }
  std::size_t decode_join_count(std::size_t,
                                std::size_t ready) const override {
    return ready;
  }

 private:
  std::map<RequestId, Cycle>* out_;
};

TEST(ServingEngine, PerModelEstimatorsIsolateLightModelFromHeavyCoTenant) {
  // The admission EWMAs are per model: a heavy co-tenant's measured
  // chunks and decode steps must not move a light model's
  // estimated_service. A light request judged after the heavy traffic
  // drained gets EXACTLY the estimate it would get in an engine that
  // never served the heavy model (engine-global estimators would have
  // folded the heavy measurements into it, inflating the estimate into
  // spurious SLO rejections).
  model::MllmConfig heavy = tiny_model();
  heavy.name = "heavy-mllm";
  heavy.llm.d_ffn = 4096;
  heavy.llm.layers = 4;
  const std::vector<model::MllmConfig> zoo = {tiny_model(), heavy};
  const Request h0 = req(0, 0, 16, 128, 1);
  const Request h1 = req(1, 0, 12, 128, 1);

  // Probe replay: when has the heavy traffic fully drained?
  ServingEngine drain_probe(small_cfg(), zoo, fast_config());
  drain_probe.run({h0, h1});
  Cycle drained = 0;
  for (const RequestRecord& rec : drain_probe.records()) {
    drained = std::max(drained, rec.finish);
  }
  const Request light = req(2, drained + 10'000, 8, 64, 0);

  std::map<RequestId, Cycle> mixed_estimates;
  ServingEngine mixed(small_cfg(), zoo,
                      EngineConfig()
                          .scheduler(std::make_shared<ServiceEstimateProbe>(
                              &mixed_estimates))
                          .manage_bandwidth(false));
  mixed.run({h0, h1, light});

  std::map<RequestId, Cycle> alone_estimates;
  ServingEngine alone(small_cfg(), zoo,
                      EngineConfig()
                          .scheduler(std::make_shared<ServiceEstimateProbe>(
                              &alone_estimates))
                          .manage_bandwidth(false));
  alone.run({light});

  ASSERT_TRUE(mixed_estimates.count(light.id));
  ASSERT_TRUE(alone_estimates.count(light.id));
  EXPECT_EQ(mixed_estimates.at(light.id), alone_estimates.at(light.id));
  // The heavy model really is heavier: its own estimate dwarfs the
  // light one (so the equality above is not vacuous).
  EXPECT_GT(mixed_estimates.at(h0.id), mixed_estimates.at(light.id));
}

// The deprecated ServingOptions shim must keep compiling and behave
// exactly like EngineConfig::from_legacy.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ServingEngine, DeprecatedServingOptionsShimMatchesFromLegacy) {
  ServingOptions options;
  options.admission = AdmissionLimits{4, 8};
  options.manage_bandwidth = false;
  const std::vector<Request> trace = {req(0, 0, 6), req(1, 500, 4)};

  ServingEngine legacy(small_cfg(), {tiny_model()}, options);
  const auto via_shim = legacy.run(trace);
  ServingEngine modern(small_cfg(), {tiny_model()},
                       EngineConfig::from_legacy(options));
  const auto via_config = modern.run(trace);

  EXPECT_EQ(via_shim.makespan, via_config.makespan);
  EXPECT_EQ(via_shim.decode_steps, via_config.decode_steps);
  for (std::size_t i = 0; i < legacy.records().size(); ++i) {
    EXPECT_EQ(legacy.records()[i].finish, modern.records()[i].finish);
  }
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace edgemm::serve
