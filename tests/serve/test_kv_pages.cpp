#include "serve/kv_pages.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "serve/serving_engine.hpp"
#include "serve/sweep.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

// tiny_model(): kv_bytes_per_token = 2 layers * 2 (K+V) * 256 * 2 B = 2048.
constexpr Bytes kTokenBytes = 2048;
// 4 tokens per page throughout the engine-level tests.
constexpr Bytes kPage = 4 * kTokenBytes;

Request req(RequestId id, std::size_t input_tokens, std::size_t output_tokens,
            std::size_t prefix_id = 0, std::size_t prefix_tokens = 0) {
  Request r;
  r.id = id;
  r.arrival = 0;
  r.model = 0;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  r.prefix_id = prefix_id;
  r.prefix_tokens = prefix_tokens;
  return r;
}

EngineConfig fast_config(std::size_t max_batch = 4,
                         std::size_t max_inflight = 8) {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(
          AdmissionLimits{max_batch, max_inflight}))
      .manage_bandwidth(false);
}

EngineConfig paged_config(Bytes budget, std::size_t max_batch = 4) {
  return fast_config(max_batch)
      .kv_capacity_bytes(budget)
      .paged_kv(true)
      .kv_page_bytes(kPage);
}

// --- Helper math ------------------------------------------------------------

TEST(KvPageMath, PrefixKeySeparatesModelsAndGroups) {
  EXPECT_EQ(kv_prefix_key(0, 0), 0u);
  EXPECT_EQ(kv_prefix_key(3, 0), 0u);  // no group, whatever the model
  EXPECT_NE(kv_prefix_key(0, 1), 0u);
  EXPECT_NE(kv_prefix_key(0, 1), kv_prefix_key(1, 1));  // per-model namespaces
  EXPECT_NE(kv_prefix_key(0, 1), kv_prefix_key(0, 2));
}

TEST(KvPageMath, TokensPerPageIsAtLeastOne) {
  const model::MllmConfig m = tiny_model();
  ASSERT_EQ(model::kv_bytes_per_token(m), kTokenBytes);
  EXPECT_EQ(kv_tokens_per_page(m, kPage), 4u);
  // A page smaller than one token still holds one token (never zero).
  EXPECT_EQ(kv_tokens_per_page(m, 1), 1u);
  EXPECT_THROW(kv_tokens_per_page(m, 0), std::invalid_argument);
}

TEST(KvPageMath, SharedPrefixPagesCountsFullPagesOnly) {
  const model::MllmConfig m = tiny_model();
  EXPECT_EQ(kv_shared_prefix_pages(req(0, 32, 8), m, kPage), 0u);  // no group
  // 7 prefix tokens at 4 tokens/page: one full page; the partial page is
  // the CoW boundary and stays private.
  EXPECT_EQ(kv_shared_prefix_pages(req(0, 32, 8, 1, 7), m, kPage), 1u);
  EXPECT_EQ(kv_shared_prefix_pages(req(0, 32, 8, 1, 8), m, kPage), 2u);
  EXPECT_EQ(kv_shared_prefix_pages(req(0, 32, 8, 1, 3), m, kPage), 0u);
}

TEST(KvPageMath, PageFootprintRoundsUpPrivateTail) {
  const model::MllmConfig m = tiny_model();
  // 32 + 8 = 40 tokens at 4/page: 10 pages, sharing off.
  EXPECT_EQ(kv_page_footprint(req(0, 32, 8), m, kPage, false), 10u);
  // 37 tokens round up to 10 pages too.
  EXPECT_EQ(kv_page_footprint(req(0, 32, 5), m, kPage, false), 10u);
  // With sharing, the 8 shared prefix pages are counted once plus the
  // private tail: 8 shared + ceil(8/4) private = 10.
  EXPECT_EQ(kv_page_footprint(req(0, 32, 8, 1, 32), m, kPage, true), 10u);
  // Sharing disabled ignores the prefix annotation.
  EXPECT_EQ(kv_page_footprint(req(0, 32, 8, 1, 32), m, kPage, false), 10u);
}

// --- SwapPolicy -------------------------------------------------------------

TEST(LruSwapPolicy, OrdersColdestFirstWithIdTiebreak) {
  LruSwapPolicy lru;
  EXPECT_STREQ(lru.name(), "lru");
  std::vector<SwapCandidate> candidates;
  candidates.push_back({/*id=*/7, 2, /*last_touch=*/900, 10, 5});
  candidates.push_back({/*id=*/3, 2, /*last_touch=*/100, 10, 5});
  candidates.push_back({/*id=*/9, 2, /*last_touch=*/100, 10, 5});
  const auto order = lru.victim_order(candidates);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3u);  // coldest; id breaks the 100-tie
  EXPECT_EQ(order[1], 9u);
  EXPECT_EQ(order[2], 7u);
}

// --- KvPageAllocator: construction and exact fill ---------------------------

TEST(KvPageAllocator, ValidatesConstruction) {
  EXPECT_THROW(KvPageAllocator(1024, 0), std::invalid_argument);
  EXPECT_THROW(KvPageAllocator(1023, 1024), std::invalid_argument);
  KvPageAllocator pages(4096 + 100, 1024);  // partial page is unusable
  EXPECT_EQ(pages.total_pages(), 4u);
  EXPECT_EQ(pages.page_bytes(), 1024u);
  EXPECT_EQ(pages.free_pages(), 4u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, ExactFillSucceedsAtPageGranularity) {
  KvPageAllocator pages(4 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 4));
  EXPECT_EQ(pages.free_pages(), 0u);
  EXPECT_EQ(pages.resident_pages(), 4u);
  EXPECT_EQ(pages.resident_bytes(), 4096u);
  EXPECT_EQ(pages.holders(), 1u);
  EXPECT_EQ(pages.deferrals(), 0u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, OnePageOverDefersAllOrNothing) {
  KvPageAllocator pages(4 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 3));
  // 2 pages into 1 free: the join takes nothing at all.
  EXPECT_FALSE(pages.try_join(2, 2));
  EXPECT_EQ(pages.deferrals(), 1u);
  EXPECT_EQ(pages.resident_pages(), 3u);
  EXPECT_EQ(pages.holders(), 1u);
  EXPECT_FALSE(pages.holds(2));
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, AppendGrowsOnePageAndFailsCleanlyWhenFull) {
  KvPageAllocator pages(3 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 1));
  EXPECT_TRUE(pages.try_append(1));
  EXPECT_TRUE(pages.try_append(1));
  EXPECT_EQ(pages.resident_pages_of(1), 3u);
  EXPECT_FALSE(pages.try_append(1));  // full; appends do not count deferrals
  EXPECT_EQ(pages.deferrals(), 0u);
  EXPECT_EQ(pages.pages_allocated(), 3u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, RejectsDuplicateAndUnknownIds) {
  KvPageAllocator pages(4 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 1));
  EXPECT_THROW(pages.try_join(1, 1), std::logic_error);
  EXPECT_THROW(pages.try_append(2), std::logic_error);
  EXPECT_THROW(pages.swap_out(2), std::logic_error);
  EXPECT_THROW(pages.try_swap_in(1), std::logic_error);  // resident, not out
  EXPECT_THROW(pages.release(2), std::logic_error);
  pages.release(1);
  EXPECT_THROW(pages.release(1), std::logic_error);
}

TEST(KvPageAllocator, PeakResidentTracksHighWater) {
  KvPageAllocator pages(4 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 2));
  EXPECT_TRUE(pages.try_join(2, 2));
  pages.release(1);
  pages.release(2);
  EXPECT_EQ(pages.resident_bytes(), 0u);
  EXPECT_EQ(pages.peak_resident_bytes(), 4096u);
  EXPECT_EQ(pages.pages_allocated(), 4u);
  EXPECT_EQ(pages.pages_freed(), 4u);
  EXPECT_TRUE(pages.conserved());
}

// --- KvPageAllocator: copy-on-write prefix sharing --------------------------

TEST(KvPageAllocator, RidersAttachToTheSharedRunWithoutReallocating) {
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 1, key, 3));  // first attacher pays 3 + 1
  EXPECT_EQ(pages.resident_pages(), 4u);
  EXPECT_TRUE(pages.try_join(2, 1, key, 3));  // rider pays only its page
  EXPECT_EQ(pages.resident_pages(), 5u);
  EXPECT_EQ(pages.shared_refcount(key), 2u);
  EXPECT_EQ(pages.shared_attaches(), 1u);
  EXPECT_EQ(pages.shared_pages_saved(), 3u);
  EXPECT_EQ(pages.pages_allocated(), 5u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, SharedRunPagesAreFreedExactlyOnce) {
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 1, key, 3));
  EXPECT_TRUE(pages.try_join(2, 2, key, 3));
  pages.release(1);  // run survives: rider 2 still references it
  EXPECT_EQ(pages.shared_refcount(key), 1u);
  EXPECT_EQ(pages.pages_freed(), 1u);  // only request 1's private page
  EXPECT_EQ(pages.resident_pages(), 5u);
  pages.release(2);  // last holder frees the run exactly once
  EXPECT_EQ(pages.shared_refcount(key), 0u);
  EXPECT_EQ(pages.pages_freed(), pages.pages_allocated());
  EXPECT_EQ(pages.resident_pages(), 0u);
  EXPECT_EQ(pages.holders(), 0u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, DistinctPrefixGroupsDoNotShare) {
  KvPageAllocator pages(8 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 1, kv_prefix_key(0, 1), 2));
  EXPECT_TRUE(pages.try_join(2, 1, kv_prefix_key(0, 2), 2));
  EXPECT_EQ(pages.shared_attaches(), 0u);
  EXPECT_EQ(pages.resident_pages(), 6u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, ZeroPrivatePagesJoinRidesTheRunAlone) {
  // A request whose whole prompt is the shared prefix holds no private
  // page at join and grows its first one with the first generated token.
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 0, key, 4));
  EXPECT_EQ(pages.resident_pages_of(1), 0u);
  EXPECT_EQ(pages.resident_pages(), 4u);
  EXPECT_TRUE(pages.try_append(1));
  EXPECT_EQ(pages.resident_pages_of(1), 1u);
  pages.release(1);
  EXPECT_EQ(pages.pages_freed(), 5u);
  EXPECT_TRUE(pages.conserved());
}

// --- KvPageAllocator: DRAM swap ---------------------------------------------

TEST(KvPageAllocator, SwapRoundTripConservesPagesAtEveryProbe) {
  KvPageAllocator pages(4 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 3));
  EXPECT_TRUE(pages.try_join(2, 1));
  ASSERT_TRUE(pages.conserved());

  EXPECT_EQ(pages.swap_out(1), 3u);
  EXPECT_EQ(pages.resident_pages(), 1u);
  EXPECT_EQ(pages.swapped_pages(), 3u);
  EXPECT_EQ(pages.swapped_pages_of(1), 3u);
  EXPECT_EQ(pages.pages_swapped_out(), 3u);
  EXPECT_EQ(pages.preemptions(), 1u);
  ASSERT_TRUE(pages.conserved());

  // Freed CIM is reusable while request 1 sits in DRAM.
  EXPECT_TRUE(pages.try_append(2));
  EXPECT_TRUE(pages.try_append(2));
  EXPECT_FALSE(pages.try_swap_in(1));  // 3 needed, 1 free
  ASSERT_TRUE(pages.conserved());

  pages.release(2);
  EXPECT_TRUE(pages.try_swap_in(1));
  EXPECT_EQ(pages.swapped_pages(), 0u);
  EXPECT_EQ(pages.resident_pages_of(1), 3u);
  EXPECT_EQ(pages.pages_swapped_in(), 3u);
  EXPECT_EQ(pages.swap_refetch_bytes(), 3u * 1024u);  // re-fetch charged
  ASSERT_TRUE(pages.conserved());

  pages.release(1);
  EXPECT_EQ(pages.pages_freed(), pages.pages_allocated());
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, ReleaseWhileSwappedFreesWithoutRefetch) {
  KvPageAllocator pages(4 * 1024, 1024);
  EXPECT_TRUE(pages.try_join(1, 2));
  pages.swap_out(1);
  pages.release(1);  // retired straight out of DRAM
  EXPECT_EQ(pages.swapped_pages(), 0u);
  EXPECT_EQ(pages.pages_freed(), 2u);
  EXPECT_EQ(pages.swap_refetch_bytes(), 0u);
  EXPECT_EQ(pages.holders(), 0u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, SharedRunFollowsItsLastResidentHolderToDram) {
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 1, key, 3));
  EXPECT_TRUE(pages.try_join(2, 1, key, 3));
  pages.swap_out(1);
  // Request 2 still decodes against the run: it must stay resident.
  EXPECT_EQ(pages.resident_pages(), 4u);  // run 3 + request 2's page
  pages.swap_out(2);
  // Last resident holder left: the run must not squat on the CIM budget.
  EXPECT_EQ(pages.resident_pages(), 0u);
  EXPECT_EQ(pages.swapped_pages(), 5u);  // 2 private + 3 run pages
  EXPECT_TRUE(pages.conserved());

  // Swapping one holder back in refills the run with it (and charges the
  // re-fetch for both).
  EXPECT_TRUE(pages.try_swap_in(1));
  EXPECT_EQ(pages.resident_pages(), 4u);
  EXPECT_EQ(pages.swap_refetch_bytes(), 4u * 1024u);
  EXPECT_TRUE(pages.conserved());
  pages.release(1);
  pages.release(2);
  EXPECT_EQ(pages.pages_freed(), pages.pages_allocated());
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, SwappedRunIsFreedOnceWhenLastHolderRetires) {
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 1, key, 3));
  pages.swap_out(1);  // run follows to DRAM
  EXPECT_EQ(pages.swapped_pages(), 4u);
  pages.release(1);
  EXPECT_EQ(pages.pages_freed(), 4u);  // run freed from DRAM, exactly once
  EXPECT_EQ(pages.swapped_pages(), 0u);
  EXPECT_EQ(pages.shared_refcount(key), 0u);
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, RiderJoinRefillsASwappedRunAndChargesRefetch) {
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 1, key, 3));
  pages.swap_out(1);
  EXPECT_EQ(pages.resident_pages(), 0u);
  // A new rider needs the run resident: its join refills it from DRAM.
  EXPECT_TRUE(pages.try_join(2, 1, key, 3));
  EXPECT_EQ(pages.resident_pages(), 4u);  // run back + rider's page
  EXPECT_EQ(pages.swapped_pages(), 1u);   // request 1's private page stays
  EXPECT_EQ(pages.swap_refetch_bytes(), 3u * 1024u);
  EXPECT_EQ(pages.shared_attaches(), 1u);
  EXPECT_TRUE(pages.conserved());
  pages.release(2);
  pages.release(1);
  EXPECT_EQ(pages.pages_freed(), pages.pages_allocated());
  EXPECT_TRUE(pages.conserved());
}

TEST(KvPageAllocator, AppendGrowsThePrivateTailNeverTheSharedRun) {
  // Decode tokens land in a holder's PRIVATE tail: appending must leave
  // the shared run untouched so co-riders see an immutable prefix.
  KvPageAllocator pages(8 * 1024, 1024);
  const KvPrefixKey key = kv_prefix_key(0, 1);
  EXPECT_TRUE(pages.try_join(1, 1, key, 3));
  EXPECT_TRUE(pages.try_join(2, 1, key, 3));
  const std::size_t allocated_before = pages.pages_allocated();
  EXPECT_TRUE(pages.try_append(1));
  EXPECT_EQ(pages.pages_allocated(), allocated_before + 1);
  EXPECT_EQ(pages.resident_pages_of(1), 2u);  // private tail grew
  EXPECT_EQ(pages.resident_pages_of(2), 1u);  // co-rider unaffected
  EXPECT_EQ(pages.shared_refcount(key), 2u);  // run membership unchanged
  EXPECT_EQ(pages.shared_pages_saved(), 3u);  // no new saving was minted
  EXPECT_TRUE(pages.conserved());
  pages.release(1);
  // The appended private page frees with its owner; the run survives
  // for the remaining rider.
  EXPECT_EQ(pages.pages_freed(), 2u);
  EXPECT_EQ(pages.shared_refcount(key), 1u);
  pages.release(2);
  EXPECT_EQ(pages.pages_freed(), pages.pages_allocated());
  EXPECT_TRUE(pages.conserved());
}

// --- ServingEngine: paged mode ----------------------------------------------

TEST(PagedServing, ReplayDrainsEveryPageAndConservesTheLedger) {
  EngineConfig config = paged_config(40 * kPage);
  ServingEngine engine(small_cfg(), {tiny_model()}, std::move(config));
  const ServingResult result = engine.run(
      {req(0, 32, 8), req(1, 32, 8), req(2, 32, 4), req(3, 16, 12)});
  EXPECT_EQ(result.completed, 4u);
  ASSERT_NE(engine.kv_pages(), nullptr);
  EXPECT_EQ(engine.kv_pages()->holders(), 0u);
  EXPECT_EQ(engine.kv_pages()->resident_pages(), 0u);
  EXPECT_GT(result.kv_pages_allocated, 0u);
  EXPECT_EQ(result.kv_pages_allocated, result.kv_pages_freed);
  EXPECT_GT(result.peak_kv_reserved_bytes, 0u);
  EXPECT_TRUE(engine.kv_pages()->conserved());
  // Legacy tracker is not built in paged mode.
  EXPECT_EQ(engine.kv_tracker(), nullptr);
}

TEST(PagedServing, GrowPerTokenPeaksNoHigherThanWholeFootprints) {
  // Page-aligned shapes (multiples of 4 tokens) so page rounding cannot
  // mask the comparison: the paged peak counts only pages written so
  // far, the legacy peak charges every request's full footprint at join.
  const std::vector<Request> trace = {req(0, 32, 8), req(1, 32, 8),
                                      req(2, 16, 4)};
  const Bytes budget = 64 * kPage;  // generous: no deferrals either way
  const auto legacy = replay_trace(small_cfg(), {tiny_model()},
                                   fast_config().kv_capacity_bytes(budget),
                                   trace);
  const auto paged =
      replay_trace(small_cfg(), {tiny_model()}, paged_config(budget), trace);
  EXPECT_EQ(paged.result.completed, 3u);
  EXPECT_GT(paged.result.peak_kv_reserved_bytes, 0u);
  EXPECT_LE(paged.result.peak_kv_reserved_bytes,
            legacy.result.peak_kv_reserved_bytes);
  EXPECT_EQ(legacy.result.kv_deferrals, 0u);
  EXPECT_EQ(paged.result.kv_deferrals, 0u);
}

TEST(PagedServing, PrefixSharingSustainsMoreConcurrencyAtEqualBudget) {
  // Two conversation turns over one 64-token shared prefix, 8 output
  // tokens each. Whole footprint: 72 tokens = 18 pages per request; the
  // 20-page budget fits only ONE whole footprint, so the legacy tracker
  // serializes. Paged + sharing: 16 shared pages + two 2-page private
  // tails = 20 pages — both decode together.
  const std::vector<Request> trace = {req(0, 64, 8, 1, 64),
                                      req(1, 64, 8, 1, 64)};
  const Bytes budget = 20 * kPage;
  const auto legacy = replay_trace(small_cfg(), {tiny_model()},
                                   fast_config().kv_capacity_bytes(budget),
                                   trace);
  const auto paged =
      replay_trace(small_cfg(), {tiny_model()}, paged_config(budget), trace);
  EXPECT_EQ(legacy.result.peak_decode_batch, 1u);
  EXPECT_GT(legacy.result.kv_deferrals, 0u);
  EXPECT_EQ(paged.result.peak_decode_batch, 2u);
  EXPECT_EQ(paged.result.kv_deferrals, 0u);
  EXPECT_EQ(paged.result.kv_shared_attaches, 1u);
  EXPECT_EQ(paged.result.kv_shared_pages_saved, 16u);
  EXPECT_EQ(paged.result.kv_pages_swapped_out, 0u);  // exact fit, no swap
  EXPECT_LT(paged.result.makespan, legacy.result.makespan);
  EXPECT_EQ(paged.result.kv_pages_allocated, paged.result.kv_pages_freed);
}

TEST(PagedServing, PartialBoundaryPageIsCowForkedPrivately) {
  // 62 prefix tokens = 15 full shared pages + a 2-token boundary that
  // every rider must copy privately before writing its own tokens.
  const std::vector<Request> trace = {req(0, 64, 8, 1, 62),
                                      req(1, 64, 8, 1, 62)};
  const auto paged = replay_trace(small_cfg(), {tiny_model()},
                                  paged_config(64 * kPage), trace);
  EXPECT_EQ(paged.result.completed, 2u);
  EXPECT_EQ(paged.result.kv_cow_forks, 2u);
  EXPECT_EQ(paged.result.kv_shared_pages_saved, 15u);
}

TEST(PagedServing, SharingOffIgnoresPrefixAnnotations) {
  const std::vector<Request> trace = {req(0, 64, 8, 1, 64),
                                      req(1, 64, 8, 1, 64)};
  EngineConfig config = paged_config(64 * kPage).kv_prefix_sharing(false);
  const auto out =
      replay_trace(small_cfg(), {tiny_model()}, std::move(config), trace);
  EXPECT_EQ(out.result.completed, 2u);
  EXPECT_EQ(out.result.kv_shared_attaches, 0u);
  EXPECT_EQ(out.result.kv_shared_pages_saved, 0u);
  EXPECT_EQ(out.result.kv_cow_forks, 0u);
  EXPECT_EQ(out.result.kv_pages_allocated, out.result.kv_pages_freed);
}

TEST(PagedServing, TightBudgetSwapsToDramAndStillCompletes) {
  // 18 pages hold exactly one whole footprint; two concurrent growers
  // must preempt each other's tails to DRAM and refill.
  const std::vector<Request> trace = {req(0, 64, 8, 1, 64),
                                      req(1, 64, 8, 1, 64)};
  const auto out = replay_trace(small_cfg(), {tiny_model()},
                                paged_config(18 * kPage), trace);
  EXPECT_EQ(out.result.completed, 2u);
  EXPECT_GT(out.result.kv_pages_swapped_out, 0u);
  EXPECT_GT(out.result.kv_pages_swapped_in, 0u);
  EXPECT_GT(out.result.kv_swap_preemptions, 0u);
  EXPECT_GT(out.result.kv_swap_refetch_bytes, 0u);
  // Exact conservation survives the whole preempt-and-refill churn.
  EXPECT_EQ(out.result.kv_pages_allocated, out.result.kv_pages_freed);
  for (const RequestRecord& rec : out.records) {
    EXPECT_TRUE(rec.done);
    EXPECT_EQ(rec.tokens_generated, rec.request.output_tokens);
  }
}

TEST(PagedServing, CustomSwapPolicySelectsItsOwnVictims) {
  // Evict the request with the MOST resident pages first (anti-LRU on
  // this workload): the seam must honor it without any engine change.
  class BiggestFirst : public SwapPolicy {
   public:
    const char* name() const override { return "biggest-first"; }
    std::vector<RequestId> victim_order(
        const std::vector<SwapCandidate>& candidates) const override {
      std::vector<SwapCandidate> sorted = candidates;
      std::sort(sorted.begin(), sorted.end(),
                [](const SwapCandidate& a, const SwapCandidate& b) {
                  if (a.resident_pages != b.resident_pages) {
                    return a.resident_pages > b.resident_pages;
                  }
                  return a.id < b.id;
                });
      std::vector<RequestId> order;
      for (const SwapCandidate& c : sorted) order.push_back(c.id);
      return order;
    }
  };
  const std::vector<Request> trace = {req(0, 64, 8, 1, 64),
                                      req(1, 64, 8, 1, 64)};
  EngineConfig config =
      paged_config(18 * kPage).kv_swap_policy(std::make_shared<BiggestFirst>());
  const auto out =
      replay_trace(small_cfg(), {tiny_model()}, std::move(config), trace);
  EXPECT_EQ(out.result.completed, 2u);
  EXPECT_GT(out.result.kv_swap_preemptions, 0u);
  EXPECT_EQ(out.result.kv_pages_allocated, out.result.kv_pages_freed);
}

TEST(PagedServing, ValidatesOversizedAndMalformedRequestsUpFront) {
  {
    // 10-page footprint into an 8-page budget: rejected before replay.
    ServingEngine engine(small_cfg(), {tiny_model()},
                         paged_config(8 * kPage));
    EXPECT_THROW(engine.run({req(0, 32, 8)}), std::invalid_argument);
  }
  {
    // prefix_tokens longer than the prompt is a malformed request.
    ServingEngine engine(small_cfg(), {tiny_model()},
                         paged_config(64 * kPage));
    EXPECT_THROW(engine.run({req(0, 32, 8, 1, 33)}), std::invalid_argument);
  }
}

// --- Legacy-mode byte identity ----------------------------------------------

TEST(PagedServing, LegacyModeIsTheDefaultAndStaysByteIdentical) {
  TraceConfig trace_cfg;
  trace_cfg.requests = 12;
  trace_cfg.arrival_rate_per_s = 2000.0;
  trace_cfg.input_tokens = 32;
  trace_cfg.min_output_tokens = 2;
  trace_cfg.max_output_tokens = 12;
  const auto trace = poisson_trace(trace_cfg);
  const Bytes budget = kv_footprint_bytes(req(0, 32, 12), tiny_model()) * 2;

  EngineConfig untouched = fast_config().kv_capacity_bytes(budget);
  EXPECT_FALSE(untouched.paged_kv());  // paging is strictly opt-in
  const auto baseline = replay_trace(small_cfg(), {tiny_model()},
                                     std::move(untouched), trace);
  // Explicit paged_kv(false) routes through the same KvCapacityTracker
  // and must replay bit-for-bit, whatever the other paged knobs say.
  EngineConfig legacy = fast_config()
                            .kv_capacity_bytes(budget)
                            .paged_kv(false)
                            .kv_page_bytes(kPage)
                            .kv_prefix_sharing(false);
  const auto explicit_off =
      replay_trace(small_cfg(), {tiny_model()}, std::move(legacy), trace);
  EXPECT_TRUE(results_identical(baseline.result, explicit_off.result));
  ASSERT_EQ(baseline.records.size(), explicit_off.records.size());
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    EXPECT_TRUE(record_identical(baseline.records[i], explicit_off.records[i]));
  }
  EXPECT_GT(baseline.result.kv_deferrals + 1, 0u);  // tracker path exercised
  EXPECT_EQ(baseline.result.kv_pages_allocated, 0u);  // no paging counters
}

TEST(PagedServing, GenerousBudgetMatchesLegacyScheduleExactly) {
  // With no deferrals in either mode the decode schedule is untouched:
  // every per-request timestamp must agree cycle-for-cycle (the result
  // structs differ only in the paging counters).
  const std::vector<Request> trace = {req(0, 32, 8), req(1, 32, 8),
                                      req(2, 16, 4), req(3, 32, 12)};
  const Bytes budget = 256 * kPage;
  const auto legacy = replay_trace(small_cfg(), {tiny_model()},
                                   fast_config().kv_capacity_bytes(budget),
                                   trace);
  const auto paged =
      replay_trace(small_cfg(), {tiny_model()}, paged_config(budget), trace);
  EXPECT_EQ(legacy.result.makespan, paged.result.makespan);
  EXPECT_EQ(legacy.result.decode_steps, paged.result.decode_steps);
  ASSERT_EQ(legacy.records.size(), paged.records.size());
  for (std::size_t i = 0; i < legacy.records.size(); ++i) {
    EXPECT_TRUE(record_identical(legacy.records[i], paged.records[i]));
  }
}

TEST(PagedServing, SweepOutcomeIsByteIdenticalAtAnyWorkerCount) {
  TraceConfig trace_cfg;
  trace_cfg.requests = 10;
  trace_cfg.arrival_rate_per_s = 4000.0;
  trace_cfg.input_tokens = 64;
  trace_cfg.min_output_tokens = 4;
  trace_cfg.max_output_tokens = 8;
  trace_cfg.prefix_groups = 2;
  trace_cfg.prefix_tokens = 64;
  const auto trace = poisson_trace(trace_cfg);

  auto cases = [&] {
    std::vector<SweepCase> grid;
    grid.push_back({"paged", small_cfg(), {tiny_model()},
                    paged_config(64 * kPage), trace});
    grid.push_back({"paged-tight", small_cfg(), {tiny_model()},
                    paged_config(20 * kPage), trace});
    grid.push_back({"paged-noshare", small_cfg(), {tiny_model()},
                    paged_config(64 * kPage).kv_prefix_sharing(false), trace});
    return grid;
  };
  SweepOptions sequential;
  sequential.workers = 1;
  const auto baseline = run_sweep(cases(), sequential);
  SweepOptions threaded;
  threaded.workers = 4;
  const auto parallel = run_sweep(cases(), threaded);
  ASSERT_EQ(baseline.size(), parallel.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(outcomes_identical(baseline[i], parallel[i]))
        << "case " << baseline[i].label << " diverged across workers";
  }
}

}  // namespace
}  // namespace edgemm::serve
