#include "serve/request_queue.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

Request req(RequestId id, Cycle arrival) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  return r;
}

TEST(RequestQueue, PopsInArrivalOrderRegardlessOfPushOrder) {
  RequestQueue q;
  q.push(req(2, 300));
  q.push(req(0, 100));
  q.push(req(1, 200));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().id, 0u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, BreaksArrivalTiesById) {
  RequestQueue q;
  q.push(req(7, 50));
  q.push(req(3, 50));
  q.push(req(5, 50));
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_EQ(q.pop().id, 5u);
  EXPECT_EQ(q.pop().id, 7u);
}

TEST(RequestQueue, ReadyRespectsArrivalCycle) {
  RequestQueue q;
  q.push(req(0, 1000));
  EXPECT_FALSE(q.ready(999));
  EXPECT_FALSE(q.pop_ready(999).has_value());
  EXPECT_TRUE(q.ready(1000));
  const auto popped = q.pop_ready(1000);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 0u);
  EXPECT_FALSE(q.pop_ready(1'000'000).has_value());  // now empty
}

TEST(RequestQueue, FrontAndPopThrowOnEmpty) {
  RequestQueue q;
  EXPECT_THROW(q.front(), std::out_of_range);
  EXPECT_THROW(q.pop(), std::out_of_range);
}

}  // namespace
}  // namespace edgemm::serve
