#include "serve/request_queue.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::serve {
namespace {

Request req(RequestId id, Cycle arrival) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  return r;
}

TEST(RequestQueue, PopsInArrivalOrderRegardlessOfPushOrder) {
  RequestQueue q;
  q.push(req(2, 300));
  q.push(req(0, 100));
  q.push(req(1, 200));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().id, 0u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, BreaksArrivalTiesById) {
  RequestQueue q;
  q.push(req(7, 50));
  q.push(req(3, 50));
  q.push(req(5, 50));
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_EQ(q.pop().id, 5u);
  EXPECT_EQ(q.pop().id, 7u);
}

TEST(RequestQueue, ReadyRespectsArrivalCycle) {
  RequestQueue q;
  q.push(req(0, 1000));
  EXPECT_FALSE(q.ready(999));
  EXPECT_FALSE(q.pop_ready(999).has_value());
  EXPECT_TRUE(q.ready(1000));
  const auto popped = q.pop_ready(1000);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 0u);
  EXPECT_FALSE(q.pop_ready(1'000'000).has_value());  // now empty
}

TEST(RequestQueue, FrontAndPopThrowOnEmpty) {
  RequestQueue q;
  EXPECT_THROW(q.front(), std::out_of_range);
  EXPECT_THROW(q.pop(), std::out_of_range);
}

Request deadline_req(RequestId id, Cycle arrival, Cycle deadline) {
  Request r = req(id, arrival);
  r.deadline = deadline;
  return r;
}

TEST(RequestQueue, QueueOrderToString) {
  EXPECT_STREQ(to_string(QueueOrder::kArrival), "arrival");
  EXPECT_STREQ(to_string(QueueOrder::kDeadline), "deadline");
  EXPECT_EQ(RequestQueue().order(), QueueOrder::kArrival);
}

TEST(RequestQueue, DefaultOrderIgnoresDeadlines) {
  // kArrival must behave exactly as before the knob existed, deadlines
  // or not — the byte-identity contract of the default engine.
  RequestQueue q;
  q.push(deadline_req(0, 100, 9000));
  q.push(deadline_req(1, 200, 500));  // urgent but later-arriving
  ASSERT_TRUE(q.ready(200));
  EXPECT_EQ(q.pop().id, 0u);
  EXPECT_EQ(q.pop().id, 1u);
}

TEST(RequestQueue, DeadlineOrderPopsEarliestDeadlineAmongArrived) {
  RequestQueue q(QueueOrder::kDeadline);
  q.push(deadline_req(0, 100, 9000));
  q.push(deadline_req(1, 150, 500));
  q.push(deadline_req(2, 120, 4000));
  ASSERT_TRUE(q.ready(150));
  EXPECT_EQ(q.front().id, 1u);  // tightest deadline wins
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_EQ(q.pop().id, 0u);
}

TEST(RequestQueue, DeadlineOrderHidesRequestsUntilTheyArrive) {
  RequestQueue q(QueueOrder::kDeadline);
  q.push(deadline_req(0, 100, 9000));
  q.push(deadline_req(1, 5000, 500));  // urgent, but far in the future
  ASSERT_TRUE(q.ready(100));
  EXPECT_EQ(q.front().id, 0u);  // the urgent one has not arrived yet
  const auto popped = q.pop_ready(100);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 0u);
  ASSERT_TRUE(q.ready(5000));
  EXPECT_EQ(q.pop().id, 1u);
}

TEST(RequestQueue, DeadlineOrderSortsNoDeadlineLast) {
  RequestQueue q(QueueOrder::kDeadline);
  q.push(deadline_req(0, 10, 0));  // no SLO
  q.push(deadline_req(1, 20, 800));
  q.push(deadline_req(2, 30, 0));  // no SLO, later arrival
  ASSERT_TRUE(q.ready(30));
  EXPECT_EQ(q.pop().id, 1u);
  // Both deadline-free: ties break by (arrival, id).
  EXPECT_EQ(q.pop().id, 0u);
  EXPECT_EQ(q.pop().id, 2u);
}

TEST(RequestQueue, DeadlineOrderBreaksTiesByArrivalThenId) {
  RequestQueue q(QueueOrder::kDeadline);
  q.push(deadline_req(7, 50, 1000));
  q.push(deadline_req(3, 40, 1000));
  q.push(deadline_req(5, 40, 1000));
  ASSERT_TRUE(q.ready(50));
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_EQ(q.pop().id, 5u);
  EXPECT_EQ(q.pop().id, 7u);
}

}  // namespace
}  // namespace edgemm::serve
