// ClusterEngine: multi-chip sharded serving (PR 6).
//
// Router level: the three RouterPolicy implementations judged against
// hand-built RouterContexts. Config level: ClusterConfig validation.
// Cluster level: 1-chip replica identity with the single engine,
// worker-count byte-identity in both modes, deterministic re-runs, the
// split-phase engines (prefill-only / decode-only), and exact KV-byte
// conservation across the disaggregated link.
#include "serve/cluster/cluster_engine.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "serve/admission.hpp"
#include "serve/cluster/router.hpp"
#include "serve/sweep.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model(const char* name = "tiny-mllm") {
  model::MllmConfig m;
  m.name = name;
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

std::vector<Request> zoo_trace(std::size_t requests = 16) {
  TraceConfig cfg;
  cfg.requests = requests;
  cfg.arrival_rate_per_s = 2000.0;
  cfg.input_tokens = 48;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 8;
  cfg.model_weights = {2.0, 1.0};
  return poisson_trace(cfg);
}

EngineConfig fast_engine() {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .manage_bandwidth(false)
      .replay_mode(core::ReplayMode::kFast);
}

std::vector<model::MllmConfig> two_models() {
  return {tiny_model("model-a"), tiny_model("model-b")};
}

RouterContext ctx_with_costs(std::vector<double> costs) {
  RouterContext ctx;
  for (const double c : costs) {
    ChipLoad load;
    load.estimated_cost = c;
    load.per_model.assign(2, 0);
    ctx.chips.push_back(load);
  }
  return ctx;
}

// --- Routers ----------------------------------------------------------------

TEST(Routers, RoundRobinCyclesByTotalAssigned) {
  RoundRobinRouter router;
  RouterContext ctx = ctx_with_costs({0, 0, 0});
  Request r;
  EXPECT_EQ(router.route(r, ctx), 0u);
  ctx.chips[0].assigned_requests = 1;
  EXPECT_EQ(router.route(r, ctx), 1u);
  ctx.chips[1].assigned_requests = 1;
  EXPECT_EQ(router.route(r, ctx), 2u);
  ctx.chips[2].assigned_requests = 1;
  EXPECT_EQ(router.route(r, ctx), 0u);
}

TEST(Routers, LeastLoadedPicksTheCheapestChipTiesLowIndex) {
  LeastLoadedRouter router;
  Request r;
  EXPECT_EQ(router.route(r, ctx_with_costs({500, 100, 300})), 1u);
  EXPECT_EQ(router.route(r, ctx_with_costs({200, 200, 300})), 0u);
}

TEST(Routers, ModelAffinityHomesThenSpillsPastTheFactor)  {
  ModelAffinityRouter router(/*spill_factor=*/1.0);
  Request r;
  r.model = 1;
  r.input_tokens = 10;
  r.crops = 1;
  r.output_tokens = 10;  // route cost 20
  // Homeless model: fall through to least-loaded.
  RouterContext ctx = ctx_with_costs({300, 100, 200});
  EXPECT_EQ(router.route(r, ctx), 1u);
  // Homed on chip 0, backlog gap 200 > 1.0 x 20: spill to the cheapest.
  ctx.chips[0].per_model[1] = 3;
  EXPECT_EQ(router.route(r, ctx), 1u);
  // Within the spill allowance the home chip wins despite its backlog.
  ModelAffinityRouter tolerant(/*spill_factor=*/100.0);
  EXPECT_EQ(tolerant.route(r, ctx), 0u);
  // The chip with MORE of this model's requests is the home.
  ctx.chips[2].per_model[1] = 5;
  EXPECT_EQ(tolerant.route(r, ctx), 2u);
}

TEST(Routers, EmptyContextAndBadSpillFactorThrow) {
  RouterContext empty;
  Request r;
  EXPECT_THROW(RoundRobinRouter().route(r, empty), std::invalid_argument);
  EXPECT_THROW(LeastLoadedRouter().route(r, empty), std::invalid_argument);
  EXPECT_THROW(ModelAffinityRouter().route(r, empty), std::invalid_argument);
  EXPECT_THROW(ModelAffinityRouter(-0.5), std::invalid_argument);
}

// --- ClusterConfig ----------------------------------------------------------

TEST(ClusterConfig, ValidatesComposition) {
  EXPECT_THROW(ClusterConfig().chips(0), std::invalid_argument);
  EXPECT_THROW(ClusterConfig().prefill_chips(0), std::invalid_argument);
  EXPECT_THROW(ClusterConfig().router(nullptr), std::invalid_argument);
  ClusterConfig one_chip_disagg;
  one_chip_disagg.mode(ClusterMode::kDisaggregated);
  EXPECT_THROW(one_chip_disagg.validate(), std::invalid_argument);
  ClusterConfig all_prefill;
  all_prefill.chips(2).mode(ClusterMode::kDisaggregated).prefill_chips(2);
  EXPECT_THROW(all_prefill.validate(), std::invalid_argument);
  ClusterConfig good;
  good.chips(2).mode(ClusterMode::kDisaggregated).prefill_chips(1);
  EXPECT_NO_THROW(good.validate());
}

// --- Replica mode -----------------------------------------------------------

TEST(Cluster, OneChipReplicaIsTheSingleEngineBitForBit) {
  const auto trace = zoo_trace();
  const auto single =
      replay_trace(small_cfg(), two_models(), fast_engine(), trace);
  const ClusterOutcome cluster = run_cluster(
      small_cfg(), two_models(), fast_engine(), ClusterConfig{}, trace);

  ASSERT_EQ(cluster.result.per_chip.size(), 1u);
  EXPECT_TRUE(results_identical(cluster.result.per_chip[0], single.result));
  ASSERT_EQ(cluster.records.size(), single.records.size());
  for (std::size_t i = 0; i < single.records.size(); ++i) {
    EXPECT_TRUE(record_identical(cluster.records[i], single.records[i]));
  }
  // The aggregate recomputation lands on the very same numbers.
  EXPECT_EQ(cluster.result.completed, single.result.completed);
  EXPECT_EQ(cluster.result.makespan, single.result.makespan);
  EXPECT_EQ(cluster.result.p99_latency_ms, single.result.p99_latency_ms);
  EXPECT_EQ(cluster.result.tokens_per_second, single.result.tokens_per_second);
  EXPECT_EQ(cluster.result.mean_latency_ms, single.result.mean_latency_ms);
  EXPECT_EQ(cluster.result.routed_per_chip, (std::vector<std::size_t>{16}));
  // Replica mode never touches the link ledger.
  EXPECT_EQ(cluster.result.kv_transfers, 0u);
  EXPECT_EQ(cluster.result.kv_bytes_sent, 0u);
}

TEST(Cluster, ReplicaShardsServeTheWholeTraceOnce) {
  const auto trace = zoo_trace();
  ClusterConfig config;
  config.chips(3).router(std::make_shared<LeastLoadedRouter>());
  const ClusterOutcome out = run_cluster(small_cfg(), two_models(),
                                         fast_engine(), config, trace);
  EXPECT_EQ(out.result.chips, 3u);
  EXPECT_EQ(out.result.completed, trace.size());
  ASSERT_EQ(out.result.routed_per_chip.size(), 3u);
  std::size_t routed = 0;
  for (const std::size_t n : out.result.routed_per_chip) routed += n;
  EXPECT_EQ(routed, trace.size());
  // Every record came back merged, in original trace order.
  ASSERT_EQ(out.records.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(out.records[i].request.id, trace[i].id);
    EXPECT_EQ(out.records[i].request.arrival, trace[i].arrival);
    EXPECT_TRUE(out.records[i].done);
  }
}

TEST(Cluster, ReplicaOutcomeIsByteIdenticalAtAnyWorkerCount) {
  const auto trace = zoo_trace();
  auto run_with = [&](std::size_t workers, std::size_t chips) {
    ClusterConfig config;
    config.chips(chips)
        .router(std::make_shared<ModelAffinityRouter>())
        .workers(workers);
    return run_cluster(small_cfg(), two_models(), fast_engine(), config,
                       trace);
  };
  const ClusterOutcome sequential = run_with(1, 4);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_TRUE(cluster_outcomes_identical(sequential, run_with(workers, 4)))
        << workers << " workers diverged";
  }
  // And re-running the same composition reproduces it exactly.
  EXPECT_TRUE(cluster_outcomes_identical(sequential, run_with(1, 4)));
}

// --- Split-phase engines ----------------------------------------------------

TEST(EnginePhases, PrefillOnlyRetiresAtPrefillEndWithNoDecode) {
  EngineConfig config = fast_engine();
  config.phase(EnginePhase::kPrefillOnly);
  const auto out =
      replay_trace(small_cfg(), two_models(), config, zoo_trace(8));
  EXPECT_EQ(out.result.completed, 8u);
  for (const RequestRecord& rec : out.records) {
    EXPECT_TRUE(rec.done);
    EXPECT_GT(rec.prefill_end, rec.prefill_start);
    EXPECT_EQ(rec.finish, rec.prefill_end);
    EXPECT_EQ(rec.tokens_generated, 0u);
  }
}

TEST(EnginePhases, DecodeOnlySkipsPrefillAndGeneratesEveryToken) {
  EngineConfig config = fast_engine();
  config.phase(EnginePhase::kDecodeOnly);
  const auto trace = zoo_trace(8);
  const auto out = replay_trace(small_cfg(), two_models(), config, trace);
  EXPECT_EQ(out.result.completed, 8u);
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    const RequestRecord& rec = out.records[i];
    EXPECT_TRUE(rec.done);
    EXPECT_EQ(rec.prefill_start, rec.prefill_end);  // no prefill priced
    EXPECT_EQ(rec.prefill_chunks, 0u);
    EXPECT_EQ(rec.tokens_generated, trace[i].output_tokens);
    EXPECT_GT(rec.finish, rec.request.arrival);
  }
}

// --- Disaggregated mode -----------------------------------------------------

ClusterConfig disagg_config(std::size_t chips, std::size_t prefill,
                            std::size_t workers = 1) {
  ClusterConfig config;
  config.chips(chips)
      .mode(ClusterMode::kDisaggregated)
      .prefill_chips(prefill)
      .router(std::make_shared<LeastLoadedRouter>())
      .workers(workers);
  return config;
}

TEST(Cluster, DisaggregatedConservesKvBytesExactly) {
  const auto trace = zoo_trace();
  const auto models = two_models();
  const ClusterOutcome out = run_cluster(small_cfg(), models, fast_engine(),
                                         disagg_config(4, 2), trace);
  EXPECT_EQ(out.result.completed, trace.size());
  EXPECT_EQ(out.result.kv_transfers, trace.size());
  // Exact conservation at the drain probe: everything sent has landed.
  EXPECT_GT(out.result.kv_migration_bytes, 0u);
  EXPECT_EQ(out.result.kv_bytes_in_flight, 0u);
  EXPECT_EQ(out.result.kv_bytes_sent,
            out.result.kv_migration_bytes + out.result.kv_bytes_in_flight);
  // And the total is the sum of every shipped request's KV footprint.
  Bytes expected = 0;
  for (const Request& r : trace) {
    expected += static_cast<Bytes>(r.input_tokens) *
                model::kv_bytes_per_token(models[r.model]);
  }
  EXPECT_EQ(out.result.kv_bytes_sent, expected);
  EXPECT_GT(out.result.link_occupancy, 0.0);
}

TEST(Cluster, DecodeTierNeverRejectsAMigratedKv) {
  // Probe run (no deadlines) to learn each request's first-token time,
  // then replay with deadlines that land just past it: at decode-tier
  // admission the remaining budget cannot cover the estimated decode, so
  // an SLO policy would REJECT — stranding KV bytes the prefill chip and
  // the link already paid for. The hand-off contract forbids that: a
  // decode tier expresses backpressure by deferring, never rejecting.
  const auto models = two_models();
  TraceConfig trace_cfg;
  trace_cfg.requests = 8;
  trace_cfg.arrival_rate_per_s = 500.0;  // no prefill-side backlog
  trace_cfg.input_tokens = 48;
  trace_cfg.min_output_tokens = 4;
  trace_cfg.max_output_tokens = 8;
  trace_cfg.model_weights = {2.0, 1.0};
  auto trace = poisson_trace(trace_cfg);

  // Lenient slack keeps the prefill tier's bootstrap estimate (which
  // overshoots the true prefill latency) from rejecting up front; the
  // deadline is then pinned BEFORE the probed first token, so by the
  // time the KV lands on the decode chip the budget is provably blown
  // regardless of what the decode-side estimator says.
  EngineConfig slo_engine =
      fast_engine().scheduler(std::make_shared<SloAwarePolicy>(
          AdmissionLimits{4, 8}, SloAwarePolicy::Options{0.25}));
  const ClusterOutcome probe = run_cluster(small_cfg(), models, slo_engine,
                                           disagg_config(3, 1), trace);
  ASSERT_EQ(probe.result.completed, trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Cycle to_first = probe.records[i].first_token - trace[i].arrival;
    trace[i].deadline = trace[i].arrival + to_first - to_first / 4;
  }

  const ClusterOutcome out = run_cluster(small_cfg(), models, slo_engine,
                                         disagg_config(3, 1), trace);
  // Prefill admission (deadline comfortably past the prefill estimate)
  // lets every request through; the decode tier then finds the deadline
  // hopeless — and must serve it anyway.
  EXPECT_EQ(out.result.rejected, 0u);
  EXPECT_EQ(out.result.completed, trace.size());
  EXPECT_EQ(out.result.kv_transfers, trace.size());
  for (const RequestRecord& rec : out.records) EXPECT_TRUE(rec.done);
}

TEST(Cluster, HandoffReservationConservesKvBytesUnderBackpressure) {
  // Decode-tier KV budget below the concurrent hand-off demand: the
  // reservation made at admission (the hand-off charge) must defer
  // later arrivals instead of overcommitting, and every byte must drain
  // by the end — on the link AND in the decode chips' trackers.
  const auto models = two_models();
  const auto trace = zoo_trace(12);
  Bytes max_footprint = 0;
  for (const Request& r : trace) {
    max_footprint =
        std::max(max_footprint, kv_footprint_bytes(r, models[r.model]));
  }
  EngineConfig engine =
      fast_engine().kv_capacity_bytes(max_footprint + max_footprint / 2);
  const ClusterOutcome out = run_cluster(small_cfg(), models, engine,
                                         disagg_config(2, 1), trace);
  EXPECT_EQ(out.result.completed, trace.size());
  EXPECT_EQ(out.result.rejected, 0u);
  // Link conservation: everything sent has landed by the drain probe.
  EXPECT_EQ(out.result.kv_bytes_in_flight, 0u);
  EXPECT_EQ(out.result.kv_bytes_sent, out.result.kv_migration_bytes);
  // Chip 1 is the lone decode chip: its tracker was the contended one.
  ASSERT_EQ(out.result.per_chip.size(), 2u);
  EXPECT_GT(out.result.per_chip[1].kv_deferrals, 0u);  // backpressure, not rejects
  EXPECT_GT(out.result.per_chip[1].peak_kv_reserved_bytes, 0u);
  EXPECT_LE(out.result.per_chip[1].peak_kv_reserved_bytes,
            max_footprint + max_footprint / 2);
  // The prefill tier never touches KV accounting.
  EXPECT_EQ(out.result.per_chip[0].peak_kv_reserved_bytes, 0u);
}

TEST(Cluster, DisaggregatedPagedKvConservesPagesExactly) {
  // Paged mode across the chip link: prefix annotations survive the
  // hand-off, riders attach on the decode chip, and the decode chip's
  // page ledger conserves exactly through the replay.
  const auto models = two_models();
  TraceConfig trace_cfg;
  trace_cfg.requests = 10;
  trace_cfg.arrival_rate_per_s = 2000.0;
  trace_cfg.input_tokens = 48;
  trace_cfg.min_output_tokens = 4;
  trace_cfg.max_output_tokens = 8;
  trace_cfg.model_weights = {2.0, 1.0};
  trace_cfg.prefix_groups = 1;  // one conversation group: maximal sharing
  trace_cfg.prefix_tokens = 48;
  const auto trace = poisson_trace(trace_cfg);

  const Bytes page = 4 * model::kv_bytes_per_token(models[0]);
  EngineConfig engine = fast_engine()
                            .kv_capacity_bytes(64 * page)
                            .paged_kv(true)
                            .kv_page_bytes(page);
  const ClusterOutcome out = run_cluster(small_cfg(), models, engine,
                                         disagg_config(2, 1), trace);
  EXPECT_EQ(out.result.completed, trace.size());
  EXPECT_EQ(out.result.rejected, 0u);
  EXPECT_EQ(out.result.kv_bytes_in_flight, 0u);
  ASSERT_EQ(out.result.per_chip.size(), 2u);
  const ServingResult& decode_chip = out.result.per_chip[1];
  EXPECT_GT(decode_chip.kv_pages_allocated, 0u);
  EXPECT_EQ(decode_chip.kv_pages_allocated, decode_chip.kv_pages_freed);
  EXPECT_GT(decode_chip.kv_shared_attaches, 0u);  // prefix crossed the link
  EXPECT_GT(decode_chip.kv_shared_pages_saved, 0u);
  // The prefill tier allocates no pages at all.
  EXPECT_EQ(out.result.per_chip[0].kv_pages_allocated, 0u);
}

TEST(Cluster, DisaggregatedRecordsSpliceBothPhases) {
  const auto trace = zoo_trace();
  const ClusterOutcome out = run_cluster(small_cfg(), two_models(),
                                         fast_engine(), disagg_config(3, 1),
                                         trace);
  const core::ChipConfig cfg = small_cfg();
  ASSERT_EQ(out.records.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const RequestRecord& rec = out.records[i];
    // Original arrival preserved: latency spans prefill + link + decode.
    EXPECT_EQ(rec.request.arrival, trace[i].arrival);
    EXPECT_TRUE(rec.done);
    EXPECT_GT(rec.prefill_end, 0u);
    // The decode side cannot start before the KV crossed the link.
    EXPECT_GE(rec.finish, rec.prefill_end + cfg.chip_link_latency);
    EXPECT_EQ(rec.tokens_generated, trace[i].output_tokens);
  }
  // Tier layout: prefill chip then decode chips.
  ASSERT_EQ(out.result.routed_per_chip.size(), 3u);
  EXPECT_EQ(out.result.routed_per_chip[0], trace.size());
  EXPECT_EQ(out.result.routed_per_chip[1] + out.result.routed_per_chip[2],
            trace.size());
}

TEST(Cluster, DisaggregatedOutcomeIsByteIdenticalAtAnyWorkerCount) {
  const auto trace = zoo_trace();
  auto run_with = [&](std::size_t workers) {
    return run_cluster(small_cfg(), two_models(), fast_engine(),
                       disagg_config(4, 2, workers), trace);
  };
  const ClusterOutcome sequential = run_with(1);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_TRUE(cluster_outcomes_identical(sequential, run_with(workers)))
        << workers << " workers diverged";
  }
}

TEST(Cluster, RunsUnmodifiedOnTheDetailedTier) {
  // Same composition, detailed replay tier: the cluster only replicates
  // the engine config, so ReplayMode::kDetailed flows through.
  EngineConfig detailed = fast_engine();
  detailed.replay_mode(core::ReplayMode::kDetailed);
  const auto trace = zoo_trace(6);
  const ClusterOutcome replica = run_cluster(
      small_cfg(), two_models(), detailed, ClusterConfig{}.chips(2), trace);
  EXPECT_EQ(replica.result.completed, 6u);
  const ClusterOutcome disagg = run_cluster(
      small_cfg(), two_models(), detailed, disagg_config(2, 1), trace);
  EXPECT_EQ(disagg.result.completed, 6u);
  EXPECT_EQ(disagg.result.kv_bytes_in_flight, 0u);
}

// --- Argument validation ----------------------------------------------------

TEST(Cluster, RejectsBadArguments) {
  const auto models = two_models();
  EXPECT_THROW(run_cluster(small_cfg(), models, fast_engine(),
                           ClusterConfig{}, {}),
               std::invalid_argument);
  // The cluster owns the phase split.
  EngineConfig split = fast_engine();
  split.phase(EnginePhase::kPrefillOnly);
  EXPECT_THROW(run_cluster(small_cfg(), models, split, ClusterConfig{},
                           zoo_trace(4)),
               std::invalid_argument);
  // A request naming a model the cluster does not serve.
  auto trace = zoo_trace(4);
  trace[2].model = 7;
  EXPECT_THROW(run_cluster(small_cfg(), models, fast_engine(),
                           ClusterConfig{}, trace),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::serve
