#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/gpu_model.hpp"
#include "serve/cluster/cluster_engine.hpp"
#include "serve/serving_engine.hpp"
#include "serve/sweep.hpp"
#include "serve/trace.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

/// Prefill-heavy trace: long prompts, short outputs — the operating
/// point where shipping prefill to a fat backend can pay.
std::vector<Request> long_prefill_trace(std::size_t requests = 8) {
  TraceConfig cfg;
  cfg.requests = requests;
  cfg.arrival_rate_per_s = 2000.0;
  cfg.input_tokens = 640;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 8;
  return poisson_trace(cfg);
}

EngineConfig base_config() {
  return EngineConfig()
      .scheduler(std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .prefill_planner(std::make_shared<ChunkedPrefill>(128))
      .manage_bandwidth(false);
}

TEST(Offload, NoOffloadWithFatBackendIsByteIdenticalToNoBackend) {
  // An idle fat backend must be free: configuring the GPU while the
  // policy never routes to it leaves the replay bit-identical — result
  // AND every record — to an engine with no fat backend at all.
  const auto trace = long_prefill_trace();
  const auto plain =
      replay_trace(small_cfg(), {tiny_model()}, base_config(), trace);
  const auto with_gpu = replay_trace(
      small_cfg(), {tiny_model()},
      base_config().fat_backend(baselines::GpuSpec{}), trace);

  EXPECT_TRUE(results_identical(plain.result, with_gpu.result));
  ASSERT_EQ(plain.records.size(), with_gpu.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_TRUE(record_identical(plain.records[i], with_gpu.records[i]));
  }
  EXPECT_EQ(with_gpu.result.offloaded_chunks, 0u);
  EXPECT_EQ(with_gpu.result.fat_bytes_moved, 0u);
  EXPECT_EQ(with_gpu.result.kv_return_transfers, 0u);
}

TEST(Offload, PrefillToFatShipsKvBackWithExactConservation) {
  const auto trace = long_prefill_trace();
  const auto out = replay_trace(
      small_cfg(), {tiny_model()},
      base_config()
          .fat_backend(baselines::GpuSpec{})
          .offload_policy(std::make_shared<PrefillToFat>(512)),
      trace);
  const ServingResult& r = out.result;

  // Every long-prompt request offloaded its whole prefill; decode ran
  // locally, so all requests still completed.
  EXPECT_EQ(r.completed, trace.size());
  EXPECT_EQ(r.offloaded_requests, trace.size());
  EXPECT_GT(r.offloaded_chunks, 0u);
  EXPECT_GT(r.fat_bytes_moved, 0u);
  EXPECT_GT(r.fat_kernel_launches, 0u);

  // The KV return link ledger conserves exactly: one shipment per
  // offloaded request, everything sent has landed, nothing in flight at
  // the drained probe.
  EXPECT_EQ(r.kv_return_transfers, r.offloaded_requests);
  EXPECT_GT(r.kv_return_bytes_sent, 0u);
  EXPECT_EQ(r.kv_return_bytes_sent,
            r.kv_return_bytes_landed + r.kv_return_bytes_in_flight);
  EXPECT_EQ(r.kv_return_bytes_in_flight, 0u);

  // Per-record ledger agrees with the aggregate.
  std::size_t chunk_sum = 0;
  for (const RequestRecord& rec : out.records) {
    EXPECT_TRUE(rec.done);
    chunk_sum += rec.offloaded_chunks;
    EXPECT_EQ(rec.prefill_chunks > 0, true);
  }
  EXPECT_EQ(chunk_sum, r.offloaded_chunks);
}

TEST(Offload, OffloadedRequestsNeverPinWeights) {
  // The pin/offload exclusion: a chunk0-fat request skips weight
  // pinning entirely (the fat backend has no TCDM residency), so a
  // policy that offloads everything leaves the residency ledger empty.
  const auto trace = long_prefill_trace();
  const auto out = replay_trace(
      small_cfg(), {tiny_model()},
      base_config()
          .prefill_planner(std::make_shared<ResidentChunkedPrefill>(128))
          .weight_residency_bytes(Bytes{1} << 30)
          .fat_backend(baselines::GpuSpec{})
          .offload_policy(std::make_shared<PrefillToFat>(0)),
      trace);
  EXPECT_EQ(out.result.offloaded_requests, trace.size());
  EXPECT_EQ(out.result.weight_pins, 0u);
  for (const RequestRecord& rec : out.records) {
    EXPECT_GT(rec.offloaded_chunks, 0u);
    EXPECT_EQ(rec.weight_pinned_layers, 0u);
  }
}

TEST(Offload, ThresholdOffloadUnderPressureIsDeterministic) {
  // Queue-pressure offload depends on live occupancy; two identical
  // replays must still make identical chunk-placement decisions.
  const auto trace = long_prefill_trace(12);
  auto config = [] {
    return base_config()
        .fat_backend(baselines::GpuSpec{})
        .offload_policy(std::make_shared<ThresholdOffload>(2));
  };
  const auto a = replay_trace(small_cfg(), {tiny_model()}, config(), trace);
  const auto b = replay_trace(small_cfg(), {tiny_model()}, config(), trace);

  EXPECT_TRUE(results_identical(a.result, b.result));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_TRUE(record_identical(a.records[i], b.records[i]));
  }
  // The pressure threshold actually split: some chunks went fat, but
  // not all of them (the whole point of chunk-granular placement).
  std::size_t total_chunks = 0;
  for (const RequestRecord& rec : a.records) total_chunks += rec.prefill_chunks;
  EXPECT_GT(a.result.offloaded_chunks, 0u);
  EXPECT_LT(a.result.offloaded_chunks, total_chunks);
}

TEST(Offload, SweepIsByteIdenticalAcrossWorkerCounts) {
  const auto trace = long_prefill_trace(10);
  std::vector<SweepCase> cases;
  for (const char* label : {"no-offload", "prefill-to-fat", "threshold"}) {
    SweepCase c;
    c.label = label;
    c.chip = small_cfg();
    c.models = {tiny_model()};
    c.engine = base_config().fat_backend(baselines::GpuSpec{});
    if (std::string(label) == "prefill-to-fat") {
      c.engine.offload_policy(std::make_shared<PrefillToFat>(512));
    } else if (std::string(label) == "threshold") {
      c.engine.offload_policy(std::make_shared<ThresholdOffload>(2));
    }
    c.requests = trace;
    cases.push_back(std::move(c));
  }
  const auto seq = run_sweep(cases, SweepOptions{1});
  const auto par = run_sweep(cases, SweepOptions{4});
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(outcomes_identical(seq[i], par[i]));
  }
}

TEST(Offload, ClusterChipsCanBeHeterogeneousPairs) {
  // Every chip of a replica cluster is an EdgeMM + GPU pair when the
  // shared EngineConfig carries a fat backend: each shard offloads its
  // long prefills independently and the ClusterResult sums the offload
  // and KV-return ledgers over the chips.
  const auto trace = long_prefill_trace(10);
  ClusterConfig cluster;
  cluster.chips(2).workers(2);
  const ClusterOutcome out = run_cluster(
      small_cfg(), {tiny_model()},
      base_config()
          .fat_backend(baselines::GpuSpec{})
          .offload_policy(std::make_shared<PrefillToFat>(512)),
      cluster, trace);

  EXPECT_EQ(out.result.completed, trace.size());
  EXPECT_EQ(out.result.offloaded_requests, trace.size());
  std::size_t chunks = 0, requests = 0;
  Bytes fat_bytes = 0, kv_back = 0;
  for (const ServingResult& r : out.result.per_chip) {
    requests += r.offloaded_requests;
    chunks += r.offloaded_chunks;
    fat_bytes += r.fat_bytes_moved;
    kv_back += r.kv_return_bytes_sent;
    // Every chip's own return link drained and conserved.
    EXPECT_EQ(r.kv_return_bytes_in_flight, 0u);
    EXPECT_EQ(r.kv_return_bytes_sent, r.kv_return_bytes_landed);
  }
  EXPECT_EQ(out.result.offloaded_requests, requests);
  EXPECT_EQ(out.result.offloaded_chunks, chunks);
  EXPECT_EQ(out.result.fat_bytes_moved, fat_bytes);
  EXPECT_EQ(out.result.kv_return_bytes, kv_back);
  EXPECT_GT(out.result.kv_return_bytes, 0u);
}

TEST(Offload, ConfigValidationGuardsTheSeam) {
  // An offloading policy without a fat backend to route to is rejected
  // at validate() — NoOffload stays fine.
  EngineConfig config = base_config().offload_policy(
      std::make_shared<PrefillToFat>(512));
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(base_config().validate());

  EXPECT_THROW(base_config().offload_policy(nullptr), std::invalid_argument);
  EXPECT_THROW(ThresholdOffload(0), std::invalid_argument);

  // fat_backend validates the spec eagerly.
  baselines::GpuSpec bad;
  bad.memory_bandwidth = 0.0;
  EXPECT_THROW(base_config().fat_backend(bad), std::invalid_argument);
}

}  // namespace
}  // namespace edgemm::serve
