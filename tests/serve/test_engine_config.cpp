#include "serve/engine_config.hpp"

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "model/mllm_config.hpp"

namespace edgemm::serve {
namespace {

TEST(EngineConfig, DefaultsReproducePr1Composition) {
  const EngineConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_STREQ(config.scheduler().name(), "concurrency");
  EXPECT_STREQ(config.prefill_planner().name(), "monolithic");
  EXPECT_STREQ(config.batch_policy().name(), "fifo");
  EXPECT_TRUE(config.manage_bandwidth());
  EXPECT_DOUBLE_EQ(config.prune_keep_fraction(), 1.0);
  EXPECT_EQ(config.kv_capacity(), 0u);  // accounting off
  EXPECT_EQ(config.weight_residency(), 0u);  // residency off
  EXPECT_FALSE(config.task_proxy_pruning().has_value());
  // PR 5 residency-placement defaults: the placement-oblivious baseline
  // with HONEST fill timing (the barrier defaults on — only the bench
  // baselines switch it off to reproduce the PR 4 optimistic numbers).
  EXPECT_STREQ(config.placement().name(), "keep-current");
  EXPECT_TRUE(config.rider_fill_barrier());
  EXPECT_TRUE(config.share_weight_pins());
  // PR 6 defaults: detailed tier, arrival-ordered queue, unbounded chains
  // — all three knobs off keeps the engine byte-identical to PR 5.
  EXPECT_EQ(config.replay_mode(), core::ReplayMode::kDetailed);
  EXPECT_FALSE(config.deadline_ordered_queue());
  EXPECT_EQ(config.lane_chain_limit(), 0u);
}

TEST(EngineConfig, ReplayAndQueueKnobsCompose) {
  const EngineConfig config = EngineConfig()
                                  .replay_mode(core::ReplayMode::kFast)
                                  .deadline_ordered_queue(true)
                                  .lane_chain_limit(3);
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.replay_mode(), core::ReplayMode::kFast);
  EXPECT_TRUE(config.deadline_ordered_queue());
  EXPECT_EQ(config.lane_chain_limit(), 3u);
}

TEST(EngineConfig, PlacementAndBarrierKnobsCompose) {
  const EngineConfig config =
      EngineConfig()
          .prefill_planner(std::make_shared<ResidentChunkedPrefill>(64))
          .weight_residency_bytes(1 << 24)
          .placement_policy(std::make_shared<DemandWeightedPlacement>())
          .rider_fill_barrier(false);
  EXPECT_NO_THROW(config.validate());
  EXPECT_STREQ(config.placement().name(), "demand-weighted");
  EXPECT_FALSE(config.rider_fill_barrier());
  EXPECT_STREQ(EvictIdleOnPressure{}.name(), "evict-idle");
}

TEST(EngineConfig, WeightResidencyRequiresAResidencyCapablePlanner) {
  // The budget composes with ResidentChunkedPrefill ...
  const EngineConfig resident =
      EngineConfig()
          .prefill_planner(std::make_shared<ResidentChunkedPrefill>(64))
          .weight_residency_bytes(1 << 20);
  EXPECT_NO_THROW(resident.validate());
  EXPECT_STREQ(resident.prefill_planner().name(), "resident-chunked");
  EXPECT_TRUE(resident.prefill_planner().chains_weight_residency());
  EXPECT_FALSE(resident.prefill_planner().prefers_lane_affinity());
  EXPECT_EQ(resident.weight_residency(), Bytes{1 << 20});
  // ... but a budget on a planner that re-fetches every chunk is a
  // composition error caught by validate().
  const EngineConfig miswired =
      EngineConfig()
          .prefill_planner(std::make_shared<ChunkedPrefill>(64))
          .weight_residency_bytes(1 << 20);
  EXPECT_THROW(miswired.validate(), std::invalid_argument);
  // Zero budget disables residency for any planner (the determinism
  // fallback), and the lane-affinity variant carries its flag.
  EXPECT_NO_THROW(EngineConfig()
                      .prefill_planner(std::make_shared<ChunkedPrefill>(64))
                      .validate());
  const ResidentChunkedPrefill chained(64, /*chain_lane_affinity=*/true);
  EXPECT_TRUE(chained.prefers_lane_affinity());
}

TEST(EngineConfig, BuilderComposesPolicies) {
  const EngineConfig config =
      EngineConfig()
          .scheduler(std::make_shared<SloAwarePolicy>(AdmissionLimits{4, 8}))
          .prefill_planner(std::make_shared<ChunkedPrefill>(64))
          .batch_policy(std::make_shared<ShortestRemainingFirst>())
          .manage_bandwidth(false)
          .prune_keep_fraction(0.5)
          .rebalance_interval(1234)
          .kv_capacity_bytes(1 << 20);
  EXPECT_NO_THROW(config.validate());
  EXPECT_STREQ(config.scheduler().name(), "slo-aware");
  EXPECT_STREQ(config.prefill_planner().name(), "chunked");
  EXPECT_STREQ(config.batch_policy().name(), "shortest-remaining-first");
  EXPECT_FALSE(config.manage_bandwidth());
  EXPECT_DOUBLE_EQ(config.prune_keep_fraction(), 0.5);
  EXPECT_EQ(config.rebalance_interval(), 1234u);
  EXPECT_EQ(config.kv_capacity(), Bytes{1 << 20});
}

TEST(EngineConfig, SettersValidateEagerly) {
  EngineConfig config;
  EXPECT_THROW(config.scheduler(nullptr), std::invalid_argument);
  EXPECT_THROW(config.prefill_planner(nullptr), std::invalid_argument);
  EXPECT_THROW(config.batch_policy(nullptr), std::invalid_argument);
  EXPECT_THROW(config.placement_policy(nullptr), std::invalid_argument);
  EXPECT_THROW(config.prune_keep_fraction(0.0), std::invalid_argument);
  EXPECT_THROW(config.prune_keep_fraction(-0.5), std::invalid_argument);
  EXPECT_THROW(config.prune_keep_fraction(1.5), std::invalid_argument);
  TaskProxyPruningOptions bad;
  bad.min_agreement = 1.5;
  EXPECT_THROW(config.task_proxy_pruning(bad), std::invalid_argument);
  bad.min_agreement = 0.9;
  bad.min_keep_fraction = 0.0;
  EXPECT_THROW(config.task_proxy_pruning(bad), std::invalid_argument);
}

TEST(EngineConfig, PagedKvDefaultsKeepLegacyAccounting) {
  const EngineConfig config;
  EXPECT_FALSE(config.paged_kv());  // whole-footprint tracker by default
  EXPECT_EQ(config.kv_page_bytes(), kDefaultKvPageBytes);
  EXPECT_TRUE(config.kv_prefix_sharing());  // engaged only once paged_kv on
  EXPECT_STREQ(config.kv_swap_policy().name(), "lru");
}

TEST(EngineConfig, PagedKvKnobsCompose) {
  const EngineConfig config = EngineConfig()
                                  .kv_capacity_bytes(1 << 20)
                                  .paged_kv(true)
                                  .kv_page_bytes(4096)
                                  .kv_prefix_sharing(false);
  EXPECT_NO_THROW(config.validate());
  EXPECT_TRUE(config.paged_kv());
  EXPECT_EQ(config.kv_page_bytes(), 4096u);
  EXPECT_FALSE(config.kv_prefix_sharing());
}

TEST(EngineConfig, PagedKvSettersValidateEagerly) {
  EngineConfig config;
  EXPECT_THROW(config.kv_page_bytes(0), std::invalid_argument);
  EXPECT_THROW(config.kv_swap_policy(nullptr), std::invalid_argument);
  // A paged budget smaller than one page cannot hold anything.
  EngineConfig tiny = EngineConfig()
                          .kv_capacity_bytes(1024)
                          .paged_kv(true)
                          .kv_page_bytes(4096);
  EXPECT_THROW(tiny.validate(), std::invalid_argument);
  // The same budget is fine in legacy mode or with a smaller page.
  EXPECT_NO_THROW(tiny.paged_kv(false).validate());
  EXPECT_NO_THROW(tiny.paged_kv(true).kv_page_bytes(1024).validate());
}

TEST(EngineConfig, FromLegacyMapsEveryServingOption) {
  ServingOptions options;
  options.admission = AdmissionLimits{2, 4};
  options.manage_bandwidth = false;
  options.policy.max_mc_ratio = 5;
  options.prune_keep_fraction = 0.7;
  options.rebalance_interval = 999;
  const EngineConfig config = EngineConfig::from_legacy(options);
  EXPECT_STREQ(config.scheduler().name(), "concurrency");
  EXPECT_STREQ(config.prefill_planner().name(), "monolithic");
  EXPECT_STREQ(config.batch_policy().name(), "fifo");
  EXPECT_FALSE(config.manage_bandwidth());
  EXPECT_EQ(config.bandwidth_policy().max_mc_ratio, 5u);
  EXPECT_DOUBLE_EQ(config.prune_keep_fraction(), 0.7);
  EXPECT_EQ(config.rebalance_interval(), 999u);
  // The legacy limits survive through the scheduler seam.
  EXPECT_EQ(config.scheduler().decode_join_count(0, 10), 2u);
}

TEST(DeriveKeepFraction, IsDeterministicAndBounded) {
  const model::MllmConfig model = model::sphinx_tiny();
  TaskProxyPruningOptions options;
  options.proxy.tokens = 2;  // keep the test fast
  options.max_proxy_channels = 128;
  options.max_proxy_layers = 4;
  const double a = derive_keep_fraction(model, options);
  const double b = derive_keep_fraction(model, options);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, options.min_keep_fraction);
  EXPECT_LE(a, 1.0);
}

TEST(DeriveKeepFraction, DiffersAcrossModels) {
  TaskProxyPruningOptions options;
  options.proxy.tokens = 2;
  options.max_proxy_channels = 128;
  options.max_proxy_layers = 4;
  // Different model names perturb the proxy seed, so the §IV-A accuracy
  // model is evaluated per model rather than once globally.
  const double sphinx = derive_keep_fraction(model::sphinx_tiny(), options);
  const double karma = derive_keep_fraction(model::karmavlm(), options);
  // Both are valid fractions; equality would only happen if the proxy
  // ignored the model, so assert the plumbing keeps them distinct.
  EXPECT_NE(sphinx, karma);
}

TEST(DeriveKeepFraction, ImpossibleAgreementDisablesPruning) {
  const model::MllmConfig model = model::sphinx_tiny();
  TaskProxyPruningOptions options;
  options.proxy.tokens = 2;
  options.proxy.fixed_ratios = {0.99};  // agreement will not survive this
  options.min_agreement = 1.1;  // validated by the EngineConfig setter...
  EXPECT_THROW(derive_keep_fraction(model, options), std::invalid_argument);
  options.min_agreement = 1.0;  // ...but 1.0 is legal and nearly unreachable
  options.max_proxy_channels = 128;
  options.max_proxy_layers = 4;
  const double keep = derive_keep_fraction(model, options);
  EXPECT_GE(keep, options.min_keep_fraction);
}

}  // namespace
}  // namespace edgemm::serve
