// KV swap-refill DMA injection (EngineConfig::kv_swap_refill_dma): the
// bytes a swapped-out request re-fetches from DRAM on refill become a
// real MC-lane op in the decode step, so SwapPolicy thrashing costs
// decode bandwidth in the timing plane instead of being ledgered for
// free.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serving_engine.hpp"
#include "serve/sweep.hpp"

namespace edgemm::serve {
namespace {

core::ChipConfig small_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

model::MllmConfig tiny_model() {
  model::MllmConfig m;
  m.name = "tiny-mllm";
  m.encoders = {{"enc", 2, 256, 512, 4, 4, 0, false}};
  m.vision_tokens = 16;
  m.projector_params = 0;
  m.llm = {"llm", 2, 256, 512, 4, 4, 1024, true};
  return m;
}

constexpr Bytes kTokenBytes = 2048;  // tiny_model() kv_bytes_per_token
constexpr Bytes kPage = 4 * kTokenBytes;

Request req(RequestId id, std::size_t input_tokens, std::size_t output_tokens,
            std::size_t prefix_id = 0, std::size_t prefix_tokens = 0) {
  Request r;
  r.id = id;
  r.arrival = 0;
  r.model = 0;
  r.input_tokens = input_tokens;
  r.output_tokens = output_tokens;
  r.crops = 1;
  r.prefix_id = prefix_id;
  r.prefix_tokens = prefix_tokens;
  return r;
}

EngineConfig fast_config() {
  return EngineConfig()
      .scheduler(
          std::make_shared<ConcurrencyPolicy>(AdmissionLimits{4, 8}))
      .manage_bandwidth(false);
}

/// Tight paged budget that forces two concurrent growers to preempt
/// each other's tails to DRAM and refill (the thrashing scenario).
EngineConfig thrash_config(bool refill_dma) {
  return fast_config()
      .kv_capacity_bytes(18 * kPage)
      .paged_kv(true)
      .kv_page_bytes(kPage)
      .kv_swap_refill_dma(refill_dma);
}

/// Two growers sharing one 64-token prefix run: both fit only by
/// preempting each other's private tails to DRAM and refilling.
std::vector<Request> thrash_trace() {
  return {req(0, 64, 8, 1, 64), req(1, 64, 8, 1, 64)};
}

TEST(SwapRefillDma, KnobIsInertWithoutPagedKv) {
  // With paged_kv off there is no swap machinery — the knob must leave
  // the legacy replay byte-identical.
  TraceConfig cfg;
  cfg.requests = 8;
  cfg.arrival_rate_per_s = 2000.0;
  cfg.input_tokens = 32;
  cfg.min_output_tokens = 2;
  cfg.max_output_tokens = 12;
  const auto trace = poisson_trace(cfg);

  const auto off =
      replay_trace(small_cfg(), {tiny_model()}, fast_config(), trace);
  const auto on = replay_trace(small_cfg(), {tiny_model()},
                               fast_config().kv_swap_refill_dma(true), trace);
  EXPECT_TRUE(results_identical(off.result, on.result));
  ASSERT_EQ(off.records.size(), on.records.size());
  for (std::size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_TRUE(record_identical(off.records[i], on.records[i]));
  }
  EXPECT_EQ(on.result.kv_swap_dma_bytes, 0u);
}

TEST(SwapRefillDma, InjectedBytesMatchTheRefetchLedger) {
  // Every refilled byte the allocator charges shows up as injected DMA:
  // the two ledgers agree exactly within one run.
  const auto out = replay_trace(small_cfg(), {tiny_model()},
                                thrash_config(true), thrash_trace());
  EXPECT_EQ(out.result.completed, 2u);
  EXPECT_GT(out.result.kv_swap_refetch_bytes, 0u);
  EXPECT_EQ(out.result.kv_swap_dma_bytes, out.result.kv_swap_refetch_bytes);
}

TEST(SwapRefillDma, ThrashingNowCostsDecodeTime) {
  // Same trace, same swaps: pricing the refill traffic on the MC lane
  // must not speed anything up, and the off-run ledgers zero DMA.
  const auto off = replay_trace(small_cfg(), {tiny_model()},
                                thrash_config(false), thrash_trace());
  const auto on = replay_trace(small_cfg(), {tiny_model()},
                               thrash_config(true), thrash_trace());
  EXPECT_GT(off.result.kv_swap_refetch_bytes, 0u);
  EXPECT_EQ(off.result.kv_swap_dma_bytes, 0u);
  EXPECT_GT(on.result.kv_swap_dma_bytes, 0u);
  EXPECT_GE(on.result.makespan, off.result.makespan);
}

TEST(SwapRefillDma, FastTierTracksDetailedWithinDriftGate) {
  // The injected op prices consistently on both replay tiers: fast-tier
  // makespan drift stays under the same 1% gate the §7 bench enforces.
  const auto detailed = replay_trace(small_cfg(), {tiny_model()},
                                     thrash_config(true), thrash_trace());
  const auto fast = replay_trace(
      small_cfg(), {tiny_model()},
      thrash_config(true).replay_mode(core::ReplayMode::kFast),
      thrash_trace());
  EXPECT_EQ(fast.result.completed, detailed.result.completed);
  EXPECT_EQ(fast.result.kv_swap_dma_bytes, detailed.result.kv_swap_dma_bytes);
  const double drift =
      (fast.result.makespan_ms - detailed.result.makespan_ms) /
      detailed.result.makespan_ms;
  EXPECT_LT(drift < 0 ? -drift : drift, 0.01);
}

}  // namespace
}  // namespace edgemm::serve
