#include "pruning/dynamic_topk.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm::pruning {
namespace {

TEST(DynamicTopK, Validation) {
  DynamicTopKConfig bad;
  bad.threshold_t = 0.0;
  EXPECT_THROW(DynamicTopK(bad, 16), std::invalid_argument);
  EXPECT_THROW(DynamicTopK(DynamicTopKConfig{}, 0), std::invalid_argument);
}

TEST(DynamicTopK, StartsUnpruned) {
  DynamicTopK controller(DynamicTopKConfig{}, 2048);
  controller.begin_token();
  EXPECT_EQ(controller.current_k(), 2048u);
  EXPECT_EQ(controller.k_for_layer(0), 2048u);
}

TEST(DynamicTopK, FirstLayerAlwaysFullWidth) {
  // Alg. 1 / §V-C: the first layer is never pruned.
  DynamicTopK controller(DynamicTopKConfig{}, 256);
  controller.begin_token();
  controller.observe(10);  // k collapses to 10
  EXPECT_EQ(controller.k_for_layer(0), 256u);
  EXPECT_EQ(controller.k_for_layer(5), 10u);
}

TEST(DynamicTopK, SkipFlagOffPrunesFirstLayerToo) {
  DynamicTopKConfig cfg;
  cfg.skip_first_layer = false;
  DynamicTopK controller(cfg, 256);
  controller.begin_token();
  controller.observe(10);
  EXPECT_EQ(controller.k_for_layer(0), 10u);
}

TEST(DynamicTopK, KOnlyDecreases) {
  // "k should decrease progressively with layer depth."
  DynamicTopK controller(DynamicTopKConfig{}, 1024);
  controller.begin_token();
  controller.observe(500);
  EXPECT_EQ(controller.current_k(), 500u);
  controller.observe(800);  // larger n must NOT raise k
  EXPECT_EQ(controller.current_k(), 500u);
  controller.observe(100);
  EXPECT_EQ(controller.current_k(), 100u);
}

TEST(DynamicTopK, BeginTokenResets) {
  DynamicTopK controller(DynamicTopKConfig{}, 1024);
  controller.begin_token();
  controller.observe(5);
  controller.begin_token();
  EXPECT_EQ(controller.current_k(), 1024u);
}

TEST(DynamicTopK, FirstLayerStatisticsDoNotDriveK) {
  // §V-C: the first layer's distribution is unstable; its n must not
  // collapse the budget for deeper layers.
  DynamicTopK controller(DynamicTopKConfig{}, 8);
  controller.begin_token();
  // A spiky layer-0 vector (n would be 1).
  const std::vector<float> spiky{100.0F, 0.1F, 0.1F, 0.1F, 0.1F, 0.1F, 0.1F, 0.1F};
  controller.step(0, spiky);
  EXPECT_EQ(controller.current_k(), 8u);  // untouched
  controller.step(1, spiky);
  EXPECT_EQ(controller.current_k(), 1u);  // stable layers do update
}

TEST(DynamicTopK, StepUsesVectorStatistics) {
  DynamicTopK controller(DynamicTopKConfig{}, 8);
  controller.begin_token();
  // max = 16, threshold = 1 -> n = 2 (16 and 1.5).
  const std::vector<float> v{16.0F, 1.5F, 0.5F, 0.2F, 0.1F, 0.1F, 0.1F, 0.1F};
  const std::size_t k_used = controller.step(1, v);
  EXPECT_EQ(k_used, 8u);  // budget before the update
  EXPECT_EQ(controller.current_k(), 2u);
}

TEST(FixedRatio, ComputesKeptChannels) {
  EXPECT_EQ(fixed_ratio_k(1000, 0.1), 900u);
  EXPECT_EQ(fixed_ratio_k(1000, 0.7), 300u);
  EXPECT_EQ(fixed_ratio_k(1000, 0.0), 1000u);
  EXPECT_EQ(fixed_ratio_k(1000, 1.0), 1u);  // clamps to at least one
  EXPECT_THROW(fixed_ratio_k(1000, 1.5), std::invalid_argument);
}

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, LargerTKeepsMoreChannels) {
  // Property (ablation of the paper's fixed t = 16): k after one step is
  // non-decreasing in t.
  const std::vector<float> v{8.0F, 4.0F, 2.0F, 1.0F, 0.5F, 0.25F, 0.12F, 0.06F};
  const double t = GetParam();
  DynamicTopKConfig cfg_small;
  cfg_small.threshold_t = t;
  DynamicTopKConfig cfg_large;
  cfg_large.threshold_t = t * 4.0;
  DynamicTopK a(cfg_small, v.size());
  DynamicTopK b(cfg_large, v.size());
  a.begin_token();
  b.begin_token();
  a.step(1, v);
  b.step(1, v);
  EXPECT_LE(a.current_k(), b.current_k());
}

INSTANTIATE_TEST_SUITE_P(Ts, ThresholdSweep, ::testing::Values(2.0, 4.0, 8.0, 16.0));

}  // namespace
}  // namespace edgemm::pruning
