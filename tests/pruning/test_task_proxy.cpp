#include "pruning/task_proxy.hpp"

#include <gtest/gtest.h>

namespace edgemm::pruning {
namespace {

model::ActivationProfile proxy_profile() {
  model::ActivationProfile p;
  p.channels = 256;
  p.layers = 6;
  return p;
}

TaskProxyConfig proxy_config() {
  TaskProxyConfig cfg;
  cfg.d_ffn = 256;
  cfg.tokens = 3;
  cfg.answer_classes = 32;
  return cfg;
}

TEST(TaskProxy, ScoresAreProbabilities) {
  model::ActivationGenerator gen(proxy_profile(), 17);
  const auto result = evaluate_task_proxy(gen, proxy_config());
  EXPECT_GE(result.agreement_dynamic, 0.0);
  EXPECT_LE(result.agreement_dynamic, 1.0);
  ASSERT_EQ(result.agreement_fixed.size(), 2u);
  for (const double a : result.agreement_fixed) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_EQ(result.decisions, 3u * 6u);
}

TEST(TaskProxy, DynamicKeepsHighAgreement) {
  // The "minimal VQA score reduction" claim: the dynamic scheme rarely
  // flips the downstream answer.
  model::ActivationGenerator gen(proxy_profile(), 17);
  const auto result = evaluate_task_proxy(gen, proxy_config());
  EXPECT_GT(result.agreement_dynamic, 0.8);
}

TEST(TaskProxy, DynamicBeatsAggressiveFixed) {
  // Fixed 0.7 flips far more answers (it mutilates shallow layers).
  model::ActivationGenerator gen(proxy_profile(), 17);
  const auto result = evaluate_task_proxy(gen, proxy_config());
  EXPECT_GE(result.agreement_dynamic, result.agreement_fixed[1]);
}

TEST(TaskProxy, MildFixedIsNearPerfect) {
  model::ActivationGenerator gen(proxy_profile(), 17);
  const auto result = evaluate_task_proxy(gen, proxy_config());
  EXPECT_GT(result.agreement_fixed[0], 0.85);  // ratio 0.1
}

TEST(TaskProxy, Deterministic) {
  model::ActivationGenerator gen_a(proxy_profile(), 17);
  model::ActivationGenerator gen_b(proxy_profile(), 17);
  const auto a = evaluate_task_proxy(gen_a, proxy_config());
  const auto b = evaluate_task_proxy(gen_b, proxy_config());
  EXPECT_EQ(a.agreement_dynamic, b.agreement_dynamic);
  EXPECT_EQ(a.mean_pruning_ratio, b.mean_pruning_ratio);
}

TEST(TaskProxy, ReportsPruningDepth) {
  model::ActivationGenerator gen(proxy_profile(), 17);
  const auto result = evaluate_task_proxy(gen, proxy_config());
  EXPECT_GT(result.mean_pruning_ratio, 0.05);
  EXPECT_LT(result.mean_pruning_ratio, 0.95);
}

}  // namespace
}  // namespace edgemm::pruning
