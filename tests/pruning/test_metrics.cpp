#include "pruning/metrics.hpp"

#include <gtest/gtest.h>

namespace edgemm::pruning {
namespace {

model::ActivationProfile eval_profile() {
  model::ActivationProfile p;
  p.channels = 256;
  p.layers = 8;
  return p;
}

PruningEvalConfig eval_config() {
  PruningEvalConfig cfg;
  cfg.d_ffn = 256;
  cfg.tokens = 3;
  return cfg;
}

TEST(PruningEval, ProducesPerLayerStats) {
  model::ActivationGenerator gen(eval_profile(), 42);
  const auto result = evaluate_pruning(gen, eval_config());
  ASSERT_EQ(result.layers.size(), 8u);
  for (const auto& layer : result.layers) {
    EXPECT_GE(layer.pruning_ratio, 0.0);
    EXPECT_LE(layer.pruning_ratio, 1.0);
    EXPECT_GE(layer.cosine_dynamic, -1.0);
    EXPECT_LE(layer.cosine_dynamic, 1.0 + 1e-9);
    EXPECT_GT(layer.kurtosis, 0.0);
    ASSERT_EQ(layer.cosine_fixed.size(), 2u);
  }
}

TEST(PruningEval, FirstLayerNeverPruned) {
  model::ActivationGenerator gen(eval_profile(), 42);
  const auto result = evaluate_pruning(gen, eval_config());
  EXPECT_EQ(result.layers[0].pruning_ratio, 0.0);
  EXPECT_NEAR(result.layers[0].cosine_dynamic, 1.0, 1e-6);
}

TEST(PruningEval, PruningRatioGrowsWithDepth) {
  // Fig. 12(a): the dynamic ratio ramps up as outliers sharpen.
  model::ActivationGenerator gen(eval_profile(), 42);
  const auto result = evaluate_pruning(gen, eval_config());
  EXPECT_GT(result.layers.back().pruning_ratio,
            result.layers[1].pruning_ratio + 0.1);
  EXPECT_GT(result.mean_pruning_ratio, 0.1);
}

TEST(PruningEval, KurtosisTracksDepth) {
  model::ActivationGenerator gen(eval_profile(), 42);
  const auto result = evaluate_pruning(gen, eval_config());
  EXPECT_GT(result.layers.back().kurtosis, result.layers[1].kurtosis);
}

TEST(PruningEval, DynamicBeatsAggressiveFixedOnShallowLayers) {
  // Fig. 12(b): fixed 0.7 collapses in the shallow layers where most
  // channels still matter; dynamic pruning does not.
  model::ActivationGenerator gen(eval_profile(), 42);
  PruningEvalConfig cfg = eval_config();
  cfg.fixed_ratios = {0.1, 0.7};
  const auto result = evaluate_pruning(gen, cfg);
  // Compare on layer 1 (first prunable layer).
  const auto& shallow = result.layers[1];
  EXPECT_GT(shallow.cosine_dynamic, shallow.cosine_fixed[1] + 0.02);
}

TEST(PruningEval, DynamicComparableToMildFixedOverall) {
  // Fig. 12(b): dynamic achieves "comparable accuracy as a mild fixed
  // pruning ratio of 0.1" while pruning far more aggressively.
  model::ActivationGenerator gen(eval_profile(), 42);
  const auto result = evaluate_pruning(gen, eval_config());
  EXPECT_GT(result.mean_cosine_dynamic, 0.9);
  EXPECT_GT(result.mean_cosine_dynamic, result.mean_cosine_fixed[0] - 0.08);
  EXPECT_GT(result.mean_pruning_ratio, 0.25);  // far deeper than 0.1 fixed
}

TEST(PruningEval, DeterministicAcrossRuns) {
  model::ActivationGenerator gen_a(eval_profile(), 42);
  model::ActivationGenerator gen_b(eval_profile(), 42);
  const auto a = evaluate_pruning(gen_a, eval_config());
  const auto b = evaluate_pruning(gen_b, eval_config());
  EXPECT_EQ(a.mean_pruning_ratio, b.mean_pruning_ratio);
  EXPECT_EQ(a.mean_cosine_dynamic, b.mean_cosine_dynamic);
}

}  // namespace
}  // namespace edgemm::pruning
