// Cross-module integration tests: the headline claims of the paper,
// exercised end-to-end through the public API.
#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/gpu_model.hpp"
#include "common/statistics.hpp"
#include "core/chip.hpp"
#include "core/host_core.hpp"
#include "core/kernels.hpp"
#include "core/pipeline.hpp"
#include "isa/assembler.hpp"
#include "model/activation_gen.hpp"
#include "model/workload.hpp"
#include "pruning/metrics.hpp"

namespace edgemm {
namespace {

using core::ChipComposition;
using core::ChipTimingModel;
using core::GemmWork;

/// One-group chip keeps integration runs fast while preserving the
/// CC/MC balance of the full design.
core::ChipConfig test_cfg() {
  core::ChipConfig cfg = core::default_chip_config();
  cfg.groups = 1;
  return cfg;
}

/// A reduced SPHINX-Tiny-shaped workload (few layers, real dims).
core::PhaseWorkload reduced_workload() {
  model::MllmConfig m = model::sphinx_tiny();
  for (auto& tower : m.encoders) tower.layers = 4;
  m.llm.layers = 4;
  return model::build_phase_workload(m, model::default_params_for_output(300, 64));
}

Cycle run_phase_on(ChipComposition comp, const std::vector<GemmWork>& ops) {
  ChipTimingModel chip(test_cfg(), comp);
  return chip.run_phase(ops);
}

TEST(EndToEnd, HeterogeneousBeatsHomogeneousOnFullMllm) {
  // Fig. 11: EdgeMM outperforms homo-CC and homo-MC on the entire MLLM
  // (1.79× and 2.65× in the paper). The heterogeneous chip streams
  // (§IV-B): CC-clusters encode/prefill the next request while
  // MC-clusters decode the current one; homogeneous chips run the
  // phases back-to-back. Output length sized near the balance point.
  model::MllmConfig m = model::sphinx_tiny();
  for (auto& tower : m.encoders) tower.layers = 4;
  m.llm.layers = 4;
  // Operate near the platform's balance point l_e (the regime Fig. 11's
  // averaged lengths target): derive it, then rebuild the workload.
  const auto probe = model::aggregate_workload(model::build_phase_workload(
      m, model::default_params_for_output(300, 16, /*crops=*/5)));
  const auto policy = core::derive_policy(test_cfg(), probe);
  const std::size_t l =
      std::clamp<std::size_t>(policy.balance_length, 4, 64);
  const auto w = model::aggregate_workload(model::build_phase_workload(
      m, model::default_params_for_output(300, l, /*crops=*/5)));

  std::vector<GemmWork> all;
  all.insert(all.end(), w.encoder.begin(), w.encoder.end());
  all.insert(all.end(), w.prefill.begin(), w.prefill.end());
  for (std::size_t t = 0; t < l; ++t) {
    all.insert(all.end(), w.decode_token.begin(), w.decode_token.end());
  }
  const Cycle homo_cc = run_phase_on(ChipComposition::kHomoCc, all);
  const Cycle homo_mc = run_phase_on(ChipComposition::kHomoMc, all);

  core::MllmPipeline pipeline(test_cfg());
  core::PipelineOptions opts;
  opts.output_tokens = l;
  opts.batches = 4;
  opts.manage_bandwidth = true;
  opts.enable_batching = false;
  opts.policy = policy;
  const auto het = pipeline.run(w, opts);
  const auto hetero = static_cast<Cycle>(static_cast<double>(l) /
                                         het.tokens_per_second *
                                         test_cfg().clock_hz);

  EXPECT_LT(hetero, homo_cc);
  EXPECT_LT(hetero, homo_mc);
  const double vs_cc = static_cast<double>(homo_cc) / static_cast<double>(hetero);
  const double vs_mc = static_cast<double>(homo_mc) / static_cast<double>(hetero);
  EXPECT_GT(vs_cc, 1.1);
  EXPECT_LT(vs_cc, 5.0);
  EXPECT_GT(vs_mc, 1.05);
  EXPECT_LT(vs_mc, 6.0);
}

TEST(EndToEnd, AllExtensionsBeatSnitchBaseline) {
  // Fig. 11: "all extended designs have significant performance boosts
  // compared to the baseline."
  const auto w = reduced_workload();
  const Cycle baseline = run_phase_on(ChipComposition::kBaselineSnitch, w.prefill);
  for (const auto comp : {ChipComposition::kHeterogeneous, ChipComposition::kHomoCc,
                          ChipComposition::kHomoMc}) {
    const Cycle t = run_phase_on(comp, w.prefill);
    EXPECT_LT(t * 5, baseline) << to_string(comp);
  }
}

TEST(EndToEnd, PruningCutsDecodeLatencySubstantially) {
  // §V-C: activation-aware pruning reduces LLM-decoding latency by 42 %
  // on average. Drive the measured keep-fraction from the pruning
  // harness into the pipeline and verify a double-digit cut.
  model::ActivationProfile profile;
  profile.channels = 256;
  profile.layers = 8;
  model::ActivationGenerator gen(profile, 7);
  pruning::PruningEvalConfig eval_cfg;
  eval_cfg.d_ffn = 256;
  eval_cfg.tokens = 2;
  const auto eval = pruning::evaluate_pruning(gen, eval_cfg);
  const double keep = 1.0 - eval.mean_pruning_ratio;
  ASSERT_GT(eval.mean_pruning_ratio, 0.15);

  core::MllmPipeline pipeline(test_cfg());
  core::PipelineOptions opts;
  opts.output_tokens = 16;
  opts.manage_bandwidth = false;
  opts.enable_batching = false;
  const auto w = reduced_workload();
  const auto dense = pipeline.run(w, opts);
  opts.prune_keep_fraction = keep;
  const auto pruned = pipeline.run(w, opts);

  const double cut = 1.0 - static_cast<double>(pruned.mc_stage_cycles) /
                               static_cast<double>(dense.mc_stage_cycles);
  EXPECT_GT(cut, 0.10);
  EXPECT_LT(cut, 0.80);
  // And accuracy stays high where it matters.
  EXPECT_GT(eval.mean_cosine_dynamic, 0.9);
}

TEST(EndToEnd, EdgeMmOutperformsGpuModel) {
  // Table II direction: the pipelined heterogeneous chip sustains higher
  // tokens/s than the serial GPU baseline on the same workload.
  const auto w = reduced_workload();

  core::MllmPipeline pipeline(test_cfg());
  core::PipelineOptions opts;
  opts.output_tokens = 128;
  opts.batches = 3;
  opts.forced_batch = 8;
  const auto edge = pipeline.run(w, opts);

  const auto gpu = baselines::evaluate_gpu(baselines::GpuSpec{}, w);
  const double gpu_tps = gpu.tokens_per_second(128);

  EXPECT_GT(edge.tokens_per_second, gpu_tps);
}

TEST(EndToEnd, IsaKernelMatchesFunctionalKernel) {
  // The ISA-driven MC-core GEMV and the direct kernel must agree (same
  // macro model underneath).
  core::ChipConfig cfg = core::tiny_chip_config();
  cfg.cim = {8, 4, 8, 8, 8};
  Rng rng(3);
  Tensor w(8, 8);
  for (float& v : w.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  std::vector<float> act(8);
  for (float& v : act) v = static_cast<float>(rng.gaussian(0.0, 0.5));

  core::HostCore core(cfg, CoreKind::kMemoryCentric, 0, 0, 0, 0);
  core.bind_matrix(0x1000, &w);
  core.set_xreg(5, 0x1000);
  core.set_vreg(1, act);
  core.execute(isa::assemble_line("mv.ldw (x5)"));
  core.execute(isa::assemble_line("mv.mul v2, v1, (x5)"));

  const auto kernel = core::cim_gemv(cfg, act, w);
  const auto& via_isa = core.vreg(2);
  ASSERT_EQ(via_isa.size(), kernel.out.size());
  for (std::size_t i = 0; i < kernel.out.size(); ++i) {
    EXPECT_NEAR(via_isa[i], kernel.out[i], 0.05F) << i;
  }
}

TEST(EndToEnd, ProgrammingModelShardsByCoreId) {
  // §III-C: cores read identity CSRs and derive their tensor shard.
  core::ChipConfig cfg = core::tiny_chip_config();
  cfg.cim = {8, 4, 8, 8, 8};
  const std::size_t n_cores = 2;
  const std::size_t k = 16;

  Rng rng(9);
  Tensor w(k, 8);
  for (float& v : w.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  std::vector<float> act(k);
  for (float& v : act) v = static_cast<float>(rng.gaussian(0.0, 0.5));

  std::vector<float> combined(8, 0.0F);
  for (std::size_t c = 0; c < n_cores; ++c) {
    core::HostCore core(cfg, CoreKind::kMemoryCentric, static_cast<CoreId>(c), 0, 0,
                        static_cast<std::uint32_t>(c));
    // Kernel reads its core position, takes the matching K shard.
    core.execute(isa::assemble_line("cfg.csrr corepos, x1"));
    const std::size_t pos = core.xreg(1);
    const std::size_t shard = k / n_cores;
    const Tensor w_shard = w.block(pos * shard, 0, shard, 8);
    const std::vector<float> a_shard(act.begin() + static_cast<std::ptrdiff_t>(pos * shard),
                                     act.begin() + static_cast<std::ptrdiff_t>((pos + 1) * shard));
    core.bind_matrix(0x2000, &w_shard);
    core.set_xreg(2, 0x2000);
    core.set_vreg(1, a_shard);
    core.execute(isa::assemble_line("mv.ldw (x2)"));
    core.execute(isa::assemble_line("mv.mul v3, v1, (x2)"));
    for (std::size_t i = 0; i < 8; ++i) combined[i] += core.vreg(3)[i];
  }

  const auto ref = gemv_reference(act, w);
  EXPECT_GT(cosine_similarity(combined, ref), 0.99);
}

}  // namespace
}  // namespace edgemm
