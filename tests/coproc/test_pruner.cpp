#include "coproc/pruner.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace edgemm::coproc {
namespace {

TEST(Pruner, RejectsNonPositiveThreshold) {
  ActAwarePruner pruner;
  const std::vector<float> v{1.0F};
  EXPECT_THROW(pruner.prune(v, 1, 0.0), std::invalid_argument);
}

TEST(Pruner, KeepsTopKByMagnitude) {
  ActAwarePruner pruner;
  const std::vector<float> v{0.1F, -8.0F, 0.2F, 5.0F, -0.05F};
  const auto out = pruner.prune(v, 2, 16.0);
  ASSERT_EQ(out.kept.size(), 2u);
  EXPECT_EQ(out.kept[0], 1u);  // ascending index order
  EXPECT_EQ(out.kept[1], 3u);
  EXPECT_EQ(out.compacted, (std::vector<float>{-8.0F, 5.0F}));
  EXPECT_EQ(out.max_abs, 8.0F);
}

TEST(Pruner, ThresholdCountMatchesStatistics) {
  Rng rng(3);
  std::vector<float> v(256);
  for (float& x : v) x = static_cast<float>(rng.gaussian());
  ActAwarePruner pruner;
  const auto out = pruner.prune(v, 64, 16.0);
  EXPECT_EQ(out.n_above_threshold, count_above_max_over_t(v, 16.0));
}

TEST(Pruner, AddressGeneratorUsesPitchAndBase) {
  ActAwarePruner pruner;
  const std::vector<float> v{9.0F, 0.0F, 7.0F, 0.0F};
  PrunerConfig cfg;
  cfg.base_address = 0x1000;
  cfg.row_pitch_bytes = 64;
  const auto out = pruner.prune(v, 2, 16.0, cfg);
  ASSERT_EQ(out.row_addresses.size(), 2u);
  EXPECT_EQ(out.row_addresses[0], 0x1000u);           // channel 0
  EXPECT_EQ(out.row_addresses[1], 0x1000u + 2 * 64);  // channel 2
}

TEST(Pruner, KLargerThanVectorKeepsAll) {
  ActAwarePruner pruner;
  const std::vector<float> v{1.0F, 2.0F};
  const auto out = pruner.prune(v, 10, 16.0);
  EXPECT_EQ(out.kept.size(), 2u);
}

TEST(Pruner, KZeroPrunesEverything) {
  ActAwarePruner pruner;
  const std::vector<float> v{1.0F, 2.0F};
  const auto out = pruner.prune(v, 0, 16.0);
  EXPECT_TRUE(out.kept.empty());
  EXPECT_TRUE(out.compacted.empty());
}

TEST(Pruner, CycleModelIsKPlusTwo) {
  EXPECT_EQ(ActAwarePruner::prune_cycles(0), 2u);
  EXPECT_EQ(ActAwarePruner::prune_cycles(64), 66u);
  ActAwarePruner pruner;
  const std::vector<float> v(128, 1.0F);
  pruner.prune(v, 16, 16.0);
  EXPECT_EQ(pruner.cycles_elapsed(), 18u);
}

TEST(Pruner, EnergyOfKeptDominates) {
  // Property: the kept channels carry at least k/n of the total energy
  // (they are the top-k); with outliers they carry nearly all of it.
  Rng rng(17);
  std::vector<float> v(512);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (std::size_t i = 0; i < 10; ++i) v[i * 50] = 5.0F;
  ActAwarePruner pruner;
  const auto out = pruner.prune(v, 16, 16.0);
  double kept_energy = 0.0;
  for (const float x : out.compacted) kept_energy += static_cast<double>(x) * x;
  double total_energy = 0.0;
  for (const float x : v) total_energy += static_cast<double>(x) * x;
  EXPECT_GT(kept_energy / total_energy, 0.9);
}

}  // namespace
}  // namespace edgemm::coproc
