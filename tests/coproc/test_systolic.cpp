#include "coproc/systolic_array.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/bf16.hpp"
#include "common/rng.hpp"
#include "common/tensor.hpp"

namespace edgemm::coproc {
namespace {

Tensor random_tensor(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Tensor t(r, c);
  for (float& v : t.flat()) v = static_cast<float>(rng.gaussian(0.0, scale));
  return t;
}

TEST(Systolic, RejectsEmptyGeometry) {
  EXPECT_THROW(SystolicArray(SystolicConfig{0, 16}), std::invalid_argument);
  EXPECT_THROW(SystolicArray(SystolicConfig{16, 0}), std::invalid_argument);
}

TEST(Systolic, MultiplyWithoutWeightsThrows) {
  SystolicArray sa(SystolicConfig{4, 4});
  EXPECT_THROW(sa.multiply(Tensor(1, 4)), std::logic_error);
}

TEST(Systolic, ShapeValidation) {
  SystolicArray sa(SystolicConfig{4, 4});
  EXPECT_THROW(sa.load_weights(Tensor(3, 4)), std::invalid_argument);
  sa.load_weights(Tensor(4, 4));
  EXPECT_THROW(sa.multiply(Tensor(2, 3)), std::invalid_argument);
}

TEST(Systolic, MatchesReferenceWithinBf16Error) {
  Rng rng(21);
  const SystolicConfig cfg{8, 8};
  SystolicArray sa(cfg);
  const Tensor w = random_tensor(8, 8, rng);
  const Tensor a = random_tensor(5, 8, rng);
  sa.load_weights(w);
  const Tensor out = sa.multiply(a);

  // Reference computed on BF16-rounded operands must match exactly
  // (same operand quantization, FP32 accumulate).
  Tensor wq(8, 8);
  Tensor aq(5, 8);
  for (std::size_t i = 0; i < 64; ++i) wq.flat()[i] = bf16_round(w.flat()[i]);
  for (std::size_t i = 0; i < 40; ++i) aq.flat()[i] = bf16_round(a.flat()[i]);
  const Tensor ref = matmul_reference(aq, wq);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(out.at(r, c), ref.at(r, c), 1e-4F) << r << "," << c;
    }
  }
}

TEST(Systolic, Eq2CycleFormula) {
  // L_SA = 2R + C + M - 3 (paper Eq. 2).
  const SystolicConfig cfg{16, 16};
  EXPECT_EQ(systolic_tile_cycles(cfg, 1), 2 * 16 + 16 + 1 - 3);
  EXPECT_EQ(systolic_tile_cycles(cfg, 300), 2 * 16 + 16 + 300 - 3);
  // Load + stream decomposition must reconstruct Eq. 2 exactly.
  EXPECT_EQ(16 + systolic_stream_cycles(cfg, 300), systolic_tile_cycles(cfg, 300));
}

TEST(Systolic, CycleCounterTracksFormula) {
  const SystolicConfig cfg{8, 4};
  SystolicArray sa(cfg);
  sa.load_weights(Tensor(8, 4));
  sa.multiply(Tensor(10, 8));
  EXPECT_EQ(sa.cycles_elapsed(), systolic_tile_cycles(cfg, 10));
}

TEST(Systolic, GemvUtilizationIsPoor) {
  // Fig. 5: a single activation column leaves PEs idle. GEMV utilization
  // must be far below GEMM utilization on the same array.
  Rng rng(5);
  const SystolicConfig cfg{16, 16};

  SystolicArray gemv_sa(cfg);
  gemv_sa.load_weights(random_tensor(16, 16, rng));
  gemv_sa.multiply(random_tensor(1, 16, rng));
  const double gemv_util = gemv_sa.utilization();

  SystolicArray gemm_sa(cfg);
  gemm_sa.load_weights(random_tensor(16, 16, rng));
  gemm_sa.multiply(random_tensor(256, 16, rng));
  const double gemm_util = gemm_sa.utilization();

  EXPECT_LT(gemv_util, 0.05);
  EXPECT_GT(gemm_util, 0.7);
  EXPECT_GT(gemm_util, 10.0 * gemv_util);
}

TEST(Systolic, WeightReuseSkipsReload) {
  const SystolicConfig cfg{8, 8};
  SystolicArray sa(cfg);
  sa.load_weights(Tensor(8, 8));
  const Cycle after_load = sa.cycles_elapsed();
  EXPECT_EQ(after_load, 8u);
  sa.multiply(Tensor(4, 8));
  sa.multiply(Tensor(4, 8));  // stationary weights: no reload cost
  EXPECT_EQ(sa.cycles_elapsed(), after_load + 2 * systolic_stream_cycles(cfg, 4));
}

TEST(Systolic, MacCounterExact) {
  SystolicArray sa(SystolicConfig{4, 4});
  sa.load_weights(Tensor(4, 4));
  sa.multiply(Tensor(3, 4));
  EXPECT_EQ(sa.macs_performed(), 3u * 4u * 4u);
}

TEST(Systolic, ResetCountersClears) {
  SystolicArray sa(SystolicConfig{4, 4});
  sa.load_weights(Tensor(4, 4));
  sa.multiply(Tensor(1, 4));
  sa.reset_counters();
  EXPECT_EQ(sa.cycles_elapsed(), 0u);
  EXPECT_EQ(sa.macs_performed(), 0u);
}

class SystolicShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(SystolicShapeSweep, FunctionalAcrossGeometries) {
  const auto [r, c, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(r * 1000 + c * 10 + m));
  SystolicArray sa(SystolicConfig{r, c});
  const Tensor w = random_tensor(r, c, rng, 0.5);
  const Tensor a = random_tensor(m, r, rng, 0.5);
  sa.load_weights(w);
  const Tensor out = sa.multiply(a);
  const Tensor ref = matmul_reference(a, w);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      // BF16 operand rounding bounds the relative error.
      EXPECT_NEAR(out.at(i, j), ref.at(i, j),
                  0.02F * static_cast<float>(r) + 1e-3F);
    }
  }
  EXPECT_EQ(sa.cycles_elapsed(), systolic_tile_cycles(SystolicConfig{r, c}, m));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SystolicShapeSweep,
    ::testing::Values(std::make_tuple(4, 4, 1), std::make_tuple(4, 8, 3),
                      std::make_tuple(8, 4, 16), std::make_tuple(16, 16, 1),
                      std::make_tuple(16, 16, 64), std::make_tuple(2, 32, 5),
                      std::make_tuple(32, 2, 5)));

}  // namespace
}  // namespace edgemm::coproc
