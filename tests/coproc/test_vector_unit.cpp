#include "coproc/vector_unit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace edgemm::coproc {
namespace {

TEST(VectorUnit, RejectsZeroLanes) {
  EXPECT_THROW(VectorUnit(0), std::invalid_argument);
}

TEST(VectorUnit, ElementwiseOps) {
  VectorUnit vu(4);
  const std::vector<float> a{1.0F, -2.0F, 3.0F};
  const std::vector<float> b{4.0F, 5.0F, -6.0F};
  EXPECT_EQ(vu.add(a, b), (std::vector<float>{5.0F, 3.0F, -3.0F}));
  EXPECT_EQ(vu.mul(a, b), (std::vector<float>{4.0F, -10.0F, -18.0F}));
  EXPECT_EQ(vu.max(a, b), (std::vector<float>{4.0F, 5.0F, 3.0F}));
}

TEST(VectorUnit, LengthMismatchThrows) {
  VectorUnit vu(4);
  EXPECT_THROW(vu.add(std::vector<float>{1.0F}, std::vector<float>{1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(VectorUnit, ReluSemantics) {
  VectorUnit vu(8);
  const std::vector<float> x{-1.0F, 0.0F, 2.5F};
  const auto y = vu.activate(x, isa::ActUop::kRelu);
  EXPECT_EQ(y, (std::vector<float>{0.0F, 0.0F, 2.5F}));
}

TEST(VectorUnit, SiluProperties) {
  // silu(0) = 0; silu(x) -> x for large x; silu is below identity for x>0.
  EXPECT_EQ(VectorUnit::silu(0.0F), 0.0F);
  EXPECT_NEAR(VectorUnit::silu(20.0F), 20.0F, 1e-3F);
  EXPECT_LT(VectorUnit::silu(1.0F), 1.0F);
  EXPECT_NEAR(VectorUnit::silu(1.0F), 1.0F / (1.0F + std::exp(-1.0F)), 1e-6F);
}

TEST(VectorUnit, GeluProperties) {
  EXPECT_EQ(VectorUnit::gelu(0.0F), 0.0F);
  EXPECT_NEAR(VectorUnit::gelu(10.0F), 10.0F, 1e-3F);
  // gelu(-x) is small negative, approaching 0 for very negative x.
  EXPECT_NEAR(VectorUnit::gelu(-10.0F), 0.0F, 1e-3F);
}

TEST(VectorUnit, Bf16ConversionQuantizes) {
  VectorUnit vu(4);
  const std::vector<float> x{1.00390625F};  // 1 + 2^-8, not a BF16 value
  const auto y = vu.to_bf16(x);
  EXPECT_NE(y[0], x[0]);
  EXPECT_NEAR(y[0], x[0], 0.01F);
}

TEST(VectorUnit, CycleChargePerLaneGroup) {
  VectorUnit vu(4);
  const std::vector<float> a(10, 1.0F);
  const std::vector<float> b(10, 2.0F);
  vu.add(a, b);  // ceil(10/4) = 3 issues
  EXPECT_EQ(vu.cycles_elapsed(), 3u);
  vu.mul(a, b);
  EXPECT_EQ(vu.cycles_elapsed(), 6u);
  vu.reset_counters();
  EXPECT_EQ(vu.cycles_elapsed(), 0u);
}

class ActSweep : public ::testing::TestWithParam<isa::ActUop> {};

TEST_P(ActSweep, MonotoneOnPositiveAxisAndBoundedDip) {
  // Properties shared by ReLU/SiLU/GELU: monotone non-decreasing for
  // x >= 0, and the negative-axis dip (SiLU min ≈ −0.278, GELU ≈ −0.17)
  // never goes below −0.3.
  const auto op = GetParam();
  VectorUnit vu(64);
  std::vector<float> xs;
  for (float x = -6.0F; x <= 6.0F; x += 0.05F) xs.push_back(x);
  const auto ys = vu.activate(xs, op);
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (xs[i - 1] >= 0.0F) {
      EXPECT_GE(ys[i], ys[i - 1] - 1e-5F) << "x=" << xs[i];
    }
    EXPECT_GE(ys[i], -0.3F) << "x=" << xs[i];
    // Dominated by identity: act(x) <= max(x, 0) + eps.
    EXPECT_LE(ys[i], std::max(xs[i], 0.0F) + 1e-5F) << "x=" << xs[i];
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActSweep,
                         ::testing::Values(isa::ActUop::kRelu, isa::ActUop::kSilu,
                                           isa::ActUop::kGelu));

}  // namespace
}  // namespace edgemm::coproc
