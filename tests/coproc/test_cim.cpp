#include "coproc/cim_macro.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace edgemm::coproc {
namespace {

CimConfig small_cfg() { return CimConfig{8, 4, 4, 8, 8}; }

std::vector<std::int32_t> random_codes(std::size_t n, int bits, Rng& rng) {
  std::vector<std::int32_t> v(n);
  const std::int32_t lim = (1 << (bits - 1)) - 1;
  for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(-lim, lim));
  return v;
}

/// Plain integer reference: out[c] = sum_r act[r] * w[r][c].
std::vector<std::int64_t> int_gemv_ref(const std::vector<std::int32_t>& act,
                                       const std::vector<std::int32_t>& w,
                                       std::size_t rows, std::size_t cols) {
  std::vector<std::int64_t> out(cols, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[c] += static_cast<std::int64_t>(act[r]) * w[r * cols + c];
    }
  }
  return out;
}

TEST(Cim, RejectsBadGeometryAndPrecision) {
  EXPECT_THROW(CimMacro(CimConfig{0, 4, 4, 8, 8}), std::invalid_argument);
  EXPECT_THROW(CimMacro(CimConfig{8, 0, 4, 8, 8}), std::invalid_argument);
  EXPECT_THROW(CimMacro(CimConfig{8, 4, 0, 8, 8}), std::invalid_argument);
  EXPECT_THROW(CimMacro(CimConfig{8, 4, 4, 1, 8}), std::invalid_argument);
  EXPECT_THROW(CimMacro(CimConfig{8, 4, 4, 8, 17}), std::invalid_argument);
}

TEST(Cim, WriteEntryValidation) {
  CimMacro macro(small_cfg());
  std::vector<std::int32_t> tile(4 * 8, 0);
  EXPECT_THROW(macro.write_entry(4, tile), std::out_of_range);
  EXPECT_THROW(macro.write_entry(0, std::vector<std::int32_t>(7, 0)),
               std::invalid_argument);
  tile[0] = 200;  // exceeds int8 range
  EXPECT_THROW(macro.write_entry(0, tile), std::invalid_argument);
}

TEST(Cim, BitSerialEqualsIntegerGemv) {
  // The bit-serial model must be *exactly* the two's-complement dot
  // product — this is the keystone correctness property of the macro.
  Rng rng(31);
  const CimConfig cfg = small_cfg();
  CimMacro macro(cfg);
  const auto w = random_codes(cfg.tree_inputs * cfg.columns, cfg.weight_bits, rng);
  macro.write_entry(0, w);
  const auto act = random_codes(cfg.tree_inputs, cfg.act_bits, rng);
  const auto out = macro.gemv(0, act);
  const auto ref = int_gemv_ref(act, w, cfg.tree_inputs, cfg.columns);
  for (std::size_t c = 0; c < cfg.columns; ++c) {
    EXPECT_EQ(out[c], ref[c]) << c;
  }
}

TEST(Cim, NegativeActivationsExact) {
  const CimConfig cfg{2, 2, 1, 8, 8};
  CimMacro macro(cfg);
  macro.write_entry(0, std::vector<std::int32_t>{3, -7, 5, 9});
  const auto out = macro.gemv(0, std::vector<std::int32_t>{-128, 127});
  EXPECT_EQ(out[0], -128 * 3 + 127 * 5);
  EXPECT_EQ(out[1], -128 * -7 + 127 * 9);
}

TEST(Cim, Eq3CycleFormula) {
  // L_CIM = M*W + 1 (paper Eq. 3); GEMV is W + 1.
  const CimConfig cfg{64, 16, 64, 8, 8};
  EXPECT_EQ(cim_gemm_cycles(cfg, 1), 9u);
  EXPECT_EQ(cim_gemm_cycles(cfg, 300), 300u * 8u + 1u);
}

TEST(Cim, CycleCounterMatchesFormulas) {
  Rng rng(7);
  const CimConfig cfg = small_cfg();
  CimMacro macro(cfg);
  const auto w = random_codes(cfg.tree_inputs * cfg.columns, cfg.weight_bits, rng);
  macro.write_entry(0, w);
  macro.write_entry(1, w);
  const Cycle after_writes = macro.cycles_elapsed();
  EXPECT_EQ(after_writes, 2 * cim_entry_write_cycles(cfg));

  const auto act = random_codes(2 * cfg.tree_inputs, cfg.act_bits, rng);
  macro.gemv_long(0, 2, act);
  EXPECT_EQ(macro.cycles_elapsed(), after_writes + cim_gemm_cycles(cfg, 2));
}

TEST(Cim, GemvLongAccumulatesAcrossEntries) {
  Rng rng(17);
  const CimConfig cfg = small_cfg();
  CimMacro macro(cfg);
  const auto w0 = random_codes(cfg.tree_inputs * cfg.columns, cfg.weight_bits, rng);
  const auto w1 = random_codes(cfg.tree_inputs * cfg.columns, cfg.weight_bits, rng);
  macro.write_entry(0, w0);
  macro.write_entry(1, w1);
  const auto act = random_codes(2 * cfg.tree_inputs, cfg.act_bits, rng);

  const auto combined = macro.gemv_long(0, 2, act);
  const std::vector<std::int32_t> a0(act.begin(), act.begin() + cfg.tree_inputs);
  const std::vector<std::int32_t> a1(act.begin() + cfg.tree_inputs, act.end());
  const auto r0 = int_gemv_ref(a0, w0, cfg.tree_inputs, cfg.columns);
  const auto r1 = int_gemv_ref(a1, w1, cfg.tree_inputs, cfg.columns);
  for (std::size_t c = 0; c < cfg.columns; ++c) {
    EXPECT_EQ(combined[c], r0[c] + r1[c]);
  }
}

TEST(Cim, GemvLongValidation) {
  CimMacro macro(small_cfg());
  std::vector<std::int32_t> act(4, 0);
  EXPECT_THROW(macro.gemv_long(0, 0, act), std::out_of_range);
  EXPECT_THROW(macro.gemv_long(3, 2, act), std::out_of_range);
  EXPECT_THROW(macro.gemv_long(0, 1, std::vector<std::int32_t>(3, 0)),
               std::invalid_argument);
  std::vector<std::int32_t> hot(4, 0);
  hot[0] = 1 << 10;  // exceeds 8-bit activation range
  EXPECT_THROW(macro.gemv_long(0, 1, hot), std::invalid_argument);
}

TEST(Cim, CapacityFormula) {
  const CimConfig cfg{64, 16, 64, 8, 8};
  EXPECT_EQ(cim_capacity_bytes(cfg), 64u * 16u * 64u);  // 64 KiB at 8-bit
}

class CimPrecisionSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CimPrecisionSweep, BitSerialExactAtAllPrecisions) {
  const auto [wbits, abits] = GetParam();
  Rng rng(static_cast<std::uint64_t>(wbits * 100 + abits));
  const CimConfig cfg{4, 4, 2, wbits, abits};
  CimMacro macro(cfg);
  const auto w = random_codes(cfg.tree_inputs * cfg.columns, wbits, rng);
  macro.write_entry(0, w);
  const auto act = random_codes(cfg.tree_inputs, abits, rng);
  const auto out = macro.gemv(0, act);
  const auto ref = int_gemv_ref(act, w, cfg.tree_inputs, cfg.columns);
  for (std::size_t c = 0; c < cfg.columns; ++c) EXPECT_EQ(out[c], ref[c]);
  EXPECT_EQ(macro.cycles_elapsed(),
            cim_entry_write_cycles(cfg) + cim_gemm_cycles(cfg, 1));
}

INSTANTIATE_TEST_SUITE_P(Precisions, CimPrecisionSweep,
                         ::testing::Values(std::make_pair(4, 4), std::make_pair(4, 8),
                                           std::make_pair(8, 4), std::make_pair(8, 8),
                                           std::make_pair(8, 16),
                                           std::make_pair(16, 8),
                                           std::make_pair(2, 2)));

}  // namespace
}  // namespace edgemm::coproc
