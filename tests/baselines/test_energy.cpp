#include "baselines/energy_model.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"

namespace edgemm::baselines {
namespace {

TEST(Energy, ChipPowerTimesTime) {
  const auto cfg = core::default_chip_config();
  const auto report = edgemm_energy(cfg, 2.0, 0);
  EXPECT_DOUBLE_EQ(report.chip_joules, 0.224);  // 112 mW × 2 s
  EXPECT_DOUBLE_EQ(report.dram_joules, 0.0);
}

TEST(Energy, DramChargedPerByte) {
  const auto cfg = core::default_chip_config();
  const auto report = edgemm_energy(cfg, 0.0, 1'000'000'000);  // 1 GB
  // 160 pJ/B × 1e9 B = 0.16 J.
  EXPECT_NEAR(report.dram_joules, 0.16, 1e-9);
}

TEST(Energy, TotalsAndTokensPerJoule) {
  const auto cfg = core::default_chip_config();
  const auto report = edgemm_energy(cfg, 1.0, 1'000'000'000);
  EXPECT_NEAR(report.total_joules(), 0.112 + 0.16, 1e-9);
  EXPECT_NEAR(tokens_per_joule(138.0, report), 138.0 / 0.272, 1e-6);
}

TEST(Energy, ZeroEnergyGuard) {
  EXPECT_EQ(tokens_per_joule(100.0, EnergyReport{}), 0.0);
}

TEST(Energy, GpuBoardEnergy) {
  EXPECT_DOUBLE_EQ(gpu_energy_joules(80.0, 0.5), 40.0);
}

TEST(Energy, BreakdownComponentsAddUp) {
  const auto cfg = core::default_chip_config();
  const auto b = energy_breakdown(cfg, /*sa_macs=*/1e12, /*cim_macs=*/1e12,
                                  /*dram_bytes=*/1'000'000'000, /*seconds=*/1.0);
  EXPECT_NEAR(b.sa_joules, 0.9, 1e-9);     // 1e12 × 0.9 pJ
  EXPECT_NEAR(b.cim_joules, 0.15, 1e-9);   // 1e12 × 0.15 pJ
  EXPECT_NEAR(b.dram_joules, 0.16, 1e-9);  // 1 GB × 160 pJ/B
  EXPECT_NEAR(b.static_joules, 0.028, 1e-9);
  EXPECT_NEAR(b.total_joules(),
              b.sa_joules + b.cim_joules + b.dram_joules + b.static_joules, 1e-12);
}

TEST(Energy, CimMacsCheaperThanSaMacs) {
  // The architectural point of the CIM macro: in-SRAM INT8 MACs avoid
  // the operand movement a systolic BF16 MAC pays for.
  const auto cfg = core::default_chip_config();
  const auto b = energy_breakdown(cfg, 1e12, 1e12, 0, 0.0);
  EXPECT_GT(b.sa_joules, 3.0 * b.cim_joules);
}

TEST(Energy, DramDominatesComputeAtDecodeIntensity) {
  // Decode moves ~1 GB per 2 GFLOP: memory energy must dwarf compute.
  const auto cfg = core::default_chip_config();
  const auto b = energy_breakdown(cfg, 0, 1.0e9, 1'000'000'000, 0.02);
  EXPECT_GT(b.dram_joules, 100.0 * b.cim_joules);
}

TEST(Energy, EdgeMmFarMoreEfficientThanGpu) {
  // Table II direction: tokens/J on EdgeMM ≫ GPU for the same tokens.
  const auto cfg = core::default_chip_config();
  const double seconds = 1.0;
  const auto edge = edgemm_energy(cfg, seconds, 50'000'000'000);  // 50 GB moved
  const double gpu = gpu_energy_joules(80.0, seconds);
  EXPECT_LT(edge.total_joules(), gpu / 5.0);
}

}  // namespace
}  // namespace edgemm::baselines
