#include "baselines/gpu_model.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "model/workload.hpp"

namespace edgemm::baselines {
namespace {

TEST(GpuModel, GemvIsBandwidthBound) {
  GpuSpec spec;
  const core::GemmWork gemv{1, 2048, 5632, Phase::kDecode, false, 0, false};
  const double s = gpu_op_seconds(spec, gemv);
  const double bytes = 2048.0 * 5632.0 * 2.0;
  const double bw_floor = bytes / spec.memory_bandwidth;
  EXPECT_GT(s, bw_floor);             // derated bandwidth + launch
  EXPECT_LT(s, bw_floor * 4.0);       // but in the memory-bound regime
}

TEST(GpuModel, GemmIsComputeBound) {
  GpuSpec spec;
  const core::GemmWork gemm{300, 2048, 5632, Phase::kPrefill, false, 0, false};
  const double s = gpu_op_seconds(spec, gemm);
  const double flops = static_cast<double>(gemm.flops());
  const double compute_floor = flops / spec.peak_flops;
  EXPECT_GT(s, compute_floor);  // efficiency derate applies
}

TEST(GpuModel, LaunchOverheadVisibleOnTinyOps) {
  GpuSpec spec;
  const core::GemmWork tiny{1, 64, 64, Phase::kDecode, false, 0, false};
  const double s = gpu_op_seconds(spec, tiny);
  EXPECT_GE(s, spec.kernel_launch_seconds);
  EXPECT_LT(s, spec.kernel_launch_seconds * 2.0);
}

TEST(GpuModel, EvaluatesFullWorkload) {
  const auto workload =
      model::build_phase_workload(model::sphinx_tiny(), model::WorkloadParams{});
  const auto timing = evaluate_gpu(GpuSpec{}, workload);
  EXPECT_GT(timing.encoder_seconds, 0.0);
  EXPECT_GT(timing.prefill_seconds, 0.0);
  EXPECT_GT(timing.decode_token_seconds, 0.0);
  // Decode of one token is far cheaper than prefill of 300.
  EXPECT_LT(timing.decode_token_seconds, timing.prefill_seconds);
  // SPHINX-Tiny decode on a 3060-class GPU: O(5-20 ms) per token.
  EXPECT_GT(timing.decode_token_seconds, 2e-3);
  EXPECT_LT(timing.decode_token_seconds, 50e-3);
}

TEST(GpuModel, RequestTimeScalesWithOutput) {
  const auto workload =
      model::build_phase_workload(model::sphinx_tiny(), model::WorkloadParams{});
  const auto timing = evaluate_gpu(GpuSpec{}, workload);
  const double l32 = timing.request_seconds(32);
  const double l128 = timing.request_seconds(128);
  EXPECT_GT(l128, l32);
  EXPECT_NEAR(l128 - l32, 96.0 * timing.decode_token_seconds, 1e-9);
  EXPECT_GT(timing.tokens_per_second(128), timing.tokens_per_second(8));
}

TEST(GpuSpecValidate, DefaultSpecIsValidAndSettersChain) {
  EXPECT_NO_THROW(GpuSpec{}.validate());
  GpuSpec spec = GpuSpec{}
                     .with_peak_flops(10.0e12)
                     .with_memory_bandwidth(200.0e9)
                     .with_gemm_efficiency(0.6)
                     .with_gemv_bandwidth_efficiency(0.5)
                     .with_kernel_launch_seconds(4.0e-6)
                     .with_elem_bytes(2)
                     .with_board_power_w(60.0);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_DOUBLE_EQ(spec.peak_flops, 10.0e12);
  EXPECT_DOUBLE_EQ(spec.gemm_efficiency, 0.6);
}

TEST(GpuSpecValidate, SettersRejectBadValuesEagerly) {
  // Eager errors (the EngineConfig builder idiom): the bad field is
  // named at the call site, not at some later validate().
  EXPECT_THROW(GpuSpec{}.with_peak_flops(0.0), std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_peak_flops(-1.0), std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_memory_bandwidth(0.0), std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_gemm_efficiency(0.0), std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_gemm_efficiency(1.5), std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_gemv_bandwidth_efficiency(-0.1),
               std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_kernel_launch_seconds(-1e-6),
               std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_elem_bytes(0), std::invalid_argument);
  EXPECT_THROW(GpuSpec{}.with_board_power_w(0.0), std::invalid_argument);
  EXPECT_NO_THROW(GpuSpec{}.with_kernel_launch_seconds(0.0));  // free launch ok
}

TEST(GpuSpecValidate, ValidateCatchesHandBuiltBadSpecs) {
  GpuSpec spec;
  spec.gemv_bandwidth_efficiency = 1.2;  // brace-init bypasses the setters
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = GpuSpec{};
  spec.memory_bandwidth = -5.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = GpuSpec{};
  spec.elem_bytes = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(GpuModel, OpBytesPriceWeightsAndActivationsPerLaunch) {
  // No TCDM residency: every launch streams the full k*n weight tile
  // plus the m*(k+n) activation tiles, even when weights_resident is
  // set (the flag is an EdgeMM concept).
  GpuSpec spec;
  core::GemmWork op{300, 2048, 5632, Phase::kPrefill, false, 0, false};
  const Bytes expected =
      (Bytes{2048} * 5632 + Bytes{300} * (2048 + 5632)) * spec.elem_bytes;
  EXPECT_EQ(gpu_op_bytes(spec, op), expected);
  op.weights_resident = true;
  EXPECT_EQ(gpu_op_bytes(spec, op), expected);
}

TEST(GpuModel, LatencyBreakdownShiftsTowardDecode) {
  // Fig. 2(a): growing output length inflates the decode share.
  const auto workload =
      model::build_phase_workload(model::sphinx_tiny(), model::WorkloadParams{});
  const auto timing = evaluate_gpu(GpuSpec{}, workload);
  auto decode_share = [&](std::size_t l) {
    const double total = timing.request_seconds(l);
    return timing.decode_token_seconds * static_cast<double>(l) / total;
  };
  EXPECT_LT(decode_share(8), decode_share(128));
  EXPECT_GT(decode_share(512), 0.8);
}

}  // namespace
}  // namespace edgemm::baselines
