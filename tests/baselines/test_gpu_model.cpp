#include "baselines/gpu_model.hpp"

#include <gtest/gtest.h>

#include "model/workload.hpp"

namespace edgemm::baselines {
namespace {

TEST(GpuModel, GemvIsBandwidthBound) {
  GpuSpec spec;
  const core::GemmWork gemv{1, 2048, 5632, Phase::kDecode, false, 0, false};
  const double s = gpu_op_seconds(spec, gemv);
  const double bytes = 2048.0 * 5632.0 * 2.0;
  const double bw_floor = bytes / spec.memory_bandwidth;
  EXPECT_GT(s, bw_floor);             // derated bandwidth + launch
  EXPECT_LT(s, bw_floor * 4.0);       // but in the memory-bound regime
}

TEST(GpuModel, GemmIsComputeBound) {
  GpuSpec spec;
  const core::GemmWork gemm{300, 2048, 5632, Phase::kPrefill, false, 0, false};
  const double s = gpu_op_seconds(spec, gemm);
  const double flops = static_cast<double>(gemm.flops());
  const double compute_floor = flops / spec.peak_flops;
  EXPECT_GT(s, compute_floor);  // efficiency derate applies
}

TEST(GpuModel, LaunchOverheadVisibleOnTinyOps) {
  GpuSpec spec;
  const core::GemmWork tiny{1, 64, 64, Phase::kDecode, false, 0, false};
  const double s = gpu_op_seconds(spec, tiny);
  EXPECT_GE(s, spec.kernel_launch_seconds);
  EXPECT_LT(s, spec.kernel_launch_seconds * 2.0);
}

TEST(GpuModel, EvaluatesFullWorkload) {
  const auto workload =
      model::build_phase_workload(model::sphinx_tiny(), model::WorkloadParams{});
  const auto timing = evaluate_gpu(GpuSpec{}, workload);
  EXPECT_GT(timing.encoder_seconds, 0.0);
  EXPECT_GT(timing.prefill_seconds, 0.0);
  EXPECT_GT(timing.decode_token_seconds, 0.0);
  // Decode of one token is far cheaper than prefill of 300.
  EXPECT_LT(timing.decode_token_seconds, timing.prefill_seconds);
  // SPHINX-Tiny decode on a 3060-class GPU: O(5-20 ms) per token.
  EXPECT_GT(timing.decode_token_seconds, 2e-3);
  EXPECT_LT(timing.decode_token_seconds, 50e-3);
}

TEST(GpuModel, RequestTimeScalesWithOutput) {
  const auto workload =
      model::build_phase_workload(model::sphinx_tiny(), model::WorkloadParams{});
  const auto timing = evaluate_gpu(GpuSpec{}, workload);
  const double l32 = timing.request_seconds(32);
  const double l128 = timing.request_seconds(128);
  EXPECT_GT(l128, l32);
  EXPECT_NEAR(l128 - l32, 96.0 * timing.decode_token_seconds, 1e-9);
  EXPECT_GT(timing.tokens_per_second(128), timing.tokens_per_second(8));
}

TEST(GpuModel, LatencyBreakdownShiftsTowardDecode) {
  // Fig. 2(a): growing output length inflates the decode share.
  const auto workload =
      model::build_phase_workload(model::sphinx_tiny(), model::WorkloadParams{});
  const auto timing = evaluate_gpu(GpuSpec{}, workload);
  auto decode_share = [&](std::size_t l) {
    const double total = timing.request_seconds(l);
    return timing.decode_token_seconds * static_cast<double>(l) / total;
  };
  EXPECT_LT(decode_share(8), decode_share(128));
  EXPECT_GT(decode_share(512), 0.8);
}

}  // namespace
}  // namespace edgemm::baselines
