#include "common/tensor.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace edgemm {
namespace {

TEST(Tensor, ConstructsZeroed) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(t.at(r, c), 0.0F);
  }
}

TEST(Tensor, RejectsZeroDimensions) {
  EXPECT_THROW(Tensor(0, 4), std::invalid_argument);
  EXPECT_THROW(Tensor(4, 0), std::invalid_argument);
}

TEST(Tensor, RejectsMismatchedData) {
  EXPECT_THROW(Tensor(2, 2, std::vector<float>{1.0F}), std::invalid_argument);
}

TEST(Tensor, RowViewIsWritable) {
  Tensor t(2, 3);
  auto row = t.row(1);
  row[2] = 5.0F;
  EXPECT_EQ(t.at(1, 2), 5.0F);
}

TEST(Tensor, BlockExtractsSubmatrix) {
  Tensor t(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) t.at(r, c) = static_cast<float>(r * 10 + c);
  }
  const Tensor b = t.block(1, 2, 2, 2);
  EXPECT_EQ(b.at(0, 0), 12.0F);
  EXPECT_EQ(b.at(1, 1), 23.0F);
}

TEST(Tensor, BlockOutOfRangeThrows) {
  Tensor t(4, 4);
  EXPECT_THROW(t.block(3, 0, 2, 2), std::out_of_range);
  EXPECT_THROW(t.block(0, 3, 2, 2), std::out_of_range);
}

TEST(Tensor, TransposeInvolution) {
  Rng rng(3);
  Tensor t(5, 7);
  for (float& v : t.flat()) v = static_cast<float>(rng.gaussian());
  const Tensor tt = t.transposed().transposed();
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t c = 0; c < t.cols(); ++c) EXPECT_EQ(tt.at(r, c), t.at(r, c));
  }
}

TEST(Matmul, KnownProduct) {
  Tensor a(2, 2, {1.0F, 2.0F, 3.0F, 4.0F});
  Tensor b(2, 2, {5.0F, 6.0F, 7.0F, 8.0F});
  const Tensor c = matmul_reference(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0F);
  EXPECT_EQ(c.at(0, 1), 22.0F);
  EXPECT_EQ(c.at(1, 0), 43.0F);
  EXPECT_EQ(c.at(1, 1), 50.0F);
}

TEST(Matmul, DimensionMismatchThrows) {
  Tensor a(2, 3);
  Tensor b(2, 2);
  EXPECT_THROW(matmul_reference(a, b), std::invalid_argument);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(11);
  Tensor a(4, 4);
  for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
  Tensor eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0F;
  const Tensor c = matmul_reference(a, eye);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      EXPECT_FLOAT_EQ(c.at(r, col), a.at(r, col));
    }
  }
}

TEST(Gemv, MatchesMatmulRow) {
  Rng rng(17);
  Tensor m(6, 5);
  for (float& v : m.flat()) v = static_cast<float>(rng.gaussian());
  std::vector<float> vec(6);
  for (float& v : vec) v = static_cast<float>(rng.gaussian());

  const auto out = gemv_reference(vec, m);
  Tensor row(1, 6, std::vector<float>(vec.begin(), vec.end()));
  const Tensor expect = matmul_reference(row, m);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t j = 0; j < 5; ++j) EXPECT_FLOAT_EQ(out[j], expect.at(0, j));
}

TEST(Gemv, LengthMismatchThrows) {
  Tensor m(3, 2);
  std::vector<float> v(4, 1.0F);
  EXPECT_THROW(gemv_reference(v, m), std::invalid_argument);
}

}  // namespace
}  // namespace edgemm
