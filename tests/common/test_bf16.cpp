#include "common/bf16.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace edgemm {
namespace {

TEST(Bf16, ZeroRoundTripsExactly) {
  EXPECT_EQ(Bf16(0.0F).to_float(), 0.0F);
  EXPECT_EQ(Bf16(-0.0F).bits(), 0x8000);
}

TEST(Bf16, ExactValuesSurvive) {
  // Powers of two and small integers are exactly representable.
  for (const float v : {1.0F, -1.0F, 2.0F, 0.5F, -0.25F, 128.0F, -65536.0F}) {
    EXPECT_EQ(Bf16(v).to_float(), v) << v;
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // 1 + 2^-8 is exactly halfway between 1.0 and the next BF16 (1 + 2^-7);
  // ties go to the even mantissa, i.e. 1.0.
  const float halfway = 1.0F + 0x1.0p-8F;
  EXPECT_EQ(Bf16(halfway).to_float(), 1.0F);
  // Slightly above the halfway point must round up.
  const float above = 1.0F + 0x1.2p-8F;
  EXPECT_EQ(Bf16(above).to_float(), 1.0F + 0x1.0p-7F);
}

TEST(Bf16, RelativeErrorBounded) {
  // BF16 has 8 mantissa bits -> relative error <= 2^-8.
  for (float v = 0.001F; v < 1.0e6F; v *= 3.7F) {
    const float r = bf16_round(v);
    EXPECT_LE(std::fabs(r - v) / v, 0x1.0p-8F) << v;
  }
}

TEST(Bf16, InfinityAndNanPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Bf16(inf).to_float(), inf);
  EXPECT_EQ(Bf16(-inf).to_float(), -inf);
  EXPECT_TRUE(std::isnan(Bf16(std::nanf("")).to_float()));
}

TEST(Bf16, LargeFiniteDoesNotOverflowToInf) {
  // Values near FLT_MAX may round up to infinity only if they exceed the
  // largest finite BF16; the largest finite BF16 itself must survive.
  const float max_bf16 = Bf16::from_bits(0x7F7F).to_float();
  EXPECT_TRUE(std::isfinite(bf16_round(max_bf16)));
  EXPECT_EQ(bf16_round(max_bf16), max_bf16);
}

TEST(Bf16, FromBitsBitsRoundTrip) {
  for (std::uint32_t b = 0; b < 0x10000u; b += 257) {
    const auto v = Bf16::from_bits(static_cast<std::uint16_t>(b));
    EXPECT_EQ(v.bits(), static_cast<std::uint16_t>(b));
  }
}

TEST(Bf16, WideningThenNarrowingIsIdentityOnBf16Values) {
  // Property: round(to_float(x)) == x for every non-NaN BF16 bit pattern.
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    const auto v = Bf16::from_bits(static_cast<std::uint16_t>(b));
    const float widened = v.to_float();
    if (std::isnan(widened)) continue;
    EXPECT_EQ(Bf16(widened).bits(), v.bits()) << b;
  }
}

}  // namespace
}  // namespace edgemm
