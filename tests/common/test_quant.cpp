#include "common/quant.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace edgemm {
namespace {

TEST(Quant, RejectsBadBitWidths) {
  const std::vector<float> v{1.0F};
  EXPECT_THROW(quantize_symmetric(v, 1), std::invalid_argument);
  EXPECT_THROW(quantize_symmetric(v, 17), std::invalid_argument);
  EXPECT_THROW(quantize_symmetric(v, 0), std::invalid_argument);
}

TEST(Quant, AllZerosKeepScaleOne) {
  const std::vector<float> v(16, 0.0F);
  const auto q = quantize_symmetric(v, 8);
  EXPECT_EQ(q.scale, 1.0F);
  for (const auto c : q.codes) EXPECT_EQ(c, 0);
}

TEST(Quant, MaxMagnitudeMapsToQmax) {
  const std::vector<float> v{-3.0F, 1.5F, 3.0F};
  const auto q = quantize_symmetric(v, 8);
  EXPECT_EQ(q.codes[2], 127);
  EXPECT_EQ(q.codes[0], -127);
}

TEST(Quant, DequantizeInvertsWithinHalfLsb) {
  Rng rng(7);
  std::vector<float> v(256);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, 2.0));
  const auto q = quantize_symmetric(v, 8);
  const auto back = dequantize(q);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], q.scale * 0.5F + 1e-6F) << i;
  }
}

TEST(Quant, QuantMaxValues) {
  EXPECT_EQ(quant_max(8), 127);
  EXPECT_EQ(quant_max(4), 7);
  EXPECT_EQ(quant_max(2), 1);
  EXPECT_EQ(quant_max(16), 32767);
}

class QuantBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantBitsSweep, ErrorShrinksWithBits) {
  const int bits = GetParam();
  Rng rng(123);
  std::vector<float> v(512);
  for (float& x : v) x = static_cast<float>(rng.uniform(-4.0, 4.0));
  const auto q = quantize_symmetric(v, bits);
  const auto back = dequantize(q);
  double max_err = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(back[i]) - v[i]));
  }
  // Half an LSB plus rounding slack.
  EXPECT_LE(max_err, static_cast<double>(q.scale) * 0.5 + 1e-6);
  // Codes stay within range.
  for (const auto c : q.codes) {
    EXPECT_LE(std::abs(c), quant_max(bits));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantBitsSweep, ::testing::Values(2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace edgemm
