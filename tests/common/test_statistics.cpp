#include "common/statistics.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace edgemm {
namespace {

TEST(Statistics, MeanAndVarianceBasics) {
  const std::vector<float> v{1.0F, 2.0F, 3.0F, 4.0F};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_EQ(mean(std::vector<float>{}), 0.0);
  EXPECT_EQ(variance(std::vector<float>{1.0F}), 0.0);
}

TEST(Statistics, KurtosisOfConstantIsZeroGuard) {
  const std::vector<float> v(64, 3.0F);
  EXPECT_EQ(kurtosis(v), 0.0);
}

TEST(Statistics, KurtosisOfGaussianNearThree) {
  Rng rng(12);
  std::vector<float> v(200000);
  for (float& x : v) x = static_cast<float>(rng.gaussian());
  EXPECT_NEAR(kurtosis(v), 3.0, 0.1);
}

TEST(Statistics, OutliersRaiseKurtosis) {
  Rng rng(13);
  std::vector<float> body(4096);
  for (float& x : body) x = static_cast<float>(rng.gaussian());
  std::vector<float> spiked = body;
  for (int i = 0; i < 40; ++i) spiked[static_cast<std::size_t>(i) * 100] *= 30.0F;
  EXPECT_GT(kurtosis(spiked), kurtosis(body) * 3.0);
}

TEST(Statistics, CosineIdenticalIsOne) {
  const std::vector<float> v{1.0F, -2.0F, 3.0F};
  EXPECT_NEAR(cosine_similarity(v, v), 1.0, 1e-12);
}

TEST(Statistics, CosineOppositeIsMinusOne) {
  const std::vector<float> a{1.0F, 2.0F};
  const std::vector<float> b{-1.0F, -2.0F};
  EXPECT_NEAR(cosine_similarity(a, b), -1.0, 1e-12);
}

TEST(Statistics, CosineOrthogonalIsZero) {
  const std::vector<float> a{1.0F, 0.0F};
  const std::vector<float> b{0.0F, 5.0F};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-12);
}

TEST(Statistics, CosineZeroVectorConventions) {
  const std::vector<float> z{0.0F, 0.0F};
  const std::vector<float> v{1.0F, 1.0F};
  EXPECT_EQ(cosine_similarity(z, z), 1.0);
  EXPECT_EQ(cosine_similarity(z, v), 0.0);
}

TEST(Statistics, CosineLengthMismatchThrows) {
  const std::vector<float> a{1.0F};
  const std::vector<float> b{1.0F, 2.0F};
  EXPECT_THROW(cosine_similarity(a, b), std::invalid_argument);
}

TEST(TopK, SelectsLargestMagnitudes) {
  const std::vector<float> v{0.1F, -5.0F, 3.0F, -0.2F, 4.0F};
  const auto idx = top_k_indices_by_magnitude(v, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);  // |-5| largest
  EXPECT_EQ(idx[1], 4u);  // 4
  EXPECT_EQ(idx[2], 2u);  // 3
}

TEST(TopK, KClampedToSize) {
  const std::vector<float> v{1.0F, 2.0F};
  EXPECT_EQ(top_k_indices_by_magnitude(v, 10).size(), 2u);
}

TEST(TopK, DeterministicTieBreakByIndex) {
  const std::vector<float> v{2.0F, -2.0F, 2.0F};
  const auto idx = top_k_indices_by_magnitude(v, 2);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
}

TEST(CountAboveMaxOverT, MatchesAlgorithmOneSemantics) {
  // max = 16; threshold = 16/16 = 1; elements with |v| > 1 count.
  const std::vector<float> v{16.0F, 1.0F, 1.5F, -2.0F, 0.5F};
  EXPECT_EQ(count_above_max_over_t(v, 16.0), 3u);  // 16, 1.5, 2
}

TEST(CountAboveMaxOverT, AllZerosGiveZero) {
  const std::vector<float> v(8, 0.0F);
  EXPECT_EQ(count_above_max_over_t(v, 16.0), 0u);
}

TEST(CountAboveMaxOverT, RejectsNonPositiveT) {
  const std::vector<float> v{1.0F};
  EXPECT_THROW(count_above_max_over_t(v, 0.0), std::invalid_argument);
  EXPECT_THROW(count_above_max_over_t(v, -1.0), std::invalid_argument);
}

TEST(Sparsity, CountsNearZeros) {
  const std::vector<float> v{0.0F, 1e-9F, 0.5F, -0.5F};
  EXPECT_DOUBLE_EQ(sparsity(v, 1e-6), 0.5);
  EXPECT_EQ(sparsity(std::vector<float>{}, 1e-6), 0.0);
}

class CountThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(CountThresholdSweep, MonotoneInT) {
  // Property: n is non-decreasing in t (larger t -> lower threshold).
  Rng rng(88);
  std::vector<float> v(512);
  for (float& x : v) x = static_cast<float>(rng.gaussian());
  const double t = GetParam();
  const std::size_t n1 = count_above_max_over_t(v, t);
  const std::size_t n2 = count_above_max_over_t(v, t * 2.0);
  EXPECT_LE(n1, n2);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CountThresholdSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0, 32.0));

TEST(Percentile, InterpolatesOrderStatistics) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
  const std::vector<double> single{7.5};
  EXPECT_DOUBLE_EQ(percentile(single, 99.0), 7.5);
}

TEST(Percentile, HandlesEmptyAndValidates) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 100.5), std::invalid_argument);
}

}  // namespace
}  // namespace edgemm
