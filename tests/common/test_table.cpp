#include "common/table.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace edgemm {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.render();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t("align");
  t.set_header({"x", "y"});
  t.add_row({"long-cell", "1"});
  t.add_row({"s", "2"});
  const std::string s = t.render();
  // Every data line has equal length (fixed-width rendering).
  std::size_t first_len = 0;
  std::size_t pos = 0;
  int lines_checked = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::string line = s.substr(pos, nl - pos);
    if (!line.empty() && line[0] == '|') {
      if (first_len == 0) {
        first_len = line.size();
      } else {
        EXPECT_EQ(line.size(), first_len);
      }
      ++lines_checked;
    }
    pos = nl + 1;
  }
  EXPECT_EQ(lines_checked, 3);
}

TEST(Table, RejectsColumnMismatch) {
  Table t("bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(Format, SiSuffixes) {
  EXPECT_EQ(fmt_si(2340.0, 2), "2.34 k");
  EXPECT_EQ(fmt_si(2.34e9, 2), "2.34 G");
  EXPECT_EQ(fmt_si(18.0e12, 1), "18.0 T");
  EXPECT_EQ(fmt_si(42.0, 0), "42");
}

TEST(Format, PercentAndSpeedup) {
  EXPECT_EQ(fmt_percent(0.423, 1), "42.3 %");
  EXPECT_EQ(fmt_speedup(2.84, 2), "2.84x");
}

}  // namespace
}  // namespace edgemm
