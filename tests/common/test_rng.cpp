#include "common/rng.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace edgemm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(99);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(2024);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(55);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.log_normal(-2.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(77);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace edgemm
