#include "core/host_core.hpp"

#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "common/quant.hpp"
#include "isa/encoding.hpp"
#include "isa/instructions.hpp"

namespace edgemm::core {

/// Decoded instruction plus resolved mnemonic, shared by the exec_*
/// handlers.
struct DecodedView {
  isa::Fields fields;
  isa::Mnemonic mnemonic;
};

IllegalInstruction::IllegalInstruction(const std::string& what)
    : std::runtime_error(what) {}

HostCore::HostCore(const ChipConfig& config, CoreKind kind, CoreId core_id,
                   ClusterId cluster_id, std::uint32_t group_id,
                   std::uint32_t core_pos)
    : config_(config), kind_(kind),
      csrs_(core_id, kind, cluster_id, group_id, core_pos),
      vu_(kind == CoreKind::kComputeCentric ? config.systolic.cols
                                            : config.cim.columns) {
  if (kind == CoreKind::kComputeCentric) {
    mregs_.emplace(config.systolic.rows, config.systolic.cols);
    sa_.emplace(config.systolic);
  } else {
    cim_.emplace(config.cim);
  }
}

void HostCore::set_xreg(std::size_t index, std::uint32_t value) {
  if (index >= xregs_.size()) throw std::out_of_range("HostCore: xreg index");
  if (index == 0) return;  // x0 is hard-wired zero
  xregs_[index] = value;
}

std::uint32_t HostCore::xreg(std::size_t index) const {
  if (index >= xregs_.size()) throw std::out_of_range("HostCore: xreg index");
  return xregs_[index];
}

void HostCore::set_vreg(std::size_t index, std::vector<float> value) {
  if (index >= kNumVRegs) throw std::out_of_range("HostCore: vreg index");
  if (value.size() > kMaxVlen) {
    throw std::invalid_argument("HostCore: vector length exceeds kMaxVlen");
  }
  vregs_[index] = std::move(value);
}

const std::vector<float>& HostCore::vreg(std::size_t index) const {
  if (index >= kNumVRegs) throw std::out_of_range("HostCore: vreg index");
  return vregs_[index];
}

void HostCore::bind_lsu_slot(std::size_t slot, Tensor* tile) {
  if (slot >= lsu_slots_.size()) throw std::out_of_range("HostCore: LSU slot");
  lsu_slots_[slot] = tile;
}

void HostCore::bind_matrix(std::uint32_t address, const Tensor* matrix) {
  if (matrix == nullptr) throw std::invalid_argument("HostCore: null matrix binding");
  BoundMatrix bound;
  bound.tensor = matrix;
  bound_matrices_[address] = bound;
}

coproc::MatrixRegFile& HostCore::matrix_regs() {
  if (!mregs_) throw IllegalInstruction("matrix registers absent on MC-core");
  return *mregs_;
}

coproc::SystolicArray& HostCore::systolic() {
  if (!sa_) throw IllegalInstruction("systolic array absent on MC-core");
  return *sa_;
}

coproc::CimMacro& HostCore::cim() {
  if (!cim_) throw IllegalInstruction("CIM macro absent on CC-core");
  return *cim_;
}

Cycle HostCore::execute(std::uint32_t word) {
  isa::Fields fields;
  if (!isa::decode(word, fields)) {
    throw IllegalInstruction("not an EdgeMM extension word");
  }
  const auto mnemonic = isa::mnemonic_from_fields(fields);
  if (!mnemonic) throw IllegalInstruction("unknown extension encoding");
  const DecodedView d{fields, *mnemonic};
  switch (fields.format) {
    case isa::Format::kMatrixMatrix: return exec_matrix(d);
    case isa::Format::kMatrixVector: return exec_matrix_vector(d);
    case isa::Format::kVectorVector: return exec_vector(d);
    case isa::Format::kConfig: return exec_config(d);
  }
  throw IllegalInstruction("unreachable format");
}

Cycle HostCore::run(std::span<const std::uint32_t> words) {
  Cycle total = 0;
  for (const std::uint32_t w : words) total += execute(w);
  return total;
}

Cycle HostCore::exec_matrix(const DecodedView& d) {
  if (kind_ != CoreKind::kComputeCentric) {
    throw IllegalInstruction("M-M instruction on a memory-centric core");
  }
  auto& regs = *mregs_;
  const auto& f = d.fields;
  const std::size_t rows = config_.systolic.rows;
  const std::size_t cols = config_.systolic.cols;

  switch (d.mnemonic) {
    case isa::Mnemonic::kMmMul: {
      // md += ms1 (acts, R×R when R==C) × ms2 (stationary weights R×C).
      if (rows != cols) {
        throw IllegalInstruction("mm.mul requires a square systolic array");
      }
      sa_->load_weights(regs.reg(f.ms2));
      Tensor product = sa_->multiply(regs.reg(f.ms1));
      Tensor& acc = regs.reg(f.md);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          acc.at(r, c) += product.at(r, c);
        }
      }
      return coproc::systolic_tile_cycles(config_.systolic, rows);
    }
    case isa::Mnemonic::kMmLd: {
      Tensor* src = lsu_slots_[f.ms1];
      if (src == nullptr) throw std::invalid_argument("mm.ld: LSU slot unbound");
      regs.write(f.md, *src);
      return static_cast<Cycle>(rows);  // one tile row per LSU beat
    }
    case isa::Mnemonic::kMmSt: {
      Tensor* dst = lsu_slots_[f.ms1];
      if (dst == nullptr) throw std::invalid_argument("mm.st: LSU slot unbound");
      *dst = regs.reg(f.md);
      return static_cast<Cycle>(rows);
    }
    case isa::Mnemonic::kMmZero:
      regs.clear(f.md);
      return 1;
    case isa::Mnemonic::kMmAdd: {
      const Tensor& a = regs.reg(f.ms1);
      const Tensor& b = regs.reg(f.ms2);
      Tensor& out = regs.reg(f.md);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          out.at(r, c) = a.at(r, c) + b.at(r, c);
        }
      }
      return static_cast<Cycle>(rows);  // vector unit sweeps row-by-row
    }
    default:
      throw IllegalInstruction("unhandled M-M mnemonic");
  }
}

Cycle HostCore::exec_matrix_vector(const DecodedView& d) {
  if (kind_ != CoreKind::kMemoryCentric) {
    throw IllegalInstruction("M-V instruction on a compute-centric core");
  }
  const auto& f = d.fields;
  const auto& cim_cfg = config_.cim;

  switch (d.mnemonic) {
    case isa::Mnemonic::kMvLdw: {
      const std::uint32_t address = xreg(f.rs1);
      auto it = bound_matrices_.find(address);
      if (it == bound_matrices_.end()) {
        throw std::invalid_argument("mv.ldw: no matrix bound at address");
      }
      BoundMatrix& bound = it->second;
      const Tensor& w = *bound.tensor;
      if (w.cols() > cim_cfg.columns) {
        throw std::invalid_argument(
            "mv.ldw: matrix wider than the macro; tile by column groups");
      }
      const std::size_t entries =
          (w.rows() + cim_cfg.tree_inputs - 1) / cim_cfg.tree_inputs;
      if (next_free_entry_ + entries > cim_cfg.entries) {
        // Macro full: steady-state weight streaming simply wraps.
        next_free_entry_ = 0;
        for (auto& [addr, other] : bound_matrices_) other.loaded = false;
      }
      if (entries > cim_cfg.entries) {
        throw std::invalid_argument("mv.ldw: matrix exceeds macro capacity");
      }
      // Per-tensor symmetric quantization to the macro's weight width.
      const auto q = quantize_symmetric(w.flat(), cim_cfg.weight_bits);
      bound.weight_scale = q.scale;
      bound.first_entry = next_free_entry_;
      bound.entry_count = entries;
      // Pack row-chunks of R rows into entries, zero-padding the edges.
      for (std::size_t e = 0; e < entries; ++e) {
        std::vector<std::int32_t> tile(cim_cfg.tree_inputs * cim_cfg.columns, 0);
        for (std::size_t r = 0; r < cim_cfg.tree_inputs; ++r) {
          const std::size_t row = e * cim_cfg.tree_inputs + r;
          if (row >= w.rows()) break;
          for (std::size_t c = 0; c < w.cols(); ++c) {
            tile[r * cim_cfg.columns + c] = q.codes[row * w.cols() + c];
          }
        }
        cim_->write_entry(next_free_entry_ + e, tile);
      }
      next_free_entry_ += entries;
      bound.loaded = true;
      return static_cast<Cycle>(entries) * coproc::cim_entry_write_cycles(cim_cfg);
    }
    case isa::Mnemonic::kMvMul: {
      const std::uint32_t address = xreg(f.rs1);
      auto it = bound_matrices_.find(address);
      if (it == bound_matrices_.end() || !it->second.loaded) {
        throw std::invalid_argument("mv.mul: matrix not loaded (run mv.ldw first)");
      }
      const BoundMatrix& bound = it->second;
      const Tensor& w = *bound.tensor;
      const std::vector<float>& act = vregs_[f.vs1];
      if (act.size() != w.rows()) {
        throw std::invalid_argument("mv.mul: activation length must equal matrix rows");
      }
      // Quantize the activation vector for the bit-serial broadcast.
      const auto qa = quantize_symmetric(act, cim_cfg.act_bits);
      std::vector<std::int32_t> codes(bound.entry_count * cim_cfg.tree_inputs, 0);
      for (std::size_t i = 0; i < qa.codes.size(); ++i) codes[i] = qa.codes[i];
      const auto acc =
          cim_->gemv_long(bound.first_entry, bound.entry_count, codes);
      std::vector<float> out(w.cols());
      for (std::size_t c = 0; c < w.cols(); ++c) {
        out[c] = static_cast<float>(acc[c]) * qa.scale * bound.weight_scale;
      }
      vregs_[f.vd] = std::move(out);
      return coproc::cim_gemm_cycles(cim_cfg, bound.entry_count);
    }
    case isa::Mnemonic::kMvPrune: {
      const std::vector<float>& v = vregs_[f.vs1];
      const auto t = static_cast<double>(csrs_.read(isa::Csr::kPruneThresh));
      const std::size_t k = csrs_.read(isa::Csr::kPruneK);
      coproc::PruneOutcome outcome = pruner_.prune(v, k, t);
      csrs_.set_prune_count(static_cast<std::uint32_t>(outcome.n_above_threshold));
      vregs_[f.vd] = outcome.compacted;
      const Cycle cycles = coproc::ActAwarePruner::prune_cycles(outcome.kept.size());
      last_prune_ = std::move(outcome);
      return cycles;
    }
    default:
      throw IllegalInstruction("unhandled M-V mnemonic");
  }
}

Cycle HostCore::exec_vector(const DecodedView& d) {
  const auto& f = d.fields;
  const std::vector<float>& a = vregs_[f.vs1];
  const Cycle before = vu_.cycles_elapsed();
  switch (d.mnemonic) {
    case isa::Mnemonic::kVvAdd:
      vregs_[f.vd] = vu_.add(a, vregs_[f.vs2]);
      break;
    case isa::Mnemonic::kVvMul:
      vregs_[f.vd] = vu_.mul(a, vregs_[f.vs2]);
      break;
    case isa::Mnemonic::kVvMax:
      vregs_[f.vd] = vu_.max(a, vregs_[f.vs2]);
      break;
    case isa::Mnemonic::kVvAct:
      vregs_[f.vd] = vu_.activate(a, static_cast<isa::ActUop>(f.uop));
      break;
    case isa::Mnemonic::kVvCvt:
      // uop 0 = bf16 round-trip; other precisions round through int8.
      if (f.uop == 0) {
        vregs_[f.vd] = vu_.to_bf16(a);
      } else {
        const auto q = quantize_symmetric(a, 8);
        vregs_[f.vd] = dequantize(q);
      }
      break;
    default:
      throw IllegalInstruction("unhandled V-V mnemonic");
  }
  const Cycle charged = vu_.cycles_elapsed() - before;
  return charged > 0 ? charged : 1;
}

Cycle HostCore::exec_config(const DecodedView& d) {
  const auto& f = d.fields;
  switch (d.mnemonic) {
    case isa::Mnemonic::kCfgCsrW:
      csrs_.write(static_cast<isa::Csr>(f.csr), xreg(f.rs1));
      return 1;
    case isa::Mnemonic::kCfgCsrR:
      set_xreg(f.rs1, csrs_.read(static_cast<isa::Csr>(f.csr)));
      return 1;
    case isa::Mnemonic::kCfgSync:
      csrs_.bump_sync_epoch();
      return 1;
    default:
      throw IllegalInstruction("unhandled Config mnemonic");
  }
}

}  // namespace edgemm::core
