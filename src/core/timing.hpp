// Timing plane: analytic per-op compute models + event-driven memory.
//
// Compute latency inside a cluster follows the closed-form cycle models
// of the coprocessors (Eq. 2 / Eq. 3 plus weight-write and distribution
// overheads); DRAM traffic, DMA throttling and inter-cluster contention
// are simulated event-by-event. DESIGN.md §5 explains the split.
#ifndef EDGEMM_CORE_TIMING_HPP
#define EDGEMM_CORE_TIMING_HPP

#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "mem/dma.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {

class FastMemoryModel;  // fast replay tier (core/fast_replay.hpp)

/// Flavours of cluster the timing plane can instantiate. The baseline
/// SIMD flavour models the unextended Snitch cluster of Fig. 11.
enum class ClusterKind : std::uint8_t {
  kComputeCentric,
  kMemoryCentric,
  kBaselineSimd,
};

const char* to_string(ClusterKind kind);

/// One dense operation: out(m×n) = acts(m×k) × weights(k×n).
/// GEMV is the m = 1 case.
struct GemmWork {
  std::size_t m = 1;
  std::size_t k = 1;
  std::size_t n = 1;
  Phase phase = Phase::kDecode;
  /// When true the operands are already on-chip / in-macro (batch
  /// decoding reuses weights across the batch, Fig. 9(c)) and no weight
  /// DMA is issued.
  bool weights_resident = false;
  /// Overrides the cluster's element size for the *weight* operand
  /// (e.g. BF16 KV-cache streamed through an MC-cluster). 0 = default.
  std::size_t weight_elem_bytes_override = 0;
  /// True for FFN projections whose input channels the activation-aware
  /// pruner may drop (§IV-A prunes FFN weight rows only).
  bool prunable = false;

  Flops flops() const { return 2ULL * m * k * n; }
};

/// Per-cluster statistics accumulated by the timing model.
struct ClusterStats {
  Cycle busy_until = 0;        ///< completion time of the last op
  Cycle compute_cycles = 0;    ///< pure datapath occupancy
  Bytes dma_bytes = 0;         ///< DRAM traffic attributed to this cluster
  Flops flops = 0;             ///< useful work executed
  std::size_t ops_executed = 0;
};

/// Timing model of one cluster: turns a stream of GemmWork into
/// double-buffered (DMA-in, compute) block sequences on the shared DRAM.
class ClusterTimingModel {
 public:
  /// Direct-to-DRAM wiring (single-hop; unit tests and isolated probes).
  ClusterTimingModel(sim::Simulator& sim, mem::DramController& dram,
                     const ChipConfig& config, ClusterKind kind, std::string name);

  /// Hierarchical wiring: the DMA routes through the provided
  /// interconnect path (group crossbar -> system crossbar -> DRAM).
  ClusterTimingModel(sim::Simulator& sim, mem::MemoryPath path,
                     const ChipConfig& config, ClusterKind kind, std::string name);

  ClusterKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// Analytic datapath cycles for `work` on this cluster (all cores of
  /// the cluster cooperating), excluding memory time.
  Cycle compute_cycles(const GemmWork& work) const;

  /// Weight bytes `work` pulls from DRAM on this cluster.
  Bytes weight_bytes(const GemmWork& work) const;

  /// Activation traffic (inputs + outputs) for `work`.
  Bytes activation_bytes(const GemmWork& work) const;

  /// Double-buffer block granularity (half the cluster working memory).
  Bytes block_bytes() const;

  /// Enqueues `ops`; `done` fires when the last block of the last op
  /// retires. May be called while a previous batch is still running —
  /// the new ops queue behind it.
  void run_ops(const std::vector<GemmWork>& ops, std::function<void()> done);

  /// Routes subsequent run_ops batches through the fast replay tier
  /// instead of the event-driven DMA plane. Wired once by
  /// FastMemoryModel::register_cluster at chip construction.
  void attach_fast_model(FastMemoryModel* fast) { fast_ = fast; }

  /// True when no blocks are queued or in flight.
  bool idle() const;

  mem::DmaEngine& dma() { return dma_; }
  const ClusterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ClusterStats{}; }

 private:
  struct Block {
    Bytes dma_bytes = 0;
    Cycle compute_cycles = 0;
    Flops flops = 0;
    bool last_of_batch = false;
    std::function<void()> done;  // set on the last block of a batch
  };

  void maybe_issue_dma();
  void maybe_start_compute();
  void finish_block(Block block);

  friend class FastMemoryModel;  // injects batch totals into stats_

  FastMemoryModel* fast_ = nullptr;
  sim::Simulator& sim_;
  const ChipConfig& config_;
  ClusterKind kind_;
  std::string name_;
  mem::DmaEngine dma_;
  std::deque<Block> blocks_;          // not yet DMA-issued
  std::deque<Block> ready_;           // loaded, awaiting compute
  std::size_t inflight_dma_ = 0;
  bool compute_busy_ = false;
  ClusterStats stats_;
};

/// Total DRAM traffic (weights + activations) `ops` would generate on
/// `cluster` — the traffic estimate behind the §IV-B budget ratios of
/// both the pipeline and the serving engine.
Bytes estimated_traffic_bytes(const ClusterTimingModel& cluster,
                              std::span<const GemmWork> ops);

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_TIMING_HPP
