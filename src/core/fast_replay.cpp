#include "core/fast_replay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#ifdef EDGEMM_FAST_DEBUG
#include <cstdio>
#include <cstdlib>
#endif

#include "common/assert.hpp"

namespace edgemm::core {

namespace {

// Half a byte of slack absorbs float rounding in crossing detection; the
// quantities compared are whole bytes.
constexpr double kByteEps = 0.5;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

/// Replays a batch's ops as the serial block pipeline run_ops executes,
/// with the DRAM channel serving at `cpb` cycles per byte, in ABSOLUTE
/// time from `t0`. The detailed engine's per-block recurrence is
///   serve_j = max(serve_{j-1}, issue_j + head) + b_j * cpb
///   land_j  = serve_j + tail
///   comp_j  = max(comp_{j-1}, land_j) + c_j
/// with issue_j the compute-start of block j-2 (the double-buffer slot
/// freeing). Within an op the blocks are uniform, so the recurrence
/// advances at the steady period
///   P = max(c_blk, b_blk*cpb, (head + tail + b_blk*cpb) / 2)
/// (compute-bound, channel-bound, or latency-starved — two compute
/// spans cover one pipe refill) after an exactly-priced first block.
/// head/tail are latencies: they delay landings but consume no channel
/// time, so a continuously-busy channel pays them once per drain, not
/// per block.
/// The PMC budget (`inv_rb` cycles per byte, 0 = unlimited) follows the
/// detailed DmaEngine's interval grid: usage resets at every multiple
/// of the throttle interval T (the grid is absolute — dma.cpp keys it
/// on now / T), an interval admits one allowance A = T / inv_rb at full
/// channel speed, and deferred bytes FLOOD at the following boundaries.
/// An op's cumulative grant curve is therefore a step function — short
/// bursts pass inside the current interval's remaining allowance, a
/// memory-heavy op in a compute-heavy chain waits for the next boundary
/// even though the stream's average demand fits the budget. Returns the
/// channel finish of the last byte (dma_end), the datapath drain (done)
/// and the final interval's charge (usage) for cross-batch carry.
FastMemoryModel::ChainTimes FastMemoryModel::replay_chain(
    const std::vector<OpCost>& ops, double cpb, double flood_cpb,
    double sync_cpb, double inv_rb, double t0, double usage0) const {
  const double tail = static_cast<double>(dram_.config().latency);
  const double T = static_cast<double>(config_.dma.throttle_interval);
  const double A = inv_rb > 0.0 ? T / inv_rb : 0.0;  // bytes per interval
  double chan = t0;        // channel service end
  double comp = t0;        // datapath drain
  double cs_last = t0;     // compute-start of the most recent block
  double cs_prev = t0;     // compute-start of the block before that
  double usage = usage0;   // bytes charged to the interval holding u_time
  double u_time = t0;
  double deferred = 0.0;   // bytes served by boundary floods
  for (const OpCost& op : ops) {
    if (op.bytes <= 0.0) {
      // Fully resident op: blocks go straight to the ready queue.
      comp = std::max(comp, cs_prev) + op.compute;
      const double new_last = comp - op.compute_last;
      cs_prev = op.n_blocks >= 2.0
                    ? std::max(new_last - op.compute_per_block, cs_last)
                    : cs_last;
      cs_last = new_last;
      continue;
    }
    // First block: its transfer was issued when the double-buffer slot
    // freed (cs_prev); the channel serves it after the lead burst's
    // crossbar traversal, or as soon as it drains the queue ahead.
    const double serve1 = std::max(chan, cs_prev + op.head);
    double avail = 0.0;
    if (A > 0.0) {
      if (std::floor(serve1 / T) > std::floor(u_time / T)) usage = 0.0;
      avail = std::max(A - usage, 0.0);
    }
    // Budget grant of the op's first c bytes: what fits the current
    // interval's remaining allowance passes at channel speed, the rest
    // floods at the following absolute boundaries. The final, partial
    // flood still takes channel time — at the flood-contended rate,
    // since sibling clusters' deferred bursts release at the very same
    // boundary.
    const auto grant = [&](double c) {
      if (c <= avail + kByteEps) return serve1;
      const double k = std::ceil((c - avail) / A);
      const double rem = c - avail - (k - 1.0) * A;
      return (std::floor(serve1 / T) + k) * T + rem * flood_cpb;
    };
    // The first block gates compute start, so unlike the bulk (whose
    // contention the realized stretch and the boundary floods already
    // price) it pays the lockstep-sibling burst collision directly.
    double land1 = serve1 + op.first_block * sync_cpb;
    const double b_blk = op.per_block * cpb;
    const double period = std::max(
        {op.compute_per_block, b_blk, 0.5 * (op.head + tail + b_blk)});
    double land_n = land1 + (op.n_blocks - 1.0) * period;
    double land_n1 = land1 + std::max(op.n_blocks - 2.0, 0.0) * period;
    double g_n = 0.0;
    if (A > 0.0) {
      // Gate the first block, the second-to-last and the last behind
      // their cumulative byte grants.
      land1 = std::max(land1, grant(op.first_block));
      g_n = grant(op.bytes);
      land_n = std::max({land_n, land1 + (op.n_blocks - 1.0) * period, g_n});
      land_n1 = std::max(
          {land_n1, land1 + std::max(op.n_blocks - 2.0, 0.0) * period,
           grant(op.bytes - op.last_block)});
    }
    land1 += tail;
    land_n += tail;
    land_n1 += tail;
    const double comp_end = std::max(std::max(comp, land1) + op.compute,
                                     land_n + op.compute_last);
    const double new_last = comp_end - op.compute_last;
    const double new_prev =
        op.n_blocks >= 2.0
            ? std::max(new_last - op.compute_per_block, land_n1)
            : cs_last;
    // Channel side: continuous service from the first block, gated by the
    // budget grant of the last byte, or by the last block's issue
    // (compute-start of block n-2 = new_prev - P).
    double chan_end = std::max(serve1 + op.bytes * cpb, g_n);
    if (op.n_blocks >= 2.0) {
      chan_end = std::max(chan_end,
                          new_prev - period + op.head + op.last_block * cpb);
    }
    if (A > 0.0) {
      // PMC charge left in chan_end's interval, seeding the next op.
      if (std::floor(chan_end / T) <= std::floor(serve1 / T)) {
        usage += op.bytes;  // all within the current interval
      } else if (op.bytes > avail + kByteEps && g_n >= chan_end) {
        // Flood-terminated: the final boundary's charge is exact.
        const double k = std::ceil((op.bytes - avail) / A);
        usage = op.bytes - avail - (k - 1.0) * A;
        deferred += op.bytes - avail;
      } else {
        // Compute/channel-paced across boundaries: estimate the final
        // interval's charge from the op's average issue rate.
        usage = std::min(
            {A, op.bytes, op.bytes * std::fmod(chan_end, T) /
                              std::max(chan_end - serve1, 1.0)});
      }
      u_time = chan_end;
    }
#ifdef EDGEMM_FAST_DEBUG
    if (std::getenv("EDGEMM_FAST_DBG") != nullptr) {
      std::fprintf(stderr,
                   "  op bytes=%.0f blocks=%.0f serve1=%.0f avail=%.0f "
                   "g_n=%.0f land1=%.0f chan_end=%.0f comp_end=%.0f "
                   "usage=%.0f\n",
                   op.bytes, op.n_blocks, serve1, avail, g_n, land1,
                   chan_end, comp_end, usage);
    }
#endif
    chan = chan_end;
    comp = comp_end;
    cs_prev = new_prev;
    cs_last = new_last;
  }
  return ChainTimes{chan, comp, usage, deferred};
}

const char* to_string(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kDetailed: return "detailed";
    case ReplayMode::kFast: return "fast";
  }
  return "?";
}

FastMemoryModel::FastMemoryModel(sim::Simulator& sim, mem::DramController& dram,
                                 const ChipConfig& config)
    : sim_(sim), dram_(dram), config_(config) {}

void FastMemoryModel::register_cluster(ClusterTimingModel& cluster) {
  lanes_.push_back(Lane{&cluster, nullptr, {}, 0});
  cluster.attach_fast_model(this);
}

std::size_t FastMemoryModel::lane_index(const ClusterTimingModel& cluster) const {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].cluster == &cluster) return i;
  }
  EDGEMM_ASSERT_MSG(false, "FastMemoryModel: cluster was never registered");
  return 0;
}

void FastMemoryModel::submit(ClusterTimingModel& cluster,
                             const std::vector<GemmWork>& ops,
                             std::function<void()> done) {
  EDGEMM_ASSERT(!ops.empty());
  const std::size_t li = lane_index(cluster);
  auto stream = std::make_unique<Stream>();
  stream->cluster = &cluster;
  stream->lane = li;
  stream->done = std::move(done);

  // Mirror run_ops' block split exactly: n blocks of bytes/n each, total
  // effective compute max(op_compute, n) (every block computes >= 1
  // cycle), last-block compute ceil(op_compute / n).
  const Bytes block_limit = cluster.block_bytes();
  stream->ops.reserve(ops.size());
  for (const GemmWork& work : ops) {
    const Bytes bytes = cluster.weight_bytes(work) + cluster.activation_bytes(work);
    const Cycle compute = cluster.compute_cycles(work);
    const auto n_blocks =
        bytes == 0 ? std::size_t{1}
                   : static_cast<std::size_t>((bytes + block_limit - 1) / block_limit);
    const Cycle effective = std::max<Cycle>(compute, n_blocks);
    stream->stat_bytes += bytes;
    stream->stat_compute += effective;
    stream->stat_flops += work.flops();
    OpCost cost;
    cost.bytes = static_cast<double>(bytes);
    cost.first_block = static_cast<double>(bytes / n_blocks);
    cost.per_block = cost.bytes / static_cast<double>(n_blocks);
    cost.last_block =
        cost.bytes - (static_cast<double>(n_blocks) - 1.0) * cost.per_block;
    cost.n_blocks = static_cast<double>(n_blocks);
    if (bytes > 0) {
      // Lead burst's path to the channel: its occupancy of each crossbar
      // hop plus the hop latencies (subsequent bursts pipeline behind).
      const double lead = std::min(static_cast<double>(config_.dma.burst_bytes),
                                   cost.per_block);
      cost.head = static_cast<double>(config_.group_xbar_latency) +
                  std::ceil(lead / config_.group_xbar_bytes_per_cycle) +
                  static_cast<double>(config_.system_xbar_latency) +
                  std::ceil(lead / config_.system_xbar_bytes_per_cycle);
    }
    cost.compute = static_cast<double>(effective);
    cost.compute_last = static_cast<double>((effective + n_blocks - 1) / n_blocks);
    cost.compute_per_block =
        static_cast<double>(effective) / static_cast<double>(n_blocks);
    stream->ops.push_back(cost);
  }
  stream->total_bytes = static_cast<double>(stream->stat_bytes);

  Lane& lane = lanes_[li];
  ++lane.outstanding;
  advance_to(static_cast<double>(sim_.now()));
  if (lane.active) {
    lane.pending.push_back(std::move(stream));
    return;  // rates unchanged until the active stream retires
  }
  activate(lane, std::move(stream));
  settle();
}

bool FastMemoryModel::idle(const ClusterTimingModel& cluster) const {
  for (const Lane& lane : lanes_) {
    if (lane.cluster == &cluster) return lane.outstanding == 0;
  }
  return true;
}

void FastMemoryModel::budgets_changed() {
  if (lanes_.empty() || budget_recompute_pending_) return;
  budget_recompute_pending_ = true;
  // Coalesce: a BandwidthManager rebalance re-budgets every cluster in
  // one event; re-price once after the last set_budget call.
  sim_.schedule(0, [this] {
    budget_recompute_pending_ = false;
    recompute();
  });
}

void FastMemoryModel::activate(Lane& lane, std::unique_ptr<Stream> stream,
                               double not_before) {
  EDGEMM_ASSERT(!lane.active);
  stream->started_at = std::max(last_advance_, not_before);
  if (stream->total_bytes <= kByteEps) {
    // Pure-compute batch (resident weights, no activations): no DMA time.
    stream->dma_done_at = last_advance_;
  } else {
    // Seed the PMC interval usage from the lane carry: the charge
    // persists only while the predecessor's final interval is still the
    // current one (the detailed DmaEngine lazily resets usage when the
    // absolute interval index rolls). Pricing itself is delegated to
    // reprice() so a mid-flight budget change re-derives it identically.
    stream->cpb_iso = 1.0 / dram_.config().bytes_per_cycle;
    const double T = static_cast<double>(config_.dma.throttle_interval);
    if (lane.bucket_time >= 0.0 &&
        std::floor(stream->started_at / T) == std::floor(lane.bucket_time / T)) {
      stream->usage0 = lane.bucket_usage;
    }
    reprice(*stream);
  }
  lane.active = std::move(stream);
}

void FastMemoryModel::reprice(Stream& s) {
  // Price the isolated chain with the budget in force NOW. The bandwidth
  // manager rebalances every interval, so a stream activated under a
  // tight partition must not stay priced tight for its whole life: the
  // interval charge it started on is byte-denominated (budget
  // independent), so just re-run the chain replay under the new
  // allowance. The isolated channel-service span is >= D * cpb_iso
  // wherever compute or the PMC throttles the loads, making D / dma_iso
  // the batch's average channel demand.
  const double rb = budget_rate(*s.cluster);
  if (rb == s.priced_rb) return;
  s.priced_rb = rb;
  if (std::isfinite(rb)) {
    const double cap = rb * static_cast<double>(config_.dma.throttle_interval);
    s.inv_rb = 1.0 / rb;
    s.tokens0 = std::max(cap - s.usage0, 0.0);
  } else {
    s.inv_rb = 0.0;
    s.tokens0 = 0.0;
  }
  const ChainTimes iso = replay_chain(s.ops, s.cpb_iso, s.cpb_iso, s.cpb_iso,
                                      s.inv_rb, s.started_at, s.usage0);
  s.dma_iso = iso.dma_end - s.started_at;
  s.demand_rate = s.total_bytes / s.dma_iso;
  s.defers = iso.deferred > kByteEps;
}

void FastMemoryModel::advance_to(double now) {
  const double dt = now - last_advance_;
  if (dt <= 0.0) {
    last_advance_ = std::max(last_advance_, now);
    return;
  }
  for (Lane& lane : lanes_) {
    Stream* s = lane.active.get();
    if (s == nullptr || s->dma_done_at >= 0.0 || s->rate <= 0.0) continue;
    // Contention the stream's boundary floods and lockstep fetches saw
    // over this window (the factors are piecewise constant between
    // recomputes, like the rates).
    if (s->defers) {
      s->flood_acc += s->flood_now * dt;
      s->slip_acc += s->slip_now * dt;
    }
    s->sync_acc += s->sync_now * dt;
    // A bandwidth rebalance moves the PMC budgets every interval; the
    // retire replay prices the whole chain at ONE rate, so integrate the
    // budget the stream actually lived under rather than trusting the
    // final snapshot.
    const double rb = budget_rate(*s->cluster);
    if (std::isfinite(rb)) s->rb_acc += rb * dt;
    const double add = s->rate * dt;
    // Rates are constant across [last_advance_, now], so crossings within
    // the step are exact interpolations.
    if (s->served_bytes + add >= s->total_bytes - kByteEps) {
      s->dma_done_at = last_advance_ +
                       std::max(0.0, s->total_bytes - s->served_bytes) / s->rate;
      s->served_bytes = s->total_bytes;
    } else {
      s->served_bytes += add;
    }
  }
  last_advance_ = now;
}

void FastMemoryModel::settle() {
  for (Lane& lane : lanes_) {
    while (lane.active && lane.active->dma_done_at >= 0.0) {
      auto finished = std::move(lane.active);
      lane.active = nullptr;
      retire(lane, std::move(finished));
    }
  }
  compute_rates();
  schedule_next();
}

void FastMemoryModel::retire(Lane& lane, std::unique_ptr<Stream> stream) {
  // Price completion by replaying the serial op chain at the CONTENDED
  // memory rate: the realized DMA span over the isolated one measures
  // how much channel contention plus throttling stretched the memory
  // side (1.0 when the stream ran at its full demand), and scaling
  // cpb_iso by that stretch re-prices only the memory terms — the chain
  // replay then layers the compute constraints exactly once. Using the
  // realized cycles-per-byte directly would double-count back-pressure:
  // demand_rate already slowed the integration wherever compute
  // throttled the loads.
  double cpb = 0.0;
  double flood_cpb = 0.0;
  double sync_cpb = 0.0;
  double inv_rb = stream->inv_rb;
  if (stream->total_bytes > kByteEps) {
    const double span = stream->dma_done_at - stream->started_at;
    const double stretch = std::max(span / stream->dma_iso, 1.0);
    cpb = stream->cpb_iso * stretch;
    flood_cpb = cpb;
    sync_cpb = cpb;
    if (inv_rb > 0.0 && span > 0.0 && stream->rb_acc > 0.0) {
      // The budget the stream lived under, not the final snapshot (a
      // managed rebalance moves it every interval).
      inv_rb = span / stream->rb_acc;
    }
    if (inv_rb > 0.0 && span > 0.0) {
      // Boundary floods are grid-synchronized: the clusters deferring
      // alongside this one release at the same instants, so the final
      // partial flood is served at 1/n of the channel. Capped at the
      // channel/budget rate ratio — beyond that the channel, not the
      // PMC, is the binding constraint and the stretch already holds it.
      const double bw_over_rb = dram_.config().bytes_per_cycle * inv_rb;
      const double f = std::clamp(stream->flood_acc / span, 1.0,
                                  std::max(bw_over_rb, 1.0));
      flood_cpb = std::max(cpb, stream->cpb_iso * f);
    }
    if (span > 0.0) {
      // Lockstep siblings — the co-partitions of the same run_on call —
      // fetch their blocks at the same instants, so a compute-gating
      // first-block fetch runs on the channel LEFT OVER by everyone
      // else even when the streams' average demand leaves it idle. Only
      // the latency-gated terms pay this: the bulk's contention is
      // already priced by the realized stretch, and for a throttled
      // stream a mid-interval collision just reorders service before
      // the boundary the chain waits on anyway.
      sync_cpb = std::max(
          sync_cpb, stream->cpb_iso * stream->sync_acc / span);
    }
  }
  ChainTimes times =
      replay_chain(stream->ops, cpb, flood_cpb, sync_cpb, inv_rb,
                   stream->started_at, stream->usage0);
  // Grid-slip excess: when the allowance grid is oversubscribed
  // (Σ budgets > channel), every boundary under-delivers and the
  // deficit cascades through the deferred-burst queue. The fluid
  // water-filling prices the average slowdown, but the detailed
  // tier's burst-granular FIFO arbitration runs slower than the
  // fluid share; the excess fraction is calibrated against the
  // detailed tier (bench §4 rider-vs-decode shapes). Chained
  // continuation batches (usage carried from the lane bucket) skip
  // the charge — their flood tail is an artificial batch boundary,
  // not a real end-of-stream drain.
  if (stream->defers && stream->slip_acc > 0.0 && stream->usage0 <= 0.0) {
    constexpr double kGridSlipExcess = 0.35;
    times.dma_end += kGridSlipExcess * stream->slip_acc;
    times.done += kGridSlipExcess * stream->slip_acc;
  }
#ifdef EDGEMM_FAST_DEBUG
  if (std::getenv("EDGEMM_FAST_DBG") != nullptr) {
    std::fprintf(stderr,
                 "retire lane=%zu t0=%.0f bytes=%.0f iso=%.0f span=%.0f "
                 "cpb=%.4f flood=%.4f sync=%.4f invrb=%.4f defers=%d "
                 "dma_end=%.0f done=%.0f\n",
                 stream->lane, stream->started_at, stream->total_bytes,
                 stream->dma_iso, stream->dma_done_at - stream->started_at,
                 cpb, flood_cpb, sync_cpb, inv_rb, (int)stream->defers,
                 times.dma_end, times.done);
  }
#endif
  const double t_done = times.done;
  if (inv_rb > 0.0) {
    // Carry the PMC interval charge to the next batch on this lane; a
    // pure-compute or unthrottled stream leaves the carry untouched (it
    // never moved the DMA's usage counter).
    lane.bucket_usage = times.usage;
    lane.bucket_time = times.dma_end;
  }
  auto when = static_cast<Cycle>(std::ceil(t_done));
  if (when < sim_.now()) when = sim_.now();

  if (stream->stat_bytes > 0) {
    // Feed the DRAM ledger the channel time these bursts would have
    // occupied, so utilization() stays meaningful on the fast tier.
    const auto busy = static_cast<Cycle>(std::llround(
        static_cast<double>(stream->stat_bytes) / dram_.config().bytes_per_cycle));
    dram_.channel().record_external_service(stream->stat_bytes, busy);
  }
  ++streams_completed_;

  // Completion is fixed once the DMA crossing is known — deliberately not
  // token-guarded like the recompute tick.
  sim_.schedule_at(when, [this, li = stream->lane, cluster = stream->cluster,
                          bytes = stream->stat_bytes, compute = stream->stat_compute,
                          flops = stream->stat_flops,
                          done = std::move(stream->done)] {
    ClusterStats& stats = cluster->stats_;
    stats.dma_bytes += bytes;
    stats.compute_cycles += compute;
    stats.flops += flops;
    stats.busy_until = std::max(stats.busy_until, sim_.now());
    EDGEMM_ASSERT(lanes_[li].outstanding > 0);
    --lanes_[li].outstanding;
    if (done) done();
  });

  // The next batch's DMA starts as the finished one's last block lands
  // (the detailed engine's double buffer frees exactly then) — which is
  // the flood-corrected dma_end, not the fluid crossing.
  if (!lane.pending.empty()) {
    auto next = std::move(lane.pending.front());
    lane.pending.pop_front();
    activate(lane, std::move(next), times.dma_end);
  }
}

void FastMemoryModel::compute_rates() {
  struct Entry {
    Stream* stream;
    double demand;
  };
  const double bw = dram_.config().bytes_per_cycle;
  std::vector<Entry> entries;
  entries.reserve(lanes_.size());
  double flooding = 0.0;
  for (Lane& lane : lanes_) {
    Stream* s = lane.active.get();
    if (s == nullptr || s->dma_done_at >= 0.0) continue;
    // A stream's standalone demand: the isolated chain's average channel
    // occupancy (fill, back-pressure and budget stalls), re-derived here
    // whenever a rebalance moved this cluster's budget mid-flight. The
    // live re-cap below honors the banked bucket — a batch smaller than
    // the interval allowance is never throttled.
    reprice(*s);
    double demand = s->demand_rate;
    const double rb = budget_rate(*s->cluster);
    if (std::isfinite(rb) && s->total_bytes - s->tokens0 > kByteEps) {
      demand = std::min(
          demand, rb * s->total_bytes / (s->total_bytes - s->tokens0));
    }
    if (s->defers) flooding += 1.0;
    entries.push_back(Entry{s, std::max(demand, 1e-9)});
  }
  // Max-min fair split of the channel: ascending demand, stable in lane
  // (registration) order so float accumulation is run-to-run identical.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.demand < b.demand; });
  double remaining = bw;
  std::size_t left = entries.size();
  for (Entry& e : entries) {
    const double share = remaining / static_cast<double>(left);
    e.stream->rate = std::min(e.demand, share);
    remaining -= e.stream->rate;
    --left;
  }
  // Transient contention factors for the completion replays. Both are
  // synchronized bursts the average-demand water-filling cannot see:
  // boundary floods release on the shared absolute grid, and lockstep
  // siblings — the co-partitions of one run_on call, recognizable by an
  // identical activation instant and byte total — fetch their blocks at
  // the same instants. Each burst is served from the channel LEFT OVER
  // by the other streams' fluid service; in the saturated memory-bound
  // limit the sibling factor degenerates to exactly the realized/iso
  // stretch, so taking the max of the two never double-counts.
  const double floor_bw = 1e-3 * bw;
  double total_rate = 0.0;
  double smooth_rate = 0.0;  // fluid service of the non-deferring streams
  for (const Entry& e : entries) {
    total_rate += e.stream->rate;
    if (!e.stream->defers) smooth_rate += e.stream->rate;
  }
  const double flood_factor =
      flooding * bw / std::max(bw - smooth_rate, floor_bw);
  // Grid slip: when the ACTIVE deferring clusters' summed allowances
  // (plus the smooth traffic) oversubscribe the channel, each interval
  // under-delivers and every deferred queue falls behind its boundary
  // by the excess — a drift the fluid share cannot see (each stream's
  // average demand still fits its budget) and the per-flood factor only
  // prices within one interval. Charged continuously (cycles per cycle)
  // to avoid quantizing into whole-boundary jumps.
  double defer_rb = 0.0;
  for (const Entry& e : entries) {
    if (!e.stream->defers) continue;
    const double rb = budget_rate(*e.stream->cluster);
    if (std::isfinite(rb)) defer_rb += rb;
  }
  const double slip_rate =
      std::max(defer_rb + smooth_rate - bw, 0.0) / bw;
  for (const Entry& a : entries) {
    a.stream->flood_now = std::max(flood_factor, 1.0);
    a.stream->slip_now = slip_rate;
    double n = 0.0;
    for (const Entry& b : entries) {
      if (b.stream->started_at == a.stream->started_at &&
          b.stream->total_bytes == a.stream->total_bytes) {
        n += 1.0;
      }
    }
    n = std::max(n, 1.0);
    const double bg = std::max(total_rate - n * a.stream->rate, 0.0);
    a.stream->sync_now = std::max(n * bw / std::max(bw - bg, floor_bw), 1.0);
  }
}

double FastMemoryModel::budget_rate(ClusterTimingModel& cluster) const {
  const Bytes budget = cluster.dma().budget();
  if (budget == mem::DmaEngine::kUnlimited) return kInf;
  // The PMC charges a burst before it blocks: floor(B / burst) + 1 bursts
  // land per interval, overshooting the nominal budget by up to one.
  const Bytes burst = config_.dma.burst_bytes;
  const double per_interval =
      static_cast<double>(budget / burst + 1) * static_cast<double>(burst);
  return per_interval / static_cast<double>(config_.dma.throttle_interval);
}

void FastMemoryModel::recompute() {
  advance_to(static_cast<double>(sim_.now()));
  settle();
}

void FastMemoryModel::schedule_next() {
  double t_next = kInf;
  for (Lane& lane : lanes_) {
    const Stream* s = lane.active.get();
    if (s == nullptr || s->dma_done_at >= 0.0 || s->rate <= 0.0) continue;
    t_next = std::min(
        t_next, last_advance_ + (s->total_bytes - s->served_bytes) / s->rate);
  }
  const std::uint64_t token = ++event_token_;  // invalidate stale ticks
  if (!std::isfinite(t_next)) return;
  auto when = static_cast<Cycle>(std::ceil(t_next));
  if (when < sim_.now()) when = sim_.now();
  sim_.schedule_at(when, [this, token] {
    if (token != event_token_) return;
    recompute();
  });
}

}  // namespace edgemm::core
