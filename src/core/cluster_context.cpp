#include "core/cluster_context.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::core {

ClusterContext::ClusterContext(const ChipConfig& config, CoreKind kind,
                               std::size_t num_cores, ClusterId cluster_id,
                               std::uint32_t group_id) {
  if (num_cores == 0) {
    throw std::invalid_argument("ClusterContext: num_cores must be > 0");
  }
  for (std::size_t i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<HostCore>(
        config, kind, static_cast<CoreId>(cluster_id * 16 + i), cluster_id, group_id,
        static_cast<std::uint32_t>(i)));
  }
  const Bytes capacity = kind == CoreKind::kComputeCentric
                             ? config.cc_cluster_tcdm_bytes
                             : config.mc_shared_buffer_bytes;
  shared_buffer_ = std::make_unique<mem::Scratchpad>("cluster-shared", capacity);
  arrived_.assign(num_cores, false);
}

HostCore& ClusterContext::core(std::size_t index) {
  if (index >= cores_.size()) {
    throw std::out_of_range("ClusterContext::core: index out of range");
  }
  return *cores_[index];
}

bool ClusterContext::barrier_arrive(std::size_t core_index) {
  if (core_index >= cores_.size()) {
    throw std::out_of_range("ClusterContext::barrier_arrive: index out of range");
  }
  if (arrived_[core_index]) {
    throw std::logic_error("ClusterContext: core arrived twice in one epoch");
  }
  arrived_[core_index] = true;
  ++arrivals_;
  if (arrivals_ < cores_.size()) return false;

  // Last arrival releases the barrier: bump every core's epoch CSR.
  for (const auto& core_ptr : cores_) core_ptr->csrs().bump_sync_epoch();
  arrived_.assign(cores_.size(), false);
  arrivals_ = 0;
  ++epochs_;
  return true;
}

std::vector<Cycle> ClusterContext::run_spmd(
    const std::function<Cycle(HostCore&, std::size_t)>& body) {
  std::vector<Cycle> cycles;
  cycles.reserve(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cycles.push_back(body(*cores_[i], i));
    barrier_arrive(i);
  }
  EDGEMM_ASSERT(arrivals_ == 0);  // the loop completes exactly one epoch
  return cycles;
}

}  // namespace edgemm::core
