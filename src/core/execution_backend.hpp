// ExecutionBackend: the schedulable execution substrate behind the
// serving engine.
//
// Extracted from the PhaseScheduler + ChipTimingModel pair so the engine
// is no longer hard-wired to one EdgeMM chip: a backend is anything that
// can take lane-tagged GemmWork jobs, dispatch them deterministically on
// the shared simulation clock, and answer the occupancy/throughput
// questions the engine's admission estimators and bandwidth rebalancer
// ask. EdgeMmBackend below wraps the existing chip unchanged (the
// default composition replays bit-identically to the pre-seam engine);
// baselines::GpuBackend implements the same interface over the roofline
// GPU model, which is what makes heterogeneous offload policies
// (serve::OffloadPolicy) possible.
#ifndef EDGEMM_CORE_EXECUTION_BACKEND_HPP
#define EDGEMM_CORE_EXECUTION_BACKEND_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/bandwidth_manager.hpp"
#include "core/chip.hpp"
#include "core/fast_replay.hpp"
#include "core/phase_scheduler.hpp"
#include "core/timing.hpp"

namespace edgemm::core {

/// A schedulable execution target: per-lane FIFO job streams over a
/// shared discrete-event simulator.
///
/// The contract mirrors what the serving engine needs from a substrate:
///   - submit() enqueues one job (a GemmWork batch) on a lane; `started`
///     fires at dispatch, `done` at retirement, both inside the
///     simulation;
///   - lane occupancy queries (idle/queued/dispatched/max_queue_wait)
///     feed admission estimators and offload judgments;
///   - estimated_job_bytes() prices a job's DMA traffic in THIS
///     backend's cost model (the engine's throughput EWMAs divide bytes
///     by cycles, so the bytes must come from the backend that ran the
///     job);
///   - the bandwidth hooks let the engine's per-interval rebalancer
///     repartition a backend's memory fabric where that is meaningful
///     (the EdgeMM PMC throttles); backends with a private, fixed lane
///     family (the GPU's GDDR) implement them as no-ops.
/// Implementations must be deterministic: identical submission sequences
/// produce identical retirement times.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// @return Stable human-readable backend name (bench/docs labels).
  virtual const char* name() const = 0;

  /// The simulator this backend schedules its events on. Heterogeneous
  /// compositions share ONE simulator so lanes of different backends
  /// overlap on a common clock.
  virtual sim::Simulator& simulator() = 0;

  /// Cycles of that shared clock per second of wall-time (used to
  /// convert backend-native seconds into simulation cycles).
  virtual double clock_hz() const = 0;

  /// Enqueues `ops` as one FIFO job on `lane`. Throws
  /// std::invalid_argument for an empty op list. `affinity` is an opaque
  /// non-zero key grouping jobs that share backend-local state; backends
  /// without affinity-aware dispatch ignore it (strict FIFO).
  virtual void submit(Lane lane, std::vector<GemmWork> ops,
                      std::function<void()> done,
                      std::function<void()> started = {},
                      std::uint64_t affinity = 0) = 0;

  /// True when no job is running or queued on `lane`.
  virtual bool idle(Lane lane) const = 0;

  /// Jobs waiting behind the running one on `lane`.
  virtual std::size_t queued(Lane lane) const = 0;

  /// Jobs dispatched to `lane` so far.
  virtual std::size_t dispatched(Lane lane) const = 0;

  /// Worst submit-to-dispatch queueing delay any job saw on `lane`.
  virtual Cycle max_queue_wait(Lane lane) const = 0;

  /// Bytes `ops` would move through this backend's memory system as one
  /// job on `lane` — the numerator of the engine's throughput EWMAs.
  virtual Bytes estimated_job_bytes(Lane lane,
                                    std::span<const GemmWork> ops) const = 0;

  /// Per-interval bandwidth rebalancing hooks: repartition the backend's
  /// memory fabric between the lane families. Backends whose lanes do
  /// not share a partitionable fabric implement these as no-ops.
  virtual void apply_equal_sharing() {}
  virtual void apply_bandwidth_ratio(std::size_t mc_ratio) {
    (void)mc_ratio;
  }

  /// Utilization of the backend's memory system over elapsed simulated
  /// time, in [0, 1] (observability; definition is backend-specific).
  virtual double memory_utilization() const = 0;
};

/// The EdgeMM chip as an ExecutionBackend: owns the ChipTimingModel,
/// its PhaseScheduler and the §IV-B BandwidthManager, constructed in
/// exactly that order (the construction order the pre-seam engine used,
/// preserving bit-identical replays). The interface methods forward to
/// the scheduler/manager unchanged; EdgeMM-specific capabilities the
/// generic seam cannot express (lane cluster sets for traffic probes,
/// affinity chaining setup) stay reachable through the concrete
/// accessors.
class EdgeMmBackend final : public ExecutionBackend {
 public:
  EdgeMmBackend(const ChipConfig& config, ChipComposition composition,
                ReplayMode replay_mode, const BandwidthPolicy& bandwidth);

  // --- Concrete accessors (EdgeMM-specific seams) ------------------------
  ChipTimingModel& chip() { return chip_; }
  const ChipTimingModel& chip() const { return chip_; }
  PhaseScheduler& scheduler() { return scheduler_; }
  const PhaseScheduler& scheduler() const { return scheduler_; }
  const BandwidthManager& manager() const { return manager_; }

  // --- ExecutionBackend ---------------------------------------------------
  const char* name() const override { return "edgemm"; }
  sim::Simulator& simulator() override { return chip_.simulator(); }
  double clock_hz() const override { return config_.clock_hz; }
  void submit(Lane lane, std::vector<GemmWork> ops,
              std::function<void()> done, std::function<void()> started = {},
              std::uint64_t affinity = 0) override;
  bool idle(Lane lane) const override { return scheduler_.idle(lane); }
  std::size_t queued(Lane lane) const override {
    return scheduler_.queued(lane);
  }
  std::size_t dispatched(Lane lane) const override {
    return scheduler_.dispatched(lane);
  }
  Cycle max_queue_wait(Lane lane) const override {
    return scheduler_.lane_stats(lane).max_queue_wait;
  }
  Bytes estimated_job_bytes(Lane lane,
                            std::span<const GemmWork> ops) const override;
  void apply_equal_sharing() override {
    manager_.apply_equal_sharing(chip_);
  }
  void apply_bandwidth_ratio(std::size_t mc_ratio) override {
    manager_.apply_ratio(chip_, mc_ratio);
  }
  double memory_utilization() const override {
    return chip_.dram().utilization();
  }

 private:
  ChipConfig config_;
  ChipTimingModel chip_;
  PhaseScheduler scheduler_;
  BandwidthManager manager_;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_EXECUTION_BACKEND_HPP
