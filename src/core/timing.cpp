#include "core/timing.hpp"

#include <utility>

#include "common/assert.hpp"
#include "coproc/cim_macro.hpp"
#include "coproc/systolic_array.hpp"
#include "core/fast_replay.hpp"

namespace edgemm::core {

namespace {

// Unextended Snitch cluster baseline (Fig. 11 "original snitch cluster
// including SIMD cores"): 8 worker cores, each sustaining a 2-wide FMA
// SIMD issue, derated for the redundant register load/store traffic the
// matrix extensions eliminate.
constexpr double kBaselineCores = 8.0;
constexpr double kBaselineFlopsPerCyclePerCore = 4.0;
constexpr double kBaselineLoadStoreEfficiency = 0.6;
constexpr std::size_t kBaselineElemBytes = 2;  // BF16 SIMD

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

const char* to_string(ClusterKind kind) {
  switch (kind) {
    case ClusterKind::kComputeCentric: return "CC";
    case ClusterKind::kMemoryCentric: return "MC";
    case ClusterKind::kBaselineSimd: return "SIMD";
  }
  return "?";
}

ClusterTimingModel::ClusterTimingModel(sim::Simulator& sim, mem::DramController& dram,
                                       const ChipConfig& config, ClusterKind kind,
                                       std::string name)
    : sim_(sim), config_(config), kind_(kind), name_(std::move(name)),
      dma_(sim, dram, dram.add_port(name_), config.dma, name_ + ".dma") {}

ClusterTimingModel::ClusterTimingModel(sim::Simulator& sim, mem::MemoryPath path,
                                       const ChipConfig& config, ClusterKind kind,
                                       std::string name)
    : sim_(sim), config_(config), kind_(kind), name_(std::move(name)),
      dma_(sim, std::move(path), config.dma, name_ + ".dma") {}

Cycle ClusterTimingModel::compute_cycles(const GemmWork& work) const {
  switch (kind_) {
    case ClusterKind::kComputeCentric: {
      // Weight-stationary tiling: each R×C weight tile is loaded and the
      // M activation rows streamed through (Eq. 2 per tile pass).
      const auto& sa = config_.systolic;
      const std::size_t tiles = ceil_div(work.k, sa.rows) * ceil_div(work.n, sa.cols);
      const Cycle per_tile = coproc::systolic_tile_cycles(sa, work.m);
      const std::size_t cores = config_.cc_cores_per_cluster;
      return static_cast<Cycle>(ceil_div(tiles, cores)) * per_tile;
    }
    case ClusterKind::kMemoryCentric: {
      // Per column group: write ceil(k/R) entries through the write
      // circuits, then bit-serial compute per Eq. 3. Resident weights
      // (batch reuse) skip the write.
      const auto& cim = config_.cim;
      const std::size_t col_groups = ceil_div(work.n, cim.columns);
      const std::size_t entries = ceil_div(work.k, cim.tree_inputs);
      const Cycle write = work.weights_resident
                              ? 0
                              : static_cast<Cycle>(entries) *
                                    coproc::cim_entry_write_cycles(cim);
      const Cycle compute = coproc::cim_gemm_cycles(
          cim, work.m * entries);  // m vectors × entries passes, pipelined
      const std::size_t cores = config_.mc_cores_per_cluster;
      return static_cast<Cycle>(ceil_div(col_groups, cores)) * (write + compute);
    }
    case ClusterKind::kBaselineSimd: {
      const double effective =
          kBaselineCores * kBaselineFlopsPerCyclePerCore * kBaselineLoadStoreEfficiency;
      const auto cycles =
          static_cast<Cycle>(static_cast<double>(work.flops()) / effective);
      return cycles > 0 ? cycles : 1;
    }
  }
  return 1;
}

Bytes ClusterTimingModel::weight_bytes(const GemmWork& work) const {
  if (work.weights_resident) return 0;
  std::size_t elem = work.weight_elem_bytes_override;
  if (elem == 0) {
    switch (kind_) {
      case ClusterKind::kComputeCentric: elem = config_.cc_elem_bytes; break;
      case ClusterKind::kMemoryCentric: elem = config_.mc_elem_bytes; break;
      case ClusterKind::kBaselineSimd: elem = kBaselineElemBytes; break;
    }
  }
  return static_cast<Bytes>(work.k) * work.n * elem;
}

Bytes ClusterTimingModel::activation_bytes(const GemmWork& work) const {
  // Activations stream in and results stream out in BF16 regardless of
  // the weight format (the MC datapath quantizes at the macro boundary).
  const std::size_t elem = 2;
  return static_cast<Bytes>(work.m) * (work.k + work.n) * elem;
}

Bytes ClusterTimingModel::block_bytes() const {
  Bytes working = 0;
  switch (kind_) {
    case ClusterKind::kComputeCentric:
      working = config_.cc_cluster_tcdm_bytes;
      break;
    case ClusterKind::kMemoryCentric:
      // The CIM macros double as data memory; the shared buffer stages
      // inter-core traffic (§III-A).
      working = config_.mc_cluster_cim_bytes() + config_.mc_shared_buffer_bytes;
      break;
    case ClusterKind::kBaselineSimd:
      working = config_.cc_cluster_tcdm_bytes;
      break;
  }
  const Bytes half = working / 2;  // double buffering
  const double scale =
      config_.timing_block_scale >= 1.0 ? config_.timing_block_scale : 1.0;
  const auto scaled = static_cast<Bytes>(static_cast<double>(half) * scale);
  return scaled > 0 ? scaled : 1;
}

void ClusterTimingModel::run_ops(const std::vector<GemmWork>& ops,
                                 std::function<void()> done) {
  if (ops.empty()) {
    sim_.schedule(0, [done = std::move(done)] {
      if (done) done();
    });
    return;
  }
  if (fast_ != nullptr) {
    // Fast tier: price the batch analytically instead of walking its
    // blocks through the event-driven DMA plane. ops_executed stays a
    // submit-time counter on both tiers.
    stats_.ops_executed += ops.size();
    fast_->submit(*this, ops, std::move(done));
    return;
  }
  const Bytes block_limit = block_bytes();
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const GemmWork& work = ops[oi];
    const Bytes total_bytes = weight_bytes(work) + activation_bytes(work);
    const Cycle total_compute = compute_cycles(work);
    const Flops total_flops = work.flops();
    const std::size_t n_blocks =
        total_bytes == 0
            ? 1
            : static_cast<std::size_t>((total_bytes + block_limit - 1) / block_limit);

    Bytes bytes_left = total_bytes;
    Cycle compute_left = total_compute;
    Flops flops_left = total_flops;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t remaining_blocks = n_blocks - b;
      Block block;
      block.dma_bytes = bytes_left / remaining_blocks;
      block.compute_cycles = compute_left / remaining_blocks;
      if (block.compute_cycles == 0) block.compute_cycles = 1;
      block.flops = flops_left / remaining_blocks;
      bytes_left -= block.dma_bytes;
      compute_left -= block.compute_cycles > compute_left ? compute_left
                                                          : block.compute_cycles;
      flops_left -= block.flops;
      if (oi == ops.size() - 1 && b == n_blocks - 1) {
        block.last_of_batch = true;
        block.done = std::move(done);
      }
      blocks_.push_back(std::move(block));
    }
    ++stats_.ops_executed;
  }
  maybe_issue_dma();
}

bool ClusterTimingModel::idle() const {
  if (fast_ != nullptr) return fast_->idle(*this);
  return blocks_.empty() && inflight_dma_ == 0 && !compute_busy_;
}

void ClusterTimingModel::maybe_issue_dma() {
  // Double buffering: at most one block loading while one computes and
  // one sits ready.
  while (!blocks_.empty() && inflight_dma_ + ready_.size() < 2) {
    Block block = std::move(blocks_.front());
    blocks_.pop_front();
    if (block.dma_bytes == 0) {
      ready_.push_back(std::move(block));
      maybe_start_compute();
      continue;
    }
    ++inflight_dma_;
    const Bytes bytes = block.dma_bytes;
    stats_.dma_bytes += bytes;
    dma_.transfer(bytes, [this, blk = std::move(block)]() mutable {
      EDGEMM_ASSERT(inflight_dma_ > 0);
      --inflight_dma_;
      ready_.push_back(std::move(blk));
      maybe_start_compute();
      maybe_issue_dma();
    });
  }
}

void ClusterTimingModel::maybe_start_compute() {
  if (compute_busy_ || ready_.empty()) return;
  Block block = std::move(ready_.front());
  ready_.pop_front();
  compute_busy_ = true;
  const Cycle cycles = block.compute_cycles;
  sim_.schedule(cycles, [this, blk = std::move(block)]() mutable {
    compute_busy_ = false;
    finish_block(std::move(blk));
    maybe_start_compute();
    maybe_issue_dma();
  });
}

void ClusterTimingModel::finish_block(Block block) {
  stats_.compute_cycles += block.compute_cycles;
  stats_.flops += block.flops;
  stats_.busy_until = sim_.now();
  if (block.done) block.done();
}

Bytes estimated_traffic_bytes(const ClusterTimingModel& cluster,
                              std::span<const GemmWork> ops) {
  Bytes bytes = 0;
  for (const GemmWork& op : ops) {
    bytes += cluster.weight_bytes(op) + cluster.activation_bytes(op);
  }
  return bytes;
}

}  // namespace edgemm::core
