// Fast execution tier: closed-form fluid pricing of cluster op batches.
//
// The detailed tier walks every DMA burst through the event-driven
// memory hierarchy (mem/memory_path, mem/resource_server); the fast
// tier replaces that walk with a fluid-flow model over the SAME
// calibrated cost tables (ClusterTimingModel's byte/cycle arithmetic):
// each submitted op list becomes one "stream" whose DRAM service rate
// is the max-min (water-filling) share of the channel, capped by the
// cluster's PMC throttle budget and its compute back-pressure, with
// the interconnect's burst-pipeline latencies charged whenever the
// pipe drains. Everything above the cluster —
// PhaseScheduler lanes, the ServingEngine and all four policy seams —
// runs unmodified on either tier (docs/ARCHITECTURE.md, "fast/detailed
// execution tiers").
#ifndef EDGEMM_CORE_FAST_REPLAY_HPP
#define EDGEMM_CORE_FAST_REPLAY_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/timing.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {

/// Execution tier behind ChipTimingModel: kDetailed simulates every DMA
/// burst event-by-event; kFast prices each submitted op list with the
/// FastMemoryModel below. Identical op streams, identical policy
/// decisions — only the memory-time integrator differs.
enum class ReplayMode : std::uint8_t {
  kDetailed,
  kFast,
};

const char* to_string(ReplayMode mode);

/// The fast tier's memory-time integrator.
///
/// One stream per ClusterTimingModel::run_ops call, holding the batch's
/// aggregate DMA bytes D, effective compute cycles C and block count n
/// (mirroring run_ops' exact block split). Active streams share the
/// DRAM channel by max-min fairness; a stream's rate is capped by its
/// back-pressure demand D / dma_iso — the average channel occupancy of
/// the batch's serial op chain replayed in isolation (double buffering
/// lets the DMA run at most one block ahead of the datapath, so
/// compute-bound ops throttle the loads behind them).
/// The PMC throttle enters that chain replay on the detailed tier's own
/// absolute interval grid: each interval of T cycles admits one
/// allowance — (floor(B/burst)+1) * burst bytes, since the PMC charges
/// a burst before it blocks — at full channel speed, and bytes past the
/// current interval's remaining allowance FLOOD at the following
/// boundaries (multiples of T), exactly the deferred-burst release of
/// mem/dma.cpp. Interval usage carries across a lane's batches, so a
/// batch chained behind a budget-bound one starts on a drained
/// allowance.
/// The chain replay prices the interconnect the way the burst pipeline
/// behaves: the lead burst's crossbar traversal (head) and the DRAM
/// access latency (tail) are LATENCIES paid when the pipe is empty —
/// at the stream head and whenever compute back-pressure drains it —
/// not per-byte channel occupancy. A block sequence therefore advances
/// at the steady period max(c_blk, b_blk/bw, (head+tail+b_blk/bw)/2):
/// compute-bound, channel-bound, or latency-starved (the double buffer
/// covers the refill with exactly two compute spans).
/// Rates are piecewise constant between events (stream start/finish,
/// budget rebalance), so DMA completions are solved exactly; batch
/// completion replays the serial chain with the per-byte channel terms
/// stretched by realized/isolated DMA span (latencies do not stretch
/// under contention; queueing does).
/// Streams on one cluster run FIFO (the lanes above never overlap jobs
/// on a cluster). Per-cluster stats and the DRAM service ledger are fed
/// the same totals the detailed tier would accumulate.
class FastMemoryModel {
 public:
  FastMemoryModel(sim::Simulator& sim, mem::DramController& dram,
                  const ChipConfig& config);

  /// Registers `cluster` with a stable index (replay determinism: the
  /// water-filling iterates clusters in registration order, never by
  /// pointer). Called by ChipTimingModel at construction.
  void register_cluster(ClusterTimingModel& cluster);

  /// Prices `ops` as one stream on `cluster`; `done` fires at the
  /// modeled completion. Called by ClusterTimingModel::run_ops in fast
  /// mode (never with an empty op list).
  void submit(ClusterTimingModel& cluster, const std::vector<GemmWork>& ops,
              std::function<void()> done);

  /// True when `cluster` has no stream active or queued.
  bool idle(const ClusterTimingModel& cluster) const;

  /// Re-prices every active stream at the current time; call after a
  /// budget change. Coalesces: many set_budget calls in one event (a
  /// BandwidthManager rebalance touches every cluster) trigger one
  /// recompute.
  void budgets_changed();

  /// Streams priced so far (tests / sanity checks).
  std::uint64_t streams_completed() const { return streams_completed_; }

 private:
  /// Per-op serial profile, mirroring run_ops' block split: the op's DMA
  /// bytes, its block geometry (compute can start once the first block
  /// lands), its effective compute, the last block's compute tail and
  /// the per-block compute share (the double-buffer back-pressure
  /// granularity). `head` is the lead burst's crossbar traversal time —
  /// the latency between a transfer's issue and its first byte reaching
  /// the DRAM channel.
  struct OpCost {
    double bytes = 0.0;
    double first_block = 0.0;
    double per_block = 0.0;
    double last_block = 0.0;
    double n_blocks = 1.0;
    double head = 0.0;
    double compute = 0.0;
    double compute_last = 0.0;
    double compute_per_block = 0.0;
  };
  struct Stream {
    ClusterTimingModel* cluster = nullptr;
    std::size_t lane = 0;  ///< registration index of the cluster
    std::function<void()> done;
    std::vector<OpCost> ops;         ///< serial chain, submission order
    double total_bytes = 0.0;        ///< D: batch DMA bytes
    double served_bytes = 0.0;       ///< integrated at the current rates
    double cpb_iso = 0.0;            ///< isolated memory cycles per byte
    double inv_rb = 0.0;             ///< budget cycles/byte at last pricing
    double usage0 = 0.0;             ///< PMC interval usage (bytes) at start
    double tokens0 = 0.0;            ///< allowance left (bytes) at start
    double priced_rb = -1.0;         ///< budget rate last priced (<0 = never)
    double dma_iso = 0.0;            ///< isolated chain's last-byte time
    double demand_rate = 0.0;        ///< D / dma_iso: avg channel demand
    double rate = 0.0;               ///< current effective bytes/cycle
    bool defers = false;             ///< isolated chain floods at boundaries
    double flood_now = 1.0;          ///< current flood contention factor
    double flood_acc = 0.0;          ///< integral of flood contention dt
    double rb_acc = 0.0;             ///< integral of the budget rate dt
    double slip_now = 0.0;           ///< current grid-slip rate (cyc/cyc)
    double slip_acc = 0.0;           ///< accumulated grid slip (cycles)
    double sync_now = 1.0;           ///< current sibling contention factor
    double sync_acc = 0.0;           ///< integral of sibling contention dt
    double started_at = 0.0;         ///< activation time (DMA start)
    double dma_done_at = -1.0;       ///< exact crossing; <0 = in flight
    Bytes stat_bytes = 0;            ///< exact integers for the ledgers
    Cycle stat_compute = 0;
    Flops stat_flops = 0;
  };
  struct Lane {
    ClusterTimingModel* cluster = nullptr;
    std::unique_ptr<Stream> active;
    std::deque<std::unique_ptr<Stream>> pending;
    std::size_t outstanding = 0;  ///< submitted batches whose done is pending
    /// PMC interval usage carried across this lane's streams: a batch
    /// chained behind a budget-bound one starts on whatever the
    /// predecessor charged to the current interval. time < 0 = no carry.
    double bucket_usage = 0.0;
    double bucket_time = -1.0;  ///< absolute time of the usage snapshot
  };

  struct ChainTimes {
    double dma_end = 0.0;   ///< channel service of the last byte ends
    double done = 0.0;      ///< datapath drains
    double usage = 0.0;     ///< PMC interval usage (bytes) at dma_end
    double deferred = 0.0;  ///< bytes that waited for a boundary flood
  };
  /// Replays the chain in ABSOLUTE time from `t0` so the PMC grants land
  /// on the detailed tier's absolute interval grid (multiples of the
  /// throttle interval — mem/dma.cpp keys usage on now / T). `inv_rb` is
  /// the budget in cycles per byte (0 = unthrottled): each interval
  /// admits one allowance at full channel speed and bytes past it flood
  /// at the following boundaries, which is what makes budget-bound ops
  /// in a compute-heavy chain stall locally even when the stream's
  /// average demand fits the budget. `usage0` seeds the first interval's
  /// charge (cross-batch carry on a lane). Boundary floods are
  /// GRID-SYNCHRONIZED across clusters, so a flood's partial service is
  /// charged at `flood_cpb` — cpb scaled by the concurrency of co-active
  /// deferring streams — rather than the stream's own channel share.
  /// `sync_cpb` prices the latency-gated first-block fetches (they gate
  /// compute start, so lockstep-sibling burst collisions hit them
  /// directly; the bulk's contention is already in `cpb`).
  ChainTimes replay_chain(const std::vector<OpCost>& ops, double cpb,
                          double flood_cpb, double sync_cpb, double inv_rb,
                          double t0, double usage0) const;

  std::size_t lane_index(const ClusterTimingModel& cluster) const;
  void activate(Lane& lane, std::unique_ptr<Stream> stream,
                double not_before = 0.0);
  void reprice(Stream& stream);
  void advance_to(double now);
  void settle();
  void retire(Lane& lane, std::unique_ptr<Stream> stream);
  void compute_rates();
  void recompute();
  void schedule_next();
  double budget_rate(ClusterTimingModel& cluster) const;

  sim::Simulator& sim_;
  mem::DramController& dram_;
  const ChipConfig& config_;
  std::vector<Lane> lanes_;
  double last_advance_ = 0.0;
  std::uint64_t event_token_ = 0;  ///< newest scheduled recompute wins
  bool budget_recompute_pending_ = false;
  std::uint64_t streams_completed_ = 0;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_FAST_REPLAY_HPP
