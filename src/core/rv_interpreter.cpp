#include "core/rv_interpreter.hpp"

#include <stdexcept>

#include "common/assert.hpp"
#include "isa/encoding.hpp"

namespace edgemm::core {

namespace rv {

namespace {

constexpr std::uint32_t kOpLui = 0x37;
constexpr std::uint32_t kOpImm = 0x13;
constexpr std::uint32_t kOpReg = 0x33;
constexpr std::uint32_t kOpLoad = 0x03;
constexpr std::uint32_t kOpStore = 0x23;
constexpr std::uint32_t kOpBranch = 0x63;
constexpr std::uint32_t kOpJal = 0x6F;
constexpr std::uint32_t kOpJalr = 0x67;
constexpr std::uint32_t kOpSystem = 0x73;

std::uint32_t r_type(std::uint32_t funct7, unsigned rs2, unsigned rs1,
                     std::uint32_t funct3, unsigned rd, std::uint32_t opcode) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) |
         opcode;
}

std::uint32_t i_type(std::int32_t imm12, unsigned rs1, std::uint32_t funct3,
                     unsigned rd, std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm12 & 0xFFF) << 20) | (rs1 << 15) |
         (funct3 << 12) | (rd << 7) | opcode;
}

std::uint32_t s_type(std::int32_t imm12, unsigned rs2, unsigned rs1,
                     std::uint32_t funct3) {
  const auto imm = static_cast<std::uint32_t>(imm12 & 0xFFF);
  return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         ((imm & 0x1F) << 7) | kOpStore;
}

std::uint32_t b_type(std::int32_t offset, unsigned rs1, unsigned rs2,
                     std::uint32_t funct3) {
  const auto imm = static_cast<std::uint32_t>(offset);
  return (((imm >> 12) & 1u) << 31) | (((imm >> 5) & 0x3Fu) << 25) | (rs2 << 20) |
         (rs1 << 15) | (funct3 << 12) | (((imm >> 1) & 0xFu) << 8) |
         (((imm >> 11) & 1u) << 7) | kOpBranch;
}

}  // namespace

std::uint32_t lui(unsigned rd, std::int32_t imm20) {
  return (static_cast<std::uint32_t>(imm20 & 0xFFFFF) << 12) | (rd << 7) | kOpLui;
}
std::uint32_t addi(unsigned rd, unsigned rs1, std::int32_t imm12) {
  return i_type(imm12, rs1, 0x0, rd, kOpImm);
}
std::uint32_t add(unsigned rd, unsigned rs1, unsigned rs2) {
  return r_type(0x00, rs2, rs1, 0x0, rd, kOpReg);
}
std::uint32_t sub(unsigned rd, unsigned rs1, unsigned rs2) {
  return r_type(0x20, rs2, rs1, 0x0, rd, kOpReg);
}
std::uint32_t and_(unsigned rd, unsigned rs1, unsigned rs2) {
  return r_type(0x00, rs2, rs1, 0x7, rd, kOpReg);
}
std::uint32_t or_(unsigned rd, unsigned rs1, unsigned rs2) {
  return r_type(0x00, rs2, rs1, 0x6, rd, kOpReg);
}
std::uint32_t xor_(unsigned rd, unsigned rs1, unsigned rs2) {
  return r_type(0x00, rs2, rs1, 0x4, rd, kOpReg);
}
std::uint32_t slli(unsigned rd, unsigned rs1, unsigned shamt) {
  return i_type(static_cast<std::int32_t>(shamt & 0x1F), rs1, 0x1, rd, kOpImm);
}
std::uint32_t srli(unsigned rd, unsigned rs1, unsigned shamt) {
  return i_type(static_cast<std::int32_t>(shamt & 0x1F), rs1, 0x5, rd, kOpImm);
}
std::uint32_t slt(unsigned rd, unsigned rs1, unsigned rs2) {
  return r_type(0x00, rs2, rs1, 0x2, rd, kOpReg);
}
std::uint32_t lw(unsigned rd, unsigned rs1, std::int32_t imm12) {
  return i_type(imm12, rs1, 0x2, rd, kOpLoad);
}
std::uint32_t sw(unsigned rs2, unsigned rs1, std::int32_t imm12) {
  return s_type(imm12, rs2, rs1, 0x2);
}
std::uint32_t beq(unsigned rs1, unsigned rs2, std::int32_t offset) {
  return b_type(offset, rs1, rs2, 0x0);
}
std::uint32_t bne(unsigned rs1, unsigned rs2, std::int32_t offset) {
  return b_type(offset, rs1, rs2, 0x1);
}
std::uint32_t blt(unsigned rs1, unsigned rs2, std::int32_t offset) {
  return b_type(offset, rs1, rs2, 0x4);
}
std::uint32_t bge(unsigned rs1, unsigned rs2, std::int32_t offset) {
  return b_type(offset, rs1, rs2, 0x5);
}
std::uint32_t jal(unsigned rd, std::int32_t offset) {
  const auto imm = static_cast<std::uint32_t>(offset);
  return (((imm >> 20) & 1u) << 31) | (((imm >> 1) & 0x3FFu) << 21) |
         (((imm >> 11) & 1u) << 20) | (((imm >> 12) & 0xFFu) << 12) | (rd << 7) |
         kOpJal;
}
std::uint32_t jalr(unsigned rd, unsigned rs1, std::int32_t imm12) {
  return i_type(imm12, rs1, 0x0, rd, kOpJalr);
}
std::uint32_t ecall() { return kOpSystem; }

}  // namespace rv

RvInterpreter::RvInterpreter(HostCore& core, std::size_t data_words)
    : core_(core), data_(data_words, 0) {
  if (data_words == 0) {
    throw std::invalid_argument("RvInterpreter: data memory must be non-empty");
  }
}

std::uint32_t RvInterpreter::load_word(std::uint32_t byte_address) const {
  if (byte_address % 4 != 0) {
    throw std::invalid_argument("RvInterpreter: misaligned load");
  }
  const std::size_t index = byte_address / 4;
  if (index >= data_.size()) {
    throw std::out_of_range("RvInterpreter: load outside data memory");
  }
  return data_[index];
}

void RvInterpreter::store_word(std::uint32_t byte_address, std::uint32_t value) {
  if (byte_address % 4 != 0) {
    throw std::invalid_argument("RvInterpreter: misaligned store");
  }
  const std::size_t index = byte_address / 4;
  if (index >= data_.size()) {
    throw std::out_of_range("RvInterpreter: store outside data memory");
  }
  data_[index] = value;
}

RvRunResult RvInterpreter::run(std::span<const std::uint32_t> program,
                               std::uint64_t fuel) {
  RvRunResult result;
  std::uint32_t pc = 0;

  auto sext = [](std::uint32_t value, unsigned bits) {
    const std::uint32_t sign = 1u << (bits - 1);
    return static_cast<std::int32_t>((value ^ sign) - sign);
  };

  while (result.instructions < fuel) {
    const std::size_t slot = pc / 4;
    if (pc % 4 != 0 || slot >= program.size()) {
      throw std::out_of_range("RvInterpreter: PC outside program");
    }
    const std::uint32_t word = program[slot];
    ++result.instructions;

    // Custom opcode space -> coprocessor (the direct-linked dispatch).
    if (isa::is_extension_word(word)) {
      result.cycles += core_.execute(word);
      pc += 4;
      continue;
    }

    result.cycles += 1;  // single-issue base pipeline
    const std::uint32_t opcode = word & 0x7F;
    const unsigned rd = (word >> 7) & 0x1F;
    const unsigned rs1 = (word >> 15) & 0x1F;
    const unsigned rs2 = (word >> 20) & 0x1F;
    const std::uint32_t funct3 = (word >> 12) & 0x7;
    const std::uint32_t funct7 = word >> 25;
    const auto x = [&](unsigned r) { return core_.xreg(r); };
    const auto sx = [&](unsigned r) { return static_cast<std::int32_t>(core_.xreg(r)); };

    std::uint32_t next_pc = pc + 4;
    switch (opcode) {
      case rv::kOpLui:
        core_.set_xreg(rd, word & 0xFFFFF000u);
        break;
      case rv::kOpImm: {
        const std::int32_t imm = sext(word >> 20, 12);
        switch (funct3) {
          case 0x0: core_.set_xreg(rd, x(rs1) + static_cast<std::uint32_t>(imm)); break;
          case 0x1: core_.set_xreg(rd, x(rs1) << (imm & 0x1F)); break;
          case 0x5: core_.set_xreg(rd, x(rs1) >> (imm & 0x1F)); break;
          case 0x4: core_.set_xreg(rd, x(rs1) ^ static_cast<std::uint32_t>(imm)); break;
          case 0x6: core_.set_xreg(rd, x(rs1) | static_cast<std::uint32_t>(imm)); break;
          case 0x7: core_.set_xreg(rd, x(rs1) & static_cast<std::uint32_t>(imm)); break;
          default: throw std::invalid_argument("RvInterpreter: unsupported OP-IMM");
        }
        break;
      }
      case rv::kOpReg:
        switch ((funct7 << 3) | funct3) {
          case (0x00u << 3) | 0x0: core_.set_xreg(rd, x(rs1) + x(rs2)); break;
          case (0x20u << 3) | 0x0: core_.set_xreg(rd, x(rs1) - x(rs2)); break;
          case (0x00u << 3) | 0x7: core_.set_xreg(rd, x(rs1) & x(rs2)); break;
          case (0x00u << 3) | 0x6: core_.set_xreg(rd, x(rs1) | x(rs2)); break;
          case (0x00u << 3) | 0x4: core_.set_xreg(rd, x(rs1) ^ x(rs2)); break;
          case (0x00u << 3) | 0x2:
            core_.set_xreg(rd, sx(rs1) < sx(rs2) ? 1 : 0);
            break;
          default: throw std::invalid_argument("RvInterpreter: unsupported OP");
        }
        break;
      case rv::kOpLoad: {
        if (funct3 != 0x2) throw std::invalid_argument("RvInterpreter: only lw");
        const std::int32_t imm = sext(word >> 20, 12);
        core_.set_xreg(rd, load_word(x(rs1) + static_cast<std::uint32_t>(imm)));
        result.cycles += 1;  // data-memory access beat
        break;
      }
      case rv::kOpStore: {
        if (funct3 != 0x2) throw std::invalid_argument("RvInterpreter: only sw");
        const std::uint32_t imm_u = ((word >> 25) << 5) | ((word >> 7) & 0x1F);
        const std::int32_t imm = sext(imm_u, 12);
        store_word(x(rs1) + static_cast<std::uint32_t>(imm), x(rs2));
        result.cycles += 1;
        break;
      }
      case rv::kOpBranch: {
        const std::uint32_t imm_u = (((word >> 31) & 1u) << 12) |
                                    (((word >> 7) & 1u) << 11) |
                                    (((word >> 25) & 0x3Fu) << 5) |
                                    (((word >> 8) & 0xFu) << 1);
        const std::int32_t offset = sext(imm_u, 13);
        bool taken = false;
        switch (funct3) {
          case 0x0: taken = x(rs1) == x(rs2); break;
          case 0x1: taken = x(rs1) != x(rs2); break;
          case 0x4: taken = sx(rs1) < sx(rs2); break;
          case 0x5: taken = sx(rs1) >= sx(rs2); break;
          default: throw std::invalid_argument("RvInterpreter: unsupported branch");
        }
        if (taken) next_pc = pc + static_cast<std::uint32_t>(offset);
        break;
      }
      case rv::kOpJal: {
        const std::uint32_t imm_u = (((word >> 31) & 1u) << 20) |
                                    (((word >> 12) & 0xFFu) << 12) |
                                    (((word >> 20) & 1u) << 11) |
                                    (((word >> 21) & 0x3FFu) << 1);
        core_.set_xreg(rd, pc + 4);
        next_pc = pc + static_cast<std::uint32_t>(sext(imm_u, 21));
        break;
      }
      case rv::kOpJalr: {
        const std::int32_t imm = sext(word >> 20, 12);
        const std::uint32_t target = (x(rs1) + static_cast<std::uint32_t>(imm)) & ~1u;
        core_.set_xreg(rd, pc + 4);
        next_pc = target;
        break;
      }
      case rv::kOpSystem:
        result.halted = true;
        return result;
      default:
        throw std::invalid_argument("RvInterpreter: unsupported opcode");
    }
    pc = next_pc;
  }
  return result;  // fuel exhausted, halted stays false
}

}  // namespace edgemm::core
