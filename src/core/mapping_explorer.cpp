#include "core/mapping_explorer.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::core {

const char* to_string(Mapping::Split split) {
  return split == Mapping::Split::kOutput ? "n-split" : "k-split";
}

MappingExplorer::MappingExplorer(const ChipConfig& config)
    : config_(config), sim_(std::make_unique<sim::Simulator>()),
      dram_(std::make_unique<mem::DramController>(*sim_, config.dram)) {
  config_.validate();
  cc_probe_ = std::make_unique<ClusterTimingModel>(
      *sim_, *dram_, config_, ClusterKind::kComputeCentric, "probe-cc");
  mc_probe_ = std::make_unique<ClusterTimingModel>(
      *sim_, *dram_, config_, ClusterKind::kMemoryCentric, "probe-mc");
  simd_probe_ = std::make_unique<ClusterTimingModel>(
      *sim_, *dram_, config_, ClusterKind::kBaselineSimd, "probe-simd");
}

ClusterTimingModel& MappingExplorer::probe(ClusterKind kind) const {
  switch (kind) {
    case ClusterKind::kComputeCentric: return *cc_probe_;
    case ClusterKind::kMemoryCentric: return *mc_probe_;
    case ClusterKind::kBaselineSimd: return *simd_probe_;
  }
  EDGEMM_ASSERT_MSG(false, "unknown cluster kind");
  return *cc_probe_;
}

Mapping MappingExplorer::evaluate(const GemmWork& work, ClusterKind kind,
                                  Mapping::Split split, std::size_t ways) const {
  if (ways == 0) {
    throw std::invalid_argument("MappingExplorer::evaluate: ways must be > 0");
  }
  ClusterTimingModel& cluster = probe(kind);
  Mapping m;
  m.split = split;

  GemmWork shard = work;
  double exchange_bytes = 0.0;
  if (split == Mapping::Split::kOutput) {
    m.ways = std::min(ways, work.n);
    shard.n = (work.n + m.ways - 1) / m.ways;
  } else {
    m.ways = std::min(ways, work.k);
    shard.k = (work.k + m.ways - 1) / m.ways;
    // Partial sums from all but one cluster travel through the shared
    // buffer / DRAM and are reduced (BF16 accumulators).
    exchange_bytes = 2.0 * static_cast<double>(m.ways - 1) *
                     static_cast<double>(work.m) * static_cast<double>(work.n) * 2.0;
  }

  m.compute_cycles = cluster.compute_cycles(shard);
  const double shard_bytes = static_cast<double>(cluster.weight_bytes(shard) +
                                                 cluster.activation_bytes(shard));
  const double total_bytes = shard_bytes * static_cast<double>(m.ways) + exchange_bytes;
  m.total_bytes = static_cast<Bytes>(total_bytes);
  m.memory_cycles =
      static_cast<Cycle>(total_bytes / config_.dram.bytes_per_cycle);
  m.predicted_cycles =
      std::max(m.compute_cycles, m.memory_cycles) + config_.dram.latency;
  return m;
}

std::vector<Mapping> MappingExplorer::explore(const GemmWork& work, ClusterKind kind,
                                              std::size_t max_ways) const {
  std::vector<Mapping> candidates;
  for (std::size_t ways = 1; ways <= std::max<std::size_t>(max_ways, 1); ++ways) {
    candidates.push_back(evaluate(work, kind, Mapping::Split::kOutput, ways));
    if (ways > 1) {
      candidates.push_back(evaluate(work, kind, Mapping::Split::kReduction, ways));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

Mapping MappingExplorer::best(const GemmWork& work, ClusterKind kind,
                              std::size_t max_ways) const {
  const auto candidates = explore(work, kind, max_ways);
  EDGEMM_ASSERT(!candidates.empty());
  return candidates.front();
}

}  // namespace edgemm::core
