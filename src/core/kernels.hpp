// Functional kernels: tiled GEMM / GEMV on the coprocessor models.
//
// These are the "customized kernel functions" of the programming model
// (§III-C) expressed in C++: they tile arbitrary tensors onto the R×C
// systolic array and the CIM macro, compute real values, and account
// cycles with the published formulas. Unit tests pin them against the
// reference implementations in common/tensor.hpp.
#ifndef EDGEMM_CORE_KERNELS_HPP
#define EDGEMM_CORE_KERNELS_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "common/tensor.hpp"
#include "common/types.hpp"
#include "core/config.hpp"

namespace edgemm::core {

/// Result of a functional GEMM on the systolic array.
struct SaGemmResult {
  Tensor out;            ///< acts(M×K) × weights(K×N), BF16 datapath
  Cycle cycles = 0;      ///< total SA cycles across all tile passes
  std::size_t tile_passes = 0;
};

/// Tiled weight-stationary GEMM on one CC-core. Edge tiles are
/// zero-padded to R×C as hardware requires. Throws std::invalid_argument
/// on inner-dimension mismatch.
SaGemmResult sa_gemm(const ChipConfig& config, const Tensor& acts,
                     const Tensor& weights);

/// Result of a functional GEMV on the CIM macro.
struct CimGemvResult {
  std::vector<float> out;  ///< length N, dequantized
  Cycle cycles = 0;        ///< write + bit-serial compute cycles
  std::size_t column_groups = 0;
  std::size_t entries_used = 0;
};

/// Quantized GEMV: act(K) × weights(K×N) through the bit-serial macro,
/// tiled by column groups of C and row chunks of R.
CimGemvResult cim_gemv(const ChipConfig& config, std::span<const float> act,
                       const Tensor& weights);

/// Result of an activation-aware pruned GEMV (Fig. 8).
struct PrunedGemvResult {
  std::vector<float> out;            ///< length N
  Cycle cycles = 0;                  ///< pruner + macro cycles
  std::size_t channels_kept = 0;     ///< surviving channels across cores
  std::size_t n_above_threshold = 0; ///< Σ n over cores — feeds Alg. 1
  Bytes weight_bytes_fetched = 0;    ///< DRAM traffic with pruning
  Bytes weight_bytes_unpruned = 0;   ///< traffic a dense GEMV would need
  double pruning_ratio = 0.0;        ///< 1 − kept/K
};

/// GEMV with channel pruning distributed over `num_cores` MC-cores:
/// every core runs the hardware pruner on its local channel slice with a
/// proportional share of `k_budget`, gathers only the surviving weight
/// rows (the address-generator path of Fig. 8(b)), and the partial
/// GEMVs accumulate. Throws std::invalid_argument if t <= 0,
/// num_cores == 0, or the activation length mismatches the weights.
PrunedGemvResult cim_gemv_pruned(const ChipConfig& config, std::span<const float> act,
                                 const Tensor& weights, std::size_t k_budget,
                                 double t, std::size_t num_cores);

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_KERNELS_HPP
