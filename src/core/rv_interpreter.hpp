// Minimal RV32I execution model hosting the AI extension.
//
// §III-C: "the extended instructions can be utilized by customized
// kernel functions, enabling the use of the RISC-V toolchain without the
// internal modification of the compiler." This interpreter realizes that
// claim in miniature: a base-ISA subset (ALU, loads/stores, branches,
// jumps) supplies control flow and address arithmetic, and any word in
// the custom opcode space is dispatched to the HostCore's coprocessor —
// exactly the decode-and-dispatch structure of Fig. 5/6.
//
// Programs are built with the rv:: encoder helpers (a programmatic
// assembler) or taken as raw words from any RV32I assembler.
#ifndef EDGEMM_CORE_RV_INTERPRETER_HPP
#define EDGEMM_CORE_RV_INTERPRETER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/host_core.hpp"

namespace edgemm::core {

namespace rv {

// --- RV32I encoders (subset) -----------------------------------------------
std::uint32_t lui(unsigned rd, std::int32_t imm20);
std::uint32_t addi(unsigned rd, unsigned rs1, std::int32_t imm12);
std::uint32_t add(unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t sub(unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t and_(unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t or_(unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t xor_(unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t slli(unsigned rd, unsigned rs1, unsigned shamt);
std::uint32_t srli(unsigned rd, unsigned rs1, unsigned shamt);
std::uint32_t slt(unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t lw(unsigned rd, unsigned rs1, std::int32_t imm12);
std::uint32_t sw(unsigned rs2, unsigned rs1, std::int32_t imm12);
std::uint32_t beq(unsigned rs1, unsigned rs2, std::int32_t offset);
std::uint32_t bne(unsigned rs1, unsigned rs2, std::int32_t offset);
std::uint32_t blt(unsigned rs1, unsigned rs2, std::int32_t offset);
std::uint32_t bge(unsigned rs1, unsigned rs2, std::int32_t offset);
std::uint32_t jal(unsigned rd, std::int32_t offset);
std::uint32_t jalr(unsigned rd, unsigned rs1, std::int32_t imm12);
std::uint32_t ecall();  ///< used as the halt instruction

}  // namespace rv

/// Outcome of one program run.
struct RvRunResult {
  Cycle cycles = 0;               ///< base ops at 1 cycle + coprocessor charges
  std::uint64_t instructions = 0; ///< retired count
  bool halted = false;            ///< reached ecall (vs fuel exhaustion)
};

/// The host core's scalar pipeline: fetch/decode/execute over a word
/// program, with custom-opcode words handed to the coprocessor.
class RvInterpreter {
 public:
  /// `data_words` sizes the core's data memory (word-addressed loads and
  /// stores; byte addresses must be 4-aligned or std::invalid_argument).
  RvInterpreter(HostCore& core, std::size_t data_words = 4096);

  /// Runs until ecall or `fuel` retired instructions.
  RvRunResult run(std::span<const std::uint32_t> program,
                  std::uint64_t fuel = 1'000'000);

  /// Word-addressed data memory access for test setup/inspection.
  std::uint32_t load_word(std::uint32_t byte_address) const;
  void store_word(std::uint32_t byte_address, std::uint32_t value);

 private:
  HostCore& core_;
  std::vector<std::uint32_t> data_;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_RV_INTERPRETER_HPP
