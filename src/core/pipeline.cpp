#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "core/phase_scheduler.hpp"

namespace edgemm::core {

std::vector<GemmWork> batched_decode_ops(const std::vector<GemmWork>& ops,
                                         std::size_t batch) {
  std::vector<GemmWork> out = ops;
  if (batch <= 1) return out;
  for (GemmWork& op : out) op.m *= batch;
  return out;
}

std::vector<GemmWork> pruned_ops(const std::vector<GemmWork>& ops,
                                 double keep_fraction) {
  if (keep_fraction < 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("pruned_ops: keep_fraction must be in [0, 1]");
  }
  std::vector<GemmWork> out = ops;
  for (GemmWork& op : out) {
    if (!op.prunable) continue;
    const auto kept = static_cast<std::size_t>(
        std::ceil(static_cast<double>(op.k) * keep_fraction));
    op.k = std::max<std::size_t>(kept, 1);
  }
  return out;
}

MllmPipeline::MllmPipeline(const ChipConfig& config) : config_(config) {
  config_.validate();
}

BandwidthPolicy derive_policy(const ChipConfig& config,
                              const PhaseWorkload& workload) {
  // Throwaway models to evaluate the analytic per-op costs.
  sim::Simulator sim;
  mem::DramController dram(sim, config.dram);
  ClusterTimingModel cc(sim, dram, config, ClusterKind::kComputeCentric, "cc-probe");
  ClusterTimingModel mc(sim, dram, config, ClusterKind::kMemoryCentric, "mc-probe");

  const double half_bw = config.dram.bytes_per_cycle / 2.0;
  const std::size_t n_cc = std::max<std::size_t>(config.total_cc_clusters(), 1);
  const std::size_t n_mc = std::max<std::size_t>(config.total_mc_clusters(), 1);

  auto stage_cycles = [&](ClusterTimingModel& cluster, std::size_t ways,
                          const std::vector<GemmWork>& ops) {
    double compute = 0.0;
    double bytes = 0.0;
    for (const GemmWork& op : ops) {
      const auto shards = ChipTimingModel::partition(op, ways);
      if (shards.empty()) continue;
      compute += static_cast<double>(cluster.compute_cycles(shards.front()));
      for (const GemmWork& shard : shards) {
        bytes += static_cast<double>(cluster.weight_bytes(shard) +
                                     cluster.activation_bytes(shard));
      }
    }
    return std::max(compute, bytes / half_bw);
  };

  std::vector<GemmWork> cc_ops = workload.encoder;
  cc_ops.insert(cc_ops.end(), workload.prefill.begin(), workload.prefill.end());
  const double cc_stage = stage_cycles(cc, n_cc, cc_ops);
  const double decode_token = stage_cycles(mc, n_mc, workload.decode_token);

  BandwidthPolicy policy;  // published ramp shape and batch ceiling
  const double le = decode_token > 0.0 ? cc_stage / decode_token : 1.0;
  policy.balance_length = std::max<std::size_t>(1, static_cast<std::size_t>(le + 0.5));
  // The paper's proportion l_b / l_e = 131 / 36.
  policy.batch_length = std::max<std::size_t>(
      policy.balance_length + 1,
      static_cast<std::size_t>(le * 131.0 / 36.0 + 0.5));
  return policy;
}

PipelineResult MllmPipeline::run(const PhaseWorkload& workload,
                                 const PipelineOptions& options) {
  if (options.output_tokens == 0) {
    throw std::invalid_argument("MllmPipeline::run: output_tokens must be > 0");
  }
  if (workload.encoder.empty() && workload.prefill.empty()) {
    throw std::invalid_argument("MllmPipeline::run: empty CC-stage workload");
  }
  if (workload.decode_token.empty()) {
    throw std::invalid_argument("MllmPipeline::run: empty decode workload");
  }
  const std::size_t l = options.output_tokens;
  const std::size_t n_batches = std::max<std::size_t>(options.batches, 2);

  BandwidthManager manager(config_, options.policy);
  std::size_t batch = 1;
  if (options.forced_batch > 0) {
    batch = options.forced_batch;
  } else if (options.enable_batching) {
    batch = manager.batch_for_length(l);
  }

  ChipTimingModel chip(config_, ChipComposition::kHeterogeneous);
  const auto cc_set = chip.clusters(ClusterKind::kComputeCentric);
  const auto mc_set = chip.clusters(ClusterKind::kMemoryCentric);
  EDGEMM_ASSERT_MSG(!cc_set.empty() && !mc_set.empty(),
                    "pipeline requires a heterogeneous chip");

  // One CC round encodes+prefills a whole batch of requests (Fig. 9(c)).
  std::vector<GemmWork> cc_round;
  for (std::size_t b = 0; b < batch; ++b) {
    cc_round.insert(cc_round.end(), workload.encoder.begin(), workload.encoder.end());
    cc_round.insert(cc_round.end(), workload.prefill.begin(), workload.prefill.end());
  }
  // One decode step serves the whole batch off a single weight fetch.
  const std::vector<GemmWork> decode_step =
      batched_decode_ops(pruned_ops(workload.decode_token, options.prune_keep_fraction),
                         batch);

  std::size_t applied_ratio = 1;
  if (options.manage_bandwidth) {
    if (batch > 1) {
      // Batch decoding rebalances the pipeline (Fig. 9(c)): size Bc:Bm
      // from the actual per-round byte ratio instead of the l-schedule.
      const double cc_bytes =
          static_cast<double>(estimated_traffic_bytes(*cc_set.front(), cc_round));
      const double mc_bytes =
          static_cast<double>(estimated_traffic_bytes(*mc_set.front(), decode_step)) *
          static_cast<double>(l);
      const double raw_ratio = cc_bytes > 0.0 ? mc_bytes / cc_bytes : 1.0;
      applied_ratio = std::clamp<std::size_t>(
          static_cast<std::size_t>(raw_ratio + 0.5), 1, options.policy.max_mc_ratio);
      manager.apply_ratio(chip, applied_ratio);
    } else {
      applied_ratio = manager.mc_ratio_for_length(l);
      manager.apply(chip, l);
    }
  } else {
    // §IV-B baseline: the PMC throttles are always armed, with the
    // default equal hard partition across clusters.
    manager.apply_equal_sharing(chip);
  }

  // --- Event-driven pipeline driver --------------------------------------
  // The lane mechanics (cluster sets, FIFO dispatch, overlap between the
  // CC stage and MC decode) live in PhaseScheduler; what remains here is
  // the fixed-workload round structure of the original experiment.
  struct BatchTimes {
    Cycle cc_start = 0, cc_end = 0, mc_start = 0, mc_end = 0;
    bool cc_done = false;
  };
  struct Driver {
    PhaseScheduler& sched;
    PhaseScheduler::OpsRef cc_round;    ///< shared: one submission per batch
    PhaseScheduler::OpsRef decode_step; ///< shared: one submission per token
    std::size_t l;
    std::size_t n_batches;
    std::vector<BatchTimes> times;
    std::size_t mc_next = 0;
    bool mc_busy = false;

    void start_cc(std::size_t j) {
      if (j >= n_batches) return;
      sched.submit(
          Lane::kCcStage, cc_round,
          [this, j] {
            times[j].cc_end = sched.sim().now();
            times[j].cc_done = true;
            try_start_mc();
            start_cc(j + 1);  // streaming input: next batch is always waiting
          },
          [this, j] { times[j].cc_start = sched.sim().now(); });
    }

    void try_start_mc() {
      if (mc_busy || mc_next >= n_batches || !times[mc_next].cc_done) return;
      mc_busy = true;
      times[mc_next].mc_start = sched.sim().now();
      decode_token(mc_next, 0);
    }

    void decode_token(std::size_t j, std::size_t t) {
      sched.submit(Lane::kMcDecode, decode_step, [this, j, t] {
        if (t + 1 < l) {
          decode_token(j, t + 1);
          return;
        }
        times[j].mc_end = sched.sim().now();
        mc_busy = false;
        ++mc_next;
        try_start_mc();
      });
    }
  };

  PhaseScheduler scheduler(chip);
  Driver driver{scheduler,
                std::make_shared<const std::vector<GemmWork>>(std::move(cc_round)),
                std::make_shared<const std::vector<GemmWork>>(decode_step),
                l,
                n_batches,
                std::vector<BatchTimes>(n_batches)};
  driver.start_cc(0);
  chip.simulator().run();

  // --- Metrics -------------------------------------------------------------
  PipelineResult result;
  result.batch = batch;
  result.mc_ratio = applied_ratio;
  result.makespan = chip.simulator().now();
  result.total_tokens = n_batches * batch * l;

  // Steady-state batch: the last one still overlapped by upstream CC work.
  const std::size_t steady = n_batches >= 3 ? n_batches - 2 : n_batches - 1;
  const BatchTimes& s = driver.times[steady];
  result.cc_stage_cycles = s.cc_end - s.cc_start;
  result.mc_stage_cycles = s.mc_end - s.mc_start;
  result.request_latency_ms =
      cycles_to_ms(s.mc_end - s.cc_start, config_.clock_hz);

  // Steady-state throughput: tokens of one pipeline round over the round
  // interval (completion-to-completion of consecutive batches).
  const BatchTimes& last = driver.times[n_batches - 1];
  const BatchTimes& prev = driver.times[n_batches - 2];
  const Cycle round = last.mc_end > prev.mc_end ? last.mc_end - prev.mc_end : 1;
  result.tokens_per_second = static_cast<double>(batch * l) /
                             cycles_to_seconds(round, config_.clock_hz);
  result.dram_utilization = chip.dram().utilization();
  return result;
}

}  // namespace edgemm::core
