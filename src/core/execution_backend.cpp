#include "core/execution_backend.hpp"

#include <utility>

namespace edgemm::core {

EdgeMmBackend::EdgeMmBackend(const ChipConfig& config,
                             ChipComposition composition,
                             ReplayMode replay_mode,
                             const BandwidthPolicy& bandwidth)
    : config_(config),
      chip_(config_, composition, replay_mode),
      scheduler_(chip_),
      manager_(config_, bandwidth) {}

void EdgeMmBackend::submit(Lane lane, std::vector<GemmWork> ops,
                           std::function<void()> done,
                           std::function<void()> started,
                           std::uint64_t affinity) {
  scheduler_.submit(lane, std::move(ops), std::move(done), std::move(started),
                    affinity);
}

Bytes EdgeMmBackend::estimated_job_bytes(Lane lane,
                                         std::span<const GemmWork> ops) const {
  // The lane's clusters are homogeneous; the front cluster's cost tables
  // price the whole job (exactly the engine's former cc_job_bytes).
  return estimated_traffic_bytes(*scheduler_.lane_clusters(lane).front(), ops);
}

}  // namespace edgemm::core
