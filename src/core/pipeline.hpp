// Streaming MLLM pipeline across the heterogeneous clusters (Fig. 9).
//
// Continuous streaming input lets the vision encoder + LLM-prefill of the
// next request run on the CC-clusters while the MC-clusters decode the
// current one. Bandwidth throttling rebalances the two stages as the
// output length grows, and stream-based batch decoding amortizes weight
// traffic across a batch of requests beyond l_b.
#ifndef EDGEMM_CORE_PIPELINE_HPP
#define EDGEMM_CORE_PIPELINE_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/chip.hpp"
#include "core/config.hpp"
#include "core/timing.hpp"

namespace edgemm::core {

/// Per-phase operation lists for one request of a given MLLM
/// (built by model::build_phase_workload).
struct PhaseWorkload {
  std::vector<GemmWork> encoder;       ///< vision encoder, GEMM (m = tokens)
  std::vector<GemmWork> prefill;       ///< LLM prefill, GEMM
  std::vector<GemmWork> decode_token;  ///< ONE decode iteration, GEMV (m = 1)
};

/// Knobs for one pipeline experiment.
struct PipelineOptions {
  std::size_t output_tokens = 128;  ///< l
  std::size_t batches = 3;          ///< pipeline rounds simulated (≥2 for steady state)
  bool manage_bandwidth = true;     ///< §IV-B throttling
  bool enable_batching = true;      ///< Fig. 9(c) stream-based batch decode
  std::size_t forced_batch = 0;     ///< 0 = policy decides; otherwise exact batch
  /// Average fraction of prunable (FFN) weight rows *kept* by the
  /// activation-aware pruner; 1.0 = pruning off. Applied to the k
  /// dimension of prunable decode ops.
  double prune_keep_fraction = 1.0;
  BandwidthPolicy policy{};
};

/// Measured outcome of a pipeline run.
struct PipelineResult {
  Cycle makespan = 0;                ///< all batches, first CC op to last token
  Cycle cc_stage_cycles = 0;         ///< steady-state CC stage duration
  Cycle mc_stage_cycles = 0;         ///< steady-state decode stage duration
  double request_latency_ms = 0.0;   ///< arrival-to-last-token, steady batch
  double tokens_per_second = 0.0;    ///< generated tokens / makespan
  std::size_t batch = 1;
  std::size_t mc_ratio = 1;          ///< applied Bc:Bm
  std::size_t total_tokens = 0;
  double dram_utilization = 0.0;
};

/// Runs the streaming pipeline experiment on a fresh heterogeneous chip.
class MllmPipeline {
 public:
  explicit MllmPipeline(const ChipConfig& config);

  /// Simulates `options.batches` pipeline rounds of `workload` and
  /// reports latency/throughput. Throws std::invalid_argument for an
  /// empty workload or zero output_tokens.
  PipelineResult run(const PhaseWorkload& workload, const PipelineOptions& options);

 private:
  ChipConfig config_;
};

/// Returns `ops` with the batch dimension applied (m *= batch) — batch
/// decoding reuses each fetched weight block across the whole batch.
std::vector<GemmWork> batched_decode_ops(const std::vector<GemmWork>& ops,
                                         std::size_t batch);

/// Returns `ops` with prunable k dimensions scaled by `keep_fraction`.
std::vector<GemmWork> pruned_ops(const std::vector<GemmWork>& ops,
                                 double keep_fraction);

/// Derives the bandwidth policy for THIS platform and workload: l_e is
/// the output length at which the CC stage and the decode stage balance
/// under equal bandwidth sharing (the paper's definition of l_e, which
/// evaluates to 36 on their testbed), and l_b keeps the paper's
/// l_b : l_e proportion (131 : 36). The ratio ramp and batch ceiling
/// stay at the published values.
BandwidthPolicy derive_policy(const ChipConfig& config, const PhaseWorkload& workload);

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_PIPELINE_HPP
