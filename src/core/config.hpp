// Architecture configuration of the EdgeMM chip (paper Fig. 10).
//
// Hierarchy (§III-A): chip = 4 groups; group = 2 CC-clusters +
// 2 MC-clusters; CC-cluster = 4 CC-cores (+1 DMA host core);
// MC-cluster = 2 MC-cores (+1 DMA host core). All parameters are
// runtime-configurable ("the hardware architecture can also be scaled by
// changing architecture parameters").
#ifndef EDGEMM_CORE_CONFIG_HPP
#define EDGEMM_CORE_CONFIG_HPP

#include <cstddef>

#include "common/types.hpp"
#include "common/units.hpp"
#include "coproc/cim_macro.hpp"
#include "coproc/systolic_array.hpp"
#include "mem/dma.hpp"
#include "mem/dram.hpp"

namespace edgemm::core {

/// Full parameter set of one EdgeMM chip instance.
struct ChipConfig {
  // --- Hierarchy ---------------------------------------------------------
  std::size_t groups = 4;
  std::size_t cc_clusters_per_group = 2;
  std::size_t mc_clusters_per_group = 2;
  std::size_t cc_cores_per_cluster = 4;
  std::size_t mc_cores_per_cluster = 2;

  // --- Coprocessors ------------------------------------------------------
  coproc::SystolicConfig systolic{};  ///< 16×16 weight-stationary PEs
  coproc::CimConfig cim{};            ///< 64 col × 16 subarrays × 64 × 8b

  // --- On-chip memory ----------------------------------------------------
  Bytes cc_cluster_tcdm_bytes = 64 * kKiB;   ///< shared data memory, CC
  Bytes mc_shared_buffer_bytes = 32 * kKiB;  ///< inter-core buffer, MC

  // --- Data formats ------------------------------------------------------
  /// CC-clusters fetch BF16 weights for the systolic datapath (Table II
  /// quotes the 18 TFLOP/s peak as BF16); MC-clusters store INT8 weights
  /// inside the CIM macros (N = 8). This byte asymmetry is one of the two
  /// pillars of the MC GEMV advantage (§V-B), the other being effective
  /// bandwidth of the larger MC blocks (Fig. 6(b)).
  std::size_t cc_elem_bytes = 2;  ///< BF16 weights on the SA path
  std::size_t mc_elem_bytes = 1;  ///< INT8 weights in the CIM macro

  // --- External memory ---------------------------------------------------
  mem::DramConfig dram{/*bytes_per_cycle=*/51.2, /*latency=*/100};
  mem::DmaConfig dma{/*burst_bytes=*/32 * kKiB, /*throttle_interval=*/100000};

  // --- Hierarchical AXI crossbars (Fig. 4) --------------------------------
  /// Per-group crossbar link joining the group's cluster DMAs.
  double group_xbar_bytes_per_cycle = 128.0;
  Cycle group_xbar_latency = 4;
  /// System crossbar joining the groups to the DRAM controller.
  double system_xbar_bytes_per_cycle = 256.0;
  Cycle system_xbar_latency = 4;

  // --- Chip-to-chip interconnect (multi-chip clusters) --------------------
  /// Serialized board-level link joining this chip to its cluster peers
  /// (serve/cluster): in disaggregated serving, finished KV caches
  /// migrate from prefill to decode chips across it (mem::ChipLink).
  /// Far narrower than the on-chip crossbars — a quarter of one DRAM
  /// channel — with board-level head latency per transfer.
  double chip_link_bytes_per_cycle = 12.8;  ///< ~12.8 GB/s at 1 GHz
  Cycle chip_link_latency = 500;            ///< per-transfer head latency

  /// Timing-plane fidelity knob: multiplies the double-buffer block size
  /// used to discretize DMA/compute overlap. 1 = architectural blocks
  /// (highest fidelity); larger values coarsen event granularity for
  /// long pipeline sweeps (e.g. l = 1024 in Fig. 13) without changing
  /// total traffic or compute. Not a hardware parameter.
  double timing_block_scale = 1.0;

  // --- Clock & published implementation constants (22 nm, §V-A) ----------
  double clock_hz = kChipClockHz;   ///< 1 GHz
  double chip_power_w = 0.112;      ///< post-P&R report: 112 mW
  double sa_area_share = 0.62;      ///< SA occupies 62 % of a CC-core
  double cim_area_share = 0.81;     ///< CIM occupies 81 % of an MC-core
  double dram_pj_per_byte = 160.0;  ///< LPDDR access energy (20 pJ/bit)

  // --- Derived counts ----------------------------------------------------
  std::size_t total_cc_clusters() const { return groups * cc_clusters_per_group; }
  std::size_t total_mc_clusters() const { return groups * mc_clusters_per_group; }
  std::size_t total_cc_cores() const {
    return total_cc_clusters() * cc_cores_per_cluster;
  }
  std::size_t total_mc_cores() const {
    return total_mc_clusters() * mc_cores_per_cluster;
  }

  /// Peak CC throughput: FLOP per cycle across all systolic arrays
  /// (2 FLOP per MAC).
  double cc_peak_flops_per_cycle() const;

  /// Peak MC throughput: OP per cycle across all CIM macros, amortizing
  /// the bit-serial factor W.
  double mc_peak_ops_per_cycle() const;

  /// Chip peak in FLOP/s (Table II quotes ~18 TFLOP/s BF16).
  double peak_flops() const;

  /// CIM storage available per MC-cluster (the macros double as data
  /// memory, §III-A).
  Bytes mc_cluster_cim_bytes() const {
    return mc_cores_per_cluster * coproc::cim_capacity_bytes(cim);
  }

  /// Validates structural invariants; throws std::invalid_argument with
  /// the violated condition in the message.
  void validate() const;
};

/// The configuration evaluated in the paper (Fig. 10 defaults).
ChipConfig default_chip_config();

/// A reduced configuration for fast unit tests (1 group, small arrays).
ChipConfig tiny_chip_config();

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_CONFIG_HPP
