#include "core/phase_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"

namespace edgemm::core {

const char* to_string(Lane lane) {
  switch (lane) {
    case Lane::kCcStage: return "cc-stage";
    case Lane::kMcDecode: return "mc-decode";
  }
  return "?";
}

PhaseScheduler::PhaseScheduler(ChipTimingModel& chip) : chip_(chip) {
  // §IV-B mapping: encoder/prefill prefer the CC clusters, decode the MC
  // clusters; preferred_clusters already falls back to every cluster for
  // the homogeneous and baseline compositions.
  cc_.clusters = chip_.preferred_clusters(Phase::kPrefill);
  mc_.clusters = chip_.preferred_clusters(Phase::kDecode);
  EDGEMM_ASSERT_MSG(!cc_.clusters.empty() && !mc_.clusters.empty(),
                    "PhaseScheduler: chip has no clusters for a lane");
}

PhaseScheduler::LaneState& PhaseScheduler::state(Lane lane) {
  return lane == Lane::kCcStage ? cc_ : mc_;
}

const PhaseScheduler::LaneState& PhaseScheduler::state(Lane lane) const {
  return lane == Lane::kCcStage ? cc_ : mc_;
}

void PhaseScheduler::submit(Lane lane, std::vector<GemmWork> ops,
                            std::function<void()> done,
                            std::function<void()> started,
                            std::uint64_t affinity) {
  submit(lane, std::make_shared<const std::vector<GemmWork>>(std::move(ops)),
         std::move(done), std::move(started), affinity);
}

void PhaseScheduler::submit(Lane lane, OpsRef ops, std::function<void()> done,
                            std::function<void()> started,
                            std::uint64_t affinity) {
  if (!ops || ops->empty()) {
    throw std::invalid_argument("PhaseScheduler::submit: empty op list");
  }
  LaneState& s = state(lane);
  s.queue.push_back(Job{std::move(ops), std::move(done), std::move(started),
                        sim().now(), affinity});
  if (!s.busy) dispatch_next(s);
}

void PhaseScheduler::set_affinity_chaining(Lane lane, bool enabled,
                                           std::size_t max_chain) {
  LaneState& s = state(lane);
  s.chain_affinity = enabled;
  s.chain_limit = max_chain;
}

bool PhaseScheduler::affinity_chaining(Lane lane) const {
  return state(lane).chain_affinity;
}

std::size_t PhaseScheduler::max_affinity_chain(Lane lane) const {
  return state(lane).chain_limit;
}

bool PhaseScheduler::idle(Lane lane) const {
  const LaneState& s = state(lane);
  return !s.busy && s.queue.empty();
}

std::size_t PhaseScheduler::queued(Lane lane) const {
  const LaneState& s = state(lane);
  return s.queue.size();
}

std::size_t PhaseScheduler::dispatched(Lane lane) const {
  return state(lane).stats.dispatched;
}

const PhaseScheduler::LaneStats& PhaseScheduler::lane_stats(Lane lane) const {
  return state(lane).stats;
}

const std::vector<ClusterTimingModel*>& PhaseScheduler::lane_clusters(
    Lane lane) const {
  return state(lane).clusters;
}

void PhaseScheduler::dispatch_next(LaneState& lane) {
  EDGEMM_ASSERT(!lane.busy);
  if (lane.queue.empty()) return;
  // Affinity chaining: prefer the earliest queued job continuing the
  // previous job's affinity group (its on-chip state — pinned weights —
  // is still hot); strict FIFO otherwise and whenever nothing matches.
  auto pick = lane.queue.begin();
  if (lane.chain_affinity && lane.last_affinity != 0 &&
      (lane.chain_limit == 0 || lane.chain_length < lane.chain_limit)) {
    for (auto it = lane.queue.begin(); it != lane.queue.end(); ++it) {
      if (it->affinity == lane.last_affinity) {
        pick = it;
        break;
      }
    }
  }
  if (pick != lane.queue.begin()) ++lane.stats.affinity_chained;
  Job job = std::move(*pick);
  lane.queue.erase(pick);
  // Chain-length accounting counts every consecutive same-affinity
  // dispatch (chained or natural FIFO) so the cap bounds the true run.
  if (job.affinity != 0 && job.affinity == lane.last_affinity) {
    ++lane.chain_length;
  } else {
    lane.chain_length = 1;
  }
  lane.last_affinity = job.affinity;
  lane.busy = true;
  ++lane.stats.dispatched;
  const Cycle waited = sim().now() - job.submitted;
  lane.stats.max_queue_wait = std::max(lane.stats.max_queue_wait, waited);
  lane.stats.total_queue_wait += waited;
  if (job.started) job.started();
  auto done = std::move(job.done);
  chip_.run_on(lane.clusters, *job.ops, [this, &lane, done = std::move(done)] {
    lane.busy = false;
    if (done) done();
    // `done` may have submitted follow-up work (continuous batching does
    // exactly this); only dispatch if it did not already claim the lane.
    if (!lane.busy) dispatch_next(lane);
  });
}

}  // namespace edgemm::core
