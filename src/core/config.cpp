#include "core/config.hpp"

#include <stdexcept>
#include <string>

namespace edgemm::core {

double ChipConfig::cc_peak_flops_per_cycle() const {
  return static_cast<double>(total_cc_cores()) * static_cast<double>(systolic.rows) *
         static_cast<double>(systolic.cols) * 2.0;
}

double ChipConfig::mc_peak_ops_per_cycle() const {
  const double macs_per_pass =
      static_cast<double>(cim.columns) * static_cast<double>(cim.tree_inputs);
  return static_cast<double>(total_mc_cores()) * macs_per_pass * 2.0 /
         static_cast<double>(cim.act_bits);
}

double ChipConfig::peak_flops() const {
  return (cc_peak_flops_per_cycle() + mc_peak_ops_per_cycle()) * clock_hz;
}

void ChipConfig::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("ChipConfig: ") + what);
  };
  require(groups > 0, "groups must be > 0");
  require(cc_clusters_per_group + mc_clusters_per_group > 0,
          "a group must contain at least one cluster");
  require(cc_clusters_per_group == 0 || cc_cores_per_cluster > 0,
          "CC-clusters must contain cores");
  require(mc_clusters_per_group == 0 || mc_cores_per_cluster > 0,
          "MC-clusters must contain cores");
  require(systolic.rows > 0 && systolic.cols > 0, "systolic array must be non-empty");
  require(cim.columns > 0 && cim.tree_inputs > 0 && cim.entries > 0,
          "CIM macro must be non-empty");
  require(cc_cluster_tcdm_bytes > 0, "CC TCDM must be non-empty");
  require(cc_elem_bytes > 0 && mc_elem_bytes > 0, "element sizes must be non-zero");
  require(dram.bytes_per_cycle > 0.0, "DRAM bandwidth must be positive");
  require(chip_link_bytes_per_cycle > 0.0,
          "chip-to-chip link bandwidth must be positive");
  require(dma.burst_bytes > 0, "DMA burst size must be non-zero");
  require(clock_hz > 0.0, "clock must be positive");
}

ChipConfig default_chip_config() {
  ChipConfig cfg;  // field initializers carry the Fig. 10 values
  cfg.validate();
  return cfg;
}

ChipConfig tiny_chip_config() {
  ChipConfig cfg;
  cfg.groups = 1;
  cfg.cc_clusters_per_group = 1;
  cfg.mc_clusters_per_group = 1;
  cfg.cc_cores_per_cluster = 2;
  cfg.mc_cores_per_cluster = 1;
  cfg.systolic = {4, 4};
  cfg.cim = {8, 4, 8, 8, 8};
  cfg.cc_cluster_tcdm_bytes = 4 * kKiB;
  cfg.mc_shared_buffer_bytes = 2 * kKiB;
  cfg.dma.burst_bytes = kKiB;
  cfg.validate();
  return cfg;
}

}  // namespace edgemm::core
