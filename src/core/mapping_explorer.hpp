// Mapping explorer — the search companion of the timing simulator
// ("the in-house simulator with a dedicated mapping explorer", §V-A).
//
// For one dense operation and one cluster kind it enumerates candidate
// tensor partitionings (§III-C) — output-dimension splits versus
// reduction-dimension splits, over 1..N clusters — predicts latency from
// the analytic compute/traffic models, and ranks them. Reduction splits
// pay for partial-sum exchange through the shared buffer / DRAM, which
// is why the scheduler's default is the output split; the explorer
// quantifies where that default stops being optimal.
#ifndef EDGEMM_CORE_MAPPING_EXPLORER_HPP
#define EDGEMM_CORE_MAPPING_EXPLORER_HPP

#include <memory>
#include <vector>

#include "core/chip.hpp"
#include "core/config.hpp"
#include "core/timing.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {

/// One evaluated candidate.
struct Mapping {
  enum class Split : std::uint8_t {
    kOutput,     ///< shard the n dimension (no inter-cluster reduction)
    kReduction,  ///< shard the k dimension (partial sums must be combined)
  };

  Split split = Split::kOutput;
  std::size_t ways = 1;            ///< clusters cooperating
  Cycle compute_cycles = 0;        ///< per-cluster datapath time
  Cycle memory_cycles = 0;         ///< shared-channel serialization time
  Bytes total_bytes = 0;           ///< DRAM traffic incl. reduction exchange
  Cycle predicted_cycles = 0;      ///< max(compute, memory) + access latency

  bool operator<(const Mapping& other) const {
    return predicted_cycles < other.predicted_cycles;
  }
};

const char* to_string(Mapping::Split split);

/// Analytic mapping search over a cluster set.
class MappingExplorer {
 public:
  explicit MappingExplorer(const ChipConfig& config);

  /// Predicts one candidate. `ways` is clamped to the dimension being
  /// split; throws std::invalid_argument for ways == 0.
  Mapping evaluate(const GemmWork& work, ClusterKind kind, Mapping::Split split,
                   std::size_t ways) const;

  /// Evaluates every (split, ways) candidate up to `max_ways`.
  std::vector<Mapping> explore(const GemmWork& work, ClusterKind kind,
                               std::size_t max_ways) const;

  /// The lowest-latency candidate from explore().
  Mapping best(const GemmWork& work, ClusterKind kind, std::size_t max_ways) const;

 private:
  ClusterTimingModel& probe(ClusterKind kind) const;

  ChipConfig config_;
  // Throwaway environment backing the analytic probes.
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<mem::DramController> dram_;
  std::unique_ptr<ClusterTimingModel> cc_probe_;
  std::unique_ptr<ClusterTimingModel> mc_probe_;
  std::unique_ptr<ClusterTimingModel> simd_probe_;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_MAPPING_EXPLORER_HPP
