// Token-length-driven bandwidth management (paper §IV-B, Fig. 9/13).
//
// Mechanism: every cluster DMA carries a PMC and a byte budget per
// interval T (mem/dma.hpp). Policy: as the output token length l grows,
// LLM-decoding on the MC-clusters dominates the pipeline, so the
// CC-cluster budget Bc is progressively reduced in favour of Bm
// (ratios down to 1:7); beyond l_b the pipeline switches to stream-based
// batch decoding (Fig. 9(c)).
#ifndef EDGEMM_CORE_BANDWIDTH_MANAGER_HPP
#define EDGEMM_CORE_BANDWIDTH_MANAGER_HPP

#include <cstddef>

#include "common/types.hpp"
#include "core/chip.hpp"
#include "core/config.hpp"

namespace edgemm::core {

/// Tunable policy constants (paper values as defaults).
struct BandwidthPolicy {
  /// l_e: output length at which CC and MC stage latencies balance under
  /// equal bandwidth sharing (paper: 36).
  std::size_t balance_length = 36;
  /// l_b: output length beyond which bandwidth reallocation saturates and
  /// batch decoding takes over (paper: 131).
  std::size_t batch_length = 131;
  /// Most extreme Bc:Bm ratio (paper: "1:3 or even 1:7").
  std::size_t max_mc_ratio = 7;
  /// Batch-size ceiling for stream-based batch decoding.
  std::size_t max_batch = 16;
};

/// Budget assignment for one operating point.
///
/// The PMC throttling of §IV-B is always armed: "each cluster is
/// assigned a memory access budget B". The *default* is equal sharing
/// (every cluster gets an equal hard slice of the interval bytes); the
/// optimization shifts the partition toward the MC side as l grows.
struct BudgetAssignment {
  Bytes cc_budget_per_cluster = 0;  ///< bytes per throttle interval
  Bytes mc_budget_per_cluster = 0;
  std::size_t mc_ratio = 1;  ///< Bc:Bm = 1:mc_ratio
};

/// Computes and applies throttle budgets from the output token length.
class BandwidthManager {
 public:
  BandwidthManager(const ChipConfig& config, const BandwidthPolicy& policy);

  const BandwidthPolicy& policy() const { return policy_; }

  /// Bc:Bm ratio for output length l: 1:1 at or below l_e, stepping
  /// through 1:3 and 1:5 up to 1:max_mc_ratio as l approaches l_b.
  std::size_t mc_ratio_for_length(std::size_t l) const;

  /// Full budget assignment for l, given the cluster counts of `chip`.
  BudgetAssignment budgets_for_length(std::size_t l,
                                      std::size_t cc_clusters,
                                      std::size_t mc_clusters) const;

  /// The paper's default operating point: every cluster receives an
  /// equal hard slice of the deliverable interval bytes ("default equal
  /// bandwidth sharing among clusters", §IV-B).
  BudgetAssignment equal_sharing(std::size_t cc_clusters,
                                 std::size_t mc_clusters) const;

  /// Batch size for stream-based batch decoding: 1 below l_b, then
  /// growing with l up to max_batch (Fig. 9(c)).
  std::size_t batch_for_length(std::size_t l) const;

  /// Applies the budgets to every cluster DMA of `chip`.
  void apply(ChipTimingModel& chip, std::size_t l) const;

  /// Applies an explicit Bc:Bm = 1:mc_ratio partition — used when batch
  /// decoding rebalances the pipeline (Fig. 9(c)) and the per-round byte
  /// ratio, not the raw output length, determines the right split.
  void apply_ratio(ChipTimingModel& chip, std::size_t mc_ratio) const;

  /// Applies the default equal partition (the Fig. 13 baseline).
  void apply_equal_sharing(ChipTimingModel& chip) const;

 private:
  ChipConfig config_;
  BandwidthPolicy policy_;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_BANDWIDTH_MANAGER_HPP
