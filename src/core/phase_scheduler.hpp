// Lane-based phase scheduler over the heterogeneous chip (Fig. 9).
//
// The CC lane runs modality-encoder + LLM-prefill jobs, the MC lane runs
// decode steps; jobs on one lane execute FIFO, one at a time, across the
// lane's full cluster set, while the two lanes overlap freely. This is
// the scheduling core shared by the legacy fixed-workload MllmPipeline
// and the request-level serve::ServingEngine (continuous batching: a
// prefill job for a newly arrived request can run on the CC lane while
// the MC lane drains decode steps of in-flight requests).
#ifndef EDGEMM_CORE_PHASE_SCHEDULER_HPP
#define EDGEMM_CORE_PHASE_SCHEDULER_HPP

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/chip.hpp"
#include "core/timing.hpp"

namespace edgemm::core {

/// The two overlapping stages of the streaming pipeline.
enum class Lane : std::uint8_t {
  kCcStage,   ///< vision encoder + LLM prefill (compute-centric clusters)
  kMcDecode,  ///< autoregressive decode steps (memory-centric clusters)
};

const char* to_string(Lane lane);

/// Dispatches jobs onto the chip's cluster sets in per-lane FIFO order
/// by default (see set_affinity_chaining for the opt-in exception).
///
/// A job is one ChipTimingModel::run_on call: its ops are tensor-partitioned
/// across the lane's clusters and the job retires when every shard has.
/// Submitting to a busy lane queues the job; `started` (optional) fires at
/// dispatch time, `done` at retirement — both inside the simulation, so
/// sim().now() reads the event's timestamp.
class PhaseScheduler {
 public:
  explicit PhaseScheduler(ChipTimingModel& chip);

  ChipTimingModel& chip() { return chip_; }
  sim::Simulator& sim() { return chip_.simulator(); }

  /// Shared-ownership op list for jobs submitted many times (e.g. the
  /// same decode step once per token) — avoids copying the vector per
  /// submission.
  using OpsRef = std::shared_ptr<const std::vector<GemmWork>>;

  /// Enqueues `ops` as one job on `lane`. Throws std::invalid_argument
  /// for an empty op list (an empty job has no retirement event).
  /// `affinity` is an opaque non-zero key (0 = none) grouping jobs that
  /// share on-chip state — e.g. prefill chunks of one request riding a
  /// weight pin; it only affects dispatch order when affinity chaining
  /// is enabled on the lane.
  void submit(Lane lane, std::vector<GemmWork> ops, std::function<void()> done,
              std::function<void()> started = {}, std::uint64_t affinity = 0);

  /// Same, without copying: the job shares ownership of `ops`.
  void submit(Lane lane, OpsRef ops, std::function<void()> done,
              std::function<void()> started = {}, std::uint64_t affinity = 0);

  /// Affinity chaining (default off, preserving strict FIFO): when
  /// enabled, dispatch prefers the earliest queued job whose affinity
  /// matches the lane's last dispatched job, falling back to the queue
  /// head. Chained chunks of a weight-resident prefill then run
  /// back-to-back where their weights are pinned, shortening the window
  /// a pin is held (and competing pins fall back to re-fetch). Bounded
  /// un-fairness: a chain is at most one request's remaining chunks, and
  /// a lane with no matching job always takes the FIFO head.
  ///
  /// `max_chain` additionally caps the head-of-line damage: after
  /// max_chain consecutive same-affinity dispatches the lane takes the
  /// FIFO head regardless, then may start a new chain. 0 = unbounded —
  /// bit-for-bit the original chaining behavior.
  void set_affinity_chaining(Lane lane, bool enabled, std::size_t max_chain = 0);
  bool affinity_chaining(Lane lane) const;
  std::size_t max_affinity_chain(Lane lane) const;

  /// True when no job is running or queued on `lane`.
  bool idle(Lane lane) const;

  /// Jobs waiting behind the running one (0 when idle or running the
  /// only job).
  std::size_t queued(Lane lane) const;

  /// Jobs dispatched to `lane` so far (for tests and occupancy stats).
  std::size_t dispatched(Lane lane) const;

  /// Per-lane queueing statistics: how long jobs sat behind earlier jobs
  /// between submit and dispatch. max_queue_wait is the head-of-line
  /// blocking metric chunked prefill exists to bound.
  struct LaneStats {
    std::size_t dispatched = 0;
    Cycle max_queue_wait = 0;
    Cycle total_queue_wait = 0;
    /// Jobs dispatched ahead of the FIFO head because their affinity
    /// matched the previous job (0 unless chaining is enabled).
    std::size_t affinity_chained = 0;

    double mean_queue_wait() const {
      return dispatched > 0
                 ? static_cast<double>(total_queue_wait) /
                       static_cast<double>(dispatched)
                 : 0.0;
    }
  };

  const LaneStats& lane_stats(Lane lane) const;

  /// The cluster set backing `lane` under the chip's composition
  /// (heterogeneous: CC / MC; homogeneous compositions share all
  /// clusters between both lanes and serialize inside the cluster FIFOs).
  const std::vector<ClusterTimingModel*>& lane_clusters(Lane lane) const;

 private:
  struct Job {
    OpsRef ops;
    std::function<void()> done;
    std::function<void()> started;
    Cycle submitted = 0;
    std::uint64_t affinity = 0;
  };
  struct LaneState {
    std::vector<ClusterTimingModel*> clusters;
    std::deque<Job> queue;
    bool busy = false;
    bool chain_affinity = false;
    std::size_t chain_limit = 0;   ///< 0 = unbounded
    std::size_t chain_length = 0;  ///< consecutive same-affinity dispatches
    std::uint64_t last_affinity = 0;
    LaneStats stats;
  };

  LaneState& state(Lane lane);
  const LaneState& state(Lane lane) const;
  void dispatch_next(LaneState& lane);

  ChipTimingModel& chip_;
  LaneState cc_;
  LaneState mc_;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_PHASE_SCHEDULER_HPP
