// Functional model of one EdgeMM core: RISC-V host + AI coprocessor.
//
// "The extended instructions are decoded by host core and dispatched to
// coprocessor via direct-linked interface" (§III-B). This model executes
// the extension instructions of Fig. 7 against the coprocessor models,
// with real arithmetic, and charges the documented cycle costs. Scalar
// control flow (loops, address arithmetic) is the host program's job —
// tests and kernels drive this class from C++, mirroring the paper's
// "customized kernel functions" programming model (§III-C).
#ifndef EDGEMM_CORE_HOST_CORE_HPP
#define EDGEMM_CORE_HOST_CORE_HPP

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/tensor.hpp"
#include "common/types.hpp"
#include "coproc/cim_macro.hpp"
#include "coproc/matrix_regfile.hpp"
#include "coproc/pruner.hpp"
#include "coproc/systolic_array.hpp"
#include "coproc/vector_unit.hpp"
#include "core/config.hpp"
#include "isa/csr.hpp"

namespace edgemm::core {

/// Raised when a core executes an instruction its coprocessor lacks
/// (e.g. mm.mul on a memory-centric core).
class IllegalInstruction : public std::runtime_error {
 public:
  explicit IllegalInstruction(const std::string& what);
};

/// One core with its coprocessor state.
class HostCore {
 public:
  /// Builds a CC-core (systolic array + matrix registers) or an MC-core
  /// (CIM macro + pruner) per `kind`. Identity values seed the read-only
  /// CSRs of the programming model.
  HostCore(const ChipConfig& config, CoreKind kind, CoreId core_id,
           ClusterId cluster_id, std::uint32_t group_id, std::uint32_t core_pos);

  CoreKind kind() const { return kind_; }

  // --- Scalar register file ---------------------------------------------
  void set_xreg(std::size_t index, std::uint32_t value);
  std::uint32_t xreg(std::size_t index) const;

  // --- Vector register file ----------------------------------------------
  static constexpr std::size_t kNumVRegs = 32;
  static constexpr std::size_t kMaxVlen = 8192;

  void set_vreg(std::size_t index, std::vector<float> value);
  const std::vector<float>& vreg(std::size_t index) const;

  // --- Bindings (stand-ins for cluster memory) ----------------------------
  /// Binds LSU address slot aN to a host tile for mm.ld / mm.st.
  void bind_lsu_slot(std::size_t slot, Tensor* tile);

  /// Binds a weight matrix at a virtual address for mv.ldw / mv.mul.
  void bind_matrix(std::uint32_t address, const Tensor* matrix);

  // --- Execution ----------------------------------------------------------
  /// Decodes and executes one extension word; returns the cycles charged.
  /// Throws IllegalInstruction for wrong-core or unknown encodings and
  /// std::invalid_argument for operand violations.
  Cycle execute(std::uint32_t word);

  /// Executes a whole program; returns total cycles.
  Cycle run(std::span<const std::uint32_t> words);

  // --- Introspection ------------------------------------------------------
  isa::CsrFile& csrs() { return csrs_; }
  const isa::CsrFile& csrs() const { return csrs_; }
  coproc::MatrixRegFile& matrix_regs();
  coproc::SystolicArray& systolic();
  coproc::CimMacro& cim();
  coproc::VectorUnit& vector_unit() { return vu_; }
  const std::optional<coproc::PruneOutcome>& last_prune() const { return last_prune_; }

 private:
  struct BoundMatrix {
    const Tensor* tensor = nullptr;
    // Set once mv.ldw quantizes and writes the tensor into the macro.
    std::size_t first_entry = 0;
    std::size_t entry_count = 0;
    float weight_scale = 1.0F;
    bool loaded = false;
  };

  Cycle exec_matrix(const struct DecodedView& d);
  Cycle exec_matrix_vector(const struct DecodedView& d);
  Cycle exec_vector(const struct DecodedView& d);
  Cycle exec_config(const struct DecodedView& d);

  /// Held by value: HostCores are built from throwaway configs all over
  /// the tests (and ChipConfig is a small flat struct), so a reference
  /// member would dangle the moment a caller passes a temporary.
  ChipConfig config_;
  CoreKind kind_;
  isa::CsrFile csrs_;

  std::array<std::uint32_t, 32> xregs_{};
  std::array<std::vector<float>, kNumVRegs> vregs_{};

  // CC-side state.
  std::optional<coproc::MatrixRegFile> mregs_;
  std::optional<coproc::SystolicArray> sa_;
  std::array<Tensor*, 8> lsu_slots_{};

  // MC-side state.
  std::optional<coproc::CimMacro> cim_;
  coproc::ActAwarePruner pruner_;
  std::map<std::uint32_t, BoundMatrix> bound_matrices_;
  std::size_t next_free_entry_ = 0;
  std::optional<coproc::PruneOutcome> last_prune_;

  coproc::VectorUnit vu_;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_HOST_CORE_HPP
