#include "core/kernels.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/quant.hpp"
#include "coproc/cim_macro.hpp"
#include "coproc/pruner.hpp"
#include "coproc/systolic_array.hpp"

namespace edgemm::core {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Copies a sub-block into a zero-padded R×C tile.
Tensor padded_block(const Tensor& src, std::size_t r0, std::size_t c0,
                    std::size_t rows, std::size_t cols) {
  Tensor tile(rows, cols);
  const std::size_t nr = std::min(rows, src.rows() - r0);
  const std::size_t nc = std::min(cols, src.cols() - c0);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) {
      tile.at(r, c) = src.at(r0 + r, c0 + c);
    }
  }
  return tile;
}

}  // namespace

SaGemmResult sa_gemm(const ChipConfig& config, const Tensor& acts,
                     const Tensor& weights) {
  if (acts.cols() != weights.rows()) {
    throw std::invalid_argument("sa_gemm: inner dimensions mismatch");
  }
  const std::size_t rows = config.systolic.rows;  // R
  const std::size_t cols = config.systolic.cols;  // C
  coproc::SystolicArray sa(config.systolic);

  const std::size_t m = acts.rows();
  const std::size_t k = acts.cols();
  const std::size_t n = weights.cols();

  SaGemmResult result{Tensor(m, n), 0, 0};
  // Weight-stationary loop nest: for each R×C weight tile, stream all M
  // activation rows before moving on (maximal weight reuse).
  for (std::size_t kb = 0; kb < k; kb += rows) {
    for (std::size_t nb = 0; nb < n; nb += cols) {
      sa.load_weights(padded_block(weights, kb, nb, rows, cols));
      const Tensor act_block = padded_block(acts, 0, kb, m, rows);
      const Tensor partial = sa.multiply(act_block);
      const std::size_t nc = std::min(cols, n - nb);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t c = 0; c < nc; ++c) {
          result.out.at(i, nb + c) += partial.at(i, c);
        }
      }
      ++result.tile_passes;
    }
  }
  result.cycles = sa.cycles_elapsed();
  return result;
}

CimGemvResult cim_gemv(const ChipConfig& config, std::span<const float> act,
                       const Tensor& weights) {
  if (act.size() != weights.rows()) {
    throw std::invalid_argument("cim_gemv: activation length must equal rows");
  }
  const auto& cfg = config.cim;
  const std::size_t k = weights.rows();
  const std::size_t n = weights.cols();
  coproc::CimMacro macro(cfg);

  // Activation codes, zero-padded to a whole number of R-chunks.
  const auto qa = quantize_symmetric(act, cfg.act_bits);
  const std::size_t entries = ceil_div(k, cfg.tree_inputs);
  std::vector<std::int32_t> codes(entries * cfg.tree_inputs, 0);
  std::copy(qa.codes.begin(), qa.codes.end(), codes.begin());

  CimGemvResult result;
  result.out.assign(n, 0.0F);
  result.entries_used = entries;

  for (std::size_t nb = 0; nb < n; nb += cfg.columns) {
    const std::size_t nc = std::min(cfg.columns, n - nb);
    // Quantize this column group once (per-tensor symmetric scale).
    const Tensor group = weights.block(0, nb, k, nc);
    const auto qw = quantize_symmetric(group.flat(), cfg.weight_bits);
    // Stream the K dimension through the macro in windows of at most
    // `cfg.entries` entries: write a window, run the bit-serial pass,
    // accumulate, then overwrite with the next window (steady-state
    // weight streaming when K exceeds the macro capacity).
    std::vector<std::int64_t> acc(cfg.columns, 0);
    for (std::size_t base = 0; base < entries; base += cfg.entries) {
      const std::size_t count = std::min(cfg.entries, entries - base);
      for (std::size_t e = 0; e < count; ++e) {
        std::vector<std::int32_t> tile(cfg.tree_inputs * cfg.columns, 0);
        for (std::size_t r = 0; r < cfg.tree_inputs; ++r) {
          const std::size_t row = (base + e) * cfg.tree_inputs + r;
          if (row >= k) break;
          for (std::size_t c = 0; c < nc; ++c) {
            tile[r * cfg.columns + c] = qw.codes[row * nc + c];
          }
        }
        macro.write_entry(e, tile);
      }
      const auto part = macro.gemv_long(
          0, count,
          std::span<const std::int32_t>(codes).subspan(base * cfg.tree_inputs,
                                                       count * cfg.tree_inputs));
      for (std::size_t c = 0; c < cfg.columns; ++c) acc[c] += part[c];
    }
    for (std::size_t c = 0; c < nc; ++c) {
      result.out[nb + c] = static_cast<float>(acc[c]) * qa.scale * qw.scale;
    }
    ++result.column_groups;
  }
  result.cycles = macro.cycles_elapsed();
  return result;
}

PrunedGemvResult cim_gemv_pruned(const ChipConfig& config, std::span<const float> act,
                                 const Tensor& weights, std::size_t k_budget,
                                 double t, std::size_t num_cores) {
  if (act.size() != weights.rows()) {
    throw std::invalid_argument("cim_gemv_pruned: activation length mismatch");
  }
  if (num_cores == 0) {
    throw std::invalid_argument("cim_gemv_pruned: num_cores must be > 0");
  }
  const std::size_t k = weights.rows();
  const std::size_t n = weights.cols();
  const std::size_t mc_elem = config.mc_elem_bytes;

  // Partition channels over cores; each core prunes its local slice with
  // a proportional share of the global budget (§IV-A: "each core focuses
  // on its assigned local channels, avoiding complex global Top-k").
  coproc::ActAwarePruner pruner;
  std::vector<std::size_t> kept_global;
  std::size_t n_total = 0;
  Cycle prune_cycles = 0;
  const std::size_t slice = ceil_div(k, num_cores);
  for (std::size_t core = 0; core < num_cores; ++core) {
    const std::size_t lo = core * slice;
    if (lo >= k) break;
    const std::size_t len = std::min(slice, k - lo);
    const std::size_t local_k = std::min(len, ceil_div(k_budget * len, k));
    const Cycle before = pruner.cycles_elapsed();
    const auto outcome = pruner.prune(act.subspan(lo, len), local_k, t);
    prune_cycles += pruner.cycles_elapsed() - before;
    n_total += outcome.n_above_threshold;
    for (const std::size_t idx : outcome.kept) kept_global.push_back(lo + idx);
  }
  std::sort(kept_global.begin(), kept_global.end());

  // Gather surviving channels + weight rows (the address generator only
  // fetches these rows from DRAM).
  std::vector<float> act_kept;
  act_kept.reserve(kept_global.size());
  Tensor w_kept(std::max<std::size_t>(kept_global.size(), 1), n);
  for (std::size_t i = 0; i < kept_global.size(); ++i) {
    act_kept.push_back(act[kept_global[i]]);
    for (std::size_t c = 0; c < n; ++c) {
      w_kept.at(i, c) = weights.at(kept_global[i], c);
    }
  }

  PrunedGemvResult result;
  result.channels_kept = kept_global.size();
  result.n_above_threshold = n_total;
  result.weight_bytes_unpruned = static_cast<Bytes>(k) * n * mc_elem;
  result.weight_bytes_fetched = static_cast<Bytes>(kept_global.size()) * n * mc_elem;
  result.pruning_ratio =
      1.0 - static_cast<double>(kept_global.size()) / static_cast<double>(k);

  if (kept_global.empty()) {
    result.out.assign(n, 0.0F);
    result.cycles = prune_cycles;
    return result;
  }
  auto gemv = cim_gemv(config, act_kept, w_kept);
  result.out = std::move(gemv.out);
  result.cycles = prune_cycles + gemv.cycles;
  return result;
}

}  // namespace edgemm::core
