// Functional cluster container: N host cores + shared buffer + barrier.
//
// Realizes the §III-C programming model at the functional level: every
// core reads its identity CSRs to find its tensor shard, cores exchange
// partial results through the cluster's shared buffer, and cfg.sync
// participates in a counted barrier whose epoch is visible in the
// kSyncEpoch CSR.
#ifndef EDGEMM_CORE_CLUSTER_CONTEXT_HPP
#define EDGEMM_CORE_CLUSTER_CONTEXT_HPP

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/host_core.hpp"
#include "mem/scratchpad.hpp"

namespace edgemm::core {

/// A functional cluster of identical cores.
class ClusterContext {
 public:
  /// Builds `num_cores` cores of `kind` with consecutive ids; the shared
  /// buffer capacity follows the config (TCDM for CC, shared buffer for
  /// MC). Throws std::invalid_argument if num_cores == 0.
  ClusterContext(const ChipConfig& config, CoreKind kind, std::size_t num_cores,
                 ClusterId cluster_id = 0, std::uint32_t group_id = 0);

  std::size_t size() const { return cores_.size(); }
  HostCore& core(std::size_t index);

  /// The cluster's staging memory for inter-core exchange.
  mem::Scratchpad& shared_buffer() { return *shared_buffer_; }

  /// Counted barrier: returns true when `core_index` is the last
  /// arrival, at which point every core's kSyncEpoch CSR is bumped and
  /// the barrier resets. (Single-threaded model: "arrival" is a call.)
  bool barrier_arrive(std::size_t core_index);

  /// Barrier epochs completed so far.
  std::uint32_t barrier_epochs() const { return epochs_; }

  /// SPMD helper: runs `body(core, index)` on every core in turn, then
  /// completes one barrier. Returns the summed coprocessor cycles as if
  /// the cores ran concurrently is the caller's job (max-reduce); this
  /// returns per-core cycle counts for that purpose.
  std::vector<Cycle> run_spmd(const std::function<Cycle(HostCore&, std::size_t)>& body);

 private:
  std::vector<std::unique_ptr<HostCore>> cores_;
  std::unique_ptr<mem::Scratchpad> shared_buffer_;
  std::vector<bool> arrived_;
  std::size_t arrivals_ = 0;
  std::uint32_t epochs_ = 0;
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_CLUSTER_CONTEXT_HPP
