#include "core/chip.hpp"

#include <memory>
#include <string>

#include "common/assert.hpp"

namespace edgemm::core {

const char* to_string(ChipComposition composition) {
  switch (composition) {
    case ChipComposition::kHeterogeneous: return "EdgeMM (hetero)";
    case ChipComposition::kHomoCc: return "homo-CC";
    case ChipComposition::kHomoMc: return "homo-MC";
    case ChipComposition::kBaselineSnitch: return "Snitch baseline";
  }
  return "?";
}

ChipTimingModel::ChipTimingModel(const ChipConfig& config, ChipComposition composition,
                                 ReplayMode mode)
    : config_(config), composition_(composition), mode_(mode),
      dram_(sim_, config.dram) {
  config_.validate();
  const std::size_t clusters_per_group =
      config.cc_clusters_per_group + config.mc_clusters_per_group;

  // Hierarchical AXI interconnect (Fig. 4): one crossbar link per group,
  // one system crossbar in front of the DRAM controller.
  system_xbar_ = std::make_unique<mem::ResourceServer>(
      sim_, "sys-xbar", config.system_xbar_bytes_per_cycle,
      config.system_xbar_latency);
  for (std::size_t g = 0; g < config.groups; ++g) {
    group_xbars_.push_back(std::make_unique<mem::ResourceServer>(
        sim_, "grp-xbar" + std::to_string(g), config.group_xbar_bytes_per_cycle,
        config.group_xbar_latency));
  }

  auto add_cluster = [&](ClusterKind kind, std::size_t group, std::size_t index) {
    const std::string name = std::string(to_string(kind)) + "-g" +
                             std::to_string(group) + "c" + std::to_string(index);
    mem::MemoryPath path;
    path.add_hop(*group_xbars_[group], group_xbars_[group]->add_port(name));
    path.add_hop(*system_xbar_, system_xbar_->add_port(name));
    path.add_hop(dram_.channel(), dram_.add_port(name));
    clusters_.push_back(std::make_unique<ClusterTimingModel>(sim_, std::move(path),
                                                             config_, kind, name));
  };

  for (std::size_t g = 0; g < config.groups; ++g) {
    for (std::size_t c = 0; c < clusters_per_group; ++c) {
      switch (composition) {
        case ChipComposition::kHeterogeneous:
          add_cluster(c < config.cc_clusters_per_group ? ClusterKind::kComputeCentric
                                                       : ClusterKind::kMemoryCentric,
                      g, c);
          break;
        case ChipComposition::kHomoCc:
          add_cluster(ClusterKind::kComputeCentric, g, c);
          break;
        case ChipComposition::kHomoMc:
          add_cluster(ClusterKind::kMemoryCentric, g, c);
          break;
        case ChipComposition::kBaselineSnitch:
          add_cluster(ClusterKind::kBaselineSimd, g, c);
          break;
      }
    }
  }

  if (mode_ == ReplayMode::kFast) {
    fast_ = std::make_unique<FastMemoryModel>(sim_, dram_, config_);
    for (const auto& cluster : clusters_) {
      fast_->register_cluster(*cluster);
      // Budget changes (BandwidthManager rebalances) re-price the active
      // streams; the model coalesces the per-cluster calls of one tick.
      cluster->dma().set_budget_listener(
          [fast = fast_.get()] { fast->budgets_changed(); });
    }
  }
}

std::vector<ClusterTimingModel*> ChipTimingModel::clusters(ClusterKind kind) {
  std::vector<ClusterTimingModel*> out;
  for (const auto& c : clusters_) {
    if (c->kind() == kind) out.push_back(c.get());
  }
  return out;
}

std::vector<ClusterTimingModel*> ChipTimingModel::all_clusters() {
  std::vector<ClusterTimingModel*> out;
  out.reserve(clusters_.size());
  for (const auto& c : clusters_) out.push_back(c.get());
  return out;
}

std::vector<ClusterTimingModel*> ChipTimingModel::preferred_clusters(Phase phase) {
  // §IV-B: "it is optimal to run modality encoder and LLM-prefill on
  // CC-clusters, with LLM-decoding on MC-clusters."
  if (composition_ == ChipComposition::kHeterogeneous) {
    const bool wants_cc = phase == Phase::kVisionEncoder || phase == Phase::kPrefill ||
                          phase == Phase::kProjector;
    return clusters(wants_cc ? ClusterKind::kComputeCentric
                             : ClusterKind::kMemoryCentric);
  }
  return all_clusters();
}

std::vector<GemmWork> ChipTimingModel::partition(const GemmWork& work,
                                                 std::size_t ways) {
  EDGEMM_ASSERT(ways > 0);
  std::vector<GemmWork> shards;
  const std::size_t base = work.n / ways;
  std::size_t remainder = work.n % ways;
  for (std::size_t w = 0; w < ways; ++w) {
    std::size_t n_shard = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    if (n_shard == 0) continue;  // more clusters than columns
    GemmWork shard = work;
    shard.n = n_shard;
    shards.push_back(shard);
  }
  return shards;
}

void ChipTimingModel::run_on(const std::vector<ClusterTimingModel*>& targets,
                             const std::vector<GemmWork>& ops,
                             std::function<void()> done) {
  EDGEMM_ASSERT_MSG(!targets.empty(), "run_on: empty cluster set");
  // Build one op list per cluster by sharding each op's n dimension.
  std::vector<std::vector<GemmWork>> per_cluster(targets.size());
  for (const GemmWork& op : ops) {
    const auto shards = partition(op, targets.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      per_cluster[s].push_back(shards[s]);
    }
  }
  // Join barrier across clusters.
  auto pending = std::make_shared<std::size_t>(0);
  auto finish = std::make_shared<std::function<void()>>(std::move(done));
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (per_cluster[t].empty()) continue;
    ++*pending;
  }
  if (*pending == 0) {
    sim_.schedule(0, [finish] {
      if (*finish) (*finish)();
    });
    return;
  }
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (per_cluster[t].empty()) continue;
    targets[t]->run_ops(per_cluster[t], [pending, finish] {
      EDGEMM_ASSERT(*pending > 0);
      if (--*pending == 0 && *finish) (*finish)();
    });
  }
}

Cycle ChipTimingModel::run_phase(std::span<const GemmWork> ops) {
  const Cycle start = sim_.now();
  // Group consecutive ops by preferred cluster set (phases are
  // homogeneous in practice; this handles mixed spans too).
  std::vector<GemmWork> batch;
  std::size_t i = 0;
  while (i < ops.size()) {
    const Phase phase = ops[i].phase;
    batch.clear();
    while (i < ops.size() && ops[i].phase == phase) batch.push_back(ops[i++]);
    bool finished = false;
    run_on(preferred_clusters(phase), batch, [&finished] { finished = true; });
    sim_.run();
    EDGEMM_ASSERT(finished);
  }
  return sim_.now() - start;
}

void ChipTimingModel::clear_bandwidth_budgets() {
  for (const auto& c : clusters_) c->dma().set_budget(mem::DmaEngine::kUnlimited);
}

}  // namespace edgemm::core
