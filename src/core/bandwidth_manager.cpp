#include "core/bandwidth_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace edgemm::core {

BandwidthManager::BandwidthManager(const ChipConfig& config,
                                   const BandwidthPolicy& policy)
    : config_(config), policy_(policy) {
  if (policy.balance_length == 0 || policy.batch_length <= policy.balance_length) {
    throw std::invalid_argument(
        "BandwidthPolicy: require 0 < balance_length < batch_length");
  }
  if (policy.max_mc_ratio == 0 || policy.max_batch == 0) {
    throw std::invalid_argument("BandwidthPolicy: ratios/batch must be positive");
  }
}

std::size_t BandwidthManager::mc_ratio_for_length(std::size_t l) const {
  if (l <= policy_.balance_length) return 1;
  // Linear march from 1 at l_e to max_mc_ratio at l_b, then saturate.
  const double span = static_cast<double>(policy_.batch_length) -
                      static_cast<double>(policy_.balance_length);
  const double excess = static_cast<double>(std::min(l, policy_.batch_length)) -
                        static_cast<double>(policy_.balance_length);
  const double ratio = 1.0 + excess / span * (static_cast<double>(policy_.max_mc_ratio) - 1.0);
  return static_cast<std::size_t>(ratio + 0.5);
}

BudgetAssignment BandwidthManager::equal_sharing(std::size_t cc_clusters,
                                                 std::size_t mc_clusters) const {
  BudgetAssignment out;
  out.mc_ratio = 1;
  const std::size_t total = cc_clusters + mc_clusters;
  if (total == 0) return out;
  const double interval_bytes =
      config_.dram.bytes_per_cycle * static_cast<double>(config_.dma.throttle_interval);
  const auto slice = static_cast<Bytes>(interval_bytes / static_cast<double>(total));
  out.cc_budget_per_cluster = slice;
  out.mc_budget_per_cluster = slice;
  return out;
}

BudgetAssignment BandwidthManager::budgets_for_length(std::size_t l,
                                                      std::size_t cc_clusters,
                                                      std::size_t mc_clusters) const {
  BudgetAssignment out;
  out.mc_ratio = mc_ratio_for_length(l);
  if (cc_clusters == 0 || mc_clusters == 0 || out.mc_ratio == 1) {
    return equal_sharing(cc_clusters, mc_clusters);
  }
  // Total deliverable bytes per throttle interval at peak bandwidth,
  // partitioned Bc : Bm = 1 : mc_ratio between the cluster sets.
  const double interval_bytes =
      config_.dram.bytes_per_cycle * static_cast<double>(config_.dma.throttle_interval);
  const double cc_share = 1.0 / (1.0 + static_cast<double>(out.mc_ratio));
  out.cc_budget_per_cluster = static_cast<Bytes>(
      interval_bytes * cc_share / static_cast<double>(cc_clusters));
  out.mc_budget_per_cluster = static_cast<Bytes>(
      interval_bytes * (1.0 - cc_share) / static_cast<double>(mc_clusters));
  return out;
}

std::size_t BandwidthManager::batch_for_length(std::size_t l) const {
  if (l < policy_.batch_length) return 1;
  // Grow the batch with the decode length: each 1.5x of l past l_b
  // doubles the batch until the ceiling (reaches 16 at the paper's
  // l = 1024 / 13.98x operating point).
  std::size_t batch = 2;
  double threshold = static_cast<double>(policy_.batch_length) * 1.5;
  while (static_cast<double>(l) >= threshold && batch < policy_.max_batch) {
    batch *= 2;
    threshold *= 1.5;
  }
  return std::min(batch, policy_.max_batch);
}

void BandwidthManager::apply(ChipTimingModel& chip, std::size_t l) const {
  const auto cc = chip.clusters(ClusterKind::kComputeCentric);
  const auto mc = chip.clusters(ClusterKind::kMemoryCentric);
  const auto budgets = budgets_for_length(l, cc.size(), mc.size());
  for (auto* cluster : cc) cluster->dma().set_budget(budgets.cc_budget_per_cluster);
  for (auto* cluster : mc) cluster->dma().set_budget(budgets.mc_budget_per_cluster);
}

void BandwidthManager::apply_ratio(ChipTimingModel& chip, std::size_t mc_ratio) const {
  const auto cc = chip.clusters(ClusterKind::kComputeCentric);
  const auto mc = chip.clusters(ClusterKind::kMemoryCentric);
  if (cc.empty() || mc.empty() || mc_ratio <= 1) {
    apply_equal_sharing(chip);
    return;
  }
  const double interval_bytes =
      config_.dram.bytes_per_cycle * static_cast<double>(config_.dma.throttle_interval);
  const double cc_share = 1.0 / (1.0 + static_cast<double>(mc_ratio));
  const auto cc_budget = static_cast<Bytes>(interval_bytes * cc_share /
                                            static_cast<double>(cc.size()));
  const auto mc_budget = static_cast<Bytes>(interval_bytes * (1.0 - cc_share) /
                                            static_cast<double>(mc.size()));
  for (auto* cluster : cc) cluster->dma().set_budget(cc_budget);
  for (auto* cluster : mc) cluster->dma().set_budget(mc_budget);
}

void BandwidthManager::apply_equal_sharing(ChipTimingModel& chip) const {
  const auto cc = chip.clusters(ClusterKind::kComputeCentric);
  const auto mc = chip.clusters(ClusterKind::kMemoryCentric);
  const auto budgets = equal_sharing(cc.size(), mc.size());
  for (auto* cluster : cc) cluster->dma().set_budget(budgets.cc_budget_per_cluster);
  for (auto* cluster : mc) cluster->dma().set_budget(budgets.mc_budget_per_cluster);
}

}  // namespace edgemm::core
