// Chip-level timing model: clusters + shared DRAM + phase scheduler.
//
// Compositions mirror the §V-B comparison: the heterogeneous EdgeMM
// (2 CC + 2 MC clusters per group), homo-CC, homo-MC, and the original
// Snitch SIMD cluster baseline.
#ifndef EDGEMM_CORE_CHIP_HPP
#define EDGEMM_CORE_CHIP_HPP

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/fast_replay.hpp"
#include "core/timing.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace edgemm::core {

/// Cluster mix instantiated on the chip (Fig. 11 design points).
enum class ChipComposition : std::uint8_t {
  kHeterogeneous,   ///< EdgeMM: CC + MC per group (Fig. 4)
  kHomoCc,          ///< all clusters compute-centric
  kHomoMc,          ///< all clusters memory-centric
  kBaselineSnitch,  ///< unextended SIMD clusters
};

const char* to_string(ChipComposition composition);

/// The chip: owns the simulator, the DRAM controller, and the clusters.
///
/// Tensor partitioning (§III-C) splits each operation's output dimension
/// across the clusters of the set chosen for its phase; every cluster
/// runs its shard through the double-buffered timing model and the
/// shared DRAM arbitrates the resulting traffic.
class ChipTimingModel {
 public:
  /// `mode` selects the execution tier: kDetailed walks every DMA burst
  /// through the event-driven memory hierarchy, kFast prices batches
  /// with the closed-form FastMemoryModel. Everything above the chip
  /// (PhaseScheduler, ServingEngine, policies) runs unmodified either way.
  ChipTimingModel(const ChipConfig& config, ChipComposition composition,
                  ReplayMode mode = ReplayMode::kDetailed);

  const ChipConfig& config() const { return config_; }
  ChipComposition composition() const { return composition_; }
  ReplayMode replay_mode() const { return mode_; }
  /// The fast tier's integrator; nullptr in kDetailed mode.
  const FastMemoryModel* fast_model() const { return fast_.get(); }

  sim::Simulator& simulator() { return sim_; }
  mem::DramController& dram() { return dram_; }
  const mem::DramController& dram() const { return dram_; }

  /// All clusters of one kind (empty if the composition has none).
  std::vector<ClusterTimingModel*> clusters(ClusterKind kind);

  /// Every cluster on the chip.
  std::vector<ClusterTimingModel*> all_clusters();

  /// The cluster set the scheduler prefers for `phase` under this
  /// composition (§IV-B: encoder/prefill on CC, decode on MC; homo and
  /// baseline compositions fall back to what they have).
  std::vector<ClusterTimingModel*> preferred_clusters(Phase phase);

  /// Splits `work` into `ways` shards along the output dimension n.
  /// Shards cover n exactly; surplus ways get no shard.
  static std::vector<GemmWork> partition(const GemmWork& work, std::size_t ways);

  /// Asynchronously runs `ops` over `targets` with tensor partitioning;
  /// `done` fires when every shard on every cluster has retired.
  void run_on(const std::vector<ClusterTimingModel*>& targets,
              const std::vector<GemmWork>& ops, std::function<void()> done);

  /// Synchronously executes `ops` on the preferred clusters of each op's
  /// phase, running the simulator to completion. Returns elapsed cycles.
  Cycle run_phase(std::span<const GemmWork> ops);

  /// Sets every cluster DMA budget to unlimited (per interval).
  void clear_bandwidth_budgets();

  /// The per-group crossbar links (for interconnect inspection/tests).
  const std::vector<std::unique_ptr<mem::ResourceServer>>& group_crossbars() const {
    return group_xbars_;
  }
  mem::ResourceServer& system_crossbar() { return *system_xbar_; }

 private:
  ChipConfig config_;
  ChipComposition composition_;
  ReplayMode mode_;
  sim::Simulator sim_;
  mem::DramController dram_;
  std::unique_ptr<mem::ResourceServer> system_xbar_;
  std::vector<std::unique_ptr<mem::ResourceServer>> group_xbars_;
  std::vector<std::unique_ptr<ClusterTimingModel>> clusters_;
  std::unique_ptr<FastMemoryModel> fast_;  ///< present only in kFast mode
};

}  // namespace edgemm::core

#endif  // EDGEMM_CORE_CHIP_HPP
