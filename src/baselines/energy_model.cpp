#include "baselines/energy_model.hpp"

namespace edgemm::baselines {

EnergyReport edgemm_energy(const core::ChipConfig& config, double seconds,
                           Bytes dram_bytes) {
  EnergyReport report;
  report.chip_joules = config.chip_power_w * seconds;
  report.dram_joules =
      static_cast<double>(dram_bytes) * config.dram_pj_per_byte * 1e-12;
  return report;
}

double tokens_per_joule(double tokens, const EnergyReport& energy) {
  const double joules = energy.total_joules();
  return joules > 0.0 ? tokens / joules : 0.0;
}

double gpu_energy_joules(double board_power_w, double seconds) {
  return board_power_w * seconds;
}

EnergyBreakdown energy_breakdown(const core::ChipConfig& config, double sa_macs,
                                 double cim_macs, Bytes dram_bytes, double seconds) {
  EnergyBreakdown b;
  b.sa_joules = sa_macs * kSaPjPerMac * 1e-12;
  b.cim_joules = cim_macs * kCimPjPerMac * 1e-12;
  b.dram_joules = static_cast<double>(dram_bytes) * config.dram_pj_per_byte * 1e-12;
  b.static_joules = config.chip_power_w * kStaticShare * seconds;
  return b;
}

}  // namespace edgemm::baselines
