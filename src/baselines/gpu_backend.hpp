// GpuBackend: the Table II roofline GPU promoted to a schedulable
// core::ExecutionBackend.
//
// The offline comparison (evaluate_gpu) prices a request by summing
// gpu_op_seconds over its phases; GpuBackend schedules exactly those
// sums as jobs on deterministic per-lane FIFO streams over the shared
// discrete-event simulator, so the same cost model that fills Table II
// also serves traffic under an OffloadPolicy. There is no TCDM and no
// weight residency: every kernel launch re-streams its full weight tile
// through the GPU's own GDDR lane family, which is also why the
// engine's bandwidth-rebalancing hooks are no-ops here — the fabric is
// private to the backend and not partitionable from outside.
#ifndef EDGEMM_BASELINES_GPU_BACKEND_HPP
#define EDGEMM_BASELINES_GPU_BACKEND_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "baselines/gpu_model.hpp"
#include "core/execution_backend.hpp"
#include "core/phase_scheduler.hpp"
#include "core/timing.hpp"
#include "sim/simulator.hpp"

namespace edgemm::baselines {

/// A GPU execution target with one independent FIFO stream per lane.
///
/// Jobs on a stream run strictly in submission order with no overlap
/// (one in flight per stream); streams of different lanes overlap
/// freely, mirroring a compute stream + copy/decode stream split. Job
/// duration is the sum of gpu_op_seconds over the job's ops, converted
/// to cycles of the shared clock (ceil — a job never retires early).
/// Determinism: identical submission sequences produce identical
/// dispatch and retirement times; `affinity` is ignored (strict FIFO).
class GpuBackend final : public core::ExecutionBackend {
 public:
  /// `sim` is the SHARED simulator of the heterogeneous composition
  /// (the EdgeMM chip's, when paired); `clock_hz` converts backend
  /// seconds into its cycles. Throws std::invalid_argument on an
  /// invalid spec or non-positive clock.
  GpuBackend(sim::Simulator& sim, GpuSpec spec, double clock_hz);

  const GpuSpec& spec() const { return spec_; }

  /// Seconds one job of `ops` occupies its stream (Σ gpu_op_seconds,
  /// the exact sum evaluate_gpu uses per phase).
  double job_seconds(std::span<const core::GemmWork> ops) const;

  /// job_seconds converted to shared-clock cycles (ceil, min 1).
  Cycle job_cycles(std::span<const core::GemmWork> ops) const;

  // --- Ledger (observability) --------------------------------------------
  /// Bytes streamed through GDDR by dispatched jobs (Σ gpu_op_bytes).
  Bytes bytes_moved() const { return bytes_moved_; }
  /// Kernel launches issued by dispatched jobs (one per op).
  std::size_t kernel_launches() const { return kernel_launches_; }
  /// Cycles `lane`'s stream spent occupied by dispatched jobs.
  Cycle busy_cycles(core::Lane lane) const { return stream(lane).busy_cycles; }

  // --- ExecutionBackend ---------------------------------------------------
  const char* name() const override { return "gpu"; }
  sim::Simulator& simulator() override { return sim_; }
  double clock_hz() const override { return clock_hz_; }
  void submit(core::Lane lane, std::vector<core::GemmWork> ops,
              std::function<void()> done, std::function<void()> started = {},
              std::uint64_t affinity = 0) override;
  bool idle(core::Lane lane) const override {
    const Stream& s = stream(lane);
    return !s.busy && s.queue.empty();
  }
  std::size_t queued(core::Lane lane) const override {
    return stream(lane).queue.size();
  }
  std::size_t dispatched(core::Lane lane) const override {
    return stream(lane).dispatched;
  }
  Cycle max_queue_wait(core::Lane lane) const override {
    return stream(lane).max_queue_wait;
  }
  Bytes estimated_job_bytes(core::Lane lane,
                            std::span<const core::GemmWork> ops) const override;
  // apply_equal_sharing / apply_bandwidth_ratio: inherited no-ops — the
  // GDDR lane family is private and not partitionable from the engine.
  double memory_utilization() const override;

 private:
  struct Job {
    std::vector<core::GemmWork> ops;
    std::function<void()> done;
    std::function<void()> started;
    Cycle submitted = 0;
  };
  struct Stream {
    std::deque<Job> queue;
    bool busy = false;
    std::size_t dispatched = 0;
    Cycle max_queue_wait = 0;
    Cycle busy_cycles = 0;
  };

  Stream& stream(core::Lane lane) {
    return streams_[static_cast<std::size_t>(lane)];
  }
  const Stream& stream(core::Lane lane) const {
    return streams_[static_cast<std::size_t>(lane)];
  }
  void dispatch_next(core::Lane lane);

  sim::Simulator& sim_;
  GpuSpec spec_;
  double clock_hz_;
  std::array<Stream, 2> streams_;
  Bytes bytes_moved_ = 0;
  std::size_t kernel_launches_ = 0;
};

}  // namespace edgemm::baselines

#endif  // EDGEMM_BASELINES_GPU_BACKEND_HPP
