#include "baselines/gpu_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace edgemm::baselines {

GpuBackend::GpuBackend(sim::Simulator& sim, GpuSpec spec, double clock_hz)
    : sim_(sim), spec_(std::move(spec)), clock_hz_(clock_hz) {
  spec_.validate();
  if (!(clock_hz_ > 0.0)) {
    throw std::invalid_argument("GpuBackend: clock_hz must be positive");
  }
}

double GpuBackend::job_seconds(std::span<const core::GemmWork> ops) const {
  double seconds = 0.0;
  for (const core::GemmWork& op : ops) {
    seconds += gpu_op_seconds(spec_, op);
  }
  return seconds;
}

Cycle GpuBackend::job_cycles(std::span<const core::GemmWork> ops) const {
  const double cycles = std::ceil(job_seconds(ops) * clock_hz_);
  return std::max<Cycle>(static_cast<Cycle>(cycles), 1);
}

Bytes GpuBackend::estimated_job_bytes(
    core::Lane lane, std::span<const core::GemmWork> ops) const {
  (void)lane;  // one GDDR fabric; both streams price traffic identically
  Bytes bytes = 0;
  for (const core::GemmWork& op : ops) {
    bytes += gpu_op_bytes(spec_, op);
  }
  return bytes;
}

void GpuBackend::submit(core::Lane lane, std::vector<core::GemmWork> ops,
                        std::function<void()> done,
                        std::function<void()> started,
                        std::uint64_t affinity) {
  (void)affinity;  // strict FIFO: no affinity-aware reordering
  if (ops.empty()) {
    throw std::invalid_argument("GpuBackend: cannot submit an empty op list");
  }
  Stream& s = stream(lane);
  s.queue.push_back(Job{std::move(ops), std::move(done), std::move(started),
                        sim_.now()});
  if (!s.busy) {
    dispatch_next(lane);
  }
}

void GpuBackend::dispatch_next(core::Lane lane) {
  Stream& s = stream(lane);
  if (s.queue.empty()) {
    s.busy = false;
    return;
  }
  Job job = std::move(s.queue.front());
  s.queue.pop_front();
  s.busy = true;
  ++s.dispatched;
  s.max_queue_wait = std::max(s.max_queue_wait, sim_.now() - job.submitted);
  const Cycle duration = job_cycles(job.ops);
  s.busy_cycles += duration;
  bytes_moved_ += estimated_job_bytes(lane, job.ops);
  kernel_launches_ += job.ops.size();
  if (job.started) {
    job.started();
  }
  sim_.schedule(duration, [this, lane, done = std::move(job.done)]() {
    if (done) {
      done();
    }
    dispatch_next(lane);
  });
}

double GpuBackend::memory_utilization() const {
  const Cycle now = sim_.now();
  if (now == 0) {
    return 0.0;
  }
  const double elapsed_s = static_cast<double>(now) / clock_hz_;
  const double achieved = static_cast<double>(bytes_moved_) / elapsed_s;
  return std::min(1.0, achieved / spec_.memory_bandwidth);
}

}  // namespace edgemm::baselines
