// Analytic model of the RTX 3060 laptop GPU baseline of Table II.
//
// We do not have the authors' GPU testbed; per the substitution rule
// (DESIGN.md §1) the baseline is a roofline-plus-overheads model built
// from the published specification (13 TFLOP/s FP32, 336 GB/s GDDR6)
// and the utilization pathologies the paper attributes to GPUs on edge
// MLLMs: "SM cores ... often remain underutilized" for short-sequence
// GEMM, batch-1 GEMV leaves bandwidth on the table, and every layer op
// pays a kernel-launch overhead.
#ifndef EDGEMM_BASELINES_GPU_MODEL_HPP
#define EDGEMM_BASELINES_GPU_MODEL_HPP

#include <string>

#include "core/pipeline.hpp"
#include "core/timing.hpp"

namespace edgemm::baselines {

/// Published + calibration parameters of the GPU baseline.
///
/// Fields stay public aggregates for brace-init in benches; the fluent
/// `with_*` setters reject bad values eagerly (EngineConfig builder
/// idiom) and validate() re-checks a hand-built spec before use.
struct GpuSpec {
  std::string name = "RTX 3060 Laptop";
  double peak_flops = 13.0e12;        ///< FP32 (Table II)
  double memory_bandwidth = 336.0e9;  ///< GDDR6 B/s (Table II)
  /// Achieved fraction of peak compute on short-sequence GEMM
  /// (occupancy + tensor-core feeding limits at m ≈ 300).
  double gemm_efficiency = 0.55;
  /// Achieved fraction of peak bandwidth at batch-1 decode GEMV.
  double gemv_bandwidth_efficiency = 0.52;
  /// Per-kernel launch + framework dispatch overhead.
  double kernel_launch_seconds = 8.0e-6;
  std::size_t elem_bytes = 2;  ///< FP16 weights/activations
  double board_power_w = 80.0; ///< laptop TGP class, for tokens/J

  GpuSpec& with_peak_flops(double v);
  GpuSpec& with_memory_bandwidth(double v);
  GpuSpec& with_gemm_efficiency(double v);
  GpuSpec& with_gemv_bandwidth_efficiency(double v);
  GpuSpec& with_kernel_launch_seconds(double v);
  GpuSpec& with_elem_bytes(std::size_t v);
  GpuSpec& with_board_power_w(double v);

  /// Throws std::invalid_argument on a physically meaningless spec
  /// (non-positive flops/bandwidth/efficiencies, efficiencies above 1,
  /// zero element size, negative launch overhead).
  void validate() const;
};

/// Weights + activations traffic of one dense op on the GPU: every
/// launch streams the full weight tile (no TCDM residency) plus the
/// activation in/out tiles, all in `elem_bytes` precision.
Bytes gpu_op_bytes(const GpuSpec& spec, const core::GemmWork& work);

/// Wall-clock of one dense op on the GPU: roofline max of compute and
/// memory time plus the launch overhead.
double gpu_op_seconds(const GpuSpec& spec, const core::GemmWork& work);

/// Phase latencies for one request (phases run serially on one stream,
/// the standard single-request inference flow the paper compares against).
struct GpuMllmTiming {
  double encoder_seconds = 0.0;
  double prefill_seconds = 0.0;
  double decode_token_seconds = 0.0;  ///< per generated token

  double request_seconds(std::size_t output_tokens) const {
    return encoder_seconds + prefill_seconds +
           decode_token_seconds * static_cast<double>(output_tokens);
  }
  double tokens_per_second(std::size_t output_tokens) const {
    const double s = request_seconds(output_tokens);
    return s > 0.0 ? static_cast<double>(output_tokens) / s : 0.0;
  }
};

/// Evaluates a PhaseWorkload on the GPU model.
GpuMllmTiming evaluate_gpu(const GpuSpec& spec, const core::PhaseWorkload& workload);

}  // namespace edgemm::baselines

#endif  // EDGEMM_BASELINES_GPU_MODEL_HPP
