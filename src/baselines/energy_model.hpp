// Energy accounting for the tokens/J figures of Table II.
//
// Chip power is the published post-P&R constant (112 mW at 1 GHz);
// external-memory energy is charged per byte moved. The paper quotes
// both 0.217 token/J (abstract) and 0.28 token/J (§V-C) — mutually
// inconsistent and inconsistent with 138 tokens/s at sub-watt power, so
// EXPERIMENTS.md records our derivation next to both published values.
#ifndef EDGEMM_BASELINES_ENERGY_MODEL_HPP
#define EDGEMM_BASELINES_ENERGY_MODEL_HPP

#include "common/types.hpp"
#include "core/config.hpp"

namespace edgemm::baselines {

/// Energy of one EdgeMM execution window.
struct EnergyReport {
  double chip_joules = 0.0;  ///< chip_power × wall-clock
  double dram_joules = 0.0;  ///< per-byte LPDDR access energy
  double total_joules() const { return chip_joules + dram_joules; }
};

/// Charges `seconds` of chip activity plus `dram_bytes` of traffic.
EnergyReport edgemm_energy(const core::ChipConfig& config, double seconds,
                           Bytes dram_bytes);

/// tokens / J given a throughput and an energy rate.
double tokens_per_joule(double tokens, const EnergyReport& energy);

/// GPU-side energy for the same comparison: board power × time.
double gpu_energy_joules(double board_power_w, double seconds);

/// Per-block energy composition of a run — where the joules go.
///
/// Per-operation energies are 22 nm-class constants: a BF16 systolic MAC
/// costs several times an in-memory INT8 MAC (the CIM macro avoids the
/// register/SRAM movement entirely, which is its raison d'être), and a
/// DRAM byte costs two orders of magnitude more than either.
struct EnergyBreakdown {
  double sa_joules = 0.0;      ///< systolic-array MACs (BF16)
  double cim_joules = 0.0;     ///< CIM MACs (INT8, bit-serial)
  double dram_joules = 0.0;    ///< external memory traffic
  double static_joules = 0.0;  ///< leakage + clock tree over the window
  double total_joules() const {
    return sa_joules + cim_joules + dram_joules + static_joules;
  }
};

/// Energy constants used by energy_breakdown (exposed for tests/docs).
inline constexpr double kSaPjPerMac = 0.9;    ///< BF16 MAC + operand movement
inline constexpr double kCimPjPerMac = 0.15;  ///< in-SRAM INT8 MAC
inline constexpr double kStaticShare = 0.25;  ///< fraction of chip power that is static

/// Charges `sa_macs` systolic MACs, `cim_macs` in-memory MACs,
/// `dram_bytes` of traffic, and `seconds` of static power.
EnergyBreakdown energy_breakdown(const core::ChipConfig& config, double sa_macs,
                                 double cim_macs, Bytes dram_bytes, double seconds);

}  // namespace edgemm::baselines

#endif  // EDGEMM_BASELINES_ENERGY_MODEL_HPP
