#include "baselines/gpu_model.hpp"

#include <algorithm>

namespace edgemm::baselines {

double gpu_op_seconds(const GpuSpec& spec, const core::GemmWork& work) {
  const double flops = static_cast<double>(work.flops());
  // Weights + activations traffic in FP16.
  const double bytes = static_cast<double>(
      (static_cast<Bytes>(work.k) * work.n + work.m * (work.k + work.n)) *
      spec.elem_bytes);
  const double compute_s = flops / (spec.peak_flops * spec.gemm_efficiency);
  const double bandwidth = work.m <= 2
                               ? spec.memory_bandwidth * spec.gemv_bandwidth_efficiency
                               : spec.memory_bandwidth;
  const double memory_s = bytes / bandwidth;
  return std::max(compute_s, memory_s) + spec.kernel_launch_seconds;
}

GpuMllmTiming evaluate_gpu(const GpuSpec& spec, const core::PhaseWorkload& workload) {
  GpuMllmTiming t;
  for (const core::GemmWork& op : workload.encoder) {
    t.encoder_seconds += gpu_op_seconds(spec, op);
  }
  for (const core::GemmWork& op : workload.prefill) {
    t.prefill_seconds += gpu_op_seconds(spec, op);
  }
  for (const core::GemmWork& op : workload.decode_token) {
    t.decode_token_seconds += gpu_op_seconds(spec, op);
  }
  return t;
}

}  // namespace edgemm::baselines
