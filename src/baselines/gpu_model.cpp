#include "baselines/gpu_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace edgemm::baselines {

namespace {

double checked_positive(double v, const char* field) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string("GpuSpec: ") + field +
                                " must be positive");
  }
  return v;
}

double checked_efficiency(double v, const char* field) {
  if (!(v > 0.0) || v > 1.0) {
    throw std::invalid_argument(std::string("GpuSpec: ") + field +
                                " must be in (0, 1]");
  }
  return v;
}

}  // namespace

GpuSpec& GpuSpec::with_peak_flops(double v) {
  peak_flops = checked_positive(v, "peak_flops");
  return *this;
}

GpuSpec& GpuSpec::with_memory_bandwidth(double v) {
  memory_bandwidth = checked_positive(v, "memory_bandwidth");
  return *this;
}

GpuSpec& GpuSpec::with_gemm_efficiency(double v) {
  gemm_efficiency = checked_efficiency(v, "gemm_efficiency");
  return *this;
}

GpuSpec& GpuSpec::with_gemv_bandwidth_efficiency(double v) {
  gemv_bandwidth_efficiency = checked_efficiency(v, "gemv_bandwidth_efficiency");
  return *this;
}

GpuSpec& GpuSpec::with_kernel_launch_seconds(double v) {
  if (v < 0.0) {
    throw std::invalid_argument(
        "GpuSpec: kernel_launch_seconds must be non-negative");
  }
  kernel_launch_seconds = v;
  return *this;
}

GpuSpec& GpuSpec::with_elem_bytes(std::size_t v) {
  if (v == 0) {
    throw std::invalid_argument("GpuSpec: elem_bytes must be positive");
  }
  elem_bytes = v;
  return *this;
}

GpuSpec& GpuSpec::with_board_power_w(double v) {
  board_power_w = checked_positive(v, "board_power_w");
  return *this;
}

void GpuSpec::validate() const {
  checked_positive(peak_flops, "peak_flops");
  checked_positive(memory_bandwidth, "memory_bandwidth");
  checked_efficiency(gemm_efficiency, "gemm_efficiency");
  checked_efficiency(gemv_bandwidth_efficiency, "gemv_bandwidth_efficiency");
  if (kernel_launch_seconds < 0.0) {
    throw std::invalid_argument(
        "GpuSpec: kernel_launch_seconds must be non-negative");
  }
  if (elem_bytes == 0) {
    throw std::invalid_argument("GpuSpec: elem_bytes must be positive");
  }
  checked_positive(board_power_w, "board_power_w");
}

Bytes gpu_op_bytes(const GpuSpec& spec, const core::GemmWork& work) {
  // Weights + activations traffic in FP16: k*n weight tile (re-streamed
  // every launch) plus m*(k+n) activation in/out tiles.
  return (static_cast<Bytes>(work.k) * work.n + work.m * (work.k + work.n)) *
         spec.elem_bytes;
}

double gpu_op_seconds(const GpuSpec& spec, const core::GemmWork& work) {
  const double flops = static_cast<double>(work.flops());
  const double bytes = static_cast<double>(gpu_op_bytes(spec, work));
  const double compute_s = flops / (spec.peak_flops * spec.gemm_efficiency);
  const double bandwidth = work.m <= 2
                               ? spec.memory_bandwidth * spec.gemv_bandwidth_efficiency
                               : spec.memory_bandwidth;
  const double memory_s = bytes / bandwidth;
  return std::max(compute_s, memory_s) + spec.kernel_launch_seconds;
}

GpuMllmTiming evaluate_gpu(const GpuSpec& spec, const core::PhaseWorkload& workload) {
  GpuMllmTiming t;
  for (const core::GemmWork& op : workload.encoder) {
    t.encoder_seconds += gpu_op_seconds(spec, op);
  }
  for (const core::GemmWork& op : workload.prefill) {
    t.prefill_seconds += gpu_op_seconds(spec, op);
  }
  for (const core::GemmWork& op : workload.decode_token) {
    t.decode_token_seconds += gpu_op_seconds(spec, op);
  }
  return t;
}

}  // namespace edgemm::baselines
