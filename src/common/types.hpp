// Fundamental scalar types shared across the EdgeMM libraries.
#ifndef EDGEMM_COMMON_TYPES_HPP
#define EDGEMM_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace edgemm {

/// Simulation time in core clock cycles (1 GHz nominal, see ChipConfig).
using Cycle = std::uint64_t;

/// Byte counts for memory traffic accounting.
using Bytes = std::uint64_t;

/// Floating-point operation counts for workload analytics.
using Flops = std::uint64_t;

/// Identifies a cluster within the chip (global, 0-based).
using ClusterId = std::uint32_t;

/// Identifies a core within the chip (global, 0-based).
using CoreId = std::uint32_t;

/// The two heterogeneous core flavours of EdgeMM (paper §III-A).
enum class CoreKind : std::uint8_t {
  kComputeCentric,  ///< RV host + weight-stationary systolic array (GEMM).
  kMemoryCentric,   ///< RV host + digital CIM macro + act-aware pruner (GEMV).
};

/// Returns a short human-readable tag ("CC" / "MC").
constexpr const char* to_string(CoreKind kind) {
  return kind == CoreKind::kComputeCentric ? "CC" : "MC";
}

/// Inference phases of an MLLM (paper Fig. 1(a), Fig. 2).
enum class Phase : std::uint8_t {
  kVisionEncoder,  ///< Compute-intensive GEMM over ~300 vision tokens.
  kProjector,      ///< Negligible MLP aligning vision tokens.
  kPrefill,        ///< GEMM over prompt+vision tokens; builds KV cache.
  kDecode,         ///< Autoregressive, memory-bound GEMV per token.
};

constexpr const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kVisionEncoder: return "vision-encoder";
    case Phase::kProjector: return "projector";
    case Phase::kPrefill: return "llm-prefill";
    case Phase::kDecode: return "llm-decode";
  }
  return "?";
}

}  // namespace edgemm

#endif  // EDGEMM_COMMON_TYPES_HPP
