#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace edgemm {

double mean(std::span<const float> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const float> values) {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double sum_sq = 0.0;
  for (const float v : values) {
    const double d = v - mu;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size());
}

double kurtosis(std::span<const float> values) {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double m2 = 0.0;
  double m4 = 0.0;
  for (const float v : values) {
    const double d = v - mu;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  const auto n = static_cast<double>(values.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2);
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: length mismatch");
  }
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<std::size_t> top_k_indices_by_magnitude(std::span<const float> values,
                                                    std::size_t k) {
  k = std::min(k, values.size());
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      const float ma = std::fabs(values[a]);
                      const float mb = std::fabs(values[b]);
                      if (ma != mb) return ma > mb;
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(k);
  return idx;
}

std::size_t count_above_max_over_t(std::span<const float> values, double t) {
  if (t <= 0.0) throw std::invalid_argument("count_above_max_over_t: t must be > 0");
  double max_abs = 0.0;
  for (const float v : values) max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
  if (max_abs == 0.0) return 0;
  const double threshold = max_abs / t;
  std::size_t n = 0;
  for (const float v : values) {
    if (std::fabs(v) > threshold) ++n;
  }
  return n;
}

double sparsity(std::span<const float> values, double eps) {
  if (values.empty()) return 0.0;
  std::size_t zeros = 0;
  for (const float v : values) {
    if (std::fabs(v) <= eps) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(values.size());
}

double percentile(std::span<const double> values, double p) {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace edgemm
