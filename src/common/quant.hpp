// Symmetric integer quantization used by the MC-core datapath.
//
// The digital CIM macro stores N-bit weights (N = 8 in the Fig. 10
// configuration) and broadcasts W-bit activations bit-serially. This
// header provides the per-tensor symmetric int8 quantizer the MC kernels
// use to map BF16/FP32 tensors onto the macro.
#ifndef EDGEMM_COMMON_QUANT_HPP
#define EDGEMM_COMMON_QUANT_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace edgemm {

/// Result of quantizing a tensor: integer codes plus the scale that maps
/// codes back to real values (value ≈ code * scale).
struct QuantizedTensor {
  std::vector<std::int32_t> codes;  ///< In [-qmax, qmax].
  float scale = 1.0F;               ///< Real value per LSB.
  int bits = 8;                     ///< Code width, sign included.
};

/// Symmetric per-tensor quantization to `bits`-wide signed integers.
/// An all-zero input yields scale 1 so dequantization stays exact.
/// Throws std::invalid_argument if bits is not in [2, 16].
QuantizedTensor quantize_symmetric(std::span<const float> values, int bits);

/// Maps integer codes back to real values.
std::vector<float> dequantize(const QuantizedTensor& q);

/// Largest magnitude representable with `bits`-wide signed codes.
constexpr std::int32_t quant_max(int bits) { return (1 << (bits - 1)) - 1; }

}  // namespace edgemm

#endif  // EDGEMM_COMMON_QUANT_HPP
