#include "common/tensor.hpp"

#include <stdexcept>

namespace edgemm {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Tensor: dimensions must be non-zero");
  }
}

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Tensor: dimensions must be non-zero");
  }
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Tensor: data size does not match rows*cols");
  }
}

Tensor Tensor::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("Tensor::block: range exceeds tensor bounds");
  }
  Tensor out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) out.at(r, c) = at(r0 + r, c0 + c);
  }
  return out;
}

Tensor Tensor::transposed() const {
  Tensor out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_reference: inner dimensions mismatch");
  }
  Tensor out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0F) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return out;
}

std::vector<float> gemv_reference(std::span<const float> v, const Tensor& m) {
  if (v.size() != m.rows()) {
    throw std::invalid_argument("gemv_reference: vector length must equal matrix rows");
  }
  std::vector<float> out(m.cols(), 0.0F);
  for (std::size_t k = 0; k < m.rows(); ++k) {
    const float vk = v[k];
    if (vk == 0.0F) continue;
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += vk * m.at(k, j);
  }
  return out;
}

}  // namespace edgemm
