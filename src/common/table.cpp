#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace edgemm {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << "+";
    for (const std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_si(double value, int precision) {
  static constexpr const char* kSuffixes[] = {"", " k", " M", " G", " T", " P"};
  int tier = 0;
  double v = std::fabs(value);
  while (v >= 1000.0 && tier < 5) {
    v /= 1000.0;
    ++tier;
  }
  if (value < 0) v = -v;
  return fmt_double(v, precision) + kSuffixes[tier];
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + " %";
}

std::string fmt_speedup(double ratio, int precision) {
  return fmt_double(ratio, precision) + "x";
}

}  // namespace edgemm
