#include "common/bf16.hpp"

#include <bit>
#include <cmath>

namespace edgemm {

namespace {

std::uint16_t float_to_bf16_bits(float value) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(value);
  if (std::isnan(value)) {
    // Quiet NaN, preserving the sign; avoids producing an infinity by
    // rounding a NaN payload.
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the truncated 16 mantissa bits.
  const std::uint32_t rounding_bias = 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>((u + rounding_bias) >> 16);
}

}  // namespace

Bf16::Bf16(float value) : bits_(float_to_bf16_bits(value)) {}

float Bf16::to_float() const {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits_) << 16);
}

float bf16_round(float value) { return Bf16(value).to_float(); }

}  // namespace edgemm
