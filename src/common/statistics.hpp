// Statistics used by the pruning evaluation (Fig. 12) and workload
// analytics: moments, excess-free kurtosis, cosine similarity, top-k.
#ifndef EDGEMM_COMMON_STATISTICS_HPP
#define EDGEMM_COMMON_STATISTICS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace edgemm {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const float> values);

/// Population variance; returns 0 for fewer than 2 elements.
double variance(std::span<const float> values);

/// Pearson kurtosis E[(x-mu)^4] / sigma^4 (not excess; normal = 3).
/// The paper uses kurtosis as the channel-outlier prominence metric in
/// Fig. 12(a): higher kurtosis means more distinct outliers.
double kurtosis(std::span<const float> values);

/// Cosine similarity between two equal-length vectors; the accuracy proxy
/// of Fig. 12(b). Returns 1 if both vectors are all-zero, 0 if exactly one
/// is. Throws std::invalid_argument on length mismatch.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Indices of the k largest |values|, in descending magnitude order.
/// k is clamped to values.size().
std::vector<std::size_t> top_k_indices_by_magnitude(std::span<const float> values,
                                                    std::size_t k);

/// Number of elements with |v| > |max element| / t  — the "n" of Alg. 1.
/// Throws std::invalid_argument if t <= 0.
std::size_t count_above_max_over_t(std::span<const float> values, double t);

/// Fraction of elements with |v| <= eps (sparsity measure for Fig. 3).
double sparsity(std::span<const float> values, double eps);

/// p-th percentile (p in [0, 100]) of `values` with linear interpolation
/// between order statistics; the tail-latency metric of the serving
/// benches (p50/p95/p99). Returns 0 for an empty span. Throws
/// std::invalid_argument for p outside [0, 100].
double percentile(std::span<const double> values, double p);

}  // namespace edgemm

#endif  // EDGEMM_COMMON_STATISTICS_HPP
