// Minimal dense row-major 2-D tensor used throughout the functional models.
#ifndef EDGEMM_COMMON_TENSOR_HPP
#define EDGEMM_COMMON_TENSOR_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace edgemm {

/// Dense row-major matrix of floats.
///
/// Functional coprocessor models operate on small tiles, so a simple
/// owning container is sufficient; views into rows are handed out as
/// std::span. Element access is bounds-checked through EDGEMM_ASSERT.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a rows×cols tensor initialized to zero.
  /// Throws std::invalid_argument on a zero dimension.
  Tensor(std::size_t rows, std::size_t cols);

  /// Creates a tensor taking ownership of `data` (size must be rows*cols).
  Tensor(std::size_t rows, std::size_t cols, std::vector<float> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    EDGEMM_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    EDGEMM_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) {
    EDGEMM_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    EDGEMM_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Extracts the sub-matrix [r0, r0+nr) × [c0, c0+nc); must be in range.
  Tensor block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const;

  /// Returns the transpose (cols×rows).
  Tensor transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Reference GEMM: out = a(m×k) * b(k×n). Dimensions are validated.
Tensor matmul_reference(const Tensor& a, const Tensor& b);

/// Reference GEMV: out(n) = v(k) * m(k×n) (row vector times matrix).
std::vector<float> gemv_reference(std::span<const float> v, const Tensor& m);

}  // namespace edgemm

#endif  // EDGEMM_COMMON_TENSOR_HPP
