// Software emulation of the bfloat16 format used by the CC-core datapath.
//
// EdgeMM's systolic arrays compute in BF16 with FP32 accumulation
// (Table II lists the 18 TFLOP/s peak as BF16). The emulation here is
// bit-exact round-to-nearest-even truncation of IEEE-754 binary32.
#ifndef EDGEMM_COMMON_BF16_HPP
#define EDGEMM_COMMON_BF16_HPP

#include <cstdint>

namespace edgemm {

/// A 16-bit brain floating point value (1 sign, 8 exponent, 7 mantissa).
class Bf16 {
 public:
  constexpr Bf16() = default;

  /// Converts from binary32 with round-to-nearest-even.
  explicit Bf16(float value);

  /// Widens back to binary32 (exact; BF16 is a prefix of binary32).
  float to_float() const;

  /// Raw storage, for tests and for modelling bit-serial transport.
  constexpr std::uint16_t bits() const { return bits_; }

  /// Builds a value from raw storage bits.
  static constexpr Bf16 from_bits(std::uint16_t bits) {
    Bf16 v;
    v.bits_ = bits;
    return v;
  }

  friend constexpr bool operator==(Bf16 a, Bf16 b) { return a.bits_ == b.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

/// Rounds a binary32 to the nearest representable BF16 and widens it back.
/// This is the quantization every operand suffers when entering the SA.
float bf16_round(float value);

}  // namespace edgemm

#endif  // EDGEMM_COMMON_BF16_HPP
