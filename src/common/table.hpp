// ASCII table rendering used by the benchmark harness to print the
// paper's tables and figure series in a uniform format.
#ifndef EDGEMM_COMMON_TABLE_HPP
#define EDGEMM_COMMON_TABLE_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace edgemm {

/// Column-aligned ASCII table with a title, header row, and body rows.
///
/// Cells are free-form strings; numeric formatting helpers are provided.
/// Rendering pads each column to its widest cell.
class Table {
 public:
  explicit Table(std::string title);

  /// Sets the header row. Column count is fixed by the header.
  void set_header(std::vector<std::string> header);

  /// Appends a body row; must match the header's column count
  /// (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> row);

  /// Renders the full table, trailing newline included.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("3.142" for (pi, 3)).
std::string fmt_double(double value, int precision = 2);

/// Engineering formatting with a unit suffix: 2340000 -> "2.34 M".
std::string fmt_si(double value, int precision = 2);

/// Percent formatting: 0.423 -> "42.3 %".
std::string fmt_percent(double fraction, int precision = 1);

/// Multiplier formatting: 2.84 -> "2.84x".
std::string fmt_speedup(double ratio, int precision = 2);

}  // namespace edgemm

#endif  // EDGEMM_COMMON_TABLE_HPP
