// Unit helpers: cycle/time/bandwidth conversions at the chip clock.
#ifndef EDGEMM_COMMON_UNITS_HPP
#define EDGEMM_COMMON_UNITS_HPP

#include "common/types.hpp"

namespace edgemm {

inline constexpr double kChipClockHz = 1.0e9;  ///< EdgeMM runs at 1 GHz (paper §V-A).

constexpr double cycles_to_seconds(Cycle cycles, double clock_hz = kChipClockHz) {
  return static_cast<double>(cycles) / clock_hz;
}

constexpr double cycles_to_ms(Cycle cycles, double clock_hz = kChipClockHz) {
  return cycles_to_seconds(cycles, clock_hz) * 1e3;
}

constexpr double gbps_to_bytes_per_cycle(double gb_per_s, double clock_hz = kChipClockHz) {
  return gb_per_s * 1e9 / clock_hz;
}

constexpr double bytes_per_cycle_to_gbps(double bytes_per_cycle,
                                         double clock_hz = kChipClockHz) {
  return bytes_per_cycle * clock_hz / 1e9;
}

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;

}  // namespace edgemm

#endif  // EDGEMM_COMMON_UNITS_HPP
