#include "common/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgemm {

QuantizedTensor quantize_symmetric(std::span<const float> values, int bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("quantize_symmetric: bits must be in [2, 16]");
  }
  float max_abs = 0.0F;
  for (const float v : values) max_abs = std::max(max_abs, std::fabs(v));

  QuantizedTensor q;
  q.bits = bits;
  const auto qmax = static_cast<float>(quant_max(bits));
  q.scale = max_abs > 0.0F ? max_abs / qmax : 1.0F;
  q.codes.reserve(values.size());
  for (const float v : values) {
    const float scaled = v / q.scale;
    const float clamped = std::clamp(scaled, -qmax, qmax);
    q.codes.push_back(static_cast<std::int32_t>(std::lround(clamped)));
  }
  return q;
}

std::vector<float> dequantize(const QuantizedTensor& q) {
  std::vector<float> out;
  out.reserve(q.codes.size());
  for (const std::int32_t c : q.codes) out.push_back(static_cast<float>(c) * q.scale);
  return out;
}

}  // namespace edgemm
