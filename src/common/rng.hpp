// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the repository draws from an explicitly
// seeded Xoshiro256** generator so that benches regenerate identical
// tables run-to-run (DESIGN.md §5, "Determinism").
#ifndef EDGEMM_COMMON_RNG_HPP
#define EDGEMM_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace edgemm {

/// Xoshiro256** PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)).
  double log_normal(double mu, double sigma);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  /// Forks an independent stream (for per-layer/per-core generators).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace edgemm

#endif  // EDGEMM_COMMON_RNG_HPP
