// Internal invariant checking for the EdgeMM libraries.
//
// EDGEMM_ASSERT guards *internal* invariants and is active in all build
// types (a cycle-level simulator that silently corrupts state is worse
// than one that aborts). Precondition violations on public API boundaries
// throw std::invalid_argument / std::out_of_range instead; see the
// individual modules.
#ifndef EDGEMM_COMMON_ASSERT_HPP
#define EDGEMM_COMMON_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace edgemm::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "EdgeMM invariant violated: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace edgemm::detail

#define EDGEMM_ASSERT(expr)                                                    \
  ((expr) ? static_cast<void>(0)                                               \
          : ::edgemm::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define EDGEMM_ASSERT_MSG(expr, msg)                                           \
  ((expr) ? static_cast<void>(0)                                               \
          : ::edgemm::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#endif  // EDGEMM_COMMON_ASSERT_HPP
