// On-chip scratchpad (TCDM / shared buffer) capacity model.
//
// CC-clusters share a small data memory; MC-clusters integrate most of
// their storage inside the CIM macros and keep only a small shared
// buffer (paper §III-A). Kernels use this model to size tiles: the
// larger MC-side memory permits larger DMA blocks, which is what makes
// MC-clusters bandwidth-efficient (Fig. 6(b)).
#ifndef EDGEMM_MEM_SCRATCHPAD_HPP
#define EDGEMM_MEM_SCRATCHPAD_HPP

#include <string>

#include "common/types.hpp"

namespace edgemm::mem {

/// Bump-allocated scratchpad with a high-water mark.
///
/// The functional kernels do not store real bytes here (tensors live in
/// host memory); the scratchpad tracks *capacity*, so tiling code can ask
/// "what is the largest tile that fits?" and tests can assert that no
/// kernel ever over-subscribes its cluster memory.
class Scratchpad {
 public:
  /// Throws std::invalid_argument if capacity is zero.
  Scratchpad(std::string name, Bytes capacity);

  /// Reserves `bytes`; returns false (and reserves nothing) on overflow.
  [[nodiscard]] bool allocate(Bytes bytes);

  /// Releases `bytes`; releasing more than allocated is an invariant
  /// violation (aborts via EDGEMM_ASSERT).
  void release(Bytes bytes);

  /// Releases everything.
  void reset();

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free_bytes() const { return capacity_ - used_; }
  Bytes high_water_mark() const { return high_water_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
};

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_SCRATCHPAD_HPP
