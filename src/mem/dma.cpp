#include "mem/dma.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::mem {

namespace {

MemoryPath single_hop(DramController& dram, int port) {
  MemoryPath path;
  path.add_hop(dram.channel(), port);
  return path;
}

void check_dma_config(const DmaConfig& config) {
  if (config.burst_bytes == 0) {
    throw std::invalid_argument("DmaEngine: burst_bytes must be > 0");
  }
  if (config.throttle_interval == 0) {
    throw std::invalid_argument("DmaEngine: throttle_interval must be > 0");
  }
}

}  // namespace

DmaEngine::DmaEngine(sim::Simulator& sim, DramController& dram, int port,
                     const DmaConfig& config, std::string name)
    : DmaEngine(sim, single_hop(dram, port), config, std::move(name)) {}

DmaEngine::DmaEngine(sim::Simulator& sim, MemoryPath path, const DmaConfig& config,
                     std::string name)
    : sim_(sim), path_(std::move(path)), config_(config), name_(std::move(name)) {
  check_dma_config(config);
  if (path_.empty()) {
    throw std::invalid_argument("DmaEngine: memory path must have hops");
  }
}

void DmaEngine::transfer(Bytes bytes, Done done) {
  ++inflight_;
  if (bytes == 0) {
    sim_.schedule(0, [this, done = std::move(done)] {
      --inflight_;
      if (done) done();
    });
    return;
  }
  total_bytes_ += bytes;
  Bytes remaining = bytes;
  while (remaining > 0) {
    const Bytes chunk = remaining > config_.burst_bytes ? config_.burst_bytes : remaining;
    remaining -= chunk;
    const bool last = remaining == 0;
    issue_or_defer(Burst{chunk, last, last ? std::move(done) : Done{}});
  }
}

Cycle DmaEngine::next_interval_boundary() const {
  const Cycle t = config_.throttle_interval;
  return ((sim_.now() / t) + 1) * t;
}

void DmaEngine::issue_or_defer(Burst burst) {
  // Lazily roll the PMC interval forward (no periodic event needed when idle).
  const Cycle t = config_.throttle_interval;
  const Cycle interval_index = sim_.now() / t;
  if (interval_index * t != interval_start_) {
    interval_start_ = interval_index * t;
    interval_usage_ = 0;
  }

  // §IV-B: once usage exceeds the budget, subsequent bursts are blocked
  // until the interval elapses. Keep strict FIFO: if bursts are already
  // deferred, new bursts queue behind them.
  if (!deferred_.empty() || interval_usage_ > budget_) {
    deferred_.push_back(std::move(burst));
    if (!wakeup_scheduled_) {
      wakeup_scheduled_ = true;
      const Cycle boundary = next_interval_boundary();
      throttle_stall_cycles_ += boundary - sim_.now();
      sim_.schedule_at(boundary, [this] {
        wakeup_scheduled_ = false;
        interval_start_ = sim_.now();
        interval_usage_ = 0;
        // Drain deferred bursts; issue_or_defer re-blocks once the fresh
        // budget is consumed again.
        std::deque<Burst> pending;
        pending.swap(deferred_);
        for (auto& b : pending) issue_or_defer(std::move(b));
      });
    }
    return;
  }

  interval_usage_ += burst.bytes;
  issue(std::move(burst));
}

void DmaEngine::issue(Burst burst) {
  const Bytes bytes = burst.bytes;
  path_.request(bytes, [this, last = burst.last, done = std::move(burst.done)] {
    if (last) {
      EDGEMM_ASSERT(inflight_ > 0);
      --inflight_;
      if (done) done();
    }
  });
}

}  // namespace edgemm::mem
