// Shared bandwidth-limited resource with round-robin port arbitration.
//
// Both the DRAM channel and the hierarchical AXI crossbar links of
// EdgeMM (Fig. 4) are instances of the same abstraction: a channel that
// serves one request at a time at a fixed byte rate, with a fixed access
// latency, arbitrating fairly among requesting ports.
#ifndef EDGEMM_MEM_RESOURCE_SERVER_HPP
#define EDGEMM_MEM_RESOURCE_SERVER_HPP

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {

/// One request-at-a-time channel: occupancy = ceil(bytes / bytes_per_cycle),
/// completion fires `latency` cycles after the channel releases the request.
///
/// Ports are served round-robin; requests within a port stay FIFO. An
/// isolated transfer therefore sees an effective bandwidth of
/// bytes / (latency + bytes/bw) — the curve of paper Fig. 6(b).
class ResourceServer {
 public:
  using Done = std::function<void()>;

  /// Throws std::invalid_argument if bytes_per_cycle <= 0.
  ResourceServer(sim::Simulator& sim, std::string name, double bytes_per_cycle,
                 Cycle latency);

  /// Registers a requesting port (e.g. one per cluster DMA). Returns its id.
  int add_port(std::string port_name);

  /// Enqueues a transfer of `bytes` on `port`; `done` fires at completion.
  /// Throws std::out_of_range for an unknown port.
  void request(int port, Bytes bytes, Done done);

  const std::string& name() const { return name_; }
  double bytes_per_cycle() const { return bytes_per_cycle_; }
  Cycle latency() const { return latency_; }

  /// Total bytes fully served so far.
  Bytes bytes_served() const { return bytes_served_; }

  /// Bytes served on behalf of one port.
  Bytes bytes_served(int port) const;

  /// Cycles during which the channel was occupied.
  Cycle busy_cycles() const { return busy_cycles_; }

  /// Accounts service performed outside the event-driven channel — the
  /// fast replay tier prices transfers analytically but still reports
  /// them here so bytes_served()/utilization() stay meaningful.
  void record_external_service(Bytes bytes, Cycle busy) {
    bytes_served_ += bytes;
    busy_cycles_ += busy;
  }

  /// Requests currently queued across all ports (excluding in-flight).
  std::size_t queued_requests() const;

  /// Channel utilization in [0,1] relative to elapsed simulation time.
  double utilization() const;

 private:
  struct Request {
    Bytes bytes;
    Done done;
  };
  struct Port {
    std::string name;
    std::deque<Request> queue;
    Bytes bytes_served = 0;
  };

  void try_dispatch();

  sim::Simulator& sim_;
  std::string name_;
  double bytes_per_cycle_;
  Cycle latency_;
  std::vector<Port> ports_;
  std::size_t rr_next_ = 0;  // next port considered by the arbiter
  bool channel_busy_ = false;
  Bytes bytes_served_ = 0;
  Cycle busy_cycles_ = 0;
};

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_RESOURCE_SERVER_HPP
