#include "mem/dram.hpp"

#include <cmath>

namespace edgemm::mem {

DramController::DramController(sim::Simulator& sim, const DramConfig& config)
    : config_(config),
      server_(std::make_unique<ResourceServer>(sim, "dram", config.bytes_per_cycle,
                                               config.latency)) {}

double effective_bandwidth(const DramConfig& config, Bytes bytes) {
  if (bytes == 0) return 0.0;
  const double transfer_cycles =
      std::ceil(static_cast<double>(bytes) / config.bytes_per_cycle);
  const double total = static_cast<double>(config.latency) + transfer_cycles;
  return static_cast<double>(bytes) / total;
}

}  // namespace edgemm::mem
