// DRAM controller model: the single shared channel at the root of the
// EdgeMM memory hierarchy (Fig. 4, "DRAM Controller").
#ifndef EDGEMM_MEM_DRAM_HPP
#define EDGEMM_MEM_DRAM_HPP

#include <memory>
#include <string>

#include "common/types.hpp"
#include "mem/resource_server.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {

/// Static parameters of the external memory.
struct DramConfig {
  /// Peak bandwidth in bytes per core cycle. LPDDR4X-class default:
  /// 25.6 GB/s at a 1 GHz core clock.
  double bytes_per_cycle = 25.6;
  /// Closed-page access latency in core cycles (row activate + CAS +
  /// controller + hierarchical AXI traversal).
  Cycle latency = 100;
};

/// Thin wrapper over ResourceServer that fixes the naming and exposes the
/// DRAM-specific analytic helpers.
class DramController {
 public:
  DramController(sim::Simulator& sim, const DramConfig& config);

  /// One port per cluster DMA engine.
  int add_port(std::string port_name) { return server_->add_port(std::move(port_name)); }

  void request(int port, Bytes bytes, ResourceServer::Done done) {
    server_->request(port, bytes, std::move(done));
  }

  const DramConfig& config() const { return config_; }
  ResourceServer& channel() { return *server_; }
  const ResourceServer& channel() const { return *server_; }

  Bytes bytes_served() const { return server_->bytes_served(); }
  Bytes bytes_served(int port) const { return server_->bytes_served(port); }
  double utilization() const { return server_->utilization(); }

 private:
  DramConfig config_;
  std::unique_ptr<ResourceServer> server_;
};

/// Effective bandwidth (bytes/cycle) seen by one isolated transfer of
/// `bytes`: bytes / (latency + ceil(bytes / peak)). This closed form is
/// what the event-driven model measures and what Fig. 6(b) plots.
double effective_bandwidth(const DramConfig& config, Bytes bytes);

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_DRAM_HPP
