// A multi-hop route through the interconnect hierarchy (Fig. 4):
//   cluster DMA -> cluster/group AXI crossbar -> system AXI crossbar
//   -> DRAM controller.
// Every hop is a bandwidth-limited ResourceServer with its own port for
// the requester; a burst occupies the hops in order, pipelining across
// bursts.
#ifndef EDGEMM_MEM_MEMORY_PATH_HPP
#define EDGEMM_MEM_MEMORY_PATH_HPP

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "mem/resource_server.hpp"

namespace edgemm::mem {

/// Ordered hops from requester to memory. The last hop is the DRAM
/// channel; intermediate hops are crossbar links.
class MemoryPath {
 public:
  MemoryPath() = default;

  /// Appends a hop; `port` must have been obtained from server.add_port.
  void add_hop(ResourceServer& server, int port);

  bool empty() const { return hops_.empty(); }
  std::size_t hop_count() const { return hops_.size(); }

  /// Routes one burst through all hops in order; `done` fires when the
  /// final hop completes. Throws std::logic_error on an empty path.
  void request(Bytes bytes, std::function<void()> done) const;

  /// Sum of per-hop latencies (for analytic sanity checks).
  Cycle total_latency() const;

  /// The tightest per-hop bandwidth along the path.
  double bottleneck_bytes_per_cycle() const;

 private:
  struct Hop {
    ResourceServer* server = nullptr;
    int port = -1;
  };
  void request_from(std::size_t index, Bytes bytes,
                    std::function<void()> done) const;

  std::vector<Hop> hops_;
};

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_MEMORY_PATH_HPP
