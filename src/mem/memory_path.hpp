// A multi-hop route through the interconnect hierarchy (Fig. 4):
//   cluster DMA -> cluster/group AXI crossbar -> system AXI crossbar
//   -> DRAM controller.
// Every hop is a bandwidth-limited ResourceServer with its own port for
// the requester; a burst occupies the hops in order, pipelining across
// bursts.
//
// ChipLink below extends the same bandwidth/latency vocabulary off-chip:
// a serialized chip-to-chip channel (multi-chip serving clusters) priced
// analytically rather than event-by-event, with exact byte-conservation
// counters so migrated KV bytes can join the serving byte ledger.
#ifndef EDGEMM_MEM_MEMORY_PATH_HPP
#define EDGEMM_MEM_MEMORY_PATH_HPP

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "mem/resource_server.hpp"

namespace edgemm::mem {

/// Ordered hops from requester to memory. The last hop is the DRAM
/// channel; intermediate hops are crossbar links.
class MemoryPath {
 public:
  MemoryPath() = default;

  /// Appends a hop; `port` must have been obtained from server.add_port.
  void add_hop(ResourceServer& server, int port);

  bool empty() const { return hops_.empty(); }
  std::size_t hop_count() const { return hops_.size(); }

  /// Routes one burst through all hops in order; `done` fires when the
  /// final hop completes. Throws std::logic_error on an empty path.
  void request(Bytes bytes, std::function<void()> done) const;

  /// Sum of per-hop latencies (for analytic sanity checks).
  Cycle total_latency() const;

  /// The tightest per-hop bandwidth along the path.
  double bottleneck_bytes_per_cycle() const;

 private:
  struct Hop {
    ResourceServer* server = nullptr;
    int port = -1;
  };
  void request_from(std::size_t index, Bytes bytes,
                    std::function<void()> done) const;

  std::vector<Hop> hops_;
};

/// One serialized chip-to-chip channel (board-level SerDes between two
/// simulated EdgeMM chips). Unlike the event-driven hops above it is
/// priced analytically — transfers are submitted with absolute ready
/// cycles and the link returns absolute arrival cycles — because the
/// two endpoint chips live in SEPARATE simulators (one per
/// ServingEngine) and only exchange finished timestamps.
///
/// Timing: the wire serializes (one transfer occupies it for
/// ceil(bytes / bandwidth) cycles, FIFO in submission order), while the
/// head latency pipelines (pure propagation):
///   start_i   = max(ready_i, wire_free_i)
///   arrival_i = start_i + latency + ceil(bytes_i / bandwidth)
///
/// The byte ledger is conservation-exact at every probe cycle t:
///   bytes_sent_by(t) == bytes_landed_by(t) + bytes_in_flight_at(t)
/// where a transfer's bytes are "sent" at its start cycle and "landed"
/// at its arrival cycle — the invariant the cluster tests gate on.
class ChipLink {
 public:
  /// Throws std::invalid_argument for a non-positive bandwidth.
  ChipLink(double bytes_per_cycle, Cycle latency);

  /// One completed transfer (exposed for tests and the occupancy stats).
  struct Transfer {
    Cycle ready = 0;    ///< submission cycle (payload finished upstream)
    Cycle start = 0;    ///< entered the wire (bytes count as sent)
    Cycle arrival = 0;  ///< landed on the far chip
    Bytes bytes = 0;
  };

  /// Submits one transfer that is ready at `ready`; returns its arrival
  /// cycle. Transfers MUST be submitted in deterministic order — the
  /// wire serves them FIFO in submission order (ties in ready time do
  /// not reorder). Zero-byte transfers are rejected
  /// (std::invalid_argument): nothing to conserve.
  Cycle transfer(Bytes bytes, Cycle ready);

  double bytes_per_cycle() const { return bytes_per_cycle_; }
  Cycle latency() const { return latency_; }
  const std::vector<Transfer>& transfers() const { return transfers_; }

  /// Total bytes that have entered the wire over the link's lifetime.
  Bytes bytes_sent() const { return bytes_sent_; }
  /// Bytes whose transfer started at or before `now`.
  Bytes bytes_sent_by(Cycle now) const;
  /// Bytes whose transfer arrived at or before `now`.
  Bytes bytes_landed_by(Cycle now) const;
  /// Bytes on the wire at `now`: sent_by(now) - landed_by(now).
  Bytes bytes_in_flight_at(Cycle now) const;

  /// Cycles the wire spent serializing payload (sum of transfer
  /// durations, head latency excluded — it pipelines).
  Cycle busy_cycles() const { return busy_cycles_; }
  /// Arrival cycle of the last transfer (0 with no transfers).
  Cycle last_arrival() const { return last_arrival_; }
  /// Worst queueing delay a transfer saw behind the serialized wire
  /// (start - ready, maximized over transfers).
  Cycle max_queue_wait() const { return max_queue_wait_; }

 private:
  double bytes_per_cycle_;
  Cycle latency_;
  Cycle wire_free_ = 0;  ///< cycle the wire finishes its current payload
  std::vector<Transfer> transfers_;
  Bytes bytes_sent_ = 0;
  Cycle busy_cycles_ = 0;
  Cycle last_arrival_ = 0;
  Cycle max_queue_wait_ = 0;
};

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_MEMORY_PATH_HPP
