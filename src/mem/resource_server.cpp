#include "mem/resource_server.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::mem {

ResourceServer::ResourceServer(sim::Simulator& sim, std::string name,
                               double bytes_per_cycle, Cycle latency)
    : sim_(sim), name_(std::move(name)), bytes_per_cycle_(bytes_per_cycle),
      latency_(latency) {
  if (bytes_per_cycle <= 0.0) {
    throw std::invalid_argument("ResourceServer: bytes_per_cycle must be > 0");
  }
}

int ResourceServer::add_port(std::string port_name) {
  ports_.push_back(Port{std::move(port_name), {}, 0});
  return static_cast<int>(ports_.size()) - 1;
}

void ResourceServer::request(int port, Bytes bytes, Done done) {
  if (port < 0 || static_cast<std::size_t>(port) >= ports_.size()) {
    throw std::out_of_range("ResourceServer::request: unknown port");
  }
  ports_[static_cast<std::size_t>(port)].queue.push_back(
      Request{bytes, std::move(done)});
  try_dispatch();
}

Bytes ResourceServer::bytes_served(int port) const {
  if (port < 0 || static_cast<std::size_t>(port) >= ports_.size()) {
    throw std::out_of_range("ResourceServer::bytes_served: unknown port");
  }
  return ports_[static_cast<std::size_t>(port)].bytes_served;
}

std::size_t ResourceServer::queued_requests() const {
  std::size_t n = 0;
  for (const Port& p : ports_) n += p.queue.size();
  return n;
}

double ResourceServer::utilization() const {
  const Cycle elapsed = sim_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(busy_cycles_) / static_cast<double>(elapsed);
}

void ResourceServer::try_dispatch() {
  if (channel_busy_ || ports_.empty()) return;

  // Round-robin scan starting at rr_next_.
  const std::size_t n = ports_.size();
  std::size_t chosen = n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t candidate = (rr_next_ + i) % n;
    if (!ports_[candidate].queue.empty()) {
      chosen = candidate;
      break;
    }
  }
  if (chosen == n) return;  // all queues empty
  rr_next_ = (chosen + 1) % n;

  Port& port = ports_[chosen];
  Request req = std::move(port.queue.front());
  port.queue.pop_front();

  const auto occupancy = static_cast<Cycle>(
      std::ceil(static_cast<double>(req.bytes) / bytes_per_cycle_));
  const Cycle busy_for = occupancy > 0 ? occupancy : 1;

  channel_busy_ = true;
  busy_cycles_ += busy_for;
  port.bytes_served += req.bytes;
  bytes_served_ += req.bytes;

  // The channel frees after `busy_for`; the requester observes completion
  // `latency_` cycles later (the response traverses the interconnect).
  sim_.schedule(busy_for, [this] {
    channel_busy_ = false;
    try_dispatch();
  });
  sim_.schedule(busy_for + latency_, [done = std::move(req.done)] {
    if (done) done();
  });
}

}  // namespace edgemm::mem
