#include "mem/scratchpad.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::mem {

Scratchpad::Scratchpad(std::string name, Bytes capacity)
    : name_(std::move(name)), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("Scratchpad: capacity must be > 0");
  }
}

bool Scratchpad::allocate(Bytes bytes) {
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  return true;
}

void Scratchpad::release(Bytes bytes) {
  EDGEMM_ASSERT_MSG(bytes <= used_, "scratchpad released more than allocated");
  used_ -= bytes;
}

void Scratchpad::reset() { used_ = 0; }

}  // namespace edgemm::mem
