#include "mem/analysis.hpp"

#include "common/assert.hpp"
#include "mem/dma.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {

std::vector<BandwidthSample> measure_effective_bandwidth(
    const DramConfig& dram_config, const std::vector<Bytes>& transfer_sizes,
    Bytes burst_bytes) {
  std::vector<BandwidthSample> samples;
  samples.reserve(transfer_sizes.size());

  for (const Bytes size : transfer_sizes) {
    sim::Simulator sim;
    DramController dram(sim, dram_config);
    const int port = dram.add_port("probe");
    DmaConfig dma_config;
    dma_config.burst_bytes = burst_bytes;
    DmaEngine dma(sim, dram, port, dma_config, "probe-dma");

    bool finished = false;
    Cycle completion = 0;
    dma.transfer(size, [&] {
      finished = true;
      completion = sim.now();
    });
    sim.run();
    EDGEMM_ASSERT(finished);

    BandwidthSample s;
    s.transfer_bytes = size;
    s.effective_bytes_per_cycle =
        completion > 0 ? static_cast<double>(size) / static_cast<double>(completion)
                       : 0.0;
    s.analytic_bytes_per_cycle = effective_bandwidth(dram_config, size);
    s.fraction_of_peak = s.effective_bytes_per_cycle / dram_config.bytes_per_cycle;
    samples.push_back(s);
  }
  return samples;
}

}  // namespace edgemm::mem
