// Per-cluster DMA engine with performance-monitoring counter (PMC) and
// budget-based throttling — the mechanism behind the paper's
// token-length-driven bandwidth management (§IV-B).
#ifndef EDGEMM_MEM_DMA_HPP
#define EDGEMM_MEM_DMA_HPP

#include <deque>
#include <functional>
#include <limits>
#include <string>

#include "common/types.hpp"
#include "mem/dram.hpp"
#include "mem/memory_path.hpp"
#include "sim/simulator.hpp"

namespace edgemm::mem {

/// Static DMA parameters.
struct DmaConfig {
  /// Transfers are sliced into bursts of this size before hitting the
  /// DRAM channel; finer bursts give finer inter-cluster arbitration.
  Bytes burst_bytes = 4096;
  /// Throttle interval T: the PMC resets every T cycles (§IV-B).
  Cycle throttle_interval = 10000;
};

/// Cluster-side DMA engine.
///
/// Each transfer is split into bursts; before a burst is issued its bytes
/// are charged to the interval PMC. Once the accumulated usage `d`
/// exceeds the budget `B`, subsequent bursts are held until the interval
/// elapses and the PMC resets, exactly as described in §IV-B.
class DmaEngine {
 public:
  using Done = std::function<void()>;

  /// Direct-to-DRAM engine; `port` must come from `dram.add_port`.
  DmaEngine(sim::Simulator& sim, DramController& dram, int port,
            const DmaConfig& config, std::string name);

  /// Engine routed through a hierarchical interconnect path (cluster
  /// crossbar -> system crossbar -> DRAM, Fig. 4). The path's last hop
  /// must be the memory channel.
  DmaEngine(sim::Simulator& sim, MemoryPath path, const DmaConfig& config,
            std::string name);

  /// Starts a transfer of `bytes`; `done` fires when the last burst lands.
  /// Zero-byte transfers complete immediately (next delta-cycle).
  void transfer(Bytes bytes, Done done);

  /// Sets the per-interval byte budget B. Unlimited by default.
  void set_budget(Bytes budget) {
    budget_ = budget;
    if (budget_listener_) budget_listener_();
  }
  Bytes budget() const { return budget_; }

  /// Observer invoked after every set_budget call — the fast replay tier
  /// re-prices its streams when the bandwidth manager moves budgets.
  void set_budget_listener(std::function<void()> listener) {
    budget_listener_ = std::move(listener);
  }

  static constexpr Bytes kUnlimited = std::numeric_limits<Bytes>::max();

  /// PMC value: bytes charged in the current interval.
  Bytes interval_usage() const { return interval_usage_; }

  /// Total bytes requested through this engine (lifetime).
  Bytes total_bytes() const { return total_bytes_; }

  /// Cycles bursts spent blocked by the throttle (lifetime).
  Cycle throttle_stall_cycles() const { return throttle_stall_cycles_; }

  /// Transfers still in flight.
  std::size_t inflight() const { return inflight_; }

  const std::string& name() const { return name_; }

 private:
  struct Burst {
    Bytes bytes;
    bool last;
    Done done;  // only set on the last burst of a transfer
  };

  void issue_or_defer(Burst burst);
  void issue(Burst burst);
  Cycle next_interval_boundary() const;

  sim::Simulator& sim_;
  MemoryPath path_;
  DmaConfig config_;
  std::string name_;
  Bytes budget_ = kUnlimited;
  Bytes interval_usage_ = 0;
  Cycle interval_start_ = 0;
  Bytes total_bytes_ = 0;
  Cycle throttle_stall_cycles_ = 0;
  std::size_t inflight_ = 0;
  std::deque<Burst> deferred_;
  bool wakeup_scheduled_ = false;
  std::function<void()> budget_listener_;
};

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_DMA_HPP
