#include "mem/memory_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::mem {

void MemoryPath::add_hop(ResourceServer& server, int port) {
  hops_.push_back(Hop{&server, port});
}

void MemoryPath::request(Bytes bytes, std::function<void()> done) const {
  if (hops_.empty()) {
    throw std::logic_error("MemoryPath::request: no hops configured");
  }
  request_from(0, bytes, std::move(done));
}

void MemoryPath::request_from(std::size_t index, Bytes bytes,
                              std::function<void()> done) const {
  const Hop& hop = hops_[index];
  if (index + 1 == hops_.size()) {
    hop.server->request(hop.port, bytes, std::move(done));
    return;
  }
  hop.server->request(hop.port, bytes,
                      [this, index, bytes, done = std::move(done)]() mutable {
                        request_from(index + 1, bytes, std::move(done));
                      });
}

Cycle MemoryPath::total_latency() const {
  Cycle total = 0;
  for (const Hop& hop : hops_) total += hop.server->latency();
  return total;
}

double MemoryPath::bottleneck_bytes_per_cycle() const {
  double tightest = std::numeric_limits<double>::infinity();
  for (const Hop& hop : hops_) {
    tightest = std::min(tightest, hop.server->bytes_per_cycle());
  }
  return hops_.empty() ? 0.0 : tightest;
}

// --- ChipLink ---------------------------------------------------------------

ChipLink::ChipLink(double bytes_per_cycle, Cycle latency)
    : bytes_per_cycle_(bytes_per_cycle), latency_(latency) {
  if (!(bytes_per_cycle > 0.0)) {
    throw std::invalid_argument("ChipLink: bandwidth must be positive");
  }
}

Cycle ChipLink::transfer(Bytes bytes, Cycle ready) {
  if (bytes == 0) {
    throw std::invalid_argument("ChipLink: zero-byte transfer");
  }
  const auto duration = static_cast<Cycle>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle_));
  const Cycle start = std::max(ready, wire_free_);
  const Cycle arrival = start + latency_ + duration;
  wire_free_ = start + duration;
  transfers_.push_back(Transfer{ready, start, arrival, bytes});
  bytes_sent_ += bytes;
  busy_cycles_ += duration;
  last_arrival_ = std::max(last_arrival_, arrival);
  max_queue_wait_ = std::max(max_queue_wait_, start - ready);
  return arrival;
}

Bytes ChipLink::bytes_sent_by(Cycle now) const {
  Bytes sent = 0;
  for (const Transfer& t : transfers_) {
    if (t.start <= now) sent += t.bytes;
  }
  return sent;
}

Bytes ChipLink::bytes_landed_by(Cycle now) const {
  Bytes landed = 0;
  for (const Transfer& t : transfers_) {
    if (t.arrival <= now) landed += t.bytes;
  }
  return landed;
}

Bytes ChipLink::bytes_in_flight_at(Cycle now) const {
  return bytes_sent_by(now) - bytes_landed_by(now);
}

}  // namespace edgemm::mem
