#include "mem/memory_path.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/assert.hpp"

namespace edgemm::mem {

void MemoryPath::add_hop(ResourceServer& server, int port) {
  hops_.push_back(Hop{&server, port});
}

void MemoryPath::request(Bytes bytes, std::function<void()> done) const {
  if (hops_.empty()) {
    throw std::logic_error("MemoryPath::request: no hops configured");
  }
  request_from(0, bytes, std::move(done));
}

void MemoryPath::request_from(std::size_t index, Bytes bytes,
                              std::function<void()> done) const {
  const Hop& hop = hops_[index];
  if (index + 1 == hops_.size()) {
    hop.server->request(hop.port, bytes, std::move(done));
    return;
  }
  hop.server->request(hop.port, bytes,
                      [this, index, bytes, done = std::move(done)]() mutable {
                        request_from(index + 1, bytes, std::move(done));
                      });
}

Cycle MemoryPath::total_latency() const {
  Cycle total = 0;
  for (const Hop& hop : hops_) total += hop.server->latency();
  return total;
}

double MemoryPath::bottleneck_bytes_per_cycle() const {
  double tightest = std::numeric_limits<double>::infinity();
  for (const Hop& hop : hops_) {
    tightest = std::min(tightest, hop.server->bytes_per_cycle());
  }
  return hops_.empty() ? 0.0 : tightest;
}

}  // namespace edgemm::mem
