// Measurement helpers for the memory system (Fig. 6(b) methodology).
#ifndef EDGEMM_MEM_ANALYSIS_HPP
#define EDGEMM_MEM_ANALYSIS_HPP

#include <vector>

#include "common/types.hpp"
#include "mem/dram.hpp"

namespace edgemm::mem {

/// One point of the effective-bandwidth curve.
struct BandwidthSample {
  Bytes transfer_bytes = 0;
  double effective_bytes_per_cycle = 0.0;  ///< measured by event simulation
  double analytic_bytes_per_cycle = 0.0;   ///< closed form for cross-check
  double fraction_of_peak = 0.0;           ///< measured / peak
};

/// Runs one isolated DMA transfer per size through a fresh event-driven
/// memory system and reports the achieved bandwidth. Reproduces the
/// "effective bandwidth vs matrix size" assessment of paper Fig. 6(b).
std::vector<BandwidthSample> measure_effective_bandwidth(
    const DramConfig& dram_config, const std::vector<Bytes>& transfer_sizes,
    Bytes burst_bytes = 4096);

}  // namespace edgemm::mem

#endif  // EDGEMM_MEM_ANALYSIS_HPP
