// Hardware activation-aware pruner of the MC-core (Fig. 8(b)).
//
// The pruner executes the inner step of Alg. 1 on the core's local slice
// of the activation vector ("each core focuses on its assigned local
// channels, avoiding complex global Top-k selections"):
//
//   1. the Top-k engine finds the k largest-magnitude elements of the
//      vector register and marks them in the index register;
//   2. the th-mask compares every element against max/t and reports the
//      count n used for the layer-wise k update;
//   3. the address generator converts the index bitmap into the DRAM row
//      addresses of the surviving weight rows;
//   4. the vector is masked and aggregated (compacted) into vd, ready
//      for the CIM macro.
#ifndef EDGEMM_COPROC_PRUNER_HPP
#define EDGEMM_COPROC_PRUNER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace edgemm::coproc {

/// Result of one mv.prune invocation.
struct PruneOutcome {
  /// Local indices of the surviving channels, ascending (the order the
  /// address generator emits row addresses in).
  std::vector<std::size_t> kept;
  /// Compacted activation values, aligned with `kept`.
  std::vector<float> compacted;
  /// n = |{i : |v[i]| > max|v| / t}| — drives the k update of Alg. 1.
  std::size_t n_above_threshold = 0;
  /// Largest magnitude seen (the Top-k engine's max output).
  float max_abs = 0.0F;
  /// DRAM row addresses the address generator would issue.
  std::vector<std::uint64_t> row_addresses;
};

/// Configuration of the pruner datapath.
struct PrunerConfig {
  /// Row pitch used by the address generator: byte distance between
  /// consecutive weight rows in DRAM.
  Bytes row_pitch_bytes = 0;
  /// Base address of the weight matrix shard.
  std::uint64_t base_address = 0;
};

/// Functional + cycle model of the pruner block.
class ActAwarePruner {
 public:
  ActAwarePruner() = default;

  /// Prunes `values` down to at most `k` channels using threshold `t`.
  /// Throws std::invalid_argument if t <= 0.
  PruneOutcome prune(std::span<const float> values, std::size_t k, double t,
                     const PrunerConfig& config = {});

  /// Cycle model: the Top-k engine iterates one max-select per kept
  /// element over the comparator tree (k cycles), one cycle for the
  /// th-mask compare, one for mask-and-aggregate.
  static Cycle prune_cycles(std::size_t k) { return static_cast<Cycle>(k) + 2; }

  Cycle cycles_elapsed() const { return cycles_; }
  void reset_counters() { cycles_ = 0; }

 private:
  Cycle cycles_ = 0;
};

}  // namespace edgemm::coproc

#endif  // EDGEMM_COPROC_PRUNER_HPP
