#include "coproc/matrix_regfile.hpp"

#include <stdexcept>

namespace edgemm::coproc {

MatrixRegFile::MatrixRegFile(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("MatrixRegFile: dimensions must be non-zero");
  }
  for (auto& r : regs_) r = Tensor(rows, cols);
}

Tensor& MatrixRegFile::reg(std::size_t index) {
  if (index >= kNumMatrixRegs) {
    throw std::out_of_range("MatrixRegFile::reg: index out of range");
  }
  return regs_[index];
}

const Tensor& MatrixRegFile::reg(std::size_t index) const {
  if (index >= kNumMatrixRegs) {
    throw std::out_of_range("MatrixRegFile::reg: index out of range");
  }
  return regs_[index];
}

void MatrixRegFile::write(std::size_t index, const Tensor& tile) {
  if (tile.rows() != rows_ || tile.cols() != cols_) {
    throw std::invalid_argument("MatrixRegFile::write: tile shape mismatch");
  }
  reg(index) = tile;
}

void MatrixRegFile::clear(std::size_t index) { reg(index) = Tensor(rows_, cols_); }

}  // namespace edgemm::coproc
