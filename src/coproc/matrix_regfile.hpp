// Matrix register file of the CC-core coprocessor (Fig. 5).
//
// "Four R×C matrix registers are equipped to store operands"; vector
// instructions address one row of a matrix register at a time.
#ifndef EDGEMM_COPROC_MATRIX_REGFILE_HPP
#define EDGEMM_COPROC_MATRIX_REGFILE_HPP

#include <array>
#include <cstddef>

#include "common/tensor.hpp"

namespace edgemm::coproc {

inline constexpr std::size_t kNumMatrixRegs = 4;

/// Four architecturally visible R×C tiles.
class MatrixRegFile {
 public:
  /// Throws std::invalid_argument on zero dimensions.
  MatrixRegFile(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Whole-register access; index must be < kNumMatrixRegs
  /// (throws std::out_of_range).
  Tensor& reg(std::size_t index);
  const Tensor& reg(std::size_t index) const;

  /// Writes a tile into a register. The tile must be exactly R×C
  /// (throws std::invalid_argument) — hardware has no partial-tile loads;
  /// kernels pad edge tiles instead.
  void write(std::size_t index, const Tensor& tile);

  /// Zeroes one register (mm.zero).
  void clear(std::size_t index);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::array<Tensor, kNumMatrixRegs> regs_;
};

}  // namespace edgemm::coproc

#endif  // EDGEMM_COPROC_MATRIX_REGFILE_HPP
