// Vector unit shared by CC and MC cores (Fig. 5/6).
//
// "The vector units are employed to execute vector instructions for
// element-wise computations ... with an element width of C, enabling
// parallel operation on a row of a matrix register by one instruction."
// Activation functions (ReLU / SiLU / GELU) and precision conversion are
// the ops needed by the gated-MLP FFN (Eq. 1) and the projector.
#ifndef EDGEMM_COPROC_VECTOR_UNIT_HPP
#define EDGEMM_COPROC_VECTOR_UNIT_HPP

#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/instructions.hpp"

namespace edgemm::coproc {

/// Element-wise datapath of width `lanes`. Operations longer than one
/// row are issued as multiple instructions; the cycle counter reflects
/// ceil(n / lanes) issues per op.
class VectorUnit {
 public:
  /// Throws std::invalid_argument if lanes is zero.
  explicit VectorUnit(std::size_t lanes);

  std::size_t lanes() const { return lanes_; }

  /// out[i] = a[i] + b[i]; lengths must match (throws).
  std::vector<float> add(std::span<const float> a, std::span<const float> b);

  /// out[i] = a[i] * b[i] — the gating product of Eq. 1.
  std::vector<float> mul(std::span<const float> a, std::span<const float> b);

  /// out[i] = max(a[i], b[i]).
  std::vector<float> max(std::span<const float> a, std::span<const float> b);

  /// Applies the selected activation function.
  std::vector<float> activate(std::span<const float> a, isa::ActUop op);

  /// Precision round-trip through BF16 (vv.cvt bf16).
  std::vector<float> to_bf16(std::span<const float> a);

  Cycle cycles_elapsed() const { return cycles_; }
  void reset_counters() { cycles_ = 0; }

  /// Scalar activation functions (exposed for the FFN reference model).
  static float relu(float x);
  static float silu(float x);
  static float gelu(float x);

 private:
  Cycle issues_for(std::size_t n) const;

  std::size_t lanes_;
  Cycle cycles_ = 0;
};

}  // namespace edgemm::coproc

#endif  // EDGEMM_COPROC_VECTOR_UNIT_HPP
