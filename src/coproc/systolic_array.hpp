// Weight-stationary systolic array — the CC-core coprocessor (Fig. 5).
//
// Functional semantics: out(M×C) = acts(M×R) × weights(R×C), with both
// operands rounded to BF16 on entry and accumulation in FP32, matching
// the BF16 datapath of Table II.
//
// Timing semantics: Eq. 2 of the paper,
//     L_SA = R + (R−1) + (C + M − 1) − 1 = 2R + C + M − 3 ,
// i.e. R cycles to load the stationary weights column-by-column, R−1
// cycles of input skew, and C+M−1 cycles to stream M activation rows
// through and drain the last column, minus the overlapped cycle. When the
// weights of the previous pass are reused (weight-stationary GEMM over a
// tall activation matrix), the R-cycle reload is skipped.
#ifndef EDGEMM_COPROC_SYSTOLIC_ARRAY_HPP
#define EDGEMM_COPROC_SYSTOLIC_ARRAY_HPP

#include <cstddef>

#include "common/tensor.hpp"
#include "common/types.hpp"

namespace edgemm::coproc {

/// Static shape of the PE array.
struct SystolicConfig {
  std::size_t rows = 16;  ///< R: stationary-weight rows (reduction dim)
  std::size_t cols = 16;  ///< C: stationary-weight columns (output dim)
};

/// Cycle cost of one full tile pass per Eq. 2 (weight load included).
constexpr Cycle systolic_tile_cycles(const SystolicConfig& cfg, std::size_t m) {
  return 2 * cfg.rows + cfg.cols + m - 3;
}

/// Cycle cost when the stationary weights are already resident.
constexpr Cycle systolic_stream_cycles(const SystolicConfig& cfg, std::size_t m) {
  return (cfg.rows - 1) + (cfg.cols + m - 1) - 1;
}

/// Functional + cycle model of the array.
class SystolicArray {
 public:
  /// Throws std::invalid_argument on zero dimensions.
  explicit SystolicArray(const SystolicConfig& config);

  const SystolicConfig& config() const { return config_; }

  /// Loads a stationary weight tile; must be exactly R×C
  /// (throws std::invalid_argument). Costs R cycles.
  void load_weights(const Tensor& weights);

  bool has_weights() const { return has_weights_; }

  /// Streams `acts` (M×R, throws on mismatch) through the array and
  /// returns the M×C product. Requires loaded weights (throws
  /// std::logic_error otherwise). Cycle cost: stream-only (weights are
  /// already resident; load_weights accounted for its own R cycles).
  Tensor multiply(const Tensor& acts);

  /// Cumulative cycle count of all operations issued so far.
  Cycle cycles_elapsed() const { return cycles_; }

  /// Cumulative multiply-accumulate count (utilization analysis).
  std::uint64_t macs_performed() const { return macs_; }

  /// Peak MACs the array could have performed in cycles_elapsed().
  std::uint64_t macs_capacity() const {
    return static_cast<std::uint64_t>(config_.rows) * config_.cols * cycles_;
  }

  /// Achieved utilization in [0,1]; GEMV (M=1) lands near
  /// 1/(R+C) — the PE-idleness inefficiency called out in Fig. 5.
  double utilization() const;

  void reset_counters();

 private:
  SystolicConfig config_;
  Tensor weights_;       // BF16-rounded stationary tile
  bool has_weights_ = false;
  Cycle cycles_ = 0;
  std::uint64_t macs_ = 0;
};

}  // namespace edgemm::coproc

#endif  // EDGEMM_COPROC_SYSTOLIC_ARRAY_HPP
