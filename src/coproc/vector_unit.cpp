#include "coproc/vector_unit.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bf16.hpp"

namespace edgemm::coproc {

namespace {
void check_lengths(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("VectorUnit: operand length mismatch");
  }
}
}  // namespace

VectorUnit::VectorUnit(std::size_t lanes) : lanes_(lanes) {
  if (lanes == 0) throw std::invalid_argument("VectorUnit: lanes must be > 0");
}

Cycle VectorUnit::issues_for(std::size_t n) const {
  return (n + lanes_ - 1) / lanes_;
}

std::vector<float> VectorUnit::add(std::span<const float> a, std::span<const float> b) {
  check_lengths(a, b);
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  cycles_ += issues_for(a.size());
  return out;
}

std::vector<float> VectorUnit::mul(std::span<const float> a, std::span<const float> b) {
  check_lengths(a, b);
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  cycles_ += issues_for(a.size());
  return out;
}

std::vector<float> VectorUnit::max(std::span<const float> a, std::span<const float> b) {
  check_lengths(a, b);
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] > b[i] ? a[i] : b[i];
  cycles_ += issues_for(a.size());
  return out;
}

std::vector<float> VectorUnit::activate(std::span<const float> a, isa::ActUop op) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    switch (op) {
      case isa::ActUop::kRelu: out[i] = relu(a[i]); break;
      case isa::ActUop::kSilu: out[i] = silu(a[i]); break;
      case isa::ActUop::kGelu: out[i] = gelu(a[i]); break;
    }
  }
  cycles_ += issues_for(a.size());
  return out;
}

std::vector<float> VectorUnit::to_bf16(std::span<const float> a) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = bf16_round(a[i]);
  cycles_ += issues_for(a.size());
  return out;
}

float VectorUnit::relu(float x) { return x > 0.0F ? x : 0.0F; }

float VectorUnit::silu(float x) { return x / (1.0F + std::exp(-x)); }

float VectorUnit::gelu(float x) {
  // tanh approximation (as deployed in most LLM inference stacks).
  const float c = 0.7978845608F;  // sqrt(2/pi)
  const float inner = c * (x + 0.044715F * x * x * x);
  return 0.5F * x * (1.0F + std::tanh(inner));
}

}  // namespace edgemm::coproc
