#include "coproc/cim_macro.hpp"

#include <stdexcept>

#include "common/assert.hpp"
#include "common/quant.hpp"

namespace edgemm::coproc {

CimMacro::CimMacro(const CimConfig& config) : config_(config) {
  if (config.columns == 0 || config.tree_inputs == 0 || config.entries == 0) {
    throw std::invalid_argument("CimMacro: dimensions must be non-zero");
  }
  if (config.weight_bits < 2 || config.weight_bits > 16 || config.act_bits < 2 ||
      config.act_bits > 16) {
    throw std::invalid_argument("CimMacro: precision must be in [2, 16]");
  }
  weights_.assign(config.entries * config.tree_inputs * config.columns, 0);
  entry_valid_.assign(config.entries, false);
}

void CimMacro::write_entry(std::size_t m, std::span<const std::int32_t> tile) {
  if (m >= config_.entries) {
    throw std::out_of_range("CimMacro::write_entry: entry index out of range");
  }
  if (tile.size() != config_.tree_inputs * config_.columns) {
    throw std::invalid_argument("CimMacro::write_entry: tile must be R x C");
  }
  const std::int32_t wmax = quant_max(config_.weight_bits);
  for (const std::int32_t w : tile) {
    if (w < -wmax - 1 || w > wmax) {
      throw std::invalid_argument("CimMacro::write_entry: weight exceeds N-bit range");
    }
  }
  const std::size_t base = m * config_.tree_inputs * config_.columns;
  for (std::size_t i = 0; i < tile.size(); ++i) weights_[base + i] = tile[i];
  entry_valid_[m] = true;
  cycles_ += cim_entry_write_cycles(config_);
}

void CimMacro::accumulate_entry(std::size_t m, std::span<const std::int32_t> act_codes,
                                std::vector<std::int64_t>& acc) {
  EDGEMM_ASSERT(act_codes.size() == config_.tree_inputs);
  EDGEMM_ASSERT(acc.size() == config_.columns);
  EDGEMM_ASSERT_MSG(entry_valid_[m], "CIM GEMV against an unwritten entry");

  const int w_bits = config_.act_bits;
  const std::size_t base = m * config_.tree_inputs * config_.columns;

  // Genuine bit-serial evaluation of two's-complement activations: bit b
  // contributes partial·2^b, except the sign bit, which subtracts.
  for (int b = 0; b < w_bits; ++b) {
    const bool sign_bit = b == w_bits - 1;
    for (std::size_t c = 0; c < config_.columns; ++c) {
      std::int64_t partial = 0;  // adder tree: sums R 1-bit × N-bit products
      for (std::size_t r = 0; r < config_.tree_inputs; ++r) {
        const auto code = static_cast<std::uint32_t>(act_codes[r]);
        const std::uint32_t bit = (code >> b) & 1u;
        if (bit != 0) partial += weights_[base + r * config_.columns + c];
      }
      // Shift-and-accumulate.
      const std::int64_t shifted = partial << b;
      acc[c] += sign_bit ? -shifted : shifted;
    }
  }
  macs_ += static_cast<std::uint64_t>(config_.tree_inputs) * config_.columns;
}

std::vector<std::int32_t> CimMacro::gemv(std::size_t m,
                                         std::span<const std::int32_t> act_codes) {
  return gemv_long(m, 1, act_codes);
}

std::vector<std::int32_t> CimMacro::gemv_long(std::size_t m_first, std::size_t m_count,
                                              std::span<const std::int32_t> act_codes) {
  if (m_count == 0 || m_first + m_count > config_.entries) {
    throw std::out_of_range("CimMacro::gemv_long: entry range out of bounds");
  }
  if (act_codes.size() != config_.tree_inputs * m_count) {
    throw std::invalid_argument("CimMacro::gemv_long: need R codes per entry");
  }
  const std::int32_t amax = quant_max(config_.act_bits);
  for (const std::int32_t a : act_codes) {
    if (a < -amax - 1 || a > amax) {
      throw std::invalid_argument("CimMacro::gemv_long: activation exceeds W-bit range");
    }
  }

  std::vector<std::int64_t> acc(config_.columns, 0);
  for (std::size_t i = 0; i < m_count; ++i) {
    accumulate_entry(m_first + i,
                     act_codes.subspan(i * config_.tree_inputs, config_.tree_inputs),
                     acc);
  }
  cycles_ += cim_gemm_cycles(config_, m_count);

  std::vector<std::int32_t> out;
  out.reserve(config_.columns);
  for (const std::int64_t v : acc) out.push_back(static_cast<std::int32_t>(v));
  return out;
}

void CimMacro::reset_counters() {
  cycles_ = 0;
  macs_ = 0;
}

}  // namespace edgemm::coproc
