// Digital compute-in-memory macro — the MC-core coprocessor (Fig. 6).
//
// Structure (paper §III-B): C columns; each column holds R subarrays, an
// adder tree, and a shift-and-accumulator; each subarray stores M entries
// of N-bit weights. A W-bit activation vector is broadcast bit-serially:
// every cycle, one selected weight per subarray is multiplied by one
// activation bit, the adder tree sums the R products, and the
// shift-and-accumulator folds the partial in.
//
// Functional semantics are genuinely bit-serial over two's-complement
// codes, so the unit tests can pin the model to exact integer GEMV.
//
// Timing semantics: Eq. 3, L_CIM = M·W + 1 for an M-row GEMM against one
// stored entry (M activation vectors pipelined W cycles each, +1 drain);
// GEMV is the M = 1 case, W + 1 cycles.
#ifndef EDGEMM_COPROC_CIM_MACRO_HPP
#define EDGEMM_COPROC_CIM_MACRO_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace edgemm::coproc {

/// Static shape of the macro.
struct CimConfig {
  std::size_t columns = 64;      ///< C: output channels per pass
  std::size_t tree_inputs = 16;  ///< R: subarrays per column (reduction width)
  std::size_t entries = 64;      ///< M: weights stored per subarray
  int weight_bits = 8;           ///< N: weight precision
  int act_bits = 8;              ///< W: activation precision (bit-serial)
};

/// Bit capacity of the macro's SRAM (C·R·M·N).
constexpr Bytes cim_capacity_bytes(const CimConfig& cfg) {
  return static_cast<Bytes>(cfg.columns) * cfg.tree_inputs * cfg.entries *
         static_cast<Bytes>(cfg.weight_bits) / 8;
}

/// Eq. 3 cycle cost for an M-row GEMM against stored entries.
constexpr Cycle cim_gemm_cycles(const CimConfig& cfg, std::size_t m) {
  return m * static_cast<Cycle>(cfg.act_bits) + 1;
}

/// Cycles to write one R×C entry through the write circuits (one
/// subarray wordline per cycle, all columns in parallel).
constexpr Cycle cim_entry_write_cycles(const CimConfig& cfg) {
  return cfg.tree_inputs;
}

/// Functional + cycle model of the macro.
class CimMacro {
 public:
  /// Throws std::invalid_argument on zero dimensions or precision
  /// outside [2, 16].
  explicit CimMacro(const CimConfig& config);

  const CimConfig& config() const { return config_; }

  /// Writes entry `m` (< entries, throws std::out_of_range): an R×C tile
  /// of signed weight codes, row-major, each within the N-bit signed
  /// range (throws std::invalid_argument). Costs R write cycles.
  void write_entry(std::size_t m, std::span<const std::int32_t> tile);

  /// Bit-serial GEMV against entry `m`: `act_codes` has R signed codes in
  /// the W-bit range. Returns C column accumulators. Costs W+1 cycles.
  std::vector<std::int32_t> gemv(std::size_t m, std::span<const std::int32_t> act_codes);

  /// Multi-entry GEMV with accumulation across `m_count` consecutive
  /// entries starting at `m_first` — how a long reduction dimension
  /// K = R·m_count maps onto the macro. `act_codes` has R·m_count codes.
  /// Costs m_count·W + 1 cycles (Eq. 3 with M = m_count passes).
  std::vector<std::int32_t> gemv_long(std::size_t m_first, std::size_t m_count,
                                      std::span<const std::int32_t> act_codes);

  Cycle cycles_elapsed() const { return cycles_; }
  std::uint64_t macs_performed() const { return macs_; }
  void reset_counters();

 private:
  /// One bit-serial pass of a single activation chunk against one entry,
  /// accumulating into `acc`. No cycle accounting (callers batch it).
  void accumulate_entry(std::size_t m, std::span<const std::int32_t> act_codes,
                        std::vector<std::int64_t>& acc);

  CimConfig config_;
  // weights_[m][r][c] flattened; codes kept as int32 for simplicity.
  std::vector<std::int32_t> weights_;
  std::vector<bool> entry_valid_;
  Cycle cycles_ = 0;
  std::uint64_t macs_ = 0;
};

}  // namespace edgemm::coproc

#endif  // EDGEMM_COPROC_CIM_MACRO_HPP
