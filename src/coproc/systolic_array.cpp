#include "coproc/systolic_array.hpp"

#include <stdexcept>

#include "common/bf16.hpp"

namespace edgemm::coproc {

SystolicArray::SystolicArray(const SystolicConfig& config) : config_(config) {
  if (config.rows == 0 || config.cols == 0) {
    throw std::invalid_argument("SystolicArray: dimensions must be non-zero");
  }
}

void SystolicArray::load_weights(const Tensor& weights) {
  if (weights.rows() != config_.rows || weights.cols() != config_.cols) {
    throw std::invalid_argument("SystolicArray::load_weights: tile must be R x C");
  }
  weights_ = Tensor(config_.rows, config_.cols);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      weights_.at(r, c) = bf16_round(weights.at(r, c));
    }
  }
  has_weights_ = true;
  cycles_ += config_.rows;  // one weight row marches in per cycle
}

Tensor SystolicArray::multiply(const Tensor& acts) {
  if (!has_weights_) {
    throw std::logic_error("SystolicArray::multiply: no stationary weights loaded");
  }
  if (acts.cols() != config_.rows) {
    throw std::invalid_argument("SystolicArray::multiply: acts must be M x R");
  }
  const std::size_t m = acts.rows();
  Tensor out(m, config_.cols);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t r = 0; r < config_.rows; ++r) {
      // Operands are quantized at the PE input; accumulate in FP32.
      const float a = bf16_round(acts.at(i, r));
      if (a == 0.0F) continue;
      for (std::size_t c = 0; c < config_.cols; ++c) {
        out.at(i, c) += a * weights_.at(r, c);
      }
    }
  }
  cycles_ += systolic_stream_cycles(config_, m);
  macs_ += static_cast<std::uint64_t>(m) * config_.rows * config_.cols;
  return out;
}

double SystolicArray::utilization() const {
  const std::uint64_t capacity = macs_capacity();
  if (capacity == 0) return 0.0;
  return static_cast<double>(macs_) / static_cast<double>(capacity);
}

void SystolicArray::reset_counters() {
  cycles_ = 0;
  macs_ = 0;
}

}  // namespace edgemm::coproc
