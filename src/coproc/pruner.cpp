#include "coproc/pruner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"

namespace edgemm::coproc {

PruneOutcome ActAwarePruner::prune(std::span<const float> values, std::size_t k,
                                   double t, const PrunerConfig& config) {
  if (t <= 0.0) {
    throw std::invalid_argument("ActAwarePruner::prune: t must be > 0");
  }
  PruneOutcome out;

  // Top-k engine: k iterations of find-max over the comparator tree.
  out.kept = top_k_indices_by_magnitude(values, k);
  std::sort(out.kept.begin(), out.kept.end());  // address generator order

  // th-mask: max output and the count n for the Alg. 1 k-update.
  for (const float v : values) {
    out.max_abs = std::max(out.max_abs, std::fabs(v));
  }
  out.n_above_threshold = count_above_max_over_t(values, t);

  // Mask-and-aggregate + address generation.
  out.compacted.reserve(out.kept.size());
  out.row_addresses.reserve(out.kept.size());
  for (const std::size_t i : out.kept) {
    out.compacted.push_back(values[i]);
    out.row_addresses.push_back(config.base_address +
                                static_cast<std::uint64_t>(i) * config.row_pitch_bytes);
  }

  cycles_ += prune_cycles(out.kept.size());
  return out;
}

}  // namespace edgemm::coproc
