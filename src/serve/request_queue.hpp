// Pending-request queue feeding the serving engine.
#ifndef EDGEMM_SERVE_REQUEST_QUEUE_HPP
#define EDGEMM_SERVE_REQUEST_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "serve/request.hpp"

namespace edgemm::serve {

/// Pop order among waiting requests (EngineConfig::deadline_ordered_queue).
enum class QueueOrder : std::uint8_t {
  /// (arrival, id): earliest arrival first — the default, and the only
  /// order PR 1–5 engines ever saw.
  kArrival,
  /// Earliest-deadline-first among requests that have arrived; requests
  /// without a deadline (0) sort last, ties broken by (arrival, id).
  /// Requests still in flight toward the queue stay arrival-ordered, so
  /// a late short-deadline request can overtake only once it arrives.
  kDeadline,
};

const char* to_string(QueueOrder order);

/// Priority queue of pending requests. Ties always break by id so
/// replays are deterministic no matter the push order.
class RequestQueue {
 public:
  explicit RequestQueue(QueueOrder order = QueueOrder::kArrival)
      : order_(order) {}

  QueueOrder order() const { return order_; }

  void push(Request request);

  bool empty() const { return heap_.empty() && ready_.empty(); }
  std::size_t size() const { return heap_.size() + ready_.size(); }

  /// The request that would be popped next; throws std::out_of_range on
  /// an empty queue. Under kDeadline this reflects arrivals up to the
  /// last ready() call.
  const Request& front() const;

  /// Pops the next request; throws std::out_of_range on empty.
  Request pop();

  /// True when a request with arrival <= now is waiting. Under kDeadline
  /// this also migrates arrived requests into deadline order, which is
  /// why it is not const.
  bool ready(Cycle now);

  /// Pops the next request if one has arrived by `now`.
  std::optional<Request> pop_ready(Cycle now);

 private:
  struct Later {
    bool operator()(const Request& a, const Request& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.id > b.id;
    }
  };
  struct LaterDeadline {
    static Cycle effective(const Request& r) {
      return r.deadline == 0 ? std::numeric_limits<Cycle>::max() : r.deadline;
    }
    bool operator()(const Request& a, const Request& b) const {
      if (effective(a) != effective(b)) return effective(a) > effective(b);
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.id > b.id;
    }
  };

  void migrate(Cycle now);

  QueueOrder order_;
  /// Not-yet-popped requests in arrival order (all of them under
  /// kArrival; the not-yet-arrived ones under kDeadline).
  std::priority_queue<Request, std::vector<Request>, Later> heap_;
  /// Arrived requests in deadline order (kDeadline only).
  std::priority_queue<Request, std::vector<Request>, LaterDeadline> ready_;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_REQUEST_QUEUE_HPP
