// Arrival-ordered request queue feeding the serving engine.
#ifndef EDGEMM_SERVE_REQUEST_QUEUE_HPP
#define EDGEMM_SERVE_REQUEST_QUEUE_HPP

#include <cstddef>
#include <optional>
#include <queue>
#include <vector>

#include "serve/request.hpp"

namespace edgemm::serve {

/// Priority queue of pending requests, ordered by (arrival, id): earliest
/// arrival first, ties broken by id so replays are deterministic no
/// matter the push order.
class RequestQueue {
 public:
  void push(Request request);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// The request that would be popped next; throws std::out_of_range on
  /// an empty queue.
  const Request& front() const;

  /// Pops the earliest request; throws std::out_of_range on empty.
  Request pop();

  /// True when a request with arrival <= now is waiting.
  bool ready(Cycle now) const { return !empty() && front().arrival <= now; }

  /// Pops the earliest request if it has already arrived by `now`.
  std::optional<Request> pop_ready(Cycle now);

 private:
  struct Later {
    bool operator()(const Request& a, const Request& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.id > b.id;
    }
  };
  std::priority_queue<Request, std::vector<Request>, Later> heap_;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_REQUEST_QUEUE_HPP
