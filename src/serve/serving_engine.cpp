#include "serve/serving_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"

namespace edgemm::serve {

using core::GemmWork;
using core::Lane;

namespace {

/// EWMA weight for the online throughput/step-duration estimators.
constexpr double kEstimatorGain = 0.25;

}  // namespace

ServingEngine::ServingEngine(const core::ChipConfig& config,
                             std::vector<model::MllmConfig> models,
                             EngineConfig engine_config)
    : config_(config),
      models_(std::move(models)),
      engine_config_(std::move(engine_config)),
      local_(config_, core::ChipComposition::kHeterogeneous,
             engine_config_.replay_mode(), engine_config_.bandwidth_policy()),
      queue_(engine_config_.deadline_ordered_queue() ? QueueOrder::kDeadline
                                                     : QueueOrder::kArrival) {
  engine_config_.validate();
  if (models_.empty()) {
    throw std::invalid_argument("ServingEngine: no models to serve");
  }
  if (engine_config_.kv_capacity() > 0) {
    if (engine_config_.paged_kv()) {
      pages_.emplace(engine_config_.kv_capacity(),
                     engine_config_.kv_page_bytes());
    } else {
      kv_.emplace(engine_config_.kv_capacity());
    }
  }
  if (engine_config_.weight_residency() > 0) {
    // EngineConfig::validate() already guaranteed a residency-capable
    // planner; here the budget meets the chip: it must stay within the
    // modeled oversubscription of the physical CC scratchpad.
    if (engine_config_.weight_residency() >
        chip_weight_residency_capacity(config_,
                                       kMaxWeightResidencyOversubscription)) {
      throw std::invalid_argument(
          "ServingEngine: weight_residency_bytes exceeds "
          "kMaxWeightResidencyOversubscription x the chip's CC TCDM "
          "(size budgets with chip_weight_residency_capacity)");
    }
    residency_.emplace(engine_config_.weight_residency());
    if (engine_config_.prefill_planner().prefers_lane_affinity()) {
      local_.scheduler().set_affinity_chaining(Lane::kCcStage, true,
                                               engine_config_.lane_chain_limit());
    }
  }

  // Decode keep fraction per model: the task-proxy derivation when
  // enabled (§IV-A accuracy model), else the global constant. Layer
  // group bytes feed the residency pin granularity.
  for (const model::MllmConfig& m : models_) {
    if (engine_config_.task_proxy_pruning()) {
      keep_fraction_.push_back(
          derive_keep_fraction(m, *engine_config_.task_proxy_pruning()));
    } else {
      keep_fraction_.push_back(engine_config_.prune_keep_fraction());
    }
    layer_weight_bytes_.push_back(llm_layer_group_bytes(m, config_));
  }

  // Probe the decode traffic decomposition of every model once, on an
  // MC cluster. A step of batch B with contexts c_i moves
  //   shared + sum_i (request + kv_slope * c_i)
  // bytes: the batch-amortized weight fetch, the per-request activation
  // traffic, and the per-request KV stream. Solved from three probes —
  // batch 1 at two contexts (isolates the KV slope) and batch 2
  // (isolates the per-request share, since the weight fetch does not
  // grow with the batch). Used by the interval rebalancer to size the
  // MC side of the budget split without rebuilding op lists per tick.
  const core::ClusterTimingModel* probe =
      local_.scheduler().lane_clusters(Lane::kMcDecode).front();
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const model::MllmConfig& m = models_[i];
    auto step_bytes = [&](std::span<const std::size_t> contexts) {
      const auto ops = core::pruned_ops(model::build_decode_step(m, contexts),
                                        keep_fraction_[i]);
      return static_cast<double>(core::estimated_traffic_bytes(*probe, ops));
    };
    const std::array<std::size_t, 1> near{1};
    const std::array<std::size_t, 1> far{1025};
    const std::array<std::size_t, 2> pair{1, 1};
    const double batch1_near = step_bytes(near);
    const double batch1_far = step_bytes(far);
    const double batch2 = step_bytes(pair);
    const double slope = (batch1_far - batch1_near) / 1024.0;
    const double per_request_near = batch2 - batch1_near;
    decode_kv_slope_.push_back(slope);
    decode_request_bytes_.push_back(per_request_near - slope);
    decode_shared_bytes_.push_back(batch1_near - per_request_near);
  }

  queued_per_model_.assign(models_.size(), 0);
  inflight_per_model_.assign(models_.size(), 0);
  demand_decayed_.assign(models_.size(), 0.0);

  // Seed the per-model policy estimators analytically; each converges
  // onto its own model's measured values as that model's chunks retire
  // and decode steps it took part in complete.
  cc_bytes_per_cycle_est_.assign(
      models_.size(), std::max(config_.dram.bytes_per_cycle * 0.5, 1e-6));
  decode_step_cycles_est_.reserve(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const double step_bytes = decode_shared_bytes_[i] +
                              decode_request_bytes_[i] +
                              decode_kv_slope_[i] * 512.0;
    decode_step_cycles_est_.push_back(
        std::max(1.0, step_bytes / cc_bytes_per_cycle_est_[i]));
  }

  // Heterogeneous pair: the fat backend schedules on the SAME simulator
  // as the chip (one clock, overlapping lanes) and its KV return wire is
  // a ledgered ChipLink priced like the cluster layer's chip-to-chip
  // links. The throughput EWMA seeds at the spec's peak bandwidth and
  // converges onto measured fat-chunk throughput.
  if (engine_config_.fat_backend()) {
    fat_.emplace(local_.simulator(), *engine_config_.fat_backend(),
                 config_.clock_hz);
    kv_return_link_.emplace(config_.chip_link_bytes_per_cycle,
                            config_.chip_link_latency);
    fat_bytes_per_cycle_est_ =
        engine_config_.fat_backend()->memory_bandwidth / config_.clock_hz;
  }
}

ServingEngine::ServingEngine(const core::ChipConfig& config,
                             std::vector<model::MllmConfig> models,
                             ServingOptions options)
    : ServingEngine(config, std::move(models),
                    EngineConfig::from_legacy(options)) {}

void ServingEngine::set_completion_callback(CompletionCallback callback) {
  on_complete_ = std::move(callback);
}

Bytes ServingEngine::cc_job_bytes(const std::vector<GemmWork>& ops) const {
  return local_.estimated_job_bytes(Lane::kCcStage, ops);
}

ServingResult ServingEngine::run(std::vector<Request> requests) {
  if (ran_) {
    throw std::logic_error("ServingEngine::run: engine instances are one-shot");
  }
  ran_ = true;
  if (requests.empty()) {
    throw std::invalid_argument("ServingEngine::run: empty trace");
  }
  records_.reserve(requests.size());
  for (const Request& r : requests) {
    if (r.input_tokens == 0 || r.output_tokens == 0 || r.crops == 0) {
      throw std::invalid_argument("ServingEngine::run: zero-length request");
    }
    if (r.model >= models_.size()) {
      throw std::invalid_argument("ServingEngine::run: model index out of range");
    }
    if (kv_) {
      if (kv_footprint_bytes(r, models_[r.model]) > kv_->capacity()) {
        throw std::invalid_argument(
            "ServingEngine::run: request KV cache exceeds the KV capacity "
            "budget (it could never join a decode batch)");
      }
    }
    if (pages_) {
      if (r.prefix_tokens > r.input_tokens) {
        throw std::invalid_argument(
            "ServingEngine::run: prefix_tokens exceeds input_tokens");
      }
      if (kv_page_footprint(r, models_[r.model],
                            engine_config_.kv_page_bytes(),
                            engine_config_.kv_prefix_sharing()) >
          pages_->total_pages()) {
        throw std::invalid_argument(
            "ServingEngine::run: request KV pages exceed the paged KV "
            "budget (it could never grow to its last token)");
      }
    }
    if (!index_.emplace(r.id, records_.size()).second) {
      throw std::invalid_argument("ServingEngine::run: duplicate request id");
    }
    records_.push_back(RequestRecord{r});
  }
  total_ = records_.size();
  if (pages_) kv_paging_.assign(total_, KvPagingState{});
  if (kv_) kv_reserved_.assign(total_, 0);

  sim::Simulator& sim = local_.simulator();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    sim.schedule_at(records_[i].request.arrival, [this, i] { on_arrival(i); });
  }
  // PMC throttles are always armed (§IV-B); start from the default equal
  // partition and let the interval rebalancer shift it.
  local_.apply_equal_sharing();
  if (engine_config_.manage_bandwidth()) {
    const Cycle interval = engine_config_.rebalance_interval() > 0
                               ? engine_config_.rebalance_interval()
                               : config_.dma.throttle_interval;
    schedule_rebalance(interval);
  }
  sim.run();
  EDGEMM_ASSERT_MSG(completed_ + rejected_ == total_,
                    "ServingEngine: trace replay left unfinished requests");

  // --- Aggregate metrics ---------------------------------------------------
  ServingResult result;
  result.completed = completed_;
  result.rejected = rejected_;
  Cycle first_arrival = records_.front().request.arrival;
  Cycle last_finish = 0;
  std::size_t total_tokens = 0;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(completed_);
  for (const RequestRecord& rec : records_) {
    first_arrival = std::min(first_arrival, rec.request.arrival);
    if (rec.request.deadline > 0) {
      ++result.with_deadline;
      if (rec.deadline_met()) ++result.slo_attained;
    }
    if (!rec.done) continue;
    last_finish = std::max(last_finish, rec.finish);
    total_tokens += rec.tokens_generated;
    latencies_ms.push_back(rec.latency_ms(config_.clock_hz));
  }
  result.makespan = last_finish > first_arrival ? last_finish - first_arrival : 0;
  result.makespan_ms = cycles_to_ms(result.makespan, config_.clock_hz);
  result.p50_latency_ms = percentile(latencies_ms, 50.0);
  result.p95_latency_ms = percentile(latencies_ms, 95.0);
  result.p99_latency_ms = percentile(latencies_ms, 99.0);
  double sum = 0.0;
  for (const double v : latencies_ms) sum += v;
  result.mean_latency_ms =
      latencies_ms.empty() ? 0.0
                           : sum / static_cast<double>(latencies_ms.size());
  result.tokens_per_second =
      static_cast<double>(total_tokens) /
      cycles_to_seconds(std::max<Cycle>(result.makespan, 1), config_.clock_hz);
  result.dram_utilization = local_.memory_utilization();
  result.decode_steps = decode_steps_;
  result.mean_decode_batch =
      decode_steps_ > 0 ? static_cast<double>(batch_occupancy_sum_) /
                              static_cast<double>(decode_steps_)
                        : 0.0;
  result.peak_queue_depth = peak_queue_depth_;
  result.rebalances = rebalances_;
  result.slo_attainment =
      result.with_deadline > 0
          ? static_cast<double>(result.slo_attained) /
                static_cast<double>(result.with_deadline)
          : 1.0;
  result.prefill_jobs = local_.dispatched(Lane::kCcStage);
  result.max_cc_queue_delay_ms = cycles_to_ms(
      local_.max_queue_wait(Lane::kCcStage), config_.clock_hz);
  result.kv_deferrals = kv_ ? kv_->deferrals() : 0;
  result.peak_decode_batch = peak_decode_batch_;
  if (kv_) result.peak_kv_reserved_bytes = kv_->peak_reserved();
  if (pages_) {
    // Drained-engine invariant, the page analogue of the pin-drain
    // assert below: every page allocated over the replay was freed —
    // none resident, none stranded in DRAM, no preempted request still
    // awaiting refill.
    EDGEMM_ASSERT_MSG(pages_->holders() == 0 && pages_->resident_pages() == 0 &&
                          pages_->swapped_pages() == 0 && kv_swapped_.empty(),
                      "ServingEngine: KV pages leaked past the replay");
    result.kv_deferrals = pages_->deferrals();
    result.kv_pages_allocated = pages_->pages_allocated();
    result.kv_pages_freed = pages_->pages_freed();
    result.kv_shared_attaches = pages_->shared_attaches();
    result.kv_shared_pages_saved = pages_->shared_pages_saved();
    result.kv_cow_forks = kv_cow_forks_;
    result.kv_pages_swapped_out = pages_->pages_swapped_out();
    result.kv_pages_swapped_in = pages_->pages_swapped_in();
    result.kv_swap_refetch_bytes = pages_->swap_refetch_bytes();
    result.kv_swap_preemptions = pages_->preemptions();
    result.peak_kv_reserved_bytes = pages_->peak_resident_bytes();
  }
  result.cc_weight_fetch_bytes = cc_weight_fetched_;
  result.cc_weight_bytes_saved = cc_weight_saved_;
  result.rider_refetch_bytes = rider_refetch_bytes_;
  result.placement_denials = placement_denials_;
  if (residency_) {
    // Pins kept warm by the placement policy legitimately outlive their
    // last rider; flush them now that the trace is drained, THEN assert
    // no LIVE attach leaked past the replay (every attach must have
    // detached on some exit path — prefill retirement, rejection, any
    // future early-drop).
    result.placement_evictions = residency_->idle_evictions();
    residency_->evict_all_idle();
    EDGEMM_ASSERT_MSG(residency_->holders() == 0 && residency_->pinned() == 0,
                      "ServingEngine: weight pins leaked past the replay");
    result.weight_pins = residency_->pins();
    result.weight_pin_fallbacks = residency_->fallbacks();
    result.weight_shared_attaches = residency_->shared_attaches();
    result.weight_warm_attaches = residency_->warm_attaches();
    result.peak_pinned_bytes = residency_->peak_pinned();
  }
  result.offloaded_requests = offloaded_requests_;
  result.offloaded_chunks = offloaded_chunks_;
  if (fat_) {
    result.fat_bytes_moved = fat_->bytes_moved();
    result.fat_kernel_launches = fat_->kernel_launches();
    result.fat_busy_fraction =
        result.makespan > 0
            ? static_cast<double>(fat_->busy_cycles(Lane::kCcStage)) /
                  static_cast<double>(result.makespan)
            : 0.0;
  }
  if (kv_return_link_) {
    // Every return transfer schedules its landing event, so the drained
    // simulator's clock sits at or past the last arrival: in_flight must
    // probe to zero and sent == landed + in_flight holds exactly.
    const Cycle probe_at = local_.simulator().now();
    result.kv_return_transfers = kv_return_link_->transfers().size();
    result.kv_return_bytes_sent = kv_return_link_->bytes_sent_by(probe_at);
    result.kv_return_bytes_landed = kv_return_link_->bytes_landed_by(probe_at);
    result.kv_return_bytes_in_flight =
        kv_return_link_->bytes_in_flight_at(probe_at);
    result.kv_return_max_queue_ms =
        cycles_to_ms(kv_return_link_->max_queue_wait(), config_.clock_hz);
  }
  result.kv_swap_dma_bytes = kv_swap_dma_bytes_;
  // Quality ledger: what the QualityPolicy cost. The accuracy proxy is
  // priced per COMPLETED request at the fraction it finished at (memoized
  // per (model, fraction) — zero proxy evaluations when nothing was ever
  // degraded, since keep >= the static fraction prices as exact under
  // keep >= 1 or reuses the decode-side derivation's agreement).
  result.quality_downgrades = quality_downgrades_;
  result.quality_restores = quality_restores_;
  result.tokens_at_degraded_quality = tokens_degraded_;
  {
    double acc_sum = 0.0;
    double acc_min = 1.0;
    std::size_t done_count = 0;
    for (const RequestRecord& rec : records_) {
      if (!rec.done) continue;
      const double acc =
          accuracy_for(rec.request.model, rec.keep_fraction_served);
      acc_sum += acc;
      acc_min = std::min(acc_min, acc);
      ++done_count;
    }
    result.accuracy_proxy_mean =
        done_count > 0 ? acc_sum / static_cast<double>(done_count) : 1.0;
    result.accuracy_proxy_min = done_count > 0 ? acc_min : 1.0;
  }
  return result;
}

OffloadTarget ServingEngine::judge_offload(std::size_t index,
                                           std::size_t chunk) {
  if (!fat_) return OffloadTarget::kLocal;  // nowhere to offload to
  const Request& r = records_[index].request;
  const PrefillPlan& plan = plans_.at(index);
  OffloadContext ctx;
  ctx.phase = engine_config_.phase();
  ctx.input_tokens = r.input_tokens;
  ctx.crops = r.crops;
  ctx.chunk = chunk;
  ctx.chunk_count = plan.chunk_tokens.size();
  ctx.chunk_tokens = plan.chunk_tokens[chunk];
  ctx.model = r.model;
  ctx.local_queued = local_.queued(Lane::kCcStage);
  ctx.fat_queued = fat_->queued(Lane::kCcStage);
  ctx.local_bytes_per_cycle_est = cc_bytes_per_cycle_est_[r.model];
  ctx.fat_bytes_per_cycle_est = fat_bytes_per_cycle_est_;
  return engine_config_.offload_policy().place_chunk(r, ctx);
}

void ServingEngine::refresh_decayed_demand() {
  // Relax every model's EWMA toward its live demand over the elapsed sim
  // time, BEFORE the caller mutates the live counts — the decayed signal
  // remembers what demand looked like across the gap, not after it.
  const Cycle now = local_.simulator().now();
  if (now == demand_decayed_at_) return;
  const double tau = engine_config_.demand_decay_tau_s() *
                     static_cast<double>(config_.clock_hz);
  const double alpha =
      std::exp(-static_cast<double>(now - demand_decayed_at_) / tau);
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const double live =
        static_cast<double>(queued_per_model_[m] + inflight_per_model_[m]);
    demand_decayed_[m] = live + (demand_decayed_[m] - live) * alpha;
  }
  demand_decayed_at_ = now;
}

void ServingEngine::on_arrival(std::size_t index) {
  refresh_decayed_demand();
  queue_.push(records_[index].request);
  ++queued_per_model_[records_[index].request.model];
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  pump_admission();
}

ServingEngine::PrefillPlan& ServingEngine::plan_for(std::size_t index) {
  const auto it = plans_.find(index);
  if (it != plans_.end()) return it->second;

  const Request& r = records_[index].request;
  const std::vector<std::size_t> chunk_tokens =
      engine_config_.prefill_planner().plan(r);
  std::size_t planned = 0;
  for (const std::size_t tokens : chunk_tokens) planned += tokens;
  if (chunk_tokens.empty() || planned != r.input_tokens ||
      std::find(chunk_tokens.begin(), chunk_tokens.end(), 0u) !=
          chunk_tokens.end()) {
    throw std::logic_error(
        "ServingEngine: PrefillPlanner returned an invalid plan (chunks must "
        "be positive and sum to input_tokens)");
  }

  PrefillPlan plan;
  plan.chunk_tokens = chunk_tokens;
  plan.built_keep = prefill_keep(index);
  for (std::size_t c = 0; c < chunk_tokens.size(); ++c) {
    std::vector<GemmWork> ops =
        build_chunk_ops(r, plan, c, kNoResidentCap, plan.built_keep);
    const Bytes bytes = cc_job_bytes(ops);
    const Bytes full =
        plan.built_keep < 1.0
            ? cc_job_bytes(build_chunk_ops(r, plan, c, kNoResidentCap, 1.0))
            : bytes;
    plan.jobs.push_back(std::move(ops));
    plan.job_bytes.push_back(bytes);
    plan.job_full_bytes.push_back(full);
    plan.total_bytes += bytes;
    plan.total_full_bytes += full;
  }
  return plans_.emplace(index, std::move(plan)).first->second;
}

void ServingEngine::rebuild_chunk(std::size_t index, PrefillPlan& plan,
                                  std::size_t chunk) {
  const Request& r = records_[index].request;
  std::vector<GemmWork> ops =
      build_chunk_ops(r, plan, chunk, kNoResidentCap, plan.built_keep);
  const Bytes bytes = cc_job_bytes(ops);
  const Bytes full =
      plan.built_keep < 1.0
          ? cc_job_bytes(build_chunk_ops(r, plan, chunk, kNoResidentCap, 1.0))
          : bytes;
  plan.total_bytes -= plan.job_bytes[chunk];
  plan.total_bytes += bytes;
  plan.total_full_bytes -= plan.job_full_bytes[chunk];
  plan.total_full_bytes += full;
  plan.jobs[chunk] = std::move(ops);
  plan.job_bytes[chunk] = bytes;
  plan.job_full_bytes[chunk] = full;
}

double ServingEngine::prefill_keep(std::size_t index) const {
  // The static engine never pruned prefill (only decode), so prefill
  // shapes only shrink when a request is actively DEGRADED below its
  // static fraction — a fraction at or above it streams full weights.
  const RequestRecord& rec = records_[index];
  const double base = keep_fraction_[rec.request.model];
  return rec.keep_fraction_served < base ? rec.keep_fraction_served : 1.0;
}

double ServingEngine::judge_quality(std::size_t index) {
  const RequestRecord& rec = records_[index];
  const Request& r = rec.request;
  const double base = keep_fraction_[r.model];
  const double cc_est = cc_bytes_per_cycle_est_[r.model];
  QualityContext ctx;
  ctx.now = local_.simulator().now();
  ctx.queue_depth = queue_.size();
  ctx.inflight = inflight_;
  ctx.active_batch = active_.size();
  ctx.deadline = r.deadline;
  ctx.slo_misses = slo_misses_;
  ctx.base_keep = base;
  ctx.current_keep = rec.keep_fraction_served;
  ctx.min_keep = engine_config_.quality_min_keep();
  ctx.max_keep = engine_config_.quality_max_keep();
  // Estimated finish mirrors admission_context, restricted to THIS
  // request's remaining work — and in full-precision-equivalent bytes,
  // so the pressure signal is about load, not about how degraded the
  // backlog already is.
  double remaining = std::max(cc_pending_full_bytes_, 0.0) / cc_est;
  if (engine_config_.phase() != EnginePhase::kDecodeOnly) {
    const auto it = plans_.find(index);
    if (it != plans_.end()) {
      const PrefillPlan& plan = it->second;
      Bytes prefill_left = 0;
      for (std::size_t c = plan.next; c < plan.job_full_bytes.size(); ++c) {
        prefill_left += plan.job_full_bytes[c];
      }
      remaining += static_cast<double>(prefill_left) / cc_est;
    }
  }
  if (engine_config_.phase() != EnginePhase::kPrefillOnly) {
    remaining +=
        static_cast<double>(r.output_tokens - rec.tokens_generated) *
        decode_step_cycles_est_[r.model];
  }
  ctx.estimated_finish = ctx.now + static_cast<Cycle>(remaining);
  const double raw = engine_config_.quality().keep_fraction(r, ctx);
  if (!std::isfinite(raw)) {
    throw std::logic_error(
        "ServingEngine: QualityPolicy returned a non-finite keep fraction");
  }
  // The effective band is the configured one widened to include the
  // static fraction, so StaticQuality always passes through unclamped.
  const double lo = std::min(ctx.min_keep, base);
  const double hi = std::max(ctx.max_keep, base);
  return std::clamp(raw, lo, hi);
}

void ServingEngine::apply_quality(std::size_t index, double served) {
  RequestRecord& rec = records_[index];
  const double base = keep_fraction_[rec.request.model];
  const bool was_degraded = rec.keep_fraction_served < base;
  const bool now_degraded = served < base;
  if (!was_degraded && now_degraded) ++quality_downgrades_;
  if (was_degraded && !now_degraded) ++quality_restores_;
  rec.keep_fraction_served = served;
  const auto it = plans_.find(index);
  if (it == plans_.end()) return;  // decode-only tier: no prefill to reshape
  PrefillPlan& plan = it->second;
  const double want = prefill_keep(index);
  if (plan.built_keep == want) return;
  plan.built_keep = want;
  // Reshape only the unsubmitted tail; in-flight and retired chunks
  // already streamed at their judged fraction. Callers own the
  // cc-pending delta (the plan's bytes may not be pending yet).
  for (std::size_t c = plan.next; c < plan.jobs.size(); ++c) {
    rebuild_chunk(index, plan, c);
  }
}

double ServingEngine::accuracy_for(std::size_t model, double keep) {
  if (keep >= 1.0) return 1.0;  // nothing pruned, agreement exact
  const std::uint64_t key =
      (static_cast<std::uint64_t>(model) << 32) ^
      static_cast<std::uint64_t>(std::llround(keep * 1048576.0));
  const auto it = accuracy_memo_.find(key);
  if (it != accuracy_memo_.end()) return it->second;
  const TaskProxyPruningOptions options =
      engine_config_.task_proxy_pruning() ? *engine_config_.task_proxy_pruning()
                                          : TaskProxyPruningOptions{};
  const double acc = quality_accuracy_proxy(models_[model], keep, options);
  accuracy_memo_.emplace(key, acc);
  return acc;
}

std::vector<GemmWork> ServingEngine::build_chunk_ops(
    const Request& r, const PrefillPlan& plan, std::size_t chunk,
    std::size_t resident_cap, double ffn_keep) const {
  const model::MllmConfig& m = models_[r.model];
  std::size_t start = 0;
  for (std::size_t c = 0; c < chunk; ++c) start += plan.chunk_tokens[c];
  // The first chunk carries the encoder + projector ops in front of its
  // prefill slice (and always fetches — it is what fills the pin).
  std::vector<GemmWork> ops =
      chunk == 0 ? model::build_encoder_ops(m, r.crops) : std::vector<GemmWork>{};
  // resident_cap below the pinned layer count builds a barrier re-fetch:
  // a rider dispatched before the pin's fill landed streams the weights
  // of every not-yet-landed group itself (cap 0 = the whole pin).
  const std::size_t resident =
      plan.resident_layers > 0 && chunk >= plan.first_resident_chunk
          ? std::min(plan.resident_layers, resident_cap)
          : 0;
  // Pinned layer groups keep full FFN shapes whatever the quality seam
  // judged (full_keep_layers): the pin holds — and its fill/barrier
  // byte math assumes — the FULL weights, so a degraded request's
  // pruning only shrinks the layers it actually streams.
  const auto body = model::build_prefill_chunk(
      m, start, plan.chunk_tokens[chunk], r.input_tokens, resident, ffn_keep,
      /*full_keep_layers=*/plan.resident_layers);
  ops.insert(ops.end(), body.begin(), body.end());
  return model::aggregate_ops(ops);
}

PlacementContext ServingEngine::placement_context() const {
  PlacementContext ctx;
  ctx.capacity = residency_->capacity();
  ctx.pinned_bytes = residency_->pinned();
  ctx.idle_pinned_bytes = residency_->idle_pinned_bytes();
  ctx.models.reserve(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelDemand d;
    d.queued = queued_per_model_[m];
    d.inflight = inflight_per_model_[m];
    const PinKey key = static_cast<PinKey>(m);
    d.pin_refcount = residency_->refcount(key);
    d.resident_layers = residency_->resident_layers(key);
    d.idle_resident = d.resident_layers > 0 && d.pin_refcount == 0;
    d.pinned_bytes =
        static_cast<Bytes>(d.resident_layers) * layer_weight_bytes_[m];
    d.layer_group_bytes = layer_weight_bytes_[m];
    d.total_layers = models_[m].llm.layers;
    d.demand_decayed = demand_decayed_[m];
    d.cc_bytes_per_cycle_est = cc_bytes_per_cycle_est_[m];
    d.decode_step_cycles_est = decode_step_cycles_est_[m];
    ctx.models.push_back(d);
  }
  return ctx;
}

bool ServingEngine::maybe_pin_weights(std::size_t index,
                                      std::size_t next_chunk) {
  if (!residency_) return false;
  PrefillPlan& plan = plans_.at(index);
  if (plan.pin_attached) return false;  // already riding a pin
  const Request& r = records_[index].request;
  // Shared mode keys the pin by MODEL: all in-flight requests of the
  // model refcount one pin and the budget is charged once. Per-request
  // mode keys by request id — unique per request, so every attach is a
  // fresh pin (the PR 3 behavior).
  const bool shared_mode = engine_config_.share_weight_pins();
  const PinKey key =
      shared_mode ? static_cast<PinKey>(r.model) : static_cast<PinKey>(r.id);
  // A brand-new pin is filled by next_chunk's fetch, so only the chunks
  // AFTER it ride it — and pinning is pointless with no tail left. An
  // attach to an existing pin — live, or kept warm by the placement
  // policy — finds the weights already on chip and starts saving on
  // next_chunk itself.
  const bool rides_existing = residency_->resident_layers(key) > 0;
  const std::size_t first_resident =
      rides_existing ? next_chunk : next_chunk + 1;
  if (first_resident >= plan.jobs.size()) return false;
  std::size_t max_attach = models_[r.model].llm.layers;
  if (!rides_existing && shared_mode) {
    // Residency-aware placement guards every budget-charging attach
    // (riders are never guarded: sharing resident bytes is free). A
    // denied model keeps re-fetching; an allowed one under budget
    // pressure may first reclaim idle kept-warm pins of colder models.
    refresh_decayed_demand();
    const PlacementContext ctx = placement_context();
    if (!engine_config_.placement().may_acquire(r.model, ctx)) {
      // One count per denied REQUEST, not per retry: the late-pin seam
      // re-asks at every remaining chunk.
      if (!plan.placement_denied) {
        plan.placement_denied = true;
        ++placement_denials_;
      }
      return false;
    }
    // The policy also sizes the grant: whole-set policies ask for every
    // layer group, fractional placement grants the k hottest groups that
    // fit and leaves the rest of the budget to colder models.
    max_attach = std::min(
        engine_config_.placement().acquire_target_layers(r.model, ctx),
        models_[r.model].llm.layers);
    if (max_attach == 0) {
      if (!plan.placement_denied) {
        plan.placement_denied = true;
        ++placement_denials_;
      }
      return false;
    }
    const Bytes want =
        static_cast<Bytes>(max_attach) * layer_weight_bytes_[r.model];
    if (residency_->available() < want) {
      const Bytes needed = want - residency_->available();
      for (const std::size_t victim :
           engine_config_.placement().evict_victims(r.model, needed, ctx)) {
        // Only idle pins are evictable; live riders are never torn down.
        if (victim < models_.size() && victim != r.model &&
            ctx.models[victim].idle_resident) {
          residency_->evict_idle(static_cast<PinKey>(victim));
        }
      }
    }
  }
  const auto attach = residency_->attach_layers(
      key, layer_weight_bytes_[r.model], max_attach);
  if (attach.layers == 0) return false;  // budget contended: keep re-fetching
  plan.pin_attached = true;
  plan.pin_key = key;
  plan.pin_owner = !attach.shared;
  if (plan.pin_owner) plan.fill_chunk = next_chunk;
  plan.resident_layers = attach.layers;
  plan.first_resident_chunk = first_resident;
  records_[index].weight_pinned_layers = attach.layers;
  // Rebuild the unsubmitted tail: pinned layer groups drop their weight
  // stream, so the jobs (and the CC backlog accounting) shrink. A
  // degraded request also rebuilds the not-yet-submitted fill chunk
  // itself: its pinned layers must stream FULL weights (that is what
  // lands in the pin), which the pre-pin jobs pruned.
  const std::size_t rebuild_from =
      plan.built_keep < 1.0 ? next_chunk : first_resident;
  for (std::size_t c = rebuild_from; c < plan.jobs.size(); ++c) {
    rebuild_chunk(index, plan, c);
  }
  return true;
}

void ServingEngine::drop_plan(std::size_t index) {
  // The single exit point for prefill plans: EVERY path a request leaves
  // the prefill stage through (retirement, rejection of a judged-and-
  // planned queue head, any future preemption) funnels through here, so
  // an attached pin can never outlive its request.
  const auto it = plans_.find(index);
  if (it == plans_.end()) return;
  if (it->second.pin_attached) {
    bool keep_resident = false;
    if (engine_config_.share_weight_pins() &&
        residency_->refcount(it->second.pin_key) == 1) {
      // Last rider detaching: the placement policy decides whether the
      // model's bytes stay on chip as an idle (warm) pin — free rides
      // for its next request — or leave now. Out-of-favor idle pins are
      // reclaimed later by evict_victims when a hotter model needs the
      // room. Per-request keys are never reused, so nothing to retain.
      refresh_decayed_demand();
      keep_resident = engine_config_.placement().retain_idle(
          records_[index].request.model, placement_context());
    }
    residency_->detach(it->second.pin_key, keep_resident);
  }
  plans_.erase(it);
}

AdmissionContext ServingEngine::admission_context(std::size_t index) {
  const Request& r = records_[index].request;
  // The candidate is judged against ITS model's estimators: a heavy
  // co-tenant's slow decode steps never inflate a light model's
  // estimated_service (the multi-model-zoo SLO fix).
  const double cc_est = cc_bytes_per_cycle_est_[r.model];
  AdmissionContext ctx;
  ctx.now = local_.simulator().now();
  ctx.inflight = inflight_;
  ctx.active_batch = active_.size();
  ctx.queue_depth = queue_.size();
  // Backlog and service are priced in FULL-precision-equivalent bytes —
  // the estimator's unit (see the on_chunk_done fold): a degraded
  // backlog must not look like a faster lane to the admission judgment.
  // Identical to the actual-bytes ledger when nothing is degraded.
  ctx.estimated_queue_delay =
      static_cast<Cycle>(std::max(cc_pending_full_bytes_, 0.0) / cc_est);
  // A phase-split engine only does the work its tier owns, so the SLO
  // judgment only charges that share: a decode chip never plans (or
  // pays for) a prefill, a prefill chip retires at prefill end.
  double prefill_cycles = 0.0;
  if (engine_config_.phase() != EnginePhase::kDecodeOnly) {
    const PrefillPlan& plan = plan_for(index);
    prefill_cycles = static_cast<double>(plan.total_full_bytes) / cc_est;
  }
  double decode_cycles = 0.0;
  if (engine_config_.phase() != EnginePhase::kPrefillOnly) {
    decode_cycles = static_cast<double>(r.output_tokens) *
                    decode_step_cycles_est_[r.model];
  }
  ctx.estimated_service = static_cast<Cycle>(prefill_cycles + decode_cycles);
  return ctx;
}

void ServingEngine::pump_admission() {
  sim::Simulator& sim = local_.simulator();
  refresh_decayed_demand();
  while (queue_.ready(sim.now())) {
    const std::size_t index = index_.at(queue_.front().id);
    AdmissionVerdict verdict = engine_config_.scheduler().admit(
        records_[index].request, admission_context(index));
    // KV hand-off contract (disaggregated decode tier): the request's
    // finished KV already crossed the chip link — rejecting it here
    // would strand migrated bytes a prefill chip and the wire paid for.
    // A decode tier therefore never rejects; backpressure is expressed
    // by deferring until the hand-off reservation below fits.
    if (engine_config_.phase() == EnginePhase::kDecodeOnly &&
        verdict == AdmissionVerdict::kReject) {
      verdict = AdmissionVerdict::kAdmit;
    }
    // Progress guarantee: a policy may not starve an idle chip.
    if (verdict == AdmissionVerdict::kDefer && inflight_ == 0) {
      verdict = AdmissionVerdict::kAdmit;
    }
    if (verdict == AdmissionVerdict::kDefer) break;
    if (verdict == AdmissionVerdict::kAdmit &&
        engine_config_.phase() == EnginePhase::kDecodeOnly &&
        (kv_ || pages_)) {
      // Hand-off reservation: the migrated KV's bytes are charged the
      // moment the decode tier accepts the request, so the decode batch
      // can never turn it away later. If it does not fit yet, the whole
      // admission defers until a retirement frees KV.
      if (!kv_join_reserve(index)) {
        if (inflight_ > 0) break;
        // An idle decode chip holds no KV (only admitted requests hold
        // any here), and per-request footprints were validated against
        // the budget — an empty ledger must fit one request.
        EDGEMM_ASSERT_MSG(
            false, "ServingEngine: hand-off reservation failed on an idle chip");
      }
    }
    const Request r = queue_.pop();
    --queued_per_model_[r.model];
    RequestRecord& rec = records_[index];
    if (verdict == AdmissionVerdict::kReject) {
      rec.rejected = true;
      ++rejected_;
      drop_plan(index);
      continue;
    }

    ++inflight_;
    ++inflight_per_model_[r.model];
    rec.admitted = sim.now();
    rec.prune_keep_fraction = keep_fraction_[r.model];
    // Admission-time quality judgment: the request enters at its static
    // fraction and the QualityPolicy may immediately degrade it under
    // pressure (the plan below is then built at the judged fraction —
    // apply_quality reshapes it before its bytes go pending).
    rec.keep_fraction_served = keep_fraction_[r.model];
    apply_quality(index, judge_quality(index));
    if (engine_config_.phase() == EnginePhase::kDecodeOnly) {
      // Disaggregated decode tier: the KV cache arrived finished from a
      // prefill chip (the request's arrival IS the KV landing), so the
      // request joins the decode batch with no CC-lane work at all.
      rec.prefill_start = sim.now();
      on_prefill_done(index);
      continue;
    }
    PrefillPlan& plan = plan_for(index);
    rec.prefill_chunks = plan.jobs.size();
    // Chunk 0's backend is judged HERE so pinning can be skipped for a
    // fat start: EdgeMM weight residency means nothing to a backend
    // that re-streams weights per launch. Without a fat backend the
    // judgment is kLocal without consulting the policy (byte-identical
    // to the pre-seam engine).
    plan.chunk0_target =
        judge_offload(index, /*chunk=*/0) == OffloadTarget::kFat ? 2 : 1;
    if (plan.chunk0_target != 2) {
      // Weight-resident chunk chaining: attach to the model's shared pin
      // (its weights are already on chip — every chunk rides), or pin the
      // layer groups fresh before chunk 0 fetches them so chunks 1.. skip
      // their weight DMA. A failed pin just re-fetches.
      maybe_pin_weights(index, /*next_chunk=*/0);
    }
    cc_pending_bytes_ += static_cast<double>(plan.total_bytes);
    cc_pending_full_bytes_ += static_cast<double>(plan.total_full_bytes);
    submit_next_chunk(index);
  }
}

void ServingEngine::submit_next_chunk(std::size_t index) {
  PrefillPlan& plan = plans_.at(index);
  // Per-chunk quality re-judgment: pressure may have moved since the
  // last chunk, and the chunk about to be submitted should stream at
  // the CURRENT fraction. The plan's bytes are already in the CC
  // backlog, so this call owns the pending-accumulator deltas.
  {
    const double served = judge_quality(index);
    if (served != records_[index].keep_fraction_served) {
      const double before = static_cast<double>(plan.total_bytes);
      const double before_full = static_cast<double>(plan.total_full_bytes);
      apply_quality(index, served);
      cc_pending_bytes_ += static_cast<double>(plan.total_bytes) - before;
      cc_pending_full_bytes_ +=
          static_cast<double>(plan.total_full_bytes) - before_full;
    }
  }
  const std::size_t chunk = plan.next++;
  const bool first = chunk == 0;
  // Backend judgment: chunk 0 consumes its admission-time verdict (made
  // before pinning), later chunks are judged fresh at submission — the
  // PrefillPlanner's chunk boundaries are the offload split points. A
  // pinned request's chunks always stay local: its weights are already
  // on the EdgeMM chip and the owner's fill fetch must actually land
  // there, not in the GPU's GDDR.
  bool to_fat = false;
  if (fat_) {
    to_fat = first ? plan.chunk0_target == 2
                   : judge_offload(index, chunk) == OffloadTarget::kFat;
    if (plan.pin_attached) to_fat = false;
  }
  // Late pin: budget freed since admission (a competitor's prefill
  // retired), or a same-model pin appearing, can still cover this
  // request's remaining chunks — a fresh pin is filled by this chunk's
  // fetch and the tail rides it; an attach to an existing pin rides from
  // this chunk on. The admission attempt covers chunk 0, so only re-try
  // from chunk 1 on. Requests that offloaded any chunk never pin: their
  // prefill straddles backends, and holding TCDM bytes for a request
  // that may leave again wastes the budget co-tenants want.
  if (chunk > 0 && residency_ && !plan.pin_attached && !to_fat &&
      plan.offloaded_chunks == 0) {
    const Bytes before = plan.total_bytes;
    const Bytes before_full = plan.total_full_bytes;
    if (maybe_pin_weights(index, chunk)) {
      cc_pending_bytes_ -= static_cast<double>(before - plan.total_bytes);
      cc_pending_full_bytes_ -=
          static_cast<double>(before_full - plan.total_full_bytes);
    }
  }
  // Fill barrier: a rider chunk dispatched before the pin owner's fill
  // fetch retired would skip DMA for bytes that are not on chip yet.
  // With the barrier on it re-fetches the not-yet-landed groups instead
  // (this chunk only — the rider's later chunks ride normally once the
  // fill lands). Pin owners are exempt by construction: their chunks
  // after the fill chunk are ordered behind it on the same request.
  if (engine_config_.rider_fill_barrier() && residency_ &&
      plan.pin_attached && !plan.pin_owner &&
      chunk >= plan.first_resident_chunk &&
      !residency_->filled(plan.pin_key)) {
    // Pin-granular barrier: the rider re-fetches the WHOLE pin until the
    // owner's fill retires (resident cap 0). Per-group landing caps the
    // re-fetch at the groups whose fill has not landed yet — and the
    // rider's own re-fetch lands them when this chunk retires, so later
    // rider chunks (of any request) stop re-fetching without waiting for
    // the owner. Under the serial-FIFO CC lane the cap never bites (the
    // owner's fill is enqueued before any rider can attach, so it
    // retires — marking the pin filled — before any re-fetch retires);
    // it is a correctness bound for schedulers that can retire a rider's
    // re-fetch inside the fill window.
    const std::size_t landed = engine_config_.per_group_fill_landing()
                                   ? residency_->landed_layers(plan.pin_key)
                                   : 0;
    const auto resident_weight_bytes = [this](const std::vector<GemmWork>& ops) {
      Bytes total = 0;
      for (const GemmWork& op : ops) {
        if (op.weights_resident && op.weight_elem_bytes_override == 0) {
          total += static_cast<Bytes>(op.k) * op.n * config_.cc_elem_bytes;
        }
      }
      return total;
    };
    const Bytes pinned_resident = resident_weight_bytes(plan.jobs[chunk]);
    if (pinned_resident > 0 && landed < plan.resident_layers) {
      std::vector<GemmWork> ops =
          build_chunk_ops(records_[index].request, plan, chunk,
                          /*resident_cap=*/landed, plan.built_keep);
      const Bytes refetch = pinned_resident - resident_weight_bytes(ops);
      if (refetch > 0) {
        rider_refetch_bytes_ += refetch;
        const Bytes bytes = cc_job_bytes(ops);
        const Bytes full =
            plan.built_keep < 1.0
                ? cc_job_bytes(build_chunk_ops(records_[index].request, plan,
                                               chunk, landed, 1.0))
                : bytes;
        cc_pending_bytes_ += static_cast<double>(bytes - plan.job_bytes[chunk]);
        cc_pending_full_bytes_ += static_cast<double>(full) -
                                  static_cast<double>(plan.job_full_bytes[chunk]);
        plan.total_bytes += bytes - plan.job_bytes[chunk];
        plan.total_full_bytes -= plan.job_full_bytes[chunk];
        plan.total_full_bytes += full;
        plan.job_full_bytes[chunk] = full;
        plan.jobs[chunk] = std::move(ops);
        plan.job_bytes[chunk] = bytes;
        if (engine_config_.per_group_fill_landing()) {
          plan.lands_to = plan.resident_layers;
        }
      }
    }
  }
  if (to_fat) {
    // Offloaded chunk: the job leaves the CC backlog (its bytes will
    // transit the GPU's GDDR, not the chip's DRAM) and runs on the fat
    // backend's prefill stream in FIFO order. The fat cost model prices
    // it fresh — weights re-streamed per launch, no residency flags
    // honored — and its throughput EWMA folds on retirement against
    // those fat-model bytes.
    cc_pending_bytes_ -= static_cast<double>(plan.job_bytes[chunk]);
    cc_pending_full_bytes_ -= static_cast<double>(plan.job_full_bytes[chunk]);
    plan.current_fat = true;
    plan.current_fat_bytes =
        fat_->estimated_job_bytes(Lane::kCcStage, plan.jobs[chunk]);
    ++plan.offloaded_chunks;
    plan.offload_tokens += plan.chunk_tokens[chunk];
    ++offloaded_chunks_;
    if (plan.offloaded_chunks == 1) ++offloaded_requests_;
    records_[index].offloaded_chunks = plan.offloaded_chunks;
    fat_->submit(
        Lane::kCcStage, std::move(plan.jobs[chunk]),
        [this, index] { on_chunk_done(index); },
        [this, index, first] {
          const Cycle now = local_.simulator().now();
          plans_.at(index).chunk_started = now;
          if (first) records_[index].prefill_start = now;
        });
    return;
  }
  // Weight-traffic ledger (KV-stream ops carry context, not weights,
  // and are excluded): resident ops are the DMA residency avoided.
  for (const GemmWork& op : plan.jobs[chunk]) {
    if (op.weight_elem_bytes_override != 0) continue;
    const Bytes bytes =
        static_cast<Bytes>(op.k) * op.n * config_.cc_elem_bytes;
    if (op.weights_resident) {
      cc_weight_saved_ += bytes;
    } else {
      cc_weight_fetched_ += bytes;
    }
  }
  // Only a request actually holding a pin (fresh or shared) gets an
  // affinity key: chaining an unpinned request's chunks would
  // re-introduce head-of-line blocking without saving a byte. Keyed per
  // REQUEST even when the pin is shared — chaining all of a model's
  // riders back-to-back would serialize the lane. (Inert unless the
  // planner enabled lane chaining; the +1 keeps request id 0 distinct
  // from "none".)
  const std::uint64_t affinity =
      plan.pin_attached ? records_[index].request.id + 1 : 0;
  local_.submit(
      Lane::kCcStage, std::move(plan.jobs[chunk]),
      [this, index] { on_chunk_done(index); },
      [this, index, first] {
        const Cycle now = local_.simulator().now();
        plans_.at(index).chunk_started = now;
        if (first) records_[index].prefill_start = now;
      },
      affinity);
}

void ServingEngine::on_chunk_done(std::size_t index) {
  PrefillPlan& plan = plans_.at(index);
  const std::size_t chunk = plan.next - 1;
  const Cycle now = local_.simulator().now();
  const Bytes bytes = plan.job_bytes[chunk];
  const Bytes full = plan.job_full_bytes[chunk];
  const bool was_fat = plan.current_fat;
  plan.current_fat = false;
  // A fat chunk's bytes already left the CC backlog at submission.
  if (!was_fat) {
    cc_pending_bytes_ -= static_cast<double>(bytes);
    cc_pending_full_bytes_ -= static_cast<double>(full);
  }
  // The owner's fill fetch just retired: the pinned bytes are genuinely
  // on chip now, so riders stop re-fetching (fill barrier lifts).
  if (plan.pin_attached && plan.pin_owner && chunk == plan.fill_chunk) {
    residency_->mark_filled(plan.pin_key);
  }
  // Per-group landing: a rider's barrier re-fetch just retired, so the
  // groups it streamed are genuinely on chip — land them for everyone.
  if (plan.pin_attached && plan.lands_to > 0) {
    residency_->mark_landed(plan.pin_key, plan.lands_to);
    plan.lands_to = 0;
  }
  // Fold the measured chunk throughput into the estimator of whichever
  // backend ran it — each EWMA divides its OWN cost model's bytes by the
  // observed cycles, so the two backends' signals never cross-pollute.
  if (was_fat) {
    if (now > plan.chunk_started && plan.current_fat_bytes > 0) {
      const double observed =
          static_cast<double>(plan.current_fat_bytes) /
          static_cast<double>(now - plan.chunk_started);
      fat_bytes_per_cycle_est_ = (1.0 - kEstimatorGain) * fat_bytes_per_cycle_est_ +
                                 kEstimatorGain * observed;
    }
  } else if (now > plan.chunk_started && full > 0) {
    // The estimator is normalized to FULL-precision-equivalent bytes: a
    // degraded chunk streams fewer actual bytes in fewer cycles, and
    // folding actual/cycles would teach the estimator that the lane got
    // permanently faster — inflating every later admission/quality
    // estimate once the co-tenant recovers. Full-equiv bytes over the
    // same cycles keeps the signal about the LANE, not the degradation
    // (all consumers divide full-equiv bytes by it, so units agree).
    const double observed = static_cast<double>(full) /
                            static_cast<double>(now - plan.chunk_started);
    double& est = cc_bytes_per_cycle_est_[records_[index].request.model];
    est = (1.0 - kEstimatorGain) * est + kEstimatorGain * observed;
  }
  if (plan.next < plan.jobs.size()) {
    // Chain the next chunk: it queues BEHIND any job another request
    // submitted meanwhile — exactly the interleaving that bounds
    // CC-lane head-of-line blocking (unless lane-affinity chaining is
    // on, which trades some of that bound for shorter pin hold times).
    submit_next_chunk(index);
    return;
  }
  // The prefill retired: detach from the pin. Under sharing the bytes
  // stay on chip until the LAST attached request of the model retires
  // (eviction happens at refcount zero inside the tracker).
  const std::size_t return_tokens = plan.offload_tokens;
  drop_plan(index);
  if (return_tokens > 0 && kv_return_link_) {
    // Offloaded prefill: the fat backend holds the KV it computed, and
    // decode runs on EdgeMM — ship those tokens' KV back over the
    // ledgered return wire. The prefill only counts as done when the
    // bytes LAND (prefill_end includes the shipment), which is also what
    // keeps a prefill-only tier's hand-off timestamps honest.
    const Bytes kv_bytes =
        static_cast<Bytes>(return_tokens) *
        model::kv_bytes_per_token(models_[records_[index].request.model]);
    const Cycle arrival = kv_return_link_->transfer(kv_bytes, now);
    local_.simulator().schedule_at(arrival,
                                   [this, index] { on_prefill_done(index); });
    return;
  }
  on_prefill_done(index);
}

void ServingEngine::on_prefill_done(std::size_t index) {
  RequestRecord& rec = records_[index];
  rec.prefill_end = local_.simulator().now();
  if (engine_config_.phase() == EnginePhase::kPrefillOnly) {
    // Disaggregated prefill tier: this chip's job ends here — the KV
    // cache ships to a decode chip, so the request retires with its
    // finish at prefill end and zero tokens generated locally.
    refresh_decayed_demand();
    rec.finish = rec.prefill_end;
    rec.done = true;
    if (rec.request.deadline > 0 && rec.finish > rec.request.deadline) {
      ++slo_misses_;
    }
    ++completed_;
    --inflight_;
    --inflight_per_model_[rec.request.model];
    if (on_complete_) on_complete_(rec);
    pump_admission();  // the retired prefill freed admission slots
    return;
  }
  decode_ready_.push_back(index);
  // Continuous batching: if the MC lane is mid-step, this request joins
  // at the next step boundary; only an idle lane needs a kick.
  if (local_.idle(Lane::kMcDecode)) start_decode_step();
}

bool ServingEngine::kv_join_reserve(std::size_t index) {
  const Request& r = records_[index].request;
  if (pages_) {
    KvPagingState& st = kv_paging_[index];
    if (st.joined) return true;  // hand-off reservation made at admission
    const Bytes page_bytes = engine_config_.kv_page_bytes();
    st.tokens_per_page = kv_tokens_per_page(models_[r.model], page_bytes);
    st.shared_pages =
        engine_config_.kv_prefix_sharing()
            ? kv_shared_prefix_pages(r, models_[r.model], page_bytes)
            : 0;
    st.prefix =
        st.shared_pages > 0 ? kv_prefix_key(r.model, r.prefix_id) : 0;
    // Only the PROMPT's pages are reserved at join — the tail grows one
    // page per generated-token page boundary (grow_page_tables). This
    // is where paged mode's concurrency headroom comes from: a legacy
    // join charges (input + output) tokens up front.
    const std::size_t private_tokens =
        r.input_tokens - st.shared_pages * st.tokens_per_page;
    const std::size_t private_pages =
        (private_tokens + st.tokens_per_page - 1) / st.tokens_per_page;
    if (!pages_->try_join(r.id, private_pages, st.prefix, st.shared_pages)) {
      return false;
    }
    // The prefix's partial boundary page cannot be shared — the
    // request's first divergent token writes into it — so it was copied
    // into the private table above: a CoW fork.
    if (st.shared_pages > 0 &&
        r.prefix_tokens % st.tokens_per_page != 0) {
      ++kv_cow_forks_;
    }
    st.joined = true;
    st.swapped = false;
    st.last_touch = local_.simulator().now();
    return true;
  }
  if (kv_) {
    if (kv_reserved_[index]) return true;  // hand-off reservation held
    if (!kv_->try_reserve(r.id, kv_footprint_bytes(r, models_[r.model]))) {
      return false;
    }
    kv_reserved_[index] = 1;
    return true;
  }
  return true;
}

void ServingEngine::kv_release(std::size_t index) {
  const RequestId id = records_[index].request.id;
  if (pages_) {
    pages_->release(id);
    kv_paging_[index].joined = false;
    return;
  }
  if (kv_) {
    kv_->release(id);
    kv_reserved_[index] = 0;
  }
}

void ServingEngine::refill_swapped() {
  // Strictly FIFO in preemption order: a preempted request must not be
  // overtaken by a later, smaller one — swap is preempt-AND-REFILL, not
  // a second deferral queue.
  while (!kv_swapped_.empty()) {
    const std::size_t index = kv_swapped_.front();
    if (!pages_->try_swap_in(records_[index].request.id)) break;
    KvPagingState& st = kv_paging_[index];
    st.swapped = false;
    st.last_touch = local_.simulator().now();
    active_.push_back(index);
    kv_swapped_.erase(kv_swapped_.begin());
  }
}

void ServingEngine::preempt_to_dram(std::size_t active_pos) {
  const std::size_t index = active_[active_pos];
  pages_->swap_out(records_[index].request.id);
  kv_paging_[index].swapped = true;
  active_.erase(active_.begin() +
                static_cast<std::ptrdiff_t>(active_pos));
  kv_swapped_.push_back(index);
}

bool ServingEngine::preempt_victim(std::size_t& grower_pos) {
  std::vector<SwapCandidate> candidates;
  for (std::size_t j = 0; j < active_.size(); ++j) {
    if (j == grower_pos) continue;
    const RequestRecord& rec = records_[active_[j]];
    const std::size_t resident = pages_->resident_pages_of(rec.request.id);
    if (resident == 0) continue;  // nothing evictable (prefix-only table)
    SwapCandidate c;
    c.id = rec.request.id;
    c.resident_pages = resident;
    c.last_touch = kv_paging_[active_[j]].last_touch;
    c.context_tokens = rec.request.input_tokens + rec.tokens_generated;
    c.remaining_tokens = rec.request.output_tokens - rec.tokens_generated;
    candidates.push_back(c);
  }
  if (candidates.empty()) return false;
  const std::vector<RequestId> order =
      engine_config_.kv_swap_policy().victim_order(candidates);
  EDGEMM_ASSERT_MSG(!order.empty(),
                    "ServingEngine: SwapPolicy returned no victim order");
  const std::size_t victim_index = index_.at(order.front());
  const auto it = std::find(active_.begin(), active_.end(), victim_index);
  EDGEMM_ASSERT_MSG(it != active_.end(),
                    "ServingEngine: SwapPolicy picked a non-candidate victim");
  const std::size_t victim_pos =
      static_cast<std::size_t>(it - active_.begin());
  EDGEMM_ASSERT(victim_pos != grower_pos);
  preempt_to_dram(victim_pos);
  if (victim_pos < grower_pos) --grower_pos;
  return true;
}

void ServingEngine::grow_page_tables() {
  const Cycle now = local_.simulator().now();
  std::size_t i = 0;
  while (i < active_.size()) {
    const std::size_t index = active_[i];
    const Request& r = records_[index].request;
    KvPagingState& st = kv_paging_[index];
    // Pages the table must cover INCLUDING the token this step writes.
    const std::size_t private_tokens = r.input_tokens +
                                       records_[index].tokens_generated + 1 -
                                       st.shared_pages * st.tokens_per_page;
    const std::size_t needed =
        (private_tokens + st.tokens_per_page - 1) / st.tokens_per_page;
    bool grown = true;
    while (pages_->resident_pages_of(r.id) < needed) {
      if (pages_->try_append(r.id)) {
        st.last_touch = now;
        continue;
      }
      if (!preempt_victim(i)) {
        grown = false;
        break;
      }
    }
    if (!grown) {
      // Budget full and no victim left: preempt the grower itself — it
      // sits this step out in DRAM and refills at a later boundary.
      preempt_to_dram(i);
      continue;  // i now addresses the next active entry
    }
    ++i;
  }
}

void ServingEngine::start_decode_step() {
  // Preempt-and-refill: restore swapped-out requests before admitting
  // new joiners — they were already mid-decode when evicted.
  Bytes swap_dma = 0;
  if (pages_) {
    const Bytes refetch_before = pages_->swap_refetch_bytes();
    refill_swapped();
    // kv_swap_refill_dma: the refills' re-fetched bytes ride this step
    // as a real MC-lane DMA op (injected below) instead of being free.
    if (engine_config_.kv_swap_refill_dma()) {
      swap_dma = pages_->swap_refetch_bytes() - refetch_before;
    }
  }
  if (!decode_ready_.empty()) {
    engine_config_.batch_policy().order_joiners(decode_ready_, records_);
  }
  const std::size_t join = engine_config_.scheduler().decode_join_count(
      active_.size(), decode_ready_.size());
  std::size_t joined = 0;
  for (auto it = decode_ready_.begin();
       it != decode_ready_.end() && joined < join;) {
    const std::size_t index = *it;
    if (kv_ || pages_) {
      if (!kv_join_reserve(index)) {
        // Deferred join: stays decode-ready, retries next step boundary.
        ++it;
        continue;
      }
    }
    active_.push_back(index);
    it = decode_ready_.erase(it);
    ++joined;
  }
  // Every active request writes one token this step — extend page tables
  // first (may preempt victims to DRAM when the budget is full).
  if (pages_) grow_page_tables();
  if (active_.empty()) return;  // MC lane drains until new prefills land

  // One continuous-batching step: per served model, batch the weight-
  // bearing ops across that model's active requests and stream each
  // request's own KV cache.
  std::vector<GemmWork> step;
  std::vector<std::size_t> contexts;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    contexts.clear();
    // The batched weight fetch serves the whole per-model batch at once,
    // so it prunes to the LEAST degraded active request's fraction (the
    // max): a degraded co-batcher cannot starve an undegraded one of
    // rows it needs. Equal to keep_fraction_[m] under StaticQuality.
    double frac = 0.0;
    for (const std::size_t index : active_) {
      const RequestRecord& rec = records_[index];
      if (rec.request.model == m) {
        contexts.push_back(rec.request.input_tokens + rec.tokens_generated);
        frac = std::max(frac, rec.keep_fraction_served);
      }
    }
    if (contexts.empty()) continue;
    const auto ops = model::build_decode_step(models_[m], contexts, frac);
    step.insert(step.end(), ops.begin(), ops.end());
  }
  if (swap_dma > 0) {
    // Swap-in refill traffic as one KV-stream-priced DMA op (element
    // override 2, like the per-request KV streams): weight side k*2 plus
    // activation side ~2k re-streams ≈ the refilled bytes through the MC
    // lane, so SwapPolicy thrashing costs decode bandwidth in the timing
    // plane. A swap-in implies the swapped request rejoined active_, so
    // the step below always exists to carry the op.
    step.push_back(GemmWork{
        1, std::max<std::size_t>(static_cast<std::size_t>(swap_dma / 4), 1), 1,
        Phase::kDecode, false, 2, false});
    kv_swap_dma_bytes_ += swap_dma;
  }
  step = model::aggregate_ops(step);

  ++decode_steps_;
  batch_occupancy_sum_ += active_.size();
  peak_decode_batch_ = std::max(peak_decode_batch_, active_.size());
  step_started_ = local_.simulator().now();
  local_.submit(Lane::kMcDecode, std::move(step),
                    [this] { on_decode_step_done(); });
}

void ServingEngine::on_decode_step_done() {
  const Cycle now = local_.simulator().now();
  if (now > step_started_) {
    // Fold the measured step duration into every model that took part in
    // the step (active_ still holds the step's batch here). A model that
    // sat the step out keeps its estimator untouched — co-tenant steps
    // say nothing about ITS decode cost. A MIXED step's duration is
    // attributed per model by its token share of the step (each active
    // request generates one token): charging every present model the
    // full duration would double-count the co-tenants' work and inflate
    // every estimator in a zoo. Single-model steps attribute the full
    // duration — byte-identical to the pre-attribution estimator.
    std::vector<std::size_t> step_tokens(models_.size(), 0);
    for (const std::size_t index : active_) {
      ++step_tokens[records_[index].request.model];
    }
    const double observed = static_cast<double>(now - step_started_);
    const double total_tokens = static_cast<double>(active_.size());
    for (std::size_t m = 0; m < models_.size(); ++m) {
      if (step_tokens[m] == 0) continue;
      const double share =
          observed * static_cast<double>(step_tokens[m]) / total_tokens;
      decode_step_cycles_est_[m] =
          (1.0 - kEstimatorGain) * decode_step_cycles_est_[m] +
          kEstimatorGain * share;
    }
  }
  refresh_decayed_demand();
  std::vector<std::size_t> still_active;
  still_active.reserve(active_.size());
  for (const std::size_t index : active_) {
    RequestRecord& rec = records_[index];
    ++rec.tokens_generated;
    if (rec.keep_fraction_served < keep_fraction_[rec.request.model]) {
      ++tokens_degraded_;
    }
    if (rec.tokens_generated == 1) rec.first_token = now;
    if (rec.tokens_generated >= rec.request.output_tokens) {
      rec.finish = now;
      rec.done = true;
      if (rec.request.deadline > 0 && rec.finish > rec.request.deadline) {
        ++slo_misses_;
      }
      ++completed_;
      --inflight_;
      --inflight_per_model_[rec.request.model];
      kv_release(index);
      if (on_complete_) on_complete_(rec);
    } else {
      still_active.push_back(index);
    }
  }
  active_ = std::move(still_active);
  pump_admission();   // retired requests freed admission slots
  start_decode_step();  // survivors + any newly prefilled joiners
}

void ServingEngine::schedule_rebalance(Cycle interval) {
  local_.simulator().schedule(interval, [this, interval] {
    if (completed_ + rejected_ >= total_) return;  // drained: stop ticking
    rebalance();
    schedule_rebalance(interval);
  });
}

void ServingEngine::rebalance() {
  // Size Bc:Bm from the bytes actually pending on each side (the dynamic
  // analogue of the Fig. 9(c) per-round byte ratio): admitted prefill
  // work on the CC side, remaining decode traffic of in-flight requests
  // on the MC side. Weight fetches are charged once per step — the
  // model's batch keeps decoding until its longest request drains — not
  // once per request; continuous batching is what amortizes them.
  double mc_bytes = 0.0;
  std::vector<std::size_t> max_remaining(models_.size(), 0);
  auto add_remaining = [&](std::size_t index) {
    const RequestRecord& rec = records_[index];
    const std::size_t remaining =
        rec.request.output_tokens - rec.tokens_generated;
    const std::size_t context =
        rec.request.input_tokens + rec.tokens_generated;
    const std::size_t m = rec.request.model;
    max_remaining[m] = std::max(max_remaining[m], remaining);
    mc_bytes += static_cast<double>(remaining) *
                (decode_request_bytes_[m] +
                 decode_kv_slope_[m] * static_cast<double>(context));
  };
  for (const std::size_t index : active_) add_remaining(index);
  for (const std::size_t index : decode_ready_) add_remaining(index);
  for (std::size_t m = 0; m < models_.size(); ++m) {
    mc_bytes +=
        decode_shared_bytes_[m] * static_cast<double>(max_remaining[m]);
  }

  std::size_t ratio = 1;
  if (cc_pending_bytes_ <= 0.0) {
    // No upstream work: hand the MC side the whole ramp.
    ratio = engine_config_.bandwidth_policy().max_mc_ratio;
  } else if (mc_bytes > 0.0) {
    ratio = std::clamp<std::size_t>(
        static_cast<std::size_t>(mc_bytes / cc_pending_bytes_ + 0.5), 1,
        engine_config_.bandwidth_policy().max_mc_ratio);
  }
  local_.apply_bandwidth_ratio(ratio);
  ++rebalances_;
}

ReplayOutcome replay_trace(const core::ChipConfig& config,
                           std::vector<model::MllmConfig> models,
                           EngineConfig engine_config,
                           std::vector<Request> requests,
                           ServingEngine::CompletionCallback on_complete) {
  ServingEngine engine(config, std::move(models), std::move(engine_config));
  if (on_complete) engine.set_completion_callback(std::move(on_complete));
  ReplayOutcome outcome;
  outcome.result = engine.run(std::move(requests));
  outcome.records = engine.records();
  return outcome;
}

}  // namespace edgemm::serve
