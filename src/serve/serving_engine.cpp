#include "serve/serving_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "model/workload.hpp"

namespace edgemm::serve {

using core::GemmWork;
using core::Lane;

ServingEngine::ServingEngine(const core::ChipConfig& config,
                             std::vector<model::MllmConfig> models,
                             ServingOptions options)
    : config_(config),
      models_(std::move(models)),
      options_(options),
      admission_(options.admission),
      chip_(config_, core::ChipComposition::kHeterogeneous),
      scheduler_(chip_),
      manager_(config_, options.policy) {
  if (models_.empty()) {
    throw std::invalid_argument("ServingEngine: no models to serve");
  }
  // Probe the decode traffic decomposition of every model once, on an
  // MC cluster. A step of batch B with contexts c_i moves
  //   shared + sum_i (request + kv_slope * c_i)
  // bytes: the batch-amortized weight fetch, the per-request activation
  // traffic, and the per-request KV stream. Solved from three probes —
  // batch 1 at two contexts (isolates the KV slope) and batch 2
  // (isolates the per-request share, since the weight fetch does not
  // grow with the batch). Used by the interval rebalancer to size the
  // MC side of the budget split without rebuilding op lists per tick.
  const core::ClusterTimingModel* probe =
      scheduler_.lane_clusters(Lane::kMcDecode).front();
  for (const model::MllmConfig& m : models_) {
    auto step_bytes = [&](std::span<const std::size_t> contexts) {
      const auto ops = core::pruned_ops(model::build_decode_step(m, contexts),
                                        options_.prune_keep_fraction);
      return static_cast<double>(core::estimated_traffic_bytes(*probe, ops));
    };
    const std::array<std::size_t, 1> near{1};
    const std::array<std::size_t, 1> far{1025};
    const std::array<std::size_t, 2> pair{1, 1};
    const double batch1_near = step_bytes(near);
    const double batch1_far = step_bytes(far);
    const double batch2 = step_bytes(pair);
    const double slope = (batch1_far - batch1_near) / 1024.0;
    const double per_request_near = batch2 - batch1_near;
    decode_kv_slope_.push_back(slope);
    decode_request_bytes_.push_back(per_request_near - slope);
    decode_shared_bytes_.push_back(batch1_near - per_request_near);
  }
}

void ServingEngine::set_completion_callback(CompletionCallback callback) {
  on_complete_ = std::move(callback);
}

Bytes ServingEngine::cc_job_bytes(const std::vector<GemmWork>& ops) const {
  return core::estimated_traffic_bytes(
      *scheduler_.lane_clusters(Lane::kCcStage).front(), ops);
}

ServingResult ServingEngine::run(std::vector<Request> requests) {
  if (ran_) {
    throw std::logic_error("ServingEngine::run: engine instances are one-shot");
  }
  ran_ = true;
  if (requests.empty()) {
    throw std::invalid_argument("ServingEngine::run: empty trace");
  }
  records_.reserve(requests.size());
  prefill_bytes_.assign(requests.size(), 0);
  for (const Request& r : requests) {
    if (r.input_tokens == 0 || r.output_tokens == 0 || r.crops == 0) {
      throw std::invalid_argument("ServingEngine::run: zero-length request");
    }
    if (r.model >= models_.size()) {
      throw std::invalid_argument("ServingEngine::run: model index out of range");
    }
    if (!index_.emplace(r.id, records_.size()).second) {
      throw std::invalid_argument("ServingEngine::run: duplicate request id");
    }
    records_.push_back(RequestRecord{r});
  }
  total_ = records_.size();

  sim::Simulator& sim = scheduler_.sim();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    sim.schedule_at(records_[i].request.arrival, [this, i] { on_arrival(i); });
  }
  // PMC throttles are always armed (§IV-B); start from the default equal
  // partition and let the interval rebalancer shift it.
  manager_.apply_equal_sharing(chip_);
  if (options_.manage_bandwidth) {
    const Cycle interval = options_.rebalance_interval > 0
                               ? options_.rebalance_interval
                               : config_.dma.throttle_interval;
    schedule_rebalance(interval);
  }
  sim.run();
  EDGEMM_ASSERT_MSG(completed_ == total_,
                    "ServingEngine: trace replay left unfinished requests");

  // --- Aggregate metrics ---------------------------------------------------
  ServingResult result;
  result.completed = completed_;
  Cycle first_arrival = records_.front().request.arrival;
  Cycle last_finish = 0;
  std::size_t total_tokens = 0;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(records_.size());
  for (const RequestRecord& rec : records_) {
    first_arrival = std::min(first_arrival, rec.request.arrival);
    last_finish = std::max(last_finish, rec.finish);
    total_tokens += rec.tokens_generated;
    latencies_ms.push_back(rec.latency_ms(config_.clock_hz));
  }
  result.makespan = last_finish - first_arrival;
  result.makespan_ms = cycles_to_ms(result.makespan, config_.clock_hz);
  result.p50_latency_ms = percentile(latencies_ms, 50.0);
  result.p95_latency_ms = percentile(latencies_ms, 95.0);
  result.p99_latency_ms = percentile(latencies_ms, 99.0);
  double sum = 0.0;
  for (const double v : latencies_ms) sum += v;
  result.mean_latency_ms = sum / static_cast<double>(latencies_ms.size());
  result.tokens_per_second =
      static_cast<double>(total_tokens) /
      cycles_to_seconds(std::max<Cycle>(result.makespan, 1), config_.clock_hz);
  result.dram_utilization = chip_.dram().utilization();
  result.decode_steps = decode_steps_;
  result.mean_decode_batch =
      decode_steps_ > 0 ? static_cast<double>(batch_occupancy_sum_) /
                              static_cast<double>(decode_steps_)
                        : 0.0;
  result.peak_queue_depth = peak_queue_depth_;
  result.rebalances = rebalances_;
  return result;
}

void ServingEngine::on_arrival(std::size_t index) {
  queue_.push(records_[index].request);
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  pump_admission();
}

void ServingEngine::pump_admission() {
  sim::Simulator& sim = scheduler_.sim();
  while (queue_.ready(sim.now()) && admission_.admit(inflight_)) {
    const Request r = queue_.pop();
    const std::size_t index = index_.at(r.id);
    RequestRecord& rec = records_[index];
    ++inflight_;
    rec.admitted = sim.now();

    // CC-lane job: this request's encoder + prefill ops. The decode side
    // is built per step instead (contexts grow token by token).
    auto workload = model::build_request_workload(
        models_[r.model], {r.input_tokens, r.output_tokens, r.crops});
    std::vector<GemmWork> cc_ops = std::move(workload.encoder);
    cc_ops.insert(cc_ops.end(), workload.prefill.begin(), workload.prefill.end());
    cc_ops = model::aggregate_ops(cc_ops);
    prefill_bytes_[index] = cc_job_bytes(cc_ops);
    cc_pending_bytes_ += static_cast<double>(prefill_bytes_[index]);

    scheduler_.submit(
        Lane::kCcStage, std::move(cc_ops),
        [this, index] { on_prefill_done(index); },
        [this, index] {
          records_[index].prefill_start = scheduler_.sim().now();
        });
  }
}

void ServingEngine::on_prefill_done(std::size_t index) {
  RequestRecord& rec = records_[index];
  rec.prefill_end = scheduler_.sim().now();
  cc_pending_bytes_ -= static_cast<double>(prefill_bytes_[index]);
  decode_ready_.push_back(index);
  // Continuous batching: if the MC lane is mid-step, this request joins
  // at the next step boundary; only an idle lane needs a kick.
  if (scheduler_.idle(Lane::kMcDecode)) start_decode_step();
}

void ServingEngine::start_decode_step() {
  const std::size_t join =
      admission_.decode_join_count(active_.size(), decode_ready_.size());
  for (std::size_t j = 0; j < join; ++j) {
    active_.push_back(decode_ready_.front());
    decode_ready_.pop_front();
  }
  if (active_.empty()) return;  // MC lane drains until new prefills land

  // One continuous-batching step: per served model, batch the weight-
  // bearing ops across that model's active requests and stream each
  // request's own KV cache.
  std::vector<GemmWork> step;
  std::vector<std::size_t> contexts;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    contexts.clear();
    for (const std::size_t index : active_) {
      const RequestRecord& rec = records_[index];
      if (rec.request.model == m) {
        contexts.push_back(rec.request.input_tokens + rec.tokens_generated);
      }
    }
    if (contexts.empty()) continue;
    const auto ops = model::build_decode_step(models_[m], contexts);
    step.insert(step.end(), ops.begin(), ops.end());
  }
  step = model::aggregate_ops(
      core::pruned_ops(step, options_.prune_keep_fraction));

  ++decode_steps_;
  batch_occupancy_sum_ += active_.size();
  scheduler_.submit(Lane::kMcDecode, std::move(step),
                    [this] { on_decode_step_done(); });
}

void ServingEngine::on_decode_step_done() {
  const Cycle now = scheduler_.sim().now();
  std::vector<std::size_t> still_active;
  still_active.reserve(active_.size());
  for (const std::size_t index : active_) {
    RequestRecord& rec = records_[index];
    ++rec.tokens_generated;
    if (rec.tokens_generated == 1) rec.first_token = now;
    if (rec.tokens_generated >= rec.request.output_tokens) {
      rec.finish = now;
      rec.done = true;
      ++completed_;
      --inflight_;
      if (on_complete_) on_complete_(rec);
    } else {
      still_active.push_back(index);
    }
  }
  active_ = std::move(still_active);
  pump_admission();   // retired requests freed admission slots
  start_decode_step();  // survivors + any newly prefilled joiners
}

void ServingEngine::schedule_rebalance(Cycle interval) {
  scheduler_.sim().schedule(interval, [this, interval] {
    if (completed_ >= total_) return;  // drained: stop ticking, let run() end
    rebalance();
    schedule_rebalance(interval);
  });
}

void ServingEngine::rebalance() {
  // Size Bc:Bm from the bytes actually pending on each side (the dynamic
  // analogue of the Fig. 9(c) per-round byte ratio): admitted prefill
  // work on the CC side, remaining decode traffic of in-flight requests
  // on the MC side. Weight fetches are charged once per step — the
  // model's batch keeps decoding until its longest request drains — not
  // once per request; continuous batching is what amortizes them.
  double mc_bytes = 0.0;
  std::vector<std::size_t> max_remaining(models_.size(), 0);
  auto add_remaining = [&](std::size_t index) {
    const RequestRecord& rec = records_[index];
    const std::size_t remaining =
        rec.request.output_tokens - rec.tokens_generated;
    const std::size_t context =
        rec.request.input_tokens + rec.tokens_generated;
    const std::size_t m = rec.request.model;
    max_remaining[m] = std::max(max_remaining[m], remaining);
    mc_bytes += static_cast<double>(remaining) *
                (decode_request_bytes_[m] +
                 decode_kv_slope_[m] * static_cast<double>(context));
  };
  for (const std::size_t index : active_) add_remaining(index);
  for (const std::size_t index : decode_ready_) add_remaining(index);
  for (std::size_t m = 0; m < models_.size(); ++m) {
    mc_bytes +=
        decode_shared_bytes_[m] * static_cast<double>(max_remaining[m]);
  }

  std::size_t ratio = 1;
  if (cc_pending_bytes_ <= 0.0) {
    // No upstream work: hand the MC side the whole ramp.
    ratio = options_.policy.max_mc_ratio;
  } else if (mc_bytes > 0.0) {
    ratio = std::clamp<std::size_t>(
        static_cast<std::size_t>(mc_bytes / cc_pending_bytes_ + 0.5), 1,
        options_.policy.max_mc_ratio);
  }
  manager_.apply_ratio(chip_, ratio);
  ++rebalances_;
}

}  // namespace edgemm::serve
