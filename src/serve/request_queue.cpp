#include "serve/request_queue.hpp"

#include <stdexcept>
#include <utility>

namespace edgemm::serve {

const char* to_string(QueueOrder order) {
  switch (order) {
    case QueueOrder::kArrival: return "arrival";
    case QueueOrder::kDeadline: return "deadline";
  }
  return "?";
}

void RequestQueue::push(Request request) { heap_.push(std::move(request)); }

const Request& RequestQueue::front() const {
  if (!ready_.empty()) return ready_.top();
  if (heap_.empty()) {
    throw std::out_of_range("RequestQueue::front: empty queue");
  }
  return heap_.top();
}

Request RequestQueue::pop() {
  if (!ready_.empty()) {
    Request out = ready_.top();
    ready_.pop();
    return out;
  }
  if (heap_.empty()) {
    throw std::out_of_range("RequestQueue::pop: empty queue");
  }
  Request out = heap_.top();
  heap_.pop();
  return out;
}

void RequestQueue::migrate(Cycle now) {
  while (!heap_.empty() && heap_.top().arrival <= now) {
    ready_.push(heap_.top());
    heap_.pop();
  }
}

bool RequestQueue::ready(Cycle now) {
  if (order_ == QueueOrder::kArrival) {
    return !heap_.empty() && heap_.top().arrival <= now;
  }
  migrate(now);
  return !ready_.empty();
}

std::optional<Request> RequestQueue::pop_ready(Cycle now) {
  if (!ready(now)) return std::nullopt;
  return pop();
}

}  // namespace edgemm::serve
