#include "serve/request_queue.hpp"

#include <stdexcept>
#include <utility>

namespace edgemm::serve {

void RequestQueue::push(Request request) { heap_.push(std::move(request)); }

const Request& RequestQueue::front() const {
  if (heap_.empty()) {
    throw std::out_of_range("RequestQueue::front: empty queue");
  }
  return heap_.top();
}

Request RequestQueue::pop() {
  if (heap_.empty()) {
    throw std::out_of_range("RequestQueue::pop: empty queue");
  }
  Request out = heap_.top();
  heap_.pop();
  return out;
}

std::optional<Request> RequestQueue::pop_ready(Cycle now) {
  if (!ready(now)) return std::nullopt;
  return pop();
}

}  // namespace edgemm::serve
