// Scheduler policies: the gate between the request queue and the chip.
//
// ConcurrencyPolicy is the default SchedulerPolicy (the PR-1
// AdmissionLimits behavior: pure concurrency caps). SloAwarePolicy
// layers per-request deadline feasibility on top: a request whose
// estimated completion already misses its deadline is rejected up front
// instead of wasting bandwidth and dragging the tail of the requests
// that could still make theirs.
#ifndef EDGEMM_SERVE_ADMISSION_HPP
#define EDGEMM_SERVE_ADMISSION_HPP

#include <cstddef>

#include "serve/policy.hpp"

namespace edgemm::serve {

/// Concurrency limits enforced by ConcurrencyPolicy.
struct AdmissionLimits {
  /// Requests decoding in one continuous-batching step (the Fig. 9(c)
  /// stream-batch ceiling; amortizes one weight fetch per step).
  std::size_t max_decode_batch = 8;
  /// Requests admitted but not yet finished (prefilling, waiting to join
  /// the decode batch, or decoding). Admitting beyond the decode batch
  /// keeps prefilled requests ready to join the moment a slot frees.
  std::size_t max_inflight = 16;
};

/// Default scheduler: admit while below max_inflight, defer otherwise;
/// decode joins fill the batch up to max_decode_batch.
class ConcurrencyPolicy : public SchedulerPolicy {
 public:
  ConcurrencyPolicy() = default;
  /// Throws std::invalid_argument when a limit is zero or
  /// max_inflight < max_decode_batch (the batch could never fill).
  explicit ConcurrencyPolicy(AdmissionLimits limits);

  const AdmissionLimits& limits() const { return limits_; }

  const char* name() const override { return "concurrency"; }
  AdmissionVerdict admit(const Request& r,
                         const AdmissionContext& ctx) const override;
  std::size_t decode_join_count(std::size_t active,
                                std::size_t ready) const override;

 private:
  AdmissionLimits limits_{};
};

/// SLO-aware scheduler: concurrency caps plus deadline feasibility.
/// Requests without a deadline pass straight to the concurrency verdict.
class SloAwarePolicy final : public ConcurrencyPolicy {
 public:
  struct Options {
    /// Multiplier on (queue delay + service) before comparing against
    /// the deadline: > 1 rejects earlier (conservative), < 1 later.
    double slack = 1.0;
  };

  /// Throws std::invalid_argument for a non-positive slack (inherits the
  /// limit checks of ConcurrencyPolicy).
  explicit SloAwarePolicy(AdmissionLimits limits);
  SloAwarePolicy(AdmissionLimits limits, Options options);

  const Options& options() const { return options_; }

  const char* name() const override { return "slo-aware"; }
  AdmissionVerdict admit(const Request& r,
                         const AdmissionContext& ctx) const override;

 private:
  Options options_{};
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_ADMISSION_HPP
