// Admission control: the gate between the request queue and the chip.
#ifndef EDGEMM_SERVE_ADMISSION_HPP
#define EDGEMM_SERVE_ADMISSION_HPP

#include <cstddef>

namespace edgemm::serve {

/// Concurrency limits enforced by the admission policy.
struct AdmissionLimits {
  /// Requests decoding in one continuous-batching step (the Fig. 9(c)
  /// stream-batch ceiling; amortizes one weight fetch per step).
  std::size_t max_decode_batch = 8;
  /// Requests admitted but not yet finished (prefilling, waiting to join
  /// the decode batch, or decoding). Admitting beyond the decode batch
  /// keeps prefilled requests ready to join the moment a slot frees.
  std::size_t max_inflight = 16;
};

/// Decides when a queued request may start prefill and how many
/// decode-ready requests may join the next decode step.
class AdmissionPolicy {
 public:
  AdmissionPolicy() = default;
  /// Throws std::invalid_argument when a limit is zero or
  /// max_inflight < max_decode_batch (the batch could never fill).
  explicit AdmissionPolicy(AdmissionLimits limits);

  const AdmissionLimits& limits() const { return limits_; }

  /// True when a request may be admitted (start prefill) with `inflight`
  /// requests currently admitted-but-unfinished.
  bool admit(std::size_t inflight) const {
    return inflight < limits_.max_inflight;
  }

  /// How many of `ready` decode-ready requests may join a decode batch
  /// that already holds `active` requests.
  std::size_t decode_join_count(std::size_t active, std::size_t ready) const;

 private:
  AdmissionLimits limits_{};
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_ADMISSION_HPP
