#include "serve/kv_pages.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"
#include "model/workload.hpp"

namespace edgemm::serve {

KvPrefixKey kv_prefix_key(std::size_t model, std::size_t prefix_id) {
  if (prefix_id == 0) return 0;
  // Non-zero whenever prefix_id is: the model index occupies the high
  // word, so two models' groups never collide.
  return (static_cast<KvPrefixKey>(model) << 32) |
         static_cast<KvPrefixKey>(prefix_id);
}

std::size_t kv_tokens_per_page(const model::MllmConfig& model,
                               Bytes page_bytes) {
  if (page_bytes == 0) {
    throw std::invalid_argument("kv_tokens_per_page: page_bytes must be > 0");
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(page_bytes /
                                  model::kv_bytes_per_token(model)));
}

std::size_t kv_shared_prefix_pages(const Request& r,
                                   const model::MllmConfig& model,
                                   Bytes page_bytes) {
  if (r.prefix_id == 0) return 0;
  const std::size_t tokens = std::min(r.prefix_tokens, r.input_tokens);
  return tokens / kv_tokens_per_page(model, page_bytes);
}

std::size_t kv_page_footprint(const Request& r,
                              const model::MllmConfig& model,
                              Bytes page_bytes, bool prefix_sharing) {
  const std::size_t tpp = kv_tokens_per_page(model, page_bytes);
  const std::size_t shared =
      prefix_sharing ? kv_shared_prefix_pages(r, model, page_bytes) : 0;
  const std::size_t private_tokens =
      r.input_tokens + r.output_tokens - shared * tpp;
  return shared + (private_tokens + tpp - 1) / tpp;
}

std::vector<RequestId> LruSwapPolicy::victim_order(
    const std::vector<SwapCandidate>& candidates) const {
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (candidates[a].last_touch != candidates[b].last_touch) {
      return candidates[a].last_touch < candidates[b].last_touch;
    }
    return candidates[a].id < candidates[b].id;
  });
  std::vector<RequestId> victims;
  victims.reserve(order.size());
  for (const std::size_t i : order) victims.push_back(candidates[i].id);
  return victims;
}

KvPageAllocator::KvPageAllocator(Bytes capacity, Bytes page_bytes)
    : page_bytes_(page_bytes),
      total_pages_(page_bytes > 0
                       ? static_cast<std::size_t>(capacity / page_bytes)
                       : 0),
      ledger_(capacity, "KvPageAllocator") {
  if (page_bytes_ == 0) {
    throw std::invalid_argument("KvPageAllocator: page_bytes must be > 0");
  }
  if (total_pages_ == 0) {
    throw std::invalid_argument(
        "KvPageAllocator: capacity must hold at least one page");
  }
}

std::size_t KvPageAllocator::resident_pages_of(RequestId id) const {
  const auto it = tables_.find(id);
  return it == tables_.end() ? 0 : it->second.resident.size();
}

std::size_t KvPageAllocator::swapped_pages_of(RequestId id) const {
  const auto it = tables_.find(id);
  return it == tables_.end() ? 0 : it->second.swapped;
}

std::size_t KvPageAllocator::shared_refcount(KvPrefixKey key) const {
  const auto it = runs_.find(key);
  return it == runs_.end() ? 0 : it->second.refs;
}

bool KvPageAllocator::conserved() const {
  return pages_allocated_ ==
             resident_count_ + swapped_count_ + pages_freed_ &&
         ledger_.held() == resident_count_ * page_bytes_ &&
         resident_count_ <= total_pages_;
}

void KvPageAllocator::assert_conserved() const {
  EDGEMM_ASSERT_MSG(conserved(),
                    "KvPageAllocator: page ledger conservation violated "
                    "(allocated != resident + swapped + freed)");
}

std::uint64_t KvPageAllocator::acquire_page() {
  EDGEMM_ASSERT_MSG(resident_count_ < total_pages_,
                    "KvPageAllocator: acquire_page without a free page");
  const std::uint64_t page_id = next_page_++;
  const bool ok = ledger_.try_acquire(page_id, page_bytes_);
  EDGEMM_ASSERT_MSG(ok, "KvPageAllocator: ledger refused a counted-free page");
  ++resident_count_;
  peak_resident_bytes_ =
      std::max<Bytes>(peak_resident_bytes_, resident_count_ * page_bytes_);
  return page_id;
}

void KvPageAllocator::release_page(std::uint64_t page_id) {
  ledger_.release(page_id);
  --resident_count_;
}

void KvPageAllocator::swap_run_out(SharedRun& run) {
  for (const std::uint64_t page_id : run.page_ids) release_page(page_id);
  run.page_ids.clear();
  run.swapped = true;
  swapped_count_ += run.pages;
  pages_swapped_out_ += run.pages;
}

bool KvPageAllocator::try_join(RequestId id, std::size_t private_pages,
                               KvPrefixKey prefix, std::size_t shared_pages) {
  if (tables_.count(id) > 0) {
    throw std::logic_error("KvPageAllocator: duplicate join for request id");
  }
  // shared_pages == 0 degenerates to no sharing (a prefix shorter than
  // one page has nothing shareable — its tokens live in the private
  // CoW boundary page).
  const bool with_prefix = prefix != 0 && shared_pages > 0;
  SharedRun* run = nullptr;
  std::size_t needed = private_pages;
  if (with_prefix) {
    const auto it = runs_.find(prefix);
    run = it == runs_.end() ? nullptr : &it->second;
    if (run == nullptr) {
      needed += shared_pages;  // first attacher allocates the run
    } else {
      EDGEMM_ASSERT_MSG(run->pages == shared_pages,
                        "KvPageAllocator: a prefix group's requests must "
                        "declare the same shared page count");
      if (run->swapped) needed += run->pages;  // refill the run from DRAM
    }
  }
  if (needed > free_pages()) {
    ++deferrals_;
    return false;
  }

  if (with_prefix) {
    if (run == nullptr) {
      SharedRun fresh;
      fresh.pages = shared_pages;
      fresh.page_ids.reserve(shared_pages);
      for (std::size_t p = 0; p < shared_pages; ++p) {
        fresh.page_ids.push_back(acquire_page());
      }
      pages_allocated_ += shared_pages;
      run = &runs_.emplace(prefix, std::move(fresh)).first->second;
    } else {
      ++shared_attaches_;
      shared_pages_saved_ += run->pages;
      if (run->swapped) {
        run->page_ids.reserve(run->pages);
        for (std::size_t p = 0; p < run->pages; ++p) {
          run->page_ids.push_back(acquire_page());
        }
        run->swapped = false;
        swapped_count_ -= run->pages;
        pages_swapped_in_ += run->pages;
        swap_refetch_bytes_ += run->pages * page_bytes_;
      }
    }
    ++run->refs;
    ++run->resident_refs;
  }

  PageTable table;
  table.prefix = with_prefix ? prefix : 0;
  table.resident.reserve(private_pages);
  for (std::size_t p = 0; p < private_pages; ++p) {
    table.resident.push_back(acquire_page());
  }
  pages_allocated_ += private_pages;
  tables_.emplace(id, std::move(table));
  assert_conserved();
  return true;
}

bool KvPageAllocator::try_append(RequestId id) {
  const auto it = tables_.find(id);
  if (it == tables_.end() || it->second.out) {
    throw std::logic_error(
        "KvPageAllocator: append for an unknown or swapped-out request");
  }
  if (free_pages() == 0) return false;
  it->second.resident.push_back(acquire_page());
  ++pages_allocated_;
  assert_conserved();
  return true;
}

std::size_t KvPageAllocator::swap_out(RequestId id) {
  const auto it = tables_.find(id);
  if (it == tables_.end() || it->second.out) {
    throw std::logic_error(
        "KvPageAllocator: swap_out for an unknown or already-swapped request");
  }
  PageTable& table = it->second;
  const std::size_t moved = table.resident.size();
  for (const std::uint64_t page_id : table.resident) release_page(page_id);
  table.resident.clear();
  table.swapped += moved;
  table.out = true;
  swapped_count_ += moved;
  pages_swapped_out_ += moved;
  ++preemptions_;
  if (table.prefix != 0) {
    SharedRun& run = runs_.at(table.prefix);
    EDGEMM_ASSERT(run.resident_refs > 0);
    if (--run.resident_refs == 0 && !run.swapped) {
      // Every holder is in DRAM now: the run's pages must not squat on
      // the CIM budget serving nobody.
      swap_run_out(run);
    }
  }
  assert_conserved();
  return moved;
}

bool KvPageAllocator::try_swap_in(RequestId id) {
  const auto it = tables_.find(id);
  if (it == tables_.end() || !it->second.out) {
    throw std::logic_error(
        "KvPageAllocator: swap_in for an unknown or resident request");
  }
  PageTable& table = it->second;
  SharedRun* run = table.prefix != 0 ? &runs_.at(table.prefix) : nullptr;
  const bool run_refill = run != nullptr && run->swapped;
  const std::size_t needed = table.swapped + (run_refill ? run->pages : 0);
  if (needed > free_pages()) return false;

  if (run_refill) {
    run->page_ids.reserve(run->pages);
    for (std::size_t p = 0; p < run->pages; ++p) {
      run->page_ids.push_back(acquire_page());
    }
    run->swapped = false;
    swapped_count_ -= run->pages;
  }
  table.resident.reserve(table.swapped);
  for (std::size_t p = 0; p < table.swapped; ++p) {
    table.resident.push_back(acquire_page());
  }
  swapped_count_ -= table.swapped;
  table.swapped = 0;
  table.out = false;
  if (run != nullptr) ++run->resident_refs;
  pages_swapped_in_ += needed;
  swap_refetch_bytes_ += needed * page_bytes_;
  assert_conserved();
  return true;
}

void KvPageAllocator::release(RequestId id) {
  const auto it = tables_.find(id);
  if (it == tables_.end()) {
    throw std::logic_error("KvPageAllocator: release for an unknown request");
  }
  PageTable& table = it->second;
  for (const std::uint64_t page_id : table.resident) release_page(page_id);
  pages_freed_ += table.resident.size() + table.swapped;
  swapped_count_ -= table.swapped;
  if (table.prefix != 0) {
    SharedRun& run = runs_.at(table.prefix);
    EDGEMM_ASSERT(run.refs > 0);
    if (!table.out) {
      EDGEMM_ASSERT(run.resident_refs > 0);
      --run.resident_refs;
    }
    if (--run.refs == 0) {
      // Last holder: the run's pages are freed exactly once, wherever
      // they live.
      if (run.swapped) {
        swapped_count_ -= run.pages;
      } else {
        for (const std::uint64_t page_id : run.page_ids) release_page(page_id);
      }
      pages_freed_ += run.pages;
      runs_.erase(table.prefix);
    } else if (run.resident_refs == 0 && !run.swapped) {
      swap_run_out(run);
    }
  }
  tables_.erase(it);
  assert_conserved();
}

}  // namespace edgemm::serve
