// KV-cache capacity accounting for the decode batch.
//
// Each request decoding on the MC side owns a private KV cache whose
// full footprint is (input + output tokens) x kv_bytes_per_token of its
// model. The tracker charges that footprint against a byte budget when
// the request joins the decode batch and releases it at retirement; a
// join that would overflow is deferred by the engine (the request stays
// decode-ready and retries at the next step boundary).
//
// The natural budget unit is the MC-side CIM storage of the chip
// (chip_kv_capacity below, from ChipConfig::mc_cluster_cim_bytes());
// because the Fig. 10 chip's on-chip CIM capacity is far below one
// realistic KV cache, budgets are expressed as an oversubscription
// multiple of it (KV pages stream from DRAM through the macros).
#ifndef EDGEMM_SERVE_KV_TRACKER_HPP
#define EDGEMM_SERVE_KV_TRACKER_HPP

#include <cstddef>

#include "core/config.hpp"
#include "model/mllm_config.hpp"
#include "serve/byte_ledger.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// MC-side KV byte budget of `config`: oversubscription x total MC
/// clusters x per-cluster CIM bytes. Throws std::invalid_argument for a
/// non-positive oversubscription.
Bytes chip_kv_capacity(const core::ChipConfig& config,
                       double oversubscription = 1.0);

/// Full KV-cache footprint `r` reaches by its last generated token —
/// the amount a request reserves when it joins the decode batch (and
/// the unit KV budgets should be sized in).
Bytes kv_footprint_bytes(const Request& r, const model::MllmConfig& model);

/// Reserve/release ledger over a fixed byte capacity (a ByteLedger plus
/// the deferral counter). Reservations are keyed by request id; the
/// tracker never overcommits.
class KvCapacityTracker {
 public:
  /// Throws std::invalid_argument for a zero capacity.
  explicit KvCapacityTracker(Bytes capacity);

  Bytes capacity() const { return ledger_.capacity(); }
  Bytes reserved() const { return ledger_.held(); }
  Bytes available() const { return ledger_.available(); }
  std::size_t holders() const { return ledger_.holders(); }
  /// True when `id` holds a reservation (a decode-only tier reserves at
  /// admission — the KV hand-off — and the join finds it held).
  bool holds(RequestId id) const { return ledger_.held_by(id) > 0; }
  /// High-water mark of reserved() — what the whole-footprint mode peaks
  /// at, against which paged mode's peak_resident_bytes compares.
  Bytes peak_reserved() const { return peak_reserved_; }
  /// Failed try_reserve calls so far (each one is a deferred join).
  std::size_t deferrals() const { return deferrals_; }

  /// Reserves `bytes` for `id`. Filling the budget to exactly capacity
  /// succeeds; one byte over fails (and counts a deferral). Throws
  /// std::logic_error when `id` already holds a reservation.
  bool try_reserve(RequestId id, Bytes bytes);

  /// Releases `id`'s reservation; throws std::logic_error if absent.
  void release(RequestId id);

 private:
  ByteLedger ledger_;
  Bytes peak_reserved_ = 0;
  std::size_t deferrals_ = 0;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_KV_TRACKER_HPP
