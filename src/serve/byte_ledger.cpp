#include "serve/byte_ledger.hpp"

#include <stdexcept>
#include <string>

namespace edgemm::serve {

ByteLedger::ByteLedger(Bytes capacity, const char* what)
    : capacity_(capacity), what_(what) {
  if (capacity_ == 0) {
    throw std::invalid_argument(std::string(what_) +
                                ": capacity must be > 0");
  }
}

Bytes ByteLedger::held_by(RequestId id) const {
  const auto it = held_.find(id);
  return it == held_.end() ? 0 : it->second;
}

bool ByteLedger::try_acquire(RequestId id, Bytes bytes) {
  if (held_.contains(id)) {
    throw std::logic_error(std::string(what_) + ": duplicate hold");
  }
  if (bytes > available()) return false;
  held_.emplace(id, bytes);
  held_bytes_ += bytes;
  return true;
}

void ByteLedger::release(RequestId id) {
  const auto it = held_.find(id);
  if (it == held_.end()) {
    throw std::logic_error(std::string(what_) + ": releasing unknown hold");
  }
  held_bytes_ -= it->second;
  held_.erase(it);
}

}  // namespace edgemm::serve
