// Pluggable scheduling-policy interfaces of the serving engine.
//
// The engine is a policy-driven orchestrator: WHAT to admit is decided
// by a SchedulerPolicy, HOW a request's prefill is cut into CC-lane jobs
// by a PrefillPlanner, WHICH prefilled requests join the next decode
// step (and in what order) by a BatchPolicy, WHICH models' weights
// deserve the shared residency budget by a PlacementPolicy, WHERE
// each prefill chunk executes in a heterogeneous EdgeMM+GPU pair by an
// OffloadPolicy, and at WHAT quality (FFN keep fraction) each request
// is served by a QualityPolicy. Concrete policies live in admission.hpp
// (scheduler side) and below; new ones only need to implement one of
// these interfaces and be handed to EngineConfig.
#ifndef EDGEMM_SERVE_POLICY_HPP
#define EDGEMM_SERVE_POLICY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "serve/request.hpp"

namespace edgemm::serve {

/// Which serving stages this engine executes (disaggregated clusters).
/// kFull is the single-chip default; the split phases are how a
/// ClusterEngine turns one chip into a dedicated prefill or decode tier:
/// a kPrefillOnly engine retires each request when its prefill ends (the
/// finished KV is the product, streamed to a decode chip), a kDecodeOnly
/// engine treats each request's arrival as "its KV just landed" and goes
/// straight to the decode batch. Lives here (not engine_config.hpp) so
/// OffloadContext can carry the judged chunk's phase.
enum class EnginePhase : std::uint8_t {
  kFull,         ///< prefill + decode on this chip (the single-chip engine)
  kPrefillOnly,  ///< encoder + prefill only; retires at prefill end
  kDecodeOnly,   ///< decode only; prefill is assumed done elsewhere
};

const char* to_string(EnginePhase phase);

/// Outcome of one admission judgment.
enum class AdmissionVerdict : std::uint8_t {
  kAdmit,  ///< pop the request and start its prefill now
  kDefer,  ///< leave it queued; it is re-judged at the next pump
  kReject, ///< drop it (recorded as rejected, never served)
};

const char* to_string(AdmissionVerdict verdict);

/// Engine-state snapshot handed to SchedulerPolicy::admit. All estimates
/// are maintained online by the engine (measured CC-lane throughput and
/// decode-step duration EWMAs) — deterministic, but estimates, not
/// guarantees.
struct AdmissionContext {
  Cycle now = 0;
  std::size_t inflight = 0;        ///< admitted but unfinished requests
  std::size_t active_batch = 0;    ///< requests in the current decode batch
  std::size_t queue_depth = 0;     ///< queued requests, candidate included
  /// Estimated cycles until the candidate's first prefill chunk could
  /// dispatch (CC-lane backlog over measured lane throughput).
  Cycle estimated_queue_delay = 0;
  /// Estimated unloaded service time for the candidate: prefill traffic
  /// over measured CC throughput plus output_tokens decode steps.
  Cycle estimated_service = 0;
};

/// Admission and decode-batch sizing. Implementations must be
/// deterministic pure functions of their arguments and construction
/// parameters. Contract: a kDefer verdict with zero in-flight requests
/// is escalated to kAdmit by the engine — a policy cannot starve an
/// otherwise idle chip.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Judges the queue head.
  /// @param r    The candidate request (always the arrival-ordered head).
  /// @param ctx  Engine-state snapshot with online backlog/service
  ///             estimates (see AdmissionContext).
  /// @return kAdmit to start its prefill now, kDefer to re-judge at the
  ///         next pump, kReject to drop it permanently.
  virtual AdmissionVerdict admit(const Request& r,
                                 const AdmissionContext& ctx) const = 0;

  /// Sizes the next decode join.
  /// @param active  Requests already decoding in the current batch.
  /// @param ready   Prefilled requests waiting to join.
  /// @return How many of `ready` may join at this step boundary (the
  ///         engine may join fewer when the KV budget defers some).
  virtual std::size_t decode_join_count(std::size_t active,
                                        std::size_t ready) const = 0;
};

/// Splits one request's prefill (vision encoder + LLM prefill) into
/// successive CC-lane jobs. Returning more than one chunk bounds
/// head-of-line blocking: another request's chunk can dispatch between
/// two of ours, so the worst-case CC-lane queueing delay drops from a
/// whole prefill to one chunk.
class PrefillPlanner {
 public:
  virtual ~PrefillPlanner() = default;

  /// @return Stable human-readable planner name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Cuts one request's prefill into CC-lane jobs.
  /// @param r  The admitted request.
  /// @return Chunk sizes in prefill tokens. Must be non-empty,
  ///         all-positive and sum to r.input_tokens (the engine
  ///         validates and throws std::logic_error otherwise). The
  ///         first chunk additionally carries the encoder + projector
  ///         ops.
  virtual std::vector<std::size_t> plan(const Request& r) const = 0;

  /// @return true when the engine should route this planner's chunks
  ///         through the WeightResidencyTracker: the first chunk that
  ///         fetches a layer group pins it (budget permitting) and
  ///         later chunks skip that group's weight DMA. Pins are
  ///         refcounted per MODEL by default — concurrent same-model
  ///         requests ride one pin and the budget is charged once (see
  ///         EngineConfig::share_weight_pins). Requires
  ///         EngineConfig::weight_residency_bytes > 0 to take effect.
  ///         Default: false (every chunk re-fetches).
  virtual bool chains_weight_residency() const { return false; }

  /// @return true when chained chunks should additionally prefer
  ///         lane-affinity dispatch (PhaseScheduler affinity chaining):
  ///         a pinned request's chunks run back-to-back, shortening pin
  ///         hold time at the cost of some head-of-line blocking for
  ///         co-tenants. Only consulted when residency is active.
  virtual bool prefers_lane_affinity() const { return false; }
};

/// The PR-1 behavior: the whole prefill as one CC-lane job.
class MonolithicPrefill final : public PrefillPlanner {
 public:
  const char* name() const override { return "monolithic"; }
  std::vector<std::size_t> plan(const Request& r) const override;
};

/// Equal chunks of at most `max_chunk_tokens` (last chunk takes the
/// remainder). Honest trade-off: every chunk re-fetches the full layer
/// weights (see ResidentChunkedPrefill for the pinned variant).
class ChunkedPrefill : public PrefillPlanner {
 public:
  /// Throws std::invalid_argument for a zero chunk size.
  explicit ChunkedPrefill(std::size_t max_chunk_tokens);
  std::size_t max_chunk_tokens() const { return max_chunk_tokens_; }
  const char* name() const override { return "chunked"; }
  std::vector<std::size_t> plan(const Request& r) const override;

 private:
  std::size_t max_chunk_tokens_;
};

/// Weight-resident chunk chaining: the same chunk slicing as
/// ChunkedPrefill, but the engine pins layer-group weights on-chip
/// (WeightResidencyTracker, budget =
/// EngineConfig::weight_residency_bytes) when the first chunk fetches
/// them, so subsequent chunks pay only activation + KV traffic for the
/// pinned layers. Pins are shared per model (refcounted) by default:
/// concurrent requests of the same model charge the budget once and the
/// later ones skip the pinned layers' weight DMA on ALL their chunks. A
/// pin that would overflow the budget falls back to re-fetching (never
/// stalls); the bytes are evicted when the last attached request's
/// prefill retires. With a zero residency budget this planner is
/// byte-for-byte identical to ChunkedPrefill.
class ResidentChunkedPrefill final : public ChunkedPrefill {
 public:
  /// @param max_chunk_tokens     Chunk size (throws std::invalid_argument
  ///                             when zero, as ChunkedPrefill).
  /// @param chain_lane_affinity  Also enable PhaseScheduler affinity
  ///                             chaining on the CC lane (see
  ///                             prefers_lane_affinity).
  explicit ResidentChunkedPrefill(std::size_t max_chunk_tokens,
                                  bool chain_lane_affinity = false);
  const char* name() const override { return "resident-chunked"; }
  bool chains_weight_residency() const override { return true; }
  bool prefers_lane_affinity() const override { return chain_lane_affinity_; }

 private:
  bool chain_lane_affinity_;
};

/// Orders the decode-ready list before each decode step: the engine
/// joins requests front-first, so the policy decides who enters the
/// batch when slots (or KV capacity) are scarce. `ready` holds indices
/// into `records`, arriving in prefill-completion (FIFO) order; the
/// policy may reorder but not add or drop entries.
class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Reorders the decode-ready list in place before a join.
  /// @param ready    Indices into `records`, in prefill-completion
  ///                 (FIFO) order; may be permuted but not resized.
  /// @param records  The engine's per-request records (read-only).
  virtual void order_joiners(std::vector<std::size_t>& ready,
                             const std::vector<RequestRecord>& records) const = 0;
};

/// Prefill-completion order (the PR-1 behavior).
class FifoBatch final : public BatchPolicy {
 public:
  const char* name() const override { return "fifo"; }
  void order_joiners(std::vector<std::size_t>& ready,
                     const std::vector<RequestRecord>& records) const override;
};

/// Shortest-remaining-first: fewest remaining output tokens joins first
/// (frees decode slots and KV reservations sooner); ties keep FIFO
/// order.
class ShortestRemainingFirst final : public BatchPolicy {
 public:
  const char* name() const override { return "shortest-remaining-first"; }
  void order_joiners(std::vector<std::size_t>& ready,
                     const std::vector<RequestRecord>& records) const override;
};

/// Per-model demand signals the engine maintains anyway, snapshotted for
/// PlacementPolicy judgments. All deterministic; the estimates are the
/// same per-model EWMAs AdmissionContext is built from.
struct ModelDemand {
  std::size_t queued = 0;    ///< requests of this model waiting in the queue
  std::size_t inflight = 0;  ///< admitted but unfinished requests
  /// Requests currently attached to this model's weight pin (riders
  /// included); 0 for an idle kept-warm pin and for no pin at all.
  std::size_t pin_refcount = 0;
  std::size_t resident_layers = 0;  ///< layer groups on chip (idle included)
  bool idle_resident = false;       ///< resident with refcount 0 (evictable)
  Bytes pinned_bytes = 0;           ///< bytes this model holds of the budget
  Bytes layer_group_bytes = 0;      ///< pin granularity of this model
  std::size_t total_layers = 0;     ///< LLM layers (full set = total x group)
  double cc_bytes_per_cycle_est = 0.0;  ///< per-model CC throughput EWMA
  double decode_step_cycles_est = 0.0;  ///< per-model decode-step EWMA
  /// Time-decayed demand signal the engine maintains alongside the live
  /// count: relaxes toward queued+inflight with e^(-dt/tau)
  /// (tau = EngineConfig::demand_decay_tau_s, 1 s of simulated time by
  /// default). Burst memory for policies that opt in
  /// (DemandWeightedOptions::decayed_demand): a model between bursts
  /// keeps a decaying claim on the budget instead of dropping to zero
  /// the moment its queue drains.
  double demand_decayed = 0.0;

  /// Live requests that could want this model's weights near compute.
  std::size_t live_demand() const { return queued + inflight; }
  /// Bytes of the model's FULL layer-group set (the pin's fill target).
  Bytes full_set_bytes() const {
    return layer_group_bytes * static_cast<Bytes>(total_layers);
  }
};

/// Engine snapshot handed to every PlacementPolicy judgment: the shared
/// residency budget plus one ModelDemand per served model (indexed like
/// the engine's model list).
struct PlacementContext {
  Bytes capacity = 0;           ///< the WeightResidencyTracker budget
  Bytes pinned_bytes = 0;       ///< held right now (live + idle pins)
  Bytes idle_pinned_bytes = 0;  ///< reclaimable without touching live pins
  std::vector<ModelDemand> models;
};

/// Decides which models' layer-group pins to hold, acquire or evict
/// against the shared residency budget in multi-model serving. The
/// engine consults it at three seams: before charging the budget with a
/// FRESH pin (may_acquire — riders on an existing pin are always
/// allowed, sharing is free), when a pin's LAST rider detaches
/// (retain_idle — keep the bytes warm for the model's next request, or
/// evict now), and when an allowed acquisition does not fit the
/// remaining budget (evict_victims — which idle pins to reclaim).
/// Implementations must be deterministic pure functions of their
/// construction parameters and arguments. Only consulted in shared-pin
/// mode with weight residency active; KeepCurrentPlacement reproduces
/// the placement-oblivious PR 4 engine bit-for-bit.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// May `model` charge the budget with a fresh pin now?
  /// @param model  Index into ctx.models of the model asking to pin.
  /// @param ctx    Demand + budget snapshot.
  /// @return false to deny (the request keeps re-fetching; counted as
  ///         placement_denials), true to let the attach proceed.
  virtual bool may_acquire(std::size_t model,
                           const PlacementContext& ctx) const = 0;

  /// Keep `model`'s bytes resident (an idle, warm pin) when its last
  /// attached request detaches? false = evict immediately (the PR 4
  /// behavior).
  virtual bool retain_idle(std::size_t model,
                           const PlacementContext& ctx) const = 0;

  /// Idle models whose pins should be evicted so `model` can fit
  /// `bytes_needed` more bytes, in eviction order. Only idle_resident
  /// models are evictable — the engine ignores any other entry — and
  /// eviction stops as soon as the freed bytes cover the need.
  virtual std::vector<std::size_t> evict_victims(
      std::size_t model, Bytes bytes_needed,
      const PlacementContext& ctx) const = 0;

  /// Layer groups the engine should aim to pin when `model`'s fresh
  /// acquisition proceeds (the engine clamps to the model's total layers
  /// and the tracker still clips to whatever fits the budget). The
  /// default — the full set — reproduces the whole-set engine
  /// bit-for-bit; fractional policies return fewer groups so a model
  /// whose whole set never fits still gets its k hottest groups near
  /// compute instead of a denial.
  virtual std::size_t acquire_target_layers(std::size_t model,
                                            const PlacementContext& ctx) const;
};

/// The placement-oblivious baseline (default): every model may pin
/// first-come-first-served, nothing is kept warm, nothing is evicted.
/// Composed with the fill barrier off this reproduces the PR 4 engine
/// bit-for-bit (tested).
class KeepCurrentPlacement final : public PlacementPolicy {
 public:
  const char* name() const override { return "keep-current"; }
  bool may_acquire(std::size_t model,
                   const PlacementContext& ctx) const override;
  bool retain_idle(std::size_t model,
                   const PlacementContext& ctx) const override;
  std::vector<std::size_t> evict_victims(
      std::size_t model, Bytes bytes_needed,
      const PlacementContext& ctx) const override;
};

/// Opt-in refinements of DemandWeightedPlacement. Defaults reproduce the
/// PR 5 whole-set, instantaneous-demand policy bit-for-bit.
struct DemandWeightedOptions {
  /// Grant partial layer-group sets: a hot model whose whole set no
  /// longer fits takes the k groups that DO fit instead of being denied,
  /// and the leftover budget flows to the next model down the ranking.
  bool fractional_sets = false;
  /// Rank models by max(live demand, demand_decayed) instead of the
  /// instantaneous count alone: the EWMA's burst memory keeps a
  /// recently-hot model's bytes from thrashing in the gaps between its
  /// bursts (signals below kDecayedDemandFloor count as zero so long-
  /// cold models still fall out of the set).
  bool decayed_demand = false;
};

/// Decayed-demand signals below this floor count as zero demand (the
/// exponential EWMA never reaches exactly zero; without a floor a model
/// that was hot once would squat in the target ranking forever).
inline constexpr double kDecayedDemandFloor = 1e-3;

/// Demand-weighted resident set: ranks models by demand (live
/// queued + inflight by default, optionally the time-decayed EWMA; ties
/// to the lower index) and greedily grants layer-group sets from the top
/// until the budget runs out (zero-demand models only stay ranked while
/// already resident — keeping them warm is free until a demanded model
/// wants the bytes). By default grants are whole sets; with
/// DemandWeightedOptions::fractional_sets the hottest non-fitting model
/// takes the groups that do fit. A model outside the target set may not
/// acquire and is not kept warm; an in-set model under budget pressure
/// evicts idle out-of-set pins (coldest first).
class DemandWeightedPlacement final : public PlacementPolicy {
 public:
  DemandWeightedPlacement() = default;
  explicit DemandWeightedPlacement(const DemandWeightedOptions& options);

  const char* name() const override { return "demand-weighted"; }
  bool may_acquire(std::size_t model,
                   const PlacementContext& ctx) const override;
  bool retain_idle(std::size_t model,
                   const PlacementContext& ctx) const override;
  std::vector<std::size_t> evict_victims(
      std::size_t model, Bytes bytes_needed,
      const PlacementContext& ctx) const override;
  std::size_t acquire_target_layers(std::size_t model,
                                    const PlacementContext& ctx) const override;

  /// One granted slice of the budget (fractional grants can be below
  /// the model's total layers).
  struct Grant {
    std::size_t model = 0;
    std::size_t layers = 0;
  };

  /// Per-model layer grants in grant order (exposed for tests and
  /// observability; deterministic).
  std::vector<Grant> target_grants(const PlacementContext& ctx) const;

  /// The models the budget should hold, in grant order (the grants
  /// without their layer counts).
  std::vector<std::size_t> target_set(const PlacementContext& ctx) const;

  const DemandWeightedOptions& options() const { return options_; }

 private:
  /// The ranking signal under the configured options (0 when below the
  /// decayed floor).
  double ranked_demand(const ModelDemand& d) const;

  DemandWeightedOptions options_{};
};

/// Optimistic keep-warm: everyone may pin and every pin is kept warm at
/// idle; idle pins are evicted (coldest demand first, ties to the lower
/// index) only when a fresh acquisition actually needs the room. The
/// greedy middle ground: maximal reuse while the budget is slack,
/// demand-ordered reclamation under pressure.
class EvictIdleOnPressure final : public PlacementPolicy {
 public:
  const char* name() const override { return "evict-idle"; }
  bool may_acquire(std::size_t model,
                   const PlacementContext& ctx) const override;
  bool retain_idle(std::size_t model,
                   const PlacementContext& ctx) const override;
  std::vector<std::size_t> evict_victims(
      std::size_t model, Bytes bytes_needed,
      const PlacementContext& ctx) const override;
};

// --- Offload policies (the fifth seam) --------------------------------------

/// Where one prefill chunk executes in a heterogeneous composition.
enum class OffloadTarget : std::uint8_t {
  kLocal,  ///< the EdgeMM chip's CC lane (the default substrate)
  kFat,    ///< the fat backend (GpuBackend) paired with this engine
};

const char* to_string(OffloadTarget target);

/// Engine-state snapshot handed to OffloadPolicy::place_chunk. Queue
/// depths and throughput EWMAs are maintained online by the engine —
/// deterministic, but estimates, not guarantees.
struct OffloadContext {
  EnginePhase phase = EnginePhase::kFull;  ///< the engine's stage split
  std::size_t input_tokens = 0;  ///< the request's whole prompt length
  std::size_t crops = 0;         ///< vision crops (chunk 0 runs the encoder)
  std::size_t chunk = 0;         ///< index of the judged chunk
  std::size_t chunk_count = 0;   ///< total chunks in the request's plan
  std::size_t chunk_tokens = 0;  ///< prefill tokens of the judged chunk
  std::size_t model = 0;         ///< index into the engine's model list
  std::size_t local_queued = 0;  ///< jobs waiting on the EdgeMM CC lane
  std::size_t fat_queued = 0;    ///< jobs waiting on the fat backend's stream
  /// Measured CC-lane throughput EWMA (bytes/cycle, EdgeMM cost model).
  double local_bytes_per_cycle_est = 0.0;
  /// Measured fat-backend throughput EWMA (bytes/cycle, its cost model).
  double fat_bytes_per_cycle_est = 0.0;
};

/// Decides, per prefill chunk, which backend of a heterogeneous
/// EdgeMM+GPU pair executes it. Judged at chunk-submission time (the
/// PrefillPlanner's chunk granularity is the split granularity — a
/// finer planner gives the policy finer request splits for free);
/// decode is never judged, it always stays on the EdgeMM MC lane (the
/// paper's latency-sensitive phase). Implementations must be
/// deterministic pure functions of their arguments and construction
/// parameters. Without a fat backend configured the engine never
/// consults the policy.
class OffloadPolicy {
 public:
  virtual ~OffloadPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Places one prefill chunk.
  /// @param r    The request the chunk belongs to.
  /// @param ctx  Engine-state snapshot (see OffloadContext).
  /// @return kLocal to run on the EdgeMM CC lane, kFat for the paired
  ///         fat backend (its KV is shipped back over the return link
  ///         when the prefill finishes).
  virtual OffloadTarget place_chunk(const Request& r,
                                    const OffloadContext& ctx) const = 0;
};

/// Everything local (default): byte-identical to an engine with no fat
/// backend at all, even when one is configured.
class NoOffload final : public OffloadPolicy {
 public:
  const char* name() const override { return "no-offload"; }
  OffloadTarget place_chunk(const Request& r,
                            const OffloadContext& ctx) const override;
};

/// Long prefills to the fat backend: a request whose prompt reaches
/// `min_prompt_tokens` runs its WHOLE prefill (vision encoder included —
/// chunk 0 carries it) on the GPU, decode stays on EdgeMM and the KV is
/// shipped back over the ledgered return link. 0 routes every prefill.
/// The EdgeLLM/Hessian-aware split: heavy compute-bound prefill on the
/// fat backend, latency-sensitive decode on the edge chip.
class PrefillToFat final : public OffloadPolicy {
 public:
  explicit PrefillToFat(std::size_t min_prompt_tokens = 512);
  std::size_t min_prompt_tokens() const { return min_prompt_tokens_; }
  const char* name() const override { return "prefill-to-fat"; }
  OffloadTarget place_chunk(const Request& r,
                            const OffloadContext& ctx) const override;

 private:
  std::size_t min_prompt_tokens_;
};

/// Pressure-relief valve at chunk granularity: a chunk spills to the fat
/// backend only while the local CC lane has at least
/// `local_queue_threshold` jobs queued AND the fat stream is shorter
/// than the local one. One request's prefill can straddle both backends
/// chunk-by-chunk (the PrefillPlanner seam provides the split points);
/// any fat chunk makes the request's KV return over the link.
class ThresholdOffload final : public OffloadPolicy {
 public:
  /// Throws std::invalid_argument for a zero threshold (it would spill
  /// every chunk even from an idle lane — use PrefillToFat(0) for that).
  explicit ThresholdOffload(std::size_t local_queue_threshold);
  std::size_t local_queue_threshold() const { return local_queue_threshold_; }
  const char* name() const override { return "threshold-offload"; }
  OffloadTarget place_chunk(const Request& r,
                            const OffloadContext& ctx) const override;

 private:
  std::size_t local_queue_threshold_;
};

// --- Quality policies (the sixth seam) --------------------------------------

/// Engine-state snapshot handed to QualityPolicy::keep_fraction. The
/// pressure signals (queue depth, deadline slack against the per-model
/// service EWMAs, decode batch occupancy, recent SLO misses) are
/// maintained online by the engine — deterministic, but estimates, not
/// guarantees. All byte-derived estimates are in full-precision-
/// equivalent units so a degraded co-tenant cannot skew them.
struct QualityContext {
  Cycle now = 0;
  std::size_t queue_depth = 0;   ///< queued requests waiting for admission
  std::size_t inflight = 0;      ///< admitted but unfinished requests
  std::size_t active_batch = 0;  ///< requests in the current decode batch
  Cycle deadline = 0;            ///< the request's absolute deadline (0 = none)
  /// Estimated absolute completion: now + CC-lane queue delay + the
  /// request's remaining prefill + remaining decode, all from the
  /// engine's full-precision-equivalent throughput EWMAs.
  Cycle estimated_finish = 0;
  std::size_t slo_misses = 0;    ///< finished requests that missed deadlines
  double base_keep = 1.0;        ///< the static per-model keep fraction
  double current_keep = 1.0;     ///< fraction currently served to the request
  double min_keep = 0.25;        ///< lower edge of the configured band
  double max_keep = 1.0;         ///< upper edge of the configured band
};

/// Decides, per request, what FFN keep fraction it is served at — the
/// paper's activation-aware pruning knob turned into an online,
/// load-adaptive control. Judged at admission and re-judged at every
/// prefill chunk submission; the last judgment sticks for decode. The
/// engine clamps the returned value into
/// [min(min_keep, base_keep), max(max_keep, base_keep)] so the static
/// fraction is always reachable. Serving below base_keep is a
/// "downgrade" (priced by the task-proxy accuracy model into the
/// quality ledger); already-pinned resident layers are never pruned —
/// pinned bytes stay ledger-exact, only streamed bytes shrink.
/// Implementations must be deterministic pure functions of their
/// arguments and construction parameters.
class QualityPolicy {
 public:
  virtual ~QualityPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Judges one request's keep fraction.
  /// @param r    The judged request.
  /// @param ctx  Engine-state snapshot (see QualityContext).
  /// @return The raw keep fraction (the engine clamps it into the
  ///         effective band); must be finite.
  virtual double keep_fraction(const Request& r,
                               const QualityContext& ctx) const = 0;
};

/// Always the static per-model fraction (default): byte-identical to an
/// engine with no quality seam at all — every request serves at the
/// keep fraction derived at construction (task proxy or global knob).
class StaticQuality final : public QualityPolicy {
 public:
  const char* name() const override { return "static-quality"; }
  double keep_fraction(const Request& r,
                       const QualityContext& ctx) const override;
};

/// Deadline-pressure controller with recovery hysteresis: tightens the
/// keep fraction by `step` whenever the estimated finish already misses
/// the deadline, relaxes by `step` only once the estimated finish beats
/// the deadline by at least `relax_margin` of the request's SLO window
/// (deadline − arrival), and holds inside the dead band between the two
/// thresholds — so a constant load cannot make it oscillate. Requests
/// without a deadline hold their current fraction. Monotone: at a fixed
/// current fraction, more pressure (a later estimated finish) never
/// raises the returned fraction.
class SloPressureQuality final : public QualityPolicy {
 public:
  /// @param step          Fraction removed/restored per judgment;
  ///                      throws std::invalid_argument outside (0, 1].
  /// @param relax_margin  Slack (as a fraction of the SLO window)
  ///                      required before relaxing; throws for a
  ///                      negative value.
  explicit SloPressureQuality(double step = 0.125, double relax_margin = 0.25);

  double step() const { return step_; }
  double relax_margin() const { return relax_margin_; }

  const char* name() const override { return "slo-pressure"; }
  double keep_fraction(const Request& r,
                       const QualityContext& ctx) const override;

 private:
  double step_;
  double relax_margin_;
};

/// Load-proportional degradation: serves max_keep at or below
/// `low_depth` queued requests, min_keep at or above `high_depth`, and
/// interpolates linearly between. Memoryless (ignores current_keep) and
/// monotone non-increasing in queue depth.
class QueueDepthQuality final : public QualityPolicy {
 public:
  /// Throws std::invalid_argument unless low_depth < high_depth.
  explicit QueueDepthQuality(std::size_t low_depth = 2,
                             std::size_t high_depth = 8);

  std::size_t low_depth() const { return low_depth_; }
  std::size_t high_depth() const { return high_depth_; }

  const char* name() const override { return "queue-depth-quality"; }
  double keep_fraction(const Request& r,
                       const QualityContext& ctx) const override;

 private:
  std::size_t low_depth_;
  std::size_t high_depth_;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_POLICY_HPP
