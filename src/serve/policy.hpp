// Pluggable scheduling-policy interfaces of the serving engine.
//
// The engine is a policy-driven orchestrator: WHAT to admit is decided
// by a SchedulerPolicy, HOW a request's prefill is cut into CC-lane jobs
// by a PrefillPlanner, and WHICH prefilled requests join the next decode
// step (and in what order) by a BatchPolicy. Concrete policies live in
// admission.hpp (scheduler side) and below (planner / batcher side); new
// ones only need to implement one of these interfaces and be handed to
// EngineConfig.
#ifndef EDGEMM_SERVE_POLICY_HPP
#define EDGEMM_SERVE_POLICY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace edgemm::serve {

/// Outcome of one admission judgment.
enum class AdmissionVerdict : std::uint8_t {
  kAdmit,  ///< pop the request and start its prefill now
  kDefer,  ///< leave it queued; it is re-judged at the next pump
  kReject, ///< drop it (recorded as rejected, never served)
};

const char* to_string(AdmissionVerdict verdict);

/// Engine-state snapshot handed to SchedulerPolicy::admit. All estimates
/// are maintained online by the engine (measured CC-lane throughput and
/// decode-step duration EWMAs) — deterministic, but estimates, not
/// guarantees.
struct AdmissionContext {
  Cycle now = 0;
  std::size_t inflight = 0;        ///< admitted but unfinished requests
  std::size_t active_batch = 0;    ///< requests in the current decode batch
  std::size_t queue_depth = 0;     ///< queued requests, candidate included
  /// Estimated cycles until the candidate's first prefill chunk could
  /// dispatch (CC-lane backlog over measured lane throughput).
  Cycle estimated_queue_delay = 0;
  /// Estimated unloaded service time for the candidate: prefill traffic
  /// over measured CC throughput plus output_tokens decode steps.
  Cycle estimated_service = 0;
};

/// Admission and decode-batch sizing. Implementations must be
/// deterministic pure functions of their arguments and construction
/// parameters. Contract: a kDefer verdict with zero in-flight requests
/// is escalated to kAdmit by the engine — a policy cannot starve an
/// otherwise idle chip.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Judges the queue head.
  /// @param r    The candidate request (always the arrival-ordered head).
  /// @param ctx  Engine-state snapshot with online backlog/service
  ///             estimates (see AdmissionContext).
  /// @return kAdmit to start its prefill now, kDefer to re-judge at the
  ///         next pump, kReject to drop it permanently.
  virtual AdmissionVerdict admit(const Request& r,
                                 const AdmissionContext& ctx) const = 0;

  /// Sizes the next decode join.
  /// @param active  Requests already decoding in the current batch.
  /// @param ready   Prefilled requests waiting to join.
  /// @return How many of `ready` may join at this step boundary (the
  ///         engine may join fewer when the KV budget defers some).
  virtual std::size_t decode_join_count(std::size_t active,
                                        std::size_t ready) const = 0;
};

/// Splits one request's prefill (vision encoder + LLM prefill) into
/// successive CC-lane jobs. Returning more than one chunk bounds
/// head-of-line blocking: another request's chunk can dispatch between
/// two of ours, so the worst-case CC-lane queueing delay drops from a
/// whole prefill to one chunk.
class PrefillPlanner {
 public:
  virtual ~PrefillPlanner() = default;

  /// @return Stable human-readable planner name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Cuts one request's prefill into CC-lane jobs.
  /// @param r  The admitted request.
  /// @return Chunk sizes in prefill tokens. Must be non-empty,
  ///         all-positive and sum to r.input_tokens (the engine
  ///         validates and throws std::logic_error otherwise). The
  ///         first chunk additionally carries the encoder + projector
  ///         ops.
  virtual std::vector<std::size_t> plan(const Request& r) const = 0;

  /// @return true when the engine should route this planner's chunks
  ///         through the WeightResidencyTracker: the first chunk that
  ///         fetches a layer group pins it (budget permitting) and
  ///         later chunks skip that group's weight DMA. Pins are
  ///         refcounted per MODEL by default — concurrent same-model
  ///         requests ride one pin and the budget is charged once (see
  ///         EngineConfig::share_weight_pins). Requires
  ///         EngineConfig::weight_residency_bytes > 0 to take effect.
  ///         Default: false (every chunk re-fetches).
  virtual bool chains_weight_residency() const { return false; }

  /// @return true when chained chunks should additionally prefer
  ///         lane-affinity dispatch (PhaseScheduler affinity chaining):
  ///         a pinned request's chunks run back-to-back, shortening pin
  ///         hold time at the cost of some head-of-line blocking for
  ///         co-tenants. Only consulted when residency is active.
  virtual bool prefers_lane_affinity() const { return false; }
};

/// The PR-1 behavior: the whole prefill as one CC-lane job.
class MonolithicPrefill final : public PrefillPlanner {
 public:
  const char* name() const override { return "monolithic"; }
  std::vector<std::size_t> plan(const Request& r) const override;
};

/// Equal chunks of at most `max_chunk_tokens` (last chunk takes the
/// remainder). Honest trade-off: every chunk re-fetches the full layer
/// weights (see ResidentChunkedPrefill for the pinned variant).
class ChunkedPrefill : public PrefillPlanner {
 public:
  /// Throws std::invalid_argument for a zero chunk size.
  explicit ChunkedPrefill(std::size_t max_chunk_tokens);
  std::size_t max_chunk_tokens() const { return max_chunk_tokens_; }
  const char* name() const override { return "chunked"; }
  std::vector<std::size_t> plan(const Request& r) const override;

 private:
  std::size_t max_chunk_tokens_;
};

/// Weight-resident chunk chaining: the same chunk slicing as
/// ChunkedPrefill, but the engine pins layer-group weights on-chip
/// (WeightResidencyTracker, budget =
/// EngineConfig::weight_residency_bytes) when the first chunk fetches
/// them, so subsequent chunks pay only activation + KV traffic for the
/// pinned layers. Pins are shared per model (refcounted) by default:
/// concurrent requests of the same model charge the budget once and the
/// later ones skip the pinned layers' weight DMA on ALL their chunks. A
/// pin that would overflow the budget falls back to re-fetching (never
/// stalls); the bytes are evicted when the last attached request's
/// prefill retires. With a zero residency budget this planner is
/// byte-for-byte identical to ChunkedPrefill.
class ResidentChunkedPrefill final : public ChunkedPrefill {
 public:
  /// @param max_chunk_tokens     Chunk size (throws std::invalid_argument
  ///                             when zero, as ChunkedPrefill).
  /// @param chain_lane_affinity  Also enable PhaseScheduler affinity
  ///                             chaining on the CC lane (see
  ///                             prefers_lane_affinity).
  explicit ResidentChunkedPrefill(std::size_t max_chunk_tokens,
                                  bool chain_lane_affinity = false);
  const char* name() const override { return "resident-chunked"; }
  bool chains_weight_residency() const override { return true; }
  bool prefers_lane_affinity() const override { return chain_lane_affinity_; }

 private:
  bool chain_lane_affinity_;
};

/// Orders the decode-ready list before each decode step: the engine
/// joins requests front-first, so the policy decides who enters the
/// batch when slots (or KV capacity) are scarce. `ready` holds indices
/// into `records`, arriving in prefill-completion (FIFO) order; the
/// policy may reorder but not add or drop entries.
class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  /// @return Stable human-readable policy name (bench/docs labels).
  virtual const char* name() const = 0;

  /// Reorders the decode-ready list in place before a join.
  /// @param ready    Indices into `records`, in prefill-completion
  ///                 (FIFO) order; may be permuted but not resized.
  /// @param records  The engine's per-request records (read-only).
  virtual void order_joiners(std::vector<std::size_t>& ready,
                             const std::vector<RequestRecord>& records) const = 0;
};

/// Prefill-completion order (the PR-1 behavior).
class FifoBatch final : public BatchPolicy {
 public:
  const char* name() const override { return "fifo"; }
  void order_joiners(std::vector<std::size_t>& ready,
                     const std::vector<RequestRecord>& records) const override;
};

/// Shortest-remaining-first: fewest remaining output tokens joins first
/// (frees decode slots and KV reservations sooner); ties keep FIFO
/// order.
class ShortestRemainingFirst final : public BatchPolicy {
 public:
  const char* name() const override { return "shortest-remaining-first"; }
  void order_joiners(std::vector<std::size_t>& ready,
                     const std::vector<RequestRecord>& records) const override;
};

}  // namespace edgemm::serve

#endif  // EDGEMM_SERVE_POLICY_HPP
